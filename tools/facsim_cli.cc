/**
 * @file
 * facsim command-line driver: run assembly programs or built-in
 * workloads on the simulator without writing C++.
 *
 * Usage:
 *   facsim_cli run <file.s> [options]         execute and print state
 *   facsim_cli time <file.s|@workload> [opts] cycle-level simulation
 *   facsim_cli profile <file.s|@workload>     reference behaviour + FAC
 *   facsim_cli disasm <file.s>                assemble and disassemble
 *   facsim_cli dinero <file.s|@workload>      dinero-format address trace
 *   facsim_cli fuzz [--seed=N] [--count=M]    differential fuzzing
 *   facsim_cli mklib @workload --lib=FILE     write a live-point library
 *   facsim_cli farm <library> [opts]          sweep a live-point library
 *   facsim_cli serve [opts]                   experiment-serving daemon
 *   facsim_cli loadgen [opts]                 drive a serve daemon
 *   facsim_cli top [opts]                     live stats from a daemon
 *   facsim_cli list                           list built-in workloads
 *
 * Serve options (see docs/INTERNALS.md "Experiment service"):
 *   --socket=PATH      listen on a unix-domain socket at PATH
 *   --stdio            serve one connection over stdin/stdout instead
 *   --jobs=N           worker threads for cache misses (0 = all)
 *   --cache-bytes=N    result-cache byte budget (default 256 MiB)
 *   --cache-file=FILE  persist the result cache across restarts
 *   --stats-out=FILE   dump serve.* / cache.* stats on drain
 *   --stats-interval=S flush --stats-out every S seconds while serving
 *                      (atomic write-to-temp + rename)
 *   --trace=FILE       per-request span trace (Chrome trace-event JSON;
 *                      one track per daemon thread)
 *   SIGINT/SIGTERM drain gracefully: stop accepting, finish in-flight
 *   requests, flush the cache, dump stats, exit 0.
 *
 * Top options (live telemetry client; docs/INTERNALS.md):
 *   --socket=PATH      daemon socket to poll (required)
 *   --interval=S       seconds between polls (default 2)
 *   --once             print a single frame and exit (two polls for a
 *                      windowed-rate frame; one poll with --prom)
 *   --prom             print the raw Prometheus exposition instead of
 *                      the rate table
 *
 * Loadgen options:
 *   --socket=PATH      daemon socket to drive (required)
 *   --requests=N       total requests (default 100)
 *   --concurrency=N    client threads (default 1)
 *   --repeat-pct=N     percent of requests repeating an earlier one
 *                      (default 50)
 *   --timing-pct=N     percent of unique requests that are timing
 *                      (default 50; rest are profile)
 *   --seed=N           schedule seed (default 1); same seed = same
 *                      request set = same response digest
 *   --scale=N          workload scale per request (default 1)
 *   --max-insts=N      instruction bound per request (default 20000)
 *   --workloads=N      distinct workloads in the mix (default 4)
 *   --json[=FILE]      JSON report to stdout (or FILE) instead of text
 *
 * Fuzz options:
 *   --seed=N           batch seed (default 2026); case i is generated
 *                      from splitmix64(seed, i), independent of --jobs
 *   --count=M          cases to run (default 100)
 *   --jobs=N           worker threads (0 = all; default 1)
 *   --shrink           minimize diverging cases with ddmin
 *   --engine=E         emulator dispatch engine (see Options)
 *   --predictor=M      config matrix under predictor mode M (see
 *                      Options; default fac = the historical matrix)
 *
 * Options:
 *   --engine=switch|threaded
 *                      translated-block dispatch engine for bulk
 *                      emulation (default threaded; degrades to switch
 *                      when the build lacks computed-goto support)
 *   --support          enable the Section 4 software support
 *   --fac              enable fast address calculation (time)
 *   --agi              AGI pipeline organisation (time)
 *   --predictor=M      load-predictor organisation: none, fac, stride,
 *                      fac+stride, fac+waymemo or fac+stride+waymemo
 *                      (time; excludes --fac/--agi)
 *   --compare          also run the plain baseline and print the speedup
 *   --block=16|32      data-cache block size (default 32)
 *   --hierarchy=NAME   memory hierarchy preset: 'paper' (flat 6-cycle,
 *                      default) or 'modern' (L2 + MSHRs + DRAM) (time)
 *   --dram-lat=N       override the preset's DRAM latency (time)
 *   --mshrs=N          override the preset's L1 MSHR entry count (time)
 *   --tlb-penalty=N    model a 64-entry data TLB whose misses add N
 *                      cycles to the access (time)
 *   --no-rr            disable register+register speculation
 *   --max-insts=N      stop after N instructions (sampled runs: total
 *                      retired instructions, fast-forwarded included)
 *   --scale=N          workload scale (built-in workloads)
 *   --print-insts=N    print the first N executed instructions (run)
 *   --jobs=N           worker threads for --compare runs (0 = all)
 *
 * Observability (see docs/INTERNALS.md):
 *   --stats-out=FILE   dump the hierarchical stats registry after the
 *                      run; JSON when FILE ends in .json, text otherwise
 *                      (run/time/profile)
 *   --trace=FILE       write a per-instruction pipeline trace (time;
 *                      applies to the measured config of a --compare
 *                      pair)
 *   --trace-format=F   konata (default; open in Konata) or chrome
 *                      (open in chrome://tracing / Perfetto)
 *   --trace-start=N    first dynamic instruction to trace (default 0)
 *   --trace-count=N    trace at most N instructions (default: all)
 *   --ring=N           keep the last N issued instructions in a crash
 *                      ring that panic() dumps (time)
 *   --debug-flags=A,B  enable FACSIM_DPRINTF debug output for the named
 *                      flags (comma separated; unknown names are fatal
 *                      and list the valid set)
 *
 * Sampled simulation (time, @workload or .s):
 *   --sample-period=U  systematic sampling: one detailed window per U
 *                      retired instructions (0 is rejected; omit the
 *                      flag for full detail)
 *   --sample-detail=N  measured instructions per window (default 1000)
 *   --sample-warmup=N  unmeasured detailed warmup per window
 *                      (default 2000)
 *
 * Live-point libraries (see docs/INTERNALS.md "Live-point library"):
 *   mklib fast-forwards the workload once with functional warming and
 *   writes one checkpoint per --sample-period instructions to --lib=FILE
 *   (--sample-detail/--sample-warmup are recorded for the farm; the
 *   cache/TLB/BTB geometry flags fix the library's warm fingerprint).
 *   farm restores every entry and measures a detailed window per entry
 *   across --jobs threads; --compare also measures the plain baseline
 *   from the *same* live-points and reports the matched-pair speedup
 *   (stdout is byte-identical for any --jobs; host timing goes to
 *   stderr). Timing-only flags (--fac, --agi, --no-rr, latencies) may
 *   differ from the mklib run; geometry flags must match.
 *   --lib=FILE         library path to write (mklib)
 *   --max-entries=N    farm: measure only the first N live-points
 *                      (0 = all; smoke-test hook)
 *
 * Checkpoints (@workload targets; 'run' = functional, 'time' = timing):
 *   --ckpt-save=FILE   run (honouring --max-insts), then save
 *   --ckpt-restore=FILE restore, then continue to completion (or
 *                      --max-insts total instructions); the resumed
 *                      run's final stats are bit-identical to an
 *                      uninterrupted run
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <functional>

#include <unistd.h>

#include "asm/parser.hh"
#include "cpu/pipeline.hh"
#include "cpu/profiler.hh"
#include "isa/disasm.hh"
#include "link/linker.hh"
#include "obs/debug.hh"
#include "obs/sampler.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "sim/checkpoint.hh"
#include "sim/config.hh"
#include "sim/experiment.hh"
#include "sim/lvpt.hh"
#include "sim/obs_views.hh"
#include "sim/runner.hh"
#include "serve/client.hh"
#include "serve/loadgen.hh"
#include "serve/server.hh"
#include "util/logging.hh"
#include "util/parse.hh"
#include "verify/fuzz.hh"

using namespace facsim;

namespace
{

/** --engine= choices; index order matches EmuEngine's enumerators. */
const char *const kEngineChoices[] = {"switch", "threaded", nullptr};

EmuEngine
parseEngineFlag(const std::string &value)
{
    return parse::oneOfFlag("--engine", value, kEngineChoices) == 0
               ? EmuEngine::Switch
               : EmuEngine::Threaded;
}

struct CliOptions
{
    EmuEngine engine = EmuEngine::Threaded;
    bool support = false;
    bool fac = false;
    bool agi = false;
    /** Predictor-zoo mode (kPredictorChoices); empty = use --fac/--agi. */
    std::string predictor;
    bool compare = false;
    bool specRr = true;
    uint32_t block = 32;
    std::string hierarchy = "paper";
    /** Preset overrides; UINT32_MAX / -1 = keep the preset's value. */
    uint32_t dramLat = UINT32_MAX;
    uint32_t mshrs = UINT32_MAX;
    uint32_t tlbPenalty = UINT32_MAX;
    uint64_t maxInsts = 0;
    uint64_t scale = 1;
    uint64_t printInsts = 0;
    unsigned jobs = 1;
    /** Pipeline event trace (time); disabled unless --trace=FILE. */
    obs::TraceOptions trace;
    /** Stats-registry dump target; empty = no dump. */
    std::string statsOut;
    /** Crash-dump ring capacity (time); 0 = off. */
    size_t ring = 0;
    /** Systematic sampling (time); period 0 = full detail. */
    SamplingConfig sampling;
    /** Checkpoint paths; empty = no checkpointing. */
    std::string ckptSave;
    std::string ckptRestore;
    /** Live-point library output path (mklib). */
    std::string lib;
    /** Farm: restore only the first N entries (0 = all). */
    uint64_t maxEntries = 0;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

CliOptions
parseOptions(int argc, char **argv, int first)
{
    CliOptions o;
    for (int i = first; i < argc; ++i) {
        std::string a = argv[i];
        auto val = [&](const char *p) -> const char * {
            size_t n = std::strlen(p);
            return a.compare(0, n, p) == 0 ? a.c_str() + n : nullptr;
        };
        if (const char *v = val("--engine="))
            o.engine = parseEngineFlag(v);
        else if (a == "--support")
            o.support = true;
        else if (a == "--fac")
            o.fac = true;
        else if (a == "--agi")
            o.agi = true;
        else if (const char *v = val("--predictor=")) {
            parse::oneOfFlag("--predictor", v, kPredictorChoices);
            o.predictor = v;
        } else if (a == "--compare")
            o.compare = true;
        else if (a == "--no-rr")
            o.specRr = false;
        else if (const char *v = val("--block="))
            o.block = parse::u32FlagPositive("--block", v);
        else if (const char *v = val("--hierarchy="))
            o.hierarchy = v;
        else if (const char *v = val("--dram-lat="))
            o.dramLat = parse::u32FlagPositive("--dram-lat", v);
        else if (const char *v = val("--mshrs="))
            o.mshrs = parse::u32FlagPositive("--mshrs", v);
        else if (const char *v = val("--tlb-penalty="))
            o.tlbPenalty = parse::u32FlagPositive("--tlb-penalty", v);
        else if (const char *v = val("--max-insts="))
            o.maxInsts = parse::u64Flag("--max-insts", v);
        else if (const char *v = val("--scale="))
            o.scale = parse::u64FlagPositive("--scale", v);
        else if (const char *v = val("--print-insts="))
            o.printInsts = parse::u64Flag("--print-insts", v);
        else if (const char *v = val("--trace=")) {
            if (!*v)
                fatal("usage: --trace expects a file path");
            o.trace.path = v;
        } else if (const char *v = val("--trace-format=")) {
            if (!obs::parseTraceFormat(v, o.trace.format))
                fatal("unknown trace format '%s' (expected 'konata' or "
                      "'chrome')", v);
        } else if (const char *v = val("--trace-start="))
            o.trace.start = parse::u64Flag("--trace-start", v);
        else if (const char *v = val("--trace-count="))
            o.trace.count = parse::u64FlagPositive("--trace-count", v);
        else if (const char *v = val("--stats-out=")) {
            if (!*v)
                fatal("usage: --stats-out expects a file path");
            o.statsOut = v;
        } else if (const char *v = val("--ring="))
            o.ring = parse::u64FlagPositive("--ring", v);
        else if (const char *v = val("--debug-flags=")) {
            std::string unknown;
            if (!obs::setDebugFlags(v, &unknown)) {
                std::string names;
                for (const obs::DebugFlag *f : obs::allDebugFlags()) {
                    names += ' ';
                    names += f->name();
                }
                fatal("unknown debug flag '%s' (valid flags:%s)",
                      unknown.c_str(), names.c_str());
            }
        } else if (const char *v = val("--jobs="))
            o.jobs = parse::u32Flag("--jobs", v);
        else if (const char *v = val("--sample-period="))
            o.sampling.period = parse::u64FlagPositive("--sample-period", v);
        else if (const char *v = val("--sample-detail="))
            o.sampling.detail = parse::u64FlagPositive("--sample-detail", v);
        else if (const char *v = val("--sample-warmup="))
            o.sampling.warmup = parse::u64FlagPositive("--sample-warmup", v);
        else if (const char *v = val("--ckpt-save=")) {
            if (!*v)
                fatal("usage: --ckpt-save expects a file path");
            o.ckptSave = v;
        } else if (const char *v = val("--ckpt-restore=")) {
            if (!*v)
                fatal("usage: --ckpt-restore expects a file path");
            o.ckptRestore = v;
        } else if (const char *v = val("--lib=")) {
            if (!*v)
                fatal("usage: --lib expects a file path");
            o.lib = v;
        } else if (const char *v = val("--max-entries="))
            o.maxEntries = parse::u64Flag("--max-entries", v);
        else
            fatal("unknown option '%s'", a.c_str());
    }
    if (!o.predictor.empty() && (o.fac || o.agi))
        fatal("usage: --predictor is mutually exclusive with --fac and "
              "--agi (it selects the whole organisation)");
    if (!o.ckptSave.empty() && !o.ckptRestore.empty())
        fatal("usage: --ckpt-save and --ckpt-restore are mutually "
              "exclusive");
    if (o.sampling.enabled() &&
        (!o.ckptSave.empty() || !o.ckptRestore.empty()))
        fatal("usage: sampling (--sample-period) cannot be combined with "
              "checkpointing (--ckpt-save/--ckpt-restore)");
    if (o.sampling.enabled())
        o.sampling.validate();
    return o;
}

CodeGenPolicy
policyOf(const CliOptions &o)
{
    return o.support ? CodeGenPolicy::withSupport()
                     : CodeGenPolicy::baseline();
}

HierarchyConfig
hierarchyOf(const CliOptions &o)
{
    HierarchyConfig h = hierarchyPreset(o.hierarchy);
    if (o.dramLat != UINT32_MAX)
        h.dram.latency = o.dramLat;
    if (o.mshrs != UINT32_MAX)
        h.l1Mshr.entries = o.mshrs;
    if (o.tlbPenalty != UINT32_MAX) {
        h.tlbEnabled = true;
        h.tlbMissPenalty = o.tlbPenalty;
    }
    return h;
}

PipelineConfig
pipeOf(const CliOptions &o)
{
    PipelineConfig c;
    if (!o.predictor.empty())
        c = predictorPipelineConfig(o.predictor, o.block, o.specRr);
    else if (o.agi)
        c = agiConfig(o.block);
    else if (o.fac)
        c = facPipelineConfig(o.block, o.specRr);
    else
        c = baselineConfig(o.block);
    c.hierarchy = hierarchyOf(o);
    return c;
}

/**
 * Build a one-shot registry with @p reg and dump it to --stats-out
 * (JSON when the path ends in .json, text otherwise). The registry only
 * lives for the dump, so views over stack-local result structs are safe.
 */
void
writeStatsFile(const std::string &path,
               const std::function<void(obs::Group &)> &reg)
{
    if (path.empty())
        return;
    obs::Registry registry;
    reg(registry.root());
    registry.writeFile(path);
    std::printf("stats written to '%s'\n", path.c_str());
}

/** A loaded program ready to execute (from a .s file). */
struct Loaded
{
    Program prog;
    Memory mem;
    LinkedImage img;
    std::unique_ptr<Emulator> emu;
};

std::unique_ptr<Loaded>
loadAsm(const std::string &path, const CliOptions &o)
{
    auto l = std::make_unique<Loaded>();
    parseAsm(readFile(path), l->prog);
    CodeGenPolicy pol = policyOf(o);
    l->img = Linker(pol.link).link(l->prog, l->mem);
    l->emu = std::make_unique<Emulator>(l->prog, l->mem, l->img,
                                        pol.stack.initialSp());
    return l;
}

void
printPipeStats(const PipeStats &st)
{
    std::printf("cycles:            %llu\n",
                static_cast<unsigned long long>(st.cycles));
    std::printf("instructions:      %llu  (IPC %.3f)\n",
                static_cast<unsigned long long>(st.insts), st.ipc());
    std::printf("loads / stores:    %llu / %llu\n",
                static_cast<unsigned long long>(st.loads),
                static_cast<unsigned long long>(st.stores));
    std::printf("I$ miss ratio:     %.2f%%\n",
                100.0 * st.icacheMissRatio());
    std::printf("D$ miss ratio:     %.2f%%\n",
                100.0 * st.dcacheMissRatio());
    std::printf("BTB mispredicts:   %llu\n",
                static_cast<unsigned long long>(st.btbMispredicts));
    uint64_t stalls = st.stallFetch + st.stallData + st.stallStructural +
        st.stallStoreBuffer;
    if (stalls && st.cycles) {
        std::printf("zero-issue cycles: %.1f%% (fetch %.1f%%, data "
                    "%.1f%%, structural %.1f%%, store buffer %.1f%%)\n",
                    100.0 * stalls / st.cycles,
                    100.0 * st.stallFetch / st.cycles,
                    100.0 * st.stallData / st.cycles,
                    100.0 * st.stallStructural / st.cycles,
                    100.0 * st.stallStoreBuffer / st.cycles);
    }
    if (st.loadsSpeculated + st.storesSpeculated) {
        std::printf("FAC speculated:    %llu loads, %llu stores\n",
                    static_cast<unsigned long long>(st.loadsSpeculated),
                    static_cast<unsigned long long>(st.storesSpeculated));
        std::printf("FAC mispredicted:  %llu loads, %llu stores "
                    "(bandwidth overhead %.2f%%)\n",
                    static_cast<unsigned long long>(st.loadSpecFailures),
                    static_cast<unsigned long long>(st.storeSpecFailures),
                    100.0 * st.bandwidthOverhead());
    }
    // Predictor-zoo lines, gated on their own counters so legacy FAC
    // output stays byte-identical.
    if (st.strideSpeculated)
        std::printf("stride sourced:    %llu of those (%llu mispredicted, "
                    "fail rate %.2f%%)\n",
                    static_cast<unsigned long long>(st.strideSpeculated),
                    static_cast<unsigned long long>(st.strideSpecFailures),
                    100.0 * st.strideFailRate());
    if (st.wayMemoTagReadsSaved || st.wayMemoStale)
        std::printf("way memo:          %llu tag reads skipped, %llu "
                    "stale (late-verify replays)\n",
                    static_cast<unsigned long long>(
                        st.wayMemoTagReadsSaved),
                    static_cast<unsigned long long>(st.wayMemoStale));
    if (st.strideSpeculated || st.wayMemoTagReadsSaved || st.wayMemoStale)
        std::printf("pred recovery:     %llu cycles\n",
                    static_cast<unsigned long long>(
                        st.predRecoveryCycles));
}

/**
 * Per-level hierarchy detail, printed only when the memory system has
 * something the flat paper machine doesn't (an L2, MSHRs, or a TLB).
 */
void
printHierarchyStats(const HierarchyStats &s)
{
    bool interesting = s.levels.size() > 1 || s.tlbAccesses ||
        (!s.levels.empty() && s.levels[0].mshr.allocations);
    if (!interesting)
        return;
    for (const LevelStats &l : s.levels) {
        std::printf("%-4s accesses:     %llu (miss ratio %.2f%%, "
                    "%llu writebacks)\n",
                    l.name.c_str(),
                    static_cast<unsigned long long>(l.accesses),
                    100.0 * l.missRatio,
                    static_cast<unsigned long long>(l.writebacks));
        if (l.mshr.allocations) {
            std::printf("%-4s MSHRs:        %llu fills, %llu merges, "
                        "peak %u in flight, %llu full-stall cycles\n",
                        l.name.c_str(),
                        static_cast<unsigned long long>(
                            l.mshr.allocations),
                        static_cast<unsigned long long>(l.mshr.merges),
                        l.mshr.maxOccupancy,
                        static_cast<unsigned long long>(
                            l.mshr.fullStallCycles));
        }
        if (l.wbFullStallCycles) {
            std::printf("%-4s WB stalls:    %llu cycles\n",
                        l.name.c_str(),
                        static_cast<unsigned long long>(
                            l.wbFullStallCycles));
        }
    }
    if (s.hasDram) {
        std::printf("DRAM traffic:      %llu reads, %llu writes, "
                    "%llu queued cycles\n",
                    static_cast<unsigned long long>(s.dram.reads),
                    static_cast<unsigned long long>(s.dram.writes),
                    static_cast<unsigned long long>(s.dram.queuedCycles));
    }
    if (s.tlbAccesses) {
        std::printf("D-TLB:             %llu accesses, %llu misses "
                    "(%.3f%%)\n",
                    static_cast<unsigned long long>(s.tlbAccesses),
                    static_cast<unsigned long long>(s.tlbMisses),
                    100.0 * s.tlbMissRatio());
    }
}

int
cmdRun(const std::string &target, const CliOptions &o)
{
    std::unique_ptr<Loaded> l;
    std::unique_ptr<Machine> m;
    Emulator *emu;
    const Program *prog;
    Memory *mem;
    bool ckpt = !o.ckptSave.empty() || !o.ckptRestore.empty();
    if (!target.empty() && target[0] == '@') {
        BuildOptions b;
        b.policy = policyOf(o);
        b.scale = o.scale;
        m = std::make_unique<Machine>(workload(target.substr(1)), b);
        emu = &m->emulator();
        prog = &m->program();
        mem = &m->memory();
    } else {
        if (ckpt)
            fatal("checkpoints require a built-in @workload target");
        l = loadAsm(target, o);
        emu = l->emu.get();
        prog = &l->prog;
        mem = &l->mem;
    }

    if (!o.ckptRestore.empty()) {
        restoreFunctionalCheckpoint(o.ckptRestore, *m);
        std::printf("restored '%s' at %llu instructions\n",
                    o.ckptRestore.c_str(),
                    static_cast<unsigned long long>(emu->instCount()));
    }

    // --max-insts bounds *total* executed instructions so a save/restore
    // pair covers exactly the same stream as an uninterrupted run. The
    // first --print-insts instructions go through the scalar step()
    // path (they need per-instruction records to disassemble); the rest
    // runs on the translated-block engine selected by --engine.
    uint64_t n = 0;
    ExecRecord rec;
    while (n < o.printInsts &&
           (!o.maxInsts || emu->instCount() < o.maxInsts) &&
           emu->step(&rec)) {
        std::printf("%08x  %s\n", rec.pc,
                    disasm(rec.inst, rec.pc).c_str());
        ++n;
    }
    if (!o.maxInsts)
        n += emu->run();
    else if (emu->instCount() < o.maxInsts)
        n += emu->run(o.maxInsts - emu->instCount());
    writeStatsFile(o.statsOut, [&](obs::Group &root) {
        obs::Group &sg = root.group("sim");
        uint64_t insts = emu->instCount();
        uint64_t bytes = mem->memUsageBytes();
        sg.formula("insts", "instructions executed",
                   [insts] { return static_cast<double>(insts); });
        sg.formula("mem_usage_bytes", "simulated-memory footprint",
                   [bytes] { return static_cast<double>(bytes); });
        registerEmulatorStats(root.group("emu"), emu->translationStats(),
                              emu->engine());
    });
    if (!o.ckptSave.empty()) {
        saveFunctionalCheckpoint(o.ckptSave, *m);
        std::printf("checkpoint saved to '%s' at %llu instructions\n",
                    o.ckptSave.c_str(),
                    static_cast<unsigned long long>(emu->instCount()));
    }
    std::printf("executed %llu instructions; %s\n",
                static_cast<unsigned long long>(n),
                emu->halted() ? "halted" : "instruction limit");
    for (unsigned r = 0; r < numIntRegs; ++r) {
        if (emu->intReg(r))
            std::printf("  $%-4s = 0x%08x (%d)\n", regName(r),
                        emu->intReg(r),
                        static_cast<int32_t>(emu->intReg(r)));
    }
    // Workload convention: a "result" checksum global.
    for (const DataSym &s : prog->syms()) {
        if (s.name == "result")
            std::printf("  result = %u\n", mem->read32(s.addr));
    }
    return 0;
}

void
printSampleEstimate(const SampleEstimate &s)
{
    std::printf("sampling:          %llu window(s); %.2f%% of %llu "
                "insts in detail\n",
                static_cast<unsigned long long>(s.windows),
                100.0 * s.detailFraction(),
                static_cast<unsigned long long>(s.totalInsts));
    std::printf("  measured:        %llu insts / %llu cycles "
                "(+%llu warmup, +%llu drain, %llu fast-forwarded)\n",
                static_cast<unsigned long long>(s.measuredInsts),
                static_cast<unsigned long long>(s.measuredCycles),
                static_cast<unsigned long long>(s.warmupInsts),
                static_cast<unsigned long long>(s.drainInsts),
                static_cast<unsigned long long>(s.fastForwardInsts));
    if (s.cpi.insufficient) {
        // < 2 windows: the ratio-estimator variance has 0 degrees of
        // freedom, so no confidence interval exists.
        std::printf("  CPI estimate:    %.4f (insufficient windows for "
                    "a CI; need >= 2, got %llu)\n",
                    s.cpi.mean,
                    static_cast<unsigned long long>(s.cpi.n));
        std::printf("  IPC estimate:    %.4f (insufficient windows for "
                    "a CI)\n", s.ipc.mean);
    } else {
        std::printf("  CPI estimate:    %.4f +- %.4f (95%% CI)\n",
                    s.cpi.mean, s.cpi.halfWidth);
        std::printf("  IPC estimate:    %.4f +- %.4f (95%% CI)\n",
                    s.ipc.mean, s.ipc.halfWidth);
    }
    std::printf("  est. cycles:     %.0f\n", s.estCycles());
}

int
cmdTime(const std::string &target, const CliOptions &o)
{
    bool is_workload = !target.empty() && target[0] == '@';

    if (!o.ckptSave.empty() || !o.ckptRestore.empty()) {
        if (!is_workload)
            fatal("checkpoints require a built-in @workload target");
        BuildOptions b;
        b.policy = policyOf(o);
        b.scale = o.scale;
        Machine m(workload(target.substr(1)), b);
        Pipeline pipe(pipeOf(o), m.emulator());
        // Trace/ring progress is not part of a checkpoint: a trace
        // started here covers only this run's portion of the program.
        std::unique_ptr<obs::OpenTrace> trace = obs::openTrace(o.trace);
        if (trace)
            pipe.setTrace(trace->sink.get(), o.trace.start,
                          o.trace.count);
        if (o.ring)
            pipe.enableHistoryRing(o.ring);
        if (!o.ckptRestore.empty()) {
            restoreTimingCheckpoint(o.ckptRestore, m, pipe);
            std::printf("restored '%s' at cycle %llu (%llu insts)\n",
                        o.ckptRestore.c_str(),
                        static_cast<unsigned long long>(
                            pipe.currentCycle()),
                        static_cast<unsigned long long>(
                            pipe.stats().insts));
        }
        // run() bounds *total* issued instructions, so a save/restore
        // pair replays exactly the cycles an uninterrupted run would.
        PipeStats st = pipe.run(o.maxInsts);
        if (!o.ckptSave.empty()) {
            saveTimingCheckpoint(o.ckptSave, m, pipe);
            std::printf("checkpoint saved to '%s' at cycle %llu "
                        "(%llu insts)\n",
                        o.ckptSave.c_str(),
                        static_cast<unsigned long long>(
                            pipe.currentCycle()),
                        static_cast<unsigned long long>(st.insts));
        }
        printPipeStats(st);
        HierarchyStats hs = pipe.hierarchyStats();
        printHierarchyStats(hs);
        uint64_t mu = m.memUsageBytes();
        writeStatsFile(o.statsOut, [&](obs::Group &root) {
            registerPipeStats(root.group("pipeline"), st);
            registerHierarchyStats(root.group("hier"), hs);
            registerEmulatorStats(root.group("emu"),
                                  m.emulator().translationStats(),
                                  m.emulator().engine());
            root.group("sim").counterView(
                "mem_usage_bytes", "peak simulated-memory footprint",
                &mu);
        });
        return 0;
    }

    if (is_workload) {
        // Workload targets go through the experiment runner so a
        // --compare pair runs on two threads when --jobs allows it.
        auto requestWith = [&](const PipelineConfig &cfg) {
            TimingRequest req;
            req.workload = target.substr(1);
            req.build.policy = policyOf(o);
            req.build.scale = o.scale;
            req.pipe = cfg;
            req.maxInsts = o.maxInsts;
            req.sampling = o.sampling;
            return req;
        };
        std::vector<TimingRequest> reqs{requestWith(pipeOf(o))};
        // Observability attaches only to the measured configuration;
        // the --compare baseline runs dark.
        reqs[0].trace = o.trace;
        reqs[0].historyRing = o.ring;
        if (o.compare) {
            // The baseline shares the memory system so the speedup
            // isolates the pipeline change.
            PipelineConfig base = baselineConfig(o.block);
            base.hierarchy = hierarchyOf(o);
            reqs.push_back(requestWith(base));
        }

        RunnerReport report;
        std::vector<TimingResult> res =
            Runner(o.jobs).runTimings(reqs, &report);

        printPipeStats(res[0].stats);
        printHierarchyStats(res[0].hier);
        if (res[0].sample.enabled)
            printSampleEstimate(res[0].sample);
        writeStatsFile(o.statsOut, [&](obs::Group &root) {
            registerTimingStats(root, res[0]);
        });
        if (o.compare) {
            double base = res[1].estimatedCycles();
            double mine = res[0].estimatedCycles();
            std::printf("baseline cycles:   %.0f\n", base);
            std::printf("speedup:           %.3f%s\n",
                        base > 0.0 && mine > 0.0 ? base / mine : 0.0,
                        res[0].sample.enabled ? " (sampled estimate)"
                                              : "");
            std::printf("host time:         %.2fs on %u threads "
                        "(%.2fM sim-insts/s)\n",
                        report.wallSeconds, report.jobs,
                        report.simInstsPerHostSecond() / 1e6);
        }
        return 0;
    }

    // The emulator dies with the per-run Loaded image, so copy its
    // translation counters out for the stats dump.
    EmuTranslationStats emuTs;
    EmuEngine emuEngine = EmuEngine::Switch;
    auto timeWith = [&](const PipelineConfig &cfg, HierarchyStats *hs,
                        SampleEstimate *se, bool primary) {
        auto l = loadAsm(target, o);
        Pipeline pipe(cfg, *l->emu);
        std::unique_ptr<obs::OpenTrace> trace =
            primary ? obs::openTrace(o.trace) : nullptr;
        if (trace)
            pipe.setTrace(trace->sink.get(), o.trace.start,
                          o.trace.count);
        if (primary && o.ring)
            pipe.enableHistoryRing(o.ring);
        PipeStats st;
        if (o.sampling.enabled()) {
            *se = runSampled(pipe, o.sampling, o.maxInsts);
            st = pipe.stats();
        } else {
            st = pipe.run(o.maxInsts);
        }
        if (hs)
            *hs = pipe.hierarchyStats();
        if (primary) {
            emuTs = l->emu->translationStats();
            emuEngine = l->emu->engine();
        }
        return st;
    };
    HierarchyStats hier;
    SampleEstimate sample;
    PipeStats st = timeWith(pipeOf(o), &hier, &sample, true);
    printPipeStats(st);
    printHierarchyStats(hier);
    if (sample.enabled)
        printSampleEstimate(sample);
    writeStatsFile(o.statsOut, [&](obs::Group &root) {
        registerPipeStats(root.group("pipeline"), st);
        registerHierarchyStats(root.group("hier"), hier);
        registerEmulatorStats(root.group("emu"), emuTs, emuEngine);
    });
    if (o.compare) {
        PipelineConfig bcfg = baselineConfig(o.block);
        bcfg.hierarchy = hierarchyOf(o);
        SampleEstimate bsample;
        PipeStats base = timeWith(bcfg, nullptr, &bsample, false);
        double bcyc = bsample.enabled ? bsample.estCycles()
                                      : static_cast<double>(base.cycles);
        double mcyc = sample.enabled ? sample.estCycles()
                                     : static_cast<double>(st.cycles);
        std::printf("baseline cycles:   %.0f\n", bcyc);
        std::printf("speedup:           %.3f%s\n",
                    bcyc > 0.0 && mcyc > 0.0 ? bcyc / mcyc : 0.0,
                    sample.enabled ? " (sampled estimate)" : "");
    }
    return 0;
}

/** One estimate line; "insufficient" when the CI needs more windows. */
void
printEstimateLine(const char *label, const MetricEstimate &e)
{
    if (e.insufficient)
        std::printf("%s%.4f (insufficient windows for a CI; need >= 2, "
                    "got %llu)\n", label, e.mean,
                    static_cast<unsigned long long>(e.n));
    else
        std::printf("%s%.4f +- %.4f (95%% CI)\n", label, e.mean,
                    e.halfWidth);
}

int
cmdMklib(const std::string &target, const CliOptions &o)
{
    if (target.empty() || target[0] != '@')
        fatal("mklib requires a built-in @workload target");
    if (!o.sampling.enabled())
        fatal("mklib requires --sample-period (one live-point per "
              "period)");
    if (o.lib.empty())
        fatal("mklib requires --lib=FILE");

    LvptBuildRequest req;
    req.workload = target.substr(1);
    req.build.policy = policyOf(o);
    req.build.scale = o.scale;
    req.pipe = pipeOf(o);
    req.sampling = o.sampling;
    req.maxInsts = o.maxInsts;

    auto t0 = std::chrono::steady_clock::now();
    LvptBuildResult r = buildLvptLibrary(o.lib, req);
    double secs = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();

    std::printf("library:           '%s'\n", o.lib.c_str());
    std::printf("live-points:       %llu (one per %llu insts)\n",
                static_cast<unsigned long long>(r.entries),
                static_cast<unsigned long long>(o.sampling.period));
    std::printf("covered insts:     %llu\n",
                static_cast<unsigned long long>(r.totalInsts));
    std::printf("library bytes:     %llu\n",
                static_cast<unsigned long long>(r.libraryBytes));
    // Host accounting goes to stderr so stdout stays deterministic.
    std::fprintf(stderr, "mklib: %.2fs host time\n", secs);

    writeStatsFile(o.statsOut, [&](obs::Group &root) {
        LvptLibrary lib(o.lib);
        registerLvptStats(root.group("lvpt"), lib);
    });
    return 0;
}

int
cmdFarm(const std::string &target, const CliOptions &o)
{
    LvptLibrary lib(target);

    FarmRequest req;
    req.pipe = pipeOf(o);
    req.matchedPair = o.compare;
    if (o.compare) {
        // Same convention as 'time --compare': the partner is the plain
        // baseline sharing the memory system, measured from the *same*
        // live-points (matched pair).
        PipelineConfig base = baselineConfig(o.block);
        base.hierarchy = hierarchyOf(o);
        req.partner = base;
    }
    req.jobs = o.jobs;
    req.maxEntries = o.maxEntries;

    FarmResult fr = runFarm(lib, req);

    std::printf("library:           '%s' (%zu live-points, %llu insts)\n",
                lib.path().c_str(), lib.numEntries(),
                static_cast<unsigned long long>(lib.totalInsts()));
    std::printf("farm windows:      %llu measured; %llu insts / %llu "
                "cycles (+%llu warmup)\n",
                static_cast<unsigned long long>(fr.windows),
                static_cast<unsigned long long>(fr.measuredInsts),
                static_cast<unsigned long long>(fr.measuredCycles),
                static_cast<unsigned long long>(fr.warmupInsts));
    printEstimateLine("  CPI estimate:    ", fr.cpi);
    printEstimateLine("  IPC estimate:    ", fr.ipc);
    std::printf("  est. cycles:     %.0f\n", fr.estCycles());
    if (o.compare) {
        printEstimateLine("baseline CPI:      ", fr.partnerCpi);
        printEstimateLine("paired speedup:    ", fr.pairedSpeedup);
        printEstimateLine("  vs independent:  ", fr.independentSpeedup);
    }
    // Host accounting goes to stderr so stdout is byte-identical for
    // any --jobs (the CI smoke job diffs jobs=1 against jobs=2).
    std::fprintf(stderr, "farm: %u thread(s), %.2fs host time "
                 "(%.1f live-points/s)\n",
                 fr.report.jobs, fr.report.wallSeconds,
                 fr.jobsPerSecond());

    writeStatsFile(o.statsOut, [&](obs::Group &root) {
        registerLvptStats(root.group("lvpt"), lib);
        registerFarmStats(root.group("farm"), fr);
    });
    return 0;
}

void
printProfile(Profiler &prof)
{
    std::printf("instructions:      %llu\n",
                static_cast<unsigned long long>(prof.insts()));
    std::printf("loads / stores:    %llu / %llu\n",
                static_cast<unsigned long long>(prof.loads()),
                static_cast<unsigned long long>(prof.stores()));
    std::printf("load classes:      %.1f%% global / %.1f%% stack / "
                "%.1f%% general\n",
                100.0 * prof.loadFrac(RefClass::Global),
                100.0 * prof.loadFrac(RefClass::Stack),
                100.0 * prof.loadFrac(RefClass::General));
    const FacProfile &f = prof.fac(0);
    std::printf("FAC failure rate:  %.1f%% loads, %.1f%% stores "
                "(no-R+R: %.1f%% / %.1f%%)\n",
                100.0 * f.loadFailRate(), 100.0 * f.storeFailRate(),
                100.0 * f.loadFailRateNoRR(),
                100.0 * f.storeFailRateNoRR());
    static const char *cause_names[5] = {
        "Overflow", "GenCarry", "LargeNegConst", "NegIndexReg",
        "GenCarryTag",
    };
    uint64_t refs = f.loadAttempts + f.storeAttempts;
    for (unsigned c = 0; c < 5; ++c) {
        if (f.causeCounts[c]) {
            std::printf("  cause %-14s %llu (%.1f%% of refs)\n",
                        cause_names[c],
                        static_cast<unsigned long long>(
                            f.causeCounts[c]),
                        refs ? 100.0 * f.causeCounts[c] / refs : 0.0);
        }
    }
}

int
cmdProfile(const std::string &target, const CliOptions &o)
{
    FacConfig fc = facConfigFor(CacheConfig{16 * 1024, o.block, 1, 6});
    Profiler prof;
    prof.addFacConfig(fc);

    if (!target.empty() && target[0] == '@') {
        BuildOptions b;
        b.policy = policyOf(o);
        b.scale = o.scale;
        Machine m(workload(target.substr(1)), b);
        ExecRecord rec;
        while (m.emulator().step(&rec)) {
            prof.observe(rec);
            if (o.maxInsts && prof.insts() >= o.maxInsts)
                break;
        }
    } else {
        auto l = loadAsm(target, o);
        ExecRecord rec;
        while (l->emu->step(&rec)) {
            prof.observe(rec);
            if (o.maxInsts && prof.insts() >= o.maxInsts)
                break;
        }
    }
    printProfile(prof);
    ProfileResult pr;
    pr.insts = prof.insts();
    pr.loads = prof.loads();
    pr.stores = prof.stores();
    pr.fracGlobal = prof.loadFrac(RefClass::Global);
    pr.fracStack = prof.loadFrac(RefClass::Stack);
    pr.fracGeneral = prof.loadFrac(RefClass::General);
    for (size_t i = 0; i < prof.numFacConfigs(); ++i)
        pr.fac.push_back(prof.fac(i));
    pr.tlbAccesses = prof.tlbAccesses();
    pr.tlbMisses = prof.tlbMisses();
    writeStatsFile(o.statsOut, [&](obs::Group &root) {
        registerProfileStats(root.group("profile"), pr);
    });
    return 0;
}

/**
 * Emit a classic dinero III "label address" trace (0 = data read,
 * 1 = data write, 2 = instruction fetch) so the reference streams can
 * be replayed through external cache simulators.
 */
int
cmdDinero(const std::string &target, const CliOptions &o)
{
    auto emitTrace = [&](Emulator &emu) {
        ExecRecord rec;
        uint64_t n = 0;
        while (emu.step(&rec)) {
            std::printf("2 %x\n", rec.pc);
            if (isMem(rec.inst.op))
                std::printf("%d %x\n", isStore(rec.inst.op) ? 1 : 0,
                            rec.effAddr);
            if (o.maxInsts && ++n >= o.maxInsts)
                break;
        }
    };
    if (!target.empty() && target[0] == '@') {
        BuildOptions b;
        b.policy = policyOf(o);
        b.scale = o.scale;
        Machine m(workload(target.substr(1)), b);
        emitTrace(m.emulator());
    } else {
        auto l = loadAsm(target, o);
        emitTrace(*l->emu);
    }
    return 0;
}

/**
 * Run the differential fuzzer: each case is one random program run
 * through the co-simulation under every configuration of the FAC matrix
 * (off / hw / hw+sw / r+r / hw+disamb). Exits non-zero if any case
 * diverges.
 */
int
cmdFuzz(int argc, char **argv, int first)
{
    verify::FuzzOptions fo;
    for (int i = first; i < argc; ++i) {
        std::string a = argv[i];
        auto val = [&](const char *p) -> const char * {
            size_t n = std::strlen(p);
            return a.compare(0, n, p) == 0 ? a.c_str() + n : nullptr;
        };
        if (const char *v = val("--engine="))
            Emulator::setDefaultEngine(parseEngineFlag(v));
        else if (const char *v = val("--seed="))
            fo.seed = std::strtoull(v, nullptr, 0);
        else if (const char *v = val("--count="))
            fo.count = std::strtoull(v, nullptr, 0);
        else if (const char *v = val("--jobs="))
            fo.jobs = static_cast<unsigned>(std::strtoul(v, nullptr, 0));
        else if (a == "--shrink")
            fo.shrink = true;
        else if (const char *v = val("--min-items="))
            fo.minItems =
                static_cast<unsigned>(std::strtoul(v, nullptr, 0));
        else if (const char *v = val("--max-items="))
            fo.maxItems =
                static_cast<unsigned>(std::strtoul(v, nullptr, 0));
        else if (const char *v = val("--predictor=")) {
            parse::oneOfFlag("--predictor", v, kPredictorChoices);
            fo.predictor = v;
        } else
            fatal("unknown fuzz option '%s'", a.c_str());
    }

    verify::FuzzBatchResult res = verify::runFuzzBatch(fo);
    std::printf("fuzz: %llu case(s), seed %llu, batch digest %016llx\n",
                static_cast<unsigned long long>(res.casesRun),
                static_cast<unsigned long long>(fo.seed),
                static_cast<unsigned long long>(res.digest));
    if (fo.predictor != "fac")
        std::printf("      predictor matrix: %s\n", fo.predictor.c_str());
    std::printf("      %.2fs host time, %.2fM sim-insts\n",
                res.wallSeconds, res.simInsts / 1e6);
    if (!res.divergingCases) {
        std::printf("      no divergences\n");
        return 0;
    }
    std::printf("      %llu DIVERGING case(s)\n",
                static_cast<unsigned long long>(res.divergingCases));
    for (const verify::FuzzCaseOutcome &f : res.failures) {
        std::printf("\n--- case %llu (seed %llu, config %s) ---\n",
                    static_cast<unsigned long long>(f.index),
                    static_cast<unsigned long long>(f.caseSeed),
                    f.configName.c_str());
        if (!f.shrunkItems.empty()) {
            std::printf("shrunk %zu -> %zu descriptor(s); minimal "
                        "program:\n%s\n",
                        f.items.size(), f.shrunkItems.size(),
                        f.shrunkListing.c_str());
        }
        std::printf("%s", f.report.c_str());
    }
    return 1;
}

int
cmdDisasm(const std::string &target, const CliOptions &o)
{
    auto l = loadAsm(target, o);
    for (uint32_t i = 0; i < l->prog.numInsts(); ++i) {
        uint32_t pc = l->prog.instAddr(i);
        std::printf("%08x:  %08x  %s\n", pc, l->prog.words()[i],
                    disasm(l->prog.inst(i), pc).c_str());
    }
    return 0;
}

int
cmdServe(int argc, char **argv, int first)
{
    serve::ServerOptions so;
    for (int i = first; i < argc; ++i) {
        std::string a = argv[i];
        auto val = [&](const char *p) -> const char * {
            size_t n = std::strlen(p);
            return a.compare(0, n, p) == 0 ? a.c_str() + n : nullptr;
        };
        if (const char *v = val("--socket=")) {
            if (!*v)
                fatal("usage: --socket expects a path");
            so.socketPath = v;
        } else if (a == "--stdio")
            so.stdio = true;
        else if (const char *v = val("--jobs="))
            so.jobs = parse::u32Flag("--jobs", v);
        else if (const char *v = val("--cache-bytes="))
            so.cacheBytes = parse::u64FlagPositive("--cache-bytes", v);
        else if (const char *v = val("--cache-file=")) {
            if (!*v)
                fatal("usage: --cache-file expects a path");
            so.cacheFile = v;
        } else if (const char *v = val("--stats-out=")) {
            if (!*v)
                fatal("usage: --stats-out expects a file path");
            so.statsOut = v;
        } else if (const char *v = val("--stats-interval="))
            so.statsInterval = parse::u32FlagPositive("--stats-interval", v);
        else if (const char *v = val("--trace=")) {
            if (!*v)
                fatal("usage: --trace expects a file path");
            so.tracePath = v;
        } else
            fatal("unknown serve option '%s'", a.c_str());
    }
    if (so.socketPath.empty() && !so.stdio)
        fatal("usage: serve needs --socket=PATH or --stdio");
    if (!so.socketPath.empty() && so.stdio)
        fatal("usage: --socket and --stdio are mutually exclusive");
    if (so.statsInterval > 0 && so.statsOut.empty())
        fatal("usage: --stats-interval needs --stats-out=FILE");
    return serve::serveMain(so);
}

/**
 * One rendered `top` frame: windowed rates computed by the sampler
 * from two successive Stats snapshots.
 */
void
printTopFrame(const obs::StatsSampler &s)
{
    double reqs = s.rate("serve.profile_requests") +
                  s.rate("serve.timing_requests");
    double hits = s.delta("cache.hits");
    double lookups = hits + s.delta("cache.misses");
    double hitPct = lookups > 0.0 ? 100.0 * hits / lookups : 0.0;
    std::printf("window %.1fs\n", s.windowSeconds());
    std::printf("  %-22s %10.1f /s\n", "experiment requests", reqs);
    std::printf("  %-22s %10.1f /s\n", "cache hits",
                s.rate("cache.hits"));
    std::printf("  %-22s %9.1f %%\n", "cache hit rate (win)", hitPct);
    std::printf("  %-22s %10.1f /s\n", "cache evictions",
                s.rate("cache.evictions"));
    std::printf("  %-22s %10.0f\n", "queue depth now",
                s.value("serve.queue_now"));
    std::printf("  %-22s %10.1f us\n", "latency p50 (lifetime)",
                s.value("serve.latency_p50_us"));
    std::printf("  %-22s %10.1f us\n", "latency p99 (lifetime)",
                s.value("serve.latency_p99_us"));
    std::printf("  %-22s %10.0f\n", "requests total",
                s.value("serve.requests"));
    std::printf("  %-22s %10.0f\n", "cache entries",
                s.value("cache.entries"));
    if (s.resets())
        std::printf("  %-22s %10llu\n", "counter resets seen",
                    static_cast<unsigned long long>(s.resets()));
    std::fflush(stdout);
}

int
cmdTop(int argc, char **argv, int first)
{
    std::string socket;
    double interval = 2.0;
    bool once = false, prom = false;
    for (int i = first; i < argc; ++i) {
        std::string a = argv[i];
        auto val = [&](const char *p) -> const char * {
            size_t n = std::strlen(p);
            return a.compare(0, n, p) == 0 ? a.c_str() + n : nullptr;
        };
        if (const char *v = val("--socket=")) {
            if (!*v)
                fatal("usage: --socket expects a path");
            socket = v;
        } else if (const char *v = val("--interval=")) {
            interval = parse::doubleFlag("--interval", v);
            if (interval <= 0.0)
                fatal("usage: --interval must be positive");
        } else if (a == "--once")
            once = true;
        else if (a == "--prom")
            prom = true;
        else
            fatal("unknown top option '%s'", a.c_str());
    }
    if (socket.empty())
        fatal("usage: top needs --socket=PATH");

    std::string err;
    int fd = serve::connectUnix(socket, &err);
    if (fd < 0)
        fatal("top: %s", err.c_str());
    serve::ServeClient client(fd);

    if (prom) {
        // Raw Prometheus exposition; --once prints one scrape, else one
        // scrape per interval (a file-based scraper can poll this).
        do {
            std::string promText;
            if (!client.stats(nullptr, &promText, &err))
                fatal("top: %s", err.c_str());
            std::fputs(promText.c_str(), stdout);
            std::fflush(stdout);
            if (!once)
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(interval));
        } while (!once);
        return 0;
    }

    using Clock = std::chrono::steady_clock;
    Clock::time_point t0 = Clock::now();
    obs::StatsSampler sampler;
    // Only true counters take part in the resets() monotonicity check;
    // gauges (queue depth, percentiles) move down in normal operation.
    sampler.watchCounter("serve.requests");
    sampler.watchCounter("serve.profile_requests");
    sampler.watchCounter("serve.timing_requests");
    sampler.watchCounter("cache.hits");
    sampler.watchCounter("cache.misses");
    bool clearScreen = !once && ::isatty(STDOUT_FILENO);
    for (;;) {
        std::string json;
        if (!client.stats(&json, nullptr, &err))
            fatal("top: %s", err.c_str());
        obs::StatsSnapshot snap;
        if (!obs::parseStatsJson(json, &snap, &err))
            fatal("top: malformed stats JSON: %s", err.c_str());
        sampler.push(snap,
                     std::chrono::duration<double>(Clock::now() - t0)
                         .count());
        if (sampler.hasWindow()) {
            if (clearScreen)
                std::fputs("\x1b[H\x1b[2J", stdout);
            printTopFrame(sampler);
            if (once)
                return 0;  // two polls -> one windowed frame -> done
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double>(interval));
    }
}

int
cmdLoadgen(int argc, char **argv, int first)
{
    serve::LoadgenOptions lo;
    bool json = false;
    std::string jsonFile;
    for (int i = first; i < argc; ++i) {
        std::string a = argv[i];
        auto val = [&](const char *p) -> const char * {
            size_t n = std::strlen(p);
            return a.compare(0, n, p) == 0 ? a.c_str() + n : nullptr;
        };
        if (const char *v = val("--socket=")) {
            if (!*v)
                fatal("usage: --socket expects a path");
            lo.socketPath = v;
        } else if (const char *v = val("--requests="))
            lo.requests = parse::u64FlagPositive("--requests", v);
        else if (const char *v = val("--concurrency="))
            lo.concurrency = parse::u32FlagPositive("--concurrency", v);
        else if (const char *v = val("--repeat-pct="))
            lo.repeatPct = parse::u32Flag("--repeat-pct", v);
        else if (const char *v = val("--timing-pct="))
            lo.timingPct = parse::u32Flag("--timing-pct", v);
        else if (const char *v = val("--seed="))
            lo.seed = parse::u64Flag("--seed", v);
        else if (const char *v = val("--scale="))
            lo.scale = parse::u64FlagPositive("--scale", v);
        else if (const char *v = val("--max-insts="))
            lo.maxInsts = parse::u64FlagPositive("--max-insts", v);
        else if (const char *v = val("--workloads="))
            lo.workloadPool = parse::u32FlagPositive("--workloads", v);
        else if (a == "--json")
            json = true;
        else if (const char *v = val("--json=")) {
            json = true;
            jsonFile = v;
        } else
            fatal("unknown loadgen option '%s'", a.c_str());
    }
    if (lo.socketPath.empty())
        fatal("usage: loadgen needs --socket=PATH");
    if (lo.repeatPct > 100 || lo.timingPct > 100)
        fatal("usage: --repeat-pct/--timing-pct are percentages (0..100)");
    serve::LoadgenReport rep;
    std::string err;
    bool ok = serve::runLoadgen(lo, &rep, &err);
    if (!ok && rep.sent == 0)
        fatal("loadgen: %s", err.c_str());
    if (!ok)
        warn("loadgen: %s", err.c_str());
    if (json) {
        std::string body = rep.json() + "\n";
        if (jsonFile.empty()) {
            std::fputs(body.c_str(), stdout);
        } else {
            std::ofstream out(jsonFile, std::ios::binary);
            if (!out)
                fatal("cannot write '%s'", jsonFile.c_str());
            out << body;
            std::printf("loadgen report written to '%s'\n",
                        jsonFile.c_str());
        }
    } else {
        std::fputs(rep.text().c_str(), stdout);
    }
    return ok && rep.errors == 0 ? 0 : 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr, "usage: %s run|time|profile|disasm|mklib|"
                             "farm|serve|loadgen|top|list "
                             "<file.s|@workload> [options]\n",
                     argv[0]);
        return 1;
    }
    std::string cmd = argv[1];
    if (cmd == "serve")
        return cmdServe(argc, argv, 2);
    if (cmd == "loadgen")
        return cmdLoadgen(argc, argv, 2);
    if (cmd == "top")
        return cmdTop(argc, argv, 2);
    if (cmd == "list") {
        for (const WorkloadInfo &w : allWorkloads())
            std::printf("%-10s %-3s %s\n", w.name,
                        w.floatingPoint ? "FP" : "Int", w.input);
        return 0;
    }
    if (cmd == "fuzz")
        return cmdFuzz(argc, argv, 2);
    if (argc < 3)
        fatal("'%s' needs a target", cmd.c_str());
    std::string target = argv[2];
    CliOptions o = parseOptions(argc, argv, 3);
    // Before any Machine/Emulator is built (including the Runner's
    // worker-thread builds — see the machine.hh thread-safety note).
    Emulator::setDefaultEngine(o.engine);

    if (cmd == "run")
        return cmdRun(target, o);
    if (cmd == "time")
        return cmdTime(target, o);
    if (cmd == "profile")
        return cmdProfile(target, o);
    if (cmd == "disasm")
        return cmdDisasm(target, o);
    if (cmd == "dinero")
        return cmdDinero(target, o);
    if (cmd == "mklib")
        return cmdMklib(target, o);
    if (cmd == "farm")
        return cmdFarm(target, o);
    fatal("unknown command '%s'", cmd.c_str());
}
