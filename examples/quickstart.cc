/**
 * @file
 * Quickstart: the paper's Figure 1 load-use hazard, reproduced on the
 * timing model, then a full workload run showing the fast-address-
 * calculation speedup end to end.
 *
 *   build/examples/quickstart
 */

#include <cstdio>

#include "asm/builder.hh"
#include "cpu/pipeline.hh"
#include "link/linker.hh"
#include "sim/config.hh"
#include "sim/experiment.hh"
#include "sim/stats.hh"

using namespace facsim;

namespace
{

// The Figure 1 sequence: add -> load (uses the add) -> sub (uses the
// load). On the classic 5-stage pipeline the sub stalls one cycle
// behind the 2-cycle load; with fast address calculation it does not.
uint64_t
figure1Cycles(const PipelineConfig &cfg, int chain_len)
{
    Program p;
    AsmBuilder as(p);
    SymId data = as.global("data", 64, 64, false);
    as.la(reg::t9, data);
    as.sw(reg::zero, 4, reg::t9);
    as.li(reg::t2, 0);
    // Each iteration depends on the previous one (the sub's zero result
    // feeds the next add), so the load-use latency is on the critical
    // path and cannot be hidden by the 4-wide issue.
    for (int i = 0; i < chain_len; ++i) {
        as.add(reg::t0, reg::t9, reg::t2);    // add  rx <- ry+rz
        as.lw(reg::t1, 4, reg::t0);           // load rw <- 4(rx)
        as.sub(reg::t2, reg::t1, reg::t1);    // sub  <- rw (load-use)
    }
    as.halt();

    Memory mem;
    LinkedImage img = Linker(LinkPolicy{}).link(p, mem);
    Emulator emu(p, mem, img, StackPolicy{}.initialSp());
    Pipeline pipe(cfg, emu);
    return pipe.run().cycles;
}

} // anonymous namespace

int
main()
{
    std::printf("== Figure 1: an untolerated load latency ==\n\n");
    std::printf("  add  rx,ry,rz      IF ID EX WB\n");
    std::printf("  load rw,4(rx)      IF ID EX MEM WB\n");
    std::printf("  sub  ra,rb,rw      IF ID ** EX WB   <- 1-cycle "
                "load-use stall\n\n");

    const int n = 200;
    uint64_t base = figure1Cycles(baselineConfig(), n);
    uint64_t fac = figure1Cycles(facPipelineConfig(), n);
    std::printf("%d repetitions of the add/load/sub chain:\n", n);
    std::printf("  baseline model:          %8llu cycles\n",
                static_cast<unsigned long long>(base));
    std::printf("  fast address calc:       %8llu cycles\n",
                static_cast<unsigned long long>(fac));
    std::printf("  speedup:                 %8.3f\n\n",
                speedup(base, fac));

    std::printf("== End-to-end: the compress workload ==\n\n");
    auto run = [&](const CodeGenPolicy &pol, const PipelineConfig &pc) {
        TimingRequest req;
        req.workload = "compress";
        req.build.policy = pol;
        req.pipe = pc;
        return runTiming(req).stats;
    };
    PipeStats b = run(CodeGenPolicy::baseline(), baselineConfig());
    PipeStats hw = run(CodeGenPolicy::baseline(), facPipelineConfig());
    PipeStats sw = run(CodeGenPolicy::withSupport(), facPipelineConfig());

    std::printf("  %-26s %10s %8s %12s\n", "configuration", "cycles",
                "IPC", "mispredicts");
    std::printf("  %-26s %10llu %8.3f %12s\n", "baseline (2-cycle loads)",
                static_cast<unsigned long long>(b.cycles), b.ipc(), "-");
    std::printf("  %-26s %10llu %8.3f %12llu\n", "FAC, hardware only",
                static_cast<unsigned long long>(hw.cycles), hw.ipc(),
                static_cast<unsigned long long>(hw.loadSpecFailures +
                                                hw.storeSpecFailures));
    std::printf("  %-26s %10llu %8.3f %12llu\n", "FAC + software support",
                static_cast<unsigned long long>(sw.cycles), sw.ipc(),
                static_cast<unsigned long long>(sw.loadSpecFailures +
                                                sw.storeSpecFailures));
    std::printf("\n  speedup (hardware only):   %.3f\n",
                speedup(b.cycles, hw.cycles));
    std::printf("  speedup (with software):   %.3f\n",
                speedup(b.cycles, sw.cycles));
    return 0;
}
