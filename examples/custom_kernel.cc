/**
 * @file
 * Example: writing your own workload against the public API. Builds a
 * binary-search kernel from scratch (globals, heap data, a function with
 * a stack frame), then profiles its reference behaviour and measures the
 * fast-address-calculation speedup — the full life of a workload without
 * touching the built-in registry.
 *
 *   build/examples/custom_kernel
 */

#include <cstdio>

#include "cpu/pipeline.hh"
#include "cpu/profiler.hh"
#include "link/linker.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "workloads/kernel_lib.hh"

using namespace facsim;

namespace
{

// Binary search over a sorted table, repeated for a batch of keys.
void
buildBinarySearch(WorkloadContext &ctx)
{
    AsmBuilder &as = ctx.as;
    const uint32_t table_len = 4096;
    const uint32_t nqueries = ctx.scaled(20000);

    SymId table_ptr = as.global("table_ptr", 4, 4, true);
    SymId found_ct = as.global("found_ct", 4, 4, true);

    Frame fr(ctx, false);
    fr.seal();
    fr.prologue(as);
    as.lwGp(reg::s0, table_ptr);
    as.li(reg::s5, static_cast<int32_t>(nqueries));
    as.li(reg::s6, 12345);                   // LCG state
    as.li(reg::s7, 0);                       // hits

    LabelId query = as.newLabel();
    LabelId loop = as.newLabel();
    LabelId done = as.newLabel();
    LabelId go_right = as.newLabel();
    LabelId found = as.newLabel();

    as.bind(query);
    as.li(reg::t0, 1103515245);
    as.mul(reg::s6, reg::s6, reg::t0);
    as.addi(reg::s6, reg::s6, 12345);
    as.srl(reg::t1, reg::s6, 8);
    as.andi(reg::t1, reg::t1, 0xffff);       // key
    as.li(reg::t2, 0);                       // lo
    as.li(reg::t3, static_cast<int32_t>(table_len));  // hi
    as.bind(loop);
    as.sub(reg::t4, reg::t3, reg::t2);
    as.slti(reg::t5, reg::t4, 1);
    as.bne(reg::t5, reg::zero, done);
    as.add(reg::t6, reg::t2, reg::t3);
    as.srl(reg::t6, reg::t6, 1);             // mid
    as.sll(reg::t7, reg::t6, 2);
    as.lwRR(reg::t8, reg::s0, reg::t7);      // table[mid]
    as.beq(reg::t8, reg::t1, found);
    as.slt(reg::t9, reg::t8, reg::t1);
    as.bne(reg::t9, reg::zero, go_right);
    as.move(reg::t3, reg::t6);               // hi = mid
    as.j(loop);
    as.bind(go_right);
    as.addi(reg::t2, reg::t6, 1);            // lo = mid+1
    as.j(loop);
    as.bind(found);
    as.addi(reg::s7, reg::s7, 1);
    as.bind(done);
    as.addi(reg::s5, reg::s5, -1);
    as.bgtz(reg::s5, query);

    as.swGp(reg::s7, found_ct);
    as.halt();

    ctx.atInit([=](InitContext &ic) {
        uint32_t tbl = ic.heap.alloc(table_len * 4, 4);
        uint32_t v = 0;
        for (uint32_t i = 0; i < table_len; ++i) {
            v += 1 + static_cast<uint32_t>(ic.rng.range(31));
            ic.mem.write32(tbl + 4 * i, v & 0xffff);
        }
        ic.mem.write32(ic.symAddr(table_ptr), tbl);
    });
}

struct Built
{
    Program prog;
    Memory mem;
    LinkedImage img;
    std::unique_ptr<Heap> heap;
    std::unique_ptr<Emulator> emu;
};

std::unique_ptr<Built>
build(const CodeGenPolicy &pol)
{
    auto b = std::make_unique<Built>();
    AsmBuilder as(b->prog);
    Rng rng(0x5eed);
    WorkloadContext ctx(as, pol, rng, 1);
    buildBinarySearch(ctx);
    b->img = Linker(pol.link).link(b->prog, b->mem);
    b->heap = std::make_unique<Heap>(b->img.heapBase, pol.heap);
    InitContext ic{b->mem, *b->heap, b->prog, b->img, rng};
    ctx.runInits(ic);
    b->emu = std::make_unique<Emulator>(b->prog, b->mem, b->img,
                                        pol.stack.initialSp());
    return b;
}

} // anonymous namespace

int
main()
{
    // 1. Profile the reference behaviour (what Table 1 would show).
    auto m = build(CodeGenPolicy::baseline());
    Profiler prof;
    prof.addFacConfig(FacConfig{.blockBits = 5, .setBits = 14});
    ExecRecord rec;
    while (m->emu->step(&rec))
        prof.observe(rec);
    std::printf("binary-search kernel: %llu insts, %llu loads "
                "(%.1f%% global / %.1f%% stack / %.1f%% general)\n",
                static_cast<unsigned long long>(prof.insts()),
                static_cast<unsigned long long>(prof.loads()),
                100.0 * prof.loadFrac(RefClass::Global),
                100.0 * prof.loadFrac(RefClass::Stack),
                100.0 * prof.loadFrac(RefClass::General));
    std::printf("prediction failure rate (hardware only): %.1f%%\n",
                100.0 * prof.fac(0).loadFailRate());

    // 2. Time it on the baseline and FAC machines.
    auto timeOne = [&](const CodeGenPolicy &pol,
                       const PipelineConfig &cfg) {
        auto mm = build(pol);
        Pipeline pipe(cfg, *mm->emu);
        return pipe.run().cycles;
    };
    uint64_t base = timeOne(CodeGenPolicy::baseline(), baselineConfig());
    uint64_t hw = timeOne(CodeGenPolicy::baseline(), facPipelineConfig());
    uint64_t sw = timeOne(CodeGenPolicy::withSupport(),
                          facPipelineConfig());
    std::printf("cycles: baseline %llu, FAC %llu, FAC+SW %llu\n",
                static_cast<unsigned long long>(base),
                static_cast<unsigned long long>(hw),
                static_cast<unsigned long long>(sw));
    std::printf("speedup: %.3f (hardware), %.3f (with software)\n",
                speedup(base, hw), speedup(base, sw));
    return 0;
}
