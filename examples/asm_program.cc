/**
 * @file
 * Example: the textual-assembler path. A saxpy-style kernel written as
 * assembly source is assembled, linked with and without the software
 * support, and timed on the baseline and fast-address-calculation
 * machines — no C++ code generation involved.
 *
 *   build/examples/asm_program
 */

#include <cstdio>

#include "asm/parser.hh"
#include "cpu/pipeline.hh"
#include "link/linker.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "workloads/codegen_policy.hh"

using namespace facsim;

namespace
{

const char *kSource = R"(
# saxpy over gp-resident vectors: y[i] = a*x[i] + y[i], 512 doubles,
# repeated 64 times. The vectors live in the small-data region, so the
# global-pointer alignment support decides whether the gp-relative
# pointer loads predict.

        .sdata
xs_ptr: .word 0
ys_ptr: .word 0
n_iter: .word 64

        .data
        .align 8
xs:     .space 4096
ys:     .space 4096
a_val:  .double 3.0

        .text
        la    $s6, xs
        sw    $s6, xs_ptr($gp)
        la    $s7, ys
        sw    $s7, ys_ptr($gp)
        la    $t0, a_val
        ldc1  $f2, 0($t0)           # a
        lw    $s5, n_iter($gp)

outer:  lw    $s0, xs_ptr($gp)
        lw    $s1, ys_ptr($gp)
        li    $t1, 512
inner:  ldc1  $f4, ($s0)+8          # x[i]
        ldc1  $f6, 0($s1)           # y[i]
        mul.d $f4, $f4, $f2
        add.d $f6, $f6, $f4
        sdc1  $f6, ($s1)+8          # y[i] updated
        addi  $t1, $t1, -1
        bgtz  $t1, inner
        addi  $s5, $s5, -1
        bgtz  $s5, outer
        halt
)";

uint64_t
timeIt(const CodeGenPolicy &pol, const PipelineConfig &cfg)
{
    Program prog;
    parseAsm(kSource, prog);
    Memory mem;
    LinkedImage img = Linker(pol.link).link(prog, mem);
    Emulator emu(prog, mem, img, pol.stack.initialSp());
    Pipeline pipe(cfg, emu);
    return pipe.run().cycles;
}

} // anonymous namespace

int
main()
{
    uint64_t base = timeIt(CodeGenPolicy::baseline(), baselineConfig());
    uint64_t hw = timeIt(CodeGenPolicy::baseline(), facPipelineConfig());
    uint64_t sw = timeIt(CodeGenPolicy::withSupport(),
                         facPipelineConfig());

    std::printf("saxpy (from assembly source):\n");
    std::printf("  baseline:        %8llu cycles\n",
                static_cast<unsigned long long>(base));
    std::printf("  FAC, hardware:   %8llu cycles  (speedup %.3f)\n",
                static_cast<unsigned long long>(hw), speedup(base, hw));
    std::printf("  FAC + software:  %8llu cycles  (speedup %.3f)\n",
                static_cast<unsigned long long>(sw), speedup(base, sw));
    return 0;
}
