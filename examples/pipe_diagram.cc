/**
 * @file
 * Example: issue-timing diagrams from the Pipeline::onIssue hook. Runs
 * the paper's Figure 1 sequence on the baseline and the fast-address-
 * calculation machines and prints, per instruction, the cycle it
 * entered execution — making the load-use stall and its removal
 * directly visible.
 *
 *   build/examples/pipe_diagram
 */

#include <cstdio>
#include <vector>

#include "asm/builder.hh"
#include "cpu/pipeline.hh"
#include "isa/disasm.hh"
#include "link/linker.hh"
#include "runtime/stack.hh"
#include "sim/config.hh"

using namespace facsim;

namespace
{

struct Timing
{
    std::vector<Pipeline::IssueEvent> events;
    PipeStats stats;
};

Timing
timeProgram(const PipelineConfig &base_cfg)
{
    PipelineConfig cfg = base_cfg;
    cfg.perfectICache = true;  // keep the diagram about the datapath

    Program p;
    AsmBuilder as(p);
    SymId data = as.global("data", 64, 64, false);
    as.la(reg::t9, data);
    as.sw(reg::zero, 4, reg::t9);
    as.li(reg::t2, 0);
    // Three iterations of the Figure 1 chain, serialised through t2.
    for (int i = 0; i < 3; ++i) {
        as.add(reg::t0, reg::t9, reg::t2);  // add  rx <- ry+rz
        as.lw(reg::t1, 4, reg::t0);         // load rw <- 4(rx)
        as.sub(reg::t2, reg::t1, reg::t1);  // sub  <- rw
    }
    as.halt();

    Memory mem;
    LinkedImage img = Linker(LinkPolicy{}).link(p, mem);
    Emulator emu(p, mem, img, StackPolicy{}.initialSp());
    Pipeline pipe(cfg, emu);

    Timing t;
    pipe.onIssue([&](const Pipeline::IssueEvent &ev) {
        t.events.push_back(ev);
    });
    t.stats = pipe.run();
    return t;
}

void
printDiagram(const char *title, const Timing &t)
{
    std::printf("%s\n", title);
    std::printf("  %-7s %-10s %-28s %s\n", "cycle", "pc", "instruction",
                "notes");
    uint64_t prev = t.events.empty() ? 0 : t.events.front().cycle;
    for (const auto &ev : t.events) {
        std::string note;
        uint64_t gap = ev.cycle - prev;
        if (gap > 1)
            note = "<- " + std::to_string(gap - 1) + "-cycle stall";
        if (ev.speculated)
            note += note.empty() ? "speculative access"
                                 : ", speculative";
        std::printf("  %-7llu %08x   %-28s %s\n",
                    static_cast<unsigned long long>(ev.cycle), ev.rec.pc,
                    disasm(ev.rec.inst, ev.rec.pc).c_str(), note.c_str());
        prev = ev.cycle;
    }
    std::printf("  total: %llu cycles\n\n",
                static_cast<unsigned long long>(t.stats.cycles));
}

} // anonymous namespace

int
main()
{
    printDiagram("== baseline (2-cycle loads) ==",
                 timeProgram(baselineConfig()));
    printDiagram("== fast address calculation ==",
                 timeProgram(facPipelineConfig()));
    printDiagram("== AGI organisation ==", timeProgram(agiConfig()));
    return 0;
}
