/**
 * @file
 * Example: instruction-level inspection. Disassembles the first dynamic
 * instructions of a workload, annotating every load/store with its
 * effective address, addressing class and the fast-address-calculation
 * verdict (including which failure signal fired) — the view Figure 5's
 * worked examples give of individual accesses.
 *
 *   build/examples/trace_inspector [workload] [count]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/fast_addr_calc.hh"
#include "cpu/profiler.hh"
#include "isa/disasm.hh"
#include "sim/machine.hh"

using namespace facsim;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "xlisp";
    uint64_t count = argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 40;

    Machine m(workload(name), BuildOptions{});
    FastAddrCalc fac(FacConfig{.blockBits = 5, .setBits = 14});

    std::printf("first %llu dynamic instructions of '%s' "
                "(gp=0x%08x, sp=0x%08x)\n\n",
                static_cast<unsigned long long>(count), name.c_str(),
                m.image().gpValue, m.emulator().intReg(reg::sp));

    ExecRecord rec;
    for (uint64_t i = 0; i < count && m.emulator().step(&rec); ++i) {
        std::string text = disasm(rec.inst, rec.pc);
        std::printf("%08x  %-34s", rec.pc, text.c_str());
        if (isMem(rec.inst.op)) {
            FacResult fr = fac.predict(rec.baseVal, rec.offsetVal,
                                       rec.offsetFromReg);
            const char *cls = "general";
            if (classifyRef(rec.inst) == RefClass::Global)
                cls = "global";
            else if (classifyRef(rec.inst) == RefClass::Stack)
                cls = "stack";
            std::printf(" ea=0x%08x %-7s FAC:%s", rec.effAddr, cls,
                        fr.success
                            ? "hit"
                            : FastAddrCalc::failMaskName(fr.failMask)
                                  .c_str());
        }
        std::printf("\n");
    }

    // Tail summary over a longer window.
    Profiler prof;
    prof.addFacConfig(FacConfig{.blockBits = 5, .setBits = 14});
    uint64_t n = 0;
    while (m.emulator().step(&rec) && n++ < 500'000)
        prof.observe(rec);
    if (prof.loads() + prof.stores() > 0) {
        std::printf("\nnext %llu insts: %llu refs, load failure rate "
                    "%.1f%%, store failure rate %.1f%%\n",
                    static_cast<unsigned long long>(n),
                    static_cast<unsigned long long>(prof.loads() +
                                                    prof.stores()),
                    100.0 * prof.fac(0).loadFailRate(),
                    100.0 * prof.fac(0).storeFailRate());
    }
    return 0;
}
