/**
 * @file
 * Example: exploring how fast address calculation interacts with cache
 * geometry. Sweeps block size and cache size for one workload and
 * reports prediction failure rates and speedups — the design-space
 * exploration a cache architect would run with this library.
 *
 *   build/examples/cache_geometry [workload]
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "sim/config.hh"
#include "sim/experiment.hh"
#include "sim/stats.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace facsim;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "sc";

    struct Geo
    {
        uint32_t sizeKb;
        uint32_t block;
    };
    const Geo geos[] = {
        {8, 16}, {8, 32}, {16, 16}, {16, 32}, {32, 32}, {32, 64},
    };

    Table t;
    t.header({"Cache", "Block", "D$miss%", "fail%", "base cyc",
              "FAC cyc", "speedup"});

    for (const Geo &g : geos) {
        PipelineConfig base = baselineConfig(g.block);
        base.dcache.sizeBytes = g.sizeKb * 1024;

        PipelineConfig fac = base;
        fac.facEnabled = true;
        fac.fac = facConfigFor(fac.dcache);

        ProfileRequest preq;
        preq.workload = name;
        preq.facConfigs = {fac.fac};
        ProfileResult prof = runProfile(preq);

        TimingRequest breq;
        breq.workload = name;
        breq.pipe = base;
        TimingResult tb = runTiming(breq);

        TimingRequest freq;
        freq.workload = name;
        freq.pipe = fac;
        TimingResult tf = runTiming(freq);

        t.row({strprintf("%uk", g.sizeKb), strprintf("%uB", g.block),
               fmtPct(tb.stats.dcacheMissRatio(), 2),
               fmtPct(prof.fac[0].loadFailRate(), 1),
               fmtCount(tb.stats.cycles), fmtCount(tf.stats.cycles),
               fmtF(speedup(tb.stats.cycles, tf.stats.cycles), 3)});
    }

    std::printf("FAC vs cache geometry for workload '%s'\n"
                "(larger blocks widen the full-add field; larger caches "
                "widen the carry-free OR field)\n\n", name.c_str());
    t.print(std::cout);
    return 0;
}
