/**
 * @file
 * Property tests over randomly generated programs: the timing model
 * must satisfy global invariants for *any* program, not just the
 * workloads —
 *
 *   1. the pipeline executes exactly the functional instruction stream;
 *   2. fast address calculation never makes a program meaningfully
 *      slower than the baseline (the paper's §5.5 design goal);
 *   3. the Figure 2 idealisations only ever help;
 *   4. simulation is deterministic;
 *   5. IPC never exceeds the issue width.
 */

#include <gtest/gtest.h>

#include "asm/builder.hh"
#include "cpu/pipeline.hh"
#include "link/linker.hh"
#include "sim/config.hh"
#include "util/rng.hh"

namespace facsim
{
namespace
{

/** Emit a random but well-formed straight-line-with-skips program. */
void
genProgram(AsmBuilder &as, Rng &rng, int body_len)
{
    SymId buf = as.global("buf", 64 * 1024, 64, false);
    as.la(reg::s0, buf);
    as.move(reg::s2, reg::s0);  // roving post-increment cursor

    // A few registers initialised with safe values.
    const uint8_t temps[] = {reg::t0, reg::t1, reg::t2, reg::t3,
                             reg::t4, reg::t5};
    for (uint8_t r : temps)
        as.li(r, static_cast<int32_t>(rng.range(1 << 16)));
    as.li(reg::s1, 0);  // FP seed int
    as.mtc1(2, reg::s1);
    as.cvtDW(2, 2);
    as.mtc1(4, reg::t0);
    as.cvtDW(4, 4);

    int pending_skip = -1;
    LabelId skip_label = 0;

    for (int i = 0; i < body_len; ++i) {
        if (pending_skip == 0) {
            as.bind(skip_label);
            pending_skip = -1;
        } else if (pending_skip > 0) {
            --pending_skip;
        }

        auto t = [&] { return temps[rng.range(6)]; };
        switch (rng.range(14)) {
          case 0:
            as.add(t(), t(), t());
            break;
          case 1:
            as.sub(t(), t(), t());
            break;
          case 2:
            as.andi(t(), t(), static_cast<int32_t>(rng.range(0xffff)));
            break;
          case 3:
            as.sll(t(), t(), static_cast<int32_t>(rng.range(31)));
            break;
          case 4:
            as.mul(t(), t(), t());
            break;
          case 5: {
            // Word load at an aligned in-bounds offset.
            int32_t off = static_cast<int32_t>(rng.range(8192)) & ~3;
            as.lw(t(), off, reg::s0);
            break;
          }
          case 6: {
            int32_t off = static_cast<int32_t>(rng.range(8192));
            as.lbu(t(), off, reg::s0);
            break;
          }
          case 7: {
            int32_t off = static_cast<int32_t>(rng.range(8192)) & ~3;
            as.sw(t(), off, reg::s0);
            break;
          }
          case 8: {
            // Register+register access with an aligned index.
            uint8_t idx = t();
            as.andi(idx, idx, 0x1ffc);
            as.lwRR(t(), reg::s0, idx);
            break;
          }
          case 9: {
            int32_t off = static_cast<int32_t>(rng.range(4096)) & ~7;
            if (rng.chance(0.5))
                as.ldc1(6, off, reg::s0);
            else
                as.sdc1(2, off, reg::s0);
            break;
          }
          case 10:
            as.addD(2, 2, 4);
            break;
          case 11:
            // Post-increment walk step (bounded: <= body_len * 8 bytes
            // into the 64 KB buffer).
            if (rng.chance(0.5))
                as.lwPost(t(), reg::s2, 8);
            else
                as.swPost(t(), reg::s2, 8);
            break;
          case 12:
            as.move(reg::s2, reg::s0);  // reset the roving cursor
            break;
          default:
            // A forward skip over the next few instructions, on a
            // data-dependent condition (unpredictable to the BTB).
            if (pending_skip < 0 && i + 6 < body_len) {
                skip_label = as.newLabel();
                if (rng.chance(0.5))
                    as.beq(t(), t(), skip_label);
                else
                    as.bne(t(), t(), skip_label);
                pending_skip = static_cast<int>(rng.range(4)) + 1;
            } else {
                as.nop();
            }
            break;
        }
    }
    if (pending_skip >= 0)
        as.bind(skip_label);
    as.halt();
}

struct RunResult
{
    uint64_t cycles;
    uint64_t insts;
};

RunResult
runOne(uint64_t seed, int body_len, const PipelineConfig &cfg)
{
    Program p;
    AsmBuilder as(p);
    Rng rng(seed);
    genProgram(as, rng, body_len);
    Memory mem;
    LinkedImage img = Linker(LinkPolicy{}).link(p, mem);
    Emulator emu(p, mem, img, 0x7fff5b88);
    Pipeline pipe(cfg, emu);
    PipeStats st = pipe.run();
    return {st.cycles, st.insts};
}

uint64_t
functionalInsts(uint64_t seed, int body_len)
{
    Program p;
    AsmBuilder as(p);
    Rng rng(seed);
    genProgram(as, rng, body_len);
    Memory mem;
    LinkedImage img = Linker(LinkPolicy{}).link(p, mem);
    Emulator emu(p, mem, img, 0x7fff5b88);
    return emu.run();
}

class RandomProgramTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomProgramTest, PipelineExecutesTheFunctionalStream)
{
    uint64_t seed = GetParam();
    RunResult base = runOne(seed, 300, baselineConfig());
    EXPECT_EQ(base.insts, functionalInsts(seed, 300));
}

TEST_P(RandomProgramTest, FacNeverMeaningfullySlower)
{
    uint64_t seed = GetParam();
    RunResult base = runOne(seed, 300, baselineConfig());
    RunResult fac = runOne(seed, 300, facPipelineConfig());
    EXPECT_EQ(base.insts, fac.insts);
    // Slack: the §5.5 issue rule can cost isolated cycles.
    EXPECT_LE(fac.cycles, base.cycles + 4 + base.insts / 50)
        << "seed " << seed;
}

TEST_P(RandomProgramTest, IdealisationsOnlyHelp)
{
    uint64_t seed = GetParam();
    uint64_t base = runOne(seed, 300, baselineConfig()).cycles;
    uint64_t one = runOne(seed, 300, oneCycleLoadConfig()).cycles;
    uint64_t perfect = runOne(seed, 300, perfectCacheConfig()).cycles;
    uint64_t both = runOne(seed, 300, oneCyclePerfectConfig()).cycles;
    EXPECT_LE(one, base);
    EXPECT_LE(perfect, base);
    EXPECT_LE(both, one);
    EXPECT_LE(both, perfect);
}

TEST_P(RandomProgramTest, DeterministicCycles)
{
    uint64_t seed = GetParam();
    RunResult a = runOne(seed, 200, facPipelineConfig());
    RunResult b = runOne(seed, 200, facPipelineConfig());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.insts, b.insts);
}

TEST_P(RandomProgramTest, IpcBoundedByIssueWidth)
{
    uint64_t seed = GetParam();
    RunResult r = runOne(seed, 400, oneCyclePerfectConfig());
    EXPECT_LE(static_cast<double>(r.insts) / r.cycles, 4.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range<uint64_t>(1, 21));

} // anonymous namespace
} // namespace facsim
