/** @file Unit tests for the branch target buffer. */

#include <gtest/gtest.h>

#include "branch/btb.hh"

namespace facsim
{
namespace
{

TEST(Btb, MissesWhenEmpty)
{
    Btb b(16);
    BtbPrediction p = b.predict(0x00400000);
    EXPECT_FALSE(p.hit);
}

TEST(Btb, LearnsTakenBranch)
{
    Btb b(16);
    b.update(0x00400000, true, 0x00400100);
    BtbPrediction p = b.predict(0x00400000);
    EXPECT_TRUE(p.hit);
    EXPECT_TRUE(p.taken);
    EXPECT_EQ(p.target, 0x00400100u);
}

TEST(Btb, TwoBitHysteresis)
{
    Btb b(16);
    uint32_t pc = 0x00400040;
    b.update(pc, true, 0x1000);   // allocate, counter = 2
    b.update(pc, true, 0x1000);   // counter = 3
    b.update(pc, false, 0x1000);  // counter = 2 — still predicts taken
    EXPECT_TRUE(b.predict(pc).taken);
    b.update(pc, false, 0x1000);  // counter = 1
    EXPECT_FALSE(b.predict(pc).taken);
}

TEST(Btb, NotTakenAllocationBiasesNotTaken)
{
    Btb b(16);
    uint32_t pc = 0x00400080;
    b.update(pc, false, 0);
    BtbPrediction p = b.predict(pc);
    EXPECT_TRUE(p.hit);
    EXPECT_FALSE(p.taken);
}

TEST(Btb, DirectMappedAliasing)
{
    Btb b(16);
    uint32_t pc_a = 0x00400000;
    uint32_t pc_b = pc_a + 16 * 4;  // same index, different tag
    b.update(pc_a, true, 0x1111);
    b.update(pc_b, true, 0x2222);   // evicts A's entry
    EXPECT_FALSE(b.predict(pc_a).hit);
    EXPECT_TRUE(b.predict(pc_b).hit);
}

TEST(Btb, TargetUpdatedOnTaken)
{
    Btb b(16);
    uint32_t pc = 0x004000c0;
    b.update(pc, true, 0x1000);
    b.update(pc, true, 0x2000);     // indirect branch changed target
    EXPECT_EQ(b.predict(pc).target, 0x2000u);
}

TEST(BtbDeathTest, RejectsNonPow2)
{
    EXPECT_DEATH(Btb(12), "power of two");
}

} // anonymous namespace
} // namespace facsim
