/** @file Unit tests for the cache tag-state model. */

#include <gtest/gtest.h>

#include "cache/cache.hh"

namespace facsim
{
namespace
{

TEST(CacheConfig, FieldWidths)
{
    CacheConfig c{16 * 1024, 32, 1, 6};
    EXPECT_EQ(c.blockBits(), 5u);
    EXPECT_EQ(c.setBits(), 14u);
    EXPECT_EQ(c.numSets(), 512u);

    CacheConfig c16{16 * 1024, 16, 1, 6};
    EXPECT_EQ(c16.blockBits(), 4u);
    EXPECT_EQ(c16.setBits(), 14u);

    CacheConfig a2{16 * 1024, 32, 2, 6};
    EXPECT_EQ(a2.setBits(), 13u);
    EXPECT_EQ(a2.numSets(), 256u);
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(CacheConfig{1024, 32, 1, 6});
    EXPECT_FALSE(c.read(0x100).hit);
    EXPECT_TRUE(c.read(0x100).hit);
    EXPECT_TRUE(c.read(0x11c).hit);   // same 32-byte block
    EXPECT_FALSE(c.read(0x120).hit);  // next block
    EXPECT_EQ(c.readMisses(), 2u);
    EXPECT_EQ(c.reads(), 4u);
}

TEST(Cache, DirectMappedConflict)
{
    Cache c(CacheConfig{1024, 32, 1, 6});
    c.read(0x0);
    c.read(0x400);            // same set (1 KB apart), evicts
    EXPECT_FALSE(c.read(0x0).hit);
}

TEST(Cache, TwoWayAvoidsSimpleConflict)
{
    Cache c(CacheConfig{1024, 32, 2, 6});
    c.read(0x0);
    c.read(0x200);            // maps to same set, second way
    EXPECT_TRUE(c.read(0x0).hit);
    EXPECT_TRUE(c.read(0x200).hit);
}

TEST(Cache, LruEviction)
{
    Cache c(CacheConfig{1024, 32, 2, 6});
    c.read(0x0);     // way A
    c.read(0x200);   // way B
    c.read(0x0);     // A is now MRU
    c.read(0x400);   // evicts LRU = 0x200
    EXPECT_TRUE(c.read(0x0).hit);
    EXPECT_FALSE(c.read(0x200).hit);
}

TEST(Cache, WritebackOfDirtyVictim)
{
    Cache c(CacheConfig{1024, 32, 1, 6});
    c.write(0x0);                     // dirty
    CacheAccess a = c.read(0x400);    // evicts dirty line
    EXPECT_TRUE(a.writeback);
    EXPECT_EQ(c.writebacks(), 1u);
    // Clean victim: no writeback.
    CacheAccess b = c.read(0x800);
    EXPECT_FALSE(b.writeback);
}

TEST(Cache, WriteAllocates)
{
    Cache c(CacheConfig{1024, 32, 1, 6});
    EXPECT_FALSE(c.write(0x40).hit);
    EXPECT_TRUE(c.read(0x40).hit);
    EXPECT_EQ(c.writeMisses(), 1u);
}

TEST(Cache, ProbeDoesNotFill)
{
    Cache c(CacheConfig{1024, 32, 1, 6});
    EXPECT_FALSE(c.probe(0x40));
    EXPECT_FALSE(c.read(0x40).hit);  // still cold: probe didn't allocate
    EXPECT_TRUE(c.probe(0x40));
    EXPECT_EQ(c.reads(), 1u);        // probes aren't counted as accesses
}

TEST(Cache, MissRatioAndReset)
{
    Cache c(CacheConfig{1024, 32, 1, 6});
    c.read(0x0);
    c.read(0x0);
    EXPECT_DOUBLE_EQ(c.missRatio(), 0.5);
    c.reset();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_FALSE(c.read(0x0).hit);
}

TEST(Cache, FourWayLruEvictionOrder)
{
    // One set holds four lines; touching them in a known order must
    // evict strictly least-recently-used first.
    Cache c(CacheConfig{128, 32, 4, 6});
    c.read(0x000);
    c.read(0x080);
    c.read(0x100);
    c.read(0x180);
    c.read(0x000);            // order is now 080, 100, 180, 000
    c.read(0x080);            // order is now 100, 180, 000, 080
    c.read(0x200);            // evicts 0x100
    EXPECT_FALSE(c.probe(0x100));
    EXPECT_TRUE(c.probe(0x180));
    c.read(0x280);            // evicts 0x180
    EXPECT_FALSE(c.probe(0x180));
    EXPECT_TRUE(c.probe(0x000));
    EXPECT_TRUE(c.probe(0x080));
    EXPECT_TRUE(c.probe(0x200));
}

TEST(Cache, DirtyWritebackPerWayAtAssocTwo)
{
    // Dirty state must follow the way, not the set: evicting the clean
    // way of a set with one dirty way is free; evicting the dirty way
    // writes back.
    Cache c(CacheConfig{1024, 32, 2, 6});
    c.write(0x0);             // way A dirty
    c.read(0x200);            // way B clean
    c.write(0x0);             // A is MRU; B is the next victim
    CacheAccess clean = c.read(0x400);
    EXPECT_FALSE(clean.writeback);
    // Now A (0x0, dirty) is LRU behind 0x400.
    c.read(0x400);
    CacheAccess dirty = c.read(0x600);
    EXPECT_TRUE(dirty.writeback);
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, VictimAddressReconstructsEvictedBlock)
{
    Cache c(CacheConfig{1024, 32, 1, 6});
    c.write(0x12340);                  // dirty, set = (0x12340/32) % 32
    CacheAccess a = c.read(0x12340 + 1024);  // same set, evicts it
    EXPECT_TRUE(a.writeback);
    EXPECT_EQ(a.victimAddr, 0x12340u);
    // Two-way: the victim is the LRU way's block, not the incoming one.
    Cache c2(CacheConfig{1024, 32, 2, 6});
    c2.write(0x0);
    c2.write(0x200);
    c2.read(0x0);
    CacheAccess b = c2.read(0x400);    // evicts LRU = 0x200
    EXPECT_TRUE(b.writeback);
    EXPECT_EQ(b.victimAddr, 0x200u);
}

TEST(CacheDeathTest, RejectsBadGeometry)
{
    EXPECT_DEATH(Cache(CacheConfig{1000, 32, 1, 6}), "powers of two");
    EXPECT_DEATH(Cache(CacheConfig{32, 32, 4, 6}), "too small");
}

TEST(CacheDeathTest, ValidateRejectsIncoherentShapes)
{
    // Block larger than the whole cache.
    EXPECT_DEATH((CacheConfig{1024, 2048, 1, 6}.validate()),
                 "larger than");
    // Sub-word blocks.
    EXPECT_DEATH((CacheConfig{1024, 2, 1, 6}.validate()), "smaller than");
    // Associativity that cannot fit even one set.
    EXPECT_DEATH((CacheConfig{128, 32, 8, 6}.validate()), "too small");
    // Non-power-of-two associativity.
    EXPECT_DEATH((CacheConfig{1024, 32, 3, 6}.validate()),
                 "powers of two");
    // A coherent shape passes (validate returns normally).
    CacheConfig{1024, 32, 4, 6}.validate();
}

} // anonymous namespace
} // namespace facsim
