/** @file Unit tests for the cache tag-state model. */

#include <gtest/gtest.h>

#include "cache/cache.hh"

namespace facsim
{
namespace
{

TEST(CacheConfig, FieldWidths)
{
    CacheConfig c{16 * 1024, 32, 1, 6};
    EXPECT_EQ(c.blockBits(), 5u);
    EXPECT_EQ(c.setBits(), 14u);
    EXPECT_EQ(c.numSets(), 512u);

    CacheConfig c16{16 * 1024, 16, 1, 6};
    EXPECT_EQ(c16.blockBits(), 4u);
    EXPECT_EQ(c16.setBits(), 14u);

    CacheConfig a2{16 * 1024, 32, 2, 6};
    EXPECT_EQ(a2.setBits(), 13u);
    EXPECT_EQ(a2.numSets(), 256u);
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(CacheConfig{1024, 32, 1, 6});
    EXPECT_FALSE(c.read(0x100).hit);
    EXPECT_TRUE(c.read(0x100).hit);
    EXPECT_TRUE(c.read(0x11c).hit);   // same 32-byte block
    EXPECT_FALSE(c.read(0x120).hit);  // next block
    EXPECT_EQ(c.readMisses(), 2u);
    EXPECT_EQ(c.reads(), 4u);
}

TEST(Cache, DirectMappedConflict)
{
    Cache c(CacheConfig{1024, 32, 1, 6});
    c.read(0x0);
    c.read(0x400);            // same set (1 KB apart), evicts
    EXPECT_FALSE(c.read(0x0).hit);
}

TEST(Cache, TwoWayAvoidsSimpleConflict)
{
    Cache c(CacheConfig{1024, 32, 2, 6});
    c.read(0x0);
    c.read(0x200);            // maps to same set, second way
    EXPECT_TRUE(c.read(0x0).hit);
    EXPECT_TRUE(c.read(0x200).hit);
}

TEST(Cache, LruEviction)
{
    Cache c(CacheConfig{1024, 32, 2, 6});
    c.read(0x0);     // way A
    c.read(0x200);   // way B
    c.read(0x0);     // A is now MRU
    c.read(0x400);   // evicts LRU = 0x200
    EXPECT_TRUE(c.read(0x0).hit);
    EXPECT_FALSE(c.read(0x200).hit);
}

TEST(Cache, WritebackOfDirtyVictim)
{
    Cache c(CacheConfig{1024, 32, 1, 6});
    c.write(0x0);                     // dirty
    CacheAccess a = c.read(0x400);    // evicts dirty line
    EXPECT_TRUE(a.writeback);
    EXPECT_EQ(c.writebacks(), 1u);
    // Clean victim: no writeback.
    CacheAccess b = c.read(0x800);
    EXPECT_FALSE(b.writeback);
}

TEST(Cache, WriteAllocates)
{
    Cache c(CacheConfig{1024, 32, 1, 6});
    EXPECT_FALSE(c.write(0x40).hit);
    EXPECT_TRUE(c.read(0x40).hit);
    EXPECT_EQ(c.writeMisses(), 1u);
}

TEST(Cache, ProbeDoesNotFill)
{
    Cache c(CacheConfig{1024, 32, 1, 6});
    EXPECT_FALSE(c.probe(0x40));
    EXPECT_FALSE(c.read(0x40).hit);  // still cold: probe didn't allocate
    EXPECT_TRUE(c.probe(0x40));
    EXPECT_EQ(c.reads(), 1u);        // probes aren't counted as accesses
}

TEST(Cache, MissRatioAndReset)
{
    Cache c(CacheConfig{1024, 32, 1, 6});
    c.read(0x0);
    c.read(0x0);
    EXPECT_DOUBLE_EQ(c.missRatio(), 0.5);
    c.reset();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_FALSE(c.read(0x0).hit);
}

TEST(CacheDeathTest, RejectsBadGeometry)
{
    EXPECT_DEATH(Cache(CacheConfig{1000, 32, 1, 6}), "powers of two");
    EXPECT_DEATH(Cache(CacheConfig{32, 32, 4, 6}), "too small");
}

} // anonymous namespace
} // namespace facsim
