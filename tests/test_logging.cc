/** @file Unit tests for string formatting helpers. */

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace facsim
{
namespace
{

TEST(Logging, Strprintf)
{
    EXPECT_EQ(strprintf("plain"), "plain");
    EXPECT_EQ(strprintf("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(strprintf("%05.1f", 3.25), "003.2");
}

TEST(Logging, StrprintfLong)
{
    std::string big(500, 'a');
    EXPECT_EQ(strprintf("%s!", big.c_str()), big + "!");
}

TEST(LoggingDeathTest, AssertFires)
{
    EXPECT_DEATH(FACSIM_ASSERT(1 == 2, "unreachable %d", 7), "assertion");
}

TEST(Logging, AssertPassesQuietly)
{
    FACSIM_ASSERT(true, "never printed");
    SUCCEED();
}

} // anonymous namespace
} // namespace facsim
