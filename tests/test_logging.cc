/**
 * @file
 * Unit tests for string formatting helpers, the swappable status-line
 * sink and the thread-local panic-context hook.
 */

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace facsim
{
namespace
{

TEST(Logging, Strprintf)
{
    EXPECT_EQ(strprintf("plain"), "plain");
    EXPECT_EQ(strprintf("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(strprintf("%05.1f", 3.25), "003.2");
}

TEST(Logging, StrprintfLong)
{
    std::string big(500, 'a');
    EXPECT_EQ(strprintf("%s!", big.c_str()), big + "!");
}

TEST(LoggingDeathTest, AssertFires)
{
    EXPECT_DEATH(FACSIM_ASSERT(1 == 2, "unreachable %d", 7), "assertion");
}

TEST(Logging, AssertPassesQuietly)
{
    FACSIM_ASSERT(true, "never printed");
    SUCCEED();
}

TEST(Logging, CaptureSinkReceivesWarnAndInform)
{
    CaptureLogSink sink;
    LogSink *prev = setLogSink(&sink);
    warn("disk %s", "slow");
    inform("phase %d done", 2);
    setLogSink(prev);
    // Restored: this line must go to stderr, not the capture buffer.
    inform("not captured");

    ASSERT_EQ(sink.lines().size(), 2u);
    EXPECT_EQ(sink.lines()[0], "warn: disk slow");
    EXPECT_EQ(sink.lines()[1], "info: phase 2 done");

    sink.clear();
    EXPECT_TRUE(sink.lines().empty());
}

TEST(LoggingDeathTest, PanicContextHookRunsOnPanic)
{
    static const char marker[] = "ring context 0xbeef";
    int ctx = 0;
    setPanicContextHook(
        [](void *) -> std::string { return marker; }, &ctx);
    EXPECT_DEATH(panic("boom"), marker);
    clearPanicContextHook(&ctx);
}

TEST(LoggingDeathTest, ClearedHookOwnedByAnotherCtxStays)
{
    static const char marker[] = "surviving hook";
    int owner = 0, stranger = 0;
    setPanicContextHook(
        [](void *) -> std::string { return marker; }, &owner);
    // A different context must not clobber the installed hook.
    clearPanicContextHook(&stranger);
    EXPECT_DEATH(panic("boom"), marker);
    clearPanicContextHook(&owner);
}

} // anonymous namespace
} // namespace facsim
