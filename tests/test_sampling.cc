/**
 * @file
 * Statistical-equivalence tests for the sampled-simulation subsystem
 * (sim/sampling.hh): estimator unit tests, CI-containment of the
 * sampled IPC/speedup against full-detail runs across every workload,
 * and the 1/sqrt(n) confidence-interval shrink.
 *
 * Everything here is deterministic — workload data, the instruction
 * stream and the window placement are all seeded — so the statistical
 * assertions either always hold or always fail; there is no flake
 * budget.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "sim/config.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"
#include "sim/sampling.hh"

using namespace facsim;

namespace
{

// Reduced config shared by the equivalence tests: enough instructions
// for ~20 windows per program while keeping the suite fast.
constexpr uint64_t kMaxInsts = 120000;

SamplingConfig
testSampling()
{
    SamplingConfig s;
    s.period = 6000;
    s.detail = 600;
    s.warmup = 600;
    return s;
}

TimingRequest
timingRequest(const char *wl, const PipelineConfig &pipe,
              const SamplingConfig &s)
{
    TimingRequest req;
    req.workload = wl;
    req.build.policy = CodeGenPolicy::withSupport();
    req.pipe = pipe;
    req.maxInsts = kMaxInsts;
    req.sampling = s;
    return req;
}

} // namespace

TEST(SamplingConfigTest, ValidateRejectsIncoherentParameters)
{
    SamplingConfig ok;
    ok.period = 1000;
    ok.detail = 100;
    ok.warmup = 100;
    ok.validate();  // does not die

    SamplingConfig off;
    off.period = 0;
    off.validate();  // disabled: anything goes

    SamplingConfig zero_detail{1000, 0, 100};
    EXPECT_DEATH(zero_detail.validate(), "at least 1");

    SamplingConfig overfull{1000, 600, 600};
    EXPECT_DEATH(overfull.validate(), "fit in the period");
}

TEST(EstimatorTest, MeanAndStudentTInterval)
{
    MetricEstimate e = estimateMean({2.0, 4.0, 6.0});
    EXPECT_DOUBLE_EQ(e.mean, 4.0);
    EXPECT_EQ(e.n, 3u);
    // s = 2, sem = 2/sqrt(3), t(2 dof) = 4.303.
    EXPECT_NEAR(e.halfWidth, 4.303 * 2.0 / std::sqrt(3.0), 1e-9);
    EXPECT_TRUE(e.covers(4.0));
    EXPECT_TRUE(e.covers(4.0 + e.halfWidth));
    EXPECT_FALSE(e.covers(4.0 + 1.01 * e.halfWidth));
}

TEST(EstimatorTest, DegenerateInputs)
{
    EXPECT_EQ(estimateMean({}).n, 0u);
    EXPECT_TRUE(estimateMean({}).insufficient);
    MetricEstimate one = estimateMean({7.0});
    EXPECT_DOUBLE_EQ(one.mean, 7.0);
    EXPECT_DOUBLE_EQ(one.halfWidth, 0.0);
    EXPECT_TRUE(one.insufficient);

    MetricEstimate constant = estimateMean({3.0, 3.0, 3.0, 3.0});
    EXPECT_DOUBLE_EQ(constant.mean, 3.0);
    EXPECT_DOUBLE_EQ(constant.halfWidth, 0.0);
    EXPECT_FALSE(constant.insufficient);

    // The ratio estimator flags the same degrees-of-freedom hole: one
    // window has a point estimate but no interval, and an all-zero
    // denominator has neither.
    MetricEstimate ratio1 = ratioEstimate({120.0}, {100.0});
    EXPECT_DOUBLE_EQ(ratio1.mean, 1.2);
    EXPECT_DOUBLE_EQ(ratio1.halfWidth, 0.0);
    EXPECT_TRUE(ratio1.insufficient);
    EXPECT_TRUE(ratioEstimate({1.0, 2.0}, {0.0, 0.0}).insufficient);
}

TEST(EstimatorTest, LargeNUsesNormalApproximation)
{
    std::vector<double> s;
    for (int i = 0; i < 100; ++i)
        s.push_back(i % 2 ? 1.0 : -1.0);
    MetricEstimate e = estimateMean(s);
    EXPECT_DOUBLE_EQ(e.mean, 0.0);
    double sem = std::sqrt((100.0 / 99.0) / 100.0);
    EXPECT_NEAR(e.halfWidth, 1.96 * sem, 1e-9);
}

TEST(EstimatorTest, RatioEstimateMatchesAggregateRatio)
{
    // Windows with varying sizes: the estimate must be the aggregate
    // ratio, not the mean of per-window ratios.
    std::vector<double> cycles{100.0, 210.0, 330.0};
    std::vector<double> insts{100.0, 200.0, 300.0};
    MetricEstimate e = ratioEstimate(cycles, insts);
    EXPECT_DOUBLE_EQ(e.mean, 640.0 / 600.0);
    EXPECT_GT(e.halfWidth, 0.0);

    // Exact-ratio windows: zero residual, zero half-width.
    MetricEstimate exact =
        ratioEstimate({2.0, 4.0, 8.0}, {1.0, 2.0, 4.0});
    EXPECT_DOUBLE_EQ(exact.mean, 2.0);
    EXPECT_DOUBLE_EQ(exact.halfWidth, 0.0);
}

TEST(SampledRunTest, AccountsForEveryInstruction)
{
    TimingRequest req =
        timingRequest("espresso", facPipelineConfig(32), testSampling());
    TimingResult res = runTiming(req);

    ASSERT_TRUE(res.sample.enabled);
    EXPECT_GT(res.sample.windows, 10u);
    // measured + warmup + drain = detailed instructions (the pipeline's
    // stats), and detailed + fast-forwarded = every retired instruction.
    EXPECT_EQ(res.sample.measuredInsts + res.sample.warmupInsts +
                  res.sample.drainInsts,
              res.stats.insts);
    EXPECT_EQ(res.stats.insts + res.sample.fastForwardInsts,
              res.sample.totalInsts);
    EXPECT_LE(res.sample.totalInsts, kMaxInsts);
    // The detail fraction should be near (warmup+detail)/period.
    EXPECT_LT(res.sample.detailFraction(), 0.35);
}

/**
 * Regression: a period/limit combo that completes exactly one measured
 * window used to feed n=1 into the Student-t machinery (0 degrees of
 * freedom). The run must report the point estimate with an explicit
 * insufficient-windows CI, not a fabricated zero-width interval.
 */
TEST(SampledRunTest, SingleWindowReportsInsufficientCi)
{
    SamplingConfig s;
    s.period = 50000;
    s.detail = 600;
    s.warmup = 600;
    TimingRequest req = timingRequest("espresso", facPipelineConfig(32), s);
    req.maxInsts = s.period;  // exactly one period => one window
    TimingResult res = runTiming(req);

    ASSERT_TRUE(res.sample.enabled);
    ASSERT_EQ(res.sample.windows, 1u);
    EXPECT_EQ(res.sample.cpi.n, 1u);
    EXPECT_TRUE(res.sample.cpi.insufficient);
    EXPECT_TRUE(res.sample.ipc.insufficient);
    EXPECT_GT(res.sample.cpi.mean, 0.0);
    EXPECT_DOUBLE_EQ(res.sample.cpi.halfWidth, 0.0);
    // A two-window run over the same slice does produce an interval.
    SamplingConfig two = s;
    two.period = 25000;
    TimingRequest req2 =
        timingRequest("espresso", facPipelineConfig(32), two);
    req2.maxInsts = 2 * two.period;
    TimingResult res2 = runTiming(req2);
    ASSERT_EQ(res2.sample.windows, 2u);
    EXPECT_FALSE(res2.sample.cpi.insufficient);
}

TEST(SampledRunTest, RequiresFreshPipeline)
{
    Machine m(workload("espresso"), BuildOptions{});
    Pipeline pipe(baselineConfig(32), m.emulator());
    pipe.run(1000);
    SamplingConfig s = testSampling();
    EXPECT_DEATH(runSampled(pipe, s, 0), "freshly constructed");
}

/**
 * The headline statistical-equivalence claim, on every workload: the
 * sampled IPC estimate's 95% CI covers the full-detail IPC, and the
 * sampled speedup matches the full-detail speedup to within the CIs'
 * combined relative width.
 */
TEST(SampledRunTest, AllWorkloadsIpcAndSpeedupWithinCi)
{
    std::vector<const WorkloadInfo *> wls;
    for (const WorkloadInfo &w : allWorkloads())
        wls.push_back(&w);
    ASSERT_EQ(wls.size(), 19u);

    // Per workload: full FAC, full baseline, sampled FAC, sampled
    // baseline.
    std::vector<TimingRequest> reqs;
    for (const WorkloadInfo *w : wls) {
        reqs.push_back(timingRequest(w->name, facPipelineConfig(32),
                                     SamplingConfig{}));
        reqs.push_back(timingRequest(w->name, baselineConfig(32),
                                     SamplingConfig{}));
        reqs.push_back(timingRequest(w->name, facPipelineConfig(32),
                                     testSampling()));
        reqs.push_back(timingRequest(w->name, baselineConfig(32),
                                     testSampling()));
    }
    std::vector<TimingResult> res = Runner(0).runTimings(reqs);

    for (size_t i = 0; i < wls.size(); ++i) {
        SCOPED_TRACE(wls[i]->name);
        const TimingResult &fullFac = res[4 * i];
        const TimingResult &fullBase = res[4 * i + 1];
        const TimingResult &sampFac = res[4 * i + 2];
        const TimingResult &sampBase = res[4 * i + 3];

        ASSERT_FALSE(fullFac.sample.enabled);
        ASSERT_TRUE(sampFac.sample.enabled);
        EXPECT_GE(sampFac.sample.windows, 15u);

        // IPC containment: the reported interval covers the truth.
        double trueIpc = fullFac.stats.ipc();
        EXPECT_TRUE(sampFac.sample.ipc.covers(trueIpc))
            << "sampled IPC " << sampFac.sample.ipc.mean << " +- "
            << sampFac.sample.ipc.halfWidth << " vs full " << trueIpc;

        // Same program slice was covered. A detailed run only checks
        // the instruction budget at cycle boundaries, so it can retire
        // up to issue-width extra instructions; fast-forward stops
        // exactly on the budget.
        EXPECT_LE(sampFac.sample.totalInsts, fullFac.stats.insts);
        EXPECT_GE(sampFac.sample.totalInsts + 4, fullFac.stats.insts);

        // Speedup: the ratio of estimates matches the true ratio to
        // within the two intervals' combined relative width.
        double trueSpd = static_cast<double>(fullBase.stats.cycles) /
            fullFac.stats.cycles;
        double estSpd =
            sampBase.sample.estCycles() / sampFac.sample.estCycles();
        double tol = trueSpd * (sampFac.sample.cpi.relHalfWidth() +
                                sampBase.sample.cpi.relHalfWidth());
        EXPECT_NEAR(estSpd, trueSpd, tol)
            << "speedup " << estSpd << " vs " << trueSpd;
        EXPECT_NEAR(estSpd, trueSpd, 0.02);
    }
}

/** Quadrupling the window count shrinks the CI roughly 1/sqrt(n). */
TEST(SampledRunTest, CiHalfWidthShrinksWithWindowCount)
{
    SamplingConfig coarse = testSampling();   // ~20 windows
    SamplingConfig fine = coarse;
    fine.period = coarse.period / 4;          // ~80 windows

    TimingResult rc =
        runTiming(timingRequest("compress", facPipelineConfig(32), coarse));
    TimingResult rf =
        runTiming(timingRequest("compress", facPipelineConfig(32), fine));

    ASSERT_GE(rc.sample.windows, 15u);
    ASSERT_GE(rf.sample.windows, 4 * rc.sample.windows - 8);
    ASSERT_GT(rc.sample.cpi.halfWidth, 0.0);
    ASSERT_GT(rf.sample.cpi.halfWidth, 0.0);

    // Expected shrink is 2x; window-to-window variance differences and
    // the t-vs-z critical value leave a generous band around it.
    double shrink = rc.sample.cpi.halfWidth / rf.sample.cpi.halfWidth;
    EXPECT_GT(shrink, 1.3) << "coarse hw " << rc.sample.cpi.halfWidth
                           << " fine hw " << rf.sample.cpi.halfWidth;
    EXPECT_LT(shrink, 3.2);
}
