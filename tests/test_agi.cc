/**
 * @file
 * Tests for the AGI pipeline organisation (Section 6 comparison):
 * removed load-use hazard, introduced address-use hazard, +1 branch
 * penalty — and the Golden & Mudge shape that neither AGI nor LUI
 * tolerates load latency the way fast address calculation does.
 */

#include <gtest/gtest.h>

#include <functional>

#include "asm/builder.hh"
#include "cpu/pipeline.hh"
#include "link/linker.hh"
#include "sim/config.hh"

namespace facsim
{
namespace
{

PipeStats
runProgram(const std::function<void(AsmBuilder &)> &gen,
           PipelineConfig cfg)
{
    // These are straight-line microprograms; disable I-cache modelling
    // so cold-fetch stalls don't drown the datapath effect under test.
    cfg.perfectICache = true;
    Program p;
    AsmBuilder as(p);
    gen(as);
    Memory mem;
    LinkedImage img = Linker(LinkPolicy{}).link(p, mem);
    Emulator emu(p, mem, img, 0x7fff5b88);
    Pipeline pipe(cfg, emu);
    return pipe.run();
}

// load -> dependent ALU chains: the hazard AGI removes.
void
loadUseChain(AsmBuilder &as, int n)
{
    SymId cell = as.global("cell", 64, 64, false);
    as.la(reg::s0, cell);
    as.li(reg::t2, 0);
    for (int i = 0; i < n; ++i) {
        as.lw(reg::t1, 0, reg::s0);          // load
        as.add(reg::t2, reg::t2, reg::t1);   // use (serial accumulate)
        as.add(reg::t2, reg::t2, reg::t1);   // second use keeps it serial
    }
    as.halt();
}

// ALU -> dependent load address chains: the hazard AGI introduces.
void
addressUseChain(AsmBuilder &as, int n)
{
    SymId cell = as.global("cell", 64, 64, false);
    as.la(reg::s0, cell);
    as.sw(reg::s0, 0, reg::s0);
    for (int i = 0; i < n; ++i) {
        as.add(reg::t0, reg::s0, reg::zero);  // ALU computes the base...
        as.lw(reg::s0, 0, reg::t0);           // ...the load consumes it
    }
    as.halt();
}

TEST(Agi, RemovesLoadUseHazard)
{
    const int n = 200;
    PipeStats lui = runProgram(
        [&](AsmBuilder &as) { loadUseChain(as, n); }, baselineConfig());
    PipeStats agi = runProgram(
        [&](AsmBuilder &as) { loadUseChain(as, n); }, agiConfig());
    EXPECT_LT(agi.cycles + n / 2, lui.cycles);
}

TEST(Agi, IntroducesAddressUseHazard)
{
    const int n = 200;
    PipeStats lui = runProgram(
        [&](AsmBuilder &as) { addressUseChain(as, n); },
        baselineConfig());
    PipeStats agi = runProgram(
        [&](AsmBuilder &as) { addressUseChain(as, n); }, agiConfig());
    // The add->load chain costs one extra cycle per link under AGI.
    EXPECT_GT(agi.cycles + n / 2, lui.cycles);
}

TEST(Agi, PointerChasingUnchanged)
{
    // Pure load->load chains hit neither hazard differently: both
    // organisations take 2 cycles per link.
    auto gen = [](AsmBuilder &as) {
        SymId cell = as.global("cell", 64, 64, false);
        as.la(reg::s0, cell);
        as.sw(reg::s0, 0, reg::s0);
        for (int i = 0; i < 200; ++i)
            as.lw(reg::s0, 0, reg::s0);
        as.halt();
    };
    PipeStats lui = runProgram(gen, baselineConfig());
    PipeStats agi = runProgram(gen, agiConfig());
    EXPECT_NEAR(static_cast<double>(agi.cycles),
                static_cast<double>(lui.cycles), 12.0);
}

TEST(Agi, BranchPenaltyOneCycleLonger)
{
    // A data-dependent alternating branch mispredicts constantly; every
    // mispredict costs one more cycle under AGI.
    auto gen = [](AsmBuilder &as) {
        as.li(reg::t9, 400);
        LabelId top = as.newLabel();
        LabelId skip = as.newLabel();
        as.bind(top);
        as.andi(reg::t0, reg::t9, 1);
        as.beq(reg::t0, reg::zero, skip);
        as.nop();
        as.bind(skip);
        as.addi(reg::t9, reg::t9, -1);
        as.bgtz(reg::t9, top);
        as.halt();
    };
    PipeStats lui = runProgram(gen, baselineConfig());
    PipeStats agi = runProgram(gen, agiConfig());
    EXPECT_GT(agi.cycles, lui.cycles + lui.btbMispredicts / 2);
}

TEST(Agi, FacBeatsBothOrganisationsOnMixedCode)
{
    // Golden & Mudge's conclusion, plus the paper's: both AGI and LUI
    // leave untolerated latency that FAC removes. Mixed chain with both
    // hazards present.
    auto gen = [](AsmBuilder &as) {
        SymId cell = as.global("cell", 64, 64, false);
        as.la(reg::s0, cell);
        as.sw(reg::s0, 0, reg::s0);
        as.li(reg::t2, 0);
        for (int i = 0; i < 150; ++i) {
            as.add(reg::t0, reg::s0, reg::t2);   // addr-use edge
            as.lw(reg::t1, 0, reg::t0);          // load
            as.sub(reg::t2, reg::t1, reg::t1);   // load-use edge (=0)
        }
        as.halt();
    };
    PipeStats lui = runProgram(gen, baselineConfig());
    PipeStats agi = runProgram(gen, agiConfig());
    PipeStats fac = runProgram(gen, facPipelineConfig());
    EXPECT_LT(fac.cycles, lui.cycles);
    EXPECT_LT(fac.cycles, agi.cycles);
}

TEST(AgiDeathTest, ExclusiveWithFac)
{
    PipelineConfig cfg = facPipelineConfig();
    cfg.agiOrganization = true;
    Program p;
    AsmBuilder as(p);
    as.halt();
    Memory mem;
    LinkedImage img = Linker(LinkPolicy{}).link(p, mem);
    Emulator emu(p, mem, img, 0x7fff5b88);
    EXPECT_DEATH(Pipeline(cfg, emu), "alternative");
}

} // anonymous namespace
} // namespace facsim
