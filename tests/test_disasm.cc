/** @file Disassembler smoke tests (format stability for traces). */

#include <gtest/gtest.h>

#include "isa/disasm.hh"

namespace facsim
{
namespace
{

TEST(Disasm, AluForms)
{
    EXPECT_EQ(disasm(Inst{.op = Op::ADD, .rd = 2, .rs = 3, .rt = 4}),
              "add v0,v1,a0");
    EXPECT_EQ(disasm(Inst{.op = Op::ADDI, .rs = 29, .rt = 29,
                          .imm = -64}),
              "addi sp,sp,-64");
    EXPECT_EQ(disasm(Inst{.op = Op::SLL, .rd = 8, .rs = 9, .imm = 3}),
              "sll t0,t1,3");
}

TEST(Disasm, MemForms)
{
    EXPECT_EQ(disasm(Inst{.op = Op::LW, .rs = 28, .rt = 8, .imm = 2436}),
              "lw t0,2436(gp)");
    EXPECT_EQ(disasm(Inst{.op = Op::LW, .amode = AMode::RegReg, .rd = 9,
                          .rs = 16, .rt = 8}),
              "lw t0,(s0+t1)");
    EXPECT_EQ(disasm(Inst{.op = Op::SB, .amode = AMode::PostInc, .rs = 16,
                          .rt = 8, .imm = 1}),
              "sb t0,(s0)+1");
    EXPECT_EQ(disasm(Inst{.op = Op::LDC1, .rs = 29, .rt = 4, .imm = 16}),
              "ldc1 f4,16(sp)");
}

TEST(Disasm, ControlShowsResolvedTarget)
{
    std::string s = disasm(Inst{.op = Op::BNE, .rs = 8, .rt = 9,
                                .imm = -2},
                           0x00400010);
    EXPECT_NE(s.find("0x0040000c"), std::string::npos);
    EXPECT_EQ(disasm(Inst{.op = Op::JR, .rs = 31}), "jr ra");
}

TEST(Disasm, FpForms)
{
    EXPECT_EQ(disasm(Inst{.op = Op::MUL_D, .rd = 2, .rs = 4, .rt = 6}),
              "mul.d f2,f4,f6");
    EXPECT_EQ(disasm(Inst{.op = Op::MTC1, .rd = 5, .rt = 8}),
              "mtc1 t0,f5");
}

TEST(Disasm, EveryOpHasAName)
{
    for (unsigned i = 0; i < static_cast<unsigned>(Op::NumOps); ++i) {
        std::string n = opName(static_cast<Op>(i));
        EXPECT_FALSE(n.empty());
        EXPECT_NE(n, "???");
    }
}

} // anonymous namespace
} // namespace facsim
