/**
 * @file
 * Equivalence tests for the translated-block execution engine. The
 * switch and computed-goto dispatch loops, the scalar step() path and
 * the batched functional-warming flush must all retire the identical
 * architectural stream; these tests run them in lockstep over every
 * workload and compare registers, memory images and warm traffic.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "cpu/emulator.hh"
#include "isa/inst.hh"
#include "sim/machine.hh"
#include "util/serialize.hh"

namespace facsim
{
namespace
{

BuildOptions
tiny()
{
    BuildOptions b;
    b.policy = CodeGenPolicy::baseline();
    b.scale = 1;
    return b;
}

uint64_t
fpBits(const Emulator &e, unsigned r)
{
    double d = e.fpReg(r);
    uint64_t bits;
    std::memcpy(&bits, &d, 8);
    return bits;
}

void
expectSameArch(const Emulator &a, const Emulator &b, const char *ctx)
{
    ASSERT_EQ(a.pc(), b.pc()) << ctx;
    ASSERT_EQ(a.instCount(), b.instCount()) << ctx;
    ASSERT_EQ(a.halted(), b.halted()) << ctx;
    ASSERT_EQ(a.fpccFlag(), b.fpccFlag()) << ctx;
    for (unsigned r = 0; r < numIntRegs; ++r)
        ASSERT_EQ(a.intReg(r), b.intReg(r))
            << ctx << ": $" << regName(r);
    for (unsigned r = 0; r < numFpRegs; ++r)
        ASSERT_EQ(fpBits(a, r), fpBits(b, r)) << ctx << ": $f" << r;
}

std::string
memoryImage(Machine &m)
{
    ser::Writer w;
    m.memory().saveState(w);
    return w.data();
}

// ---------------------------------------------------------------------------
// Cross-engine lockstep: switch and threaded dispatch must agree on
// every architectural bit at every chunk boundary. The chunk size is
// prime so the bound lands mid-block and exercises the scalar tail.

class EngineLockstepTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(EngineLockstepTest, SwitchAndThreadedAgree)
{
    Machine sw(workload(GetParam()), tiny());
    Machine th(workload(GetParam()), tiny());
    sw.emulator().setEngine(EmuEngine::Switch);
    th.emulator().setEngine(EmuEngine::Threaded);

    constexpr uint64_t kTotal = 200'000;
    constexpr uint64_t kChunk = 9'973;
    uint64_t done = 0;
    while (done < kTotal && !sw.emulator().halted()) {
        uint64_t ns = sw.emulator().run(kChunk);
        uint64_t nt = th.emulator().run(kChunk);
        ASSERT_EQ(ns, nt) << "at " << done << " insts";
        expectSameArch(sw.emulator(), th.emulator(), GetParam());
        ASSERT_EQ(sw.emulator().intReg(reg::zero), 0u);
        ASSERT_EQ(th.emulator().intReg(reg::zero), 0u);
        if (ns == 0)
            break;
        done += ns;
    }
    EXPECT_EQ(memoryImage(sw), memoryImage(th)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    All, EngineLockstepTest,
    ::testing::Values("compress", "eqntott", "espresso", "gcc", "sc",
                      "xlisp", "elvis", "grep", "perl", "yacr2", "alvinn",
                      "doduc", "ear", "mdljdp2", "mdljsp2", "ora", "spice",
                      "su2cor", "tomcatv"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        return std::string(info.param);
    });

// ---------------------------------------------------------------------------
// run() bound behaviour and interaction with the scalar step() path.

TEST(EmulatorEngine, RunBoundIsExactMidBlock)
{
    for (EmuEngine eng : {EmuEngine::Switch, EmuEngine::Threaded}) {
        Machine m(workload("espresso"), tiny());
        m.emulator().setEngine(eng);
        uint64_t total = 0;
        for (uint64_t k : {1ull, 2ull, 3ull, 7ull, 63ull, 64ull, 65ull,
                           137ull, 10'000ull}) {
            uint64_t n = m.emulator().run(k);
            ASSERT_EQ(n, k);
            total += n;
            ASSERT_EQ(m.emulator().instCount(), total);
        }
        // The chopped-up run must land on the same state as a pure
        // per-instruction reference at the same instruction count.
        Machine ref(workload("espresso"), tiny());
        while (ref.emulator().instCount() < total)
            ASSERT_TRUE(ref.emulator().step(nullptr));
        expectSameArch(m.emulator(), ref.emulator(),
                       eng == EmuEngine::Threaded ? "threaded" : "switch");
    }
}

TEST(EmulatorEngine, StepAndRunInterleave)
{
    Machine m(workload("eqntott"), tiny());
    Machine ref(workload("eqntott"), tiny());
    ExecRecord rec;
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 17; ++i)
            ASSERT_TRUE(m.emulator().step(&rec));
        ASSERT_EQ(m.emulator().run(4'993), 4'993u);
    }
    while (ref.emulator().instCount() < m.emulator().instCount())
        ASSERT_TRUE(ref.emulator().step(nullptr));
    expectSameArch(m.emulator(), ref.emulator(), "step/run interleave");
    EXPECT_EQ(memoryImage(m), memoryImage(ref));
}

TEST(EmulatorEngine, UnboundedRunHalts)
{
    Machine a(workload("compress"), tiny());
    Machine b(workload("compress"), tiny());
    a.emulator().setEngine(EmuEngine::Switch);
    b.emulator().setEngine(EmuEngine::Threaded);
    uint64_t na = a.emulator().run();
    uint64_t nb = b.emulator().run();
    EXPECT_TRUE(a.emulator().halted());
    EXPECT_TRUE(b.emulator().halted());
    EXPECT_EQ(na, nb);
    expectSameArch(a.emulator(), b.emulator(), "run to halt");
    EXPECT_EQ(memoryImage(a), memoryImage(b));
}

// ---------------------------------------------------------------------------
// Translation-layer bookkeeping.

TEST(EmulatorEngine, TranslationStatsAreCoherent)
{
    Machine m(workload("espresso"), tiny());
    Emulator &emu = m.emulator();
    ASSERT_EQ(emu.run(100'000), 100'000u);
    const EmuTranslationStats &ts = emu.translationStats();
    // Every miss translates exactly one block; a loopy kernel revisits
    // blocks (hits) and binds fall-through/taken links (chains).
    EXPECT_GT(ts.blocksTranslated, 0u);
    EXPECT_EQ(ts.blockCacheMisses, ts.blocksTranslated);
    EXPECT_GT(ts.blockCacheHits, 0u);
    EXPECT_GT(ts.superblockChains, 0u);
}

TEST(EmulatorEngine, InvalidateRetranslatesWithoutStateChange)
{
    Machine m(workload("grep"), tiny());
    Machine ref(workload("grep"), tiny());
    Emulator &emu = m.emulator();
    ASSERT_EQ(emu.run(50'000), 50'000u);
    uint64_t translated = emu.translationStats().blocksTranslated;
    emu.invalidateBlockCache();
    ASSERT_EQ(emu.run(50'000), 50'000u);
    // The second half re-translated its working set from scratch...
    EXPECT_GT(emu.translationStats().blocksTranslated, translated);
    // ...but the architectural stream is unaffected.
    ASSERT_EQ(ref.emulator().run(100'000), 100'000u);
    expectSameArch(emu, ref.emulator(), "invalidate mid-run");
    EXPECT_EQ(memoryImage(m), memoryImage(ref));
}

TEST(EmulatorEngine, RestoreInvalidatesAndResumesBitIdentical)
{
    Machine m(workload("compress"), tiny());
    Emulator &emu = m.emulator();
    ASSERT_EQ(emu.run(50'000), 50'000u);

    ser::Writer cpu, mem;
    emu.saveState(cpu);
    m.memory().saveState(mem);
    uint64_t translated = emu.translationStats().blocksTranslated;

    // Reference: run the original machine to completion.
    uint64_t more = emu.run();
    ASSERT_TRUE(emu.halted());
    std::string end_mem = memoryImage(m);

    // Restore the snapshot into a *fresh* machine and resume under the
    // threaded engine: the block cache starts empty, and the stream
    // must replay bit-identically.
    Machine fresh(workload("compress"), tiny());
    fresh.emulator().setEngine(EmuEngine::Threaded);
    ser::Reader cr(cpu.data().data(), cpu.data().size(), "test");
    fresh.emulator().loadState(cr);
    ser::Reader mr(mem.data().data(), mem.data().size(), "test");
    fresh.memory().loadState(mr);
    EXPECT_EQ(fresh.emulator().run(), more);
    expectSameArch(fresh.emulator(), emu, "fresh-machine restore");
    EXPECT_EQ(memoryImage(fresh), end_mem);

    // Restore into the machine that made the snapshot: loadState must
    // drop its (stale-PC) block cache and re-translate.
    ser::Reader cr2(cpu.data().data(), cpu.data().size(), "test");
    emu.loadState(cr2);
    ser::Reader mr2(mem.data().data(), mem.data().size(), "test");
    m.memory().loadState(mr2);
    EXPECT_EQ(emu.run(), more);
    EXPECT_GT(emu.translationStats().blocksTranslated, translated);
    expectSameArch(emu, fresh.emulator(), "same-machine restore");
    EXPECT_EQ(memoryImage(m), end_mem);
}

// ---------------------------------------------------------------------------
// Engine selection plumbing.

TEST(EmulatorEngine, DefaultEngineIsThreaded)
{
    EXPECT_EQ(Emulator::defaultEngine(), EmuEngine::Threaded);
    EXPECT_STREQ(emuEngineName(EmuEngine::Threaded), "threaded");
    EXPECT_STREQ(emuEngineName(EmuEngine::Switch), "switch");
}

TEST(EmulatorEngine, EngineDegradesToSwitchWithoutComputedGoto)
{
    Machine m(workload("compress"), tiny());
    m.emulator().setEngine(EmuEngine::Threaded);
    if (Emulator::threadedDispatchAvailable())
        EXPECT_EQ(m.emulator().engine(), EmuEngine::Threaded);
    else
        EXPECT_EQ(m.emulator().engine(), EmuEngine::Switch);
    m.emulator().setEngine(EmuEngine::Switch);
    EXPECT_EQ(m.emulator().engine(), EmuEngine::Switch);
}

// ---------------------------------------------------------------------------
// Batched functional warming: runWarm() buffers a block's traffic and
// flushes it per stream; each stream must carry exactly the events the
// per-instruction scalar path would have reported, in the same order.

struct Event
{
    uint32_t a, b, c;
    bool operator==(const Event &o) const
    {
        return a == o.a && b == o.b && c == o.c;
    }
};

struct RecordingSink : Emulator::WarmSink
{
    std::vector<uint32_t> fetch;
    std::vector<Event> control;
    std::vector<Event> data;

    void warmFetch(uint32_t pc) override { fetch.push_back(pc); }
    void
    warmControl(uint32_t pc, bool taken, uint32_t next_pc) override
    {
        control.push_back({pc, taken, next_pc});
    }
    void
    warmData(uint32_t addr, bool is_store) override
    {
        data.push_back({addr, is_store, 0});
    }
    uint64_t done = 0;
};

// Per-instruction reference: replay the documented warm semantics off
// ExecRecords from the scalar step() path.
RecordingSink
scalarWarmReference(const char *wl, uint64_t max_insts, unsigned shift)
{
    Machine m(workload(wl), tiny());
    Emulator &emu = m.emulator();
    RecordingSink s;
    uint32_t prev_iblock = 0xffffffffu;
    ExecRecord rec;
    while (s.done < max_insts && !emu.halted()) {
        uint32_t pc = emu.pc();
        if ((pc >> shift) != prev_iblock) {
            prev_iblock = pc >> shift;
            s.fetch.push_back(pc);
        }
        if (!emu.step(&rec))
            break;
        ++s.done;
        if (isMem(rec.inst.op))
            s.data.push_back({rec.effAddr, isStore(rec.inst.op), 0});
        if (isControl(rec.inst.op))
            s.control.push_back({rec.pc, rec.taken, rec.nextPc});
    }
    return s;
}

TEST(EmulatorEngine, BatchedWarmMatchesScalarReference)
{
    for (const char *wl : {"eqntott", "grep", "alvinn"}) {
        for (unsigned shift : {4u, 6u}) {
            RecordingSink ref = scalarWarmReference(wl, 100'000, shift);
            for (EmuEngine eng :
                 {EmuEngine::Switch, EmuEngine::Threaded}) {
                Machine m(workload(wl), tiny());
                m.emulator().setEngine(eng);
                RecordingSink got;
                got.done = m.emulator().runWarm(100'000, shift, got);
                ASSERT_EQ(got.done, ref.done) << wl << " shift " << shift;
                EXPECT_EQ(got.fetch, ref.fetch)
                    << wl << " shift " << shift;
                EXPECT_TRUE(got.data == ref.data)
                    << wl << " shift " << shift;
                EXPECT_TRUE(got.control == ref.control)
                    << wl << " shift " << shift;
            }
        }
    }
}

TEST(EmulatorEngine, RunWarmZeroBudgetDoesNothing)
{
    Machine m(workload("compress"), tiny());
    RecordingSink s;
    EXPECT_EQ(m.emulator().runWarm(0, 4, s), 0u);
    EXPECT_TRUE(s.fetch.empty());
    EXPECT_EQ(m.emulator().instCount(), 0u);
}

} // anonymous namespace
} // namespace facsim
