/**
 * @file
 * Strict flag parsing: unit tests for util/parse.hh and end-to-end
 * negative tests that drive the real facsim_cli binary (path injected
 * as FACSIM_CLI_BIN) with zero/negative/garbage values for every
 * numeric flag, asserting a non-zero exit and a usage message. The
 * CLI historically used bare strtoul(), which accepted all of these
 * silently.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "util/parse.hh"

using namespace facsim;

TEST(ParseTest, TryU64AcceptsWholeTokens)
{
    uint64_t v = 0;
    EXPECT_TRUE(parse::tryU64("0", &v));
    EXPECT_EQ(v, 0u);
    EXPECT_TRUE(parse::tryU64("42", &v));
    EXPECT_EQ(v, 42u);
    EXPECT_TRUE(parse::tryU64("0x1f", &v));
    EXPECT_EQ(v, 0x1fu);
    EXPECT_TRUE(parse::tryU64("0XFF", &v));
    EXPECT_EQ(v, 0xffu);
    EXPECT_TRUE(parse::tryU64("18446744073709551615", &v));
    EXPECT_EQ(v, UINT64_MAX);
}

TEST(ParseTest, TryU64RejectsGarbage)
{
    uint64_t v = 77;
    EXPECT_FALSE(parse::tryU64("", &v));
    EXPECT_FALSE(parse::tryU64("-1", &v));
    EXPECT_FALSE(parse::tryU64("+5", &v));
    EXPECT_FALSE(parse::tryU64("12abc", &v));
    EXPECT_FALSE(parse::tryU64("abc", &v));
    EXPECT_FALSE(parse::tryU64("1 2", &v));
    EXPECT_FALSE(parse::tryU64(" 1", &v));
    EXPECT_FALSE(parse::tryU64("0x", &v));
    EXPECT_FALSE(parse::tryU64("0xg", &v));
    EXPECT_FALSE(parse::tryU64("18446744073709551616", &v));  // 2^64
    EXPECT_FALSE(parse::tryU64("99999999999999999999999", &v));
    EXPECT_EQ(v, 77u) << "failed parse must not touch *out";
}

TEST(ParseDeathTest, FlagHelpersDieWithUsage)
{
    EXPECT_DEATH(parse::u64Flag("--x", "nope"), "usage: --x expects");
    EXPECT_DEATH(parse::u64Flag("--x", "-3"), "usage");
    EXPECT_DEATH(parse::u64FlagPositive("--x", "0"), "positive");
    EXPECT_DEATH(parse::u32Flag("--x", "4294967296"), "out of range");
    EXPECT_DEATH(parse::u32FlagPositive("--x", "0"), "positive");
    EXPECT_EQ(parse::u64Flag("--x", "0"), 0u);
    EXPECT_EQ(parse::u64FlagPositive("--x", "9"), 9u);
    EXPECT_EQ(parse::u32Flag("--x", "4294967295"), 4294967295u);
}

TEST(ParseDeathTest, OneOfFlagMatchesOrDies)
{
    static const char *const kChoices[] = {"switch", "threaded", nullptr};
    EXPECT_EQ(parse::oneOfFlag("--engine", "switch", kChoices), 0u);
    EXPECT_EQ(parse::oneOfFlag("--engine", "threaded", kChoices), 1u);
    EXPECT_DEATH(parse::oneOfFlag("--engine", "bogus", kChoices),
                 "usage: --engine expects one of switch\\|threaded, "
                 "got 'bogus'");
    EXPECT_DEATH(parse::oneOfFlag("--engine", "", kChoices), "usage");
    EXPECT_DEATH(parse::oneOfFlag("--engine", "Threaded", kChoices),
                 "usage");  // case-sensitive, like every other flag
}

#ifdef FACSIM_CLI_BIN

namespace
{

/** Run the CLI, capture combined output, return the exit status. */
int
runCli(const std::string &args, std::string *output)
{
    std::string cmd =
        std::string(FACSIM_CLI_BIN) + " " + args + " 2>&1";
    std::FILE *p = popen(cmd.c_str(), "r");
    EXPECT_NE(p, nullptr);
    output->clear();
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), p)) > 0)
        output->append(buf, n);
    return pclose(p);
}

void
expectUsageFailure(const std::string &args)
{
    SCOPED_TRACE(args);
    std::string out;
    int status = runCli(args, &out);
    EXPECT_NE(status, 0) << out;
    EXPECT_NE(out.find("usage"), std::string::npos) << out;
}

} // namespace

TEST(CliFlagAuditTest, NumericFlagsRejectZeroNegativeAndGarbage)
{
    // New sampling/checkpoint flags.
    expectUsageFailure("time @compress --sample-period=0");
    expectUsageFailure("time @compress --sample-period=-5");
    expectUsageFailure("time @compress --sample-period=fast");
    expectUsageFailure(
        "time @compress --sample-period=1000 --sample-detail=0");
    expectUsageFailure(
        "time @compress --sample-period=1000 --sample-detail=10x");
    expectUsageFailure(
        "time @compress --sample-period=1000 --sample-warmup=0");
    expectUsageFailure(
        "time @compress --sample-period=1000 --sample-warmup=-1");
    expectUsageFailure("time @compress --ckpt-save=");
    expectUsageFailure("time @compress --ckpt-restore=");
    expectUsageFailure(
        "time @compress --ckpt-save=/tmp/a --ckpt-restore=/tmp/b");
    expectUsageFailure(
        "time @compress --sample-period=1000 --ckpt-save=/tmp/a");

    // Pre-existing hierarchy flags, previously parsed with strtoul.
    expectUsageFailure("time @compress --mshrs=0");
    expectUsageFailure("time @compress --mshrs=-2");
    expectUsageFailure("time @compress --mshrs=banana");
    expectUsageFailure("time @compress --dram-lat=0");
    expectUsageFailure("time @compress --dram-lat=80ns");
    expectUsageFailure("time @compress --tlb-penalty=0");
    expectUsageFailure("time @compress --tlb-penalty=slow");

    // Other numeric flags.
    expectUsageFailure("time @compress --block=0");
    expectUsageFailure("time @compress --max-insts=ten");
    expectUsageFailure("time @compress --scale=0");
    expectUsageFailure("time @compress --jobs=two");

    // Enumerated flags.
    expectUsageFailure("run @compress --engine=bogus");
    expectUsageFailure("run @compress --engine=");
    expectUsageFailure("fuzz --count=1 --engine=fastest");
}

TEST(CliFlagAuditTest, EngineFlagSelectsDispatchEngine)
{
    for (const char *eng : {"switch", "threaded"}) {
        SCOPED_TRACE(eng);
        std::string out;
        int status = runCli(std::string("run @compress --max-insts=5000 "
                                        "--engine=") + eng, &out);
        EXPECT_EQ(status, 0) << out;
        EXPECT_NE(out.find("executed 5000 instructions"),
                  std::string::npos) << out;
    }
}

TEST(CliFlagAuditTest, SamplingInvariantsEnforced)
{
    std::string out;
    // warmup + detail must fit in the period.
    int status = runCli("time @compress --sample-period=1000 "
                        "--sample-detail=600 --sample-warmup=600",
                        &out);
    EXPECT_NE(status, 0);
    EXPECT_NE(out.find("fit in the period"), std::string::npos) << out;
}

TEST(CliFlagAuditTest, ValidFlagsStillWork)
{
    std::string out;
    int status = runCli("time @ora --max-insts=20000 "
                        "--sample-period=2000 --sample-detail=400 "
                        "--sample-warmup=400",
                        &out);
    EXPECT_EQ(status, 0) << out;
    EXPECT_NE(out.find("CPI estimate"), std::string::npos) << out;
}

#endif // FACSIM_CLI_BIN
