/**
 * @file
 * Structural invariants of the issue stream, observed through the
 * Pipeline::onIssue hook over real workloads:
 *
 *  - instructions issue in program order, exactly once each, and the
 *    issued stream equals the functional stream;
 *  - per-cycle issue never exceeds the machine widths (4 total, 2
 *    loads, 1 store);
 *  - speculation flags only appear on memory operations, and only when
 *    fast address calculation is enabled.
 */

#include <gtest/gtest.h>

#include <map>

#include "sim/config.hh"
#include "sim/machine.hh"
#include "cpu/pipeline.hh"

namespace facsim
{
namespace
{

struct IssueLog
{
    std::vector<Pipeline::IssueEvent> events;
};

IssueLog
runWithHook(const char *workload_name, const PipelineConfig &cfg,
            uint64_t max_insts)
{
    Machine m(workload(workload_name), BuildOptions{});
    Pipeline pipe(cfg, m.emulator());
    IssueLog log;
    pipe.onIssue([&](const Pipeline::IssueEvent &ev) {
        log.events.push_back(ev);
    });
    pipe.run(max_insts);
    return log;
}

class IssueInvariantTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(IssueInvariantTest, ProgramOrderAndWidthLimits)
{
    PipelineConfig cfg = facPipelineConfig();
    IssueLog log = runWithHook(GetParam(), cfg, 120000);
    ASSERT_FALSE(log.events.empty());

    uint64_t prev_cycle = 0;
    uint32_t expected_pc = Program::textBase;
    std::map<uint64_t, unsigned> per_cycle, loads_per_cycle,
        stores_per_cycle;

    for (const auto &ev : log.events) {
        // Monotone non-decreasing issue cycles (in-order issue).
        EXPECT_GE(ev.cycle, prev_cycle);
        prev_cycle = ev.cycle;
        // The issued stream is the architectural path.
        EXPECT_EQ(ev.rec.pc, expected_pc);
        expected_pc = ev.rec.nextPc;

        ++per_cycle[ev.cycle];
        if (isLoad(ev.rec.inst.op))
            ++loads_per_cycle[ev.cycle];
        if (isStore(ev.rec.inst.op))
            ++stores_per_cycle[ev.cycle];

        if (ev.speculated) {
            EXPECT_TRUE(isMem(ev.rec.inst.op));
        }
    }

    for (const auto &[cycle, n] : per_cycle)
        EXPECT_LE(n, cfg.issueWidth) << "cycle " << cycle;
    for (const auto &[cycle, n] : loads_per_cycle)
        EXPECT_LE(n, cfg.maxLoadsPerCycle) << "cycle " << cycle;
    for (const auto &[cycle, n] : stores_per_cycle)
        EXPECT_LE(n, cfg.maxStoresPerCycle) << "cycle " << cycle;
}

TEST_P(IssueInvariantTest, NoSpeculationFlagsWithoutFac)
{
    IssueLog log = runWithHook(GetParam(), baselineConfig(), 60000);
    for (const auto &ev : log.events) {
        EXPECT_FALSE(ev.speculated);
        EXPECT_FALSE(ev.mispredicted);
    }
}

TEST_P(IssueInvariantTest, SpeculationCountsMatchStats)
{
    PipelineConfig cfg = facPipelineConfig();
    Machine m(workload(GetParam()), BuildOptions{});
    Pipeline pipe(cfg, m.emulator());
    uint64_t spec = 0;
    pipe.onIssue([&](const Pipeline::IssueEvent &ev) {
        spec += ev.speculated ? 1 : 0;
    });
    PipeStats st = pipe.run(120000);
    EXPECT_EQ(spec, st.loadsSpeculated + st.storesSpeculated);
}

INSTANTIATE_TEST_SUITE_P(Workloads, IssueInvariantTest,
                         ::testing::Values("compress", "doduc", "spice",
                                           "xlisp"),
                         [](const ::testing::TestParamInfo<const char *>
                                &info) {
                             return std::string(info.param);
                         });

} // anonymous namespace
} // namespace facsim
