/**
 * @file
 * Textual-assembler tests: full programs assembled from source,
 * executed on the emulator, checked against expected architectural
 * results; plus directive handling and error reporting.
 */

#include <gtest/gtest.h>

#include "asm/parser.hh"
#include "cpu/emulator.hh"
#include "isa/encoding.hh"
#include "link/linker.hh"

namespace facsim
{
namespace
{

struct Assembled
{
    Program prog;
    Memory mem;
    LinkedImage img;
    std::unique_ptr<Emulator> emu;
};

std::unique_ptr<Assembled>
assembleAndRun(const std::string &src, uint64_t max_insts = 100000)
{
    auto a = std::make_unique<Assembled>();
    parseAsm(src, a->prog);
    a->img = Linker(LinkPolicy{}).link(a->prog, a->mem);
    a->emu = std::make_unique<Emulator>(a->prog, a->mem, a->img,
                                        0x7fff5b88);
    a->emu->run(max_insts);
    return a;
}

TEST(Parser, ArithmeticProgram)
{
    auto a = assembleAndRun(R"(
        # sum 1..10 into $t1
        li   $t0, 10
        li   $t1, 0
loop:   add  $t1, $t1, $t0
        addi $t0, $t0, -1
        bgtz $t0, loop
        halt
    )");
    EXPECT_TRUE(a->emu->halted());
    EXPECT_EQ(a->emu->intReg(reg::t1), 55u);
}

TEST(Parser, DataSectionAndLoads)
{
    auto a = assembleAndRun(R"(
        .data
        .align 8
table:  .word 11, 22, 33
bytes:  .byte 1, 0xff
        .text
        la   $s0, table
        lw   $t0, 0($s0)
        lw   $t1, 4($s0)
        lw   $t2, 8($s0)
        la   $s1, bytes
        lbu  $t3, 1($s1)
        halt
    )");
    EXPECT_EQ(a->emu->intReg(reg::t0), 11u);
    EXPECT_EQ(a->emu->intReg(reg::t1), 22u);
    EXPECT_EQ(a->emu->intReg(reg::t2), 33u);
    EXPECT_EQ(a->emu->intReg(reg::t3), 0xffu);
}

TEST(Parser, SmallDataViaGp)
{
    auto a = assembleAndRun(R"(
        .sdata
counter: .word 41
        .text
        lw   $t0, counter($gp)
        addi $t0, $t0, 1
        sw   $t0, counter($gp)
        lw   $t1, counter($gp)
        halt
    )");
    EXPECT_EQ(a->emu->intReg(reg::t1), 42u);
}

TEST(Parser, ForwardSymbolReference)
{
    // la/gp references appear before the .data definition.
    auto a = assembleAndRun(R"(
        .text
        la   $s0, later
        lw   $t0, 0($s0)
        halt
        .data
later:  .word 77
    )");
    EXPECT_EQ(a->emu->intReg(reg::t0), 77u);
}

TEST(Parser, AllThreeAddressingModes)
{
    auto a = assembleAndRun(R"(
        .data
buf:    .space 32
        .text
        la   $s0, buf
        li   $t0, 5
        sw   $t0, 0($s0)       # reg+const
        li   $t1, 4
        li   $t2, 6
        sw   $t2, ($s0+$t1)    # reg+reg
        move $s1, $s0
        lw   $t3, ($s1)+4      # post-increment
        lw   $t4, ($s1)+4
        lw   $t5, ($s1)+-8     # post-decrement back to start
        halt
    )");
    EXPECT_EQ(a->emu->intReg(reg::t3), 5u);
    EXPECT_EQ(a->emu->intReg(reg::t4), 6u);
    EXPECT_EQ(a->emu->intReg(reg::s1), a->emu->intReg(reg::s0));
}

TEST(Parser, FunctionsAndJumps)
{
    auto a = assembleAndRun(R"(
        jal  double_it
        halt
double_it:
        li   $t0, 21
        add  $v0, $t0, $t0
        jr   $ra
    )");
    EXPECT_EQ(a->emu->intReg(reg::v0), 42u);
}

TEST(Parser, FloatingPoint)
{
    auto a = assembleAndRun(R"(
        .data
        .align 8
vals:   .double 1.5, 2.5
        .text
        la    $s0, vals
        ldc1  $f2, 0($s0)
        ldc1  $f4, 8($s0)
        add.d $f6, $f2, $f4     # 4.0
        mul.d $f8, $f6, $f6     # 16.0
        sqrt.d $f10, $f8        # 4.0
        c.lt.d $f2, $f4
        bc1t  yes
        li    $t0, 0
        halt
yes:    li    $t0, 1
        cvt.w.d $f12, $f10
        mfc1  $t1, $f12
        halt
    )");
    EXPECT_EQ(a->emu->intReg(reg::t0), 1u);
    EXPECT_EQ(a->emu->intReg(reg::t1), 4u);
}

TEST(Parser, NumericRegistersAndComments)
{
    auto a = assembleAndRun(R"(
        li  $8, 7          // numeric name for $t0
        li  $9, 3          # hash comment
        add $10, $8, $9
        halt
    )");
    EXPECT_EQ(a->emu->intReg(10), 10u);
}

TEST(Parser, RoundTripsThroughEncoding)
{
    Program p;
    parseAsm(R"(
        li   $t0, 4096
        lw   $t1, ($sp)+8
        sw   $t1, ($sp+$t0)
        beq  $t1, $zero, out
        nop
out:    halt
    )", p);
    Memory mem;
    Linker(LinkPolicy{}).link(p, mem);
    for (uint32_t i = 0; i < p.numInsts(); ++i) {
        Inst in;
        ASSERT_TRUE(decode(mem.read32(Program::textBase + 4 * i), in));
        EXPECT_EQ(in, p.inst(i)) << "instruction " << i;
    }
}

TEST(Parser, LabelsShareLinesAndStack)
{
    auto a = assembleAndRun(R"(
start:  li   $t0, 3
a: b:   addi $t0, $t0, 1     # two labels on one line
        beq  $t0, $t0, done  # always taken
        nop
done:   addi $sp, $sp, -16
        sw   $t0, 8($sp)
        lw   $t1, 8($sp)
        addi $sp, $sp, 16
        halt
    )");
    EXPECT_EQ(a->emu->intReg(reg::t1), 4u);
}

TEST(Parser, AlignDirectiveAppliesToNextSymbol)
{
    Program p;
    parseAsm(R"(
        .data
        .align 64
blk:    .word 1
small:  .half 2
    )", p);
    Memory mem;
    Linker(LinkPolicy{}).link(p, mem);
    ASSERT_EQ(p.syms().size(), 2u);
    EXPECT_EQ(p.syms()[0].addr % 64, 0u);
    // .align is one-shot; the next symbol reverts to the default.
    EXPECT_EQ(p.syms()[1].align, 4u);
    EXPECT_EQ(p.syms()[1].size, 2u);
}

TEST(Parser, DoubleDirectiveStoresIeeeBits)
{
    Program p;
    parseAsm(R"(
        .data
        .align 8
d:      .double 1.5
        .text
        halt
    )", p);
    Memory mem;
    Linker(LinkPolicy{}).link(p, mem);
    uint64_t bits = mem.read64(p.syms()[0].addr);
    double v;
    __builtin_memcpy(&v, &bits, 8);
    EXPECT_DOUBLE_EQ(v, 1.5);
}

TEST(Parser, RegisterTokenBoundaries)
{
    // Strict whole-token register numbers: the highest valid register
    // of each file parses, in every syntactic position.
    auto a = assembleAndRun(R"(
        li   $31, 6
        add  $30, $31, $31
        mtc1 $30, $f31
        mfc1 $8, $f31
        halt
    )");
    EXPECT_EQ(a->emu->intReg(8), 12u);
}

TEST(ParserDeathTest, RejectsMalformedRegisterTokens)
{
    // Trailing garbage after a valid register number must not silently
    // parse as the shorter register ($f1x used to alias $f1).
    Program p1;
    EXPECT_EXIT(parseAsm("add.d $f2, $f1x, $f4", p1),
                ::testing::ExitedWithCode(1), "line 1");
    Program p2;
    EXPECT_EXIT(parseAsm("add $t0, $1x, $t2", p2),
                ::testing::ExitedWithCode(1), "line 1");
    // Hex register numbers are not a thing.
    Program p3;
    EXPECT_EXIT(parseAsm("mtc1 $0x2, $f2", p3),
                ::testing::ExitedWithCode(1), "line 1");
    // Out-of-range numbers, integer and FP.
    Program p4;
    EXPECT_EXIT(parseAsm("li $32, 1", p4),
                ::testing::ExitedWithCode(1), "line 1");
    Program p5;
    EXPECT_EXIT(parseAsm("mfc1 $t0, $f32", p5),
                ::testing::ExitedWithCode(1), "line 1");
    // A bare "$f" is not a register either.
    Program p6;
    EXPECT_EXIT(parseAsm("mfc1 $t0, $f", p6),
                ::testing::ExitedWithCode(1), "line 1");
}

TEST(ParserDeathTest, Errors)
{
    Program p;
    EXPECT_EXIT(parseAsm("frobnicate $t0", p),
                ::testing::ExitedWithCode(1), "unknown mnemonic");
    Program p2;
    EXPECT_EXIT(parseAsm("lw $t0, 100000($sp)", p2),
                ::testing::ExitedWithCode(1), "line 1");
    Program p3;
    EXPECT_EXIT(parseAsm("la $t0, nowhere\nhalt", p3),
                ::testing::ExitedWithCode(1), "never.*defined");
    Program p4;
    EXPECT_EXIT(parseAsm(".word 5", p4),
                ::testing::ExitedWithCode(1), "in .text");
    Program p5;
    EXPECT_EXIT(parseAsm(".data\nx: .word 1\nx: .word 2", p5),
                ::testing::ExitedWithCode(1), "duplicate");
}

} // anonymous namespace
} // namespace facsim
