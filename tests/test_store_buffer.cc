/** @file Unit tests for the non-merging store buffer. */

#include <gtest/gtest.h>

#include "cache/store_buffer.hh"

namespace facsim
{
namespace
{

TEST(StoreBuffer, FifoOrder)
{
    StoreBuffer sb(4);
    sb.push(0x100, 1);
    sb.push(0x200, 2);
    EXPECT_EQ(sb.front().addr, 0x100u);
    sb.pop();
    EXPECT_EQ(sb.front().addr, 0x200u);
}

TEST(StoreBuffer, CapacityAndFull)
{
    StoreBuffer sb(2);
    EXPECT_FALSE(sb.full());
    sb.push(0, 1);
    sb.push(4, 2);
    EXPECT_TRUE(sb.full());
    EXPECT_EQ(sb.size(), 2u);
}

TEST(StoreBufferDeathTest, OverflowPanics)
{
    StoreBuffer sb(1);
    sb.push(0, 1);
    EXPECT_DEATH(sb.push(4, 2), "overflow");
}

TEST(StoreBuffer, MispredictedEntryBlocksRetirement)
{
    StoreBuffer sb(4);
    sb.push(0, 7, /*addr_valid=*/false);
    EXPECT_FALSE(sb.canRetire());
    sb.patchAddr(7, 0xbeef0);
    EXPECT_TRUE(sb.canRetire());
    EXPECT_EQ(sb.front().addr, 0xbeef0u);
}

TEST(StoreBuffer, PatchTargetsTheRightEntry)
{
    StoreBuffer sb(4);
    sb.push(0x10, 1);
    sb.push(0, 2, false);
    sb.push(0x30, 3);
    sb.patchAddr(2, 0x20);
    sb.pop();
    EXPECT_EQ(sb.front().addr, 0x20u);
    EXPECT_TRUE(sb.front().addrValid);
}

TEST(StoreBufferDeathTest, PatchUnknownSeqPanics)
{
    StoreBuffer sb(4);
    sb.push(0x10, 1);
    EXPECT_DEATH(sb.patchAddr(99, 0), "unknown store");
}

TEST(StoreBuffer, ConflictsByBlock)
{
    StoreBuffer sb(4);
    sb.push(0x107, 1);
    EXPECT_TRUE(sb.conflicts(0x100, 32));   // same 32-byte block
    EXPECT_TRUE(sb.conflicts(0x11f, 32));
    EXPECT_FALSE(sb.conflicts(0x120, 32));
}

TEST(StoreBuffer, PendingAddressConflictsWithEverything)
{
    // An entry whose address is still pending must conservatively
    // conflict with any probe: its architectural address is unknown, so
    // disambiguation cannot prove the load independent. (Every
    // non-speculative store sits in this state for one cycle; treating
    // it as a non-conflict let loads slip past it.)
    StoreBuffer sb(4);
    sb.push(0, 2, /*addr_valid=*/false);
    EXPECT_TRUE(sb.conflicts(0x100, 32));
    EXPECT_TRUE(sb.conflicts(0xfff00, 32));
    // Once patched, it conflicts only by block again.
    sb.patchAddr(2, 0x200);
    EXPECT_TRUE(sb.conflicts(0x210, 32));
    EXPECT_FALSE(sb.conflicts(0x100, 32));
}

} // anonymous namespace
} // namespace facsim
