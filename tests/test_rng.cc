/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include "util/rng.hh"

namespace facsim
{
namespace
{

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 10; ++i)
        any_diff |= a.next() != b.next();
    EXPECT_TRUE(any_diff);
}

TEST(Rng, RangeStaysInBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.range(13), 13u);
}

TEST(Rng, BetweenInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        int64_t v = r.between(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, RealInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        double v = r.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ZeroSeedRemapped)
{
    Rng r(0);
    EXPECT_NE(r.next(), 0u);
}

} // anonymous namespace
} // namespace facsim
