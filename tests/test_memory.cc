/** @file Unit tests for the sparse paged memory. */

#include <gtest/gtest.h>

#include "mem/memory.hh"

namespace facsim
{
namespace
{

TEST(Memory, ReadsZeroInitially)
{
    Memory m;
    EXPECT_EQ(m.read32(0x10000000), 0u);
    EXPECT_EQ(m.read8(0x7fff0000), 0u);
}

TEST(Memory, ByteRoundTrip)
{
    Memory m;
    m.write8(0x1000, 0xab);
    EXPECT_EQ(m.read8(0x1000), 0xab);
}

TEST(Memory, LittleEndianComposition)
{
    Memory m;
    m.write32(0x2000, 0x11223344);
    EXPECT_EQ(m.read8(0x2000), 0x44u);
    EXPECT_EQ(m.read8(0x2003), 0x11u);
    EXPECT_EQ(m.read16(0x2000), 0x3344u);
    EXPECT_EQ(m.read16(0x2002), 0x1122u);
}

TEST(Memory, Wide64RoundTrip)
{
    Memory m;
    m.write64(0x3000, 0x0123456789abcdefull);
    EXPECT_EQ(m.read64(0x3000), 0x0123456789abcdefull);
    EXPECT_EQ(m.read32(0x3000), 0x89abcdefu);
    EXPECT_EQ(m.read32(0x3004), 0x01234567u);
}

TEST(Memory, CrossPageAccess)
{
    Memory m;
    uint32_t addr = Memory::pageBytes - 2;
    m.write32(addr, 0xdeadbeef);
    EXPECT_EQ(m.read32(addr), 0xdeadbeefu);
    m.write64(Memory::pageBytes * 3 - 4, 0x1122334455667788ull);
    EXPECT_EQ(m.read64(Memory::pageBytes * 3 - 4),
              0x1122334455667788ull);
}

TEST(Memory, UsageTracksTouchedPages)
{
    Memory m;
    EXPECT_EQ(m.pagesTouched(), 0u);
    m.write8(0, 1);
    m.write8(1, 1);
    EXPECT_EQ(m.pagesTouched(), 1u);
    m.read8(Memory::pageBytes * 10);  // reads also touch
    EXPECT_EQ(m.pagesTouched(), 2u);
    EXPECT_EQ(m.memUsageBytes(), 2 * Memory::pageBytes);
}

TEST(Memory, WriteBlock)
{
    Memory m;
    uint8_t data[5] = {1, 2, 3, 4, 5};
    m.writeBlock(0x5000, data, 5);
    for (uint32_t i = 0; i < 5; ++i)
        EXPECT_EQ(m.read8(0x5000 + i), data[i]);
}

TEST(Memory, ClearResets)
{
    Memory m;
    m.write32(0x100, 7);
    m.clear();
    EXPECT_EQ(m.pagesTouched(), 0u);
}

} // anonymous namespace
} // namespace facsim
