/**
 * @file
 * Host-reference validation of the workload kernels: for each kernel
 * with tractable semantics, the expected result is recomputed in C++
 * from the *initialised memory image* (so no RNG replication is needed)
 * and compared against what the simulated program produced. This
 * validates the kernels' generated code and the emulator's semantics
 * end to end, far beyond the determinism smoke tests.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <map>
#include <vector>

#include "sim/machine.hh"

namespace facsim
{
namespace
{

uint32_t
symAddr(const Machine &m, const std::string &name)
{
    for (const DataSym &s : m.program().syms()) {
        if (s.name == name)
            return s.addr;
    }
    ADD_FAILURE() << "no symbol " << name;
    return 0;
}

uint32_t
readGlobal(Machine &m, const std::string &name)
{
    return m.memory().read32(symAddr(m, name));
}

double
readDouble(Machine &m, uint32_t addr)
{
    uint64_t bits64 = m.memory().read64(addr);
    double d;
    std::memcpy(&d, &bits64, 8);
    return d;
}

BuildOptions
opts()
{
    BuildOptions b;
    b.policy = CodeGenPolicy::baseline();
    return b;
}

TEST(WorkloadGolden, CompressMatchesHostLzw)
{
    Machine m(workload("compress"), opts());
    Memory &mem = m.memory();

    // Reconstruct the inputs from the initialised image.
    const uint32_t input_bytes = 49152;
    const uint32_t hsize = 1u << 11;
    uint32_t in_buf = readGlobal(m, "in_ptr");
    std::vector<uint8_t> input(input_bytes);
    for (uint32_t i = 0; i < input_bytes; ++i)
        input[i] = mem.read8(in_buf + i);

    // Host model of the kernel's LZW loop.
    std::vector<uint32_t> htab(hsize, 0xffffffffu), codetab(hsize, 0);
    uint32_t prefix = 0, free_ent = 257, out_count = 0;
    for (uint8_t c : input) {
        uint32_t h = ((static_cast<uint32_t>(c) << 6) ^ prefix) &
            (hsize - 1);
        uint32_t key = (prefix << 8) | c;
        if (htab[h] == key) {
            prefix = codetab[h];
        } else {
            ++out_count;
            htab[h] = key;
            codetab[h] = free_ent++;
            prefix = c;
            if (free_ent > 4 * hsize + 256)
                free_ent = 257;
        }
    }

    m.emulator().run(20'000'000);
    ASSERT_TRUE(m.emulator().halted());
    EXPECT_EQ(readGlobal(m, "out_count"), out_count);
    EXPECT_EQ(readGlobal(m, "free_ent"), free_ent);
    EXPECT_EQ(readGlobal(m, "result"), out_count + 7);
}

TEST(WorkloadGolden, XlispChecksumClosedForm)
{
    Machine m(workload("xlisp"), opts());
    m.emulator().run(50'000'000);
    ASSERT_TRUE(m.emulator().halted());
    // Each round builds cars list_len..1 and sums them once.
    const uint32_t rounds = 80, len = 600;
    uint32_t expect = rounds * (len * (len + 1) / 2);
    EXPECT_EQ(readGlobal(m, "result"), expect);
}

TEST(WorkloadGolden, GrepMatchesHostDfaScan)
{
    Machine m(workload("grep"), opts());
    Memory &mem = m.memory();
    const uint32_t text_bytes = 49152, passes = 2;
    const uint32_t nstates = 16, nclasses = 8;
    uint32_t text = readGlobal(m, "text_ptr");
    uint32_t cls = symAddr(m, "class_tab");
    uint32_t dfa = symAddr(m, "dfa_tab");

    uint32_t matches = 0;
    for (uint32_t p = 0; p < passes; ++p) {
        uint32_t state = 0;
        for (uint32_t i = 0; i < text_bytes; ++i) {
            uint8_t c = mem.read8(text + i);
            uint8_t k = mem.read8(cls + c);
            state = mem.read8(dfa + state * nclasses + k);
            if (state == nstates - 1) {
                ++matches;
                state = 0;
            }
        }
    }

    m.emulator().run(20'000'000);
    ASSERT_TRUE(m.emulator().halted());
    EXPECT_EQ(readGlobal(m, "result"), matches);
}

TEST(WorkloadGolden, GccMatchesHostTreeFold)
{
    Machine m(workload("gcc"), opts());
    Memory &mem = m.memory();
    const uint32_t ntrees = 24, reps = 3;
    uint32_t roots = symAddr(m, "tree_roots");

    // Host fold with the same in-place update rule; node updates
    // persist across repetitions exactly as in the simulated run.
    // Work on a map-free shadow: read/write the machine's own memory
    // image *before* the run would be destructive, so copy val fields.
    struct Node
    {
        uint32_t addr;
    };
    std::function<uint32_t(uint32_t, std::map<uint32_t, uint32_t> &)>
        fold = [&](uint32_t n, std::map<uint32_t, uint32_t> &vals)
        -> uint32_t {
        if (n == 0)
            return 0;
        uint32_t left = mem.read32(n + 12);
        uint32_t right = mem.read32(n + 16);
        uint32_t part = fold(left, vals);
        uint32_t v = fold(right, vals) + part;
        auto it = vals.find(n);
        uint32_t val = it != vals.end() ? it->second : mem.read32(n + 8);
        v += val;
        if (mem.read32(n + 0) & 1)
            vals[n] = v;
        return v;
    };

    std::map<uint32_t, uint32_t> vals;
    uint64_t fold_calls = 0;
    uint32_t checksum = 0;
    std::function<uint64_t(uint32_t)> count = [&](uint32_t n) -> uint64_t {
        return n == 0 ? 0
                      : 1 + count(mem.read32(n + 12)) +
                count(mem.read32(n + 16));
    };
    for (uint32_t r = 0; r < reps; ++r) {
        for (uint32_t t = 0; t < ntrees; ++t) {
            uint32_t root = mem.read32(roots + 4 * t);
            checksum += fold(root, vals);
            fold_calls += count(root);
        }
    }

    m.emulator().run(50'000'000);
    ASSERT_TRUE(m.emulator().halted());
    EXPECT_EQ(readGlobal(m, "result"),
              checksum + static_cast<uint32_t>(fold_calls));
}

TEST(WorkloadGolden, EqnttotEndsReverseSorted)
{
    Machine m(workload("eqntott"), opts());
    Memory &mem = m.memory();
    const uint32_t nvec = 128, words = 16;

    m.emulator().run(50'000'000);
    ASSERT_TRUE(m.emulator().halted());

    // Each repetition sorts ascending then reverses, so the final
    // array is descending in the compare order (lexicographic by
    // unsigned word).
    uint32_t ptrs = readGlobal(m, "vec_ptrs");
    auto cmp = [&](uint32_t a, uint32_t b) {
        for (uint32_t w = 0; w < words; ++w) {
            uint32_t x = mem.read32(a + 4 * w);
            uint32_t y = mem.read32(b + 4 * w);
            if (x != y)
                return x < y ? -1 : 1;
        }
        return 0;
    };
    for (uint32_t i = 0; i + 1 < nvec; ++i) {
        uint32_t a = mem.read32(ptrs + 4 * i);
        uint32_t b = mem.read32(ptrs + 4 * (i + 1));
        EXPECT_GE(cmp(a, b), 0) << "position " << i;
    }
    EXPECT_GT(readGlobal(m, "cmp_count"), 1000u);
}

TEST(WorkloadGolden, SpiceMatchesHostSweeps)
{
    Machine m(workload("spice"), opts());
    Memory &mem = m.memory();
    const uint32_t nrows = 300, nnz_per_row = 10, sweeps = 36;

    uint32_t rp = symAddr(m, "rowptr");
    uint32_t ci = readGlobal(m, "colidx_ptr");
    uint32_t va = readGlobal(m, "vals_ptr");
    uint32_t xv = readGlobal(m, "xvec_ptr");

    std::vector<uint32_t> rowptr(nrows + 1);
    for (uint32_t r = 0; r <= nrows; ++r)
        rowptr[r] = mem.read32(rp + 4 * r);
    std::vector<uint32_t> colidx(nrows * nnz_per_row);
    std::vector<double> vals(nrows * nnz_per_row);
    for (uint32_t k = 0; k < nrows * nnz_per_row; ++k) {
        colidx[k] = mem.read32(ci + 4 * k);
        vals[k] = readDouble(m, va + 8 * k);
    }
    std::vector<double> x(nrows), y(nrows, 0.0);
    for (uint32_t r = 0; r < nrows; ++r)
        x[r] = readDouble(m, xv + 8 * r);

    // Replicate the kernel's sweep/swap structure with identical
    // floating-point operation order (bit-exact expectation).
    for (uint32_t s = 0; s < sweeps; ++s) {
        for (uint32_t r = 0; r < nrows; ++r) {
            double acc = 0.0;
            for (uint32_t k = rowptr[r]; k < rowptr[r + 1]; ++k)
                acc += x[colidx[k]] * vals[k];
            y[r] = acc;
        }
        std::swap(x, y);
    }
    // After the final swap, the kernel reads element 0 of its "s4"
    // vector — the input of the last sweep, which is host-side y.
    double v = y[0] * 1000.0;
    int32_t expect = static_cast<int32_t>(v);

    m.emulator().run(50'000'000);
    ASSERT_TRUE(m.emulator().halted());
    EXPECT_EQ(static_cast<int32_t>(readGlobal(m, "result")), expect);
}

TEST(WorkloadGolden, Mdljdp2MatchesHostForces)
{
    Machine m(workload("mdljdp2"), opts());
    Memory &mem = m.memory();
    const uint32_t nparticles = 500, npairs = 4000, steps = 6;

    uint32_t xp = readGlobal(m, "x_ptr");
    uint32_t yp = readGlobal(m, "y_ptr");
    uint32_t pp = readGlobal(m, "pair_ptr");

    std::vector<double> x(nparticles), y(nparticles), f(nparticles, 0.0);
    for (uint32_t i = 0; i < nparticles; ++i) {
        x[i] = readDouble(m, xp + 8 * i);
        y[i] = readDouble(m, yp + 8 * i);
    }
    std::vector<std::pair<uint32_t, uint32_t>> pairs(npairs);
    for (uint32_t p = 0; p < npairs; ++p) {
        pairs[p] = {mem.read32(pp + 8 * p), mem.read32(pp + 8 * p + 4)};
    }

    const double eps = 1.0 / 100.0;
    for (uint32_t s = 0; s < steps; ++s) {
        for (auto [i, j] : pairs) {
            double dx = x[i] - x[j];
            double dy = y[i] - y[j];
            double r2 = dx * dx + dy * dy + eps;
            double inv = 1.0 / r2;
            double fx = inv * dx;
            double fy = inv * dy;
            f[i] = f[i] + fx;
            f[j] = f[j] - fy;
        }
    }
    int32_t expect = static_cast<int32_t>(f[0] * 100.0);

    m.emulator().run(50'000'000);
    ASSERT_TRUE(m.emulator().halted());
    EXPECT_EQ(static_cast<int32_t>(readGlobal(m, "result")), expect);
}

} // anonymous namespace
} // namespace facsim
