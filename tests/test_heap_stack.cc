/** @file Tests for the heap allocator and stack policy (Section 4). */

#include <gtest/gtest.h>

#include "runtime/heap.hh"
#include "runtime/stack.hh"

namespace facsim
{
namespace
{

TEST(Heap, BaselineAlignment)
{
    Heap h(0x20000000, HeapPolicy{.minAlign = 8});
    uint32_t a = h.alloc(5);
    uint32_t b = h.alloc(5);
    EXPECT_EQ(a % 8, 0u);
    EXPECT_EQ(b % 8, 0u);
    EXPECT_NE(a, b);
}

TEST(Heap, SupportAlignment32)
{
    Heap h(0x20000000, HeapPolicy{.minAlign = 32});
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(h.alloc(12) % 32, 0u);
}

TEST(Heap, NaturalAlignmentHonored)
{
    Heap h(0x20000000, HeapPolicy{.minAlign = 8});
    h.alloc(1);
    uint32_t d = h.alloc(8, 8);
    EXPECT_EQ(d % 8, 0u);
}

TEST(Heap, PackedAllocatorDefeatsAlignment)
{
    Heap h(0x20000000, HeapPolicy{.minAlign = 32});
    h.allocPacked(20);
    uint32_t second = h.allocPacked(20);
    // Obstack-style packing ignores the 32-byte policy.
    EXPECT_NE(second % 32, 0u);
    EXPECT_EQ(second % 4, 0u);
}

TEST(Heap, UsageTracking)
{
    Heap h(0x20000000, HeapPolicy{.minAlign = 8});
    EXPECT_EQ(h.usedBytes(), 0u);
    h.alloc(100);
    EXPECT_GE(h.usedBytes(), 100u);
    EXPECT_EQ(h.base(), 0x20000000u);
    EXPECT_GT(h.top(), h.base());
}

TEST(StackPolicy, BaselineFrameRounding)
{
    StackPolicy p{.spAlign = 8};
    EXPECT_EQ(p.frameSize(1), 8u);
    EXPECT_EQ(p.frameSize(8), 8u);
    EXPECT_EQ(p.frameSize(20), 24u);
    EXPECT_EQ(p.frameAlign(24), 8u);
    EXPECT_EQ(p.initialSp() % 8, 0u);
    EXPECT_NE(p.initialSp() % 64, 0u);  // deliberately unaligned
}

TEST(StackPolicy, SupportFrameRounding)
{
    StackPolicy p{.spAlign = 64, .maxFrameAlign = 256,
                  .explicitAlignBigFrames = true};
    EXPECT_EQ(p.frameSize(20), 64u);
    EXPECT_EQ(p.frameSize(65), 128u);
    // Small frames keep the program-wide alignment.
    EXPECT_EQ(p.frameAlign(64), 64u);
    // Big frames escalate to the next power of two, capped at 256.
    EXPECT_EQ(p.frameAlign(128), 128u);
    EXPECT_EQ(p.frameAlign(192), 256u);
    EXPECT_EQ(p.frameAlign(512), 256u);
    EXPECT_EQ(p.initialSp() % 64, 0u);
}

} // anonymous namespace
} // namespace facsim
