/**
 * @file
 * Live-point library tests (sim/lvpt.hh): a farm sweep over a library
 * reproduces the serial sampler's estimates exactly, is bitwise
 * deterministic for any job count, and the matched-pair speedup CI is
 * narrower than the independent one; damaged, stale or mismatched
 * libraries die with clear fatal messages (death tests), including a
 * damaged entry that only fails once the farm reaches it.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "cpu/pipeline.hh"
#include "sim/config.hh"
#include "sim/lvpt.hh"
#include "sim/machine.hh"
#include "sim/sampling.hh"
#include "util/serialize.hh"

using namespace facsim;

namespace
{

std::string
tmpPath(const char *name)
{
    return testing::TempDir() + "/" + name;
}

std::string
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::string data;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        data.append(buf, n);
    std::fclose(f);
    return data;
}

void
spew(const std::string &path, const std::string &data)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f), data.size());
    std::fclose(f);
}

/** Patch @p data in place and re-seal the trailing checksum. */
std::string
patchAndReseal(std::string data, size_t offset, char value)
{
    data[offset] = value;
    uint64_t sum = ser::fnv1a(data.data(), data.size() - 8);
    std::memcpy(&data[data.size() - 8], &sum, 8);
    return data;
}

SamplingConfig
smallSampling()
{
    SamplingConfig s;
    s.period = 20000;
    s.detail = 1000;
    s.warmup = 2000;
    return s;
}

/** 10 espresso live-points every 20k instructions, baseline geometry. */
LvptBuildResult
buildSmallLib(const std::string &path)
{
    LvptBuildRequest req;
    req.workload = "espresso";
    req.pipe = baselineConfig(32);
    req.sampling = smallSampling();
    req.maxInsts = 200000;
    return buildLvptLibrary(path, req);
}

/**
 * Container header layout (must track sim/lvpt.cc): magic[8],
 * version u32, workload length u64 + bytes, scale u64, seed u64,
 * support u8, warm fingerprint u64, build fingerprint u64,
 * period/detail/warmup u64, totalInsts u64, then the entry count u64
 * and the 24-byte index records.
 */
size_t
countFieldOffset(const std::string &workloadName)
{
    return 8 + 4 + 8 + workloadName.size() + 8 + 8 + 1 + 8 + 8 + 8 + 8 +
           8 + 8;
}

} // namespace

TEST(LvptTest, LibraryIdentityAndShape)
{
    const std::string path = tmpPath("shape.lvpt");
    LvptBuildResult r = buildSmallLib(path);
    EXPECT_EQ(r.entries, 10u);
    EXPECT_EQ(r.totalInsts, 200000u);

    LvptLibrary lib(path);
    EXPECT_EQ(lib.identity().workload, "espresso");
    EXPECT_EQ(lib.identity().scale, 1u);
    EXPECT_FALSE(lib.identity().softwareSupport);
    EXPECT_EQ(lib.identity().warmFingerprint,
              warmStateFingerprint(baselineConfig(32)));
    EXPECT_EQ(lib.identity().buildFingerprint,
              configFingerprint(baselineConfig(32)));
    EXPECT_EQ(lib.sampling().period, 20000u);
    EXPECT_EQ(lib.sampling().detail, 1000u);
    EXPECT_EQ(lib.sampling().warmup, 2000u);
    EXPECT_EQ(lib.totalInsts(), 200000u);
    ASSERT_EQ(lib.numEntries(), 10u);
    for (size_t i = 0; i < lib.numEntries(); ++i)
        EXPECT_EQ(lib.entryStartInst(i), i * 20000u);
    EXPECT_EQ(lib.sizeBytes(), r.libraryBytes);
}

TEST(LvptTest, FarmReproducesTheSerialSampler)
{
    const std::string path = tmpPath("serial.lvpt");
    buildSmallLib(path);
    LvptLibrary lib(path);

    FarmRequest req;
    req.pipe = facPipelineConfig(32);
    FarmResult farm = runFarm(lib, req);

    // The serial sampler over the same stream: same windows, same warm
    // state (its fast-forward warms functionally too), same estimator.
    BuildOptions b;
    Machine m(workload("espresso"), b);
    Pipeline pipe(facPipelineConfig(32), m.emulator());
    SampleEstimate serial = runSampled(pipe, smallSampling(), 200000);

    EXPECT_EQ(farm.windows, serial.windows);
    EXPECT_EQ(farm.measuredInsts, serial.measuredInsts);
    EXPECT_EQ(farm.measuredCycles, serial.measuredCycles);
    ASSERT_FALSE(farm.cpi.insufficient);
    EXPECT_NEAR(farm.cpi.mean, serial.cpi.mean, 1e-12);
    EXPECT_NEAR(farm.cpi.halfWidth, serial.cpi.halfWidth, 1e-12);
    EXPECT_NEAR(farm.ipc.mean, serial.ipc.mean, 1e-12);
    EXPECT_NEAR(farm.estCycles(), serial.estCycles(), 1e-6);
}

TEST(LvptTest, FarmIsDeterministicAcrossJobCounts)
{
    const std::string path = tmpPath("jobs.lvpt");
    buildSmallLib(path);
    LvptLibrary lib(path);

    FarmRequest req;
    req.pipe = facPipelineConfig(32);
    req.partner = baselineConfig(32);
    req.matchedPair = true;

    req.jobs = 1;
    FarmResult a = runFarm(lib, req);
    req.jobs = 3;
    FarmResult c = runFarm(lib, req);

    // Per-entry result slots + entry-order aggregation: every derived
    // number is bitwise identical regardless of the worker count.
    EXPECT_EQ(a.windows, c.windows);
    EXPECT_EQ(a.measuredInsts, c.measuredInsts);
    EXPECT_EQ(a.measuredCycles, c.measuredCycles);
    EXPECT_EQ(a.warmupInsts, c.warmupInsts);
    EXPECT_EQ(a.cpi.mean, c.cpi.mean);
    EXPECT_EQ(a.cpi.halfWidth, c.cpi.halfWidth);
    EXPECT_EQ(a.partnerCpi.mean, c.partnerCpi.mean);
    EXPECT_EQ(a.pairedSpeedup.mean, c.pairedSpeedup.mean);
    EXPECT_EQ(a.pairedSpeedup.halfWidth, c.pairedSpeedup.halfWidth);
    EXPECT_EQ(a.independentSpeedup.halfWidth,
              c.independentSpeedup.halfWidth);
}

TEST(LvptTest, MatchedPairNarrowsTheSpeedupCi)
{
    const std::string path = tmpPath("pair.lvpt");
    buildSmallLib(path);
    LvptLibrary lib(path);

    FarmRequest req;
    req.pipe = facPipelineConfig(32);
    req.partner = baselineConfig(32);
    req.matchedPair = true;
    FarmResult fr = runFarm(lib, req);

    ASSERT_FALSE(fr.pairedSpeedup.insufficient);
    ASSERT_FALSE(fr.independentSpeedup.insufficient);
    // Same point estimate either way (both are partner/measured).
    EXPECT_NEAR(fr.pairedSpeedup.mean, fr.independentSpeedup.mean, 0.05);
    EXPECT_GT(fr.pairedSpeedup.mean, 1.0);
    // The paired CI cancels the correlated window-to-window workload
    // variation, so it must come out narrower than quadrature.
    EXPECT_LT(fr.pairedSpeedup.halfWidth,
              fr.independentSpeedup.halfWidth);
}

TEST(LvptDeathTest, RejectsDamagedAndMismatchedLibraries)
{
    const std::string good = tmpPath("good.lvpt");
    buildSmallLib(good);
    const std::string data = slurp(good);
    ASSERT_GT(data.size(), 128u);
    const size_t countOff = countFieldOffset("espresso");

    // Wrong warm-structure geometry: the library was cut with 32-byte
    // blocks, this pipeline wants 16-byte blocks.
    EXPECT_DEATH(
        {
            LvptLibrary lib(good);
            Machine m(workload("espresso"),
                      lib.identity().buildOptions());
            Pipeline pipe(baselineConfig(16), m.emulator());
            lib.restoreEntry(0, m, pipe);
        },
        "geometry must match the mklib run");

    // Stale format version (re-sealed so the checksum passes).
    const std::string vers = tmpPath("version.lvpt");
    spew(vers, patchAndReseal(data, 8, 99));
    EXPECT_DEATH(LvptLibrary{vers}, "stale format version 99");

    // Truncated index: the count claims more records than the file can
    // hold (high byte of the count patched, then re-sealed).
    const std::string trunc = tmpPath("truncindex.lvpt");
    spew(trunc, patchAndReseal(data, countOff + 6, 0x01));
    EXPECT_DEATH(LvptLibrary{trunc}, "truncated index");

    // A single damaged entry: entry 1's payload offset points far past
    // the end of the file. The library still *opens* (entry framing is
    // validated lazily), and the farm dies when it reaches that entry.
    const std::string missing = tmpPath("missing.lvpt");
    spew(missing,
         patchAndReseal(data, countOff + 8 + 24 * 1 + 8 + 6, 0x01));
    EXPECT_DEATH(
        {
            LvptLibrary lib(missing);
            FarmRequest req;
            req.pipe = baselineConfig(32);
            runFarm(lib, req);
        },
        "entry 1 of .* is missing or out of bounds");

    // Plain corruption is still caught up front.
    const std::string flip = tmpPath("flip.lvpt");
    std::string flipped = data;
    flipped[data.size() / 2] ^= 0x40;
    spew(flip, flipped);
    EXPECT_DEATH(LvptLibrary{flip}, "corrupted: checksum");

    EXPECT_DEATH(LvptLibrary{tmpPath("nonexistent.lvpt")},
                 "cannot open");
}
