/**
 * @file
 * Frame-layout tests: slot placement under both policies and the emitted
 * prologue/epilogue code, executed end-to-end on the emulator to verify
 * sp discipline (including the explicit big-frame alignment path).
 */

#include <gtest/gtest.h>

#include "cpu/emulator.hh"
#include "link/linker.hh"
#include "workloads/kernel_lib.hh"

namespace facsim
{
namespace
{

WorkloadContext
makeCtx(AsmBuilder &as, const CodeGenPolicy &pol, Rng &rng)
{
    return WorkloadContext(as, pol, rng, 1);
}

TEST(Frame, BaselineDeclarationOrder)
{
    Program p;
    AsmBuilder as(p);
    Rng rng(1);
    CodeGenPolicy pol = CodeGenPolicy::baseline();
    WorkloadContext ctx = makeCtx(as, pol, rng);
    Frame f(ctx, false);
    unsigned s1 = f.addScalar();
    unsigned arr = f.addArray(100);
    unsigned s2 = f.addScalar();
    f.seal();
    // Declaration order: the second scalar lands beyond the array.
    EXPECT_EQ(f.off(s1), 0);
    EXPECT_EQ(f.off(arr), 4);
    EXPECT_EQ(f.off(s2), 104);
    EXPECT_EQ(f.size() % 8, 0u);
}

TEST(Frame, SupportSortsScalarsFirst)
{
    Program p;
    AsmBuilder as(p);
    Rng rng(1);
    CodeGenPolicy pol = CodeGenPolicy::withSupport();
    WorkloadContext ctx = makeCtx(as, pol, rng);
    Frame f(ctx, false);
    unsigned s1 = f.addScalar();
    unsigned arr = f.addArray(100);
    unsigned s2 = f.addScalar();
    f.seal();
    // Scalars sort to the lowest offsets (Section 4).
    EXPECT_EQ(f.off(s1), 0);
    EXPECT_EQ(f.off(s2), 4);
    EXPECT_EQ(f.off(arr), 8);
    EXPECT_EQ(f.size() % 64, 0u);
}

// Run a generated function end-to-end and confirm sp comes back intact
// and the frame slots behave as storage.
void
runFrameProgram(const CodeGenPolicy &pol, bool big_frame)
{
    Program p;
    AsmBuilder as(p);
    Rng rng(1);
    WorkloadContext ctx = makeCtx(as, pol, rng);

    SymId out = as.global("out", 4, 4, true);
    LabelId fn = as.newLabel();

    as.jal(fn);
    as.swGp(reg::v0, out);
    as.halt();

    as.bind(fn);
    Frame f(ctx, false);
    unsigned slot = f.addScalar();
    if (big_frame)
        f.addArray(300, 8);
    f.seal();
    f.prologue(as);
    as.li(reg::t0, 1234);
    as.sw(reg::t0, f.off(slot), reg::sp);
    as.lw(reg::v0, f.off(slot), reg::sp);
    f.epilogueAndRet(as);

    Memory mem;
    LinkedImage img = Linker(pol.link).link(p, mem);
    Emulator emu(p, mem, img, pol.stack.initialSp());
    uint32_t sp0 = emu.intReg(reg::sp);
    emu.run(10000);
    EXPECT_TRUE(emu.halted());
    EXPECT_EQ(emu.intReg(reg::sp), sp0) << "sp not restored";
    EXPECT_EQ(mem.read32(p.syms()[0].addr), 1234u);
}

TEST(Frame, SmallFrameRoundTripBaseline)
{
    runFrameProgram(CodeGenPolicy::baseline(), false);
}

TEST(Frame, SmallFrameRoundTripSupport)
{
    runFrameProgram(CodeGenPolicy::withSupport(), false);
}

TEST(Frame, BigFrameRoundTripBaseline)
{
    runFrameProgram(CodeGenPolicy::baseline(), true);
}

TEST(Frame, BigFrameExplicitAlignmentRoundTrip)
{
    runFrameProgram(CodeGenPolicy::withSupport(), true);
}

TEST(Frame, BigFrameAlignsSpDuringExecution)
{
    CodeGenPolicy pol = CodeGenPolicy::withSupport();
    Program p;
    AsmBuilder as(p);
    Rng rng(1);
    WorkloadContext ctx = makeCtx(as, pol, rng);

    SymId spval = as.global("spval", 4, 4, true);
    LabelId fn = as.newLabel();
    as.jal(fn);
    as.halt();
    as.bind(fn);
    Frame f(ctx, false);
    f.addArray(300, 8);
    f.seal();
    f.prologue(as);
    as.swGp(reg::sp, spval);   // capture the aligned sp
    f.epilogueAndRet(as);

    Memory mem;
    LinkedImage img = Linker(pol.link).link(p, mem);
    Emulator emu(p, mem, img, pol.stack.initialSp());
    emu.run(10000);
    uint32_t inner_sp = mem.read32(p.syms()[0].addr);
    // Frame > 64 bytes: the prologue explicitly aligned sp to the
    // (capped) power-of-two frame alignment.
    EXPECT_EQ(inner_sp % 256, 0u);
}

TEST(FrameDeathTest, Misuse)
{
    Program p;
    AsmBuilder as(p);
    Rng rng(1);
    CodeGenPolicy pol = CodeGenPolicy::baseline();
    WorkloadContext ctx = makeCtx(as, pol, rng);
    Frame f(ctx, false);
    unsigned s = f.addScalar();
    EXPECT_DEATH(f.off(s), "not sealed");
    f.seal();
    EXPECT_DEATH(f.addScalar(), "sealed");
    EXPECT_DEATH(f.seal(), "sealed twice");
}

} // anonymous namespace
} // namespace facsim
