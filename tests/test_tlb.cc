/** @file Unit tests for the 64-entry fully associative TLB model. */

#include <gtest/gtest.h>

#include "mem/tlb.hh"

namespace facsim
{
namespace
{

TEST(Tlb, FirstAccessMisses)
{
    Tlb t;
    EXPECT_FALSE(t.access(0x10000000));
    EXPECT_EQ(t.misses(), 1u);
    EXPECT_EQ(t.accesses(), 1u);
}

TEST(Tlb, SamePageHits)
{
    Tlb t;
    t.access(0x10000000);
    EXPECT_TRUE(t.access(0x10000004));
    EXPECT_TRUE(t.access(0x10000ffc));
    EXPECT_FALSE(t.access(0x10001000));  // next page
}

TEST(Tlb, HoldsItsCapacityOfPages)
{
    Tlb t(64, 4096);
    for (uint32_t p = 0; p < 64; ++p)
        t.access(p * 4096);
    uint64_t misses_after_fill = t.misses();
    EXPECT_EQ(misses_after_fill, 64u);
    // All 64 pages resident: re-touching them all hits.
    for (uint32_t p = 0; p < 64; ++p)
        EXPECT_TRUE(t.access(p * 4096));
}

TEST(Tlb, EvictsWhenOverCapacity)
{
    Tlb t(4, 4096);
    for (uint32_t p = 0; p < 5; ++p)
        t.access(p * 4096);
    EXPECT_EQ(t.misses(), 5u);
    // Exactly one of the original four was evicted (random victim).
    unsigned hits = 0;
    for (uint32_t p = 0; p < 4; ++p)
        hits += t.access(p * 4096) ? 1 : 0;
    EXPECT_EQ(hits, 3u);
}

TEST(Tlb, MissRatio)
{
    Tlb t;
    t.access(0);
    t.access(4);
    t.access(8);
    t.access(12);
    EXPECT_DOUBLE_EQ(t.missRatio(), 0.25);
}

TEST(Tlb, ResetClears)
{
    Tlb t;
    t.access(0);
    t.reset();
    EXPECT_EQ(t.accesses(), 0u);
    EXPECT_FALSE(t.access(0));
}

} // anonymous namespace
} // namespace facsim
