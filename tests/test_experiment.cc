/**
 * @file
 * End-to-end experiment tests: the shapes the paper's evaluation rests
 * on must hold on the full machine — FAC speeds programs up, software
 * support improves prediction, bandwidth overhead shrinks with support,
 * and the sim/config presets behave.
 */

#include <gtest/gtest.h>

#include "sim/config.hh"
#include "sim/experiment.hh"
#include "sim/stats.hh"

namespace facsim
{
namespace
{

TimingResult
timed(const char *name, const CodeGenPolicy &pol, const PipelineConfig &pc,
      uint64_t max_insts = 800'000)
{
    TimingRequest req;
    req.workload = name;
    req.build.policy = pol;
    req.pipe = pc;
    req.maxInsts = max_insts;
    return runTiming(req);
}

TEST(Experiment, FacSpeedsUpIntegerKernel)
{
    TimingResult base = timed("xlisp", CodeGenPolicy::baseline(),
                              baselineConfig());
    TimingResult fac = timed("xlisp", CodeGenPolicy::baseline(),
                             facPipelineConfig());
    EXPECT_NEAR(static_cast<double>(base.stats.insts),
                static_cast<double>(fac.stats.insts), 8.0);
    double s = speedup(base.stats.cycles, fac.stats.cycles);
    EXPECT_GT(s, 1.02) << "FAC should speed up pointer-chasing code";
}

TEST(Experiment, SoftwareSupportImprovesFacSpeedup)
{
    TimingResult base = timed("doduc", CodeGenPolicy::baseline(),
                              baselineConfig());
    TimingResult hw = timed("doduc", CodeGenPolicy::baseline(),
                            facPipelineConfig());
    TimingResult both = timed("doduc", CodeGenPolicy::withSupport(),
                              facPipelineConfig());
    double hw_speedup = speedup(base.stats.cycles, hw.stats.cycles);
    double sw_speedup = speedup(base.stats.cycles, both.stats.cycles);
    EXPECT_GE(sw_speedup, hw_speedup - 0.01);
    EXPECT_GT(sw_speedup, 1.0);
}

TEST(Experiment, SupportCutsBandwidthOverhead)
{
    TimingResult hw = timed("sc", CodeGenPolicy::baseline(),
                            facPipelineConfig());
    TimingResult sw = timed("sc", CodeGenPolicy::withSupport(),
                            facPipelineConfig());
    EXPECT_LT(sw.stats.bandwidthOverhead(),
              hw.stats.bandwidthOverhead());
}

TEST(Experiment, IdealisationOrdering)
{
    // cycles(1-cycle+perfect) <= cycles(1-cycle) <= cycles(baseline),
    // and the same for the perfect-cache leg.
    TimingResult base = timed("compress", CodeGenPolicy::baseline(),
                              baselineConfig());
    TimingResult one = timed("compress", CodeGenPolicy::baseline(),
                             oneCycleLoadConfig());
    TimingResult perfect = timed("compress", CodeGenPolicy::baseline(),
                                 perfectCacheConfig());
    TimingResult both = timed("compress", CodeGenPolicy::baseline(),
                              oneCyclePerfectConfig());
    EXPECT_LT(one.stats.cycles, base.stats.cycles);
    EXPECT_LT(perfect.stats.cycles, base.stats.cycles);
    EXPECT_LE(both.stats.cycles, one.stats.cycles);
    EXPECT_LE(both.stats.cycles, perfect.stats.cycles);
}

TEST(Experiment, FacBoundedByOneCycleIdeal)
{
    // FAC can at best turn every load into a 1-cycle load.
    TimingResult one = timed("grep", CodeGenPolicy::baseline(),
                             oneCycleLoadConfig());
    TimingResult fac = timed("grep", CodeGenPolicy::baseline(),
                             facPipelineConfig());
    EXPECT_GE(fac.stats.cycles + 8, one.stats.cycles);
}

TEST(Experiment, ProfileAndTimingAgreeOnCounts)
{
    ProfileRequest preq;
    preq.workload = "espresso";
    preq.build.policy = CodeGenPolicy::baseline();
    ProfileResult prof = runProfile(preq);

    TimingRequest treq;
    treq.workload = "espresso";
    treq.build.policy = CodeGenPolicy::baseline();
    treq.pipe = baselineConfig();
    TimingResult tim = runTiming(treq);

    EXPECT_EQ(prof.insts, tim.stats.insts);
    EXPECT_EQ(prof.loads, tim.stats.loads);
    EXPECT_EQ(prof.stores, tim.stats.stores);
}

TEST(Experiment, MemUsageGrowsWithSupport)
{
    // Alignment padding costs memory (Table 4's "Mem Usage %Change").
    ProfileRequest base;
    base.workload = "perl";
    base.build.policy = CodeGenPolicy::baseline();
    ProfileRequest sup = base;
    sup.build.policy = CodeGenPolicy::withSupport();
    ProfileResult rb = runProfile(base);
    ProfileResult rs = runProfile(sup);
    EXPECT_GE(rs.memUsageBytes, rb.memUsageBytes);
}

TEST(Experiment, TlbMissRatioStaysTiny)
{
    ProfileRequest req;
    req.workload = "compress";
    req.build.policy = CodeGenPolicy::withSupport();
    req.withTlb = true;
    req.maxInsts = 500'000;
    ProfileResult r = runProfile(req);
    EXPECT_LT(r.tlbMissRatio, 0.01);
}

TEST(Experiment, ConfigPresetsMatchTable5)
{
    PipelineConfig c = baselineConfig();
    EXPECT_EQ(c.fetchWidth, 4u);
    EXPECT_EQ(c.issueWidth, 4u);
    EXPECT_EQ(c.dcache.sizeBytes, 16u * 1024);
    EXPECT_EQ(c.dcache.blockBytes, 32u);
    EXPECT_EQ(c.dcache.missLatency, 6u);
    EXPECT_EQ(c.storeBufferEntries, 16u);
    EXPECT_EQ(c.btbEntries, 1024u);
    EXPECT_FALSE(c.facEnabled);

    PipelineConfig f = facPipelineConfig(16);
    EXPECT_TRUE(f.facEnabled);
    EXPECT_EQ(f.fac.blockBits, 4u);
    EXPECT_EQ(f.fac.setBits, 14u);

    std::string desc = describeConfig(c);
    EXPECT_NE(desc.find("16k direct-mapped"), std::string::npos);
    EXPECT_NE(desc.find("FAC:          disabled"), std::string::npos);
}

} // anonymous namespace
} // namespace facsim
