/**
 * @file
 * Property-based verification of the fast-address-calculation circuit —
 * the hardware-correctness invariants of Section 3:
 *
 *  1. SAFETY: whenever verification raises no failure, the predicted
 *     address equals base + offset (a wrong speculative access is never
 *     allowed to commit).
 *  2. PRECISION (constant offsets): whenever verification fails, the
 *     predicted address really was wrong — the detector never wastes a
 *     correct speculative access. Register offsets are exempt: negative
 *     index registers fail conservatively by design.
 *
 * The sweep is parameterised over cache geometries (TEST_P) and drives
 * both structured corner cases and random (base, offset) pairs.
 */

#include <gtest/gtest.h>

#include "core/fast_addr_calc.hh"
#include "util/bits.hh"
#include "util/rng.hh"

namespace facsim
{
namespace
{

struct Geometry
{
    unsigned blockBits;
    unsigned setBits;
    bool fullTagAdd;
};

class FacPropertyTest : public ::testing::TestWithParam<Geometry>
{
  protected:
    FacConfig
    config() const
    {
        Geometry geo = GetParam();
        return FacConfig{.blockBits = geo.blockBits, .setBits = geo.setBits,
                         .fullTagAdd = geo.fullTagAdd,
                         .speculateRegReg = true};
    }

    void
    checkOne(const FastAddrCalc &fac, uint32_t base, int32_t offset,
             bool from_reg)
    {
        FacResult r = fac.predict(base, offset, from_reg);
        ASSERT_TRUE(r.attempted);
        uint32_t actual = base + static_cast<uint32_t>(offset);
        if (r.success) {
            ASSERT_EQ(r.predictedAddr, actual)
                << "SAFETY violated: base=0x" << std::hex << base
                << " offset=" << std::dec << offset
                << " from_reg=" << from_reg;
        } else if (!from_reg) {
            ASSERT_NE(r.predictedAddr, actual)
                << "PRECISION violated: base=0x" << std::hex << base
                << " offset=" << std::dec << offset << " failMask="
                << FastAddrCalc::failMaskName(r.failMask);
        }
    }
};

TEST_P(FacPropertyTest, StructuredCorners)
{
    FastAddrCalc fac(config());
    unsigned b = config().blockBits;
    unsigned s = config().setBits;

    std::vector<uint32_t> bases;
    std::vector<int32_t> offsets;
    // Bases and offsets probing every field boundary.
    for (unsigned bit : {0u, b - 1, b, s - 1, s,
                         std::min(31u, s + 1)}) {
        bases.push_back(1u << bit);
        bases.push_back((1u << bit) - 1);
        bases.push_back(0xffffffffu << bit);
        offsets.push_back(static_cast<int32_t>(1u << std::min(bit, 30u)));
        offsets.push_back(static_cast<int32_t>((1u << std::min(bit, 30u))
                                               - 1));
        offsets.push_back(-static_cast<int32_t>(1u << std::min(bit, 30u)));
    }
    bases.push_back(0);
    offsets.push_back(0);
    offsets.push_back(-1);

    for (uint32_t base : bases) {
        for (int32_t ofs : offsets) {
            checkOne(fac, base, ofs, false);
            checkOne(fac, base, ofs, true);
        }
    }
}

TEST_P(FacPropertyTest, RandomSweep)
{
    FastAddrCalc fac(config());
    Rng rng(0xfacfac ^ (config().blockBits << 8) ^ config().setBits);
    for (int i = 0; i < 60000; ++i) {
        uint32_t base = static_cast<uint32_t>(rng.next());
        // Mix small, medium and huge offsets; 1/4 negative.
        int32_t ofs;
        switch (rng.range(4)) {
          case 0:
            ofs = static_cast<int32_t>(rng.range(64));
            break;
          case 1:
            ofs = static_cast<int32_t>(rng.range(1u << 14));
            break;
          case 2:
            ofs = static_cast<int32_t>(rng.range(1u << 30));
            break;
          default:
            ofs = -static_cast<int32_t>(rng.range(1u << 14));
            break;
        }
        checkOne(fac, base, ofs, rng.chance(0.3));
    }
}

TEST_P(FacPropertyTest, AlignedBaseAlwaysPredicts)
{
    // The premise of the software support (Section 4): a base register
    // aligned to the full set-field span (as the linker makes gp) with
    // any positive offset smaller than that span always predicts
    // correctly — carry-free addition cannot generate or receive a carry.
    FastAddrCalc fac(config());
    unsigned s = config().setBits;
    Rng rng(7);
    for (int i = 0; i < 5000; ++i) {
        uint32_t base = s < 32
            ? static_cast<uint32_t>(rng.next()) << s : 0u;
        int32_t ofs = static_cast<int32_t>(rng.range(1u << s));
        FacResult r = fac.predict(base, ofs, false);
        EXPECT_TRUE(r.success)
            << std::hex << "base=0x" << base << " ofs=0x" << ofs;
        EXPECT_EQ(r.predictedAddr, base + static_cast<uint32_t>(ofs));
    }
}

// Exhaustive version of the sampled properties above: shrink the
// datapath to B=2, S=5 so the full cross product of field patterns fits
// in one in-process sweep — every 10-bit base pattern (with and without
// all high bits set, so tag arithmetic sees carries in and out), every
// offset the window can express in both signs, both offset kinds, both
// tag circuits. Proves the failure signals fire IFF the prediction is
// wrong, modulo the one deliberately conservative case (negative
// register index), for every reachable combination rather than a sample.
TEST(FacExhaustive, ReducedWidthFailureSignalsAreExact)
{
    for (bool full_tag : {true, false}) {
        FacConfig cfg{.blockBits = 2, .setBits = 5,
                      .fullTagAdd = full_tag, .speculateRegReg = true};
        FastAddrCalc fac(cfg);
        for (uint32_t b10 = 0; b10 < 1024; ++b10) {
            for (uint32_t hi : {0u, 0xfffffc00u}) {
                const uint32_t base = b10 | hi;
                for (int32_t ofs = -1024; ofs < 1024; ++ofs) {
                    for (bool from_reg : {false, true}) {
                        FacResult r = fac.predict(base, ofs, from_reg);
                        ASSERT_TRUE(r.attempted);
                        const uint32_t actual =
                            base + static_cast<uint32_t>(ofs);
                        if (r.success) {
                            ASSERT_EQ(r.predictedAddr, actual)
                                << "SAFETY: base=0x" << std::hex << base
                                << " ofs=" << std::dec << ofs
                                << " from_reg=" << from_reg
                                << " tag=" << full_tag;
                        } else if (!(from_reg && ofs < 0)) {
                            ASSERT_NE(r.predictedAddr, actual)
                                << "PRECISION: base=0x" << std::hex
                                << base << " ofs=" << std::dec << ofs
                                << " from_reg=" << from_reg
                                << " tag=" << full_tag << " failMask="
                                << FastAddrCalc::failMaskName(
                                       r.failMask);
                        }
                    }
                }
            }
        }
    }
}

// Signed-offset boundary specials at full width: INT32_MIN (whose
// negation does not exist), INT32_MAX, and offsets equal to the exact
// set-index span. SAFETY must hold unconditionally; the known-wrong
// cases must all raise a failure signal.
TEST(FacExhaustive, SignedBoundarySpecials)
{
    FacConfig cfg{.blockBits = 5, .setBits = 14, .fullTagAdd = true,
                  .speculateRegReg = true};
    FastAddrCalc fac(cfg);
    const int32_t span = 1 << cfg.setBits;
    const std::vector<uint32_t> bases = {
        0, 1, 31, 32, 0x3fff, 0x4000, 0x7fff5b88, 0x80000000,
        0xffffffe0, 0xffffffff,
    };
    const std::vector<int32_t> offsets = {
        INT32_MIN, INT32_MIN + 1, INT32_MAX, INT32_MAX - 31,
        -span, -span + 1, span, span - 1, -32, -31, -1,
    };
    for (uint32_t base : bases) {
        for (int32_t ofs : offsets) {
            for (bool from_reg : {false, true}) {
                FacResult r = fac.predict(base, ofs, from_reg);
                ASSERT_TRUE(r.attempted);
                const uint32_t actual =
                    base + static_cast<uint32_t>(ofs);
                if (r.success)
                    ASSERT_EQ(r.predictedAddr, actual)
                        << "base=0x" << std::hex << base
                        << " ofs=" << std::dec << ofs;
                else if (!(from_reg && ofs < 0))
                    ASSERT_NE(r.predictedAddr, actual)
                        << "base=0x" << std::hex << base
                        << " ofs=" << std::dec << ofs;
            }
        }
    }
    // INT32_MIN can never satisfy the small-negative-constant decoder:
    // its upper bits are not all ones, whatever the base.
    EXPECT_FALSE(fac.predict(0x7fff5b88, INT32_MIN, false).success);
    EXPECT_TRUE(fac.predict(0x7fff5b88, INT32_MIN, false).failMask &
                facFailLargeNegConst);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, FacPropertyTest,
    ::testing::Values(
        Geometry{4, 14, true},    // 16 KB direct-mapped, 16 B blocks
        Geometry{5, 14, true},    // 16 KB direct-mapped, 32 B blocks
        Geometry{5, 14, false},   // OR-tag variant
        Geometry{4, 10, true},    // 1 KB cache
        Geometry{6, 20, true},    // 1 MB cache, 64 B blocks
        Geometry{5, 13, false},   // 16 KB 2-way
        Geometry{5, 30, true}),   // near-degenerate tag
    [](const ::testing::TestParamInfo<Geometry> &info) {
        return "B" + std::to_string(info.param.blockBits) + "_S" +
            std::to_string(info.param.setBits) +
            (info.param.fullTagAdd ? "_fulltag" : "_ortag");
    });

} // anonymous namespace
} // namespace facsim
