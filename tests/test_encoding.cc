/**
 * @file
 * Encode/decode tests: hand-checked encodings plus a property sweep that
 * round-trips randomly generated canonical instructions.
 */

#include <gtest/gtest.h>

#include "isa/encoding.hh"
#include "util/rng.hh"

namespace facsim
{
namespace
{

TEST(Encoding, NopIsZeroWord)
{
    EXPECT_EQ(encode(Inst{}), 0u);
    Inst in;
    ASSERT_TRUE(decode(0, in));
    EXPECT_EQ(in.op, Op::NOP);
}

TEST(Encoding, AddRoundTrip)
{
    Inst in{.op = Op::ADD, .rd = 3, .rs = 4, .rt = 5};
    Inst out;
    ASSERT_TRUE(decode(encode(in), out));
    EXPECT_EQ(in, out);
}

TEST(Encoding, AddiNegativeImmediate)
{
    Inst in{.op = Op::ADDI, .rs = reg::sp, .rt = reg::sp, .imm = -64};
    Inst out;
    ASSERT_TRUE(decode(encode(in), out));
    EXPECT_EQ(in, out);
}

TEST(Encoding, MemRegConst)
{
    Inst in{.op = Op::LW, .amode = AMode::RegConst, .rs = reg::gp,
            .rt = reg::t0, .imm = 2436};
    Inst out;
    ASSERT_TRUE(decode(encode(in), out));
    EXPECT_EQ(in, out);
}

TEST(Encoding, MemRegReg)
{
    Inst in{.op = Op::LW, .amode = AMode::RegReg, .rd = reg::t1,
            .rs = reg::s0, .rt = reg::t2};
    Inst out;
    ASSERT_TRUE(decode(encode(in), out));
    EXPECT_EQ(in, out);
}

TEST(Encoding, MemPostIncAndDec)
{
    Inst inc{.op = Op::LW, .amode = AMode::PostInc, .rs = reg::s1,
             .rt = reg::t3, .imm = 4};
    Inst dec{.op = Op::SB, .amode = AMode::PostInc, .rs = reg::s1,
             .rt = reg::t3, .imm = -1};
    Inst out;
    ASSERT_TRUE(decode(encode(inc), out));
    EXPECT_EQ(inc, out);
    ASSERT_TRUE(decode(encode(dec), out));
    EXPECT_EQ(dec, out);
}

TEST(Encoding, BranchDisplacement)
{
    Inst in{.op = Op::BNE, .rs = 8, .rt = 9, .imm = -100};
    Inst out;
    ASSERT_TRUE(decode(encode(in), out));
    EXPECT_EQ(in, out);
}

TEST(Encoding, JumpTarget)
{
    Inst in{.op = Op::JAL, .imm = 0x00100000 + 57};
    Inst out;
    ASSERT_TRUE(decode(encode(in), out));
    EXPECT_EQ(in, out);
}

TEST(Encoding, FpOps)
{
    Inst in{.op = Op::MUL_D, .rd = 2, .rs = 4, .rt = 6};
    Inst out;
    ASSERT_TRUE(decode(encode(in), out));
    EXPECT_EQ(in, out);

    Inst cvt{.op = Op::CVT_D_W, .rd = 1, .rs = 3};
    ASSERT_TRUE(decode(encode(cvt), out));
    EXPECT_EQ(cvt, out);

    Inst mt{.op = Op::MTC1, .rd = 7, .rt = reg::t4};
    ASSERT_TRUE(decode(encode(mt), out));
    EXPECT_EQ(mt, out);
}

TEST(Encoding, InvalidWordsRejected)
{
    Inst out;
    // SPECIAL with an unassigned funct.
    EXPECT_FALSE(decode(0x0000003eu, out));
    // Unassigned primary opcode.
    EXPECT_FALSE(decode(0xfc000000u, out));
    // MEMX with funct >= 12.
    EXPECT_FALSE(decode((0x1cu << 26) | 13u, out));
}

// ---------------------------------------------------------------------
// Property sweep: every canonical instruction round-trips through its
// 32-bit encoding. "Canonical" = fields unused by the op left at zero,
// exactly as the assembler emits them.
// ---------------------------------------------------------------------

Inst
randomCanonical(Rng &rng)
{
    auto r5 = [&] { return static_cast<uint8_t>(rng.range(32)); };
    auto imm16s = [&] {
        return static_cast<int32_t>(rng.between(-32768, 32767));
    };
    auto imm16u = [&] { return static_cast<int32_t>(rng.range(65536)); };

    static const Op alu_r[] = {Op::ADD, Op::SUB, Op::AND, Op::OR, Op::XOR,
                               Op::NOR, Op::SLT, Op::SLTU, Op::MUL,
                               Op::DIV, Op::REM, Op::SLLV, Op::SRLV,
                               Op::SRAV};
    static const Op alu_i[] = {Op::ADDI, Op::SLTI, Op::SLTIU};
    static const Op alu_u[] = {Op::ANDI, Op::ORI, Op::XORI};
    static const Op shifts[] = {Op::SLL, Op::SRL, Op::SRA};
    static const Op mems[] = {Op::LB, Op::LBU, Op::LH, Op::LHU, Op::LW,
                              Op::SB, Op::SH, Op::SW, Op::LWC1, Op::LDC1,
                              Op::SWC1, Op::SDC1};
    static const Op fp3[] = {Op::ADD_D, Op::SUB_D, Op::MUL_D, Op::DIV_D};
    static const Op fp2[] = {Op::SQRT_D, Op::ABS_D, Op::NEG_D, Op::MOV_D,
                             Op::CVT_D_W, Op::CVT_W_D};
    static const Op br2[] = {Op::BEQ, Op::BNE};
    static const Op br1[] = {Op::BLEZ, Op::BGTZ, Op::BLTZ, Op::BGEZ};

    switch (rng.range(12)) {
      case 0:
        return Inst{.op = alu_r[rng.range(std::size(alu_r))], .rd = r5(),
                    .rs = r5(), .rt = r5()};
      case 1:
        return Inst{.op = alu_i[rng.range(std::size(alu_i))], .rs = r5(),
                    .rt = r5(), .imm = imm16s()};
      case 2:
        return Inst{.op = alu_u[rng.range(std::size(alu_u))], .rs = r5(),
                    .rt = r5(), .imm = imm16u()};
      case 3:
        return Inst{.op = shifts[rng.range(std::size(shifts))],
                    .rd = r5(), .rs = r5(),
                    .imm = static_cast<int32_t>(rng.range(32))};
      case 4:
        return Inst{.op = mems[rng.range(std::size(mems))],
                    .amode = AMode::RegConst, .rs = r5(), .rt = r5(),
                    .imm = imm16s()};
      case 5:
        return Inst{.op = mems[rng.range(std::size(mems))],
                    .amode = AMode::RegReg, .rd = r5(), .rs = r5(),
                    .rt = r5()};
      case 6: {
        static const Op pmem[] = {Op::LB, Op::LBU, Op::LW, Op::SB,
                                  Op::SW, Op::LWC1, Op::LDC1, Op::SWC1,
                                  Op::SDC1};
        return Inst{.op = pmem[rng.range(std::size(pmem))],
                    .amode = AMode::PostInc, .rs = r5(), .rt = r5(),
                    .imm = imm16s()};
      }
      case 7:
        return Inst{.op = br2[rng.range(std::size(br2))], .rs = r5(),
                    .rt = r5(), .imm = imm16s()};
      case 8:
        return Inst{.op = br1[rng.range(std::size(br1))], .rs = r5(),
                    .imm = imm16s()};
      case 9:
        return Inst{.op = fp3[rng.range(std::size(fp3))], .rd = r5(),
                    .rs = r5(), .rt = r5()};
      case 10:
        return Inst{.op = fp2[rng.range(std::size(fp2))], .rd = r5(),
                    .rs = r5()};
      default:
        return Inst{.op = rng.chance(0.5) ? Op::J : Op::JAL,
                    .imm = static_cast<int32_t>(rng.range(1u << 26))};
    }
}

TEST(EncodingProperty, RandomRoundTrip)
{
    Rng rng(0xc0ffee);
    for (int i = 0; i < 20000; ++i) {
        Inst in = randomCanonical(rng);
        uint32_t word = encode(in);
        Inst out;
        ASSERT_TRUE(decode(word, out))
            << "op=" << opName(in.op) << " word=" << std::hex << word;
        EXPECT_EQ(in, out) << "op=" << opName(in.op);
    }
}

} // anonymous namespace
} // namespace facsim
