/**
 * @file
 * Checkpoint/restore tests (sim/checkpoint.hh): a timing run saved at
 * an arbitrary cycle boundary and resumed in a fresh process-equivalent
 * (new Machine + Pipeline) finishes with bit-identical statistics; the
 * functional kind round-trips the emulator; and damaged or mismatched
 * files are rejected with clear fatal messages (death tests).
 */

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "sim/checkpoint.hh"
#include "sim/config.hh"
#include "sim/experiment.hh"
#include "util/serialize.hh"

using namespace facsim;

namespace
{

std::string
tmpPath(const char *name)
{
    return testing::TempDir() + "/" + name;
}

std::string
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::string data;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        data.append(buf, n);
    std::fclose(f);
    return data;
}

void
spew(const std::string &path, const std::string &data)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f), data.size());
    std::fclose(f);
}

/** Patch @p data in place and re-seal the trailing checksum. */
std::string
patchAndReseal(std::string data, size_t offset, char value)
{
    data[offset] = value;
    uint64_t sum = ser::fnv1a(data.data(), data.size() - 8);
    std::memcpy(&data[data.size() - 8], &sum, 8);
    return data;
}

void
expectStatsEqual(const PipeStats &a, const PipeStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.icacheAccesses, b.icacheAccesses);
    EXPECT_EQ(a.icacheMisses, b.icacheMisses);
    EXPECT_EQ(a.dcacheAccesses, b.dcacheAccesses);
    EXPECT_EQ(a.dcacheMisses, b.dcacheMisses);
    EXPECT_EQ(a.btbLookups, b.btbLookups);
    EXPECT_EQ(a.btbMispredicts, b.btbMispredicts);
    EXPECT_EQ(a.loadsSpeculated, b.loadsSpeculated);
    EXPECT_EQ(a.loadSpecFailures, b.loadSpecFailures);
    EXPECT_EQ(a.storesSpeculated, b.storesSpeculated);
    EXPECT_EQ(a.storeSpecFailures, b.storeSpecFailures);
    EXPECT_EQ(a.extraAccesses, b.extraAccesses);
    EXPECT_EQ(a.storeBufferFullStalls, b.storeBufferFullStalls);
    EXPECT_EQ(a.stallFetch, b.stallFetch);
    EXPECT_EQ(a.stallData, b.stallData);
    EXPECT_EQ(a.stallStructural, b.stallStructural);
    EXPECT_EQ(a.stallStoreBuffer, b.stallStoreBuffer);
}

PipelineConfig
timingConfig()
{
    PipelineConfig c = facPipelineConfig(32);
    // Exercise the deep hierarchy so MSHR/WB/DRAM/TLB in-flight state
    // crosses the checkpoint too.
    c.hierarchy = hierarchyPreset("modern");
    c.hierarchy.tlbEnabled = true;
    c.hierarchy.tlbMissPenalty = 30;
    return c;
}

} // namespace

TEST(CheckpointTest, TimingRestoreIsBitIdentical)
{
    const std::string path = tmpPath("timing.ckpt");
    const uint64_t saveAt = 30000;
    const uint64_t total = 70000;
    BuildOptions b;
    b.policy = CodeGenPolicy::withSupport();

    // Uninterrupted reference run.
    Machine mRef(workload("compress"), b);
    Pipeline pRef(timingConfig(), mRef.emulator());
    PipeStats ref = pRef.run(total);

    // Run to an arbitrary mid-flight boundary (no drain), save.
    {
        Machine m1(workload("compress"), b);
        Pipeline p1(timingConfig(), m1.emulator());
        p1.run(saveAt);
        saveTimingCheckpoint(path, m1, p1);
    }

    // Fresh machine + pipeline, restore, finish.
    Machine m2(workload("compress"), b);
    Pipeline p2(timingConfig(), m2.emulator());
    restoreTimingCheckpoint(path, m2, p2);
    EXPECT_EQ(p2.stats().insts, saveAt);
    PipeStats resumed = p2.run(total);

    expectStatsEqual(resumed, ref);
    EXPECT_EQ(p2.currentCycle(), pRef.currentCycle());
    EXPECT_EQ(m2.emulator().instCount(), mRef.emulator().instCount());
    EXPECT_EQ(m2.emulator().pc(), mRef.emulator().pc());
    EXPECT_EQ(m2.memUsageBytes(), mRef.memUsageBytes());

    // Hierarchy counters (all levels + TLB) must match too.
    HierarchyStats ha = p2.hierarchyStats();
    HierarchyStats hb = pRef.hierarchyStats();
    ASSERT_EQ(ha.levels.size(), hb.levels.size());
    for (size_t i = 0; i < ha.levels.size(); ++i) {
        EXPECT_EQ(ha.levels[i].accesses, hb.levels[i].accesses);
        EXPECT_EQ(ha.levels[i].misses, hb.levels[i].misses);
        EXPECT_EQ(ha.levels[i].writebacks, hb.levels[i].writebacks);
    }
    EXPECT_EQ(ha.tlbAccesses, hb.tlbAccesses);
    EXPECT_EQ(ha.tlbMisses, hb.tlbMisses);
}

TEST(CheckpointTest, TimingRestoreRunToCompletion)
{
    const std::string path = tmpPath("timing_full.ckpt");
    BuildOptions b;

    Machine mRef(workload("ora"), b);
    Pipeline pRef(facPipelineConfig(32), mRef.emulator());
    PipeStats ref = pRef.run(0);  // to completion

    {
        Machine m1(workload("ora"), b);
        Pipeline p1(facPipelineConfig(32), m1.emulator());
        p1.run(ref.insts / 3);
        saveTimingCheckpoint(path, m1, p1);
    }

    Machine m2(workload("ora"), b);
    Pipeline p2(facPipelineConfig(32), m2.emulator());
    restoreTimingCheckpoint(path, m2, p2);
    PipeStats resumed = p2.run(0);

    expectStatsEqual(resumed, ref);
    EXPECT_TRUE(p2.done());
}

TEST(CheckpointTest, FunctionalRoundTrip)
{
    const std::string path = tmpPath("func.ckpt");
    BuildOptions b;

    Machine mRef(workload("eqntott"), b);
    ExecRecord rec;
    while (mRef.emulator().instCount() < 40000 &&
           mRef.emulator().step(&rec)) {
    }
    bool refHalted = mRef.emulator().halted();
    while (mRef.emulator().step(&rec)) {
    }

    {
        Machine m1(workload("eqntott"), b);
        while (m1.emulator().instCount() < 40000 && m1.emulator().step(&rec)) {
        }
        ASSERT_EQ(m1.emulator().halted(), refHalted);
        saveFunctionalCheckpoint(path, m1);
        EXPECT_EQ(checkpointKindOf(path), CheckpointKind::Functional);
    }

    Machine m2(workload("eqntott"), b);
    restoreFunctionalCheckpoint(path, m2);
    EXPECT_EQ(m2.emulator().instCount(), 40000u);
    while (m2.emulator().step(&rec)) {
    }

    EXPECT_EQ(m2.emulator().instCount(), mRef.emulator().instCount());
    EXPECT_EQ(m2.emulator().pc(), mRef.emulator().pc());
    for (unsigned r = 0; r < numIntRegs; ++r)
        EXPECT_EQ(m2.emulator().intReg(r), mRef.emulator().intReg(r));
    EXPECT_EQ(m2.memUsageBytes(), mRef.memUsageBytes());
}

TEST(CheckpointTest, FunctionalRestoreResumesThreadedBitIdentical)
{
    // Same round trip, but the restored machine resumes on the
    // translated-block engine via bulk run(): the restore must have
    // dropped any stale block cache, and the resumed stream must land
    // on the exact architectural state of an uninterrupted bulk run.
    const std::string path = tmpPath("func_threaded.ckpt");
    BuildOptions b;

    Machine mRef(workload("eqntott"), b);
    mRef.emulator().setEngine(EmuEngine::Threaded);
    ASSERT_EQ(mRef.emulator().run(40000), 40000u);
    mRef.emulator().run();  // to completion
    ASSERT_TRUE(mRef.emulator().halted());

    {
        Machine m1(workload("eqntott"), b);
        m1.emulator().setEngine(EmuEngine::Threaded);
        ASSERT_EQ(m1.emulator().run(40000), 40000u);
        saveFunctionalCheckpoint(path, m1);
    }

    Machine m2(workload("eqntott"), b);
    m2.emulator().setEngine(EmuEngine::Threaded);
    restoreFunctionalCheckpoint(path, m2);
    EXPECT_EQ(m2.emulator().instCount(), 40000u);
    m2.emulator().run();

    EXPECT_EQ(m2.emulator().instCount(), mRef.emulator().instCount());
    EXPECT_EQ(m2.emulator().pc(), mRef.emulator().pc());
    EXPECT_TRUE(m2.emulator().halted());
    for (unsigned r = 0; r < numIntRegs; ++r)
        EXPECT_EQ(m2.emulator().intReg(r), mRef.emulator().intReg(r));
    EXPECT_EQ(m2.memUsageBytes(), mRef.memUsageBytes());
    ser::Writer wa, wb;
    m2.memory().saveState(wa);
    mRef.memory().saveState(wb);
    EXPECT_EQ(wa.data(), wb.data());
}

TEST(CheckpointDeathTest, RejectsDamagedAndMismatchedFiles)
{
    const std::string good = tmpPath("good.ckpt");
    BuildOptions b;
    Machine m(workload("compress"), b);
    Pipeline p(facPipelineConfig(32), m.emulator());
    p.run(5000);
    saveTimingCheckpoint(good, m, p);
    EXPECT_EQ(checkpointKindOf(good), CheckpointKind::Timing);
    const std::string data = slurp(good);
    ASSERT_GT(data.size(), 64u);

    auto restore = [&](const std::string &path) {
        Machine m2(workload("compress"), b);
        Pipeline p2(facPipelineConfig(32), m2.emulator());
        restoreTimingCheckpoint(path, m2, p2);
    };

    // Missing file.
    EXPECT_DEATH(restore(tmpPath("nonexistent.ckpt")), "cannot open");

    // Not a checkpoint at all.
    const std::string junk = tmpPath("junk.ckpt");
    spew(junk, "this is not a checkpoint file at all, sorry");
    EXPECT_DEATH(restore(junk), "not a facsim checkpoint");

    // Too short to even hold the header.
    const std::string tiny = tmpPath("tiny.ckpt");
    spew(tiny, data.substr(0, 10));
    EXPECT_DEATH(restore(tiny), "not a facsim checkpoint");

    // Truncated: checksum cannot match.
    const std::string trunc = tmpPath("trunc.ckpt");
    spew(trunc, data.substr(0, data.size() / 2));
    EXPECT_DEATH(restore(trunc), "corrupted: checksum");

    // One flipped byte mid-stream.
    const std::string flip = tmpPath("flip.ckpt");
    std::string flipped = data;
    flipped[data.size() / 2] ^= 0x40;
    spew(flip, flipped);
    EXPECT_DEATH(restore(flip), "corrupted: checksum");

    // Unknown version (re-sealed so the checksum is valid).
    const std::string vers = tmpPath("version.ckpt");
    spew(vers, patchAndReseal(data, 8, 99));
    EXPECT_DEATH(restore(vers), "format version 99");

    // Kind mismatch: functional restore of a timing file and vice
    // versa.
    const std::string func = tmpPath("func_kind.ckpt");
    saveFunctionalCheckpoint(func, m);
    EXPECT_DEATH(restore(func), "functional checkpoint");
    EXPECT_DEATH(
        {
            Machine m2(workload("compress"), b);
            restoreFunctionalCheckpoint(good, m2);
        },
        "timing checkpoint");

    // Wrong workload.
    EXPECT_DEATH(
        {
            Machine m2(workload("eqntott"), b);
            Pipeline p2(facPipelineConfig(32), m2.emulator());
            restoreTimingCheckpoint(good, m2, p2);
        },
        "workload 'compress'");

    // Wrong build seed.
    EXPECT_DEATH(
        {
            BuildOptions b2;
            b2.seed = 123;
            Machine m2(workload("compress"), b2);
            Pipeline p2(facPipelineConfig(32), m2.emulator());
            restoreTimingCheckpoint(good, m2, p2);
        },
        "seed");

    // Wrong pipeline configuration.
    EXPECT_DEATH(
        {
            Machine m2(workload("compress"), b);
            Pipeline p2(baselineConfig(16), m2.emulator());
            restoreTimingCheckpoint(good, m2, p2);
        },
        "fingerprint");

    // Trailing junk between the last section and the checksum.
    const std::string tail = tmpPath("tail.ckpt");
    std::string padded = data.substr(0, data.size() - 8) + "XXXX";
    uint64_t sum = ser::fnv1a(padded.data(), padded.size());
    padded.append(reinterpret_cast<const char *>(&sum), 8);
    spew(tail, padded);
    EXPECT_DEATH(restore(tail), "trailing byte");
}

TEST(CheckpointTest, FingerprintSeparatesConfigurations)
{
    uint64_t base = configFingerprint(baselineConfig(32));
    EXPECT_EQ(base, configFingerprint(baselineConfig(32)));
    EXPECT_NE(base, configFingerprint(baselineConfig(16)));
    EXPECT_NE(base, configFingerprint(facPipelineConfig(32)));

    PipelineConfig deep = baselineConfig(32);
    deep.hierarchy = hierarchyPreset("modern");
    EXPECT_NE(base, configFingerprint(deep));
}
