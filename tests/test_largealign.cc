/**
 * @file
 * Tests for the Section 5.4 future-work extension: large-alignment
 * placement of statics and heap objects.
 */

#include <gtest/gtest.h>

#include "asm/builder.hh"
#include "core/fast_addr_calc.hh"
#include "link/linker.hh"
#include "runtime/heap.hh"
#include "workloads/codegen_policy.hh"

namespace facsim
{
namespace
{

TEST(LargeAlign, LinkerAlignsBigStaticsToSize)
{
    Program p;
    AsmBuilder as(p);
    SymId small = as.global("sm", 24, 4, false);
    SymId big = as.global("bg", 3000, 4, false);
    SymId huge = as.global("hg", 100000, 4, false);
    as.halt();
    Memory mem;
    LinkPolicy pol{.alignStatics = true, .alignArraysToSize = true,
                   .largeAlignCap = 16 * 1024};
    Linker(pol).link(p, mem);
    // Small objects keep the capped (32-byte) policy.
    EXPECT_EQ(p.syms()[small].addr % 32, 0u);
    // Big ones get their full power-of-two size...
    EXPECT_EQ(p.syms()[big].addr % 4096, 0u);
    // ...capped at largeAlignCap.
    EXPECT_EQ(p.syms()[huge].addr % (16 * 1024), 0u);
}

TEST(LargeAlign, HeapAlignsToSize)
{
    HeapPolicy pol{.minAlign = 32, .alignToSize = true,
                   .largeAlignCap = 16 * 1024};
    Heap h(0x20000000 + 8, pol);
    h.alloc(100);  // misalign the cursor a bit
    uint32_t arr = h.alloc(3000);
    EXPECT_EQ(arr % 4096, 0u);
    uint32_t huge = h.alloc(100000);
    EXPECT_EQ(huge % (16 * 1024), 0u);
    // Small allocations stay on the normal policy.
    uint32_t cell = h.alloc(16);
    EXPECT_EQ(cell % 32, 0u);
}

TEST(LargeAlign, PolicyPresetEnablesBoth)
{
    CodeGenPolicy p = CodeGenPolicy::withLargeAlignment();
    EXPECT_TRUE(p.softwareSupport);
    EXPECT_TRUE(p.link.alignArraysToSize);
    EXPECT_TRUE(p.heap.alignToSize);
    // Plain support leaves them off.
    EXPECT_FALSE(CodeGenPolicy::withSupport().link.alignArraysToSize);
    EXPECT_FALSE(CodeGenPolicy::withSupport().heap.alignToSize);
}

TEST(LargeAlign, SizeAlignedBasePredictsItsWholeExtent)
{
    // The point of the exercise: any index into a size-aligned array
    // predicts correctly (until the index reaches the set-field span).
    FastAddrCalc fac(FacConfig{.blockBits = 5, .setBits = 14});
    uint32_t base = 0x20000000;  // 16 KB-aligned
    for (uint32_t idx = 0; idx < 16 * 1024; idx += 52) {
        FacResult r = fac.predict(base, static_cast<int32_t>(idx), true);
        EXPECT_TRUE(r.success) << idx;
    }
    // An unaligned base fails for many of the same indices.
    unsigned failures = 0;
    for (uint32_t idx = 0; idx < 16 * 1024; idx += 52)
        failures += fac.predict(base + 808, static_cast<int32_t>(idx),
                                true).success ? 0 : 1;
    EXPECT_GT(failures, 100u);
}

} // anonymous namespace
} // namespace facsim
