/**
 * @file
 * Profiler tests: reference classification (Table 1), offset histograms
 * (Figure 3) and simultaneous predictor-configuration evaluation
 * (Tables 3/4).
 */

#include <gtest/gtest.h>

#include "cpu/profiler.hh"

namespace facsim
{
namespace
{

ExecRecord
memRec(Op op, uint8_t base_reg, uint32_t base_val, int32_t offset,
       bool from_reg = false)
{
    ExecRecord r;
    r.inst.op = op;
    r.inst.rs = base_reg;
    r.inst.amode = from_reg ? AMode::RegReg : AMode::RegConst;
    r.baseVal = base_val;
    r.offsetVal = offset;
    r.offsetFromReg = from_reg;
    r.effAddr = base_val + static_cast<uint32_t>(offset);
    return r;
}

TEST(Profiler, ClassifiesByBaseRegister)
{
    EXPECT_EQ(classifyRef(Inst{.op = Op::LW, .rs = reg::gp}),
              RefClass::Global);
    EXPECT_EQ(classifyRef(Inst{.op = Op::LW, .rs = reg::sp}),
              RefClass::Stack);
    EXPECT_EQ(classifyRef(Inst{.op = Op::LW, .rs = reg::fp}),
              RefClass::Stack);
    EXPECT_EQ(classifyRef(Inst{.op = Op::LW, .rs = reg::t0}),
              RefClass::General);
}

TEST(Profiler, CountsLoadsAndStores)
{
    Profiler p;
    p.observe(memRec(Op::LW, reg::gp, 0x10000000, 4));
    p.observe(memRec(Op::SW, reg::sp, 0x7fff0000, 8));
    p.observe(memRec(Op::LW, reg::t0, 0x20000000, 0));
    ExecRecord alu;
    alu.inst.op = Op::ADD;
    p.observe(alu);
    EXPECT_EQ(p.insts(), 4u);
    EXPECT_EQ(p.loads(), 2u);
    EXPECT_EQ(p.stores(), 1u);
    EXPECT_EQ(p.loadsOf(RefClass::Global), 1u);
    EXPECT_EQ(p.loadsOf(RefClass::General), 1u);
    EXPECT_DOUBLE_EQ(p.loadFrac(RefClass::Global), 0.5);
}

TEST(OffsetHistogram, Buckets)
{
    OffsetHistogram h;
    h.add(0);       // bucket 0
    h.add(1);       // 1 bit
    h.add(2);       // 2 bits
    h.add(3);       // 2 bits
    h.add(255);     // 8 bits
    h.add(65535);   // 16 bits
    h.add(65536);   // More
    h.add(-4);      // Neg
    EXPECT_EQ(h.buckets[0], 1u);
    EXPECT_EQ(h.buckets[1], 1u);
    EXPECT_EQ(h.buckets[2], 2u);
    EXPECT_EQ(h.buckets[8], 1u);
    EXPECT_EQ(h.buckets[16], 1u);
    EXPECT_EQ(h.buckets[OffsetHistogram::moreBucket], 1u);
    EXPECT_EQ(h.buckets[OffsetHistogram::negBucket], 1u);
    EXPECT_EQ(h.total, 8u);
    EXPECT_DOUBLE_EQ(h.cumulative(0), 1.0 / 8.0);
    EXPECT_DOUBLE_EQ(h.cumulative(2), 4.0 / 8.0);
    EXPECT_DOUBLE_EQ(h.cumulative(OffsetHistogram::negBucket), 1.0);
}

TEST(Profiler, OffsetHistogramOnlyTracksLoads)
{
    Profiler p;
    p.observe(memRec(Op::LW, reg::t0, 0x20000000, 12));
    p.observe(memRec(Op::SW, reg::t0, 0x20000000, 900));
    EXPECT_EQ(p.offsets(RefClass::General).total, 1u);
}

TEST(Profiler, FacFailureRatesPerConfig)
{
    Profiler p;
    // Config A: 32-byte blocks; config B: 16-byte blocks.
    size_t a = p.addFacConfig(FacConfig{.blockBits = 5, .setBits = 14});
    size_t b = p.addFacConfig(FacConfig{.blockBits = 4, .setBits = 14});
    // In-block position 0xc plus offset 0xc stays inside a 32-byte
    // block (sum 0x18) but carries out of a 16-byte one — the extra
    // bit of full addition Section 5.3 credits larger blocks with.
    p.observe(memRec(Op::LW, reg::t0, 0x20000000 + 0xc, 0xc));
    EXPECT_DOUBLE_EQ(p.fac(a).loadFailRate(), 0.0);
    EXPECT_DOUBLE_EQ(p.fac(b).loadFailRate(), 1.0);
    EXPECT_EQ(p.fac(a).loadAttempts, 1u);
}

TEST(Profiler, NoRRExcludesRegRegAccesses)
{
    Profiler p;
    size_t i = p.addFacConfig(FacConfig{.blockBits = 5, .setBits = 14});
    // A failing R+R access (negative index register).
    p.observe(memRec(Op::LW, reg::t0, 0x20000040, -16, true));
    // A succeeding constant access.
    p.observe(memRec(Op::LW, reg::t0, 0x20000040, 4));
    EXPECT_DOUBLE_EQ(p.fac(i).loadFailRate(), 0.5);
    EXPECT_DOUBLE_EQ(p.fac(i).loadFailRateNoRR(), 0.0);
    EXPECT_EQ(p.fac(i).loadsNoRR, 1u);
}

TEST(Profiler, StoreFailuresTrackedSeparately)
{
    Profiler p;
    size_t i = p.addFacConfig(FacConfig{.blockBits = 5, .setBits = 14});
    p.observe(memRec(Op::SW, reg::t0, 0x2000001c, 0x10));  // overflow
    p.observe(memRec(Op::LW, reg::t0, 0x20000000, 0));
    EXPECT_DOUBLE_EQ(p.fac(i).storeFailRate(), 1.0);
    EXPECT_DOUBLE_EQ(p.fac(i).loadFailRate(), 0.0);
}

TEST(Profiler, TlbMissRatio)
{
    Profiler p;
    p.enableTlb(64, 4096);
    p.observe(memRec(Op::LW, reg::t0, 0x20000000, 0));
    p.observe(memRec(Op::LW, reg::t0, 0x20000000, 4));
    EXPECT_DOUBLE_EQ(p.tlbMissRatio(), 0.5);
}

} // anonymous namespace
} // namespace facsim
