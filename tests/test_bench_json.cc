/**
 * @file
 * Round-trip tests for the bench harnesses' JSON emission: jsonEscape
 * output is parsed back through a small but strict JSON parser (written
 * here, shared with nothing) and must reproduce the original bytes, and
 * a full emitJson() line must parse as one valid JSON object with the
 * original cell contents.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"

namespace facsim
{
namespace
{

/** Minimal strict JSON value/parser (objects, arrays, strings, numbers). */
struct JsonValue
{
    enum class Kind { String, Number, Object, Array } kind = Kind::String;
    std::string str;
    double num = 0;
    std::map<std::string, std::shared_ptr<JsonValue>> obj;
    std::vector<std::shared_ptr<JsonValue>> arr;
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s_(text) {}

    std::shared_ptr<JsonValue>
    parse()
    {
        std::shared_ptr<JsonValue> v = value();
        skipWs();
        if (!ok_ || pos_ != s_.size())
            return nullptr;
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                s_[pos_] == '\r'))
            ++pos_;
    }

    bool
    eat(char c)
    {
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        ok_ = false;
        return false;
    }

    std::shared_ptr<JsonValue>
    value()
    {
        skipWs();
        if (pos_ >= s_.size()) {
            ok_ = false;
            return nullptr;
        }
        const char c = s_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        return number();
    }

    std::shared_ptr<JsonValue>
    object()
    {
        auto v = std::make_shared<JsonValue>();
        v->kind = JsonValue::Kind::Object;
        eat('{');
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return v;
        }
        while (ok_) {
            std::shared_ptr<JsonValue> key = string();
            if (!ok_ || !eat(':'))
                break;
            v->obj[key->str] = value();
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == ',') {
                ++pos_;
                skipWs();
                continue;
            }
            eat('}');
            break;
        }
        return v;
    }

    std::shared_ptr<JsonValue>
    array()
    {
        auto v = std::make_shared<JsonValue>();
        v->kind = JsonValue::Kind::Array;
        eat('[');
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return v;
        }
        while (ok_) {
            v->arr.push_back(value());
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            eat(']');
            break;
        }
        return v;
    }

    std::shared_ptr<JsonValue>
    string()
    {
        auto v = std::make_shared<JsonValue>();
        v->kind = JsonValue::Kind::String;
        if (!eat('"'))
            return v;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (static_cast<unsigned char>(c) < 0x20) {
                // Raw control characters are illegal inside JSON strings.
                ok_ = false;
                return v;
            }
            if (c != '\\') {
                v->str += c;
                continue;
            }
            if (pos_ >= s_.size()) {
                ok_ = false;
                return v;
            }
            const char e = s_[pos_++];
            switch (e) {
              case '"': v->str += '"'; break;
              case '\\': v->str += '\\'; break;
              case '/': v->str += '/'; break;
              case 'n': v->str += '\n'; break;
              case 't': v->str += '\t'; break;
              case 'r': v->str += '\r'; break;
              case 'b': v->str += '\b'; break;
              case 'f': v->str += '\f'; break;
              case 'u': {
                if (pos_ + 4 > s_.size()) {
                    ok_ = false;
                    return v;
                }
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = s_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else {
                        ok_ = false;
                        return v;
                    }
                }
                // The emitter only uses \u for single bytes; reject the
                // rest so a change in behaviour shows up here.
                if (cp > 0xff) {
                    ok_ = false;
                    return v;
                }
                v->str += static_cast<char>(cp);
                break;
              }
              default:
                ok_ = false;
                return v;
            }
        }
        eat('"');
        return v;
    }

    std::shared_ptr<JsonValue>
    number()
    {
        auto v = std::make_shared<JsonValue>();
        v->kind = JsonValue::Kind::Number;
        size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start) {
            ok_ = false;
            return v;
        }
        v->num = std::strtod(s_.substr(start, pos_ - start).c_str(),
                             nullptr);
        return v;
    }

    const std::string &s_;
    size_t pos_ = 0;
    bool ok_ = true;
};

std::string
parseStringLiteral(const std::string &lit, bool *ok)
{
    JsonParser p(lit);
    std::shared_ptr<JsonValue> v = p.parse();
    *ok = v != nullptr && v->kind == JsonValue::Kind::String;
    return *ok ? v->str : std::string();
}

TEST(BenchJson, EscapeRoundTripsEveryByte)
{
    // Every byte value, including NUL and the high half.
    std::string s;
    for (int b = 0; b < 256; ++b)
        s += static_cast<char>(b);
    const std::string lit = "\"" + bench::jsonEscape(s) + "\"";
    bool ok = false;
    const std::string back = parseStringLiteral(lit, &ok);
    ASSERT_TRUE(ok) << lit;
    EXPECT_EQ(back, s);
}

TEST(BenchJson, ControlCharactersNeverAppearRaw)
{
    std::string s;
    for (int b = 0; b < 0x20; ++b)
        s += static_cast<char>(b);
    const std::string esc = bench::jsonEscape(s);
    for (char c : esc)
        EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
    // The common controls use the conventional short escapes.
    EXPECT_EQ(bench::jsonEscape("\n"), "\\n");
    EXPECT_EQ(bench::jsonEscape("\t"), "\\t");
    EXPECT_EQ(bench::jsonEscape("\r"), "\\r");
    EXPECT_EQ(bench::jsonEscape("\b"), "\\b");
    EXPECT_EQ(bench::jsonEscape("\f"), "\\f");
    EXPECT_EQ(bench::jsonEscape("\""), "\\\"");
    EXPECT_EQ(bench::jsonEscape("\\"), "\\\\");
    EXPECT_EQ(bench::jsonEscape("\x01"), "\\u0001");
}

TEST(BenchJson, EmitJsonLineParsesBackToTheTable)
{
    const std::string caption = "nasty \"caption\"\nwith\tcontrols\r\b\f";
    Table t;
    t.header({"name", "va\"lue"});
    t.row({"first\nrow", "1.5"});
    t.row({"second\\row", "\x02\x1f"});

    bench::Options o;
    o.jsonPath = "test_bench_json_tmp.jsonl";
    bench::emitJson(o, caption, t);

    std::ifstream in(o.jsonPath);
    ASSERT_TRUE(in.good());
    std::string line;
    ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));
    std::remove(o.jsonPath.c_str());

    JsonParser p(line);
    std::shared_ptr<JsonValue> v = p.parse();
    ASSERT_NE(v, nullptr) << line;
    ASSERT_EQ(v->kind, JsonValue::Kind::Object);
    EXPECT_EQ(v->obj.at("caption")->str, caption);
    const JsonValue &hdr = *v->obj.at("header");
    ASSERT_EQ(hdr.arr.size(), 2u);
    EXPECT_EQ(hdr.arr[1]->str, "va\"lue");
    const JsonValue &rows = *v->obj.at("rows");
    ASSERT_EQ(rows.arr.size(), 2u);
    EXPECT_EQ(rows.arr[0]->arr[0]->str, "first\nrow");
    EXPECT_EQ(rows.arr[1]->arr[1]->str, "\x02\x1f");
    EXPECT_TRUE(v->obj.count("meta"));
}

} // anonymous namespace
} // namespace facsim
