/**
 * @file
 * Round-trip tests for the bench harnesses' JSON emission: jsonEscape
 * output is parsed back through the strict JSON parser shared in
 * json_lite.hh and must reproduce the original bytes, and a full
 * emitJson() line must parse as one valid JSON object with the original
 * cell contents, the schema version, and the stats-registry dump.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "bench/bench_util.hh"
#include "tests/json_lite.hh"

namespace facsim
{
namespace
{

using jsonlite::JsonParser;
using jsonlite::JsonValue;
using jsonlite::parseStringLiteral;

TEST(BenchJson, EscapeRoundTripsEveryByte)
{
    // Every byte value, including NUL and the high half.
    std::string s;
    for (int b = 0; b < 256; ++b)
        s += static_cast<char>(b);
    const std::string lit = "\"" + bench::jsonEscape(s) + "\"";
    bool ok = false;
    const std::string back = parseStringLiteral(lit, &ok);
    ASSERT_TRUE(ok) << lit;
    EXPECT_EQ(back, s);
}

TEST(BenchJson, ControlCharactersNeverAppearRaw)
{
    std::string s;
    for (int b = 0; b < 0x20; ++b)
        s += static_cast<char>(b);
    const std::string esc = bench::jsonEscape(s);
    for (char c : esc)
        EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
    // The common controls use the conventional short escapes.
    EXPECT_EQ(bench::jsonEscape("\n"), "\\n");
    EXPECT_EQ(bench::jsonEscape("\t"), "\\t");
    EXPECT_EQ(bench::jsonEscape("\r"), "\\r");
    EXPECT_EQ(bench::jsonEscape("\b"), "\\b");
    EXPECT_EQ(bench::jsonEscape("\f"), "\\f");
    EXPECT_EQ(bench::jsonEscape("\""), "\\\"");
    EXPECT_EQ(bench::jsonEscape("\\"), "\\\\");
    EXPECT_EQ(bench::jsonEscape("\x01"), "\\u0001");
}

TEST(BenchJson, EmitJsonLineParsesBackToTheTable)
{
    const std::string caption = "nasty \"caption\"\nwith\tcontrols\r\b\f";
    Table t;
    t.header({"name", "va\"lue"});
    t.row({"first\nrow", "1.5"});
    t.row({"second\\row", "\x02\x1f"});

    bench::Options o;
    o.jsonPath = "test_bench_json_tmp.jsonl";
    bench::emitJson(o, caption, t);

    std::ifstream in(o.jsonPath);
    ASSERT_TRUE(in.good());
    std::string line;
    ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));
    std::remove(o.jsonPath.c_str());

    JsonParser p(line);
    std::shared_ptr<JsonValue> v = p.parse();
    ASSERT_NE(v, nullptr) << line;
    ASSERT_EQ(v->kind, JsonValue::Kind::Object);
    EXPECT_EQ(v->obj.at("caption")->str, caption);
    const JsonValue &hdr = *v->obj.at("header");
    ASSERT_EQ(hdr.arr.size(), 2u);
    EXPECT_EQ(hdr.arr[1]->str, "va\"lue");
    const JsonValue &rows = *v->obj.at("rows");
    ASSERT_EQ(rows.arr.size(), 2u);
    EXPECT_EQ(rows.arr[0]->arr[0]->str, "first\nrow");
    EXPECT_EQ(rows.arr[1]->arr[1]->str, "\x02\x1f");
    EXPECT_TRUE(v->obj.count("meta"));

    // v2 schema: a version stamp and the stats-registry dump.
    ASSERT_TRUE(v->obj.count("schema_version"));
    EXPECT_EQ(v->obj.at("schema_version")->num,
              bench::benchJsonSchemaVersion);
    ASSERT_TRUE(v->obj.count("stats"));
    EXPECT_EQ(v->obj.at("stats")->kind, JsonValue::Kind::Object);
}

TEST(BenchJson, StatsKeyCarriesAccumulatedTimingRuns)
{
    bench::Options o;
    TimingResult r;
    r.stats.cycles = 100;
    r.stats.insts = 250;
    r.stats.loadsSpeculated = 7;
    LevelStats l1;
    l1.name = "L1D";
    l1.accesses = 40;
    l1.misses = 4;
    r.hier.levels.push_back(l1);
    o.statsAccum.add(r);
    o.statsAccum.add(r);

    Table t;
    t.header({"h"});
    t.row({"v"});
    o.jsonPath = "test_bench_json_stats_tmp.jsonl";
    bench::emitJson(o, "stats test", t);

    std::ifstream in(o.jsonPath);
    std::string line;
    ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));
    std::remove(o.jsonPath.c_str());

    JsonParser p(line);
    std::shared_ptr<JsonValue> v = p.parse();
    ASSERT_NE(v, nullptr) << line;
    const JsonValue &st = *v->obj.at("stats");
    ASSERT_EQ(st.kind, JsonValue::Kind::Object);
    EXPECT_EQ(st.obj.at("pipeline.cycles")->num, 200);
    EXPECT_EQ(st.obj.at("pipeline.insts")->num, 500);
    EXPECT_EQ(st.obj.at("pipeline.fac.loads_speculated")->num, 14);
    EXPECT_EQ(st.obj.at("hier.l1d.accesses")->num, 80);
    EXPECT_EQ(st.obj.at("hier.l1d.misses")->num, 8);
    EXPECT_EQ(st.obj.at("sim.runs")->num, 2);
}

} // anonymous namespace
} // namespace facsim
