/**
 * @file
 * Unit tests for the multi-level memory hierarchy: the MemPort/MemLevel
 * timing contract, MSHR bookkeeping, the writeback buffer, the DRAM
 * occupancy model and the hierarchy presets.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/hierarchy/dram.hh"
#include "mem/hierarchy/hierarchy.hh"
#include "mem/hierarchy/mshr.hh"
#include "sim/config.hh"

namespace facsim
{
namespace
{

/** MemLevel stub recording the traffic it receives. */
class RecordingMem final : public MemLevel
{
  public:
    explicit RecordingMem(unsigned latency) : lat(latency) {}

    struct Req
    {
        uint32_t addr;
        bool isWrite;
        uint64_t t;
    };

    LevelResult
    access(uint32_t addr, bool is_write, uint64_t t) override
    {
        reqs.push_back({addr, is_write, t});
        return {t + lat, true};
    }

    void
    warm(uint32_t addr, bool is_write) override
    {
        warms.push_back({addr, is_write, 0});
    }

    uint64_t busyUntil() const override { return 0; }

    void reset() override { reqs.clear(); warms.clear(); }
    const char *name() const override { return "rec"; }

    std::vector<Req> reqs;
    std::vector<Req> warms;

  private:
    unsigned lat;
};

// ---------------------------------------------------------------------------
// MshrFile

TEST(Mshr, DisabledWhenZeroEntries)
{
    MshrFile m(MshrConfig{0, true});
    EXPECT_FALSE(m.enabled());
    EXPECT_EQ(m.whenFree(7u), 7u);
    EXPECT_EQ(m.inflightFill(0x10, 7), 0u);
}

TEST(Mshr, TracksInflightFill)
{
    MshrFile m(MshrConfig{2, true});
    m.allocate(0x10, 5, 25);
    EXPECT_EQ(m.inflightFill(0x10, 10), 25u);   // still in flight
    EXPECT_EQ(m.inflightFill(0x11, 10), 0u);    // other block
    EXPECT_EQ(m.inflightFill(0x10, 25), 0u);    // fill landed
    EXPECT_EQ(m.occupancyAt(10), 1u);
    EXPECT_EQ(m.occupancyAt(30), 0u);
}

TEST(Mshr, WhenFreeWaitsForEarliestFill)
{
    MshrFile m(MshrConfig{1, true});
    EXPECT_EQ(m.whenFree(3u), 3u);
    m.allocate(0x10, 3, 20);
    EXPECT_EQ(m.whenFree(10u), 20u);  // entry busy until the fill
    EXPECT_EQ(m.whenFree(22u), 22u);  // already free again
}

TEST(Mshr, StatsAccumulate)
{
    MshrFile m(MshrConfig{4, true});
    m.allocate(0x1, 0, 10);
    m.allocate(0x2, 2, 12);
    m.noteMerge();
    m.noteFullStall(5);
    EXPECT_EQ(m.stats().allocations, 2u);
    EXPECT_EQ(m.stats().merges, 1u);
    EXPECT_EQ(m.stats().fullStallCycles, 5u);
    EXPECT_EQ(m.stats().maxOccupancy, 2u);
    m.reset();
    EXPECT_EQ(m.stats().allocations, 0u);
    EXPECT_EQ(m.occupancyAt(5), 0u);
}

TEST(MshrDeathTest, AllocateWithoutFreeEntry)
{
    MshrFile m(MshrConfig{1, true});
    m.allocate(0x1, 0, 100);
    EXPECT_DEATH(m.allocate(0x2, 1, 100), "no free entry");
}

// ---------------------------------------------------------------------------
// WritebackBuffer

TEST(WritebackBuffer, SlotsDrainOverTime)
{
    WritebackBuffer wb(1);
    EXPECT_TRUE(wb.enabled());
    EXPECT_EQ(wb.whenFree(4u), 4u);
    wb.occupy(4, 30);
    EXPECT_EQ(wb.whenFree(10u), 30u);
    EXPECT_EQ(wb.whenFree(31u), 31u);
    wb.noteFullStall(20);
    EXPECT_EQ(wb.fullStallCycles(), 20u);
    wb.reset();
    EXPECT_EQ(wb.whenFree(0u), 0u);
    EXPECT_EQ(wb.fullStallCycles(), 0u);
}

TEST(WritebackBuffer, DisabledWhenZeroEntries)
{
    WritebackBuffer wb(0);
    EXPECT_FALSE(wb.enabled());
}

TEST(WritebackBufferDeathTest, OccupyWithoutFreeSlot)
{
    WritebackBuffer wb(1);
    wb.occupy(0, 50);
    EXPECT_DEATH(wb.occupy(10, 60), "no free slot");
}

// ---------------------------------------------------------------------------
// DramModel

TEST(Dram, LatencyAndQueueing)
{
    DramModel d(DramConfig{20, 8});
    // Idle channel: starts immediately.
    EXPECT_EQ(d.access(0x0, false, 100).doneCycle, 120u);
    // Arrives while the channel is busy: queues until cycle 108.
    EXPECT_EQ(d.access(0x40, false, 102).doneCycle, 128u);
    EXPECT_EQ(d.stats().reads, 2u);
    EXPECT_EQ(d.stats().queuedCycles, 6u);
    EXPECT_EQ(d.stats().busyCycles, 16u);
    d.reset();
    EXPECT_EQ(d.stats().reads, 0u);
    EXPECT_EQ(d.access(0x0, true, 0).doneCycle, 20u);
    EXPECT_EQ(d.stats().writes, 1u);
}

TEST(Dram, UnconstrainedChannelNeverQueues)
{
    DramModel d(DramConfig{20, 0});
    EXPECT_EQ(d.access(0x0, false, 10).doneCycle, 30u);
    EXPECT_EQ(d.access(0x40, false, 10).doneCycle, 30u);
    EXPECT_EQ(d.stats().queuedCycles, 0u);
    EXPECT_EQ(d.stats().busyCycles, 0u);
}

// ---------------------------------------------------------------------------
// CacheLevel

TEST(CacheLevel, MissPaysLevelBelow)
{
    RecordingMem mem(6);
    CacheLevel::Params p{CacheConfig{1024, 32, 1, 6}, 0};
    CacheLevel l1("L1D", p, mem);

    LevelResult miss = l1.access(0x100, false, 10);
    EXPECT_FALSE(miss.hit);
    EXPECT_EQ(miss.doneCycle, 16u);
    LevelResult hit = l1.access(0x104, false, 20);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.doneCycle, 20u);
    ASSERT_EQ(mem.reqs.size(), 1u);
    EXPECT_FALSE(mem.reqs[0].isWrite);
}

TEST(CacheLevel, HitLatencyAppliesToHitsAndMisses)
{
    RecordingMem mem(10);
    CacheLevel::Params p{CacheConfig{1024, 32, 1, 6}, 4};
    CacheLevel l2("L2", p, mem);

    EXPECT_EQ(l2.access(0x100, false, 0).doneCycle, 14u);  // 0+4 lookup, +10
    EXPECT_EQ(l2.access(0x100, false, 50).doneCycle, 54u);
}

TEST(CacheLevel, SecondaryMissMergesIntoInflightFill)
{
    RecordingMem mem(20);
    CacheLevel::Params p{CacheConfig{1024, 32, 1, 6}, 0, MshrConfig{4, true}};
    CacheLevel l1("L1D", p, mem);

    LevelResult prim = l1.access(0x100, false, 0);
    EXPECT_EQ(prim.doneCycle, 20u);
    // Tag-hits the line the primary fill allocated, but the data isn't
    // there yet: completion clamps to the fill, no second request below.
    LevelResult sec = l1.access(0x104, false, 5);
    EXPECT_TRUE(sec.hit);
    EXPECT_EQ(sec.doneCycle, 20u);
    EXPECT_EQ(mem.reqs.size(), 1u);
    EXPECT_EQ(l1.mshrs().stats().merges, 1u);
    // After the fill lands it is a plain hit.
    EXPECT_EQ(l1.access(0x108, false, 30).doneCycle, 30u);
}

TEST(CacheLevel, NonMergingSecondaryReRequests)
{
    RecordingMem mem(20);
    CacheLevel::Params p{CacheConfig{1024, 32, 1, 6}, 0,
                         MshrConfig{4, false}};
    CacheLevel l1("L1D", p, mem);

    l1.access(0x100, false, 0);
    LevelResult sec = l1.access(0x104, false, 5);
    EXPECT_EQ(sec.doneCycle, 25u);  // fresh request below at cycle 5
    EXPECT_EQ(mem.reqs.size(), 2u);
    EXPECT_EQ(l1.mshrs().stats().merges, 0u);
    EXPECT_EQ(l1.mshrs().stats().allocations, 2u);
}

TEST(CacheLevel, FullMshrFileDelaysNewMiss)
{
    RecordingMem mem(20);
    CacheLevel::Params p{CacheConfig{1024, 32, 1, 6}, 0, MshrConfig{1, true}};
    CacheLevel l1("L1D", p, mem);

    EXPECT_EQ(l1.access(0x100, false, 0).doneCycle, 20u);
    // Different block while the single entry is busy: waits until the
    // first fill completes at cycle 20, then issues.
    LevelResult second = l1.access(0x200, false, 4);
    EXPECT_EQ(second.doneCycle, 40u);
    EXPECT_EQ(l1.mshrs().stats().fullStallCycles, 16u);
    ASSERT_EQ(mem.reqs.size(), 2u);
    EXPECT_EQ(mem.reqs[1].t, 20u);
}

TEST(CacheLevel, DirtyVictimDrainsThroughWritebackBuffer)
{
    RecordingMem mem(10);
    CacheLevel::Params p{CacheConfig{1024, 32, 1, 6}, 0, MshrConfig{}, 1};
    CacheLevel l1("L1D", p, mem);

    l1.access(0x0, true, 0);                     // make line dirty
    LevelResult r = l1.access(0x400, false, 50); // same set: evicts dirty
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.doneCycle, 60u);
    ASSERT_EQ(mem.reqs.size(), 3u);
    // Fill for 0x0, then the victim writeback, then the fill for 0x400.
    EXPECT_TRUE(mem.reqs[1].isWrite);
    EXPECT_EQ(mem.reqs[1].addr, 0x0u);
    EXPECT_FALSE(mem.reqs[2].isWrite);
    EXPECT_EQ(l1.stats().writebacks, 1u);
}

TEST(CacheLevel, FullWritebackBufferStallsTheMiss)
{
    RecordingMem mem(100);
    CacheLevel::Params p{CacheConfig{1024, 32, 1, 6}, 0, MshrConfig{}, 1};
    CacheLevel l1("L1D", p, mem);

    l1.access(0x0, true, 0);
    l1.access(0x400, false, 10);   // victim 0x0 occupies the slot to 110
    l1.access(0x400, true, 120);   // re-dirty the resident line
    // Next eviction finds the slot still draining until cycle 230.
    l1.access(0x800, true, 130);
    LevelResult r = l1.access(0x0, false, 140);
    EXPECT_GT(l1.stats().wbFullStallCycles, 0u);
    EXPECT_GE(r.doneCycle, 230u + 100u);
}

// ---------------------------------------------------------------------------
// MemHierarchy

TEST(MemHierarchy, FlatMatchesPaperTiming)
{
    CacheConfig l1{1024, 32, 1, 6};
    MemHierarchy h(l1, paperHierarchy());

    MemResult miss = h.read(0x100, 10);
    EXPECT_FALSE(miss.l1Hit);
    EXPECT_EQ(miss.doneCycle, 16u);
    MemResult hit = h.read(0x104, 20);
    EXPECT_TRUE(hit.l1Hit);
    EXPECT_EQ(hit.doneCycle, 20u);
    // Writebacks are free on the flat machine: a dirty eviction costs
    // exactly the miss latency.
    h.write(0x0, 30);
    EXPECT_EQ(h.read(0x400, 40).doneCycle, 46u);

    HierarchyStats s = h.snapshot();
    ASSERT_EQ(s.levels.size(), 1u);
    EXPECT_EQ(s.levels[0].name, "L1D");
    EXPECT_FALSE(s.hasDram);
}

TEST(MemHierarchy, TwoLevelTiming)
{
    CacheConfig l1{1024, 32, 1, 6};
    HierarchyConfig cfg;
    cfg.depth = HierarchyDepth::L2;
    cfg.l2 = CacheConfig{4096, 32, 1, 0};
    cfg.l2HitLatency = 4;
    cfg.l2Mshr = MshrConfig{};      // keep the arithmetic exact
    cfg.l2WbEntries = 0;
    cfg.dram = DramConfig{20, 0};
    MemHierarchy h(l1, cfg);

    // Cold: L1 miss -> L2 lookup (+4) -> DRAM (+20).
    MemResult cold = h.read(0x100, 0);
    EXPECT_FALSE(cold.l1Hit);
    EXPECT_EQ(cold.doneCycle, 24u);
    // Evict 0x100 from the direct-mapped L1 (same set), then return:
    // the line is still resident in L2, so the refill costs only the L2
    // lookup.
    h.read(0x500, 30);
    MemResult l2hit = h.read(0x100, 100);
    EXPECT_FALSE(l2hit.l1Hit);
    EXPECT_EQ(l2hit.doneCycle, 104u);

    HierarchyStats s = h.snapshot();
    ASSERT_EQ(s.levels.size(), 2u);
    EXPECT_EQ(s.levels[1].name, "L2");
    EXPECT_TRUE(s.hasDram);
    EXPECT_EQ(s.dram.reads, 2u);  // 0x100 and 0x500 fills
    EXPECT_GT(s.levels[0].missRatio, 0.0);
}

TEST(MemHierarchy, TlbMissPenaltyDelaysAccess)
{
    CacheConfig l1{1024, 32, 1, 6};
    HierarchyConfig cfg;
    cfg.tlbEnabled = true;
    cfg.tlbEntries = 4;
    cfg.tlbMissPenalty = 10;
    MemHierarchy h(l1, cfg);

    // Cold page: TLB miss penalty, then the L1 miss.
    EXPECT_EQ(h.read(0x100, 0).doneCycle, 16u);
    // Warm page and warm line: undelayed hit.
    EXPECT_EQ(h.read(0x104, 20).doneCycle, 20u);

    HierarchyStats s = h.snapshot();
    EXPECT_EQ(s.tlbAccesses, 2u);
    EXPECT_EQ(s.tlbMisses, 1u);
    EXPECT_DOUBLE_EQ(s.tlbMissRatio(), 0.5);
}

TEST(MemHierarchy, ResetClearsAllState)
{
    CacheConfig l1{1024, 32, 1, 6};
    MemHierarchy h(l1, modernHierarchy());
    h.read(0x100, 0);
    h.read(0x104, 1);
    h.reset();
    HierarchyStats s = h.snapshot();
    EXPECT_EQ(s.levels[0].accesses, 0u);
    EXPECT_EQ(s.dram.reads, 0u);
    EXPECT_FALSE(h.read(0x100, 0).l1Hit);  // cold again
}

// ---------------------------------------------------------------------------
// Presets and validation

TEST(HierarchyPresets, PaperAndModern)
{
    EXPECT_EQ(paperHierarchy().depth, HierarchyDepth::Flat);
    HierarchyConfig m = modernHierarchy();
    EXPECT_EQ(m.depth, HierarchyDepth::L2);
    EXPECT_GT(m.l1Mshr.entries, 0u);
    EXPECT_GT(m.dram.latency, m.l2HitLatency);
    EXPECT_EQ(hierarchyPreset("paper").depth, HierarchyDepth::Flat);
    EXPECT_EQ(hierarchyPreset("modern").depth, HierarchyDepth::L2);
}

TEST(HierarchyDeathTest, RejectsBadConfigs)
{
    HierarchyConfig bad;
    bad.depth = HierarchyDepth::L2;
    bad.l2 = CacheConfig{1000, 32, 1, 0};
    EXPECT_DEATH(bad.validate(), "powers of two");

    HierarchyConfig badtlb;
    badtlb.tlbEnabled = true;
    badtlb.tlbPageBytes = 3000;
    EXPECT_DEATH(badtlb.validate(), "power of two");

    // L2 smaller than L1 is incoherent.
    HierarchyConfig tiny;
    tiny.depth = HierarchyDepth::L2;
    tiny.l2 = CacheConfig{512, 32, 1, 0};
    CacheConfig l1{1024, 32, 1, 6};
    EXPECT_DEATH(MemHierarchy(l1, tiny), "at least as large");

    EXPECT_DEATH(hierarchyPreset("huge"), "preset");
}

} // anonymous namespace
} // namespace facsim
