/**
 * @file
 * Golden-byte regression tests for the paper-reproduction benches,
 * promoted from the CI shell recipe into ctest proper. The fig6
 * speedup table and the table6 bandwidth CSV at the standard reduced
 * instruction budget must match the checked-in goldens byte for byte —
 * any drift in the timing model, workload generation or table
 * formatting fails here with a diffable artifact. A separate case
 * pins the runner's determinism guarantee: serial and parallel sweeps
 * must produce identical bytes.
 *
 * Binary paths come in as compile definitions (FIG6_BIN, TABLE6_BIN)
 * so the test always drives the binaries of the current build tree;
 * goldens live in tests/golden/ (FACSIM_GOLDEN_DIR).
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

namespace
{

std::string
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        ADD_FAILURE() << "cannot open " << path;
    std::string data;
    if (f) {
        char buf[1 << 14];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            data.append(buf, n);
        std::fclose(f);
    }
    return data;
}

/** Run @p cmd, capture stdout bytes (stderr dropped), expect exit 0. */
std::string
capture(const std::string &cmd)
{
    std::string out = testing::TempDir() + "/golden_out.txt";
    int status =
        std::system((cmd + " > " + out + " 2>/dev/null").c_str());
    EXPECT_EQ(status, 0) << cmd;
    return slurp(out);
}

std::string
golden(const char *name)
{
    return std::string(FACSIM_GOLDEN_DIR) + "/" + name;
}

void
expectGolden(const std::string &actual, const char *golden_name)
{
    std::string expect = slurp(golden(golden_name));
    ASSERT_FALSE(expect.empty());
    if (actual != expect) {
        // Byte counts first, then the first differing line for a
        // readable failure; the full actual text goes to the message so
        // an intentional change can be re-goldened from the log.
        size_t i = 0;
        while (i < actual.size() && i < expect.size() &&
               actual[i] == expect[i])
            ++i;
        FAIL() << golden_name << " drifted: " << expect.size()
               << " golden bytes vs " << actual.size()
               << " actual; first difference at byte " << i
               << "\n--- actual output ---\n" << actual;
    }
}

} // namespace

TEST(GoldenFig6Test, SpeedupTableMatchesGolden)
{
    expectGolden(capture(std::string(FIG6_BIN) +
                         " --jobs=2 --max-insts=200000"),
                 "fig6_200k.txt");
}

TEST(GoldenFig6Test, SerialAndParallelSweepsAreBitIdentical)
{
    std::string serial = capture(std::string(FIG6_BIN) +
                                 " --jobs=1 --max-insts=200000");
    std::string parallel = capture(std::string(FIG6_BIN) +
                                   " --jobs=4 --max-insts=200000");
    EXPECT_EQ(serial, parallel);
}

TEST(GoldenTableTest, Table6BandwidthCsvMatchesGolden)
{
    expectGolden(capture(std::string(TABLE6_BIN) +
                         " --jobs=2 --max-insts=200000 --csv"),
                 "table6_200k.csv");
}
