/**
 * @file
 * Live-telemetry unit tests: the Prometheus exposition (naming,
 * typing, cumulative histogram buckets, escaping), the client-side
 * stats sampler (JSON flattening, windowed rates, counter-reset
 * guards), the histogram percentile estimator, the host-phase
 * profiler (accumulation, cross-thread merge, reset) and the span
 * tracer's Chrome trace-event structure.
 */

#include <cmath>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "obs/prof.hh"
#include "obs/sampler.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"

using namespace facsim;

// ---------------------------------------------------------------------
// Prometheus exposition
// ---------------------------------------------------------------------

TEST(PromDump, NamesAreSanitizedWithThePrefix)
{
    EXPECT_EQ(obs::promName("serve.requests"), "facsim_serve_requests");
    EXPECT_EQ(obs::promName("hier.l1d.mshr-full"),
              "facsim_hier_l1d_mshr_full");
    EXPECT_EQ(obs::promName("a b/c"), "facsim_a_b_c");
}

TEST(PromDump, EveryKindGetsHelpTypeAndValueLines)
{
    obs::Registry reg;
    obs::Group &g = reg.root().group("t");
    obs::Counter &c = g.counter("events", "things that happened");
    ++c;
    ++c;
    obs::Scalar &s = g.scalar("level", "current level");
    s.set(2.5);
    g.formula("twice", "level doubled", [&] { return s.value() * 2; });
    obs::Distribution &d = g.distribution("lat", "latencies");
    d.sample(1.0);
    d.sample(3.0);

    std::string p = reg.promDump();
    EXPECT_NE(p.find("# HELP facsim_t_events things that happened"),
              std::string::npos);
    EXPECT_NE(p.find("# TYPE facsim_t_events counter"), std::string::npos);
    EXPECT_NE(p.find("facsim_t_events 2\n"), std::string::npos);
    EXPECT_NE(p.find("# TYPE facsim_t_level gauge"), std::string::npos);
    EXPECT_NE(p.find("facsim_t_level 2.5\n"), std::string::npos);
    EXPECT_NE(p.find("# TYPE facsim_t_twice gauge"), std::string::npos);
    EXPECT_NE(p.find("facsim_t_twice 5\n"), std::string::npos);
    // Distributions expose as a summary plus min/max gauges.
    EXPECT_NE(p.find("# TYPE facsim_t_lat summary"), std::string::npos);
    EXPECT_NE(p.find("facsim_t_lat_sum 4\n"), std::string::npos);
    EXPECT_NE(p.find("facsim_t_lat_count 2\n"), std::string::npos);
    EXPECT_NE(p.find("facsim_t_lat_min 1\n"), std::string::npos);
    EXPECT_NE(p.find("facsim_t_lat_max 3\n"), std::string::npos);
}

TEST(PromDump, HistogramBucketsAreCumulativeWithInf)
{
    obs::Registry reg;
    obs::Histogram &h =
        reg.root().group("t").histogram("v", "values", 0.0, 10.0, 2);
    h.sample(-1.0);  // underflow
    h.sample(2.0);   // bucket [0,5)
    h.sample(7.0);   // bucket [5,10)
    h.sample(12.0);  // overflow

    std::string p = reg.promDump();
    EXPECT_NE(p.find("# TYPE facsim_t_v histogram"), std::string::npos);
    // Underflow seeds the first cumulative bucket: le="5" holds the
    // underflow sample plus the [0,5) one.
    EXPECT_NE(p.find("facsim_t_v_bucket{le=\"5\"} 2\n"),
              std::string::npos);
    EXPECT_NE(p.find("facsim_t_v_bucket{le=\"10\"} 3\n"),
              std::string::npos);
    // +Inf covers everything, overflow included.
    EXPECT_NE(p.find("facsim_t_v_bucket{le=\"+Inf\"} 4\n"),
              std::string::npos);
    EXPECT_NE(p.find("facsim_t_v_count 4\n"), std::string::npos);
}

TEST(PromDump, HelpTextIsEscaped)
{
    obs::Registry reg;
    reg.root().group("t").counter("c", "line one\nline two \\ end");
    std::string p = reg.promDump();
    EXPECT_NE(p.find("line one\\nline two \\\\ end"), std::string::npos);
}

// ---------------------------------------------------------------------
// Histogram percentile estimator
// ---------------------------------------------------------------------

TEST(HistogramPercentile, InterpolatesInsideTheCrossingBucket)
{
    obs::Registry reg;
    obs::Histogram &h =
        reg.root().group("t").histogram("v", "values", 0.0, 100.0, 10);
    // 100 samples uniform in [0,100): percentiles track the identity.
    for (int i = 0; i < 100; ++i)
        h.sample(i + 0.5);
    EXPECT_NEAR(h.percentile(0.5), 50.0, 10.0 + 1e-9);
    EXPECT_NEAR(h.percentile(0.9), 90.0, 10.0 + 1e-9);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 100.0);
}

TEST(HistogramPercentile, EdgeMassSaturatesAtTheRange)
{
    obs::Registry reg;
    obs::Histogram &h =
        reg.root().group("t").histogram("v", "values", 0.0, 10.0, 2);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);  // empty
    h.sample(-5.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);  // all underflow -> lo
    h.sample(50.0);
    h.sample(60.0);
    h.sample(70.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.9), 10.0);  // overflow -> hi
}

// ---------------------------------------------------------------------
// Stats JSON parsing + sampler
// ---------------------------------------------------------------------

TEST(StatsSampler, ParsesARealRegistryDump)
{
    obs::Registry reg;
    obs::Group &g = reg.root().group("serve");
    obs::Counter &c = g.counter("requests", "requests");
    ++c;
    obs::Distribution &d = g.distribution("lat", "latencies");
    d.sample(4.0);
    d.sample(8.0);

    obs::StatsSnapshot snap;
    std::string err;
    ASSERT_TRUE(obs::parseStatsJson(reg.jsonDump(), &snap, &err)) << err;
    EXPECT_EQ(snap["serve.requests"], 1.0);
    // Nested distribution objects flatten to dotted leaves.
    EXPECT_EQ(snap["serve.lat.count"], 2.0);
    EXPECT_EQ(snap["serve.lat.mean"], 6.0);
    // The top-level "stats" wrapper is stripped, schema_version kept.
    EXPECT_EQ(snap["schema_version"], 1.0);
    EXPECT_EQ(snap.count("stats"), 0u);
}

TEST(StatsSampler, MalformedJsonIsRejected)
{
    obs::StatsSnapshot snap;
    std::string err;
    EXPECT_FALSE(obs::parseStatsJson("", &snap, &err));
    EXPECT_FALSE(obs::parseStatsJson("{\"a\":", &snap, &err));
    EXPECT_FALSE(obs::parseStatsJson("{\"a\":1} trailing", &snap, &err));
    EXPECT_FALSE(obs::parseStatsJson("[1,2]", &snap, &err));
}

TEST(StatsSampler, WindowedRatesComeFromDeltas)
{
    obs::StatsSampler s;
    EXPECT_FALSE(s.hasWindow());
    s.push({{"reqs", 100.0}, {"gauge", 5.0}}, 10.0);
    EXPECT_FALSE(s.hasWindow());
    EXPECT_EQ(s.value("reqs"), 100.0);
    s.push({{"reqs", 150.0}, {"gauge", 3.0}}, 12.0);
    ASSERT_TRUE(s.hasWindow());
    EXPECT_DOUBLE_EQ(s.windowSeconds(), 2.0);
    EXPECT_DOUBLE_EQ(s.delta("reqs"), 50.0);
    EXPECT_DOUBLE_EQ(s.rate("reqs"), 25.0);
    EXPECT_EQ(s.value("reqs"), 150.0);
    EXPECT_EQ(s.resets(), 1u);  // the gauge went down; counted once

    // Keys missing on either side never contribute a rate.
    EXPECT_DOUBLE_EQ(s.rate("absent"), 0.0);
    EXPECT_DOUBLE_EQ(s.value("absent"), 0.0);
}

TEST(StatsSampler, CounterResetClampsTheRateToZero)
{
    obs::StatsSampler s;
    s.push({{"reqs", 1000.0}}, 0.0);
    s.push({{"reqs", 10.0}}, 1.0);  // daemon restarted mid-watch
    ASSERT_TRUE(s.hasWindow());
    EXPECT_DOUBLE_EQ(s.delta("reqs"), 0.0);
    EXPECT_DOUBLE_EQ(s.rate("reqs"), 0.0);
    EXPECT_EQ(s.resets(), 1u);

    // The next window is clean again.
    s.push({{"reqs", 30.0}}, 2.0);
    EXPECT_DOUBLE_EQ(s.rate("reqs"), 20.0);
    EXPECT_EQ(s.resets(), 1u);
}

// ---------------------------------------------------------------------
// Host-phase profiler
// ---------------------------------------------------------------------

TEST(Prof, PhaseNamesAreStable)
{
    EXPECT_STREQ(obs::profPhaseName(obs::ProfPhase::BlockTranslate),
                 "translate");
    EXPECT_STREQ(obs::profPhaseName(obs::ProfPhase::Encode), "encode");
}

TEST(Prof, ScopesAccumulateAndResetClears)
{
    if (!obs::profCompiledIn())
        GTEST_SKIP() << "built with -DFACSIM_PROF=OFF";
    obs::profReset();
    {
        FACSIM_PROF_SCOPE(Drain);
    }
    {
        FACSIM_PROF_SCOPE(Drain);
    }
    obs::ProfTally t = obs::profSnapshot(obs::ProfPhase::Drain);
    EXPECT_EQ(t.count, 2u);
    EXPECT_GE(t.sumUs, 0.0);
    EXPECT_GE(t.maxUs, t.minUs);
    EXPECT_EQ(obs::profSnapshot(obs::ProfPhase::CacheSave).count, 0u);

    obs::profReset();
    EXPECT_EQ(obs::profSnapshot(obs::ProfPhase::Drain).count, 0u);
}

TEST(Prof, ThreadsMergeIntoOneTallyEvenAfterExit)
{
    if (!obs::profCompiledIn())
        GTEST_SKIP() << "built with -DFACSIM_PROF=OFF";
    obs::profReset();
    std::vector<std::thread> ts;
    for (int i = 0; i < 4; ++i) {
        ts.emplace_back([] {
            for (int j = 0; j < 10; ++j) {
                FACSIM_PROF_SCOPE(Warmup);
            }
        });
    }
    for (std::thread &t : ts)
        t.join();  // retired accumulators must still be counted
    {
        FACSIM_PROF_SCOPE(Warmup);
    }
    EXPECT_EQ(obs::profSnapshot(obs::ProfPhase::Warmup).count, 41u);
    obs::profReset();
}

TEST(Prof, RegisteredStatsRenderTheTallies)
{
    if (!obs::profCompiledIn())
        GTEST_SKIP() << "built with -DFACSIM_PROF=OFF";
    obs::profReset();
    {
        FACSIM_PROF_SCOPE(CacheLoad);
    }
    obs::Registry reg;
    obs::registerProfStats(reg.root().group("prof"));
    std::string js = reg.jsonDump();
    EXPECT_NE(js.find("\"prof.cache_load\""), std::string::npos);

    obs::StatsSnapshot snap;
    std::string err;
    ASSERT_TRUE(obs::parseStatsJson(js, &snap, &err)) << err;
    EXPECT_EQ(snap["prof.cache_load.count"], 1.0);
    EXPECT_EQ(snap["prof.translate.count"], 0.0);
    obs::profReset();
}

// ---------------------------------------------------------------------
// Span tracer
// ---------------------------------------------------------------------

TEST(SpanTracer, EmitsWellFormedChromeTraceEvents)
{
    std::ostringstream out;
    {
        obs::SpanTracer tr(out);
        tr.nameThisThread("conn");
        tr.instant("received", 7);
        obs::SpanTracer::Clock::time_point t0 =
            obs::SpanTracer::Clock::now();
        tr.complete("request", 7,
                    t0 - std::chrono::microseconds(50), t0);
        tr.finish();
    }
    std::string s = out.str();
    EXPECT_EQ(s.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_EQ(s.substr(s.size() - 3), "]}\n");
    EXPECT_NE(s.find("\"name\":\"thread_name\""), std::string::npos);
    EXPECT_NE(s.find("\"conn-0\""), std::string::npos);
    EXPECT_NE(s.find("\"name\":\"received\""), std::string::npos);
    EXPECT_NE(s.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(s.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(s.find("\"args\":{\"req\":7}"), std::string::npos);
}

TEST(SpanTracer, ThreadsGetDenseDistinctTracks)
{
    std::ostringstream out;
    obs::SpanTracer tr(out);
    tr.nameThisThread("main");
    tr.instant("a", 1);
    std::thread t([&] {
        tr.nameThisThread("worker");
        tr.instant("b", 2);
    });
    t.join();
    tr.finish();
    std::string s = out.str();
    EXPECT_NE(s.find("\"main-0\""), std::string::npos);
    EXPECT_NE(s.find("\"worker-1\""), std::string::npos);
    EXPECT_NE(s.find("\"tid\":1"), std::string::npos);
}

TEST(SpanTracer, ReqScopesNestAndRestore)
{
    EXPECT_EQ(obs::currentSpanReqId(), 0u);
    {
        obs::SpanReqScope outer(11);
        EXPECT_EQ(obs::currentSpanReqId(), 11u);
        {
            obs::SpanReqScope inner(22);
            EXPECT_EQ(obs::currentSpanReqId(), 22u);
        }
        EXPECT_EQ(obs::currentSpanReqId(), 11u);
    }
    EXPECT_EQ(obs::currentSpanReqId(), 0u);
}

TEST(SpanTracer, ProfScopesEmitSpansOnlyWhenAttached)
{
    if (!obs::profCompiledIn())
        GTEST_SKIP() << "built with -DFACSIM_PROF=OFF";
    std::ostringstream out;
    {
        obs::SpanTracer tr(out);
        obs::setSpanTracer(&tr);
        obs::SpanReqScope req(99);
        {
            FACSIM_PROF_SCOPE(Encode);
        }
        obs::setSpanTracer(nullptr);
        {
            FACSIM_PROF_SCOPE(Encode);  // detached: no event
        }
        tr.finish();
    }
    std::string s = out.str();
    size_t n = 0;
    for (size_t at = s.find("\"name\":\"encode\"");
         at != std::string::npos;
         at = s.find("\"name\":\"encode\"", at + 1))
        ++n;
    EXPECT_EQ(n, 1u);
    EXPECT_NE(s.find("\"args\":{\"req\":99}"), std::string::npos);
    obs::profReset();
}
