/**
 * @file
 * Minimal strict JSON parser shared by the tests that validate JSON the
 * simulator emits (bench --json lines, stats-registry dumps, Chrome
 * trace-event files). Deliberately strict where it matters for catching
 * emitter bugs: raw control characters inside strings are rejected,
 * escape sequences are validated, and trailing garbage fails the parse.
 * Test-only — production code never parses JSON.
 */

#ifndef FACSIM_TESTS_JSON_LITE_HH
#define FACSIM_TESTS_JSON_LITE_HH

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace facsim::jsonlite
{

/** One parsed JSON value (objects, arrays, strings, numbers). */
struct JsonValue
{
    enum class Kind { String, Number, Object, Array } kind = Kind::String;
    std::string str;
    double num = 0;
    std::map<std::string, std::shared_ptr<JsonValue>> obj;
    std::vector<std::shared_ptr<JsonValue>> arr;
};

class JsonParser
{
  public:
    // Takes a copy so constructing from a temporary is safe.
    explicit JsonParser(std::string text) : s_(std::move(text)) {}

    /** Whole-input parse; nullptr on any syntax error or trailing text. */
    std::shared_ptr<JsonValue>
    parse()
    {
        std::shared_ptr<JsonValue> v = value();
        skipWs();
        if (!ok_ || pos_ != s_.size())
            return nullptr;
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                s_[pos_] == '\r'))
            ++pos_;
    }

    bool
    eat(char c)
    {
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        ok_ = false;
        return false;
    }

    std::shared_ptr<JsonValue>
    value()
    {
        skipWs();
        if (pos_ >= s_.size()) {
            ok_ = false;
            return nullptr;
        }
        const char c = s_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        return number();
    }

    std::shared_ptr<JsonValue>
    object()
    {
        auto v = std::make_shared<JsonValue>();
        v->kind = JsonValue::Kind::Object;
        eat('{');
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return v;
        }
        while (ok_) {
            std::shared_ptr<JsonValue> key = string();
            if (!ok_ || !eat(':'))
                break;
            v->obj[key->str] = value();
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == ',') {
                ++pos_;
                skipWs();
                continue;
            }
            eat('}');
            break;
        }
        return v;
    }

    std::shared_ptr<JsonValue>
    array()
    {
        auto v = std::make_shared<JsonValue>();
        v->kind = JsonValue::Kind::Array;
        eat('[');
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return v;
        }
        while (ok_) {
            v->arr.push_back(value());
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            eat(']');
            break;
        }
        return v;
    }

    std::shared_ptr<JsonValue>
    string()
    {
        auto v = std::make_shared<JsonValue>();
        v->kind = JsonValue::Kind::String;
        if (!eat('"'))
            return v;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (static_cast<unsigned char>(c) < 0x20) {
                // Raw control characters are illegal inside JSON strings.
                ok_ = false;
                return v;
            }
            if (c != '\\') {
                v->str += c;
                continue;
            }
            if (pos_ >= s_.size()) {
                ok_ = false;
                return v;
            }
            const char e = s_[pos_++];
            switch (e) {
              case '"': v->str += '"'; break;
              case '\\': v->str += '\\'; break;
              case '/': v->str += '/'; break;
              case 'n': v->str += '\n'; break;
              case 't': v->str += '\t'; break;
              case 'r': v->str += '\r'; break;
              case 'b': v->str += '\b'; break;
              case 'f': v->str += '\f'; break;
              case 'u': {
                if (pos_ + 4 > s_.size()) {
                    ok_ = false;
                    return v;
                }
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = s_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else {
                        ok_ = false;
                        return v;
                    }
                }
                // The emitters only use \u for single bytes; reject the
                // rest so a change in behaviour shows up here.
                if (cp > 0xff) {
                    ok_ = false;
                    return v;
                }
                v->str += static_cast<char>(cp);
                break;
              }
              default:
                ok_ = false;
                return v;
            }
        }
        eat('"');
        return v;
    }

    std::shared_ptr<JsonValue>
    number()
    {
        auto v = std::make_shared<JsonValue>();
        v->kind = JsonValue::Kind::Number;
        size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start) {
            ok_ = false;
            return v;
        }
        v->num = std::strtod(s_.substr(start, pos_ - start).c_str(),
                             nullptr);
        return v;
    }

    const std::string s_;
    size_t pos_ = 0;
    bool ok_ = true;
};

/** Parse a standalone JSON string literal back to its byte content. */
inline std::string
parseStringLiteral(const std::string &lit, bool *ok)
{
    JsonParser p(lit);
    std::shared_ptr<JsonValue> v = p.parse();
    *ok = v != nullptr && v->kind == JsonValue::Kind::String;
    return *ok ? v->str : std::string();
}

} // namespace facsim::jsonlite

#endif // FACSIM_TESTS_JSON_LITE_HH
