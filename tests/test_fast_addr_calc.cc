/**
 * @file
 * Unit tests for the fast-address-calculation predictor, including the
 * four worked examples of the paper's Figure 5 (16 KB direct-mapped
 * cache, 16-byte blocks: B=4, S=14).
 */

#include <gtest/gtest.h>

#include "core/fast_addr_calc.hh"

namespace facsim
{
namespace
{

FacConfig
fig5Config()
{
    return FacConfig{.blockBits = 4, .setBits = 14, .fullTagAdd = true,
                     .speculateRegReg = true};
}

TEST(Fac, Figure5aPointerDereference)
{
    FastAddrCalc f(fig5Config());
    // load r3, 0(r8): r8 = 0xac, offset 0.
    FacResult r = f.predict(0xac, 0, false);
    EXPECT_TRUE(r.attempted);
    EXPECT_TRUE(r.success);
    EXPECT_EQ(r.predictedAddr, 0xacu);
}

TEST(Fac, Figure5bAlignedGlobalPointer)
{
    FastAddrCalc f(fig5Config());
    // load r3, 2436(gp): gp = 0x10000000 (aligned), offset 0x984.
    FacResult r = f.predict(0x10000000, 0x984, false);
    EXPECT_TRUE(r.success);
    EXPECT_EQ(r.predictedAddr, 0x10000984u);
}

TEST(Fac, Figure5cBlockOffsetAdditionSucceeds)
{
    FastAddrCalc f(fig5Config());
    // load r3, 102(sp): sp = 0x7fff5b84, offset 0x66; full addition is
    // needed in the block offset but no carry leaves it.
    FacResult r = f.predict(0x7fff5b84, 0x66, false);
    EXPECT_TRUE(r.success);
    EXPECT_EQ(r.predictedAddr, 0x7fff5beau);
}

TEST(Fac, Figure5dPropagatedCarryFails)
{
    FastAddrCalc f(fig5Config());
    // load r3, 364(sp): sp = 0x7fff5b84, offset 0x16c; a carry leaves
    // the block offset and another is generated in the set index.
    FacResult r = f.predict(0x7fff5b84, 0x16c, false);
    EXPECT_TRUE(r.attempted);
    EXPECT_FALSE(r.success);
    EXPECT_NE(r.predictedAddr, 0x7fff5b84u + 0x16c);
    EXPECT_TRUE(r.failMask & facFailOverflow);
}

TEST(Fac, ZeroOffsetAlwaysSucceeds)
{
    FastAddrCalc f(fig5Config());
    for (uint32_t base : {0u, 0x7fffffffu, 0x12345678u, 0xffffffffu}) {
        FacResult r = f.predict(base, 0, false);
        EXPECT_TRUE(r.success);
        EXPECT_EQ(r.predictedAddr, base);
    }
}

TEST(Fac, GenCarryInSetIndexDetected)
{
    FastAddrCalc f(fig5Config());
    // Base and offset share set-index bits: bit 4 set in both.
    FacResult r = f.predict(0x10, 0x10, false);
    EXPECT_FALSE(r.success);
    EXPECT_TRUE(r.failMask & facFailGenCarry);
}

TEST(Fac, SmallNegativeConstWithinBlockSucceeds)
{
    FastAddrCalc f(fig5Config());
    // base block offset 0xc, offset -4 stays inside the block.
    FacResult r = f.predict(0x200c, -4, false);
    EXPECT_TRUE(r.success);
    EXPECT_EQ(r.predictedAddr, 0x2008u);
}

TEST(Fac, NegativeConstLeavingBlockFails)
{
    FastAddrCalc f(fig5Config());
    FacResult r = f.predict(0x2004, -8, false);  // crosses block down
    EXPECT_FALSE(r.success);
    EXPECT_TRUE(r.failMask & facFailLargeNegConst);

    FacResult big = f.predict(0x2004, -1000, false);
    EXPECT_FALSE(big.success);
    EXPECT_TRUE(big.failMask & facFailLargeNegConst);
}

TEST(Fac, NegativeIndexRegisterAlwaysFails)
{
    FastAddrCalc f(fig5Config());
    FacResult r = f.predict(0x2010, -16, true);
    EXPECT_TRUE(r.attempted);
    EXPECT_FALSE(r.success);
    EXPECT_TRUE(r.failMask & facFailNegIndexReg);
}

TEST(Fac, PositiveIndexRegisterUsesNormalPath)
{
    FastAddrCalc f(fig5Config());
    FacResult r = f.predict(0x10000000, 0x40, true);
    EXPECT_TRUE(r.success);
    EXPECT_EQ(r.predictedAddr, 0x10000040u);
}

TEST(Fac, RegRegSpeculationCanBeDisabled)
{
    FacConfig cfg = fig5Config();
    cfg.speculateRegReg = false;
    FastAddrCalc f(cfg);
    FacResult r = f.predict(0x10000000, 0x40, true);
    EXPECT_FALSE(r.attempted);
    // Constant offsets still speculate.
    EXPECT_TRUE(f.predict(0x10000000, 0x40, false).attempted);
}

TEST(Fac, OrTagVariantDetectsTagCarry)
{
    FacConfig cfg = fig5Config();
    cfg.fullTagAdd = false;
    FastAddrCalc f(cfg);
    // Offset with tag bits overlapping the base's tag bits.
    FacResult r = f.predict(0x00404000, 0x00404000, false);
    EXPECT_FALSE(r.success);
    EXPECT_TRUE(r.failMask & facFailGenCarryTag);
    // The full-tag-add circuit predicts this one correctly.
    FastAddrCalc g(fig5Config());
    EXPECT_TRUE(g.predict(0x00404000, 0x00404000, false).success);
}

TEST(Fac, FailMaskNames)
{
    EXPECT_EQ(FastAddrCalc::failMaskName(facFailNone), "None");
    EXPECT_EQ(FastAddrCalc::failMaskName(facFailOverflow), "Overflow");
    EXPECT_EQ(FastAddrCalc::failMaskName(
                  facFailOverflow | facFailGenCarry),
              "Overflow|GenCarry");
}

TEST(FacDeathTest, RejectsDegenerateGeometry)
{
    EXPECT_DEATH(FastAddrCalc(FacConfig{.blockBits = 14, .setBits = 14}),
                 "block-offset");
    EXPECT_DEATH(FastAddrCalc(FacConfig{.blockBits = 5, .setBits = 32}),
                 "tag");
}

} // anonymous namespace
} // namespace facsim
