/**
 * @file
 * Fetch-stage tests: BTB-directed fetch grouping, taken-branch group
 * breaks, fetch bandwidth, and redirect timing.
 */

#include <gtest/gtest.h>

#include <functional>

#include "asm/builder.hh"
#include "cpu/pipeline.hh"
#include "link/linker.hh"
#include "sim/config.hh"

namespace facsim
{
namespace
{

PipeStats
runProgram(const std::function<void(AsmBuilder &)> &gen,
           PipelineConfig cfg)
{
    cfg.perfectICache = true;
    Program p;
    AsmBuilder as(p);
    gen(as);
    Memory mem;
    LinkedImage img = Linker(LinkPolicy{}).link(p, mem);
    Emulator emu(p, mem, img, 0x7fff5b88);
    Pipeline pipe(cfg, emu);
    return pipe.run();
}

TEST(Fetch, StraightLineSustainsFourPerCycle)
{
    // Independent ALU ops: the only limit is fetch/issue width.
    auto gen = [](AsmBuilder &as) {
        for (int i = 0; i < 400; ++i)
            as.add(static_cast<uint8_t>(reg::t0 + i % 8), reg::s0,
                   reg::s1);
        as.halt();
    };
    PipeStats st = runProgram(gen, baselineConfig());
    EXPECT_GT(st.ipc(), 3.5);
}

TEST(Fetch, PredictedTakenLoopHasNoBubble)
{
    // A hot loop with a 2-instruction body: after the BTB warms, the
    // taken back-edge costs no fetch bubble, but it does end the fetch
    // group (2 insts/cycle ceiling for a 2-inst loop body).
    auto gen = [](AsmBuilder &as) {
        as.li(reg::t9, 1000);
        LabelId top = as.newLabel();
        as.bind(top);
        as.addi(reg::t9, reg::t9, -1);
        as.bgtz(reg::t9, top);
        as.halt();
    };
    PipeStats st = runProgram(gen, baselineConfig());
    // ~1 cycle per iteration (2 insts, dependent addi chain).
    EXPECT_LT(st.cycles, 1150u);
    // Only the cold iteration mispredicts (plus the final fall-through).
    EXPECT_LE(st.btbMispredicts, 4u);
}

TEST(Fetch, IndirectJumpsLearnTheirTarget)
{
    // A jr through a constant register: first encounter mispredicts,
    // the BTB then locks on.
    auto gen = [](AsmBuilder &as) {
        SymId fnptr = as.global("fnptr", 4, 4, true);
        LabelId fn = as.newLabel();
        LabelId setup = as.newLabel();
        as.j(setup);
        as.bind(fn);
        as.addi(reg::t8, reg::t8, 1);
        as.jr(reg::ra);
        as.bind(setup);
        as.li(reg::t9, 300);
        LabelId top = as.newLabel();
        as.bind(top);
        as.jal(fn);
        as.addi(reg::t9, reg::t9, -1);
        as.bgtz(reg::t9, top);
        as.halt();
        (void)fnptr;
    };
    PipeStats st = runProgram(gen, baselineConfig());
    // 300 calls, 300 returns: all from one call site, so after warmup
    // both the jal and the jr predict.
    EXPECT_LT(st.btbMispredicts, 12u);
}

TEST(Fetch, AlternatingCallSitesDefeatReturnPrediction)
{
    // The same function called from two sites: a plain BTB (no return
    // stack, per Table 5) mispredicts the jr target on every switch.
    auto gen = [](AsmBuilder &as) {
        LabelId fn = as.newLabel();
        LabelId setup = as.newLabel();
        as.j(setup);
        as.bind(fn);
        as.addi(reg::t8, reg::t8, 1);
        as.jr(reg::ra);
        as.bind(setup);
        as.li(reg::t9, 200);
        LabelId top = as.newLabel();
        as.bind(top);
        as.jal(fn);          // site A
        as.nop();
        as.jal(fn);          // site B (different return address)
        as.addi(reg::t9, reg::t9, -1);
        as.bgtz(reg::t9, top);
        as.halt();
    };
    PipeStats st = runProgram(gen, baselineConfig());
    // Every jr return alternates targets: ~2 mispredicts per iteration.
    EXPECT_GT(st.btbMispredicts, 300u);
}

TEST(Fetch, FetchBufferBoundsRunahead)
{
    // A long divide stalls issue; fetch must not run unboundedly ahead.
    auto gen = [](AsmBuilder &as) {
        as.li(reg::t0, 1000);
        as.li(reg::t1, 7);
        as.div(reg::t2, reg::t0, reg::t1);
        as.div(reg::t3, reg::t2, reg::t1);   // dependent divide
        for (int i = 0; i < 100; ++i)
            as.add(static_cast<uint8_t>(reg::t4 + i % 4), reg::t0,
                   reg::t1);
        as.halt();
    };
    PipeStats st = runProgram(gen, baselineConfig());
    // Two dependent 12-cycle divides dominate; everything else overlaps.
    EXPECT_GE(st.cycles, 24u);
    EXPECT_LT(st.cycles, 70u);
}

} // anonymous namespace
} // namespace facsim
