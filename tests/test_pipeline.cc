/**
 * @file
 * Timing-pipeline tests: latency accounting, fast-address-calculation
 * speculation, bandwidth overhead, branch penalties, store-buffer
 * behaviour and the Figure 2 idealisation knobs.
 */

#include <gtest/gtest.h>

#include <functional>

#include "asm/builder.hh"
#include "core/fast_addr_calc.hh"
#include "cpu/pipeline.hh"
#include "link/linker.hh"
#include "sim/config.hh"

namespace facsim
{
namespace
{

/** Build a program, link it, run it through a pipeline config. */
PipeStats
runProgram(const std::function<void(AsmBuilder &)> &gen,
           const PipelineConfig &cfg)
{
    Program p;
    AsmBuilder as(p);
    gen(as);
    Memory mem;
    LinkedImage img = Linker(LinkPolicy{}).link(p, mem);
    Emulator emu(p, mem, img, 0x7fff5b88);
    Pipeline pipe(cfg, emu);
    return pipe.run();
}

// A chain of dependent loads from an aligned base with zero offsets:
// every FAC prediction succeeds.
void
pointerChase(AsmBuilder &as, int n)
{
    SymId cell = as.global("cell", 64, 64, false);
    as.la(reg::s0, cell);
    // cell[0] holds the address of cell itself: a self-loop to chase.
    as.sw(reg::s0, 0, reg::s0);
    for (int i = 0; i < n; ++i)
        as.lw(reg::s0, 0, reg::s0);
    as.halt();
}

TEST(Pipeline, RunsAndCountsInstructions)
{
    PipeStats st = runProgram([](AsmBuilder &as) {
        as.li(reg::t0, 5);
        as.li(reg::t1, 6);
        as.add(reg::t2, reg::t0, reg::t1);
        as.halt();
    }, baselineConfig());
    EXPECT_EQ(st.insts, 4u);
    EXPECT_GT(st.cycles, 0u);
    EXPECT_LE(st.ipc(), 4.0);
}

TEST(Pipeline, DependentLoadChainShowsTwoCycleLatency)
{
    const int n = 200;
    PipeStats base = runProgram(
        [&](AsmBuilder &as) { pointerChase(as, n); }, baselineConfig());
    // Each dependent load costs ~2 cycles in the baseline.
    EXPECT_GT(base.cycles, static_cast<uint64_t>(2 * n - 20));
    EXPECT_LT(base.cycles, static_cast<uint64_t>(2 * n + 60));
}

TEST(Pipeline, FacCutsDependentLoadChainToOneCycle)
{
    const int n = 200;
    PipeStats base = runProgram(
        [&](AsmBuilder &as) { pointerChase(as, n); }, baselineConfig());
    PipeStats fac = runProgram(
        [&](AsmBuilder &as) { pointerChase(as, n); }, facPipelineConfig());
    // All predictions succeed (zero offsets): ~1 cycle per load.
    EXPECT_EQ(fac.loadSpecFailures, 0u);
    EXPECT_EQ(fac.loadsSpeculated, static_cast<uint64_t>(n));
    EXPECT_LT(fac.cycles + n / 2, base.cycles);
}

TEST(Pipeline, OneCycleLoadIdealisationMatchesFacOnZeroOffsets)
{
    const int n = 100;
    PipeStats ideal = runProgram(
        [&](AsmBuilder &as) { pointerChase(as, n); },
        oneCycleLoadConfig());
    PipeStats fac = runProgram(
        [&](AsmBuilder &as) { pointerChase(as, n); }, facPipelineConfig());
    // FAC with perfect prediction == the 1-cycle-load ideal.
    EXPECT_NEAR(static_cast<double>(fac.cycles),
                static_cast<double>(ideal.cycles), 8.0);
}

// Loads whose base register has set-index bits colliding with the
// offset: every prediction fails.
void
mispredictedLoads(AsmBuilder &as, int n)
{
    SymId arr = as.global("arr", 4096, 64, false);
    as.la(reg::s0, arr);
    as.addi(reg::s0, reg::s0, 0x20);  // base bit 5 set
    for (int i = 0; i < n; ++i)
        as.lw(reg::t0, 0x20, reg::s0);  // offset bit 5 set: GenCarry
    as.halt();
}

TEST(Pipeline, MispredictionsCostBandwidthNotCorrectness)
{
    const int n = 100;
    PipeStats fac = runProgram(
        [&](AsmBuilder &as) { mispredictedLoads(as, n); },
        facPipelineConfig());
    EXPECT_EQ(fac.loadSpecFailures, static_cast<uint64_t>(n));
    EXPECT_EQ(fac.extraAccesses, static_cast<uint64_t>(n));
    EXPECT_GT(fac.bandwidthOverhead(), 0.9);
}

TEST(Pipeline, FacNeverSlowerThanBaselineOnMispredicts)
{
    const int n = 200;
    PipeStats base = runProgram(
        [&](AsmBuilder &as) { mispredictedLoads(as, n); },
        baselineConfig());
    PipeStats fac = runProgram(
        [&](AsmBuilder &as) { mispredictedLoads(as, n); },
        facPipelineConfig());
    // The paper's design goal: mispredictions re-execute in MEM, so the
    // timing degenerates to the baseline (give a small slack for issue-
    // rule second-order effects).
    EXPECT_LE(fac.cycles, base.cycles + n / 10 + 8);
}

TEST(Pipeline, PerfectCacheFasterOnThrashingWalk)
{
    // Stride through 64 KB: every access misses a 16 KB cache.
    auto gen = [](AsmBuilder &as) {
        SymId arr = as.global("arr", 128 * 1024, 64, false);
        as.la(reg::s0, arr);
        as.li(reg::t9, 1024);
        LabelId top = as.newLabel();
        as.bind(top);
        as.lw(reg::t0, 0, reg::s0);
        as.addi(reg::s0, reg::s0, 64);
        as.addi(reg::t9, reg::t9, -1);
        as.bgtz(reg::t9, top);
        as.halt();
    };
    PipeStats real = runProgram(gen, baselineConfig());
    PipeStats perfect = runProgram(gen, perfectCacheConfig());
    EXPECT_GT(real.dcacheMisses, 900u);
    EXPECT_EQ(perfect.dcacheMisses, 0u);
    EXPECT_LT(perfect.cycles, real.cycles);
}

TEST(Pipeline, BranchMispredictsCostCycles)
{
    // A loop whose body branch alternates unpredictably via a data-
    // dependent condition versus a fully biased one.
    auto gen = [](bool alternating) {
        return [alternating](AsmBuilder &as) {
            as.li(reg::t9, 400);
            as.li(reg::t8, 0);
            LabelId top = as.newLabel();
            LabelId skip = as.newLabel();
            as.bind(top);
            if (alternating)
                as.andi(reg::t0, reg::t9, 1);
            else
                as.li(reg::t0, 0);
            as.beq(reg::t0, reg::zero, skip);
            as.addi(reg::t8, reg::t8, 1);
            as.bind(skip);
            as.addi(reg::t9, reg::t9, -1);
            as.bgtz(reg::t9, top);
            as.halt();
        };
    };
    PipeStats biased = runProgram(gen(false), baselineConfig());
    PipeStats alt = runProgram(gen(true), baselineConfig());
    EXPECT_GT(alt.btbMispredicts, biased.btbMispredicts + 100);
    EXPECT_GT(alt.cycles, biased.cycles);
}

TEST(Pipeline, StoreBurstUnderLoadTrafficFillsStoreBuffer)
{
    // Stores retire only on cycles without load traffic; saturating the
    // read ports starves retirement until the 16-entry buffer stalls
    // the pipeline — the effect Section 3.1 warns speculation worsens.
    auto gen = [](AsmBuilder &as) {
        SymId arr = as.global("arr", 4096, 64, false);
        as.la(reg::s0, arr);
        as.li(reg::s5, 150);
        LabelId top = as.newLabel();
        as.bind(top);  // a warm loop so I-cache misses create no idle
        for (int i = 0; i < 8; ++i) {
            uint8_t d1 = reg::t0 + (2 * i) % 6;
            uint8_t d2 = reg::t0 + (2 * i + 1) % 6;
            as.lw(d1, 0, reg::s0);
            as.lw(d2, 4, reg::s0);
            as.sw(reg::zero, 8, reg::s0);
        }
        as.addi(reg::s5, reg::s5, -1);
        as.bgtz(reg::s5, top);
        as.halt();
    };
    PipeStats st = runProgram(gen, baselineConfig());
    EXPECT_GT(st.storeBufferFullStalls, 0u);
    EXPECT_EQ(st.stores, 150u * 8);
}

TEST(Pipeline, SpeculativeStoresArePatchedAndRetired)
{
    auto gen = [](AsmBuilder &as) {
        SymId arr = as.global("arr", 4096, 64, false);
        as.la(reg::s0, arr);
        as.addi(reg::s0, reg::s0, 0x20);
        for (int i = 0; i < 50; ++i) {
            as.sw(reg::zero, 0x20, reg::s0);  // mispredicted store
            // Enough padding that the next store never lands in the
            // cycle right after a misprediction (the Section 5.5 rule
            // would force it non-speculative).
            for (int k = 0; k < 7; ++k)
                as.nop();
        }
        as.halt();
    };
    PipeStats st = runProgram(gen, facPipelineConfig());
    EXPECT_EQ(st.storeSpecFailures, 50u);
    EXPECT_EQ(st.stores, 50u);
    EXPECT_GT(st.extraAccesses, 0u);
}

TEST(Pipeline, RegRegSpeculationKnob)
{
    auto gen = [](AsmBuilder &as) {
        SymId arr = as.global("arr", 4096, 64, false);
        as.la(reg::s0, arr);
        as.li(reg::t1, 8);
        for (int i = 0; i < 50; ++i)
            as.lwRR(reg::t0, reg::s0, reg::t1);
        as.halt();
    };
    PipeStats on = runProgram(gen, facPipelineConfig(32, true));
    PipeStats off = runProgram(gen, facPipelineConfig(32, false));
    EXPECT_EQ(on.loadsSpeculated, 50u);
    EXPECT_EQ(off.loadsSpeculated, 0u);
}

TEST(Pipeline, IcacheMissesDelayFetch)
{
    // A long straight-line code sequence: every 8th group misses.
    auto gen = [](AsmBuilder &as) {
        for (int i = 0; i < 2000; ++i)
            as.add(reg::t0, reg::t1, reg::t2);
        as.halt();
    };
    PipeStats real = runProgram(gen, baselineConfig());
    PipelineConfig ideal = baselineConfig();
    ideal.perfectICache = true;
    PipeStats perfect = runProgram(gen, ideal);
    EXPECT_GT(real.icacheMisses, 200u);
    EXPECT_LT(perfect.cycles, real.cycles);
}

TEST(Pipeline, UnpipelinedDivideStallsIssue)
{
    auto gen = [](bool divides) {
        return [divides](AsmBuilder &as) {
            as.li(reg::t0, 1000);
            as.li(reg::t1, 3);
            for (int i = 0; i < 100; ++i) {
                if (divides)
                    as.div(reg::t2, reg::t0, reg::t1);
                else
                    as.add(reg::t2, reg::t0, reg::t1);
            }
            as.halt();
        };
    };
    PipeStats adds = runProgram(gen(false), baselineConfig());
    PipeStats divs = runProgram(gen(true), baselineConfig());
    // Independent divides still serialise on the single unpipelined unit.
    EXPECT_GT(divs.cycles, adds.cycles + 100 * 10);
}

TEST(Pipeline, StoreConflictStallKnob)
{
    // sw immediately followed by lw of the same word, repeatedly: with
    // conservative disambiguation the load waits for the buffered store
    // to drain; with the default forwarding model it does not.
    auto gen = [](AsmBuilder &as) {
        SymId arr = as.global("arr", 256, 64, false);
        as.la(reg::s0, arr);
        as.li(reg::s5, 100);
        LabelId top = as.newLabel();
        as.bind(top);
        as.sw(reg::s5, 0, reg::s0);
        as.lw(reg::t0, 0, reg::s0);
        as.addi(reg::s5, reg::s5, -1);
        as.bgtz(reg::s5, top);
        as.halt();
    };
    PipelineConfig fwd = baselineConfig();
    PipelineConfig conservative = baselineConfig();
    conservative.loadsStallOnStoreConflict = true;
    PipeStats a = runProgram(gen, fwd);
    PipeStats b = runProgram(gen, conservative);
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_GT(b.cycles, a.cycles + 50);
}

TEST(Pipeline, MaxInstsStopsEarly)
{
    auto gen = [](AsmBuilder &as) {
        as.li(reg::t9, 100000);
        LabelId top = as.newLabel();
        as.bind(top);
        as.addi(reg::t9, reg::t9, -1);
        as.bgtz(reg::t9, top);
        as.halt();
    };
    Program p;
    AsmBuilder as(p);
    gen(as);
    Memory mem;
    LinkedImage img = Linker(LinkPolicy{}).link(p, mem);
    Emulator emu(p, mem, img, 0x7fff5b88);
    Pipeline pipe(baselineConfig(), emu);
    PipeStats st = pipe.run(500);
    EXPECT_GE(st.insts, 500u);
    EXPECT_LT(st.insts, 600u);
}

// Regression (found by the differential fuzzer): when two loads issue
// in the same cycle and the *first* one mispredicts, the second load's
// issue event must not inherit the misprediction flag. The flag used to
// be derived from the shared lastMispredict{Cycle,WasLoad} state, which
// the first load had just set.
TEST(Pipeline, SameCycleLoadPairKeepsMispredictFlagsSeparate)
{
    Program p;
    AsmBuilder as(p);
    SymId buf = as.global("buf", 256, 64, false);
    as.la(reg::s0, buf);
    as.la(reg::s1, buf, 0x80);
    // Independent loads, so they dual-issue: the first with an offset
    // the FAC cannot absorb, the second with a trivially correct one.
    as.lw(reg::t0, -52, reg::s1);
    as.lw(reg::t1, 0, reg::s0);
    as.halt();
    Memory mem;
    LinkedImage img = Linker(LinkPolicy{}).link(p, mem);
    Emulator emu(p, mem, img, 0x7fff5b88);

    PipelineConfig cfg = facPipelineConfig();
    // Premise check: the offsets really split into fail + success.
    FastAddrCalc fac(cfg.fac);
    DataSym sym = p.syms()[0];
    ASSERT_FALSE(fac.predict(sym.addr + 0x80, -52, false).success);
    ASSERT_TRUE(fac.predict(sym.addr, 0, false).success);

    Pipeline pipe(cfg, emu);
    std::vector<Pipeline::IssueEvent> loads;
    pipe.onIssue([&](const Pipeline::IssueEvent &ev) {
        if (isLoad(ev.rec.inst.op))
            loads.push_back(ev);
    });
    pipe.run();

    ASSERT_EQ(loads.size(), 2u);
    ASSERT_EQ(loads[0].cycle, loads[1].cycle);  // they did dual-issue
    EXPECT_TRUE(loads[0].speculated);
    EXPECT_TRUE(loads[0].mispredicted);
    EXPECT_TRUE(loads[1].speculated);
    EXPECT_FALSE(loads[1].mispredicted);
}

TEST(PipelineDeathTest, FacGeometryMustMatchCache)
{
    PipelineConfig cfg = facPipelineConfig(32);
    cfg.fac.blockBits = 4;  // claims 16-byte blocks on a 32-byte cache
    Program p;
    AsmBuilder as(p);
    as.halt();
    Memory mem;
    LinkedImage img = Linker(LinkPolicy{}).link(p, mem);
    Emulator emu(p, mem, img, 0x7fff5b88);
    EXPECT_DEATH(Pipeline(cfg, emu), "field widths");
}

} // anonymous namespace
} // namespace facsim
