/**
 * @file
 * Tests for the differential co-simulation and the fuzzer built on it:
 * clean lockstep runs across the FAC configuration matrix, the fault
 * injection hook proving the divergence *reporting* itself works (names
 * the right instruction, PC and register), ddmin minimization, and
 * jobs-invariant batch generation.
 */

#include <gtest/gtest.h>

#include "sim/config.hh"
#include "util/rng.hh"
#include "verify/cosim.hh"
#include "verify/fuzz.hh"

namespace facsim
{
namespace
{

using verify::CosimOptions;
using verify::CosimResult;
using verify::FuzzItem;
using verify::runCosim;

/** A small deterministic workload exercising loads, stores and FP. */
void
smallProgram(AsmBuilder &as)
{
    SymId buf = as.global("buf", 4096, 64, false);
    as.la(reg::s0, buf);
    as.li(reg::t0, 1234);
    as.sw(reg::t0, 0, reg::s0);
    as.lw(reg::t1, 0, reg::s0);
    as.add(reg::t2, reg::t1, reg::t0);
    as.sw(reg::t2, 64, reg::s0);
    as.mtc1(2, reg::t2);
    as.cvtDW(2, 2);
    as.addD(4, 2, 2);
    as.sdc1(4, 128, reg::s0);
    as.lw(reg::t3, -32, reg::s0);  // in-bounds? s0 points at buf start
    as.halt();
}

TEST(Cosim, CleanRunAcrossConfigMatrix)
{
    // Note smallProgram's negative-offset load reads below the buffer;
    // both sides read the same linked image, so it stays clean.
    for (const verify::FuzzConfig &fc : verify::fuzzConfigMatrix()) {
        CosimOptions co;
        co.link = fc.link;
        CosimResult res = runCosim(smallProgram, fc.pipe, co);
        EXPECT_FALSE(res.diverged())
            << "config " << fc.name << ":\n" << res.report;
        EXPECT_TRUE(res.ranToHalt) << "config " << fc.name;
        EXPECT_EQ(res.stats.insts, res.refInsts) << "config " << fc.name;
    }
}

TEST(Cosim, FuzzProgramsRunCleanOnEveryConfig)
{
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        Rng rng(seed);
        std::vector<FuzzItem> items = verify::generateItems(rng, 120);
        for (const verify::FuzzConfig &fc : verify::fuzzConfigMatrix()) {
            CosimOptions co;
            co.link = fc.link;
            CosimResult res = runCosim(
                [&](AsmBuilder &as) { verify::materialize(as, items); },
                fc.pipe, co);
            EXPECT_FALSE(res.diverged())
                << "seed " << seed << " config " << fc.name << ":\n"
                << res.report;
            EXPECT_TRUE(res.ranToHalt);
        }
    }
}

TEST(Cosim, TruncatedRunSkipsFinalStateComparison)
{
    CosimOptions co;
    co.maxInsts = 5;
    CosimResult res = runCosim(smallProgram, baselineConfig(), co);
    EXPECT_FALSE(res.ranToHalt);
    EXPECT_FALSE(res.diverged()) << res.report;
    EXPECT_GE(res.stats.insts, 5u);
}

// The reporting machinery itself is under test here: inject a semantic
// bug on the reference side and assert the divergence names the right
// instruction, PC and register.
TEST(Cosim, InjectedCorruptionIsReportedAtTheRightInstruction)
{
    auto gen = [](AsmBuilder &as) {
        SymId buf = as.global("buf", 256, 64, false);
        as.la(reg::s0, buf);          // insts 1-2 (lui + ori)
        as.move(reg::t3, reg::s0);    // inst 3: t3 = buf
        as.lw(reg::t0, 0, reg::t3);   // inst 4: base register is $t3
        as.halt();
    };
    CosimOptions co;
    co.corruptAfterInst = 3;   // right after the reference executes move
    co.corruptReg = reg::t3;
    co.corruptXor = 0x40;      // keeps the corrupted address aligned

    CosimResult res = runCosim(gen, facPipelineConfig(), co);
    ASSERT_TRUE(res.diverged());
    const verify::Divergence &d = res.divergences[0];
    EXPECT_EQ(d.what, "baseVal($t3)");
    EXPECT_EQ(d.index, 3u);  // 0-based dynamic index of the load
    EXPECT_EQ(d.pc, Program::textBase + 3 * 4);
    // The rich report carries the disassembly window and the marker on
    // the diverging instruction.
    EXPECT_NE(res.report.find("baseVal($t3)"), std::string::npos);
    EXPECT_NE(res.report.find("lw"), std::string::npos);
    EXPECT_NE(res.report.find("-- code --"), std::string::npos);
}

TEST(Cosim, CorruptionAtHaltIsCaughtByFinalStateSweep)
{
    auto gen = [](AsmBuilder &as) {
        as.li(reg::t5, 77);
        as.li(reg::t4, 1);
        as.halt();
    };
    CosimOptions co;
    co.corruptAfterInst = 2;  // after li t4: $t5 is never touched again
    co.corruptReg = reg::t5;
    co.corruptXor = 0xff;
    CosimResult res = runCosim(gen, baselineConfig(), co);
    ASSERT_TRUE(res.diverged());
    EXPECT_EQ(res.divergences[0].what, "final-reg($t5)");
}

TEST(Fuzz, SplitmixIsIndexSensitive)
{
    EXPECT_NE(verify::splitmix64(2026, 0), verify::splitmix64(2026, 1));
    EXPECT_NE(verify::splitmix64(2026, 0), verify::splitmix64(2027, 0));
}

TEST(Fuzz, GenerationIsDeterministic)
{
    Rng a(99), b(99);
    std::vector<FuzzItem> ia = verify::generateItems(a, 100);
    std::vector<FuzzItem> ib = verify::generateItems(b, 100);
    EXPECT_EQ(ia, ib);
    EXPECT_EQ(verify::programDigest(ia), verify::programDigest(ib));
}

TEST(Fuzz, EverySubsequenceMaterializes)
{
    // The shrinker relies on any subsequence being a valid program:
    // spot-check prefixes, suffixes and a strided subset.
    Rng rng(7);
    std::vector<FuzzItem> items = verify::generateItems(rng, 60);
    auto materializes = [](const std::vector<FuzzItem> &v) {
        Program p;
        AsmBuilder as(p);
        verify::materialize(as, v);
        return p.numInsts() > 0;
    };
    EXPECT_TRUE(materializes({items.begin(), items.begin() + 13}));
    EXPECT_TRUE(materializes({items.begin() + 29, items.end()}));
    std::vector<FuzzItem> strided;
    for (size_t i = 0; i < items.size(); i += 3)
        strided.push_back(items[i]);
    EXPECT_TRUE(materializes(strided));
}

TEST(Fuzz, DdminFindsTheMinimalFailingSubset)
{
    // Synthetic predicate: "fails" iff both needles are present. The
    // needles are identified by unique x values.
    std::vector<FuzzItem> items(24);
    for (size_t i = 0; i < items.size(); ++i)
        items[i].x = static_cast<int32_t>(i);
    auto fails = [](const std::vector<FuzzItem> &v) {
        bool a = false, b = false;
        for (const FuzzItem &it : v) {
            a |= it.x == 5;
            b |= it.x == 17;
        }
        return a && b;
    };
    std::vector<FuzzItem> min = verify::ddminItems(items, fails, 1000);
    ASSERT_EQ(min.size(), 2u);
    EXPECT_EQ(min[0].x, 5);   // order is preserved
    EXPECT_EQ(min[1].x, 17);
}

TEST(Fuzz, DdminRespectsItsBudget)
{
    std::vector<FuzzItem> items(64);
    for (size_t i = 0; i < items.size(); ++i)
        items[i].x = static_cast<int32_t>(i);
    unsigned evals = 0;
    auto fails = [&](const std::vector<FuzzItem> &v) {
        ++evals;
        return v.size() >= 2;  // shrinks all the way to 2 if allowed
    };
    verify::ddminItems(items, fails, 10);
    EXPECT_LE(evals, 10u);
}

TEST(Fuzz, BatchDigestIsJobsInvariant)
{
    verify::FuzzOptions fo;
    fo.seed = 123;
    fo.count = 12;
    fo.minItems = 40;
    fo.maxItems = 80;
    fo.jobs = 1;
    verify::FuzzBatchResult one = verify::runFuzzBatch(fo);
    fo.jobs = 2;
    verify::FuzzBatchResult two = verify::runFuzzBatch(fo);
    EXPECT_EQ(one.digest, two.digest);
    EXPECT_EQ(one.casesRun, two.casesRun);
    EXPECT_EQ(one.divergingCases, 0u);
    EXPECT_EQ(two.divergingCases, 0u);
}

// Pinned minimal reproducer the fuzzer shrank the first store-buffer /
// FAC interaction failure down to: a masked negated register index load
// followed by a same-cycle constant-offset load. Before the
// per-access-flag and pending-conflict fixes this diverged under "hw"
// and "hw+disamb"; it must stay clean forever.
TEST(Fuzz, PinnedShrunkReproducerStaysClean)
{
    std::vector<FuzzItem> items(2);
    items[0].kind = FuzzItem::Kind::MemRRMasked;
    items[0].a = 1;        // load form
    items[0].b = 1;        // negate the index
    items[0].c = 2;        // base parked at buf+0x8000
    items[0].d = 3;
    items[0].x = 0x1ffc;   // word-aligned mask
    items[1].kind = FuzzItem::Kind::LoadConst;
    items[1].a = 4;        // lw
    items[1].b = 2;
    items[1].c = 0;        // base parked at buf+0
    items[1].x = 32;
    for (const verify::FuzzConfig &fc : verify::fuzzConfigMatrix()) {
        CosimOptions co;
        co.link = fc.link;
        CosimResult res = runCosim(
            [&](AsmBuilder &as) { verify::materialize(as, items); },
            fc.pipe, co);
        EXPECT_FALSE(res.diverged())
            << "config " << fc.name << ":\n" << res.report;
    }
}

} // anonymous namespace
} // namespace facsim
