/**
 * @file
 * Cross-validation of the gate-level Figure 4 circuit against the
 * behavioural FastAddrCalc: every signal, every failure cause and the
 * predicted address must agree for every input — the RTL-vs-model
 * equivalence check an implementation of the paper would carry.
 */

#include <gtest/gtest.h>

#include "core/fac_circuit.hh"
#include "util/rng.hh"

namespace facsim
{
namespace
{

void
checkAgreement(const FacConfig &cfg, uint32_t base, int32_t offset,
               bool from_reg)
{
    FastAddrCalc model(cfg);
    FacCircuit circuit(cfg);
    FacResult r = model.predict(base, offset, from_reg);
    ASSERT_TRUE(r.attempted);
    FacCircuitSignals s = circuit.evaluate(base, offset, from_reg);

    ASSERT_EQ(s.aPredSucceeded, r.success)
        << std::hex << "base=0x" << base << " ofs=" << std::dec << offset
        << " from_reg=" << from_reg;
    EXPECT_EQ(s.predictedAddr, r.predictedAddr);
    EXPECT_EQ(s.overflow, (r.failMask & facFailOverflow) != 0);
    EXPECT_EQ(s.genCarry, (r.failMask & facFailGenCarry) != 0);
    EXPECT_EQ(s.largeNegConst,
              (r.failMask & facFailLargeNegConst) != 0);
    EXPECT_EQ(s.negIndexReg, (r.failMask & facFailNegIndexReg) != 0);
    EXPECT_EQ(s.genCarryTag, (r.failMask & facFailGenCarryTag) != 0);
}

TEST(FacCircuit, MatchesFigure5Examples)
{
    FacConfig cfg{.blockBits = 4, .setBits = 14};
    checkAgreement(cfg, 0xac, 0, false);
    checkAgreement(cfg, 0x10000000, 0x984, false);
    checkAgreement(cfg, 0x7fff5b84, 0x66, false);
    checkAgreement(cfg, 0x7fff5b84, 0x16c, false);
}

TEST(FacCircuit, SignalLevelSemantics)
{
    FacCircuit c(FacConfig{.blockBits = 4, .setBits = 14});
    // Block-offset adder output and carry.
    FacCircuitSignals s = c.evaluate(0x0000000c, 0x7, false);
    EXPECT_EQ(s.blockOfs, (0xcu + 0x7u) & 0xf);
    EXPECT_TRUE(s.overflow);
    // GenCarry = AND of index fields reduced.
    s = c.evaluate(0x10, 0x10, false);
    EXPECT_TRUE(s.genCarry);
    EXPECT_FALSE(s.overflow);
    // Negative register offset raises NegFail only.
    s = c.evaluate(0x1000, -4, true);
    EXPECT_TRUE(s.negIndexReg);
    EXPECT_FALSE(s.aPredSucceeded);
    // Small negative constant within the block succeeds.
    s = c.evaluate(0x100c, -4, false);
    EXPECT_TRUE(s.aPredSucceeded);
    EXPECT_EQ(s.predictedAddr, 0x1008u);
}

struct CircuitGeometry
{
    unsigned blockBits;
    unsigned setBits;
    bool fullTagAdd;
};

class FacCircuitEquivalence
    : public ::testing::TestWithParam<CircuitGeometry>
{
};

TEST_P(FacCircuitEquivalence, RandomInputsAgreeOnEverySignal)
{
    CircuitGeometry g = GetParam();
    FacConfig cfg{.blockBits = g.blockBits, .setBits = g.setBits,
                  .fullTagAdd = g.fullTagAdd, .speculateRegReg = true};
    Rng rng(0x51617 ^ (g.blockBits << 16) ^ g.setBits);
    for (int i = 0; i < 30000; ++i) {
        uint32_t base = static_cast<uint32_t>(rng.next());
        int32_t ofs;
        switch (rng.range(4)) {
          case 0:
            ofs = static_cast<int32_t>(rng.range(256));
            break;
          case 1:
            ofs = static_cast<int32_t>(rng.range(1u << 16));
            break;
          case 2:
            ofs = static_cast<int32_t>(rng.next());  // any 32-bit value
            break;
          default:
            ofs = -static_cast<int32_t>(rng.range(1u << 16));
            break;
        }
        checkAgreement(cfg, base, ofs, rng.chance(0.3));
        if (::testing::Test::HasFatalFailure())
            return;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, FacCircuitEquivalence,
    ::testing::Values(CircuitGeometry{4, 14, true},
                      CircuitGeometry{5, 14, true},
                      CircuitGeometry{5, 14, false},
                      CircuitGeometry{6, 20, false},
                      CircuitGeometry{4, 10, true}),
    [](const ::testing::TestParamInfo<CircuitGeometry> &info) {
        return "B" + std::to_string(info.param.blockBits) + "_S" +
            std::to_string(info.param.setBits) +
            (info.param.fullTagAdd ? "_fulltag" : "_ortag");
    });

} // anonymous namespace
} // namespace facsim
