/**
 * @file
 * Layout property tests: over randomly generated symbol sets and all
 * link policies, the linker must produce non-overlapping, correctly
 * aligned objects with gp-reachable small data.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "asm/builder.hh"
#include "link/linker.hh"
#include "util/bits.hh"
#include "util/rng.hh"

namespace facsim
{
namespace
{

struct PolicyCase
{
    const char *name;
    LinkPolicy pol;
};

class LinkerPropertyTest : public ::testing::TestWithParam<PolicyCase>
{
};

TEST_P(LinkerPropertyTest, RandomLayoutsAreSound)
{
    LinkPolicy pol = GetParam().pol;
    Rng rng(0x11171 ^ (pol.alignStatics << 1) ^
            (pol.alignGlobalPointer << 2) ^ (pol.alignArraysToSize << 3));

    for (int trial = 0; trial < 60; ++trial) {
        Program p;
        AsmBuilder as(p);
        unsigned nsyms = 2 + static_cast<unsigned>(rng.range(30));
        uint64_t small_total = 0;
        for (unsigned i = 0; i < nsyms; ++i) {
            uint32_t size = 1 + static_cast<uint32_t>(rng.range(4000));
            uint32_t align = 1u << rng.range(4);
            // Keep the gp region within signed-16-bit reach.
            bool small = small_total + size < 24000 && rng.chance(0.5);
            if (small)
                small_total += size + 32;
            as.global("sym" + std::to_string(i), size, align, small);
        }
        as.halt();

        Memory mem;
        LinkedImage img = Linker(pol).link(p, mem);

        // 1. No two symbols overlap.
        std::vector<std::pair<uint64_t, uint64_t>> extents;
        for (const DataSym &s : p.syms())
            extents.emplace_back(s.addr, s.addr + s.size);
        std::sort(extents.begin(), extents.end());
        for (size_t i = 0; i + 1 < extents.size(); ++i) {
            EXPECT_LE(extents[i].second, extents[i + 1].first)
                << "overlap in trial " << trial;
        }

        // 2. Declared alignment is respected (policies only raise it).
        for (const DataSym &s : p.syms())
            EXPECT_EQ(s.addr % s.align, 0u) << s.name;

        // 3. Everything lives inside [dataBase, dataEnd), below the heap.
        for (const DataSym &s : p.syms()) {
            EXPECT_GE(s.addr, img.dataBase);
            EXPECT_LE(s.addr + s.size, img.dataEnd);
        }
        EXPECT_GE(img.heapBase, img.dataEnd);

        // 4. Small data is reachable with a signed 16-bit gp offset,
        //    positive under the alignment policy.
        for (const DataSym &s : p.syms()) {
            if (!s.smallData)
                continue;
            int64_t off = static_cast<int64_t>(s.addr) - img.gpValue;
            EXPECT_GE(off, -32768);
            EXPECT_LE(off + s.size, 32768);
            if (pol.alignGlobalPointer) {
                EXPECT_GE(off, 0);
            }
        }

        // 5. Policy-specific alignment guarantees.
        if (pol.alignStatics) {
            for (const DataSym &s : p.syms()) {
                uint32_t want = std::min(nextPow2(s.size),
                                         pol.maxStaticAlign);
                EXPECT_EQ(s.addr % want, 0u) << s.name;
            }
        }
        if (pol.alignArraysToSize) {
            // Applies to general data only — the gp region must stay
            // within the signed-16-bit window (checked above).
            for (const DataSym &s : p.syms()) {
                if (!s.smallData && s.size > pol.maxStaticAlign) {
                    uint32_t want = std::min(nextPow2(s.size),
                                             pol.largeAlignCap);
                    EXPECT_EQ(s.addr % want, 0u) << s.name;
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, LinkerPropertyTest,
    ::testing::Values(
        PolicyCase{"plain", LinkPolicy{}},
        PolicyCase{"gp", LinkPolicy{.alignGlobalPointer = true}},
        PolicyCase{"statics", LinkPolicy{.alignStatics = true}},
        PolicyCase{"support",
                   LinkPolicy{.alignGlobalPointer = true,
                              .alignStatics = true}},
        PolicyCase{"largealign",
                   LinkPolicy{.alignGlobalPointer = true,
                              .alignStatics = true,
                              .alignArraysToSize = true}}),
    [](const ::testing::TestParamInfo<PolicyCase> &info) {
        return info.param.name;
    });

} // anonymous namespace
} // namespace facsim
