/** @file Unit tests for the ASCII table formatter. */

#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hh"

namespace facsim
{
namespace
{

TEST(Table, AlignsColumns)
{
    Table t;
    t.header({"Name", "Val"});
    t.row({"a", "1"});
    t.row({"long-name", "12345"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("Name"), std::string::npos);
    EXPECT_NE(out.find("long-name"), std::string::npos);
    // Numeric cells right-align: "1" must be padded to width 5.
    EXPECT_NE(out.find("    1"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table t;
    t.header({"a", "b"});
    t.row({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, SeparatorAndRowCount)
{
    Table t;
    t.row({"x"});
    t.separator();
    t.row({"y"});
    EXPECT_EQ(t.numRows(), 2u);
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("-"), std::string::npos);
}

TEST(TableFmt, Formatters)
{
    EXPECT_EQ(fmtF(3.14159, 2), "3.14");
    EXPECT_EQ(fmtPct(0.125, 1), "12.5");
    EXPECT_EQ(fmtCount(123), "123");
    EXPECT_EQ(fmtCount(12'500), "12.5k");
    EXPECT_EQ(fmtCount(12'300'000), "12.3M");
}

} // anonymous namespace
} // namespace facsim
