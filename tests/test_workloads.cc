/**
 * @file
 * Workload integration tests: every one of the 19 kernels builds, links,
 * runs to completion on the emulator under both code-generation
 * policies, produces a deterministic checksum, and exhibits the
 * reference-behaviour class it was designed for.
 */

#include <gtest/gtest.h>

#include "cpu/profiler.hh"
#include "isa/encoding.hh"
#include "sim/experiment.hh"
#include "sim/machine.hh"

namespace facsim
{
namespace
{

BuildOptions
tiny(const CodeGenPolicy &pol)
{
    BuildOptions b;
    b.policy = pol;
    b.scale = 1;  // kernels are already modest; tests bound instructions
    return b;
}

uint32_t
resultOf(Machine &m)
{
    // Every kernel declares its checksum global as "result".
    for (const DataSym &s : m.program().syms()) {
        if (s.name == "result")
            return m.memory().read32(s.addr);
    }
    ADD_FAILURE() << "workload has no 'result' global";
    return 0;
}

class WorkloadTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(WorkloadTest, RunsToCompletionBaseline)
{
    Machine m(workload(GetParam()), tiny(CodeGenPolicy::baseline()));
    uint64_t n = m.emulator().run(50'000'000);
    EXPECT_TRUE(m.emulator().halted())
        << GetParam() << " did not halt after " << n << " insts";
    EXPECT_GT(n, 1000u) << "suspiciously small dynamic footprint";
}

TEST_P(WorkloadTest, RunsToCompletionWithSupport)
{
    Machine m(workload(GetParam()), tiny(CodeGenPolicy::withSupport()));
    m.emulator().run(50'000'000);
    EXPECT_TRUE(m.emulator().halted());
}

TEST_P(WorkloadTest, DeterministicChecksum)
{
    Machine a(workload(GetParam()), tiny(CodeGenPolicy::baseline()));
    Machine b(workload(GetParam()), tiny(CodeGenPolicy::baseline()));
    a.emulator().run(50'000'000);
    b.emulator().run(50'000'000);
    EXPECT_EQ(resultOf(a), resultOf(b));
}

TEST_P(WorkloadTest, EncodedImageDecodesBackToTheProgram)
{
    // Every instruction a kernel emits must survive the encode/decode
    // round trip through the linked binary image — this covers the
    // encoder for every operation the real workloads use.
    Machine m(workload(GetParam()), tiny(CodeGenPolicy::withSupport()));
    const Program &p = m.program();
    for (uint32_t i = 0; i < p.numInsts(); ++i) {
        Inst in;
        uint32_t word = m.memory().read32(Program::textBase + 4 * i);
        ASSERT_TRUE(decode(word, in)) << "inst " << i;
        EXPECT_EQ(in, p.inst(i)) << "inst " << i << " of " << GetParam();
    }
}

TEST_P(WorkloadTest, PerformsMemoryReferences)
{
    ProfileRequest req;
    req.workload = GetParam();
    req.build = tiny(CodeGenPolicy::baseline());
    ProfileResult r = runProfile(req);
    EXPECT_GT(r.insts, 1000u);
    EXPECT_GT(r.loads, 100u);
    EXPECT_GT(r.stores, 10u);
    // Load fractions partition.
    EXPECT_NEAR(r.fracGlobal + r.fracStack + r.fracGeneral, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadTest,
    ::testing::Values("compress", "eqntott", "espresso", "gcc", "sc",
                      "xlisp", "elvis", "grep", "perl", "yacr2", "alvinn",
                      "doduc", "ear", "mdljdp2", "mdljsp2", "ora", "spice",
                      "su2cor", "tomcatv"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        return std::string(info.param);
    });

TEST(WorkloadScaling, ScaleMultipliesWork)
{
    BuildOptions small = tiny(CodeGenPolicy::baseline());
    BuildOptions big = small;
    big.scale = 3;
    Machine a(workload("espresso"), small);
    Machine b(workload("espresso"), big);
    uint64_t na = a.emulator().run(200'000'000);
    uint64_t nb = b.emulator().run(200'000'000);
    EXPECT_TRUE(a.emulator().halted());
    EXPECT_TRUE(b.emulator().halted());
    EXPECT_GT(nb, 2 * na);
    EXPECT_LT(nb, 4 * na);
}

TEST(WorkloadScaling, SeedChangesDataNotStructure)
{
    BuildOptions s1 = tiny(CodeGenPolicy::baseline());
    BuildOptions s2 = s1;
    s2.seed = 0xfeedface;
    Machine a(workload("compress"), s1);
    Machine b(workload("compress"), s2);
    // Same program text, different data.
    EXPECT_EQ(a.program().numInsts(), b.program().numInsts());
    a.emulator().run(50'000'000);
    b.emulator().run(50'000'000);
    EXPECT_NE(resultOf(a), resultOf(b));
}

TEST(WorkloadRegistry, Has19EntriesIntFirst)
{
    const auto &all = allWorkloads();
    ASSERT_EQ(all.size(), 19u);
    unsigned n_fp = 0;
    for (const WorkloadInfo &w : all)
        n_fp += w.floatingPoint ? 1 : 0;
    EXPECT_EQ(n_fp, 9u);  // the paper's 9 FP codes
    EXPECT_STREQ(all.front().name, "compress");
    EXPECT_STREQ(all.back().name, "tomcatv");
}

TEST(WorkloadRegistryDeathTest, UnknownNameIsFatal)
{
    EXPECT_EXIT(workload("nonesuch"),
                ::testing::ExitedWithCode(1), "unknown workload");
}

TEST(WorkloadBehaviour, FpKernelsUseFpLoads)
{
    for (const char *name : {"alvinn", "tomcatv", "spice"}) {
        Machine m(workload(name), tiny(CodeGenPolicy::baseline()));
        Emulator &emu = m.emulator();
        ExecRecord rec;
        uint64_t fp_mem = 0, steps = 0;
        while (emu.step(&rec) && steps++ < 2'000'000) {
            if (isMem(rec.inst.op) && isFpMem(rec.inst.op))
                ++fp_mem;
        }
        EXPECT_GT(fp_mem, 1000u) << name;
    }
}

TEST(WorkloadBehaviour, GrepUsesRegRegAddressing)
{
    Machine m(workload("grep"), tiny(CodeGenPolicy::baseline()));
    Emulator &emu = m.emulator();
    ExecRecord rec;
    uint64_t rr = 0, steps = 0;
    while (emu.step(&rec) && steps++ < 2'000'000) {
        if (isMem(rec.inst.op) && rec.offsetFromReg)
            ++rr;
    }
    EXPECT_GT(rr, 1000u);
}

TEST(WorkloadBehaviour, DoducIsStackHeavy)
{
    ProfileRequest req;
    req.workload = "doduc";
    req.build = tiny(CodeGenPolicy::baseline());
    req.maxInsts = 1'000'000;
    ProfileResult r = runProfile(req);
    EXPECT_GT(r.fracStack, 0.3);
}

TEST(WorkloadBehaviour, XlispIsGeneralPointerHeavy)
{
    ProfileRequest req;
    req.workload = "xlisp";
    req.build = tiny(CodeGenPolicy::baseline());
    req.maxInsts = 1'000'000;
    ProfileResult r = runProfile(req);
    EXPECT_GT(r.fracGeneral, 0.8);
}

TEST(WorkloadBehaviour, SupportCutsMispredictions)
{
    // The headline Table 3 -> Table 4 effect, checked end-to-end on a
    // few kernels with very different behaviour classes.
    for (const char *name : {"compress", "doduc", "sc", "perl"}) {
        FacConfig fc{.blockBits = 5, .setBits = 14};
        ProfileRequest base;
        base.workload = name;
        base.build = tiny(CodeGenPolicy::baseline());
        base.facConfigs = {fc};
        base.maxInsts = 1'500'000;
        ProfileRequest sup = base;
        sup.build = tiny(CodeGenPolicy::withSupport());
        ProfileResult rb = runProfile(base);
        ProfileResult rs = runProfile(sup);
        EXPECT_LT(rs.fac[0].loadFailRate(), rb.fac[0].loadFailRate())
            << name;
    }
}

} // anonymous namespace
} // namespace facsim
