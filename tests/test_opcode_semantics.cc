/**
 * @file
 * Table-driven edge-case tests of instruction semantics: wrap-around
 * arithmetic, signed/unsigned comparison boundaries, logical-immediate
 * zero extension, shift corner cases and FP conversion saturation —
 * the places where a C++-hosted emulator most easily diverges from the
 * ISA definition.
 */

#include <gtest/gtest.h>

#include "asm/builder.hh"
#include "cpu/emulator.hh"
#include "link/linker.hh"

namespace facsim
{
namespace
{

/** Run a tiny two-source program and return the destination value. */
uint32_t
evalR(Op op, uint32_t a, uint32_t b)
{
    Program p;
    AsmBuilder as(p);
    as.li(reg::t0, static_cast<int32_t>(a));
    as.li(reg::t1, static_cast<int32_t>(b));
    p.append(Inst{.op = op, .rd = reg::t2, .rs = reg::t0, .rt = reg::t1});
    as.halt();
    Memory mem;
    LinkedImage img = Linker(LinkPolicy{}).link(p, mem);
    Emulator emu(p, mem, img, 0x7fff5b88);
    emu.run(100);
    return emu.intReg(reg::t2);
}

uint32_t
evalI(Op op, uint32_t a, int32_t imm)
{
    Program p;
    AsmBuilder as(p);
    as.li(reg::t0, static_cast<int32_t>(a));
    p.append(Inst{.op = op, .rs = reg::t0, .rt = reg::t2, .imm = imm});
    as.halt();
    Memory mem;
    LinkedImage img = Linker(LinkPolicy{}).link(p, mem);
    Emulator emu(p, mem, img, 0x7fff5b88);
    emu.run(100);
    return emu.intReg(reg::t2);
}

TEST(OpcodeSemantics, AddSubWrapAround)
{
    EXPECT_EQ(evalR(Op::ADD, 0xffffffffu, 1), 0u);
    EXPECT_EQ(evalR(Op::ADD, 0x7fffffffu, 1), 0x80000000u);
    EXPECT_EQ(evalR(Op::SUB, 0, 1), 0xffffffffu);
    EXPECT_EQ(evalR(Op::SUB, 0x80000000u, 1), 0x7fffffffu);
}

TEST(OpcodeSemantics, SignedVsUnsignedCompare)
{
    // -1 < 1 signed, but 0xffffffff > 1 unsigned.
    EXPECT_EQ(evalR(Op::SLT, 0xffffffffu, 1), 1u);
    EXPECT_EQ(evalR(Op::SLTU, 0xffffffffu, 1), 0u);
    // INT_MIN boundary.
    EXPECT_EQ(evalR(Op::SLT, 0x80000000u, 0x7fffffffu), 1u);
    EXPECT_EQ(evalR(Op::SLTU, 0x80000000u, 0x7fffffffu), 0u);
    EXPECT_EQ(evalR(Op::SLT, 5, 5), 0u);
}

TEST(OpcodeSemantics, SltiBoundaries)
{
    EXPECT_EQ(evalI(Op::SLTI, 0xffffffffu, 0), 1u);   // -1 < 0
    EXPECT_EQ(evalI(Op::SLTI, 0, -1), 0u);
    // SLTIU compares against the sign-extended immediate, unsigned:
    // imm -1 becomes 0xffffffff, the largest unsigned value.
    EXPECT_EQ(evalI(Op::SLTIU, 5, -1), 1u);
    EXPECT_EQ(evalI(Op::SLTIU, 0xffffffffu, -1), 0u);
}

TEST(OpcodeSemantics, LogicalImmediatesZeroExtend)
{
    // andi/ori/xori use a zero-extended 16-bit immediate.
    EXPECT_EQ(evalI(Op::ANDI, 0xffffffffu, 0xffff), 0x0000ffffu);
    EXPECT_EQ(evalI(Op::ORI, 0xffff0000u, 0x8000), 0xffff8000u);
    EXPECT_EQ(evalI(Op::XORI, 0x0000ffffu, 0xffff), 0u);
}

TEST(OpcodeSemantics, MulKeepsLow32Bits)
{
    EXPECT_EQ(evalR(Op::MUL, 0x10000u, 0x10000u), 0u);
    EXPECT_EQ(evalR(Op::MUL, 0xffffffffu, 0xffffffffu), 1u);
    EXPECT_EQ(evalR(Op::MUL, 1000, 1000), 1000000u);
}

TEST(OpcodeSemantics, DivisionTruncatesTowardZero)
{
    EXPECT_EQ(static_cast<int32_t>(evalR(Op::DIV, 7, 2)), 3);
    EXPECT_EQ(static_cast<int32_t>(
                  evalR(Op::DIV, static_cast<uint32_t>(-7), 2)), -3);
    EXPECT_EQ(static_cast<int32_t>(
                  evalR(Op::REM, static_cast<uint32_t>(-7), 2)), -1);
    // INT_MIN / -1 is defined to wrap in this simulator.
    EXPECT_EQ(evalR(Op::DIV, 0x80000000u, 0xffffffffu), 0x80000000u);
    EXPECT_EQ(evalR(Op::REM, 0x80000000u, 0xffffffffu), 0u);
}

TEST(OpcodeSemantics, VariableShiftsUseLowFiveBits)
{
    EXPECT_EQ(evalR(Op::SLLV, 1, 33), 2u);     // 33 & 31 == 1
    EXPECT_EQ(evalR(Op::SRLV, 0x80000000u, 32), 0x80000000u);
    EXPECT_EQ(evalR(Op::SRAV, 0x80000000u, 31), 0xffffffffu);
}

TEST(OpcodeSemantics, NorGivesComplement)
{
    EXPECT_EQ(evalR(Op::NOR, 0, 0), 0xffffffffu);
    EXPECT_EQ(evalR(Op::NOR, 0xf0f0f0f0u, 0x0f0f0f0fu), 0u);
}

TEST(OpcodeSemantics, LuiPlacesHighHalf)
{
    Program p;
    AsmBuilder as(p);
    as.lui(reg::t0, 0x8000);
    as.halt();
    Memory mem;
    LinkedImage img = Linker(LinkPolicy{}).link(p, mem);
    Emulator emu(p, mem, img, 0x7fff5b88);
    emu.run(10);
    EXPECT_EQ(emu.intReg(reg::t0), 0x80000000u);
}

TEST(OpcodeSemantics, FpConversionSaturates)
{
    // cvt.w.d of a huge double must not invoke UB; it saturates.
    Program p;
    AsmBuilder as(p);
    as.li(reg::t0, 100000);
    as.mtc1(2, reg::t0);
    as.cvtDW(2, 2);
    as.mulD(2, 2, 2);      // 1e10 > INT32_MAX
    as.cvtWD(4, 2);
    as.mfc1(reg::t1, 4);
    as.negD(6, 2);         // -1e10 < INT32_MIN
    as.cvtWD(6, 6);
    as.mfc1(reg::t2, 6);
    as.halt();
    Memory mem;
    LinkedImage img = Linker(LinkPolicy{}).link(p, mem);
    Emulator emu(p, mem, img, 0x7fff5b88);
    emu.run(100);
    EXPECT_EQ(static_cast<int32_t>(emu.intReg(reg::t1)), INT32_MAX);
    EXPECT_EQ(static_cast<int32_t>(emu.intReg(reg::t2)), INT32_MIN);
}

TEST(OpcodeSemantics, BranchBoundaryConditions)
{
    // blez/bgez at exactly zero.
    auto taken = [](Op op, uint32_t v) {
        Program p;
        AsmBuilder as(p);
        as.li(reg::t0, static_cast<int32_t>(v));
        LabelId yes = as.newLabel();
        uint32_t idx = p.append(Inst{.op = op, .rs = reg::t0});
        p.addFixup({Fixup::Kind::Branch, idx, yes, 0});
        as.li(reg::t1, 0);
        as.halt();
        as.bind(yes);
        as.li(reg::t1, 1);
        as.halt();
        Memory mem;
        LinkedImage img = Linker(LinkPolicy{}).link(p, mem);
        Emulator emu(p, mem, img, 0x7fff5b88);
        emu.run(100);
        return emu.intReg(reg::t1) == 1;
    };
    EXPECT_TRUE(taken(Op::BLEZ, 0));
    EXPECT_FALSE(taken(Op::BGTZ, 0));
    EXPECT_FALSE(taken(Op::BLTZ, 0));
    EXPECT_TRUE(taken(Op::BGEZ, 0));
    EXPECT_TRUE(taken(Op::BLTZ, 0x80000000u));
    EXPECT_FALSE(taken(Op::BGEZ, 0x80000000u));
}

} // anonymous namespace
} // namespace facsim
