/**
 * @file
 * Functional emulator tests: arithmetic semantics, memory operations in
 * all three addressing modes, control flow, FP, and ExecRecord contents
 * (which feed the FAC predictor and the profiler).
 */

#include <gtest/gtest.h>

#include "asm/builder.hh"
#include "cpu/emulator.hh"
#include "link/linker.hh"

namespace facsim
{
namespace
{

struct Harness
{
    Program p;
    AsmBuilder as{p};
    Memory mem;
    LinkedImage img;
    std::unique_ptr<Emulator> emu;

    void
    finish()
    {
        img = Linker(LinkPolicy{}).link(p, mem);
        emu = std::make_unique<Emulator>(p, mem, img, 0x7fff5b88);
    }

    Emulator &
    run(uint64_t max = 100000)
    {
        emu->run(max);
        return *emu;
    }
};

TEST(Emulator, ArithmeticBasics)
{
    Harness h;
    h.as.li(reg::t0, 7);
    h.as.li(reg::t1, -3);
    h.as.add(reg::t2, reg::t0, reg::t1);   // 4
    h.as.sub(reg::t3, reg::t0, reg::t1);   // 10
    h.as.mul(reg::t4, reg::t0, reg::t1);   // -21
    h.as.div(reg::t5, reg::t0, reg::t1);   // -2 (trunc toward zero)
    h.as.rem(reg::t6, reg::t0, reg::t1);   // 1
    h.as.slt(reg::t7, reg::t1, reg::t0);   // 1
    h.as.sltu(reg::t8, reg::t1, reg::t0);  // 0 (unsigned -3 is huge)
    h.as.halt();
    h.finish();
    Emulator &e = h.run();
    EXPECT_EQ(e.intReg(reg::t2), 4u);
    EXPECT_EQ(e.intReg(reg::t3), 10u);
    EXPECT_EQ(static_cast<int32_t>(e.intReg(reg::t4)), -21);
    EXPECT_EQ(static_cast<int32_t>(e.intReg(reg::t5)), -2);
    EXPECT_EQ(e.intReg(reg::t6), 1u);
    EXPECT_EQ(e.intReg(reg::t7), 1u);
    EXPECT_EQ(e.intReg(reg::t8), 0u);
}

TEST(Emulator, DivByZeroDefinedAsZero)
{
    Harness h;
    h.as.li(reg::t0, 5);
    h.as.li(reg::t1, 0);
    h.as.div(reg::t2, reg::t0, reg::t1);
    h.as.rem(reg::t3, reg::t0, reg::t1);
    h.as.halt();
    h.finish();
    Emulator &e = h.run();
    EXPECT_EQ(e.intReg(reg::t2), 0u);
    EXPECT_EQ(e.intReg(reg::t3), 0u);
}

TEST(Emulator, ShiftsAndLogic)
{
    Harness h;
    h.as.li(reg::t0, -8);
    h.as.sra(reg::t1, reg::t0, 2);         // -2
    h.as.srl(reg::t2, reg::t0, 28);        // 0xf
    h.as.sll(reg::t3, reg::t0, 1);         // -16
    h.as.li(reg::t4, 3);
    h.as.sllv(reg::t5, reg::t4, reg::t4);  // 24
    h.as.nor(reg::t6, reg::zero, reg::zero);  // 0xffffffff
    h.as.halt();
    h.finish();
    Emulator &e = h.run();
    EXPECT_EQ(static_cast<int32_t>(e.intReg(reg::t1)), -2);
    EXPECT_EQ(e.intReg(reg::t2), 0xfu);
    EXPECT_EQ(static_cast<int32_t>(e.intReg(reg::t3)), -16);
    EXPECT_EQ(e.intReg(reg::t5), 24u);
    EXPECT_EQ(e.intReg(reg::t6), 0xffffffffu);
}

TEST(Emulator, ZeroRegisterIsImmutable)
{
    Harness h;
    h.as.li(reg::t0, 9);
    h.as.add(reg::zero, reg::t0, reg::t0);
    h.as.halt();
    h.finish();
    EXPECT_EQ(h.run().intReg(reg::zero), 0u);
}

TEST(Emulator, LoadStoreWidthsAndSigns)
{
    Harness h;
    SymId buf = h.as.global("buf", 16, 8, false);
    h.as.la(reg::s0, buf);
    h.as.li(reg::t0, -1);
    h.as.sb(reg::t0, 0, reg::s0);
    h.as.lb(reg::t1, 0, reg::s0);          // -1 sign-extended
    h.as.lbu(reg::t2, 0, reg::s0);         // 255
    h.as.li(reg::t3, 0x8000);
    h.as.sh_(reg::t3, 4, reg::s0);
    h.as.lh(reg::t4, 4, reg::s0);          // sign-extended
    h.as.lhu(reg::t5, 4, reg::s0);         // 0x8000
    h.as.li(reg::t6, 0x12345678);
    h.as.sw(reg::t6, 8, reg::s0);
    h.as.lw(reg::t7, 8, reg::s0);
    h.as.halt();
    h.finish();
    Emulator &e = h.run();
    EXPECT_EQ(e.intReg(reg::t1), 0xffffffffu);
    EXPECT_EQ(e.intReg(reg::t2), 255u);
    EXPECT_EQ(e.intReg(reg::t4), 0xffff8000u);
    EXPECT_EQ(e.intReg(reg::t5), 0x8000u);
    EXPECT_EQ(e.intReg(reg::t7), 0x12345678u);
}

TEST(Emulator, RegRegAndPostIncAddressing)
{
    Harness h;
    SymId buf = h.as.global("buf", 32, 8, false);
    h.as.la(reg::s0, buf);
    h.as.li(reg::t0, 77);
    h.as.li(reg::t1, 12);                  // index
    h.as.swRR(reg::t0, reg::s0, reg::t1);  // buf[12..15] = 77
    h.as.lw(reg::t2, 12, reg::s0);
    // Post-increment walk.
    h.as.move(reg::s1, reg::s0);
    h.as.li(reg::t3, 11);
    h.as.swPost(reg::t3, reg::s1, 4);
    h.as.li(reg::t3, 22);
    h.as.swPost(reg::t3, reg::s1, 4);
    h.as.lw(reg::t4, 0, reg::s0);
    h.as.lw(reg::t5, 4, reg::s0);
    h.as.halt();
    h.finish();
    Emulator &e = h.run();
    EXPECT_EQ(e.intReg(reg::t2), 77u);
    EXPECT_EQ(e.intReg(reg::t4), 11u);
    EXPECT_EQ(e.intReg(reg::t5), 22u);
    // Base register advanced twice.
    EXPECT_EQ(e.intReg(reg::s1), e.intReg(reg::s0) + 8);
}

TEST(Emulator, PostDecrementWalksBackwards)
{
    Harness h;
    SymId buf = h.as.global("buf", 16, 8, false);
    h.as.la(reg::s0, buf, 8);
    h.as.li(reg::t0, 5);
    h.as.swPost(reg::t0, reg::s0, -4);
    h.as.swPost(reg::t0, reg::s0, -4);
    h.as.halt();
    h.finish();
    Emulator &e = h.run();
    uint32_t base = h.p.syms()[0].addr;
    EXPECT_EQ(h.mem.read32(base + 8), 5u);
    EXPECT_EQ(h.mem.read32(base + 4), 5u);
    EXPECT_EQ(e.intReg(reg::s0), base);
}

TEST(Emulator, ControlFlowLoop)
{
    Harness h;
    h.as.li(reg::t0, 10);
    h.as.li(reg::t1, 0);
    LabelId top = h.as.newLabel();
    h.as.bind(top);
    h.as.add(reg::t1, reg::t1, reg::t0);
    h.as.addi(reg::t0, reg::t0, -1);
    h.as.bgtz(reg::t0, top);
    h.as.halt();
    h.finish();
    EXPECT_EQ(h.run().intReg(reg::t1), 55u);  // 10+9+...+1
}

TEST(Emulator, JalAndJrLinkProperly)
{
    Harness h;
    LabelId fn = h.as.newLabel();
    h.as.jal(fn);
    h.as.li(reg::t1, 1);
    h.as.halt();
    h.as.bind(fn);
    h.as.li(reg::t0, 42);
    h.as.jr(reg::ra);
    h.finish();
    Emulator &e = h.run();
    EXPECT_EQ(e.intReg(reg::t0), 42u);
    EXPECT_EQ(e.intReg(reg::t1), 1u);  // returned and continued
}

TEST(Emulator, FpArithmeticAndCompare)
{
    Harness h;
    h.as.li(reg::t0, 3);
    h.as.mtc1(1, reg::t0);
    h.as.cvtDW(1, 1);                       // f1 = 3.0
    h.as.li(reg::t0, 4);
    h.as.mtc1(2, reg::t0);
    h.as.cvtDW(2, 2);                       // f2 = 4.0
    h.as.mulD(3, 1, 2);                     // 12
    h.as.addD(3, 3, 1);                     // 15
    h.as.divD(3, 3, 2);                     // 3.75
    h.as.sqrtD(4, 2);                       // 2
    h.as.cLtD(1, 2);                        // 3 < 4 -> true
    LabelId taken = h.as.newLabel();
    h.as.bc1t(taken);
    h.as.li(reg::t5, 111);
    h.as.halt();
    h.as.bind(taken);
    h.as.li(reg::t5, 222);
    h.as.cvtWD(5, 3);                       // trunc(3.75) = 3
    h.as.mfc1(reg::t6, 5);
    h.as.halt();
    h.finish();
    Emulator &e = h.run();
    EXPECT_EQ(e.intReg(reg::t5), 222u);
    EXPECT_DOUBLE_EQ(e.fpReg(4), 2.0);
    EXPECT_EQ(e.intReg(reg::t6), 3u);
}

TEST(Emulator, SingleVsDoubleMemory)
{
    Harness h;
    SymId buf = h.as.global("buf", 16, 8, false);
    h.as.la(reg::s0, buf);
    h.as.li(reg::t0, 5);
    h.as.mtc1(1, reg::t0);
    h.as.cvtDW(1, 1);                       // 5.0
    h.as.sdc1(1, 0, reg::s0);
    h.as.ldc1(2, 0, reg::s0);
    h.as.swc1(2, 8, reg::s0);               // narrowed to float
    h.as.lwc1(3, 8, reg::s0);               // widened back
    h.as.halt();
    h.finish();
    Emulator &e = h.run();
    EXPECT_DOUBLE_EQ(e.fpReg(2), 5.0);
    EXPECT_DOUBLE_EQ(e.fpReg(3), 5.0);
}

TEST(Emulator, ExecRecordForMemOps)
{
    Harness h;
    SymId v = h.as.global("v", 4, 4, true);
    h.as.lwGp(reg::t0, v);
    h.as.li(reg::t1, 8);
    h.as.la(reg::s0, v);
    h.as.lwRR(reg::t2, reg::s0, reg::zero);
    h.as.halt();
    h.finish();

    ExecRecord rec;
    h.emu->step(&rec);  // lwGp
    EXPECT_EQ(rec.inst.op, Op::LW);
    EXPECT_EQ(rec.baseVal, h.img.gpValue);
    EXPECT_FALSE(rec.offsetFromReg);
    EXPECT_EQ(rec.effAddr, h.p.syms()[0].addr);

    h.emu->step(&rec);            // li
    h.emu->step(&rec);            // la (lui)
    h.emu->step(&rec);            // la (ori)
    h.emu->step(&rec);            // lwRR
    EXPECT_TRUE(rec.offsetFromReg);
    EXPECT_EQ(rec.offsetVal, 0);
    EXPECT_EQ(rec.effAddr, h.p.syms()[0].addr);
}

TEST(Emulator, ExecRecordForBranches)
{
    Harness h;
    LabelId skip = h.as.newLabel();
    h.as.li(reg::t0, 1);
    h.as.bgtz(reg::t0, skip);
    h.as.nop();
    h.as.bind(skip);
    h.as.halt();
    h.finish();
    ExecRecord rec;
    h.emu->step(&rec);  // li
    h.emu->step(&rec);  // bgtz
    EXPECT_TRUE(rec.taken);
    EXPECT_EQ(rec.nextPc, Program::textBase + 3 * 4);
}

TEST(EmulatorDeathTest, UnalignedAccessPanics)
{
    Harness h;
    h.as.li(reg::s0, 0x10000001);
    h.as.lw(reg::t0, 0, reg::s0);
    h.as.halt();
    h.finish();
    EXPECT_DEATH(h.run(), "unaligned");
}

TEST(Emulator, HaltStopsExecution)
{
    Harness h;
    h.as.li(reg::t0, 1);
    h.as.halt();
    h.as.li(reg::t0, 2);  // must never run
    h.finish();
    Emulator &e = h.run();
    EXPECT_TRUE(e.halted());
    EXPECT_EQ(e.intReg(reg::t0), 1u);
    EXPECT_EQ(e.instCount(), 2u);
    ExecRecord rec;
    EXPECT_FALSE(e.step(&rec));
}

} // anonymous namespace
} // namespace facsim
