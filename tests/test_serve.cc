/**
 * @file
 * Experiment-service tests: the request/result codec round-trips
 * canonically, malformed wire input (truncated frames, hostile length
 * prefixes, bad magic/version, unknown kinds) surfaces as clean
 * protocol errors rather than aborts, the result cache obeys
 * hit/miss/LRU/persistence semantics and never serves across a
 * fingerprint mismatch, and the daemon end-to-end (unix socket and
 * --stdio subprocess) answers warm repeats byte-identically to the
 * cold run. The load generator's response digest is invariant under
 * --concurrency.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "obs/sampler.hh"
#include "serve/cache.hh"
#include "serve/client.hh"
#include "serve/loadgen.hh"
#include "serve/server.hh"
#include "serve/wire.hh"
#include "sim/config.hh"
#include "sim/experiment.hh"
#include "sim/request_codec.hh"
#include "util/serialize.hh"

using namespace facsim;
namespace sv = facsim::serve;

namespace
{

std::string
tmpPath(const char *name)
{
    return testing::TempDir() + "/" + name;
}

ProfileRequest
smallProfileRequest()
{
    ProfileRequest req;
    req.workload = "espresso";
    req.facConfigs = {facConfigFor(CacheConfig{16 * 1024, 32, 1, 6}),
                      facConfigFor(CacheConfig{16 * 1024, 16, 1, 6})};
    req.ltbConfigs = {{256, LtbPolicy::Stride}};
    req.withTlb = true;
    req.maxInsts = 20000;
    return req;
}

TimingRequest
smallTimingRequest()
{
    TimingRequest req;
    req.workload = "espresso";
    req.pipe = facPipelineConfig(32);
    req.maxInsts = 20000;
    return req;
}

std::string
encodeProfileBody(const ProfileRequest &req)
{
    ser::Writer w;
    encodeProfileRequest(w, req);
    return w.data();
}

std::string
encodeTimingBody(const TimingRequest &req)
{
    ser::Writer w;
    encodeTimingRequest(w, req);
    return w.data();
}

/** Spin until a daemon accepts connections on @p path. */
int
connectWithRetry(const std::string &path)
{
    std::string err;
    for (int i = 0; i < 200; ++i) {
        int fd = sv::connectUnix(path, &err);
        if (fd >= 0)
            return fd;
        usleep(20 * 1000);
    }
    ADD_FAILURE() << "cannot connect to " << path << ": " << err;
    return -1;
}

/** Start serveMain on a thread; join() returns its exit code. */
class DaemonFixture
{
  public:
    explicit DaemonFixture(const sv::ServerOptions &opts)
        : th_([this, opts] { rc_ = sv::serveMain(opts); })
    {
    }

    int
    join()
    {
        th_.join();
        return rc_;
    }

  private:
    int rc_ = -1;
    std::thread th_;
};

} // namespace

// ---------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------

TEST(ServeCodec, ProfileRequestRoundTripIsCanonical)
{
    ProfileRequest req = smallProfileRequest();
    std::string bytes = encodeProfileBody(req);

    ser::TryReader r(bytes.data(), bytes.size());
    ProfileRequest back;
    ASSERT_TRUE(decodeProfileRequest(r, &back));
    EXPECT_TRUE(r.atEnd());

    EXPECT_EQ(back.workload, req.workload);
    EXPECT_EQ(back.facConfigs.size(), 2u);
    EXPECT_EQ(back.facConfigs[1].blockBits, req.facConfigs[1].blockBits);
    EXPECT_EQ(back.ltbConfigs.size(), 1u);
    EXPECT_EQ(back.ltbConfigs[0].policy, LtbPolicy::Stride);
    EXPECT_TRUE(back.withTlb);
    EXPECT_EQ(back.maxInsts, 20000u);

    // Canonical: decode-then-encode reproduces the bytes exactly.
    EXPECT_EQ(encodeProfileBody(back), bytes);
}

TEST(ServeCodec, TimingRequestRoundTripIsCanonical)
{
    TimingRequest req = smallTimingRequest();
    req.sampling.period = 50000;
    req.sampling.detail = 1000;
    req.sampling.warmup = 2000;
    std::string bytes = encodeTimingBody(req);

    ser::TryReader r(bytes.data(), bytes.size());
    TimingRequest back;
    ASSERT_TRUE(decodeTimingRequest(r, &back));
    EXPECT_TRUE(r.atEnd());

    EXPECT_EQ(back.workload, req.workload);
    EXPECT_EQ(back.pipe.fac.blockBits, req.pipe.fac.blockBits);
    EXPECT_EQ(back.sampling.period, 50000u);
    EXPECT_EQ(configFingerprint(back.pipe), configFingerprint(req.pipe));
    EXPECT_EQ(encodeTimingBody(back), bytes);
}

TEST(ServeCodec, TraceAndRingAreNotPartOfTheEncoding)
{
    TimingRequest a = smallTimingRequest();
    TimingRequest b = smallTimingRequest();
    b.trace.path = "/tmp/somewhere.konata";
    b.historyRing = 64;
    // Host-side observability must not split cache entries.
    EXPECT_EQ(encodeTimingBody(a), encodeTimingBody(b));
}

TEST(ServeCodec, ResultsRoundTripThroughTheCodec)
{
    ProfileResult pr = runProfile(smallProfileRequest());
    ser::Writer w;
    encodeProfileResult(w, pr);
    ser::TryReader r(w.data().data(), w.data().size());
    ProfileResult back;
    ASSERT_TRUE(decodeProfileResult(r, &back));
    EXPECT_TRUE(r.atEnd());
    EXPECT_EQ(back.insts, pr.insts);
    EXPECT_EQ(back.loads, pr.loads);
    ASSERT_EQ(back.fac.size(), pr.fac.size());
    EXPECT_EQ(back.fac[0].loadFailures, pr.fac[0].loadFailures);
    EXPECT_EQ(back.fac[0].causeCounts, pr.fac[0].causeCounts);
    EXPECT_EQ(back.tlbMisses, pr.tlbMisses);

    ser::Writer w2;
    encodeProfileResult(w2, back);
    EXPECT_EQ(w2.data(), w.data());

    TimingResult tr = runTiming(smallTimingRequest());
    ser::Writer tw;
    encodeTimingResult(tw, tr);
    ser::TryReader tr2(tw.data().data(), tw.data().size());
    TimingResult tback;
    ASSERT_TRUE(decodeTimingResult(tr2, &tback));
    EXPECT_TRUE(tr2.atEnd());
    EXPECT_EQ(tback.stats.cycles, tr.stats.cycles);
    EXPECT_EQ(tback.stats.insts, tr.stats.insts);
    ASSERT_EQ(tback.hier.levels.size(), tr.hier.levels.size());
    EXPECT_EQ(tback.hier.levels[0].misses, tr.hier.levels[0].misses);

    ser::Writer tw2;
    encodeTimingResult(tw2, tback);
    EXPECT_EQ(tw2.data(), tw.data());
}

TEST(ServeCodec, TruncatedBodyFailsCleanly)
{
    std::string bytes = encodeProfileBody(smallProfileRequest());
    for (size_t cut : {size_t(0), size_t(1), bytes.size() / 2,
                       bytes.size() - 1}) {
        ser::TryReader r(bytes.data(), cut);
        ProfileRequest back;
        EXPECT_FALSE(decodeProfileRequest(r, &back)) << "cut=" << cut;
        EXPECT_FALSE(r.ok());
        EXPECT_FALSE(r.error().empty());
    }
}

TEST(ServeCodec, HostileVectorLengthIsRejected)
{
    // workload="x", then a facConfigs count of 2^32-1: the decoder must
    // reject the count instead of attempting a 4-billion-element loop.
    ser::Writer w;
    w.str("x");
    w.u64(0);  // build: policy... — actually policy comes first; build
    // the simplest hostile stream: valid workload, then garbage counts.
    std::string bytes = w.data();
    bytes.resize(bytes.size() + 64, '\xff');
    ser::TryReader r(bytes.data(), bytes.size());
    ProfileRequest back;
    EXPECT_FALSE(decodeProfileRequest(r, &back));
    EXPECT_FALSE(r.ok());
}

TEST(ServeCodec, WorkloadFingerprintSeparatesIdentities)
{
    BuildOptions base;
    uint64_t a = workloadFingerprint("espresso", base);
    EXPECT_EQ(a, workloadFingerprint("espresso", base));
    EXPECT_NE(a, workloadFingerprint("eqntott", base));

    BuildOptions scaled = base;
    scaled.scale = 2;
    EXPECT_NE(a, workloadFingerprint("espresso", scaled));

    BuildOptions support = base;
    support.policy = CodeGenPolicy::withSupport();
    EXPECT_NE(a, workloadFingerprint("espresso", support));
}

TEST(ServeCodec, ConfigFingerprintSeparatesTimingConfigs)
{
    uint64_t base = configFingerprint(baselineConfig(32));
    EXPECT_EQ(base, configFingerprint(baselineConfig(32)));
    EXPECT_NE(base, configFingerprint(baselineConfig(16)));
    EXPECT_NE(base, configFingerprint(facPipelineConfig(32)));
    EXPECT_NE(base, configFingerprint(agiConfig(32)));

    PipelineConfig tweaked = baselineConfig(32);
    tweaked.fpDivLat += 1;
    EXPECT_NE(base, configFingerprint(tweaked));
}

// ---------------------------------------------------------------------
// Wire envelopes and framing
// ---------------------------------------------------------------------

TEST(ServeWire, RequestEnvelopeRoundTrip)
{
    std::string payload =
        sv::encodeRequest(sv::WireKind::Profile, 42, "body-bytes");
    sv::RequestEnvelope env;
    std::string err;
    ASSERT_TRUE(sv::decodeRequest(payload, &env, &err)) << err;
    EXPECT_EQ(env.kind, static_cast<uint8_t>(sv::WireKind::Profile));
    EXPECT_EQ(env.reqId, 42u);
    EXPECT_EQ(env.body, "body-bytes");
}

TEST(ServeWire, ResponseEnvelopeRoundTrip)
{
    sv::ResponseEnvelope in{sv::WireStatus::Error, true, 7, "oops"};
    std::string payload = sv::encodeResponse(in);
    sv::ResponseEnvelope out;
    std::string err;
    ASSERT_TRUE(sv::decodeResponse(payload, &out, &err)) << err;
    EXPECT_EQ(out.status, sv::WireStatus::Error);
    EXPECT_TRUE(out.cached);
    EXPECT_EQ(out.reqId, 7u);
    EXPECT_EQ(out.body, "oops");
}

TEST(ServeWire, BadMagicVersionAndTruncationAreErrors)
{
    std::string good = sv::encodeRequest(sv::WireKind::Ping, 1, "");
    sv::RequestEnvelope env;
    std::string err;

    std::string bad_magic = good;
    bad_magic[0] = 'X';
    EXPECT_FALSE(sv::decodeRequest(bad_magic, &env, &err));
    EXPECT_NE(err.find("magic"), std::string::npos);

    std::string bad_version = good;
    bad_version[4] = 99;
    EXPECT_FALSE(sv::decodeRequest(bad_version, &env, &err));
    EXPECT_NE(err.find("version"), std::string::npos);

    for (size_t cut = 0; cut < good.size(); ++cut) {
        EXPECT_FALSE(
            sv::decodeRequest(good.substr(0, cut), &env, &err))
            << "cut=" << cut;
    }
}

TEST(ServeWire, FramesRoundTripOverAPipe)
{
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    ASSERT_TRUE(sv::writeFrame(fds[1], "hello"));
    ASSERT_TRUE(sv::writeFrame(fds[1], ""));
    close(fds[1]);

    std::string payload, err;
    EXPECT_EQ(sv::readFrame(fds[0], &payload, &err), sv::FrameRead::Frame);
    EXPECT_EQ(payload, "hello");
    EXPECT_EQ(sv::readFrame(fds[0], &payload, &err), sv::FrameRead::Frame);
    EXPECT_EQ(payload, "");
    // Orderly close on a frame boundary.
    EXPECT_EQ(sv::readFrame(fds[0], &payload, &err), sv::FrameRead::Eof);
    close(fds[0]);
}

TEST(ServeWire, OversizedLengthPrefixIsRejectedBeforeAllocation)
{
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    uint32_t huge = sv::maxFrameBytes + 1;
    ASSERT_EQ(write(fds[1], &huge, 4), 4);
    close(fds[1]);

    std::string payload, err;
    EXPECT_EQ(sv::readFrame(fds[0], &payload, &err),
              sv::FrameRead::Error);
    EXPECT_NE(err.find("frame"), std::string::npos);
    close(fds[0]);
}

TEST(ServeWire, EofMidFrameIsAnError)
{
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    uint32_t len = 100;
    ASSERT_EQ(write(fds[1], &len, 4), 4);
    ASSERT_EQ(write(fds[1], "abc", 3), 3);  // 97 bytes short
    close(fds[1]);

    std::string payload, err;
    EXPECT_EQ(sv::readFrame(fds[0], &payload, &err),
              sv::FrameRead::Error);
    close(fds[0]);
}

// ---------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------

TEST(ServeCache, HitAfterMissReturnsTheExactPayload)
{
    sv::ResultCache cache(1 << 20);
    sv::CacheKey key{1, 0, 111, 222};
    std::string out;
    EXPECT_FALSE(cache.lookup(key, &out));
    EXPECT_EQ(cache.misses(), 1u);

    cache.insert(key, "payload-bytes");
    EXPECT_TRUE(cache.lookup(key, &out));
    EXPECT_EQ(out, "payload-bytes");
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.entries(), 1u);
    EXPECT_EQ(cache.bytes(), 13u);
}

TEST(ServeCache, FingerprintMismatchIsNeverServed)
{
    sv::ResultCache cache(1 << 20);
    sv::CacheKey key{2, 1000, 2000, 3000};
    cache.insert(key, "result");

    std::string out;
    sv::CacheKey other = key;
    other.configFp = 1001;  // different timing configuration
    EXPECT_FALSE(cache.lookup(other, &out));
    other = key;
    other.workloadFp = 2001;  // different workload identity
    EXPECT_FALSE(cache.lookup(other, &out));
    other = key;
    other.requestFp = 3001;  // different request body
    EXPECT_FALSE(cache.lookup(other, &out));
    other = key;
    other.kind = 1;  // profile vs timing
    EXPECT_FALSE(cache.lookup(other, &out));
    EXPECT_TRUE(cache.lookup(key, &out));
}

TEST(ServeCache, LruEvictionUnderByteBudget)
{
    sv::ResultCache cache(30);
    std::string ten(10, 'x');
    cache.insert({1, 0, 0, 1}, ten);
    cache.insert({1, 0, 0, 2}, ten);
    cache.insert({1, 0, 0, 3}, ten);
    EXPECT_EQ(cache.entries(), 3u);

    // Touch key 1 so key 2 is the LRU victim.
    std::string out;
    EXPECT_TRUE(cache.lookup({1, 0, 0, 1}, &out));
    cache.insert({1, 0, 0, 4}, ten);

    EXPECT_EQ(cache.entries(), 3u);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_TRUE(cache.lookup({1, 0, 0, 1}, &out));
    EXPECT_FALSE(cache.lookup({1, 0, 0, 2}, &out));
    EXPECT_TRUE(cache.lookup({1, 0, 0, 3}, &out));
    EXPECT_TRUE(cache.lookup({1, 0, 0, 4}, &out));

    // A payload larger than the whole budget is not cached at all.
    cache.insert({1, 0, 0, 5}, std::string(31, 'y'));
    EXPECT_FALSE(cache.lookup({1, 0, 0, 5}, &out));
    EXPECT_LE(cache.bytes(), 30u);
}

TEST(ServeCache, PersistsAcrossSaveAndLoad)
{
    const std::string path = tmpPath("cache.facsimrc");
    sv::ResultCache a(1 << 20);
    a.insert({1, 0, 10, 11}, "profile-result");
    a.insert({2, 99, 20, 21}, "timing-result");
    ASSERT_TRUE(a.save(path));

    sv::ResultCache b(1 << 20);
    ASSERT_TRUE(b.load(path));
    EXPECT_EQ(b.entries(), 2u);
    std::string out;
    EXPECT_TRUE(b.lookup({1, 0, 10, 11}, &out));
    EXPECT_EQ(out, "profile-result");
    EXPECT_TRUE(b.lookup({2, 99, 20, 21}, &out));
    EXPECT_EQ(out, "timing-result");
}

TEST(ServeCache, CorruptOrMissingFilesStartCold)
{
    sv::ResultCache c(1 << 20);
    EXPECT_FALSE(c.load(tmpPath("does-not-exist.facsimrc")));
    EXPECT_EQ(c.entries(), 0u);

    const std::string path = tmpPath("corrupt.facsimrc");
    sv::ResultCache a(1 << 20);
    a.insert({1, 0, 1, 2}, "data");
    ASSERT_TRUE(a.save(path));

    // Flip a byte in the middle: the checksum no longer matches.
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 24, SEEK_SET);
    int old = std::fgetc(f);
    std::fseek(f, 24, SEEK_SET);
    std::fputc(old ^ 0xff, f);
    std::fclose(f);

    sv::ResultCache b(1 << 20);
    EXPECT_FALSE(b.load(path));
    EXPECT_EQ(b.entries(), 0u);

    // Garbage that is not even a container.
    const std::string junk = tmpPath("junk.facsimrc");
    f = std::fopen(junk.c_str(), "wb");
    std::fputs("not a cache", f);
    std::fclose(f);
    sv::ResultCache d(1 << 20);
    EXPECT_FALSE(d.load(junk));
    EXPECT_EQ(d.entries(), 0u);
}

// ---------------------------------------------------------------------
// End-to-end daemon (unix socket, in-process)
// ---------------------------------------------------------------------

TEST(ServeDaemon, WarmRepeatIsByteIdenticalAndCached)
{
    sv::ServerOptions opts;
    opts.socketPath = tmpPath("e2e.sock");
    opts.jobs = 2;
    DaemonFixture daemon(opts);

    int fd = connectWithRetry(opts.socketPath);
    ASSERT_GE(fd, 0);
    sv::ServeClient client(fd);
    std::string err;
    ASSERT_TRUE(client.ping(&err)) << err;

    std::string body = encodeProfileBody(smallProfileRequest());
    sv::ResponseEnvelope cold, warm;
    ASSERT_TRUE(client.exchange(sv::WireKind::Profile, body, &cold, &err))
        << err;
    ASSERT_EQ(cold.status, sv::WireStatus::Ok) << cold.body;
    EXPECT_FALSE(cold.cached);

    ASSERT_TRUE(client.exchange(sv::WireKind::Profile, body, &warm, &err))
        << err;
    ASSERT_EQ(warm.status, sv::WireStatus::Ok) << warm.body;
    EXPECT_TRUE(warm.cached);
    EXPECT_EQ(warm.body, cold.body);  // byte-for-byte replay

    // The cached response decodes to the same result the direct runner
    // produces.
    ser::TryReader r(warm.body.data(), warm.body.size());
    ProfileResult res;
    ASSERT_TRUE(decodeProfileResult(r, &res));
    ProfileResult direct = runProfile(smallProfileRequest());
    EXPECT_EQ(res.insts, direct.insts);
    EXPECT_EQ(res.loads, direct.loads);
    EXPECT_EQ(res.fac[0].loadFailures, direct.fac[0].loadFailures);

    ASSERT_TRUE(client.shutdown(&err)) << err;
    EXPECT_EQ(daemon.join(), 0);
}

TEST(ServeDaemon, TimingRequestsKeyOnTheConfigFingerprint)
{
    sv::ServerOptions opts;
    opts.socketPath = tmpPath("timing.sock");
    opts.jobs = 2;
    DaemonFixture daemon(opts);

    int fd = connectWithRetry(opts.socketPath);
    ASSERT_GE(fd, 0);
    sv::ServeClient client(fd);
    std::string err;

    TimingRequest req = smallTimingRequest();
    TimingResult res;
    bool cached = true;
    ASSERT_TRUE(client.timing(req, &res, &cached, &err)) << err;
    EXPECT_FALSE(cached);
    TimingResult direct = runTiming(req);
    EXPECT_EQ(res.stats.cycles, direct.stats.cycles);
    EXPECT_EQ(res.stats.insts, direct.stats.insts);

    // Same workload, different pipeline config: must not be served from
    // the first entry.
    TimingRequest other = req;
    other.pipe = baselineConfig(32);
    ASSERT_TRUE(client.timing(other, &res, &cached, &err)) << err;
    EXPECT_FALSE(cached);

    // The original again: now warm.
    ASSERT_TRUE(client.timing(req, &res, &cached, &err)) << err;
    EXPECT_TRUE(cached);
    EXPECT_EQ(res.stats.cycles, direct.stats.cycles);

    ASSERT_TRUE(client.shutdown(&err)) << err;
    EXPECT_EQ(daemon.join(), 0);
}

TEST(ServeDaemon, MalformedRequestsGetErrorsNotAborts)
{
    sv::ServerOptions opts;
    opts.socketPath = tmpPath("malformed.sock");
    DaemonFixture daemon(opts);

    int fd = connectWithRetry(opts.socketPath);
    ASSERT_GE(fd, 0);
    sv::ServeClient client(fd);
    std::string err;

    // Unknown request kind: per-request error, connection survives.
    sv::ResponseEnvelope resp;
    ASSERT_TRUE(client.exchange(static_cast<sv::WireKind>(9), "x",
                                &resp, &err))
        << err;
    EXPECT_EQ(resp.status, sv::WireStatus::Error);
    EXPECT_NE(resp.body.find("unknown request kind"), std::string::npos);
    ASSERT_TRUE(client.ping(&err)) << err;

    // Truncated profile body: per-request error, connection survives.
    std::string body = encodeProfileBody(smallProfileRequest());
    ASSERT_TRUE(client.exchange(sv::WireKind::Profile,
                                body.substr(0, body.size() / 2), &resp,
                                &err))
        << err;
    EXPECT_EQ(resp.status, sv::WireStatus::Error);
    EXPECT_NE(resp.body.find("malformed profile request"),
              std::string::npos);

    // Trailing junk after a valid body: rejected (canonical keys only).
    ASSERT_TRUE(client.exchange(sv::WireKind::Profile, body + "junk",
                                &resp, &err))
        << err;
    EXPECT_EQ(resp.status, sv::WireStatus::Error);
    EXPECT_NE(resp.body.find("trailing"), std::string::npos);

    // Unknown workload: clean error.
    ProfileRequest ghost = smallProfileRequest();
    ghost.workload = "no-such-workload";
    ASSERT_TRUE(client.exchange(sv::WireKind::Profile,
                                encodeProfileBody(ghost), &resp, &err))
        << err;
    EXPECT_EQ(resp.status, sv::WireStatus::Error);
    EXPECT_NE(resp.body.find("unknown workload"), std::string::npos);
    ASSERT_TRUE(client.ping(&err)) << err;

    // A frame whose payload is not a request envelope at all: protocol
    // error, and the daemon drops this connection.
    ASSERT_TRUE(sv::writeFrame(fd, "garbage"));
    std::string payload;
    ASSERT_EQ(sv::readFrame(fd, &payload, &err), sv::FrameRead::Frame);
    sv::ResponseEnvelope perr;
    ASSERT_TRUE(sv::decodeResponse(payload, &perr, &err)) << err;
    EXPECT_EQ(perr.status, sv::WireStatus::Error);
    EXPECT_NE(perr.body.find("protocol error"), std::string::npos);

    // A fresh connection still works: the daemon survived all of it.
    int fd2 = connectWithRetry(opts.socketPath);
    ASSERT_GE(fd2, 0);
    sv::ServeClient client2(fd2);
    ASSERT_TRUE(client2.ping(&err)) << err;
    ASSERT_TRUE(client2.shutdown(&err)) << err;
    EXPECT_EQ(daemon.join(), 0);
}

TEST(ServeDaemon, CachePersistsAcrossRestart)
{
    const std::string sock = tmpPath("restart.sock");
    const std::string cache_file = tmpPath("restart.facsimrc");
    std::remove(cache_file.c_str());

    sv::ServerOptions opts;
    opts.socketPath = sock;
    opts.cacheFile = cache_file;
    std::string body = encodeProfileBody(smallProfileRequest());
    std::string cold_body;

    {
        DaemonFixture daemon(opts);
        int fd = connectWithRetry(sock);
        ASSERT_GE(fd, 0);
        sv::ServeClient client(fd);
        std::string err;
        sv::ResponseEnvelope resp;
        ASSERT_TRUE(
            client.exchange(sv::WireKind::Profile, body, &resp, &err))
            << err;
        ASSERT_EQ(resp.status, sv::WireStatus::Ok) << resp.body;
        EXPECT_FALSE(resp.cached);
        cold_body = resp.body;
        ASSERT_TRUE(client.shutdown(&err)) << err;
        EXPECT_EQ(daemon.join(), 0);
    }

    // Second daemon, same cache file: the very first request is warm
    // and byte-identical to the previous process's cold response.
    {
        DaemonFixture daemon(opts);
        int fd = connectWithRetry(sock);
        ASSERT_GE(fd, 0);
        sv::ServeClient client(fd);
        std::string err;
        sv::ResponseEnvelope resp;
        ASSERT_TRUE(
            client.exchange(sv::WireKind::Profile, body, &resp, &err))
            << err;
        ASSERT_EQ(resp.status, sv::WireStatus::Ok) << resp.body;
        EXPECT_TRUE(resp.cached);
        EXPECT_EQ(resp.body, cold_body);
        ASSERT_TRUE(client.shutdown(&err)) << err;
        EXPECT_EQ(daemon.join(), 0);
    }
}

// ---------------------------------------------------------------------
// End-to-end daemon (--stdio subprocess)
// ---------------------------------------------------------------------

TEST(ServeDaemon, StdioSubprocessSpeaksTheProtocol)
{
    int to_child[2], from_child[2];
    ASSERT_EQ(pipe(to_child), 0);
    ASSERT_EQ(pipe(from_child), 0);

    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        dup2(to_child[0], STDIN_FILENO);
        dup2(from_child[1], STDOUT_FILENO);
        close(to_child[0]);
        close(to_child[1]);
        close(from_child[0]);
        close(from_child[1]);
        execl(FACSIM_CLI_BIN, FACSIM_CLI_BIN, "serve", "--stdio",
              static_cast<char *>(nullptr));
        _exit(127);
    }
    close(to_child[0]);
    close(from_child[1]);

    {
        sv::ServeClient client(from_child[0], to_child[1]);
        std::string err;
        ASSERT_TRUE(client.ping(&err)) << err;

        ProfileRequest req = smallProfileRequest();
        ProfileResult res;
        bool cached = true;
        ASSERT_TRUE(client.profile(req, &res, &cached, &err)) << err;
        EXPECT_FALSE(cached);
        EXPECT_GT(res.insts, 0u);

        ASSERT_TRUE(client.profile(req, &res, &cached, &err)) << err;
        EXPECT_TRUE(cached);

        ASSERT_TRUE(client.shutdown(&err)) << err;
    }
    close(to_child[1]);
    close(from_child[0]);

    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
}

// ---------------------------------------------------------------------
// Load generator
// ---------------------------------------------------------------------

TEST(ServeLoadgen, DigestIsConcurrencyInvariant)
{
    sv::ServerOptions opts;
    opts.socketPath = tmpPath("loadgen.sock");
    opts.jobs = 2;
    DaemonFixture daemon(opts);
    {
        int fd = connectWithRetry(opts.socketPath);
        ASSERT_GE(fd, 0);
        sv::ServeClient probe(fd);
        std::string err;
        ASSERT_TRUE(probe.ping(&err)) << err;
    }

    sv::LoadgenOptions lg;
    lg.socketPath = opts.socketPath;
    lg.requests = 12;
    lg.repeatPct = 50;
    lg.seed = 7;
    lg.maxInsts = 8000;
    lg.workloadPool = 2;

    sv::LoadgenReport serial, parallel, rerun;
    std::string err;
    lg.concurrency = 1;
    ASSERT_TRUE(sv::runLoadgen(lg, &serial, &err)) << err;
    EXPECT_EQ(serial.sent, 12u);
    EXPECT_EQ(serial.errors, 0u);
    // Serial order guarantees every repeat hits the cache.
    EXPECT_EQ(serial.uncachedResponses, serial.uniqueRequests);
    EXPECT_GT(serial.cachedResponses, 0u);

    lg.concurrency = 4;
    ASSERT_TRUE(sv::runLoadgen(lg, &parallel, &err)) << err;
    EXPECT_EQ(parallel.errors, 0u);
    EXPECT_EQ(parallel.responseDigest, serial.responseDigest);

    // A later identical run is fully warm — and still the same digest,
    // because cache hits replay the cold bytes verbatim.
    lg.concurrency = 1;
    ASSERT_TRUE(sv::runLoadgen(lg, &rerun, &err)) << err;
    EXPECT_EQ(rerun.uncachedResponses, 0u);
    EXPECT_EQ(rerun.cachedResponses, rerun.ok);
    EXPECT_EQ(rerun.responseDigest, serial.responseDigest);

    {
        int fd = connectWithRetry(opts.socketPath);
        ASSERT_GE(fd, 0);
        sv::ServeClient fin(fd);
        std::string serr;
        ASSERT_TRUE(fin.shutdown(&serr)) << serr;
    }
    EXPECT_EQ(daemon.join(), 0);
}

TEST(ServeLoadgen, ReportRendersJson)
{
    sv::LoadgenReport rep;
    rep.sent = 10;
    rep.ok = 10;
    rep.qps = 123.5;
    rep.responseDigest = 0xdeadbeefull;
    std::string js = rep.json();
    EXPECT_NE(js.find("\"schema_version\":1"), std::string::npos);
    EXPECT_NE(js.find("\"qps\":"), std::string::npos);
    EXPECT_NE(js.find("00000000deadbeef"), std::string::npos);
    EXPECT_EQ(js.front(), '{');
    EXPECT_EQ(js.back(), '}');
}

// ---------------------------------------------------------------------
// Live telemetry (WireKind::Stats, trace spans, periodic flush)
// ---------------------------------------------------------------------

TEST(ServeTelemetry, StatsSnapshotReflectsServedRequests)
{
    sv::ServerOptions opts;
    opts.socketPath = tmpPath("stats.sock");
    DaemonFixture daemon(opts);

    int fd = connectWithRetry(opts.socketPath);
    ASSERT_GE(fd, 0);
    sv::ServeClient client(fd);
    std::string err;

    ProfileRequest req = smallProfileRequest();
    ProfileResult res;
    bool cached = true;
    ASSERT_TRUE(client.profile(req, &res, &cached, &err)) << err;
    ASSERT_TRUE(client.profile(req, &res, &cached, &err)) << err;
    EXPECT_TRUE(cached);

    std::string json, prom;
    ASSERT_TRUE(client.stats(&json, &prom, &err)) << err;

    // The JSON side parses with the client-side flattener and shows the
    // work done so far.
    obs::StatsSnapshot snap;
    ASSERT_TRUE(obs::parseStatsJson(json, &snap, &err)) << err;
    EXPECT_GE(snap["serve.requests"], 3.0);
    EXPECT_EQ(snap["serve.profile_requests"], 2.0);
    EXPECT_EQ(snap["cache.hits"], 1.0);
    EXPECT_EQ(snap["cache.misses"], 1.0);
    EXPECT_GE(snap["serve.stats_requests"], 1.0);
    // Formulas evaluate at snapshot time.
    ASSERT_TRUE(snap.count("serve.latency_p50_us"));
    EXPECT_GT(snap["serve.latency_p50_us"], 0.0);

    // The Prometheus side carries typed, sanitized series.
    EXPECT_NE(prom.find("# TYPE facsim_serve_requests counter"),
              std::string::npos);
    EXPECT_NE(prom.find("# TYPE facsim_cache_hits gauge"),
              std::string::npos);
    EXPECT_NE(prom.find("facsim_serve_latency_log2_us_bucket"),
              std::string::npos);

    ASSERT_TRUE(client.shutdown(&err)) << err;
    EXPECT_EQ(daemon.join(), 0);
}

TEST(ServeTelemetry, StatsWithBodyIsRejectedAndConnectionSurvives)
{
    sv::ServerOptions opts;
    opts.socketPath = tmpPath("statsbody.sock");
    DaemonFixture daemon(opts);

    int fd = connectWithRetry(opts.socketPath);
    ASSERT_GE(fd, 0);
    sv::ServeClient client(fd);
    std::string err;

    sv::ResponseEnvelope resp;
    ASSERT_TRUE(client.exchange(sv::WireKind::Stats, "payload", &resp,
                                &err))
        << err;
    EXPECT_EQ(resp.status, sv::WireStatus::Error);
    EXPECT_NE(resp.body.find("body must be empty"), std::string::npos);

    // Same connection keeps working, and an empty-body Stats succeeds.
    ASSERT_TRUE(client.ping(&err)) << err;
    std::string json, prom;
    ASSERT_TRUE(client.stats(&json, &prom, &err)) << err;
    EXPECT_FALSE(json.empty());
    EXPECT_FALSE(prom.empty());

    ASSERT_TRUE(client.shutdown(&err)) << err;
    EXPECT_EQ(daemon.join(), 0);
}

TEST(ServeTelemetry, OldVersionClientGetsCleanVersionError)
{
    sv::ServerOptions opts;
    opts.socketPath = tmpPath("oldver.sock");
    DaemonFixture daemon(opts);

    int fd = connectWithRetry(opts.socketPath);
    ASSERT_GE(fd, 0);

    // Hand-build a v1 Ping frame (the protocol before WireKind::Stats).
    ser::Writer w;
    w.u32(sv::wireMagic);
    w.u32(1);  // stale protocol version
    w.u8(0);   // Ping
    w.u8(0);
    w.u64(42);
    ASSERT_TRUE(sv::writeFrame(fd, w.data()));

    // The daemon answers promptly with a version error — no hang, no
    // dropped frame.
    std::string payload, err;
    ASSERT_EQ(sv::readFrame(fd, &payload, &err), sv::FrameRead::Frame)
        << err;
    sv::ResponseEnvelope resp;
    ASSERT_TRUE(sv::decodeResponse(payload, &resp, &err)) << err;
    EXPECT_EQ(resp.status, sv::WireStatus::Error);
    EXPECT_NE(resp.body.find("unsupported protocol version 1"),
              std::string::npos);
    ::close(fd);

    // The daemon itself is unharmed.
    int fd2 = connectWithRetry(opts.socketPath);
    ASSERT_GE(fd2, 0);
    sv::ServeClient client(fd2);
    ASSERT_TRUE(client.ping(&err)) << err;
    ASSERT_TRUE(client.shutdown(&err)) << err;
    EXPECT_EQ(daemon.join(), 0);
}

TEST(ServeTelemetry, TraceFileHasOneRequestSpanPerRequest)
{
    sv::ServerOptions opts;
    opts.socketPath = tmpPath("trace.sock");
    opts.tracePath = tmpPath("spans.json");
    opts.jobs = 2;
    std::remove(opts.tracePath.c_str());
    DaemonFixture daemon(opts);

    int fd = connectWithRetry(opts.socketPath);
    ASSERT_GE(fd, 0);
    sv::ServeClient client(fd);
    std::string err;

    ProfileRequest req = smallProfileRequest();
    ProfileResult res;
    bool cached = false;
    ASSERT_TRUE(client.profile(req, &res, &cached, &err)) << err;  // cold
    ASSERT_TRUE(client.profile(req, &res, &cached, &err)) << err;  // warm
    ASSERT_TRUE(client.ping(&err)) << err;
    ASSERT_TRUE(client.shutdown(&err)) << err;
    EXPECT_EQ(daemon.join(), 0);

    std::ifstream in(opts.tracePath, std::ios::binary);
    ASSERT_TRUE(in.is_open());
    std::stringstream ss;
    ss << in.rdbuf();
    std::string trace = ss.str();

    // Structurally a Chrome trace-event file...
    EXPECT_EQ(trace.rfind("{\"traceEvents\":[", 0), 0u);
    ASSERT_GE(trace.size(), 3u);
    EXPECT_EQ(trace.substr(trace.size() - 3), "]}\n");

    // ...with one closing "request" span per request frame (2 profile +
    // 1 ping + 1 shutdown), the per-request breadcrumbs and named
    // thread tracks.
    auto count = [&](const char *needle) {
        size_t n = 0;
        for (size_t at = trace.find(needle); at != std::string::npos;
             at = trace.find(needle, at + 1))
            ++n;
        return n;
    };
    EXPECT_EQ(count("\"name\":\"request\""), 4u);
    EXPECT_EQ(count("\"name\":\"received\""), 4u);
    EXPECT_EQ(count("\"name\":\"replied\""), 4u);
    EXPECT_EQ(count("\"name\":\"cache_miss\""), 1u);
    EXPECT_EQ(count("\"name\":\"cache_hit\""), 1u);
    EXPECT_EQ(count("\"name\":\"enqueued\""), 1u);
    EXPECT_EQ(count("\"name\":\"scheduled\""), 1u);
    EXPECT_EQ(count("\"name\":\"run\""), 1u);
    EXPECT_GE(count("\"name\":\"thread_name\""), 2u);  // conn + sched
    EXPECT_NE(trace.find("\"conn-"), std::string::npos);
}

TEST(ServeTelemetry, StatsIntervalFlushesWhileServing)
{
    sv::ServerOptions opts;
    opts.socketPath = tmpPath("flush.sock");
    opts.statsOut = tmpPath("flush-stats.json");
    opts.statsInterval = 1;
    std::remove(opts.statsOut.c_str());
    DaemonFixture daemon(opts);

    int fd = connectWithRetry(opts.socketPath);
    ASSERT_GE(fd, 0);
    sv::ServeClient client(fd);
    std::string err;
    ASSERT_TRUE(client.ping(&err)) << err;

    // The snapshot must appear while the daemon is still serving (the
    // interval is 1 s; allow generous slack for loaded CI hosts).
    bool appeared = false;
    for (int i = 0; i < 300 && !appeared; ++i) {
        std::ifstream in(opts.statsOut);
        appeared = in.is_open();
        if (!appeared)
            usleep(20 * 1000);
    }
    ASSERT_TRUE(appeared) << "no periodic flush within 6 s";

    // Still serving — the flush did not require a drain.
    ASSERT_TRUE(client.ping(&err)) << err;

    std::ifstream in(opts.statsOut);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_NE(ss.str().find("\"serve.requests\""), std::string::npos);
    // No torn temp file left behind after the rename.
    std::ifstream tmp(opts.statsOut + ".tmp");
    EXPECT_FALSE(tmp.is_open());

    ASSERT_TRUE(client.shutdown(&err)) << err;
    EXPECT_EQ(daemon.join(), 0);
}
