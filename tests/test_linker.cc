/**
 * @file
 * Linker tests: layout, fixup patching, and the global-pointer alignment
 * software support (Section 4).
 */

#include <gtest/gtest.h>

#include "asm/builder.hh"
#include "link/linker.hh"
#include "util/bits.hh"

namespace facsim
{
namespace
{

TEST(Linker, BranchAndJumpPatching)
{
    Program p;
    AsmBuilder as(p);
    LabelId top = as.newLabel();
    as.bind(top);
    as.nop();                      // 0
    as.bne(reg::t0, reg::zero, top);  // 1: disp = 0 - 2 = -2
    as.j(top);                     // 2: abs word = textBase/4
    as.halt();

    Memory mem;
    LinkedImage img = Linker(LinkPolicy{}).link(p, mem);
    EXPECT_EQ(p.inst(1).imm, -2);
    EXPECT_EQ(static_cast<uint32_t>(p.inst(2).imm),
              Program::textBase / 4);
    EXPECT_EQ(img.entryPc, Program::textBase);

    // The encoded image landed in memory.
    EXPECT_EQ(mem.read32(Program::textBase), 0u);  // nop
}

TEST(Linker, DataLayoutRespectsAlignment)
{
    Program p;
    AsmBuilder as(p);
    SymId a = as.global("a", 3, 1, false);
    SymId b = as.global("b", 8, 8, false);
    as.halt();
    Memory mem;
    Linker(LinkPolicy{}).link(p, mem);
    EXPECT_EQ(p.syms()[a].addr, Linker::dataBase);
    EXPECT_EQ(p.syms()[b].addr % 8, 0u);
    EXPECT_GE(p.syms()[b].addr, p.syms()[a].addr + 3);
}

TEST(Linker, InitialisedDataIsLoaded)
{
    Program p;
    AsmBuilder as(p);
    SymId s = as.globalInit("tbl", {0xde, 0xad, 0xbe, 0xef}, 4, false);
    as.halt();
    Memory mem;
    Linker(LinkPolicy{}).link(p, mem);
    uint32_t addr = p.syms()[s].addr;
    EXPECT_EQ(mem.read8(addr), 0xde);
    EXPECT_EQ(mem.read8(addr + 3), 0xef);
}

TEST(Linker, GpRelFixupResolves)
{
    Program p;
    AsmBuilder as(p);
    SymId v = as.global("v", 4, 4, true);
    as.lwGp(reg::t0, v);
    as.halt();
    Memory mem;
    LinkedImage img = Linker(LinkPolicy{}).link(p, mem);
    EXPECT_EQ(img.gpValue + static_cast<uint32_t>(p.inst(0).imm),
              p.syms()[v].addr);
}

TEST(Linker, BaselineGpIsUnaligned)
{
    Program p;
    AsmBuilder as(p);
    as.global("pad", 4096, 8, true);
    SymId v = as.global("v", 4, 4, true);
    as.lwGp(reg::t0, v);
    as.halt();
    Memory mem;
    LinkedImage img = Linker(LinkPolicy{}).link(p, mem);
    // Without support the gp is not aligned to the small-data span.
    EXPECT_NE(img.gpValue % 4096, 0u);
    // And the bulk of the region sits at positive offsets.
    EXPECT_GT(p.syms()[v].addr, img.gpValue);
}

TEST(Linker, AlignedGpPolicyGuarantees)
{
    Program p;
    AsmBuilder as(p);
    SymId first = as.global("first", 4, 4, true);
    as.global("pad", 3000, 8, true);
    SymId last = as.global("last", 4, 4, true);
    as.lwGp(reg::t0, first);
    as.lwGp(reg::t1, last);
    as.halt();
    Memory mem;
    LinkPolicy pol{.alignGlobalPointer = true};
    LinkedImage img = Linker(pol).link(p, mem);
    // gp aligned to a power of two covering the whole region, offsets
    // all positive — the Section 4 guarantee that makes carry-free
    // addition always succeed for global accesses.
    uint32_t region = p.syms()[last].addr + 4 - img.gpValue;
    uint32_t boundary = nextPow2(region);
    EXPECT_EQ(img.gpValue % boundary, 0u);
    EXPECT_GE(p.inst(0).imm, 0);
    EXPECT_GE(p.inst(1).imm, 0);
}

TEST(Linker, StaticAlignmentPolicy)
{
    Program p;
    AsmBuilder as(p);
    SymId small = as.global("sm", 6, 2, false);
    SymId big = as.global("bg", 100, 4, false);
    as.halt();
    Memory mem;
    LinkPolicy pol{.alignStatics = true, .maxStaticAlign = 32};
    Linker(pol).link(p, mem);
    EXPECT_EQ(p.syms()[small].addr % 8, 0u);   // nextPow2(6) = 8
    EXPECT_EQ(p.syms()[big].addr % 32, 0u);    // capped at 32
}

TEST(Linker, HeapStartsPageAlignedAfterData)
{
    Program p;
    AsmBuilder as(p);
    as.global("x", 100, 4, false);
    as.halt();
    Memory mem;
    LinkedImage img = Linker(LinkPolicy{}).link(p, mem);
    EXPECT_EQ(img.heapBase % 4096, 0u);
    EXPECT_GE(img.heapBase, img.dataEnd);
    EXPECT_GE(img.staticBytes, 100u);
}

TEST(LinkerDeathTest, DoubleLinkPanics)
{
    Program p;
    AsmBuilder as(p);
    as.halt();
    Memory mem;
    Linker l(LinkPolicy{});
    l.link(p, mem);
    EXPECT_DEATH(l.link(p, mem), "linked twice");
}

} // anonymous namespace
} // namespace facsim
