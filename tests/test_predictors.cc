/**
 * @file
 * Predictor-zoo tests (src/cpu/load_predictor.hh): an exhaustive
 * reduced-width sweep proving the stride predictor's verify signal
 * fires iff the predicted address differs from the architectural one
 * (mirroring test_fac_property.cc's exhaustive FAC sweep), the
 * way-memoization safety property — a memoized way is either still
 * correct or caught by the mandatory late verify, never a silent
 * wrong-data load — under adversarial set-conflict/eviction/
 * invalidation sequences, zero-attempt rate guards (0.0, never NaN,
 * through the stats registry's JSON emitter), config validation death
 * tests, strict CLI parsing of --predictor, and per-mode fuzz batches.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cpu/load_predictor.hh"
#include "cpu/profiler.hh"
#include "json_lite.hh"
#include "obs/stats.hh"
#include "sim/config.hh"
#include "sim/obs_views.hh"
#include "util/parse.hh"
#include "util/rng.hh"
#include "util/serialize.hh"
#include "verify/cosim.hh"
#include "verify/fuzz.hh"

namespace facsim
{
namespace
{

using jsonlite::JsonParser;
using jsonlite::JsonValue;
using verify::CosimOptions;
using verify::CosimResult;
using verify::runCosim;

/** Table-predictor knobs shrunk so sweeps are exhaustive. */
PredictorConfig
smallStrideConfig()
{
    PredictorConfig pc;
    pc.stride = true;
    pc.strideEntries = 4;
    pc.strideConfMax = 3;
    pc.strideConfThreshold = 2;
    return pc;
}

// ---------------------------------------------------------------------------
// Stride predictor: exhaustive reduced-width verify-signal sweep

// Mirrors FacExhaustive.ReducedWidthFailureSignalsAreExact: shrink the
// address space to word-aligned addresses in a 256-byte window so the
// full cross product (initial address x stride x next architectural
// address) fits in one in-process sweep. For every combination, train
// the predictor to confidence on a perfect stride stream and prove
//  - the prediction is exactly lastAddr + stride, and
//  - the verify signal (PredResult::success) fires IFF the predicted
//    address equals the architectural one — the predictor never lets a
//    wrong speculative access commit and never wastes a correct one.
TEST(StrideExhaustive, VerifySignalFiresIffPredictionMatches)
{
    const uint32_t pc = 0x1000;
    for (int32_t stride = -64; stride <= 64; stride += 4) {
        for (uint32_t a0 = 4096; a0 < 4096 + 64; a0 += 4) {
            LoadPredictor lp(false, FacConfig{}, smallStrideConfig());
            // Unconfident table + FAC disabled: no source may fire.
            EXPECT_FALSE(lp.predict(pc, a0, 0, false, a0).attempted);

            // Train on a perfect stride stream: install, retrain the
            // stride on the first delta, then count confidence up.
            uint32_t addr = a0;
            for (int i = 0; i < 4; ++i) {
                lp.train(pc, addr);
                addr += static_cast<uint32_t>(stride);
            }
            const uint32_t last = addr - static_cast<uint32_t>(stride);
            const uint32_t predicted =
                last + static_cast<uint32_t>(stride);

            for (uint32_t actual = 4096 - 128; actual < 4096 + 128;
                 actual += 4) {
                PredResult r = lp.predict(pc, 0, 0, false, actual);
                ASSERT_TRUE(r.attempted);
                ASSERT_EQ(r.source, PredSource::Stride);
                ASSERT_EQ(r.predictedAddr, predicted)
                    << "stride=" << stride << " a0=" << a0;
                ASSERT_EQ(r.success, predicted == actual)
                    << "verify signal wrong: stride=" << stride
                    << " a0=" << a0 << " actual=" << actual;
            }
        }
    }
}

TEST(StridePredictor, ConfidenceStateMachine)
{
    StridePredictor sp(smallStrideConfig());
    const uint32_t pc = 0x400000;

    sp.train(pc, 100);                       // install (conf 0)
    EXPECT_FALSE(sp.predict(pc).confident);
    sp.train(pc, 108);                       // stride 0 -> 8, conf 0
    EXPECT_FALSE(sp.predict(pc).confident);
    sp.train(pc, 116);                       // match, conf 1
    EXPECT_FALSE(sp.predict(pc).confident);  // below threshold 2
    sp.train(pc, 124);                       // match, conf 2
    ASSERT_TRUE(sp.predict(pc).confident);
    EXPECT_EQ(sp.predict(pc).predictedAddr, 132u);

    // One outlier drains confidence but keeps the stride: the entry
    // only retrains once fully drained.
    sp.train(pc, 500);                       // mismatch, conf 1
    EXPECT_FALSE(sp.predict(pc).confident);
    sp.train(pc, 508);                       // stride 8 again, conf 2
    ASSERT_TRUE(sp.predict(pc).confident);
    EXPECT_EQ(sp.predict(pc).predictedAddr, 516u);
}

TEST(StridePredictor, TagAliasingReplacesEntry)
{
    PredictorConfig pc = smallStrideConfig();
    StridePredictor sp(pc);
    const uint32_t pc_a = 0x1000;
    // Same table index, different tag.
    const uint32_t pc_b = pc_a + 4 * pc.strideEntries;
    for (uint32_t a = 0; a < 4; ++a)
        sp.train(pc_a, 0x2000 + a * 16);
    ASSERT_TRUE(sp.predict(pc_a).confident);

    sp.train(pc_b, 0x9000);  // aliases pc_a's slot, replaces it
    EXPECT_FALSE(sp.predict(pc_a).confident);
    EXPECT_FALSE(sp.predict(pc_b).confident);
}

TEST(LoadPredictor, ArbitrationPrefersConfidentStrideOverFac)
{
    PipelineConfig pipe = predictorPipelineConfig("fac+stride");
    LoadPredictor lp(true, pipe.fac, pipe.pred);
    const uint32_t pc = 0x1000;
    // FAC-friendly operands: aligned base, tiny offset.
    PredResult r = lp.predict(pc, 0x10000, 8, false, 0x10008);
    ASSERT_TRUE(r.attempted);
    EXPECT_EQ(r.source, PredSource::Fac);

    for (uint32_t a = 0; a < 4; ++a)
        lp.train(pc, 0x20000 + a * 32);
    r = lp.predict(pc, 0x10000, 8, false, 0x20000 + 4 * 32);
    ASSERT_TRUE(r.attempted);
    EXPECT_EQ(r.source, PredSource::Stride);
    EXPECT_TRUE(r.success);
}

TEST(LoadPredictor, SaveLoadRoundTripPreservesTables)
{
    PredictorConfig pc = smallStrideConfig();
    pc.wayMemo = true;
    pc.wayMemoEntries = 4;
    LoadPredictor a(false, FacConfig{}, pc);
    for (uint32_t i = 0; i < 4; ++i)
        a.train(0x1000, 0x3000 + i * 12);
    a.trainWay(0x1000, 0x3000, 1);

    ser::Writer w;
    a.saveState(w);
    LoadPredictor b(false, FacConfig{}, pc);
    ser::Reader r(w.data().data(), w.data().size());
    b.loadState(r);

    PredResult pa = a.predict(0x1000, 0, 0, false, 0);
    PredResult pb = b.predict(0x1000, 0, 0, false, 0);
    ASSERT_TRUE(pb.attempted);
    EXPECT_EQ(pa.predictedAddr, pb.predictedAddr);
    EXPECT_EQ(b.memoWay(0x1000, 0x3000), 1);
}

// ---------------------------------------------------------------------------
// Way memoization: safety under conflicts, evictions and invalidation

// The safety property: a memoized way is only usable while it equals
// Cache::wayOf() for the block — the mandatory late verify. Whenever
// the verify passes, the cache really does hold the block in that way
// (the data read is correct); every stale entry fails the comparison.
// Driven by an adversarial random mix of set-conflicting blocks on a
// tiny 2-way cache so evictions constantly invalidate memo entries.
TEST(WayMemoSafety, StaleEntriesAlwaysCaughtByLateVerify)
{
    CacheConfig cc;
    cc.sizeBytes = 256;
    cc.blockBytes = 32;
    cc.assoc = 2;  // 4 sets; conflict span is 128 bytes
    Cache cache(cc);

    PredictorConfig pc;
    pc.wayMemo = true;
    pc.wayMemoEntries = 4;
    WayMemo wm(pc);

    Rng rng(0x3a7e);
    uint64_t fresh = 0, stale = 0;
    for (int i = 0; i < 20000; ++i) {
        const uint32_t ipc = 0x1000 + 4 * rng.range(4);
        // 8 blocks over 4 sets: every set holds 2 ways but sees 2
        // distinct conflicting blocks plus aliases from re-rolls.
        const uint32_t block = 32 * rng.range(8) + 128 * rng.range(4);

        int memo = wm.lookup(ipc, block);
        int actual = cache.wayOf(block);
        if (memo >= 0) {
            if (memo == actual) {
                // Late verify passes: skipping the tag read is safe
                // only if the block really is resident.
                ASSERT_TRUE(cache.probe(block))
                    << "memoized way verified but block not resident";
                ++fresh;
            } else {
                ++stale;  // detected; pipeline replays with a tag read
            }
        }
        cache.read(block);
        int way = cache.wayOf(block);
        ASSERT_GE(way, 0);
        wm.train(ipc, block, static_cast<uint32_t>(way));
    }
    EXPECT_GT(fresh, 0u) << "sequence never exercised a fresh memo hit";
    EXPECT_GT(stale, 0u) << "sequence never exercised a stale entry";

    // Whole-cache invalidation: every memoized way must now fail the
    // late verify — wayOf() reports the block absent.
    cache.reset();
    for (uint32_t slot = 0; slot < 4; ++slot) {
        const uint32_t ipc = 0x1000 + 4 * slot;
        for (uint32_t block = 0; block < 8 * 32; block += 32) {
            int memo = wm.lookup(ipc, block);
            if (memo >= 0) {
                EXPECT_NE(memo, cache.wayOf(block))
                    << "stale way survived invalidation undetected";
            }
        }
    }
}

TEST(WayMemoSafety, EvictionMakesMemoStaleDeterministically)
{
    CacheConfig cc;
    cc.sizeBytes = 256;
    cc.blockBytes = 32;
    cc.assoc = 2;
    Cache cache(cc);
    PredictorConfig pc;
    pc.wayMemo = true;
    pc.wayMemoEntries = 4;
    WayMemo wm(pc);

    const uint32_t a = 0, b = 128, c = 256, d = 384;  // one set
    cache.read(a);
    wm.train(0x1000, a, static_cast<uint32_t>(cache.wayOf(a)));
    ASSERT_EQ(wm.lookup(0x1000, a), cache.wayOf(a));

    cache.read(b);
    cache.read(c);  // evicts a (LRU)
    cache.read(d);  // evicts b
    EXPECT_EQ(cache.wayOf(a), -1);
    int memo = wm.lookup(0x1000, a);
    ASSERT_GE(memo, 0);
    EXPECT_NE(memo, cache.wayOf(a)) << "late verify must catch this";
}

// End-to-end: a loop whose loads rotate three blocks through one 2-way
// set, so the way memo keeps going stale, plus one conflict-free block
// that stays fresh. The run must stay in lockstep with the reference
// (no silent wrong data) while both counters advance.
TEST(WayMemoSafety, CosimCleanUnderSetConflictsWithStaleReplays)
{
    PipelineConfig pipe = predictorPipelineConfig("fac+waymemo");
    pipe.dcache.assoc = 2;
    pipe.fac = facConfigFor(pipe.dcache);

    auto gen = [](AsmBuilder &as) {
        SymId buf = as.global("buf", 3 * 8192 + 64, 64, false);
        as.la(reg::s0, buf);
        as.li(reg::t9, 200);
        LabelId top = as.newLabel();
        as.bind(top);
        // Conflict-free block first: the trio's stale replays occupy
        // the next cycle's read port, so a trailing load could never
        // speculate (and so never hit the memo fresh).
        as.lw(reg::t3, 32, reg::s0);
        as.lw(reg::t0, 0, reg::s0);      // set-conflicting trio
        as.lw(reg::t1, 8192, reg::s0);
        as.lw(reg::t2, 16384, reg::s0);
        as.addi(reg::t9, reg::t9, -1);
        as.bne(reg::t9, reg::zero, top);
        as.halt();
    };

    CosimResult res = runCosim(gen, pipe, CosimOptions{});
    EXPECT_FALSE(res.diverged()) << res.report;
    EXPECT_TRUE(res.ranToHalt);
    EXPECT_GT(res.stats.wayMemoStale, 0u)
        << "set conflicts should have gone stale";
    EXPECT_GT(res.stats.wayMemoTagReadsSaved, 0u)
        << "the conflict-free block should hit fresh";
}

// ---------------------------------------------------------------------------
// Zero-attempt rate guards: 0.0 (never NaN) into the emitters

TEST(ZeroAttempts, RateFormulasReturnZeroNotNaN)
{
    PipeStats st{};
    EXPECT_EQ(st.strideFailRate(), 0.0);
    EXPECT_EQ(st.predFailRate(), 0.0);
    EXPECT_EQ(st.bandwidthOverhead(), 0.0);
    LtbProfile ltb{};
    EXPECT_EQ(ltb.failRate(), 0.0);
}

TEST(ZeroAttempts, NoLoadWorkloadEmitsZeroRatesThroughJson)
{
    // ALU-only program: stride predictor on, zero memory references.
    auto gen = [](AsmBuilder &as) {
        as.li(reg::t0, 5);
        as.li(reg::t1, 7);
        for (int i = 0; i < 16; ++i)
            as.add(reg::t2, reg::t0, reg::t1);
        as.halt();
    };
    CosimResult res =
        runCosim(gen, predictorPipelineConfig("fac+stride"),
                 CosimOptions{});
    ASSERT_FALSE(res.diverged()) << res.report;
    ASSERT_EQ(res.stats.loadsSpeculated + res.stats.storesSpeculated, 0u);

    obs::Registry reg;
    registerPipeStats(reg.root().group("pipeline"), res.stats);
    const std::string js = reg.jsonDump();
    // Bare NaN is not valid JSON, so a successful parse is itself part
    // of the guard; the rates must then be exactly zero.
    JsonParser p(js);
    std::shared_ptr<JsonValue> v = p.parse();
    ASSERT_NE(v, nullptr) << js;
    const JsonValue &st = *v->obj.at("stats");
    EXPECT_EQ(st.obj.at("pipeline.pred.fail_rate")->num, 0.0);
    EXPECT_EQ(st.obj.at("pipeline.pred.stride_fail_rate")->num, 0.0);
    EXPECT_EQ(st.obj.at("pipeline.pred.attempts")->num, 0.0);
    EXPECT_NE(js.find("nan"), 0u);
    EXPECT_EQ(js.find("nan"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Config validation

TEST(PredictorConfigDeathTest, ValidateRejectsIncoherentKnobs)
{
    PredictorConfig ok;
    ok.validate();  // defaults must be coherent

    PredictorConfig c = ok;
    c.strideEntries = 0;
    EXPECT_DEATH(c.validate(), "stride table entries");
    c = ok;
    c.strideEntries = 3;
    EXPECT_DEATH(c.validate(), "power of\\s+two");
    c = ok;
    c.wayMemoEntries = 0;
    EXPECT_DEATH(c.validate(), "way-memo table entries");
    c = ok;
    c.wayMemoEntries = 48;
    EXPECT_DEATH(c.validate(), "power");
    c = ok;
    c.strideConfMax = 0;
    EXPECT_DEATH(c.validate(), "ceiling");
    c = ok;
    c.strideConfThreshold = 0;
    EXPECT_DEATH(c.validate(), "threshold");
    c = ok;
    c.strideConfThreshold = ok.strideConfMax + 1;
    EXPECT_DEATH(c.validate(), "threshold");
}

TEST(PredictorModeDeathTest, PredictorPipelineConfigRejectsBadMode)
{
    EXPECT_DEATH(predictorPipelineConfig("bogus"),
                 "usage: --predictor expects one of");
    EXPECT_DEATH(predictorPipelineConfig("FAC"), "usage");  // case matters
    EXPECT_EQ(parse::oneOfFlag("--predictor", "fac+stride+waymemo",
                               kPredictorChoices),
              5u);
}

TEST(PredictorMode, ModeTableEnablesTheRightSources)
{
    EXPECT_FALSE(predictorPipelineConfig("none").facEnabled);
    EXPECT_FALSE(predictorPipelineConfig("none").pred.anyEnabled());
    EXPECT_TRUE(predictorPipelineConfig("fac").facEnabled);
    EXPECT_FALSE(predictorPipelineConfig("fac").pred.anyEnabled());
    EXPECT_FALSE(predictorPipelineConfig("stride").facEnabled);
    EXPECT_TRUE(predictorPipelineConfig("stride").pred.stride);
    PipelineConfig both = predictorPipelineConfig("fac+stride+waymemo");
    EXPECT_TRUE(both.facEnabled);
    EXPECT_TRUE(both.pred.stride);
    EXPECT_TRUE(both.pred.wayMemo);
    // Every mode must fingerprint distinctly: the pred knobs are
    // timing-relevant configuration.
    std::set<uint64_t> fps;
    for (const char *const *m = kPredictorChoices; *m; ++m)
        fps.insert(configFingerprint(predictorPipelineConfig(*m)));
    EXPECT_EQ(fps.size(), 6u);
}

// ---------------------------------------------------------------------------
// Fuzz: per-mode matrices and digests

TEST(PredictorFuzz, SmallBatchesRunCleanUnderEveryMode)
{
    for (const char *const *m = kPredictorChoices; *m; ++m) {
        verify::FuzzOptions fo;
        fo.count = 3;
        fo.predictor = *m;
        verify::FuzzBatchResult res = verify::runFuzzBatch(fo);
        EXPECT_EQ(res.divergingCases, 0u) << "mode " << *m;
        EXPECT_EQ(res.casesRun, 3u);
    }
}

TEST(PredictorFuzz, DigestsAreModeSensitiveAndFacKeepsLegacy)
{
    verify::FuzzOptions fo;
    fo.count = 2;
    std::set<uint64_t> digests;
    uint64_t fac_digest = 0, default_digest = 0;
    for (const char *const *m = kPredictorChoices; *m; ++m) {
        fo.predictor = *m;
        verify::FuzzBatchResult res = verify::runFuzzBatch(fo);
        digests.insert(res.digest);
        if (fo.predictor == "fac")
            fac_digest = res.digest;
    }
    {
        verify::FuzzOptions def;
        def.count = 2;
        default_digest = verify::runFuzzBatch(def).digest;
    }
    // Non-fac digests fold the matrix fingerprints, so every mode pins
    // a distinct value; the default must stay the legacy fac digest.
    EXPECT_EQ(digests.size(), 6u);
    EXPECT_EQ(default_digest, fac_digest);
}

TEST(PredictorFuzz, FacMatrixIsTheHistoricalOne)
{
    std::vector<verify::FuzzConfig> m = verify::fuzzConfigMatrix("fac");
    ASSERT_EQ(m.size(), 5u);
    EXPECT_EQ(m[0].name, "off");
    EXPECT_EQ(m[1].name, "hw");
    EXPECT_EQ(m[2].name, "hw+sw");
    EXPECT_EQ(m[3].name, "r+r");
    EXPECT_EQ(m[4].name, "hw+disamb");
    // The way-memo mode gets the extra 2-way variant.
    bool has_assoc2 = false;
    for (const verify::FuzzConfig &fc :
         verify::fuzzConfigMatrix("fac+waymemo"))
        has_assoc2 |= fc.name.find("assoc2") != std::string::npos;
    EXPECT_TRUE(has_assoc2);
}

// ---------------------------------------------------------------------------
// CLI: strict --predictor parsing against the real binary

#ifdef FACSIM_CLI_BIN

int
runCliCapture(const std::string &args, std::string *output)
{
    std::string cmd = std::string(FACSIM_CLI_BIN) + " " + args + " 2>&1";
    std::FILE *p = popen(cmd.c_str(), "r");
    EXPECT_NE(p, nullptr);
    output->clear();
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), p)) > 0)
        output->append(buf, n);
    return pclose(p);
}

void
expectCliUsageFailure(const std::string &args)
{
    std::string out;
    int status = runCliCapture(args, &out);
    EXPECT_NE(status, 0) << args << " should have failed:\n" << out;
    EXPECT_NE(out.find("usage"), std::string::npos)
        << args << " output:\n" << out;
}

TEST(PredictorCli, RejectsBadModesAndConflictingFlags)
{
    expectCliUsageFailure("time @compress --predictor=bogus");
    expectCliUsageFailure("time @compress --predictor=");
    expectCliUsageFailure("time @compress --predictor=FAC");
    expectCliUsageFailure("time @compress --predictor=fac --fac");
    expectCliUsageFailure("time @compress --predictor=stride --agi");
    expectCliUsageFailure("fuzz --count=1 --predictor=bogus");
}

TEST(PredictorCli, StatsOutCarriesPredGroup)
{
    const std::string path =
        ::testing::TempDir() + "/pred_stats_out.json";
    std::string out;
    int status = runCliCapture(
        "time @compress --predictor=fac+stride+waymemo "
        "--max-insts=20000 --stats-out=" + path, &out);
    ASSERT_EQ(status, 0) << out;

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string js = ss.str();
    JsonParser p(js);
    std::shared_ptr<JsonValue> v = p.parse();
    ASSERT_NE(v, nullptr) << js;
    const JsonValue &st = *v->obj.at("stats");
    EXPECT_GT(st.obj.at("pipeline.pred.attempts")->num, 0.0);
    ASSERT_TRUE(st.obj.count("pipeline.pred.stride_speculated"));
    ASSERT_TRUE(st.obj.count("pipeline.pred.waymemo_tag_reads_saved"));
    ASSERT_TRUE(st.obj.count("pipeline.pred.recovery_cycles"));
}

#endif // FACSIM_CLI_BIN

} // anonymous namespace
} // namespace facsim
