/** @file Unit tests for the load target buffer (Section 6 baseline). */

#include <gtest/gtest.h>

#include "core/ltb.hh"
#include "cpu/profiler.hh"

namespace facsim
{
namespace
{

TEST(Ltb, MissesWhenEmpty)
{
    Ltb l(16);
    EXPECT_FALSE(l.predict(0x00400000).hit);
}

TEST(Ltb, LastAddressPolicy)
{
    Ltb l(16, LtbPolicy::LastAddress);
    uint32_t pc = 0x00400010;
    l.update(pc, 0x10001000);
    LtbResult r = l.predict(pc);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.predictedAddr, 0x10001000u);
    // A scalar re-referenced at the same address stays predicted.
    l.update(pc, 0x10001000);
    EXPECT_EQ(l.predict(pc).predictedAddr, 0x10001000u);
}

TEST(Ltb, LastAddressFailsOnStrides)
{
    Ltb l(16, LtbPolicy::LastAddress);
    uint32_t pc = 0x00400010;
    l.update(pc, 0x1000);
    l.update(pc, 0x1004);
    // Still predicts the previous address, not the next element.
    EXPECT_EQ(l.predict(pc).predictedAddr, 0x1004u);
}

TEST(Ltb, StridePolicyTracksArrays)
{
    Ltb l(16, LtbPolicy::Stride);
    uint32_t pc = 0x00400010;
    l.update(pc, 0x1000);
    l.update(pc, 0x1004);   // stride learnt: +4
    EXPECT_EQ(l.predict(pc).predictedAddr, 0x1008u);
    l.update(pc, 0x1008);
    EXPECT_EQ(l.predict(pc).predictedAddr, 0x100cu);
}

TEST(Ltb, StrideRelearnsAfterBreak)
{
    Ltb l(16, LtbPolicy::Stride);
    uint32_t pc = 0x00400010;
    l.update(pc, 0x1000);
    l.update(pc, 0x1004);
    l.update(pc, 0x2000);   // pointer jumped
    EXPECT_EQ(l.predict(pc).predictedAddr,
              0x2000u + (0x2000u - 0x1004u));
}

TEST(Ltb, DirectMappedAliasing)
{
    Ltb l(16);
    uint32_t pc_a = 0x00400000;
    uint32_t pc_b = pc_a + 16 * 4;
    l.update(pc_a, 0x1111);
    l.update(pc_b, 0x2222);
    EXPECT_FALSE(l.predict(pc_a).hit);
    EXPECT_TRUE(l.predict(pc_b).hit);
}

TEST(Ltb, ResetInvalidates)
{
    Ltb l(16);
    l.update(0x00400000, 0x1234);
    l.reset();
    EXPECT_FALSE(l.predict(0x00400000).hit);
}

TEST(LtbDeathTest, RejectsNonPow2)
{
    EXPECT_DEATH(Ltb(10), "power of two");
}

TEST(LtbProfileStats, FailRate)
{
    LtbProfile p;
    EXPECT_DOUBLE_EQ(p.failRate(), 0.0);
    p.attempts = 4;
    p.correct = 3;
    EXPECT_DOUBLE_EQ(p.failRate(), 0.25);
}

} // anonymous namespace
} // namespace facsim
