/** @file Unit tests for the statistics helpers behind the benches. */

#include <gtest/gtest.h>

#include "sim/stats.hh"

namespace facsim
{
namespace
{

TEST(Stats, WeightedMeanBasics)
{
    EXPECT_DOUBLE_EQ(weightedMean({1.0, 3.0}, {1.0, 1.0}), 2.0);
    // Heavier weight dominates.
    EXPECT_DOUBLE_EQ(weightedMean({1.0, 3.0}, {3.0, 1.0}), 1.5);
    // Zero total weight degrades to 0.
    EXPECT_DOUBLE_EQ(weightedMean({5.0}, {0.0}), 0.0);
    EXPECT_DOUBLE_EQ(weightedMean({}, {}), 0.0);
}

TEST(Stats, WeightedMeanMatchesPaperStyleRunTimeWeighting)
{
    // Two programs: 1M and 3M cycles with speedups 1.2 and 1.1 — the
    // longer program pulls the average toward itself.
    double avg = weightedMean({1.2, 1.1}, {1e6, 3e6});
    EXPECT_NEAR(avg, 1.125, 1e-12);
}

TEST(StatsDeathTest, WeightedMeanSizeMismatch)
{
    EXPECT_DEATH(weightedMean({1.0}, {1.0, 2.0}), "mismatch");
}

TEST(Stats, Speedup)
{
    EXPECT_DOUBLE_EQ(speedup(200, 100), 2.0);
    EXPECT_DOUBLE_EQ(speedup(100, 100), 1.0);
    EXPECT_DOUBLE_EQ(speedup(100, 0), 0.0);
}

TEST(Stats, PctChange)
{
    EXPECT_DOUBLE_EQ(pctChange(100.0, 110.0), 10.0);
    EXPECT_DOUBLE_EQ(pctChange(100.0, 90.0), -10.0);
    EXPECT_DOUBLE_EQ(pctChange(0.0, 5.0), 0.0);
}

} // anonymous namespace
} // namespace facsim
