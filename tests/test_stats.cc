/** @file Unit tests for the statistics helpers behind the benches. */

#include <gtest/gtest.h>

#include "sim/stats.hh"

namespace facsim
{
namespace
{

TEST(Stats, WeightedMeanBasics)
{
    EXPECT_DOUBLE_EQ(weightedMean({1.0, 3.0}, {1.0, 1.0}), 2.0);
    // Heavier weight dominates.
    EXPECT_DOUBLE_EQ(weightedMean({1.0, 3.0}, {3.0, 1.0}), 1.5);
    // Zero total weight degrades to 0.
    EXPECT_DOUBLE_EQ(weightedMean({5.0}, {0.0}), 0.0);
    EXPECT_DOUBLE_EQ(weightedMean({}, {}), 0.0);
}

TEST(Stats, WeightedMeanMatchesPaperStyleRunTimeWeighting)
{
    // Two programs: 1M and 3M cycles with speedups 1.2 and 1.1 — the
    // longer program pulls the average toward itself.
    double avg = weightedMean({1.2, 1.1}, {1e6, 3e6});
    EXPECT_NEAR(avg, 1.125, 1e-12);
}

TEST(StatsDeathTest, WeightedMeanSizeMismatch)
{
    EXPECT_DEATH(weightedMean({1.0}, {1.0, 2.0}), "mismatch");
}

TEST(Stats, Speedup)
{
    EXPECT_DOUBLE_EQ(speedup(200, 100), 2.0);
    EXPECT_DOUBLE_EQ(speedup(100, 100), 1.0);
    EXPECT_DOUBLE_EQ(speedup(100, 0), 0.0);
}

TEST(Stats, PctChange)
{
    EXPECT_DOUBLE_EQ(pctChange(100.0, 110.0), 10.0);
    EXPECT_DOUBLE_EQ(pctChange(100.0, 90.0), -10.0);
    EXPECT_DOUBLE_EQ(pctChange(0.0, 5.0), 0.0);
}

TEST(Stats, GeoMean)
{
    EXPECT_DOUBLE_EQ(geoMean({4.0}), 4.0);
    EXPECT_NEAR(geoMean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geoMean({1.0, 2.0, 4.0}), 2.0, 1e-12);
    // Speedup ratios: the geomean of a ratio and its inverse is 1.
    EXPECT_NEAR(geoMean({1.25, 0.8}), 1.0, 1e-12);
    // Degenerate inputs degrade to 0 instead of NaN/-inf.
    EXPECT_DOUBLE_EQ(geoMean({}), 0.0);
    EXPECT_DOUBLE_EQ(geoMean({2.0, 0.0}), 0.0);
    EXPECT_DOUBLE_EQ(geoMean({2.0, -1.0}), 0.0);
}

TEST(Stats, HarmonicMean)
{
    EXPECT_DOUBLE_EQ(harmonicMean({4.0}), 4.0);
    // Classic rates example: 60 and 30 average to 40, not 45.
    EXPECT_NEAR(harmonicMean({60.0, 30.0}), 40.0, 1e-12);
    EXPECT_NEAR(harmonicMean({1.0, 2.0, 4.0}), 12.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(harmonicMean({}), 0.0);
    EXPECT_DOUBLE_EQ(harmonicMean({5.0, 0.0}), 0.0);
    EXPECT_DOUBLE_EQ(harmonicMean({5.0, -2.0}), 0.0);
}

} // anonymous namespace
} // namespace facsim
