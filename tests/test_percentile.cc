/**
 * @file
 * The shared percentile helper (util/percentile.hh): exact ranks land
 * on sample points, fractional ranks interpolate linearly, and the
 * degenerate inputs (empty, single element, clamped p) are all total.
 */

#include <vector>

#include <gtest/gtest.h>

#include "util/percentile.hh"

using facsim::percentile;

TEST(Percentile, ExactRanksReturnSamplePoints)
{
    std::vector<double> v{10, 20, 30, 40, 50};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(v, 0.25), 20.0);
    EXPECT_DOUBLE_EQ(percentile(v, 0.5), 30.0);
    EXPECT_DOUBLE_EQ(percentile(v, 0.75), 40.0);
    EXPECT_DOUBLE_EQ(percentile(v, 1.0), 50.0);
}

TEST(Percentile, FractionalRanksInterpolateLinearly)
{
    std::vector<double> v{0, 100};
    EXPECT_DOUBLE_EQ(percentile(v, 0.5), 50.0);
    EXPECT_DOUBLE_EQ(percentile(v, 0.9), 90.0);
    EXPECT_DOUBLE_EQ(percentile(v, 0.01), 1.0);

    std::vector<double> w{10, 20, 40};
    // rank = p * (n-1); p=0.75 -> rank 1.5 -> halfway 20..40.
    EXPECT_DOUBLE_EQ(percentile(w, 0.75), 30.0);
}

TEST(Percentile, EmptySampleYieldsZero)
{
    std::vector<double> v;
    EXPECT_DOUBLE_EQ(percentile(v, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(percentile(v, 1.0), 0.0);
}

TEST(Percentile, SingleElementIsEveryPercentile)
{
    std::vector<double> v{42.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 42.0);
    EXPECT_DOUBLE_EQ(percentile(v, 0.5), 42.0);
    EXPECT_DOUBLE_EQ(percentile(v, 1.0), 42.0);
}

TEST(Percentile, OutOfRangePIsClamped)
{
    std::vector<double> v{1, 2, 3};
    EXPECT_DOUBLE_EQ(percentile(v, -0.5), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 1.5), 3.0);
}
