/**
 * @file
 * Host-reference validation, part 2: the remaining kernels. Together
 * with test_workload_golden.cc every one of the 19 workloads has its
 * final result recomputed on the host from the initialised memory image
 * (bit-exact for the floating-point kernels, which perform the same
 * IEEE double operations in the same order).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "sim/machine.hh"

namespace facsim
{
namespace
{

uint32_t
symAddr(const Machine &m, const std::string &name)
{
    for (const DataSym &s : m.program().syms()) {
        if (s.name == name)
            return s.addr;
    }
    ADD_FAILURE() << "no symbol " << name;
    return 0;
}

uint32_t
readGlobal(Machine &m, const std::string &name)
{
    return m.memory().read32(symAddr(m, name));
}

double
readDouble(Machine &m, uint32_t addr)
{
    uint64_t bits64 = m.memory().read64(addr);
    double d;
    std::memcpy(&d, &bits64, 8);
    return d;
}

float
readFloat(Machine &m, uint32_t addr)
{
    uint32_t bits32 = m.memory().read32(addr);
    float f;
    std::memcpy(&f, &bits32, 4);
    return f;
}

BuildOptions
opts()
{
    BuildOptions b;
    b.policy = CodeGenPolicy::baseline();
    return b;
}

void
runToHalt(Machine &m)
{
    m.emulator().run(80'000'000);
    ASSERT_TRUE(m.emulator().halted());
}

TEST(WorkloadGolden2, DoducSeedSequence)
{
    Machine m(workload("doduc"), opts());
    uint32_t seed = 20220105;
    for (int s = 0; s < 3000; ++s)
        seed = seed * 1103515245u + 12345u;
    runToHalt(m);
    EXPECT_EQ(readGlobal(m, "result"), seed);
}

TEST(WorkloadGolden2, OraHitCount)
{
    Machine m(workload("ora"), opts());
    uint32_t seed = 987654321;
    uint32_t hits = 0;
    for (int r = 0; r < 16000; ++r) {
        seed = seed * 1103515245u + 12345u;
        double b = static_cast<double>(
            static_cast<int32_t>((seed >> 16) & 0xfff)) / 4096.0;
        seed = seed * 1103515245u + 24321u;
        double c = static_cast<double>(
            static_cast<int32_t>((seed >> 16) & 0xfff)) / 4096.0;
        double disc = b * b * 4.0 - c * 4.0 + 1.0;
        if (!(disc <= 0.0))
            ++hits;
    }
    runToHalt(m);
    EXPECT_EQ(readGlobal(m, "result"), hits);
}

TEST(WorkloadGolden2, ElvisScanAndReplace)
{
    Machine m(workload("elvis"), opts());
    Memory &mem = m.memory();
    const uint32_t n = 49152, passes = 3;
    uint32_t src = readGlobal(m, "src_ptr");

    uint32_t matches = 0, lines = 0;
    for (uint32_t p = 0; p < passes; ++p) {
        uint32_t i = 0;
        while (i < n) {
            uint8_t c = mem.read8(src + i++);
            if (c == 'f' && mem.read8(src + i) == 'o' &&
                mem.read8(src + i + 1) == 'r') {
                i += 2;
                ++matches;
            } else if (c == '\n') {
                ++lines;
            }
        }
    }
    runToHalt(m);
    EXPECT_EQ(readGlobal(m, "match_ct"), matches);
    EXPECT_EQ(readGlobal(m, "result"), matches + lines);
    // The replacement text landed in the destination buffer.
    if (matches) {
        uint32_t dst = readGlobal(m, "dst_ptr");
        bool found = false;
        for (uint32_t i = 0; i + 7 < n && !found; ++i) {
            found = mem.read8(dst + i) == 'f' &&
                mem.read8(dst + i + 1) == 'o' &&
                mem.read8(dst + i + 2) == 'r' &&
                mem.read8(dst + i + 3) == 'e' &&
                mem.read8(dst + i + 4) == 'v';
        }
        EXPECT_TRUE(found);
    }
}

TEST(WorkloadGolden2, Yacr2EdgesAndDensity)
{
    Machine m(workload("yacr2"), opts());
    Memory &mem = m.memory();
    const uint32_t nterm = 230, passes = 8;
    uint32_t top = symAddr(m, "top_terms");
    uint32_t bot = symAddr(m, "bot_terms");

    uint32_t edges_per_pass = 0;
    int32_t max_density = 0;
    for (uint32_t i = 0; i < nterm; ++i) {
        uint32_t ti = mem.read32(top + 4 * i);
        int32_t d = static_cast<int32_t>(ti + mem.read32(bot + 4 * i));
        max_density = std::max(max_density, d);
        for (uint32_t j = 0; j < nterm; ++j) {
            if (mem.read32(bot + 4 * j) == ti)
                ++edges_per_pass;
        }
    }
    runToHalt(m);
    EXPECT_EQ(readGlobal(m, "edge_ct"), edges_per_pass * passes);
    EXPECT_EQ(readGlobal(m, "max_density"),
              static_cast<uint32_t>(max_density));
}

TEST(WorkloadGolden2, EspressoNonzeroCount)
{
    Machine m(workload("espresso"), opts());
    Memory &mem = m.memory();
    const uint32_t ncubes = 64, words = 8, hdr = 8, passes = 100;
    uint32_t tab = symAddr(m, "cube_tab");

    uint32_t per_pass = 0;
    for (uint32_t i = 0; i + 1 < ncubes; ++i) {
        uint32_t a = mem.read32(tab + 4 * i);
        uint32_t b = mem.read32(tab + 4 * (i + 1));
        for (uint32_t w = 0; w < words; ++w) {
            if (mem.read32(a + hdr + 4 * w) &
                mem.read32(b + hdr + 4 * w))
                ++per_pass;
        }
    }
    runToHalt(m);
    EXPECT_EQ(readGlobal(m, "result"), per_pass * passes);
}

TEST(WorkloadGolden2, ScGridRecalculation)
{
    Machine m(workload("sc"), opts());
    Memory &mem = m.memory();
    const uint32_t rows = 48, cols = 48, ncells = rows * cols;
    const uint32_t passes = 9;
    uint32_t grid = readGlobal(m, "grid_ptr");

    std::vector<uint32_t> type(ncells), val(ncells), da(ncells),
        db(ncells);
    for (uint32_t i = 0; i < ncells; ++i) {
        type[i] = mem.read32(grid + 16 * i + 0);
        val[i] = mem.read32(grid + 16 * i + 4);
        da[i] = mem.read32(grid + 16 * i + 8);
        db[i] = mem.read32(grid + 16 * i + 12);
    }

    uint32_t total = 0;
    for (uint32_t p = 0; p < passes; ++p) {
        for (uint32_t i = 0; i < ncells; ++i) {
            if (type[i])
                val[i] = val[da[i]] + val[db[i]];
        }
        total = 0;
        for (uint32_t c = 0; c < cols; ++c)
            for (uint32_t r = 0; r < rows; ++r)
                total += val[r * cols + c];
    }
    runToHalt(m);
    EXPECT_EQ(readGlobal(m, "result"), total);
}

TEST(WorkloadGolden2, PerlHitCount)
{
    Machine m(workload("perl"), opts());
    Memory &mem = m.memory();
    const uint32_t nkeys = 256, rounds = 16;
    uint32_t ptrs = readGlobal(m, "key_ptrs");

    std::vector<std::string> keys(nkeys);
    for (uint32_t i = 0; i < nkeys; ++i) {
        uint32_t s = mem.read32(ptrs + 4 * i);
        std::string k;
        for (uint8_t c; (c = mem.read8(s + k.size())) != 0;)
            k += static_cast<char>(c);
        keys[i] = k;
    }

    std::set<std::string> table;
    uint32_t hits = 0;
    for (uint32_t r = 0; r < rounds; ++r) {
        for (const std::string &k : keys) {
            if (table.count(k))
                ++hits;
            else
                table.insert(k);
        }
    }
    runToHalt(m);
    EXPECT_EQ(readGlobal(m, "result"), hits);
}

TEST(WorkloadGolden2, AlvinnHiddenUnits)
{
    Machine m(workload("alvinn"), opts());
    const uint32_t nin = 200, nhid = 40, epochs = 6;
    uint32_t in_p = readGlobal(m, "input_ptr");
    uint32_t w_p = readGlobal(m, "weights_ptr");

    std::vector<double> in(nin), w(nin * nhid), hid(nhid, 0.0);
    for (uint32_t i = 0; i < nin; ++i)
        in[i] = readDouble(m, in_p + 8 * i);
    for (uint32_t i = 0; i < nin * nhid; ++i)
        w[i] = readDouble(m, w_p + 8 * i);

    const double lr = 1.0 / 64.0;
    for (uint32_t e = 0; e < epochs; ++e) {
        for (uint32_t h = 0; h < nhid; ++h) {
            double acc = 0.0;
            for (uint32_t i = 0; i < nin; ++i)
                acc = acc + w[h * nin + i] * in[i];
            hid[h] = acc / (std::abs(acc) + 1.0);
        }
        for (uint32_t h = 0; h < nhid; ++h) {
            double delta = hid[h] * lr;
            for (uint32_t i = 0; i < nin; ++i)
                w[h * nin + i] = w[h * nin + i] + in[i] * delta;
        }
    }
    int32_t expect = static_cast<int32_t>(hid[nhid - 1] * 10000.0);

    runToHalt(m);
    EXPECT_EQ(static_cast<int32_t>(readGlobal(m, "result")), expect);
}

TEST(WorkloadGolden2, EarFilterBank)
{
    Machine m(workload("ear"), opts());
    const uint32_t nfilters = 32, nsamples = 1800;
    CodeGenPolicy pol = CodeGenPolicy::baseline();
    const uint32_t fb = pol.structSize(48);
    uint32_t sig = readGlobal(m, "signal_ptr");
    uint32_t fil = readGlobal(m, "filters_ptr");

    struct Filt
    {
        double b0, b1, b2, s1, s2, gain;
    };
    std::vector<Filt> f(nfilters);
    for (uint32_t k = 0; k < nfilters; ++k) {
        uint32_t rec = fil + k * fb;
        f[k] = {readDouble(m, rec), readDouble(m, rec + 8),
                readDouble(m, rec + 16), readDouble(m, rec + 24),
                readDouble(m, rec + 32), readDouble(m, rec + 40)};
    }
    double last_out = 0.0;
    for (uint32_t s = 0; s < nsamples; ++s) {
        double x = readDouble(m, sig + 8 * s);
        double acc = 0.0;
        for (uint32_t k = 0; k < nfilters; ++k) {
            double y = f[k].b0 * x + f[k].b1 * f[k].s1 +
                f[k].b2 * f[k].s2;
            f[k].s2 = f[k].s1;
            f[k].s1 = y;
            acc = acc + f[k].gain * y;
        }
        last_out = acc;
    }
    int32_t expect = static_cast<int32_t>(last_out * 1000.0);

    runToHalt(m);
    EXPECT_EQ(static_cast<int32_t>(readGlobal(m, "result")), expect);
}

TEST(WorkloadGolden2, Mdljsp2SingleAndHalf)
{
    Machine m(workload("mdljsp2"), opts());
    Memory &mem = m.memory();
    const uint32_t np = 600, npairs = 4000, steps = 7;
    CodeGenPolicy pol = CodeGenPolicy::baseline();
    const uint32_t pb = pol.structSize(24);
    uint32_t parts = readGlobal(m, "particles_ptr");
    uint32_t pp = readGlobal(m, "pairs_ptr");

    std::vector<float> x(np), y(np), z(np), fx(np, 0), fy(np, 0);
    for (uint32_t i = 0; i < np; ++i) {
        x[i] = readFloat(m, parts + i * pb);
        y[i] = readFloat(m, parts + i * pb + 4);
        z[i] = readFloat(m, parts + i * pb + 8);
    }
    std::vector<std::pair<uint32_t, uint32_t>> pairs(npairs);
    for (uint32_t p = 0; p < npairs; ++p)
        pairs[p] = {mem.read32(pp + 8 * p), mem.read32(pp + 8 * p + 4)};

    const double eps = 1.0 / 50.0;
    for (uint32_t s = 0; s < steps; ++s) {
        for (auto [i, j] : pairs) {
            // The kernel widens floats to double, computes in double,
            // and narrows on each store — replicated exactly.
            double dx = static_cast<double>(x[i]) - x[j];
            double dy = static_cast<double>(y[i]) - y[j];
            double dz = static_cast<double>(z[i]) - z[j];
            double r2 = dx * dx + dy * dy;
            r2 = r2 + dz * dz;
            r2 = r2 + eps;
            double inv = 1.0 / r2;
            double pfx = inv * dx;
            fx[i] = static_cast<float>(fx[i] + pfx);
            fx[j] = static_cast<float>(fx[j] - pfx);
            double pfy = inv * dy;
            fy[i] = static_cast<float>(fy[i] + pfy);
            fy[j] = static_cast<float>(fy[j] - pfy);
        }
    }
    int32_t expect = static_cast<int32_t>(
        static_cast<double>(fx[0]) * 100.0);

    runToHalt(m);
    EXPECT_EQ(static_cast<int32_t>(readGlobal(m, "result")), expect);
}

TEST(WorkloadGolden2, Su2corLatticeTrace)
{
    Machine m(workload("su2cor"), opts());
    const uint32_t dim = 32, nsites = dim * dim, sb = 64, sweeps = 7;
    uint32_t links = readGlobal(m, "links_ptr");

    auto d = [&](uint32_t site, uint32_t off) {
        return readDouble(m, links + site * sb + off);
    };

    double acc = 0.0;
    for (uint32_t s = 0; s < sweeps; ++s) {
        double tr = 0.0;
        for (uint32_t site = 0; site < nsites - dim; ++site) {
            double are = d(site, 0), aim = d(site, 8);
            double bre = d(site, 16), bim = d(site, 24);
            double Bare = d(site + dim, 0), Baim = d(site + dim, 8);
            double Bcre = d(site + dim, 32), Bcim = d(site + dim, 40);
            double re = (are * Bare - aim * Baim) +
                (bre * Bcre - bim * Bcim);
            tr += re;
        }
        acc += tr / static_cast<double>(nsites);
    }
    int32_t expect = static_cast<int32_t>(acc * 1000.0);

    runToHalt(m);
    EXPECT_EQ(static_cast<int32_t>(readGlobal(m, "result")), expect);
}

TEST(WorkloadGolden2, TomcatvMeshRelaxation)
{
    Machine m(workload("tomcatv"), opts());
    const uint32_t n = 96, iters = 3;
    uint32_t xp = readGlobal(m, "xmesh_ptr");

    std::vector<double> x(n * n), rx(n * n, 0.0);
    for (uint32_t i = 0; i < n * n; ++i)
        x[i] = readDouble(m, xp + 8 * i);

    for (uint32_t it = 0; it < iters; ++it) {
        for (uint32_t i = 1; i + 1 < n; ++i) {
            for (uint32_t j = 1; j + 1 < n; ++j) {
                uint32_t k = i * n + j;
                double horiz = x[k - 1] + x[k + 1];
                double vert = x[k + n] + x[k - n];
                rx[k] = (horiz + vert) / 4.0 - x[k];
            }
        }
        for (uint32_t i = 1; i + 1 < n; ++i)
            for (uint32_t j = 1; j + 1 < n; ++j) {
                uint32_t k = i * n + j;
                x[k] = x[k] + rx[k] / 2.0;
            }
    }
    uint32_t centre = (n / 2) * n + n / 2;
    int32_t expect = static_cast<int32_t>(x[centre] * 100000.0);

    runToHalt(m);
    EXPECT_EQ(static_cast<int32_t>(readGlobal(m, "result")), expect);
}

} // anonymous namespace
} // namespace facsim
