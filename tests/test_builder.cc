/**
 * @file
 * AsmBuilder + Program tests: label binding, fixup recording, pseudo-op
 * expansion, and range checking.
 */

#include <gtest/gtest.h>

#include "asm/builder.hh"

namespace facsim
{
namespace
{

TEST(Builder, AppendsAndAddresses)
{
    Program p;
    AsmBuilder as(p);
    as.add(reg::t0, reg::t1, reg::t2);
    as.nop();
    EXPECT_EQ(p.numInsts(), 2u);
    EXPECT_EQ(p.instAddr(0), Program::textBase);
    EXPECT_EQ(p.instAddr(1), Program::textBase + 4);
}

TEST(Builder, LiSmallExpandsToOneInst)
{
    Program p;
    AsmBuilder as(p);
    as.li(reg::t0, 100);
    as.li(reg::t1, -3);
    EXPECT_EQ(p.numInsts(), 2u);
    EXPECT_EQ(p.inst(0).op, Op::ADDI);
}

TEST(Builder, LiLargeExpandsToLuiOri)
{
    Program p;
    AsmBuilder as(p);
    as.li(reg::t0, 0x12345678);
    ASSERT_EQ(p.numInsts(), 2u);
    EXPECT_EQ(p.inst(0).op, Op::LUI);
    EXPECT_EQ(p.inst(0).imm, 0x1234);
    EXPECT_EQ(p.inst(1).op, Op::ORI);
    EXPECT_EQ(p.inst(1).imm, 0x5678);
}

TEST(Builder, LiLargeWithZeroLowHalfSkipsOri)
{
    Program p;
    AsmBuilder as(p);
    as.li(reg::t0, 0x00400000);
    EXPECT_EQ(p.numInsts(), 1u);
    EXPECT_EQ(p.inst(0).op, Op::LUI);
}

TEST(Builder, BranchRecordsFixup)
{
    Program p;
    AsmBuilder as(p);
    LabelId l = as.newLabel();
    as.bind(l);
    as.nop();
    as.bne(reg::t0, reg::zero, l);
    ASSERT_EQ(p.fixups().size(), 1u);
    EXPECT_EQ(p.fixups()[0].kind, Fixup::Kind::Branch);
    EXPECT_EQ(p.labelIndex(l), 0u);
}

TEST(Builder, GlobalsRegisterSymbols)
{
    Program p;
    AsmBuilder as(p);
    SymId a = as.global("a", 64, 8, false);
    SymId b = as.globalInit("b", {1, 2, 3, 4}, 4, true);
    EXPECT_EQ(p.syms().size(), 2u);
    EXPECT_EQ(p.syms()[a].size, 64u);
    EXPECT_TRUE(p.syms()[b].smallData);
    EXPECT_EQ(p.syms()[b].init.size(), 4u);
}

TEST(Builder, GpAccessRecordsGpRelFixup)
{
    Program p;
    AsmBuilder as(p);
    SymId s = as.global("v", 4, 4, true);
    as.lwGp(reg::t0, s);
    as.swGp(reg::t1, s, 4);
    ASSERT_EQ(p.fixups().size(), 2u);
    EXPECT_EQ(p.fixups()[0].kind, Fixup::Kind::GpRel);
    EXPECT_EQ(p.fixups()[1].addend, 4);
    EXPECT_EQ(p.inst(0).rs, reg::gp);
}

TEST(Builder, LaExpandsToHiLoPair)
{
    Program p;
    AsmBuilder as(p);
    SymId s = as.global("arr", 128, 8, false);
    as.la(reg::t0, s);
    ASSERT_EQ(p.numInsts(), 2u);
    ASSERT_EQ(p.fixups().size(), 2u);
    EXPECT_EQ(p.fixups()[0].kind, Fixup::Kind::AbsHi);
    EXPECT_EQ(p.fixups()[1].kind, Fixup::Kind::AbsLo);
}

TEST(BuilderDeathTest, RangeChecks)
{
    Program p;
    AsmBuilder as(p);
    EXPECT_DEATH(as.addi(reg::t0, reg::t0, 40000), "out of range");
    EXPECT_DEATH(as.lw(reg::t0, 100000, reg::sp), "out of range");
    EXPECT_DEATH(as.lwPost(reg::t0, reg::zero, 4), "post-increment");
}

TEST(BuilderDeathTest, LabelMisuse)
{
    Program p;
    AsmBuilder as(p);
    LabelId l = as.newLabel();
    EXPECT_DEATH(p.labelIndex(l), "never bound");
    as.bind(l);
    EXPECT_DEATH(as.bind(l), "twice");
}

} // anonymous namespace
} // namespace facsim
