/**
 * @file
 * Unit tests for the bit-manipulation helpers, which underpin the
 * fast-address-calculation field arithmetic.
 */

#include <gtest/gtest.h>

#include "util/bits.hh"

namespace facsim
{
namespace
{

TEST(Bits, MaskLow)
{
    EXPECT_EQ(maskLow(0), 0u);
    EXPECT_EQ(maskLow(1), 1u);
    EXPECT_EQ(maskLow(5), 0x1fu);
    EXPECT_EQ(maskLow(16), 0xffffu);
    EXPECT_EQ(maskLow(31), 0x7fffffffu);
    EXPECT_EQ(maskLow(32), 0xffffffffu);
}

TEST(Bits, BitsExtract)
{
    EXPECT_EQ(bits(0xdeadbeefu, 31, 16), 0xdeadu);
    EXPECT_EQ(bits(0xdeadbeefu, 15, 0), 0xbeefu);
    EXPECT_EQ(bits(0xdeadbeefu, 7, 4), 0xeu);
    EXPECT_EQ(bits(0xffffffffu, 31, 0), 0xffffffffu);
}

TEST(Bits, SingleBit)
{
    EXPECT_EQ(bit(0x80000000u, 31), 1u);
    EXPECT_EQ(bit(0x80000000u, 30), 0u);
    EXPECT_EQ(bit(1u, 0), 1u);
}

TEST(Bits, SignExtend)
{
    EXPECT_EQ(sext(0xffffu, 16), -1);
    EXPECT_EQ(sext(0x8000u, 16), -32768);
    EXPECT_EQ(sext(0x7fffu, 16), 32767);
    EXPECT_EQ(sext(0u, 16), 0);
    EXPECT_EQ(sext(0x1f, 5), -1);
    EXPECT_EQ(sext(0x0f, 5), 15);
}

TEST(Bits, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(1ull << 40));
    EXPECT_FALSE(isPow2((1ull << 40) + 1));
}

TEST(Bits, RoundUpDown)
{
    EXPECT_EQ(roundUp(0, 8), 0u);
    EXPECT_EQ(roundUp(1, 8), 8u);
    EXPECT_EQ(roundUp(8, 8), 8u);
    EXPECT_EQ(roundUp(9, 8), 16u);
    EXPECT_EQ(roundDown(9, 8), 8u);
    EXPECT_EQ(roundDown(16, 8), 16u);
}

TEST(Bits, NextPow2)
{
    EXPECT_EQ(nextPow2(0), 1u);
    EXPECT_EQ(nextPow2(1), 1u);
    EXPECT_EQ(nextPow2(2), 2u);
    EXPECT_EQ(nextPow2(3), 4u);
    EXPECT_EQ(nextPow2(12), 16u);
    EXPECT_EQ(nextPow2(4096), 4096u);
    EXPECT_EQ(nextPow2(4097), 8192u);
}

TEST(Bits, Log2i)
{
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(2), 1u);
    EXPECT_EQ(log2i(32), 5u);
    EXPECT_EQ(log2i(16384), 14u);
}

} // anonymous namespace
} // namespace facsim
