/**
 * @file
 * Parallel experiment runner tests: the determinism guarantee (a batch
 * run on 4 threads is bitwise-identical to the same batch on 1), the
 * submission-order exception propagation, and the host-time accounting
 * the bench harnesses report.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/config.hh"
#include "sim/runner.hh"

namespace facsim
{
namespace
{

constexpr uint64_t kMaxInsts = 150'000;

std::vector<TimingRequest>
timingSweep()
{
    std::vector<TimingRequest> reqs;
    for (const char *name : {"grep", "compress", "xlisp"}) {
        for (bool fac_on : {false, true}) {
            TimingRequest req;
            req.workload = name;
            req.build.policy = fac_on ? CodeGenPolicy::withSupport()
                                      : CodeGenPolicy::baseline();
            req.pipe = fac_on ? facPipelineConfig() : baselineConfig();
            req.maxInsts = kMaxInsts;
            reqs.push_back(req);
        }
    }
    return reqs;
}

std::vector<ProfileRequest>
profileSweep()
{
    std::vector<ProfileRequest> reqs;
    for (const char *name : {"grep", "espresso"}) {
        ProfileRequest req;
        req.workload = name;
        req.build.policy = CodeGenPolicy::withSupport();
        req.facConfigs = {FacConfig{.blockBits = 5, .setBits = 14},
                          FacConfig{.blockBits = 4, .setBits = 14}};
        req.ltbConfigs = {{1024, LtbPolicy::LastAddress},
                          {1024, LtbPolicy::Stride}};
        req.withTlb = true;
        req.maxInsts = kMaxInsts;
        reqs.push_back(req);
    }
    return reqs;
}

void
expectSameStats(const PipeStats &a, const PipeStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.icacheAccesses, b.icacheAccesses);
    EXPECT_EQ(a.icacheMisses, b.icacheMisses);
    EXPECT_EQ(a.dcacheAccesses, b.dcacheAccesses);
    EXPECT_EQ(a.dcacheMisses, b.dcacheMisses);
    EXPECT_EQ(a.btbLookups, b.btbLookups);
    EXPECT_EQ(a.btbMispredicts, b.btbMispredicts);
    EXPECT_EQ(a.loadsSpeculated, b.loadsSpeculated);
    EXPECT_EQ(a.loadSpecFailures, b.loadSpecFailures);
    EXPECT_EQ(a.storesSpeculated, b.storesSpeculated);
    EXPECT_EQ(a.storeSpecFailures, b.storeSpecFailures);
    EXPECT_EQ(a.extraAccesses, b.extraAccesses);
    EXPECT_EQ(a.storeBufferFullStalls, b.storeBufferFullStalls);
    EXPECT_EQ(a.stallFetch, b.stallFetch);
    EXPECT_EQ(a.stallData, b.stallData);
    EXPECT_EQ(a.stallStructural, b.stallStructural);
    EXPECT_EQ(a.stallStoreBuffer, b.stallStoreBuffer);
}

void
expectSameProfile(const ProfileResult &a, const ProfileResult &b)
{
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.fracGlobal, b.fracGlobal);
    EXPECT_EQ(a.fracStack, b.fracStack);
    EXPECT_EQ(a.fracGeneral, b.fracGeneral);
    for (size_t c = 0; c < a.offsets.size(); ++c) {
        EXPECT_EQ(a.offsets[c].total, b.offsets[c].total);
        EXPECT_EQ(a.offsets[c].buckets, b.offsets[c].buckets);
    }
    ASSERT_EQ(a.fac.size(), b.fac.size());
    for (size_t f = 0; f < a.fac.size(); ++f) {
        EXPECT_EQ(a.fac[f].loadAttempts, b.fac[f].loadAttempts);
        EXPECT_EQ(a.fac[f].loadFailures, b.fac[f].loadFailures);
        EXPECT_EQ(a.fac[f].storeAttempts, b.fac[f].storeAttempts);
        EXPECT_EQ(a.fac[f].storeFailures, b.fac[f].storeFailures);
        EXPECT_EQ(a.fac[f].loadFailuresNoRR, b.fac[f].loadFailuresNoRR);
        EXPECT_EQ(a.fac[f].storeFailuresNoRR,
                  b.fac[f].storeFailuresNoRR);
        EXPECT_EQ(a.fac[f].causeCounts, b.fac[f].causeCounts);
    }
    ASSERT_EQ(a.ltb.size(), b.ltb.size());
    for (size_t l = 0; l < a.ltb.size(); ++l) {
        EXPECT_EQ(a.ltb[l].attempts, b.ltb[l].attempts);
        EXPECT_EQ(a.ltb[l].correct, b.ltb[l].correct);
    }
    EXPECT_EQ(a.tlbMissRatio, b.tlbMissRatio);
    EXPECT_EQ(a.memUsageBytes, b.memUsageBytes);
}

TEST(Runner, TimingDeterminism)
{
    std::vector<TimingRequest> reqs = timingSweep();
    RunnerReport serial_rep, parallel_rep;
    std::vector<TimingResult> serial =
        Runner(1).runTimings(reqs, &serial_rep);
    std::vector<TimingResult> parallel =
        Runner(4).runTimings(reqs, &parallel_rep);

    ASSERT_EQ(serial.size(), reqs.size());
    ASSERT_EQ(parallel.size(), reqs.size());
    for (size_t i = 0; i < reqs.size(); ++i) {
        SCOPED_TRACE(reqs[i].workload + (i % 2 ? " fac" : " base"));
        expectSameStats(serial[i].stats, parallel[i].stats);
        EXPECT_EQ(serial[i].memUsageBytes, parallel[i].memUsageBytes);
    }
    EXPECT_EQ(serial_rep.jobs, 1u);
    EXPECT_EQ(parallel_rep.jobs, 4u);
    EXPECT_EQ(serial_rep.simInsts, parallel_rep.simInsts);
}

TEST(Runner, ProfileDeterminism)
{
    std::vector<ProfileRequest> reqs = profileSweep();
    std::vector<ProfileResult> serial = Runner(1).runProfiles(reqs);
    std::vector<ProfileResult> parallel = Runner(4).runProfiles(reqs);

    ASSERT_EQ(serial.size(), reqs.size());
    ASSERT_EQ(parallel.size(), reqs.size());
    for (size_t i = 0; i < reqs.size(); ++i) {
        SCOPED_TRACE(reqs[i].workload);
        expectSameProfile(serial[i], parallel[i]);
    }
}

TEST(Runner, ExceptionPropagatesEarliestInSubmissionOrder)
{
    Runner r(4);
    try {
        r.forEachIndex(8, [](size_t i) -> uint64_t {
            if (i == 3)
                throw std::runtime_error("job 3");
            if (i == 5)
                throw std::runtime_error("job 5");
            return i;
        });
        FAIL() << "expected forEachIndex to rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "job 3");
    }
}

TEST(Runner, ExceptionDoesNotLoseOtherJobs)
{
    // The pool must finish every job even when one throws.
    Runner r(2);
    std::vector<uint64_t> done(6, 0);
    EXPECT_THROW(r.forEachIndex(done.size(),
                                [&](size_t i) -> uint64_t {
                                    if (i == 0)
                                        throw std::runtime_error("boom");
                                    done[i] = i + 1;
                                    return 0;
                                }),
                 std::runtime_error);
    for (size_t i = 1; i < done.size(); ++i)
        EXPECT_EQ(done[i], i + 1);
}

TEST(Runner, ReportAccountsForAllJobs)
{
    Runner r(3);
    RunnerReport rep = r.forEachIndex(
        5, [](size_t i) -> uint64_t { return 10 * (i + 1); });
    EXPECT_EQ(rep.numJobs, 5u);
    EXPECT_EQ(rep.jobs, 3u);
    EXPECT_EQ(rep.simInsts, 10u + 20 + 30 + 40 + 50);
    ASSERT_EQ(rep.perJob.size(), 5u);
    for (size_t i = 0; i < rep.perJob.size(); ++i)
        EXPECT_EQ(rep.perJob[i].simInsts, 10 * (i + 1));
    EXPECT_GE(rep.wallSeconds, 0.0);
    EXPECT_GE(rep.simInstsPerHostSecond(), 0.0);

    RunnerReport other = rep;
    other.jobs = 4;
    rep.merge(other);
    EXPECT_EQ(rep.jobs, 4u);
    EXPECT_EQ(rep.numJobs, 10u);
    EXPECT_EQ(rep.simInsts, 2u * 150);
    EXPECT_EQ(rep.perJob.size(), 10u);
}

TEST(Runner, ResolveJobsZeroMeansHardware)
{
    EXPECT_GE(resolveJobs(0), 1u);
    EXPECT_EQ(resolveJobs(7), 7u);
    // More workers than jobs degrades gracefully to one per job.
    RunnerReport rep =
        Runner(16).forEachIndex(2, [](size_t) -> uint64_t { return 1; });
    EXPECT_EQ(rep.jobs, 2u);
}

} // anonymous namespace
} // namespace facsim
