/**
 * @file
 * Linker: assigns addresses to data symbols, computes the global pointer,
 * and patches code fixups. This is where the paper's *linker* half of the
 * software support lives (Section 4, "Global Pointer Accesses"): with
 * support enabled, the global region starts at a power-of-two boundary
 * larger than the largest offset applied to gp and all gp offsets are
 * positive, so carry-free addition always succeeds for global accesses.
 * Without support, gp points into the middle of the small-data region at
 * whatever address layout produced (MIPS convention), giving large
 * positive *and negative* offsets from an unaligned base.
 */

#ifndef FACSIM_LINK_LINKER_HH
#define FACSIM_LINK_LINKER_HH

#include <cstdint>

#include "asm/program.hh"
#include "mem/memory.hh"

namespace facsim
{

/** Linker-side software-support switches. */
struct LinkPolicy
{
    /** Paper's gp alignment + positive-offset guarantee. */
    bool alignGlobalPointer = false;
    /**
     * Paper's static-allocation alignment: next power of two >= the
     * variable's size, capped at maxStaticAlign.
     */
    bool alignStatics = false;
    /** Cap for static alignment (paper: 32 bytes). */
    uint32_t maxStaticAlign = 32;
    /**
     * The paper's future-work extension (Section 5.4): "a strategy for
     * placement of large alignments should eliminate many array index
     * failures" — align large statics to their full (power-of-two)
     * size, capped at largeAlignCap, so register+register indices up to
     * the object size generate no carries into the set index.
     */
    bool alignArraysToSize = false;
    /** Cap for the future-work large alignment. */
    uint32_t largeAlignCap = 16 * 1024;
};

/** Result of linking a program. */
struct LinkedImage
{
    uint32_t dataBase = 0;     ///< first byte of the data segment
    uint32_t dataEnd = 0;      ///< one past the last static byte
    uint32_t gpValue = 0;      ///< global pointer register value
    uint32_t heapBase = 0;     ///< where the runtime heap begins
    uint64_t staticBytes = 0;  ///< static data footprint (memory usage)
    uint32_t entryPc = 0;      ///< program entry point
};

/** One-shot linker over an assembled Program. */
class Linker
{
  public:
    /** Base virtual address of the data segment. */
    static constexpr uint32_t dataBase = 0x10000000;

    explicit Linker(LinkPolicy policy) : pol(policy) {}

    /**
     * Lay out @p prog's data symbols, patch all fixups, re-encode the
     * text image, and copy initialised data into @p mem.
     *
     * @param prog the assembled program (modified in place).
     * @param mem simulated memory receiving the initialised data.
     * @return addresses and segment boundaries for the runtime.
     */
    LinkedImage link(Program &prog, Memory &mem) const;

  private:
    LinkPolicy pol;
};

} // namespace facsim

#endif // FACSIM_LINK_LINKER_HH
