#include "link/linker.hh"

#include <algorithm>

#include "util/bits.hh"
#include "util/logging.hh"

namespace facsim
{

LinkedImage
Linker::link(Program &prog, Memory &mem) const
{
    FACSIM_ASSERT(!prog.linked(), "program linked twice");

    LinkedImage img;
    img.dataBase = dataBase;
    img.entryPc = Program::textBase;

    auto &syms = prog.syms();

    auto alignOf = [&](const DataSym &s) -> uint32_t {
        uint32_t a = s.align ? s.align : 4;
        if (pol.alignStatics) {
            uint32_t want = nextPow2(s.size ? s.size : 1);
            if (want > pol.maxStaticAlign)
                want = pol.maxStaticAlign;
            if (want > a)
                a = want;
        }
        // The future-work large alignment never applies inside the
        // gp-addressed region: the padding it inserts can push symbols
        // out of the signed-16-bit gp window, and the aligned-gp policy
        // already makes every access in the region carry-free.
        if (pol.alignArraysToSize && !s.smallData &&
            s.size > pol.maxStaticAlign) {
            uint32_t want = nextPow2(s.size);
            if (want > pol.largeAlignCap)
                want = pol.largeAlignCap;
            if (want > a)
                a = want;
        }
        return a;
    };

    // --- Pass 1: general (large) data objects. --------------------------
    uint32_t cursor = dataBase;
    for (DataSym &s : syms) {
        if (s.smallData)
            continue;
        cursor = static_cast<uint32_t>(roundUp(cursor, alignOf(s)));
        s.addr = cursor;
        cursor += s.size;
    }

    // --- Pass 2: the gp-addressed small-data region. ---------------------
    // First compute the region's size so the alignment policy can pick a
    // boundary.
    uint32_t sdata_size = 0;
    {
        uint32_t c = 0;
        for (const DataSym &s : syms) {
            if (!s.smallData)
                continue;
            c = static_cast<uint32_t>(roundUp(c, alignOf(s)));
            c += s.size;
        }
        sdata_size = c;
    }

    uint32_t sdata_base;
    if (pol.alignGlobalPointer) {
        // Paper: relocate the global region to a power-of-two boundary
        // larger than the largest offset applied (== region size, since
        // offsets are forced positive and gp == region base).
        uint32_t boundary = nextPow2(sdata_size ? sdata_size : 1);
        if (boundary < 16)
            boundary = 16;
        sdata_base = static_cast<uint32_t>(roundUp(cursor, boundary));
        img.gpValue = sdata_base;
    } else {
        // No support: the region lands wherever layout left off (its
        // address depends on the preceding data-segment size and is not
        // specially aligned, exactly as the paper describes for normal
        // GLD output). The gp points a short way into the region so that
        // most offsets are large positive partial addresses with a small
        // negative fraction — the Figure 3 global-offset shape.
        sdata_base = static_cast<uint32_t>(roundUp(cursor, 8));
        uint32_t into = std::min<uint32_t>(sdata_size / 8, 0x7000);
        img.gpValue = (sdata_base + into + 4) & ~3u;
    }

    {
        uint32_t c = sdata_base;
        for (DataSym &s : syms) {
            if (!s.smallData)
                continue;
            c = static_cast<uint32_t>(roundUp(c, alignOf(s)));
            s.addr = c;
            c += s.size;
        }
        cursor = std::max(cursor, c);
    }

    img.dataEnd = cursor;
    img.staticBytes = cursor - dataBase;
    img.heapBase = static_cast<uint32_t>(roundUp(cursor, 4096));

    // --- Pass 3: patch fixups. -------------------------------------------
    for (const Fixup &f : prog.fixups()) {
        Inst &in = prog.inst(f.instIndex);
        switch (f.kind) {
          case Fixup::Kind::Branch: {
            int64_t disp = static_cast<int64_t>(prog.labelIndex(f.target)) -
                (static_cast<int64_t>(f.instIndex) + 1);
            FACSIM_ASSERT(disp >= -32768 && disp <= 32767,
                          "branch displacement out of range");
            in.imm = static_cast<int32_t>(disp);
            break;
          }
          case Fixup::Kind::Jump: {
            uint32_t word = Program::textBase / 4 +
                prog.labelIndex(f.target);
            in.imm = static_cast<int32_t>(word);
            break;
          }
          case Fixup::Kind::AbsHi: {
            uint32_t addr = syms.at(f.target).addr +
                static_cast<uint32_t>(f.addend);
            in.imm = static_cast<int32_t>(addr >> 16);
            break;
          }
          case Fixup::Kind::AbsLo: {
            uint32_t addr = syms.at(f.target).addr +
                static_cast<uint32_t>(f.addend);
            in.imm = static_cast<int32_t>(addr & 0xffffu);
            break;
          }
          case Fixup::Kind::GpRel: {
            int64_t off = static_cast<int64_t>(syms.at(f.target).addr) +
                f.addend - img.gpValue;
            FACSIM_ASSERT(off >= -32768 && off <= 32767,
                          "gp-relative offset %lld out of range for '%s'",
                          static_cast<long long>(off),
                          syms.at(f.target).name.c_str());
            if (pol.alignGlobalPointer)
                FACSIM_ASSERT(off >= 0, "gp offsets must be positive "
                              "under the alignment policy");
            in.imm = static_cast<int32_t>(off);
            break;
          }
        }
    }

    // --- Pass 4: produce the binary text image and load data. ------------
    prog.reencode();
    const auto &words = prog.words();
    for (uint32_t i = 0; i < words.size(); ++i)
        mem.write32(Program::textBase + 4 * i, words[i]);

    for (const DataSym &s : syms) {
        if (!s.init.empty())
            mem.writeBlock(s.addr, s.init.data(),
                           static_cast<uint32_t>(s.init.size()));
    }

    prog.markLinked();
    return img;
}

} // namespace facsim
