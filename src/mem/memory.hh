/**
 * @file
 * Sparse paged main memory for the simulated machine. Pages are allocated
 * on first touch; the number of touched pages is the "memory usage" metric
 * of Tables 3 and 4 (the paper uses it as an indirect indicator of virtual
 * memory pressure from the alignment optimizations).
 *
 * The accessors are split into an inline fast path and an out-of-line
 * slow path. The fast path goes through a small direct-mapped cache of
 * page pointers: workloads interleave accesses to a handful of hot
 * regions (stack, globals, a few heap structures), which a one-entry
 * cache thrashes on, so the common case is one tag compare in a
 * 64-slot array and a memcpy — no hash lookup and no cross-TU call.
 *
 * Thread-safety: each Memory instance is confined to one simulation;
 * concurrent access to *distinct* instances is safe (no shared state),
 * concurrent access to one instance is not (reads allocate pages and
 * update the page-pointer cache).
 */

#ifndef FACSIM_MEM_MEMORY_HH
#define FACSIM_MEM_MEMORY_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "util/serialize.hh"

namespace facsim
{

/** Byte-addressed 32-bit sparse memory. Little-endian accessors. */
class Memory
{
  public:
    /** Page size in bytes (4 KB, matching the TLB model). */
    static constexpr uint32_t pageBytes = 4096;

    /** Read one byte (allocates the page if untouched; reads as zero). */
    uint8_t
    read8(uint32_t addr)
    {
        if (uint8_t *p = cachedPage(addr / pageBytes))
            return p[addr % pageBytes];
        return read8Slow(addr);
    }

    /** Read a 16-bit little-endian value. */
    uint16_t
    read16(uint32_t addr)
    {
        uint32_t off = addr % pageBytes;
        uint8_t *p = cachedPage(addr / pageBytes);
        if (p && off + 2 <= pageBytes) {
            uint16_t v;
            std::memcpy(&v, p + off, 2);
            return v;
        }
        return read16Slow(addr);
    }

    /** Read a 32-bit little-endian value. */
    uint32_t
    read32(uint32_t addr)
    {
        uint32_t off = addr % pageBytes;
        uint8_t *p = cachedPage(addr / pageBytes);
        if (p && off + 4 <= pageBytes) {
            uint32_t v;
            std::memcpy(&v, p + off, 4);
            return v;
        }
        return read32Slow(addr);
    }

    /** Read a 64-bit little-endian value. */
    uint64_t
    read64(uint32_t addr)
    {
        uint32_t off = addr % pageBytes;
        uint8_t *p = cachedPage(addr / pageBytes);
        if (p && off + 8 <= pageBytes) {
            uint64_t v;
            std::memcpy(&v, p + off, 8);
            return v;
        }
        return read64Slow(addr);
    }

    /** Write one byte. */
    void
    write8(uint32_t addr, uint8_t v)
    {
        if (uint8_t *p = cachedPage(addr / pageBytes)) {
            p[addr % pageBytes] = v;
            return;
        }
        write8Slow(addr, v);
    }

    /** Write a 16-bit little-endian value. */
    void
    write16(uint32_t addr, uint16_t v)
    {
        uint32_t off = addr % pageBytes;
        uint8_t *p = cachedPage(addr / pageBytes);
        if (p && off + 2 <= pageBytes) {
            std::memcpy(p + off, &v, 2);
            return;
        }
        write16Slow(addr, v);
    }

    /** Write a 32-bit little-endian value. */
    void
    write32(uint32_t addr, uint32_t v)
    {
        uint32_t off = addr % pageBytes;
        uint8_t *p = cachedPage(addr / pageBytes);
        if (p && off + 4 <= pageBytes) {
            std::memcpy(p + off, &v, 4);
            return;
        }
        write32Slow(addr, v);
    }

    /** Write a 64-bit little-endian value. */
    void
    write64(uint32_t addr, uint64_t v)
    {
        uint32_t off = addr % pageBytes;
        uint8_t *p = cachedPage(addr / pageBytes);
        if (p && off + 8 <= pageBytes) {
            std::memcpy(p + off, &v, 8);
            return;
        }
        write64Slow(addr, v);
    }

    /** Copy @p bytes into memory starting at @p addr. */
    void writeBlock(uint32_t addr, const uint8_t *data, uint32_t len);

    /**
     * Compare the full contents of two memories, treating untouched
     * pages as zero-filled (touching a page never changes contents, so
     * sparseness differences are not differences).
     *
     * @param other memory to compare against.
     * @param addr set to the lowest differing byte address on mismatch.
     * @return true when the memories differ.
     */
    bool firstDifferenceWith(const Memory &other, uint32_t *addr) const;

    /** Number of distinct pages touched so far. */
    uint64_t pagesTouched() const { return pages.size(); }

    /** Total bytes of touched pages (the memory-usage statistic). */
    uint64_t memUsageBytes() const { return pages.size() * pageBytes; }

    /** Drop all contents and usage accounting. */
    void
    clear()
    {
        pages.clear();
        for (PageSlot &s : pageCache)
            s = PageSlot{};
    }

    /**
     * Serialize every touched page, sorted by page number so the
     * encoding is independent of hash-map iteration order.
     */
    void saveState(ser::Writer &w) const;

    /**
     * Replace all contents with state saved by saveState; the restored
     * touched-page set (and therefore memUsageBytes()) matches the
     * saved memory exactly.
     */
    void loadState(ser::Reader &r);

  private:
    uint8_t *pagePtr(uint32_t addr);

    /**
     * Direct-mapped cache slot over the page map. The sentinel page
     * number can never match a real one (32-bit addresses / 4 KB pages
     * top out at 0xfffff), so a tag match implies ptr is valid.
     */
    struct PageSlot
    {
        uint32_t num = 0xffffffffu;
        uint8_t *ptr = nullptr;
    };
    static constexpr uint32_t pageCacheSlots = 64;

    /** Cached pointer to page @p pn, or nullptr on a cache miss. */
    uint8_t *
    cachedPage(uint32_t pn)
    {
        const PageSlot &s = pageCache[pn % pageCacheSlots];
        return s.num == pn ? s.ptr : nullptr;
    }

    uint8_t read8Slow(uint32_t addr);
    uint16_t read16Slow(uint32_t addr);
    uint32_t read32Slow(uint32_t addr);
    uint64_t read64Slow(uint32_t addr);
    void write8Slow(uint32_t addr, uint8_t v);
    void write16Slow(uint32_t addr, uint16_t v);
    void write32Slow(uint32_t addr, uint32_t v);
    void write64Slow(uint32_t addr, uint64_t v);

    std::unordered_map<uint32_t, std::unique_ptr<uint8_t[]>> pages;

    std::array<PageSlot, pageCacheSlots> pageCache{};
};

} // namespace facsim

#endif // FACSIM_MEM_MEMORY_HH
