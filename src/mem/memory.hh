/**
 * @file
 * Sparse paged main memory for the simulated machine. Pages are allocated
 * on first touch; the number of touched pages is the "memory usage" metric
 * of Tables 3 and 4 (the paper uses it as an indirect indicator of virtual
 * memory pressure from the alignment optimizations).
 */

#ifndef FACSIM_MEM_MEMORY_HH
#define FACSIM_MEM_MEMORY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace facsim
{

/** Byte-addressed 32-bit sparse memory. Little-endian accessors. */
class Memory
{
  public:
    /** Page size in bytes (4 KB, matching the TLB model). */
    static constexpr uint32_t pageBytes = 4096;

    /** Read one byte (allocates the page if untouched; reads as zero). */
    uint8_t read8(uint32_t addr);
    /** Read a 16-bit little-endian value. */
    uint16_t read16(uint32_t addr);
    /** Read a 32-bit little-endian value. */
    uint32_t read32(uint32_t addr);
    /** Read a 64-bit little-endian value. */
    uint64_t read64(uint32_t addr);

    /** Write one byte. */
    void write8(uint32_t addr, uint8_t v);
    /** Write a 16-bit little-endian value. */
    void write16(uint32_t addr, uint16_t v);
    /** Write a 32-bit little-endian value. */
    void write32(uint32_t addr, uint32_t v);
    /** Write a 64-bit little-endian value. */
    void write64(uint32_t addr, uint64_t v);

    /** Copy @p bytes into memory starting at @p addr. */
    void writeBlock(uint32_t addr, const uint8_t *data, uint32_t len);

    /** Number of distinct pages touched so far. */
    uint64_t pagesTouched() const { return pages.size(); }

    /** Total bytes of touched pages (the memory-usage statistic). */
    uint64_t memUsageBytes() const { return pages.size() * pageBytes; }

    /** Drop all contents and usage accounting. */
    void
    clear()
    {
        pages.clear();
        lastPageNum = 0xffffffffu;
        lastPage = nullptr;
    }

  private:
    uint8_t *pagePtr(uint32_t addr);

    std::unordered_map<uint32_t, std::unique_ptr<uint8_t[]>> pages;

    // One-entry page cache: workloads hammer the same pages repeatedly.
    uint32_t lastPageNum = 0xffffffffu;
    uint8_t *lastPage = nullptr;
};

} // namespace facsim

#endif // FACSIM_MEM_MEMORY_HH
