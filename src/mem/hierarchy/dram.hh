/**
 * @file
 * Simple main-memory backend: a fixed access latency plus a bandwidth /
 * occupancy constraint. The channel can start at most one request every
 * `issueInterval` cycles; requests arriving while the channel is busy
 * queue (FCFS) and their queueing delay is accounted separately from
 * the access latency, so the benches can tell "DRAM is slow" apart from
 * "DRAM is saturated". Deliberately not a banked DDR state machine —
 * the hierarchy experiments need a latency/bandwidth knob, not a
 * protocol model.
 */

#ifndef FACSIM_MEM_HIERARCHY_DRAM_HH
#define FACSIM_MEM_HIERARCHY_DRAM_HH

#include <cstdint>

#include "mem/hierarchy/mem_port.hh"

namespace facsim
{

/** Main-memory timing parameters. */
struct DramConfig
{
    /** Request start to data available, in cycles. */
    unsigned latency = 80;
    /** Minimum cycles between request starts (0 = unconstrained). */
    unsigned issueInterval = 8;
};

/** Traffic and contention counters. */
struct DramStats
{
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t queuedCycles = 0;  ///< total FCFS wait before starting
    uint64_t busyCycles = 0;    ///< channel occupancy (issueInterval each)
};

/** Fixed-latency, bandwidth-limited memory level. */
class DramModel final : public MemLevel
{
  public:
    explicit DramModel(const DramConfig &config) : cfg(config) {}

    LevelResult
    access(uint32_t, bool is_write, uint64_t t) override
    {
        uint64_t start = t < nextFree ? nextFree : t;
        st.queuedCycles += start - t;
        if (cfg.issueInterval) {
            nextFree = start + cfg.issueInterval;
            st.busyCycles += cfg.issueInterval;
        }
        ++(is_write ? st.writes : st.reads);
        return {start + cfg.latency, true, memlevel::Mem};
    }

    void warm(uint32_t, bool) override {}  // no warmable state

    /** The channel's busy-until cycle (bandwidth constraint). */
    uint64_t busyUntil() const override { return nextFree; }

    void
    reset() override
    {
        nextFree = 0;
        st = DramStats{};
    }

    /** Serialize channel occupancy (absolute cycle) and statistics. */
    void
    saveState(ser::Writer &w) const
    {
        w.u64(nextFree);
        w.u64(st.reads);
        w.u64(st.writes);
        w.u64(st.queuedCycles);
        w.u64(st.busyCycles);
    }

    /** Restore state saved by saveState. */
    void
    loadState(ser::Reader &r)
    {
        nextFree = r.u64();
        st.reads = r.u64();
        st.writes = r.u64();
        st.queuedCycles = r.u64();
        st.busyCycles = r.u64();
    }

    const char *name() const override { return "dram"; }

    const DramStats &stats() const { return st; }
    const DramConfig &config() const { return cfg; }

  private:
    DramConfig cfg;
    uint64_t nextFree = 0;
    DramStats st;
};

} // namespace facsim

#endif // FACSIM_MEM_HIERARCHY_DRAM_HH
