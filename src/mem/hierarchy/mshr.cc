#include "mem/hierarchy/mshr.hh"

#include <algorithm>

#include "util/logging.hh"

namespace facsim
{

MshrFile::MshrFile(const MshrConfig &config)
    : cfg(config)
{
    slots.resize(cfg.entries);
}

uint64_t
MshrFile::inflightFill(uint32_t block, uint64_t t) const
{
    for (const Entry &e : slots) {
        if (e.fillCycle > t && e.block == block)
            return e.fillCycle;
    }
    return 0;
}

uint64_t
MshrFile::whenFree(uint64_t t) const
{
    if (slots.empty())  // disabled: unlimited entries, never waits
        return t;
    uint64_t earliest = UINT64_MAX;
    for (const Entry &e : slots) {
        if (e.fillCycle <= t)
            return t;
        earliest = std::min(earliest, e.fillCycle);
    }
    return earliest;
}

void
MshrFile::allocate(uint32_t block, uint64_t t, uint64_t fill_cycle)
{
    for (Entry &e : slots) {
        if (e.fillCycle <= t) {
            e.block = block;
            e.fillCycle = fill_cycle;
            unsigned occ = occupancyAt(t);
            st.maxOccupancy = std::max(st.maxOccupancy, occ);
            st.occupancySum += occ;
            ++st.allocations;
            return;
        }
    }
    panic("MSHR allocate with no free entry (caller must wait for "
          "whenFree)");
}

unsigned
MshrFile::occupancyAt(uint64_t t) const
{
    unsigned n = 0;
    for (const Entry &e : slots)
        n += e.fillCycle > t;
    return n;
}

uint64_t
MshrFile::maxFillCycle() const
{
    uint64_t m = 0;
    for (const Entry &e : slots)
        m = std::max(m, e.fillCycle);
    return m;
}

void
MshrFile::reset()
{
    for (Entry &e : slots)
        e = Entry{};
    st = MshrStats{};
}

void
MshrFile::saveState(ser::Writer &w) const
{
    w.u64(slots.size());
    for (const Entry &e : slots) {
        w.u32(e.block);
        w.u64(e.fillCycle);
    }
    w.u64(st.allocations);
    w.u64(st.merges);
    w.u64(st.fullStallCycles);
    w.u32(st.maxOccupancy);
    w.u64(st.occupancySum);
}

void
MshrFile::loadState(ser::Reader &r)
{
    uint64_t n = r.u64();
    FACSIM_ASSERT(n == slots.size(),
                  "checkpoint MSHR file has %llu entries, this config "
                  "has %zu",
                  static_cast<unsigned long long>(n), slots.size());
    for (Entry &e : slots) {
        e.block = r.u32();
        e.fillCycle = r.u64();
    }
    st.allocations = r.u64();
    st.merges = r.u64();
    st.fullStallCycles = r.u64();
    st.maxOccupancy = r.u32();
    st.occupancySum = r.u64();
}

} // namespace facsim
