#include "mem/hierarchy/mshr.hh"

#include <algorithm>

#include "util/logging.hh"

namespace facsim
{

MshrFile::MshrFile(const MshrConfig &config)
    : cfg(config)
{
    slots.resize(cfg.entries);
}

uint64_t
MshrFile::inflightFill(uint32_t block, uint64_t t) const
{
    for (const Entry &e : slots) {
        if (e.fillCycle > t && e.block == block)
            return e.fillCycle;
    }
    return 0;
}

uint64_t
MshrFile::whenFree(uint64_t t) const
{
    if (slots.empty())  // disabled: unlimited entries, never waits
        return t;
    uint64_t earliest = UINT64_MAX;
    for (const Entry &e : slots) {
        if (e.fillCycle <= t)
            return t;
        earliest = std::min(earliest, e.fillCycle);
    }
    return earliest;
}

void
MshrFile::allocate(uint32_t block, uint64_t t, uint64_t fill_cycle)
{
    for (Entry &e : slots) {
        if (e.fillCycle <= t) {
            e.block = block;
            e.fillCycle = fill_cycle;
            unsigned occ = occupancyAt(t);
            st.maxOccupancy = std::max(st.maxOccupancy, occ);
            st.occupancySum += occ;
            ++st.allocations;
            return;
        }
    }
    panic("MSHR allocate with no free entry (caller must wait for "
          "whenFree)");
}

unsigned
MshrFile::occupancyAt(uint64_t t) const
{
    unsigned n = 0;
    for (const Entry &e : slots)
        n += e.fillCycle > t;
    return n;
}

void
MshrFile::reset()
{
    for (Entry &e : slots)
        e = Entry{};
    st = MshrStats{};
}

} // namespace facsim
