#include "mem/hierarchy/hierarchy.hh"

#include <algorithm>

#include "obs/debug.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace facsim
{

// ---------------------------------------------------------------------------
// HierarchyConfig

void
HierarchyConfig::validate() const
{
    if (depth == HierarchyDepth::L2)
        l2.validate("L2 cache");
    if (tlbEnabled) {
        FACSIM_ASSERT(tlbEntries > 0, "TLB needs at least one entry");
        FACSIM_ASSERT(isPow2(tlbPageBytes),
                      "TLB page size must be a power of two (got %u)",
                      tlbPageBytes);
    }
}

// ---------------------------------------------------------------------------
// WritebackBuffer

WritebackBuffer::WritebackBuffer(unsigned entries)
{
    slots.resize(entries, 0);
}

uint64_t
WritebackBuffer::whenFree(uint64_t t) const
{
    if (slots.empty())  // disabled: writeback traffic unmodelled
        return t;
    uint64_t earliest = UINT64_MAX;
    for (uint64_t busy : slots) {
        if (busy <= t)
            return t;
        earliest = std::min(earliest, busy);
    }
    return earliest;
}

void
WritebackBuffer::occupy(uint64_t t, uint64_t done_cycle)
{
    for (uint64_t &busy : slots) {
        if (busy <= t) {
            busy = done_cycle;
            return;
        }
    }
    panic("writeback buffer occupy with no free slot (caller must wait "
          "for whenFree)");
}

uint64_t
WritebackBuffer::maxBusyCycle() const
{
    uint64_t m = 0;
    for (uint64_t busy : slots)
        m = std::max(m, busy);
    return m;
}

void
WritebackBuffer::reset()
{
    std::fill(slots.begin(), slots.end(), 0);
    fullStallCycles_ = 0;
}

void
WritebackBuffer::saveState(ser::Writer &w) const
{
    w.u64(slots.size());
    for (uint64_t busy : slots)
        w.u64(busy);
    w.u64(fullStallCycles_);
}

void
WritebackBuffer::loadState(ser::Reader &r)
{
    uint64_t n = r.u64();
    FACSIM_ASSERT(n == slots.size(),
                  "checkpoint writeback buffer has %llu slots, this "
                  "config has %zu",
                  static_cast<unsigned long long>(n), slots.size());
    for (uint64_t &busy : slots)
        busy = r.u64();
    fullStallCycles_ = r.u64();
}

// ---------------------------------------------------------------------------
// CacheLevel

CacheLevel::CacheLevel(const char *name, const Params &params,
                       MemLevel &below)
    : name_(name), prm(params), cache(params.cache), mshr(params.mshr),
      wb(params.wbEntries), next(below)
{
}

LevelResult
CacheLevel::access(uint32_t addr, bool is_write, uint64_t t)
{
    uint64_t at = t + prm.hitLatency;
    CacheAccess acc = is_write ? cache.write(addr) : cache.read(addr);
    uint32_t block = addr >> prm.cache.blockBits();

    // Wait until the MSHR file has a free entry, charging the stall.
    auto wait_for_entry = [&](uint64_t from) {
        uint64_t free_at = mshr.whenFree(from);
        if (free_at > from)
            mshr.noteFullStall(free_at - from);
        return free_at;
    };

    if (acc.hit) {
        if (!mshr.enabled())
            return {at, true, prm.levelId};
        // The tag model fills on the primary miss, so an access to a
        // line whose fill is still in flight looks like a hit; its data
        // is only available once the fill lands. Attributed to this
        // level: the merge is serviced out of this level's MSHR file.
        uint64_t fill = mshr.inflightFill(block, at);
        if (!fill)
            return {at, true, prm.levelId};
        if (mshr.mergeSecondary()) {
            mshr.noteMerge();
            return {fill, true, prm.levelId};
        }
        // No secondary-miss support: re-request the line below,
        // occupying a fresh entry.
        uint64_t start = wait_for_entry(at);
        LevelResult below = next.access(addr, false, start);
        mshr.allocate(block, start, below.doneCycle);
        return {below.doneCycle, true, below.level};
    }

    // Primary miss.
    FACSIM_DPRINTF(Hier, "%s miss addr=%08x cycle=%llu%s", name_.c_str(),
                   addr, static_cast<unsigned long long>(t),
                   acc.writeback ? " (dirty victim)" : "");
    uint64_t start = at;
    if (mshr.enabled())
        start = wait_for_entry(at);
    if (acc.writeback && wb.enabled()) {
        // The dirty victim needs a writeback-buffer slot before the
        // fill may proceed; the drain itself is traffic to the level
        // below (write-allocate there is the victim's home).
        uint64_t free_at = wb.whenFree(start);
        if (free_at > start) {
            wb.noteFullStall(free_at - start);
            start = free_at;
        }
        LevelResult drained = next.access(acc.victimAddr, true, start);
        wb.occupy(start, drained.doneCycle);
    }
    // The line fill is a read from below regardless of the demand type
    // (write-allocate).
    LevelResult below = next.access(addr, false, start);
    if (mshr.enabled())
        mshr.allocate(block, start, below.doneCycle);
    return {below.doneCycle, false, below.level};
}

void
CacheLevel::warm(uint32_t addr, bool is_write)
{
    CacheAccess acc = cache.warm(addr, is_write);
    if (acc.hit)
        return;
    // Mirror access()'s traffic: a dirty victim drains below (its home
    // is the next level, write-allocate there), then the line fills as
    // a read from below regardless of the demand type.
    if (acc.writeback)
        next.warm(acc.victimAddr, true);
    next.warm(addr, false);
}

uint64_t
CacheLevel::busyUntil() const
{
    return std::max({mshr.maxFillCycle(), wb.maxBusyCycle(),
                     next.busyUntil()});
}

void
CacheLevel::reset()
{
    cache.reset();
    mshr.reset();
    wb.reset();
}

void
CacheLevel::saveState(ser::Writer &w) const
{
    cache.saveState(w);
    mshr.saveState(w);
    wb.saveState(w);
}

void
CacheLevel::loadState(ser::Reader &r)
{
    cache.loadState(r);
    mshr.loadState(r);
    wb.loadState(r);
}

LevelStats
CacheLevel::stats() const
{
    LevelStats s;
    s.name = name_;
    s.accesses = cache.accesses();
    s.misses = cache.misses();
    s.writebacks = cache.writebacks();
    s.missRatio = cache.missRatio();
    s.mshr = mshr.stats();
    s.wbFullStallCycles = wb.fullStallCycles();
    return s;
}

// ---------------------------------------------------------------------------
// MemHierarchy

MemHierarchy::MemHierarchy(const CacheConfig &l1,
                           const HierarchyConfig &config)
    : cfg(config)
{
    l1.validate("L1 data cache");
    cfg.validate();

    CacheLevel::Params p1{l1, 0, cfg.l1Mshr, cfg.l1WbEntries,
                          memlevel::L1};
    if (cfg.depth == HierarchyDepth::Flat) {
        flat_ = std::make_unique<FixedLatencyMem>(l1.missLatency);
        l1_ = std::make_unique<CacheLevel>("L1D", p1, *flat_);
    } else {
        FACSIM_ASSERT(cfg.l2.blockBytes >= l1.blockBytes,
                      "L2 block (%uB) must be at least the L1 block "
                      "(%uB)",
                      cfg.l2.blockBytes, l1.blockBytes);
        FACSIM_ASSERT(cfg.l2.sizeBytes >= l1.sizeBytes,
                      "L2 (%uB) must be at least as large as L1 (%uB)",
                      cfg.l2.sizeBytes, l1.sizeBytes);
        dram_ = std::make_unique<DramModel>(cfg.dram);
        CacheLevel::Params p2{cfg.l2, cfg.l2HitLatency, cfg.l2Mshr,
                              cfg.l2WbEntries, memlevel::L2};
        l2_ = std::make_unique<CacheLevel>("L2", p2, *dram_);
        l1_ = std::make_unique<CacheLevel>("L1D", p1, *l2_);
    }
    if (cfg.tlbEnabled)
        tlb_ = std::make_unique<Tlb>(cfg.tlbEntries, cfg.tlbPageBytes);
}

uint64_t
MemHierarchy::translate(uint32_t addr, uint64_t t)
{
    if (!tlb_)
        return t;
    return tlb_->access(addr) ? t : t + cfg.tlbMissPenalty;
}

MemResult
MemHierarchy::read(uint32_t addr, uint64_t t)
{
    LevelResult r = l1_->access(addr, false, translate(addr, t));
    return {r.doneCycle, r.hit, r.level};
}

MemResult
MemHierarchy::write(uint32_t addr, uint64_t t)
{
    LevelResult r = l1_->access(addr, true, translate(addr, t));
    return {r.doneCycle, r.hit, r.level};
}

void
MemHierarchy::warm(uint32_t addr, bool is_write)
{
    if (tlb_)
        tlb_->warm(addr);
    l1_->warm(addr, is_write);
}

uint64_t
MemHierarchy::busyUntil() const
{
    return l1_->busyUntil();
}

void
MemHierarchy::reset()
{
    l1_->reset();
    if (l2_)
        l2_->reset();
    if (dram_)
        dram_->reset();
    if (flat_)
        flat_->reset();
    if (tlb_)
        tlb_->reset();
}

void
MemHierarchy::saveState(ser::Writer &w) const
{
    l1_->saveState(w);
    if (l2_)
        l2_->saveState(w);
    if (dram_)
        dram_->saveState(w);
    if (tlb_)
        tlb_->saveState(w);
}

void
MemHierarchy::loadState(ser::Reader &r)
{
    l1_->loadState(r);
    if (l2_)
        l2_->loadState(r);
    if (dram_)
        dram_->loadState(r);
    if (tlb_)
        tlb_->loadState(r);
}

HierarchyStats
MemHierarchy::snapshot() const
{
    HierarchyStats s;
    s.levels.push_back(l1_->stats());
    if (l2_)
        s.levels.push_back(l2_->stats());
    if (dram_) {
        s.hasDram = true;
        s.dram = dram_->stats();
    }
    if (tlb_) {
        s.tlbAccesses = tlb_->accesses();
        s.tlbMisses = tlb_->misses();
    }
    return s;
}

} // namespace facsim
