/**
 * @file
 * Multi-level data-memory hierarchy behind the MemPort interface.
 *
 * A `MemHierarchy` is a stack of `CacheLevel`s over a backend
 * (`FixedLatencyMem` or `DramModel`). Each cache level reuses the
 * tag-state `Cache` model for geometry/LRU/dirty tracking and adds the
 * timing machinery a flat model cannot express:
 *
 *  - an `MshrFile` making misses non-blocking: secondary misses merge
 *    into the in-flight fill, a full MSHR file delays new misses until
 *    an entry frees, and an access that tag-hits a still-in-flight line
 *    completes no earlier than its fill;
 *  - a writeback buffer: dirty victims drain to the level below
 *    through a bounded set of buffer slots, and an eviction with no
 *    free slot stalls the miss that caused it;
 *  - a per-level hit latency (an L1 miss that hits L2 costs the L2
 *    lookup time; an L2 miss additionally pays the DRAM latency and
 *    any channel queueing).
 *
 * The flat preset (`HierarchyDepth::Flat`, the default) is the paper's
 * machine verbatim: one level, no MSHR tracking, free writebacks and a
 * fixed-latency backend equal to the L1 `missLatency` — results are
 * bit-identical to the pre-hierarchy simulator.
 *
 * An optional TLB sits in front of the hierarchy: a data access that
 * misses the TLB is delayed by `tlbMissPenalty` cycles before its L1
 * lookup (the §5.4 statistics model, now consumable by the timing path).
 */

#ifndef FACSIM_MEM_HIERARCHY_HIERARCHY_HH
#define FACSIM_MEM_HIERARCHY_HIERARCHY_HH

#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "mem/hierarchy/dram.hh"
#include "mem/hierarchy/mem_port.hh"
#include "mem/hierarchy/mshr.hh"
#include "mem/tlb.hh"

namespace facsim
{

/** How deep the modelled hierarchy is. */
enum class HierarchyDepth : uint8_t
{
    Flat,  ///< L1 + fixed miss latency — the paper's machine
    L2,    ///< L1 + unified L2 + DRAM backend
};

/**
 * Hierarchy parameters. The L1 geometry itself stays in
 * `PipelineConfig::dcache` (the FAC predictor's field split depends on
 * it); this struct configures everything below and around that L1.
 */
struct HierarchyConfig
{
    HierarchyDepth depth = HierarchyDepth::Flat;

    /** L1 miss handling (Flat default: untracked, as the paper). */
    MshrConfig l1Mshr{};
    /** L1 writeback-buffer slots (0 = writebacks free, as the paper). */
    unsigned l1WbEntries = 0;

    /** Unified L2 (used when depth == L2). missLatency is unused. */
    CacheConfig l2{256 * 1024, 64, 8, 0};
    /** L1-miss-to-L2-data latency in cycles. */
    unsigned l2HitLatency = 12;
    MshrConfig l2Mshr{16, true};
    unsigned l2WbEntries = 8;

    /** DRAM backend (used when depth == L2). */
    DramConfig dram{};

    /** Model a data TLB in the access path. */
    bool tlbEnabled = false;
    unsigned tlbEntries = 64;
    uint32_t tlbPageBytes = 4096;
    /** Cycles added to an access that misses the TLB. */
    unsigned tlbMissPenalty = 0;

    /** Die with a clear message unless the parameters are coherent. */
    void validate() const;
};

/** Snapshot of one cache level's counters. */
struct LevelStats
{
    std::string name;  ///< "L1D", "L2"
    uint64_t accesses = 0;
    uint64_t misses = 0;
    uint64_t writebacks = 0;
    double missRatio = 0.0;
    MshrStats mshr;
    uint64_t wbFullStallCycles = 0;
};

/** Snapshot of the whole hierarchy, exported with timing results. */
struct HierarchyStats
{
    std::vector<LevelStats> levels;  ///< outermost first (L1D, then L2)
    bool hasDram = false;
    DramStats dram;
    uint64_t tlbAccesses = 0;
    uint64_t tlbMisses = 0;

    double
    tlbMissRatio() const
    {
        return tlbAccesses
            ? static_cast<double>(tlbMisses) / tlbAccesses : 0.0;
    }
};

/** Bounded buffer of dirty victims draining to the next level. */
class WritebackBuffer
{
  public:
    explicit WritebackBuffer(unsigned entries);

    /** False when entries == 0 (writeback traffic unmodelled). */
    bool enabled() const { return !slots.empty(); }

    /** Earliest cycle >= @p t with a free slot. */
    uint64_t whenFree(uint64_t t) const;

    /** Occupy a slot until @p done_cycle (caller waited for whenFree). */
    void occupy(uint64_t t, uint64_t done_cycle);

    void noteFullStall(uint64_t cycles) { fullStallCycles_ += cycles; }
    uint64_t fullStallCycles() const { return fullStallCycles_; }

    /** Latest busy-until cycle of any slot (0 when empty/disabled). */
    uint64_t maxBusyCycle() const;

    void reset();

    /** Serialize slot busy-until cycles (absolute) and statistics. */
    void saveState(ser::Writer &w) const;
    /** Restore state saved by saveState (slot count must match). */
    void loadState(ser::Reader &r);

  private:
    std::vector<uint64_t> slots;  ///< per-slot busy-until cycle
    uint64_t fullStallCycles_ = 0;
};

/** One cache level: tag-state Cache + MSHRs + writeback buffer. */
class CacheLevel final : public MemLevel
{
  public:
    /** Per-level timing parameters. */
    struct Params
    {
        CacheConfig cache;
        unsigned hitLatency = 0;  ///< cycles from arrival to hit data
        MshrConfig mshr{};
        unsigned wbEntries = 0;
        uint8_t levelId = memlevel::L1;  ///< service-attribution id
    };

    CacheLevel(const char *name, const Params &params, MemLevel &below);

    LevelResult access(uint32_t addr, bool is_write, uint64_t t) override;

    /**
     * Counter-free warming: same fill/LRU/dirty/victim traffic as
     * access() (a warm miss warms the level below; a warm dirty
     * eviction warm-writes the victim below) with no timing effects.
     */
    void warm(uint32_t addr, bool is_write) override;

    uint64_t busyUntil() const override;

    void reset() override;
    const char *name() const override { return name_.c_str(); }

    const Cache &tags() const { return cache; }
    const MshrFile &mshrs() const { return mshr; }

    LevelStats stats() const;

    /** Serialize tags + MSHR + writeback-buffer state (this level only). */
    void saveState(ser::Writer &w) const;
    /** Restore state saved by saveState. */
    void loadState(ser::Reader &r);

  private:
    std::string name_;
    Params prm;
    Cache cache;
    MshrFile mshr;
    WritebackBuffer wb;
    MemLevel &next;
};

/** The pipeline-facing hierarchy: optional TLB, L1, [L2], backend. */
class MemHierarchy final : public MemPort
{
  public:
    /**
     * @param l1 L1 data-cache geometry (`PipelineConfig::dcache`); its
     *        `missLatency` is the flat preset's backend latency.
     * @param config everything below/around the L1.
     */
    MemHierarchy(const CacheConfig &l1, const HierarchyConfig &config);

    MemResult read(uint32_t addr, uint64_t t) override;
    MemResult write(uint32_t addr, uint64_t t) override;

    /**
     * Counter-free functional warming of the whole hierarchy (TLB entry
     * fill + recursive cache-level warming). See MemPort::warm.
     */
    void warm(uint32_t addr, bool is_write) override;

    /**
     * Latest absolute cycle any in-flight resource below the core stays
     * busy (MSHR fills, writeback drains, the DRAM channel).
     */
    uint64_t busyUntil() const;

    void reset() override;

    /** Serialize every level's state (geometry must match on restore). */
    void saveState(ser::Writer &w) const;
    /** Restore state saved by saveState. */
    void loadState(ser::Reader &r);

    const HierarchyConfig &config() const { return cfg; }

    /** The L1 tag model (pipeline statistics, tests). */
    const Cache &l1() const { return l1_->tags(); }
    /** The L2 level, or nullptr when flat. */
    const CacheLevel *l2() const { return l2_.get(); }
    /** The DRAM backend, or nullptr when flat. */
    const DramModel *dram() const { return dram_.get(); }

    /** Counter snapshot for experiment results / bench JSON. */
    HierarchyStats snapshot() const;

  private:
    /** TLB lookup; returns the (possibly delayed) access start cycle. */
    uint64_t translate(uint32_t addr, uint64_t t);

    HierarchyConfig cfg;
    std::unique_ptr<FixedLatencyMem> flat_;  // Flat backend
    std::unique_ptr<DramModel> dram_;        // L2 backend
    std::unique_ptr<CacheLevel> l2_;
    std::unique_ptr<CacheLevel> l1_;
    std::unique_ptr<Tlb> tlb_;
};

} // namespace facsim

#endif // FACSIM_MEM_HIERARCHY_HIERARCHY_HH
