/**
 * @file
 * The pluggable memory-port abstraction between the pipeline's MEM
 * stage and the data memory system.
 *
 * The paper's machine (Table 5) hard-wires a flat 16 KB data cache with
 * a fixed 6-cycle miss penalty; the pipeline only ever needed a hit/miss
 * bool. A multi-level hierarchy cannot be described that way — an access
 * may hit L1, hit an in-flight fill, hit L2, or go to DRAM behind a
 * queue — so the port contract is a *completion cycle*: "present this
 * access at cycle t, receive the cycle its data is available". The
 * pipeline stays in charge of ports, issue rules and speculation; the
 * memory system owns everything below the first tag lookup.
 *
 * `MemPort` is the core-facing interface (read/write with L1-hit
 * visibility for the pipeline's miss statistics); `MemLevel` is the
 * level-to-level interface a hierarchy is composed from (each level
 * forwards its misses to the level below it).
 */

#ifndef FACSIM_MEM_HIERARCHY_MEM_PORT_HH
#define FACSIM_MEM_HIERARCHY_MEM_PORT_HH

#include <cstdint>

#include "util/serialize.hh"

namespace facsim
{

/**
 * Hierarchy-level identifiers used for per-access service attribution
 * (pipeline traces, stats): 0 = none (perfect cache), 1 = L1, 2 = L2,
 * 3 = the memory backend (FixedLatencyMem or DRAM).
 */
namespace memlevel
{
constexpr uint8_t None = 0;
constexpr uint8_t L1 = 1;
constexpr uint8_t L2 = 2;
constexpr uint8_t Mem = 3;
} // namespace memlevel

/** Outcome of one data access presented to a memory port. */
struct MemResult
{
    uint64_t doneCycle = 0;  ///< cycle the data is available to the core
    bool l1Hit = true;       ///< the first-level tag lookup hit
    uint8_t level = memlevel::L1;  ///< level that serviced the access
};

/** Core-facing data-memory interface consumed by the pipeline. */
class MemPort
{
  public:
    virtual ~MemPort() = default;

    /** Load access arriving at cycle @p t. */
    virtual MemResult read(uint32_t addr, uint64_t t) = 0;

    /** Store (store-buffer retirement) arriving at cycle @p t. */
    virtual MemResult write(uint32_t addr, uint64_t t) = 0;

    /**
     * Functional-warming access: update tag/predictor state exactly as
     * a demand access would (fills, LRU, dirty bits, recursive traffic
     * to lower levels) but with no timing and no statistics. This is
     * the first-class warming interface sampled simulation fast-forwards
     * through; see sim/sampling.hh.
     */
    virtual void warm(uint32_t addr, bool is_write) = 0;

    /** Invalidate all state and clear statistics. */
    virtual void reset() = 0;
};

/** Outcome of an access serviced by one hierarchy level. */
struct LevelResult
{
    uint64_t doneCycle = 0;  ///< cycle this level can deliver the data
    bool hit = true;         ///< the level's tag lookup hit
    uint8_t level = memlevel::L1;  ///< level that supplied the data
};

/** One level of a memory hierarchy (a cache level or a backend). */
class MemLevel
{
  public:
    virtual ~MemLevel() = default;

    /**
     * Service a demand access arriving at cycle @p t.
     * @param addr full byte address (levels derive their own block).
     * @param is_write write traffic (writebacks from above / store fills).
     * @param t cycle the request reaches this level.
     */
    virtual LevelResult access(uint32_t addr, bool is_write, uint64_t t) = 0;

    /** Counter-free state warming (see MemPort::warm). */
    virtual void warm(uint32_t addr, bool is_write) = 0;

    /**
     * Latest absolute cycle any in-flight resource of this level (or a
     * level below it) stays busy: MSHR fills, writeback-buffer slots,
     * the DRAM channel. Used by the pipeline's drain (sampling window
     * boundaries) to advance the clock to full quiescence.
     */
    virtual uint64_t busyUntil() const = 0;

    virtual void reset() = 0;

    /** Display name ("L2", "dram", ...). */
    virtual const char *name() const = 0;
};

/**
 * Fixed-latency, infinite-bandwidth backend — the paper's implicit
 * memory: every miss costs exactly `latency` cycles, misses never queue
 * and writebacks are free. Terminating a hierarchy with this level and
 * no MSHR/writeback modelling reproduces the flat machine bit for bit.
 */
class FixedLatencyMem final : public MemLevel
{
  public:
    explicit FixedLatencyMem(unsigned latency) : lat(latency) {}

    LevelResult
    access(uint32_t, bool, uint64_t t) override
    {
        return {t + lat, true, memlevel::Mem};
    }

    void warm(uint32_t, bool) override {}  // stateless backend
    uint64_t busyUntil() const override { return 0; }
    void reset() override {}
    const char *name() const override { return "mem"; }

  private:
    unsigned lat;
};

} // namespace facsim

#endif // FACSIM_MEM_HIERARCHY_MEM_PORT_HH
