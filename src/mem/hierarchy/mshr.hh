/**
 * @file
 * Miss-status holding registers: the bookkeeping that makes a cache
 * level non-blocking. Each entry tracks one in-flight line fill (block
 * address + the cycle the fill completes). A *secondary* miss — another
 * access to a block whose fill is already in flight — merges into the
 * existing entry and completes when the fill does, instead of issuing a
 * duplicate request below. When every entry is busy, a new miss must
 * wait for the earliest fill to complete; those waited cycles are the
 * hierarchy's MSHR-occupancy cost and are reported per level.
 *
 * `entries == 0` disables tracking entirely (unbounded, invisible
 * outstanding misses) — the paper's implicit model, kept as the flat
 * preset so its results stay bit-identical.
 */

#ifndef FACSIM_MEM_HIERARCHY_MSHR_HH
#define FACSIM_MEM_HIERARCHY_MSHR_HH

#include <cstdint>
#include <vector>

#include "util/serialize.hh"

namespace facsim
{

/** MSHR parameters for one cache level. */
struct MshrConfig
{
    /** Outstanding-miss entries; 0 = unlimited and untracked (flat). */
    unsigned entries = 0;
    /** Merge secondary misses into the in-flight entry (vs re-request). */
    bool mergeSecondary = true;
};

/** Counters exposed per level. */
struct MshrStats
{
    uint64_t allocations = 0;     ///< primary misses that took an entry
    uint64_t merges = 0;          ///< secondary misses folded into one
    uint64_t fullStallCycles = 0; ///< cycles waited for a free entry
    unsigned maxOccupancy = 0;    ///< peak in-flight fills
    uint64_t occupancySum = 0;    ///< occupancy sampled at each allocation

    double
    avgOccupancy() const
    {
        return allocations
            ? static_cast<double>(occupancySum) / allocations : 0.0;
    }
};

/** The MSHR file of one cache level. */
class MshrFile
{
  public:
    explicit MshrFile(const MshrConfig &config);

    /** False when entries == 0 (tracking disabled). */
    bool enabled() const { return cfg.entries != 0; }

    bool mergeSecondary() const { return cfg.mergeSecondary; }

    /**
     * Fill cycle of an in-flight fill covering @p block at cycle @p t,
     * or 0 when none is outstanding.
     */
    uint64_t inflightFill(uint32_t block, uint64_t t) const;

    /** Earliest cycle >= @p t with a free entry (may be @p t itself). */
    uint64_t whenFree(uint64_t t) const;

    /**
     * Take an entry for @p block whose fill completes at @p fill_cycle.
     * @p t must be >= whenFree(t); occupancy is sampled at @p t.
     */
    void allocate(uint32_t block, uint64_t t, uint64_t fill_cycle);

    /** Record a secondary miss merged into an in-flight entry. */
    void noteMerge() { st.merges++; }

    /** Record @p cycles spent waiting for a free entry. */
    void noteFullStall(uint64_t cycles) { st.fullStallCycles += cycles; }

    /** In-flight fills at cycle @p t. */
    unsigned occupancyAt(uint64_t t) const;

    /** Latest fill-completion cycle of any entry (0 when none/disabled). */
    uint64_t maxFillCycle() const;

    void reset();

    /** Serialize entries (absolute fill cycles) and statistics. */
    void saveState(ser::Writer &w) const;
    /** Restore state saved by saveState (entry count must match). */
    void loadState(ser::Reader &r);

    const MshrStats &stats() const { return st; }

  private:
    struct Entry
    {
        uint32_t block = 0;
        uint64_t fillCycle = 0;  ///< entry free once fillCycle <= now
    };

    MshrConfig cfg;
    std::vector<Entry> slots;
    MshrStats st;
};

} // namespace facsim

#endif // FACSIM_MEM_HIERARCHY_MSHR_HH
