/**
 * @file
 * Data TLB model used for the Section 5.4 check that the alignment
 * optimizations do not hurt virtual-memory behaviour: 64-entry fully
 * associative, random replacement, 4 KB pages (the paper's configuration).
 * The simulated machine has no real address translation; the TLB only
 * counts hits and misses.
 */

#ifndef FACSIM_MEM_TLB_HH
#define FACSIM_MEM_TLB_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hh"
#include "util/serialize.hh"

namespace facsim
{

/** Fully associative, randomly replaced translation buffer model. */
class Tlb
{
  public:
    /**
     * @param entries number of TLB entries (default 64, per the paper).
     * @param page_bytes page size (default 4 KB).
     * @param seed replacement RNG seed (deterministic runs).
     */
    explicit Tlb(unsigned entries = 64, uint32_t page_bytes = 4096,
                 uint64_t seed = 1);

    /**
     * Probe the TLB with a data address, filling on a miss.
     * @retval true on hit, false on miss.
     */
    bool access(uint32_t addr);

    /** Accesses so far. */
    uint64_t accesses() const { return accesses_; }
    /** Misses so far. */
    uint64_t misses() const { return misses_; }
    /** Miss ratio (0 if no accesses). */
    double missRatio() const
    {
        return accesses_ ? static_cast<double>(misses_) / accesses_ : 0.0;
    }

    /**
     * Functional-warming probe: identical fill/eviction behaviour to
     * access() (including the replacement RNG draw on a full-TLB miss)
     * but updates no statistics counters.
     */
    void warm(uint32_t addr);

    /** Empty the TLB and reset counters. */
    void reset();

    /** Serialize entries, MRU slot, replacement-RNG state and stats. */
    void saveState(ser::Writer &w) const;
    /** Restore state saved by saveState (entry count must match). */
    void loadState(ser::Reader &r);

  private:
    /** Common probe/fill path; returns hit. */
    bool lookup(uint32_t addr, bool count_stats);

    std::vector<uint32_t> vpn;
    std::vector<bool> valid;
    size_t mru = 0;
    uint32_t pageShift;
    Rng rng;
    uint64_t accesses_ = 0;
    uint64_t misses_ = 0;
};

} // namespace facsim

#endif // FACSIM_MEM_TLB_HH
