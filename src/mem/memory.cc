#include "mem/memory.hh"

#include <algorithm>
#include <cstring>
#include <vector>

namespace facsim
{

bool
Memory::firstDifferenceWith(const Memory &other, uint32_t *addr) const
{
    // Union of touched page numbers, in address order so the reported
    // difference is the lowest one.
    std::vector<uint32_t> pns;
    pns.reserve(pages.size() + other.pages.size());
    for (const auto &kv : pages)
        pns.push_back(kv.first);
    for (const auto &kv : other.pages)
        pns.push_back(kv.first);
    std::sort(pns.begin(), pns.end());
    pns.erase(std::unique(pns.begin(), pns.end()), pns.end());

    static const uint8_t zeros[pageBytes] = {};
    for (uint32_t pn : pns) {
        auto ia = pages.find(pn);
        auto ib = other.pages.find(pn);
        const uint8_t *pa = ia == pages.end() ? zeros : ia->second.get();
        const uint8_t *pb =
            ib == other.pages.end() ? zeros : ib->second.get();
        if (pa == pb || std::memcmp(pa, pb, pageBytes) == 0)
            continue;
        for (uint32_t i = 0; i < pageBytes; ++i) {
            if (pa[i] != pb[i]) {
                *addr = pn * pageBytes + i;
                return true;
            }
        }
    }
    return false;
}

uint8_t *
Memory::pagePtr(uint32_t addr)
{
    uint32_t pn = addr / pageBytes;
    if (uint8_t *p = cachedPage(pn))
        return p;
    auto it = pages.find(pn);
    if (it == pages.end()) {
        auto page = std::make_unique<uint8_t[]>(pageBytes);
        std::memset(page.get(), 0, pageBytes);
        it = pages.emplace(pn, std::move(page)).first;
    }
    pageCache[pn % pageCacheSlots] = {pn, it->second.get()};
    return it->second.get();
}

uint8_t
Memory::read8Slow(uint32_t addr)
{
    return pagePtr(addr)[addr % pageBytes];
}

uint16_t
Memory::read16Slow(uint32_t addr)
{
    return static_cast<uint16_t>(read8(addr)) |
        (static_cast<uint16_t>(read8(addr + 1)) << 8);
}

uint32_t
Memory::read32Slow(uint32_t addr)
{
    uint32_t off = addr % pageBytes;
    if (off + 4 <= pageBytes) {
        uint32_t v;
        std::memcpy(&v, pagePtr(addr) + off, 4);
        return v;
    }
    return static_cast<uint32_t>(read16(addr)) |
        (static_cast<uint32_t>(read16(addr + 2)) << 16);
}

uint64_t
Memory::read64Slow(uint32_t addr)
{
    uint32_t off = addr % pageBytes;
    if (off + 8 <= pageBytes) {
        uint64_t v;
        std::memcpy(&v, pagePtr(addr) + off, 8);
        return v;
    }
    return static_cast<uint64_t>(read32(addr)) |
        (static_cast<uint64_t>(read32(addr + 4)) << 32);
}

void
Memory::write8Slow(uint32_t addr, uint8_t v)
{
    pagePtr(addr)[addr % pageBytes] = v;
}

void
Memory::write16Slow(uint32_t addr, uint16_t v)
{
    write8(addr, static_cast<uint8_t>(v));
    write8(addr + 1, static_cast<uint8_t>(v >> 8));
}

void
Memory::write32Slow(uint32_t addr, uint32_t v)
{
    uint32_t off = addr % pageBytes;
    if (off + 4 <= pageBytes) {
        std::memcpy(pagePtr(addr) + off, &v, 4);
        return;
    }
    write16(addr, static_cast<uint16_t>(v));
    write16(addr + 2, static_cast<uint16_t>(v >> 16));
}

void
Memory::write64Slow(uint32_t addr, uint64_t v)
{
    uint32_t off = addr % pageBytes;
    if (off + 8 <= pageBytes) {
        std::memcpy(pagePtr(addr) + off, &v, 8);
        return;
    }
    write32(addr, static_cast<uint32_t>(v));
    write32(addr + 4, static_cast<uint32_t>(v >> 32));
}

void
Memory::writeBlock(uint32_t addr, const uint8_t *data, uint32_t len)
{
    for (uint32_t i = 0; i < len; ++i)
        write8(addr + i, data[i]);
}

void
Memory::saveState(ser::Writer &w) const
{
    std::vector<uint32_t> pns;
    pns.reserve(pages.size());
    for (const auto &kv : pages)
        pns.push_back(kv.first);
    std::sort(pns.begin(), pns.end());

    w.u64(pns.size());
    for (uint32_t pn : pns) {
        w.u32(pn);
        w.bytes(pages.at(pn).get(), pageBytes);
    }
}

void
Memory::loadState(ser::Reader &r)
{
    clear();
    uint64_t n = r.u64();
    for (uint64_t i = 0; i < n; ++i) {
        uint32_t pn = r.u32();
        auto page = std::make_unique<uint8_t[]>(pageBytes);
        r.bytes(page.get(), pageBytes);
        pages.emplace(pn, std::move(page));
    }
}

} // namespace facsim
