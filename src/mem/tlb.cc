#include "mem/tlb.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace facsim
{

Tlb::Tlb(unsigned entries, uint32_t page_bytes, uint64_t seed)
    : vpn(entries, 0), valid(entries, false),
      pageShift(log2i(page_bytes)), rng(seed)
{
    FACSIM_ASSERT(isPow2(page_bytes), "page size must be a power of two");
    FACSIM_ASSERT(entries > 0, "TLB needs at least one entry");
}

bool
Tlb::access(uint32_t addr)
{
    ++accesses_;
    uint32_t page = addr >> pageShift;
    if (valid[mru] && vpn[mru] == page)
        return true;
    for (size_t i = 0; i < vpn.size(); ++i) {
        if (valid[i] && vpn[i] == page) {
            mru = i;
            return true;
        }
    }
    ++misses_;
    // Fill an invalid slot if one exists, else evict at random.
    for (size_t i = 0; i < vpn.size(); ++i) {
        if (!valid[i]) {
            valid[i] = true;
            vpn[i] = page;
            mru = i;
            return false;
        }
    }
    size_t victim = static_cast<size_t>(rng.range(vpn.size()));
    vpn[victim] = page;
    mru = victim;
    return false;
}

void
Tlb::reset()
{
    std::fill(valid.begin(), valid.end(), false);
    accesses_ = 0;
    misses_ = 0;
}

} // namespace facsim
