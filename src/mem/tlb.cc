#include "mem/tlb.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace facsim
{

Tlb::Tlb(unsigned entries, uint32_t page_bytes, uint64_t seed)
    : vpn(entries, 0), valid(entries, false),
      pageShift(log2i(page_bytes)), rng(seed)
{
    FACSIM_ASSERT(isPow2(page_bytes), "page size must be a power of two");
    FACSIM_ASSERT(entries > 0, "TLB needs at least one entry");
}

bool
Tlb::access(uint32_t addr)
{
    return lookup(addr, true);
}

void
Tlb::warm(uint32_t addr)
{
    lookup(addr, false);
}

bool
Tlb::lookup(uint32_t addr, bool count_stats)
{
    if (count_stats)
        ++accesses_;
    uint32_t page = addr >> pageShift;
    if (valid[mru] && vpn[mru] == page)
        return true;
    for (size_t i = 0; i < vpn.size(); ++i) {
        if (valid[i] && vpn[i] == page) {
            mru = i;
            return true;
        }
    }
    if (count_stats)
        ++misses_;
    // Fill an invalid slot if one exists, else evict at random.
    for (size_t i = 0; i < vpn.size(); ++i) {
        if (!valid[i]) {
            valid[i] = true;
            vpn[i] = page;
            mru = i;
            return false;
        }
    }
    size_t victim = static_cast<size_t>(rng.range(vpn.size()));
    vpn[victim] = page;
    mru = victim;
    return false;
}

void
Tlb::reset()
{
    std::fill(valid.begin(), valid.end(), false);
    accesses_ = 0;
    misses_ = 0;
}

void
Tlb::saveState(ser::Writer &w) const
{
    w.u64(vpn.size());
    for (size_t i = 0; i < vpn.size(); ++i) {
        w.u32(vpn[i]);
        w.b(valid[i]);
    }
    w.u64(mru);
    w.u64(rng.rawState());
    w.u64(accesses_);
    w.u64(misses_);
}

void
Tlb::loadState(ser::Reader &r)
{
    uint64_t n = r.u64();
    FACSIM_ASSERT(n == vpn.size(),
                  "checkpoint TLB has %llu entries, this config has %zu",
                  static_cast<unsigned long long>(n), vpn.size());
    for (size_t i = 0; i < vpn.size(); ++i) {
        vpn[i] = r.u32();
        valid[i] = r.b();
    }
    mru = static_cast<size_t>(r.u64());
    rng.setRawState(r.u64());
    accesses_ = r.u64();
    misses_ = r.u64();
}

} // namespace facsim
