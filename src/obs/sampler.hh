/**
 * @file
 * Client-side live-stats windowing: parse successive Registry
 * jsonDump() snapshots (as returned by the serve daemon's Stats wire
 * request) and diff them into per-second rates. `facsim_cli top` is
 * the main consumer; anything that scrapes the Stats kind can reuse
 * it.
 *
 * Counter semantics follow Prometheus: a counter only moves up, so a
 * negative delta means the source restarted (or wrapped) and the
 * window is not a rate — rate() clamps it to 0 and the violation is
 * counted in resets() so callers can surface it instead of printing
 * a nonsense negative throughput.
 */

#ifndef FACSIM_OBS_SAMPLER_HH
#define FACSIM_OBS_SAMPLER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace facsim::obs
{

/** A parsed snapshot: flat dotted path -> numeric value. */
using StatsSnapshot = std::map<std::string, double>;

/**
 * Parse a Registry jsonDump() document into a flat snapshot. The
 * top-level "stats" wrapper is stripped (its children keep their bare
 * dotted paths); other top-level numerics ("schema_version") are kept
 * as-is. Nested objects (histograms, distributions) flatten to
 * "path.count", "path.mean", ...; arrays (histogram buckets) and
 * strings are skipped. False with *err on malformed input.
 */
bool parseStatsJson(const std::string &json, StatsSnapshot *out,
                    std::string *err);

/**
 * Diffs the two most recent snapshots into windowed rates. Feed it
 * one snapshot per poll; value() always reads the latest, rate()
 * needs at least two (hasWindow()).
 */
class StatsSampler
{
  public:
    /**
     * Declare @p key a counter for the resets() monotonicity check.
     * Without any declared counters every shared key is checked, which
     * misreads normal gauge movement (queue draining) as a reset —
     * callers watching a live daemon should declare their counters.
     */
    void watchCounter(std::string key)
    {
        counters_.push_back(std::move(key));
    }

    /** Record @p snap taken at @p at_seconds (any monotonic origin). */
    void push(StatsSnapshot snap, double at_seconds);

    /** True once two snapshots span a positive window. */
    bool hasWindow() const;

    /** Width of the current window in seconds (0 before hasWindow). */
    double windowSeconds() const;

    /** Latest value of @p key, or 0 when absent. */
    double value(const std::string &key) const;

    /**
     * Increase of @p key across the window, clamped to >= 0; 0 when
     * the key is missing from either snapshot.
     */
    double delta(const std::string &key) const;

    /** delta() per second; 0 without a positive window. */
    double rate(const std::string &key) const;

    /** Monotonicity violations (counter went down) seen across all
     *  pushes — nonzero means the daemon restarted mid-watch. */
    uint64_t resets() const { return resets_; }

  private:
    StatsSnapshot prev_, cur_;
    std::vector<std::string> counters_;
    double tPrev_ = 0.0, tCur_ = 0.0;
    unsigned have_ = 0;
    uint64_t resets_ = 0;
};

} // namespace facsim::obs

#endif // FACSIM_OBS_SAMPLER_HH
