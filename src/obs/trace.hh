/**
 * @file
 * Per-instruction pipeline event tracing.
 *
 * The pipeline reports one `InstTraceRecord` per issued instruction —
 * fetch/issue/completion cycles, the FAC predict+verify outcome and the
 * hierarchy level that serviced a memory access — to a `TraceSink`.
 * Two backends render the stream for existing viewers:
 *
 *  - `KonataTraceSink` writes the Kanata log format understood by the
 *    Konata pipeline viewer (https://github.com/shioyadan/Konata):
 *    open the file with File > Open. Stages shown are F (fetch/decode
 *    wait), X (issue/EX) and M (cache access beyond EX).
 *  - `ChromeTraceSink` writes Chrome trace-event JSON: load it at
 *    chrome://tracing or https://ui.perfetto.dev. One complete ("X")
 *    event per pipeline stage, cycles mapped to microseconds, and
 *    instructions spread over 16 rows so overlap is visible.
 *
 * Tracing is zero-cost when disabled: the pipeline checks one pointer
 * per issued instruction and never constructs a record.
 */

#ifndef FACSIM_OBS_TRACE_HH
#define FACSIM_OBS_TRACE_HH

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>

namespace facsim::obs
{

/** Lifecycle of one issued instruction, as the pipeline saw it. */
struct InstTraceRecord
{
    uint64_t seq = 0;         ///< dynamic instruction index (issue order)
    uint32_t pc = 0;
    std::string text;         ///< disassembly
    uint64_t fetchCycle = 0;  ///< cycle the instruction entered the fbuf
    uint64_t issueCycle = 0;  ///< EX-entry cycle
    uint64_t doneCycle = 0;   ///< result-available cycle
    bool isLoad = false;
    bool isStore = false;
    bool specAccess = false;  ///< FAC speculative access performed in EX
    bool specFailed = false;  ///< FAC verify failed => MEM-stage replay
    uint8_t memLevel = 0;     ///< 0 none, 1 L1, 2 L2, 3 memory/DRAM
};

/** Human-readable name of an InstTraceRecord::memLevel value. */
const char *memLevelName(uint8_t level);

/** Consumer of the pipeline's per-instruction lifecycle stream. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** One issued instruction (called in issue == retirement order). */
    virtual void instruction(const InstTraceRecord &rec) = 0;

    /** Write any trailer and flush. Idempotent; called by the dtor. */
    virtual void finish() = 0;
};

/** Kanata-format backend for the Konata pipeline viewer. */
class KonataTraceSink final : public TraceSink
{
  public:
    explicit KonataTraceSink(std::ostream &out);

    void instruction(const InstTraceRecord &rec) override;
    void finish() override;

  private:
    std::ostream &out_;
    uint64_t nextId_ = 0;
    bool finished_ = false;
};

/** Chrome trace-event JSON backend (chrome://tracing, Perfetto). */
class ChromeTraceSink final : public TraceSink
{
  public:
    explicit ChromeTraceSink(std::ostream &out);
    ~ChromeTraceSink() override { finish(); }

    void instruction(const InstTraceRecord &rec) override;
    void finish() override;

  private:
    void event(const char *stage, uint64_t ts, uint64_t dur,
               const InstTraceRecord &rec);

    std::ostream &out_;
    bool first_ = true;
    bool finished_ = false;
};

/** Which backend renders the stream. */
enum class TraceFormat : uint8_t
{
    Konata,
    Chrome,
};

/** Parse "konata"/"chrome"; false on anything else. */
bool parseTraceFormat(const std::string &s, TraceFormat &out);

/** Construct the sink for @p format writing to @p out. */
std::unique_ptr<TraceSink> makeTraceSink(TraceFormat format,
                                         std::ostream &out);

/** User-facing trace request (CLI flags / TimingRequest). */
struct TraceOptions
{
    std::string path;  ///< empty => tracing disabled
    TraceFormat format = TraceFormat::Konata;
    uint64_t start = 0;             ///< first dynamic inst to record
    uint64_t count = UINT64_MAX;    ///< how many insts to record

    bool enabled() const { return !path.empty(); }
};

/** An open trace file: the stream plus the sink writing into it. */
struct OpenTrace
{
    std::ofstream file;
    std::unique_ptr<TraceSink> sink;

    ~OpenTrace()
    {
        if (sink)
            sink->finish();
    }
};

/**
 * Open @p opts.path and build its sink; fatal() if the file cannot be
 * created. Returns nullptr when @p opts is disabled.
 */
std::unique_ptr<OpenTrace> openTrace(const TraceOptions &opts);

} // namespace facsim::obs

#endif // FACSIM_OBS_TRACE_HH
