/**
 * @file
 * Per-instruction pipeline event tracing.
 *
 * The pipeline reports one `InstTraceRecord` per issued instruction —
 * fetch/issue/completion cycles, the FAC predict+verify outcome and the
 * hierarchy level that serviced a memory access — to a `TraceSink`.
 * Two backends render the stream for existing viewers:
 *
 *  - `KonataTraceSink` writes the Kanata log format understood by the
 *    Konata pipeline viewer (https://github.com/shioyadan/Konata):
 *    open the file with File > Open. Stages shown are F (fetch/decode
 *    wait), X (issue/EX) and M (cache access beyond EX).
 *  - `ChromeTraceSink` writes Chrome trace-event JSON: load it at
 *    chrome://tracing or https://ui.perfetto.dev. One complete ("X")
 *    event per pipeline stage, cycles mapped to microseconds, and
 *    instructions spread over 16 rows so overlap is visible.
 *
 * Tracing is zero-cost when disabled: the pipeline checks one pointer
 * per issued instruction and never constructs a record.
 */

#ifndef FACSIM_OBS_TRACE_HH
#define FACSIM_OBS_TRACE_HH

#include <chrono>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>

namespace facsim::obs
{

/** Lifecycle of one issued instruction, as the pipeline saw it. */
struct InstTraceRecord
{
    uint64_t seq = 0;         ///< dynamic instruction index (issue order)
    uint32_t pc = 0;
    std::string text;         ///< disassembly
    uint64_t fetchCycle = 0;  ///< cycle the instruction entered the fbuf
    uint64_t issueCycle = 0;  ///< EX-entry cycle
    uint64_t doneCycle = 0;   ///< result-available cycle
    bool isLoad = false;
    bool isStore = false;
    bool specAccess = false;  ///< FAC speculative access performed in EX
    bool specFailed = false;  ///< FAC verify failed => MEM-stage replay
    uint8_t memLevel = 0;     ///< 0 none, 1 L1, 2 L2, 3 memory/DRAM
};

/** Human-readable name of an InstTraceRecord::memLevel value. */
const char *memLevelName(uint8_t level);

/** Consumer of the pipeline's per-instruction lifecycle stream. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** One issued instruction (called in issue == retirement order). */
    virtual void instruction(const InstTraceRecord &rec) = 0;

    /** Write any trailer and flush. Idempotent; called by the dtor. */
    virtual void finish() = 0;
};

/** Kanata-format backend for the Konata pipeline viewer. */
class KonataTraceSink final : public TraceSink
{
  public:
    explicit KonataTraceSink(std::ostream &out);

    void instruction(const InstTraceRecord &rec) override;
    void finish() override;

  private:
    std::ostream &out_;
    uint64_t nextId_ = 0;
    bool finished_ = false;
};

/** Chrome trace-event JSON backend (chrome://tracing, Perfetto). */
class ChromeTraceSink final : public TraceSink
{
  public:
    explicit ChromeTraceSink(std::ostream &out);
    ~ChromeTraceSink() override { finish(); }

    void instruction(const InstTraceRecord &rec) override;
    void finish() override;

  private:
    void event(const char *stage, uint64_t ts, uint64_t dur,
               const InstTraceRecord &rec);

    std::ostream &out_;
    bool first_ = true;
    bool finished_ = false;
};

/** Which backend renders the stream. */
enum class TraceFormat : uint8_t
{
    Konata,
    Chrome,
};

/** Parse "konata"/"chrome"; false on anything else. */
bool parseTraceFormat(const std::string &s, TraceFormat &out);

/** Construct the sink for @p format writing to @p out. */
std::unique_ptr<TraceSink> makeTraceSink(TraceFormat format,
                                         std::ostream &out);

/** User-facing trace request (CLI flags / TimingRequest). */
struct TraceOptions
{
    std::string path;  ///< empty => tracing disabled
    TraceFormat format = TraceFormat::Konata;
    uint64_t start = 0;             ///< first dynamic inst to record
    uint64_t count = UINT64_MAX;    ///< how many insts to record

    bool enabled() const { return !path.empty(); }
};

/** An open trace file: the stream plus the sink writing into it. */
struct OpenTrace
{
    std::ofstream file;
    std::unique_ptr<TraceSink> sink;

    ~OpenTrace()
    {
        if (sink)
            sink->finish();
    }
};

/**
 * Open @p opts.path and build its sink; fatal() if the file cannot be
 * created. Returns nullptr when @p opts is disabled.
 */
std::unique_ptr<OpenTrace> openTrace(const TraceOptions &opts);

/**
 * Thread-safe request-span recorder in the same Chrome trace-event
 * JSON the pipeline backend writes (load at chrome://tracing or
 * Perfetto). Each recording thread gets its own track: threads are
 * assigned dense tids on first use, with a `thread_name` metadata
 * event carrying the caller-supplied role ("conn", "sched",
 * "worker"). Complete ("X") events carry the request id in args, so a
 * loadgen burst renders as per-request spans fanned across reader /
 * scheduler / worker tracks. Timestamps are microseconds since
 * construction on the monotonic clock.
 */
class SpanTracer
{
  public:
    using Clock = std::chrono::steady_clock;

    explicit SpanTracer(std::ostream &out);
    ~SpanTracer() { finish(); }

    SpanTracer(const SpanTracer &) = delete;
    SpanTracer &operator=(const SpanTracer &) = delete;

    /** Zero-duration marker event on the calling thread's track. */
    void instant(const char *name, uint64_t req_id);

    /** Complete span [t0, t1) on the calling thread's track. */
    void complete(const char *name, uint64_t req_id, Clock::time_point t0,
                  Clock::time_point t1);

    /**
     * Name the calling thread's track @p role (first call wins); safe
     * to call redundantly — per-thread registration is idempotent.
     */
    void nameThisThread(const char *role);

    /** Write the JSON trailer and flush. Idempotent. */
    void finish();

  private:
    uint64_t tidLocked(const char *role);
    double usSince(Clock::time_point t) const;
    void emitLocked(const std::string &json);

    std::ostream &out_;
    Clock::time_point epoch_;
    std::mutex mu_;
    std::map<std::thread::id, uint64_t> tids_;
    bool first_ = true;
    bool finished_ = false;
};

/**
 * Attach @p t as the process-global span tracer consulted by prof
 * scopes (obs/prof.hh); pass nullptr to detach. The tracer must
 * outlive every thread that may still record (the serve daemon
 * detaches only after its drain joins).
 */
void setSpanTracer(SpanTracer *t);

/** The attached span tracer, or nullptr. */
SpanTracer *spanTracer();

/** The calling thread's current request id (0 outside a request). */
uint64_t currentSpanReqId();

/** RAII: tag this thread's nested spans with a request id. */
class SpanReqScope
{
  public:
    explicit SpanReqScope(uint64_t req_id);
    ~SpanReqScope();

    SpanReqScope(const SpanReqScope &) = delete;
    SpanReqScope &operator=(const SpanReqScope &) = delete;

  private:
    uint64_t prev_;
};

} // namespace facsim::obs

#endif // FACSIM_OBS_TRACE_HH
