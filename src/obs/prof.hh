/**
 * @file
 * Host-phase time attribution: scoped monotonic-clock timers
 * (`FACSIM_PROF_SCOPE(Phase)`) that aggregate wall time per coarse
 * host phase — block translation, functional warmup, detailed
 * windows, drain, cache (de)serialization, response encoding — into a
 * process-global store published as `prof.*` Distribution stats
 * (registerProfStats).
 *
 * Cost model: every scope is two steady_clock reads plus an
 * uncontended per-thread mutex, and the sites are per-phase (once per
 * translated block / sample window / request), never per instruction
 * — the measured budget is <=2% on BM_PipelineRate. Building with
 * -DFACSIM_PROF=OFF (-DFACSIM_PROF_ON=0) empties the scope's inline
 * ctor/dtor so the sites vanish entirely, mirroring FACSIM_TRACING.
 *
 * Threading: recording touches only the calling thread's accumulator
 * block (registered once, retired into a global tally on thread
 * exit), so Runner workers never contend; snapshots merge every live
 * block under the registration mutex. When a span tracer is attached
 * (obs/trace.hh setSpanTracer) each scope additionally emits a
 * complete span tagged with the thread's current request id, which is
 * how server request ids surface inside the experiment timeline.
 */

#ifndef FACSIM_OBS_PROF_HH
#define FACSIM_OBS_PROF_HH

#include <chrono>
#include <cstdint>

/** Compile-time master switch for prof scopes (1 = compiled in). */
#ifndef FACSIM_PROF_ON
#define FACSIM_PROF_ON 1
#endif

namespace facsim::obs
{

class Group;

/** The attributed host phases (extend here; keep names in sync). */
enum class ProfPhase : unsigned
{
    BlockTranslate,  ///< emulator basic-block translation
    Warmup,          ///< functional fast-forward with warming
    DetailedWindow,  ///< detailed pipeline execution (warmup + measured)
    Drain,           ///< in-flight drain between sample windows
    CacheSave,       ///< result-cache serialization to disk
    CacheLoad,       ///< result-cache deserialization from disk
    Encode,          ///< response encoding in the serve daemon
    NumPhases,
};

constexpr unsigned numProfPhases =
    static_cast<unsigned>(ProfPhase::NumPhases);

/** Stable lowercase phase name ("translate", "warmup", ...). */
const char *profPhaseName(ProfPhase p);

/** Whether scopes were compiled in (false under -DFACSIM_PROF=OFF). */
bool profCompiledIn();

/** Merged per-phase tally across every thread that ever recorded. */
struct ProfTally
{
    uint64_t count = 0;
    double sumUs = 0.0;
    double sumSqUs = 0.0;
    double minUs = 0.0;  ///< 0 when count == 0
    double maxUs = 0.0;
};

/** Snapshot one phase's merged tally (live threads + retired). */
ProfTally profSnapshot(ProfPhase p);

/** Zero every accumulator (test isolation). */
void profReset();

/**
 * Publish one `prof.<phase>` DistributionView per phase (sample unit:
 * microseconds per scope) into @p g — conventionally the registry
 * root's "prof" group.
 */
void registerProfStats(Group &g);

/** Scope end hook; also emits a span when a tracer is attached. */
void profScopeEnd(ProfPhase p,
                  std::chrono::steady_clock::time_point t0,
                  std::chrono::steady_clock::time_point t1);

/** RAII timer; use via FACSIM_PROF_SCOPE, not directly. */
class ProfScope
{
  public:
    explicit ProfScope(ProfPhase p)
    {
#if FACSIM_PROF_ON
        phase_ = p;
        t0_ = std::chrono::steady_clock::now();
#else
        (void)p;
#endif
    }

    ~ProfScope()
    {
#if FACSIM_PROF_ON
        profScopeEnd(phase_, t0_, std::chrono::steady_clock::now());
#endif
    }

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

#if FACSIM_PROF_ON
  private:
    ProfPhase phase_{};
    std::chrono::steady_clock::time_point t0_{};
#endif
};

} // namespace facsim::obs

#define FACSIM_PROF_CAT2(a, b) a##b
#define FACSIM_PROF_CAT(a, b) FACSIM_PROF_CAT2(a, b)

/**
 * Time the enclosing scope into phase @p phase (a bare ProfPhase
 * enumerator name). Compiles to nothing under -DFACSIM_PROF=OFF.
 */
#define FACSIM_PROF_SCOPE(phase)                                            \
    ::facsim::obs::ProfScope FACSIM_PROF_CAT(facsim_prof_scope_,            \
                                             __LINE__)(                     \
        ::facsim::obs::ProfPhase::phase)

#endif // FACSIM_OBS_PROF_HH
