#include "obs/debug.hh"

#include <cstdarg>

#include "util/logging.hh"

namespace facsim::obs
{

namespace
{

std::vector<DebugFlag *> &
registry()
{
    // Function-local static: safe against static-init ordering with the
    // self-registering flag globals below.
    static std::vector<DebugFlag *> flags;
    return flags;
}

DebugFlag *
findFlag(const std::string &name)
{
    for (DebugFlag *f : registry())
        if (name == f->name())
            return f;
    return nullptr;
}

} // anonymous namespace

DebugFlag::DebugFlag(const char *name, const char *desc)
    : name_(name), desc_(desc)
{
    registry().push_back(this);
}

bool
setDebugFlags(const std::string &csv, std::string *unknown)
{
    std::vector<DebugFlag *> to_enable;
    size_t pos = 0;
    while (pos <= csv.size()) {
        size_t comma = csv.find(',', pos);
        if (comma == std::string::npos)
            comma = csv.size();
        std::string name = csv.substr(pos, comma - pos);
        pos = comma + 1;
        if (name.empty())
            continue;
        DebugFlag *f = findFlag(name);
        if (!f) {
            if (unknown)
                *unknown = name;
            return false;
        }
        to_enable.push_back(f);
    }
    for (DebugFlag *f : to_enable)
        f->setEnabled(true);
    return true;
}

void
clearDebugFlags()
{
    for (DebugFlag *f : registry())
        f->setEnabled(false);
}

const std::vector<DebugFlag *> &
allDebugFlags()
{
    return registry();
}

void
dprintfImpl(const DebugFlag &flag, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    logLine(flag.name(), msg);
}

namespace flags
{
DebugFlag Fetch("Fetch", "fetch groups, BTB outcomes, redirects");
DebugFlag FacVerify("FacVerify", "FAC predict+verify outcomes");
DebugFlag Mem("Mem", "data-cache misses seen by the core");
DebugFlag StoreBuffer("StoreBuffer",
                      "store-buffer pressure and retirement");
DebugFlag Hier("Hier", "per-level hierarchy miss traffic");
DebugFlag Cosim("Cosim", "co-simulation progress/divergences");
} // namespace flags

} // namespace facsim::obs
