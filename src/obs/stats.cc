#include "obs/stats.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/logging.hh"

namespace facsim::obs
{

// ---------------------------------------------------------------------------
// Stat

Stat::Stat(StatKind kind, std::string name, std::string desc)
    : kind_(kind), name_(std::move(name)), desc_(std::move(desc))
{
    FACSIM_ASSERT(!name_.empty(), "stat registered with an empty name");
    FACSIM_ASSERT(name_.find('.') == std::string::npos,
                  "stat name '%s' must not contain '.' (use nested "
                  "groups for hierarchy)",
                  name_.c_str());
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";  // NaN/Inf are not JSON; guarded ratios dump as 0
    // %.9g round-trips every value the simulator produces and keeps the
    // dump byte-stable across runs of the same simulation.
    return strprintf("%.9g", v);
}

void
Counter::jsonValue(std::string &out) const
{
    out += strprintf("%llu", static_cast<unsigned long long>(v_));
}

std::string
Counter::textValue() const
{
    return strprintf("%llu", static_cast<unsigned long long>(v_));
}

void
Scalar::jsonValue(std::string &out) const
{
    out += jsonNumber(v_);
}

std::string
Scalar::textValue() const
{
    return strprintf("%.6f", v_);
}

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::string name, std::string desc, double lo,
                     double hi, unsigned nbuckets)
    : Stat(StatKind::Histogram, std::move(name), std::move(desc)),
      lo_(lo), hi_(hi)
{
    FACSIM_ASSERT(nbuckets > 0, "histogram '%s' needs at least 1 bucket",
                  this->name().c_str());
    FACSIM_ASSERT(hi > lo, "histogram '%s' range [%g, %g) is empty",
                  this->name().c_str(), lo, hi);
    width_ = (hi_ - lo_) / nbuckets;
    buckets_.assign(nbuckets, 0);
}

void
Histogram::sample(double v, uint64_t weight)
{
    count_ += weight;
    sum_ += v * weight;
    if (v < lo_) {
        underflow_ += weight;
    } else if (v >= hi_) {
        overflow_ += weight;
    } else {
        auto i = static_cast<size_t>((v - lo_) / width_);
        if (i >= buckets_.size())  // FP edge at hi_ - epsilon
            i = buckets_.size() - 1;
        buckets_[i] += weight;
    }
}

void
Histogram::jsonValue(std::string &out) const
{
    out += strprintf("{\"lo\":%s,\"hi\":%s,\"bucket_width\":%s,"
                     "\"underflow\":%llu,\"overflow\":%llu,\"count\":%llu,"
                     "\"sum\":%s,\"buckets\":[",
                     jsonNumber(lo_).c_str(), jsonNumber(hi_).c_str(),
                     jsonNumber(width_).c_str(),
                     static_cast<unsigned long long>(underflow_),
                     static_cast<unsigned long long>(overflow_),
                     static_cast<unsigned long long>(count_),
                     jsonNumber(sum_).c_str());
    for (size_t i = 0; i < buckets_.size(); ++i)
        out += strprintf("%s%llu", i ? "," : "",
                         static_cast<unsigned long long>(buckets_[i]));
    out += "]}";
}

double
Histogram::percentile(double p) const
{
    if (!count_)
        return 0.0;
    if (p < 0.0)
        p = 0.0;
    if (p > 1.0)
        p = 1.0;
    // Cumulative mass walk: underflow reads as lo, overflow as hi, and
    // the bucket crossing the target rank interpolates linearly.
    double target = p * static_cast<double>(count_);
    double cum = static_cast<double>(underflow_);
    if (target <= cum)
        return lo_;
    for (size_t i = 0; i < buckets_.size(); ++i) {
        double b = static_cast<double>(buckets_[i]);
        if (b > 0.0 && cum + b >= target) {
            double frac = (target - cum) / b;
            return lo_ + width_ * (static_cast<double>(i) + frac);
        }
        cum += b;
    }
    return hi_;
}

std::string
Histogram::textValue() const
{
    return strprintf("count=%llu mean=%.4f (%zu buckets [%g, %g), "
                     "under=%llu over=%llu)",
                     static_cast<unsigned long long>(count_),
                     count_ ? sum_ / count_ : 0.0, buckets_.size(), lo_,
                     hi_, static_cast<unsigned long long>(underflow_),
                     static_cast<unsigned long long>(overflow_));
}

// ---------------------------------------------------------------------------
// Distribution

double
Distribution::stddev() const
{
    if (count_ < 2)
        return 0.0;
    double mean = sum_ / count_;
    double var = sumSq_ / count_ - mean * mean;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

void
Distribution::jsonValue(std::string &out) const
{
    out += strprintf("{\"count\":%llu,\"mean\":%s,\"stddev\":%s,"
                     "\"min\":%s,\"max\":%s}",
                     static_cast<unsigned long long>(count_),
                     jsonNumber(mean()).c_str(),
                     jsonNumber(stddev()).c_str(),
                     jsonNumber(min()).c_str(),
                     jsonNumber(max()).c_str());
}

std::string
Distribution::textValue() const
{
    return strprintf("count=%llu mean=%.4f stddev=%.4f min=%.4f max=%.4f",
                     static_cast<unsigned long long>(count_), mean(),
                     stddev(), min(), max());
}

double
DistData::stddev() const
{
    if (count < 2)
        return 0.0;
    double m = sum / count;
    double var = sumSq / count - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

void
DistributionView::jsonValue(std::string &out) const
{
    DistData d = fn_();
    out += strprintf("{\"count\":%llu,\"mean\":%s,\"stddev\":%s,"
                     "\"min\":%s,\"max\":%s}",
                     static_cast<unsigned long long>(d.count),
                     jsonNumber(d.mean()).c_str(),
                     jsonNumber(d.stddev()).c_str(),
                     jsonNumber(d.min).c_str(),
                     jsonNumber(d.max).c_str());
}

std::string
DistributionView::textValue() const
{
    DistData d = fn_();
    return strprintf("count=%llu mean=%.4f stddev=%.4f min=%.4f max=%.4f",
                     static_cast<unsigned long long>(d.count), d.mean(),
                     d.stddev(), d.min, d.max);
}

void
Formula::jsonValue(std::string &out) const
{
    out += jsonNumber(value());
}

std::string
Formula::textValue() const
{
    return strprintf("%.6f", value());
}

// ---------------------------------------------------------------------------
// Group

void
Group::checkNewName(const std::string &name) const
{
    FACSIM_ASSERT(!name.empty(), "stat/group registered with empty name");
    FACSIM_ASSERT(name.find('.') == std::string::npos,
                  "name '%s' must not contain '.'", name.c_str());
    for (const auto &g : children_) {
        FACSIM_ASSERT(g->name_ != name,
                      "duplicate stats path: group '%s' already "
                      "registered here",
                      name.c_str());
    }
    for (const auto &s : stats_) {
        FACSIM_ASSERT(s->name() != name,
                      "duplicate stats path: stat '%s' already "
                      "registered here",
                      name.c_str());
    }
}

Group &
Group::group(const std::string &name)
{
    for (const auto &g : children_) {
        if (g->name_ == name)
            return *g;
    }
    checkNewName(name);
    children_.emplace_back(new Group(name));
    return *children_.back();
}

template <typename T, typename... Args>
T &
Group::add(const std::string &name, Args &&...args)
{
    checkNewName(name);
    auto node = std::make_unique<T>(name, std::forward<Args>(args)...);
    T &ref = *node;
    stats_.push_back(std::move(node));
    return ref;
}

Counter &
Group::counter(const std::string &name, const std::string &desc)
{
    return add<Counter>(name, desc);
}

Scalar &
Group::scalar(const std::string &name, const std::string &desc)
{
    return add<Scalar>(name, desc);
}

Histogram &
Group::histogram(const std::string &name, const std::string &desc,
                 double lo, double hi, unsigned nbuckets)
{
    return add<Histogram>(name, desc, lo, hi, nbuckets);
}

Distribution &
Group::distribution(const std::string &name, const std::string &desc)
{
    return add<Distribution>(name, desc);
}

Formula &
Group::formula(const std::string &name, const std::string &desc,
               std::function<double()> fn)
{
    return add<Formula>(name, desc, std::move(fn));
}

DistributionView &
Group::distributionView(const std::string &name, const std::string &desc,
                        std::function<DistData()> fn)
{
    return add<DistributionView>(name, desc, std::move(fn));
}

Formula &
Group::counterView(const std::string &name, const std::string &desc,
                   const uint64_t *v)
{
    FACSIM_ASSERT(v != nullptr, "counterView '%s' bound to null",
                  name.c_str());
    // A bound view dumps as an integer; implemented over Formula with an
    // exact conversion (counters stay far below 2^53 in practice).
    return add<Formula>(name, desc,
                        [v] { return static_cast<double>(*v); });
}

const Stat *
Group::find(const std::string &path) const
{
    size_t dot = path.find('.');
    if (dot == std::string::npos) {
        for (const auto &s : stats_) {
            if (s->name() == path)
                return s.get();
        }
        return nullptr;
    }
    const Group *g = findGroup(path.substr(0, dot));
    return g ? g->find(path.substr(dot + 1)) : nullptr;
}

const Group *
Group::findGroup(const std::string &name) const
{
    for (const auto &g : children_) {
        if (g->name_ == name)
            return g.get();
    }
    return nullptr;
}

void
Group::dumpText(std::ostream &out, const std::string &prefix) const
{
    std::string base = prefix.empty()
        ? name_
        : (name_.empty() ? prefix : prefix + "." + name_);
    for (const auto &s : stats_) {
        std::string path = base.empty() ? s->name() : base + "." + s->name();
        std::string line = strprintf("%-44s %20s", path.c_str(),
                                     s->textValue().c_str());
        if (!s->desc().empty())
            line += strprintf("  # %s", s->desc().c_str());
        out << line << "\n";
    }
    for (const auto &g : children_)
        g->dumpText(out, base);
}

void
Group::dumpJson(std::string &out, const std::string &prefix) const
{
    std::string base = prefix.empty()
        ? name_
        : (name_.empty() ? prefix : prefix + "." + name_);
    for (const auto &s : stats_) {
        if (out.size() > 1 && out.back() != '{')
            out += ',';
        std::string path = base.empty() ? s->name() : base + "." + s->name();
        out += '"';
        out += path;  // names are dot-free identifiers, no escaping needed
        out += "\":";
        s->jsonValue(out);
    }
    for (const auto &g : children_)
        g->dumpJson(out, base);
}

// ---------------------------------------------------------------------------
// Prometheus exposition

std::string
promName(const std::string &path)
{
    std::string out = "facsim_";
    for (char c : path) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    return out;
}

namespace
{

/** HELP text with the two characters the exposition format escapes. */
std::string
promEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

void
promHeader(std::string &out, const std::string &name,
           const std::string &desc, const char *type)
{
    out += "# HELP " + name + " " + promEscape(desc.empty() ? name : desc) +
           "\n";
    out += "# TYPE " + name + " ";
    out += type;
    out += "\n";
}

void
promStat(std::string &out, const Stat &s, const std::string &path)
{
    std::string name = promName(path);
    if (const auto *c = dynamic_cast<const Counter *>(&s)) {
        promHeader(out, name, s.desc(), "counter");
        out += strprintf("%s %llu\n", name.c_str(),
                         static_cast<unsigned long long>(c->value()));
        return;
    }
    if (const auto *sc = dynamic_cast<const Scalar *>(&s)) {
        promHeader(out, name, s.desc(), "gauge");
        out += name + " " + jsonNumber(sc->value()) + "\n";
        return;
    }
    if (const auto *f = dynamic_cast<const Formula *>(&s)) {
        promHeader(out, name, s.desc(), "gauge");
        out += name + " " + jsonNumber(f->value()) + "\n";
        return;
    }
    if (const auto *h = dynamic_cast<const Histogram *>(&s)) {
        // Native Prometheus histogram: cumulative buckets. Underflow
        // mass is below every finite boundary, so it seeds the
        // cumulative count; overflow only appears at le="+Inf".
        promHeader(out, name, s.desc(), "histogram");
        unsigned long long cum = h->underflow();
        for (unsigned i = 0; i < h->numBuckets(); ++i) {
            cum += h->bucket(i);
            double le = h->lo() + h->bucketWidth() * (i + 1);
            out += strprintf("%s_bucket{le=\"%s\"} %llu\n", name.c_str(),
                             jsonNumber(le).c_str(), cum);
        }
        out += strprintf("%s_bucket{le=\"+Inf\"} %llu\n", name.c_str(),
                         static_cast<unsigned long long>(h->count()));
        out += name + "_sum " + jsonNumber(h->sum()) + "\n";
        out += strprintf("%s_count %llu\n", name.c_str(),
                         static_cast<unsigned long long>(h->count()));
        return;
    }
    // Distribution and DistributionView share the summary rendering.
    DistData d;
    if (const auto *dist = dynamic_cast<const Distribution *>(&s)) {
        d.count = dist->count();
        d.sum = dist->mean() * dist->count();
        d.min = dist->min();
        d.max = dist->max();
    } else if (const auto *v = dynamic_cast<const DistributionView *>(&s)) {
        d = v->value();
    } else {
        return;  // unreachable while StatKind stays closed
    }
    promHeader(out, name, s.desc(), "summary");
    out += name + "_sum " + jsonNumber(d.sum) + "\n";
    out += strprintf("%s_count %llu\n", name.c_str(),
                     static_cast<unsigned long long>(d.count));
    promHeader(out, name + "_min", s.desc() + " (min)", "gauge");
    out += name + "_min " + jsonNumber(d.min) + "\n";
    promHeader(out, name + "_max", s.desc() + " (max)", "gauge");
    out += name + "_max " + jsonNumber(d.max) + "\n";
}

} // namespace

void
Group::dumpProm(std::string &out, const std::string &prefix) const
{
    std::string base = prefix.empty()
        ? name_
        : (name_.empty() ? prefix : prefix + "." + name_);
    for (const auto &s : stats_) {
        std::string path = base.empty() ? s->name() : base + "." + s->name();
        promStat(out, *s, path);
    }
    for (const auto &g : children_)
        g->dumpProm(out, base);
}

// ---------------------------------------------------------------------------
// Registry

std::string
Registry::jsonDump() const
{
    std::string out = strprintf("{\"schema_version\":%u,\"stats\":{",
                                schemaVersion);
    std::string body;
    root_.dumpJson(body);
    out += body;
    out += "}}\n";
    return out;
}

std::string
Registry::textDump() const
{
    std::ostringstream ss;
    root_.dumpText(ss);
    return ss.str();
}

std::string
Registry::promDump() const
{
    std::string out;
    root_.dumpProm(out);
    return out;
}

void
Registry::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot write stats dump '%s'", path.c_str());
    bool json = path.size() >= 5 &&
        path.compare(path.size() - 5, 5, ".json") == 0;
    std::string text = json ? jsonDump() : textDump();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
}

} // namespace facsim::obs
