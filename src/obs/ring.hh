/**
 * @file
 * Crash-dump history ring: the last N issued instructions, retained as
 * plain data (one struct copy per instruction, no formatting, no
 * allocation after construction) and disassembled only when a dump is
 * actually requested — by panic() via the thread-local panic-context
 * hook, or by the co-simulation's divergence reporter. Fuzz failures
 * and deadlock panics thereby arrive with their pipeline history
 * attached.
 */

#ifndef FACSIM_OBS_RING_HH
#define FACSIM_OBS_RING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/inst.hh"

namespace facsim::obs
{

/** One retained instruction (POD; formatted only at dump time). */
struct RingEntry
{
    uint64_t seq = 0;        ///< dynamic instruction index
    uint64_t issueCycle = 0;
    uint64_t doneCycle = 0;
    uint32_t pc = 0;
    Inst inst;
    uint32_t effAddr = 0;    ///< memory ops only
    bool isMem = false;
    bool specAccess = false;
    bool specFailed = false;
    uint8_t memLevel = 0;    ///< 0 none, 1 L1, 2 L2, 3 memory
};

/** Fixed-capacity overwrite-oldest history of issued instructions. */
class RetireRing
{
  public:
    explicit RetireRing(size_t capacity);

    void
    push(const RingEntry &e)
    {
        buf_[next_] = e;
        next_ = (next_ + 1) % buf_.size();
        if (count_ < buf_.size())
            ++count_;
    }

    size_t size() const { return count_; }
    size_t capacity() const { return buf_.size(); }
    bool empty() const { return count_ == 0; }

    /** Entry @p i back from the newest (0 = most recent). */
    const RingEntry &fromNewest(size_t i) const;

    /**
     * Multi-line disassembled dump, oldest first — the text appended to
     * panic output and divergence reports.
     */
    std::string dump() const;

    void clear();

  private:
    std::vector<RingEntry> buf_;
    size_t next_ = 0;   ///< slot the next push writes
    size_t count_ = 0;  ///< valid entries
};

} // namespace facsim::obs

#endif // FACSIM_OBS_RING_HH
