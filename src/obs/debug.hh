/**
 * @file
 * gem5-style debug-flag logging: named component flags enabled at run
 * time (`--debug-flags=FacVerify,Hier`) gate `FACSIM_DPRINTF` sites.
 *
 * Cost model: a disabled flag costs one relaxed bool load at each
 * DPRINTF site — and the sites themselves sit on event paths
 * (mispredicts, misses, stalls), never in the per-instruction issue
 * loop. Building with -DFACSIM_TRACING_ON=0 removes the sites entirely
 * (the condition constant-folds to false; the arguments still
 * type-check, so a fast build cannot bit-rot the format strings).
 *
 * Flags are process-global and are intended to be set once at startup,
 * before any Runner worker threads exist; the flag store itself is not
 * synchronized (see the thread-safety audit in sim/machine.hh).
 */

#ifndef FACSIM_OBS_DEBUG_HH
#define FACSIM_OBS_DEBUG_HH

#include <string>
#include <vector>

/** Compile-time master switch for DPRINTF sites (1 = compiled in). */
#ifndef FACSIM_TRACING_ON
#define FACSIM_TRACING_ON 1
#endif

namespace facsim::obs
{

/** One named debug flag; instances self-register at static init. */
class DebugFlag
{
  public:
    DebugFlag(const char *name, const char *desc);

    DebugFlag(const DebugFlag &) = delete;
    DebugFlag &operator=(const DebugFlag &) = delete;

    bool enabled() const { return enabled_; }
    const char *name() const { return name_; }
    const char *desc() const { return desc_; }

    void setEnabled(bool on) { enabled_ = on; }

  private:
    const char *name_;
    const char *desc_;
    bool enabled_ = false;
};

/**
 * Enable the comma-separated flag names in @p csv (on top of whatever
 * is already enabled). On an unknown name, stores it in @p unknown (if
 * non-null) and returns false without changing any flag.
 */
bool setDebugFlags(const std::string &csv, std::string *unknown = nullptr);

/** Disable every flag (test isolation). */
void clearDebugFlags();

/** All registered flags, for `--debug-flags=help` style listings. */
const std::vector<DebugFlag *> &allDebugFlags();

/** Format one DPRINTF line ("FlagName: msg") through the log sink. */
void dprintfImpl(const DebugFlag &flag, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** The component flags (extend here as subsystems grow). */
namespace flags
{
extern DebugFlag Fetch;        ///< fetch groups, BTB outcomes, redirects
extern DebugFlag FacVerify;    ///< FAC predict+verify outcomes
extern DebugFlag Mem;          ///< data-cache misses seen by the core
extern DebugFlag StoreBuffer;  ///< store-buffer pressure and retirement
extern DebugFlag Hier;         ///< per-level hierarchy miss traffic
extern DebugFlag Cosim;        ///< co-simulation progress/divergences
} // namespace flags

} // namespace facsim::obs

/**
 * Print @p ... (printf-style) when debug flag @p flag is enabled.
 * @p flag is a bare name from facsim::obs::flags.
 */
#define FACSIM_DPRINTF(flag, ...)                                           \
    do {                                                                    \
        if (FACSIM_TRACING_ON && ::facsim::obs::flags::flag.enabled())      \
            ::facsim::obs::dprintfImpl(::facsim::obs::flags::flag,          \
                                       __VA_ARGS__);                        \
    } while (0)

#endif // FACSIM_OBS_DEBUG_HH
