#include "obs/sampler.hh"

#include <cstdlib>

namespace facsim::obs
{

namespace
{

/**
 * Minimal JSON walker for the registry's own dump shape. It accepts
 * any well-formed JSON but only *records* numbers (and bools as 0/1)
 * reachable through object keys — strings and array elements are
 * structure to skip, which is exactly what the flat stats schema
 * needs.
 */
class Parser
{
  public:
    Parser(const std::string &s, StatsSnapshot *out) : s_(s), out_(out) {}

    bool
    parse(std::string *err)
    {
        skipWs();
        if (!parseObject("", true)) {
            *err = error_.empty() ? "malformed stats json" : error_;
            return false;
        }
        skipWs();
        if (pos_ != s_.size()) {
            *err = "trailing bytes after the stats object";
            return false;
        }
        return true;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                s_[pos_] == '\r'))
            ++pos_;
    }

    bool
    fail(const char *why)
    {
        if (error_.empty())
            error_ = why;
        return false;
    }

    bool
    expect(char c)
    {
        skipWs();
        if (pos_ >= s_.size() || s_[pos_] != c)
            return fail("unexpected character");
        ++pos_;
        return true;
    }

    bool
    parseString(std::string *out)
    {
        if (!expect('"'))
            return false;
        std::string v;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                if (pos_ + 1 >= s_.size())
                    return fail("truncated escape");
                v += s_[pos_ + 1];  // stat paths never need real escapes
                pos_ += 2;
            } else {
                v += s_[pos_++];
            }
        }
        if (pos_ >= s_.size())
            return fail("unterminated string");
        ++pos_;  // closing quote
        if (out)
            *out = v;
        return true;
    }

    /** @p top strips the "stats" wrapper of the outermost object. */
    bool
    parseObject(const std::string &prefix, bool top)
    {
        if (!expect('{'))
            return false;
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            std::string key;
            if (!parseString(&key))
                return false;
            if (!expect(':'))
                return false;
            std::string path = (top && key == "stats")
                ? ""
                : (prefix.empty() ? key : prefix + "." + key);
            if (!parseValue(path))
                return false;
            skipWs();
            if (pos_ >= s_.size())
                return fail("unterminated object");
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray()
    {
        if (!expect('['))
            return false;
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            if (!parseValue(""))  // elements are skipped, never recorded
                return false;
            skipWs();
            if (pos_ >= s_.size())
                return fail("unterminated array");
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    literal(const char *word)
    {
        size_t n = std::char_traits<char>::length(word);
        if (s_.compare(pos_, n, word) != 0)
            return fail("unknown literal");
        pos_ += n;
        return true;
    }

    void
    record(const std::string &path, double v)
    {
        if (!path.empty())
            (*out_)[path] = v;
    }

    bool
    parseValue(const std::string &path)
    {
        skipWs();
        if (pos_ >= s_.size())
            return fail("truncated value");
        char c = s_[pos_];
        if (c == '{')
            return parseObject(path, false);
        if (c == '[')
            return parseArray();
        if (c == '"')
            return parseString(nullptr);
        if (c == 't') {
            record(path, 1.0);
            return literal("true");
        }
        if (c == 'f') {
            record(path, 0.0);
            return literal("false");
        }
        if (c == 'n')
            return literal("null");
        char *end = nullptr;
        double v = std::strtod(s_.c_str() + pos_, &end);
        if (!end || end == s_.c_str() + pos_)
            return fail("expected a number");
        pos_ = static_cast<size_t>(end - s_.c_str());
        record(path, v);
        return true;
    }

    const std::string &s_;
    StatsSnapshot *out_;
    size_t pos_ = 0;
    std::string error_;
};

} // namespace

bool
parseStatsJson(const std::string &json, StatsSnapshot *out,
               std::string *err)
{
    out->clear();
    return Parser(json, out).parse(err);
}

// ---------------------------------------------------------------------------
// StatsSampler

void
StatsSampler::push(StatsSnapshot snap, double at_seconds)
{
    prev_ = std::move(cur_);
    tPrev_ = tCur_;
    cur_ = std::move(snap);
    tCur_ = at_seconds;
    if (have_ < 2)
        ++have_;
    if (have_ < 2)
        return;
    // Monotonicity check: only the declared counters — gauges (queue
    // depth, cache bytes) go down in normal operation and must not be
    // read as daemon restarts. With nothing declared, every shared key
    // is checked.
    if (counters_.empty()) {
        for (const auto &[key, v] : cur_) {
            auto it = prev_.find(key);
            if (it != prev_.end() && v < it->second)
                ++resets_;
        }
    } else {
        for (const std::string &key : counters_) {
            auto c = cur_.find(key);
            auto p = prev_.find(key);
            if (c != cur_.end() && p != prev_.end() &&
                c->second < p->second)
                ++resets_;
        }
    }
}

bool
StatsSampler::hasWindow() const
{
    return have_ == 2 && tCur_ > tPrev_;
}

double
StatsSampler::windowSeconds() const
{
    return hasWindow() ? tCur_ - tPrev_ : 0.0;
}

double
StatsSampler::value(const std::string &key) const
{
    auto it = cur_.find(key);
    return it != cur_.end() ? it->second : 0.0;
}

double
StatsSampler::delta(const std::string &key) const
{
    if (have_ < 2)
        return 0.0;
    auto c = cur_.find(key);
    auto p = prev_.find(key);
    if (c == cur_.end() || p == prev_.end())
        return 0.0;
    double d = c->second - p->second;
    return d > 0.0 ? d : 0.0;  // counter reset / wraparound guard
}

double
StatsSampler::rate(const std::string &key) const
{
    if (!hasWindow())
        return 0.0;
    return delta(key) / windowSeconds();
}

} // namespace facsim::obs
