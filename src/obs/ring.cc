#include "obs/ring.hh"

#include "isa/disasm.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace facsim::obs
{

RetireRing::RetireRing(size_t capacity)
{
    FACSIM_ASSERT(capacity > 0, "history ring needs a nonzero capacity");
    buf_.resize(capacity);
}

const RingEntry &
RetireRing::fromNewest(size_t i) const
{
    FACSIM_ASSERT(i < count_, "ring index %zu out of range (%zu entries)",
                  i, count_);
    // next_ points at the slot after the newest entry.
    size_t idx = (next_ + buf_.size() - 1 - i) % buf_.size();
    return buf_[idx];
}

std::string
RetireRing::dump() const
{
    std::string out = strprintf(
        "pipeline history (last %zu of capacity %zu, oldest first):\n",
        count_, buf_.size());
    for (size_t i = count_; i-- > 0;) {
        const RingEntry &e = fromNewest(i);
        out += strprintf("  seq=%-8llu cy=%-8llu %08x: %-28s",
                         static_cast<unsigned long long>(e.seq),
                         static_cast<unsigned long long>(e.issueCycle),
                         e.pc, disasm(e.inst, e.pc).c_str());
        if (e.isMem) {
            out += strprintf(" ea=%08x %s", e.effAddr,
                             memLevelName(e.memLevel));
            if (e.specAccess)
                out += e.specFailed ? " fac=mispredict" : " fac=hit";
        }
        out += "\n";
    }
    return out;
}

void
RetireRing::clear()
{
    next_ = 0;
    count_ = 0;
}

} // namespace facsim::obs
