#include "obs/trace.hh"

#include <algorithm>
#include <atomic>

#include "util/logging.hh"

namespace facsim::obs
{

const char *
memLevelName(uint8_t level)
{
    switch (level) {
      case 1: return "L1";
      case 2: return "L2";
      case 3: return "mem";
      default: return "-";
    }
}

namespace
{

/** FAC outcome rendered for hover text / event args. */
const char *
facOutcome(const InstTraceRecord &rec)
{
    if (!rec.specAccess)
        return "none";
    return rec.specFailed ? "mispredict" : "hit";
}

/**
 * Stage boundaries shared by both backends. Fetch-to-issue is the F
 * stage; X is the EX cycle; a memory access still outstanding after EX
 * renders as an M stage up to the completion cycle. Completion can be
 * reported as early as the issue cycle (an L1 hit delivers in EX), so
 * every stage is clamped to at least one cycle for visibility.
 */
struct Stages
{
    uint64_t fetch, issue, xEnd, memEnd;
    bool hasMem;
};

Stages
stagesOf(const InstTraceRecord &rec)
{
    Stages s{};
    s.fetch = rec.fetchCycle;
    s.issue = std::max(rec.issueCycle, rec.fetchCycle + 1);
    bool mem = rec.isLoad || rec.isStore;
    s.xEnd = mem ? s.issue + 1 : std::max(rec.doneCycle, s.issue + 1);
    s.memEnd = std::max(rec.doneCycle, s.xEnd);
    s.hasMem = mem && s.memEnd > s.xEnd;
    return s;
}

} // anonymous namespace

// ---------------------------------------------------------------------------
// KonataTraceSink

KonataTraceSink::KonataTraceSink(std::ostream &out) : out_(out)
{
    out_ << "Kanata\t0004\n";
}

void
KonataTraceSink::instruction(const InstTraceRecord &rec)
{
    Stages s = stagesOf(rec);
    uint64_t id = nextId_++;

    // One self-contained block per instruction, jumping the clock with
    // C= at each stage boundary (Konata accepts absolute cycle sets).
    out_ << "C=\t" << s.fetch << "\n";
    out_ << "I\t" << id << "\t" << rec.seq << "\t0\n";
    out_ << "L\t" << id << "\t0\t"
         << strprintf("%08x: %s", rec.pc, rec.text.c_str()) << "\n";
    out_ << "L\t" << id << "\t1\t"
         << strprintf("seq=%llu fac=%s level=%s",
                      static_cast<unsigned long long>(rec.seq),
                      facOutcome(rec), memLevelName(rec.memLevel))
         << "\n";
    out_ << "S\t" << id << "\t0\tF\n";
    out_ << "C=\t" << s.issue << "\n";
    out_ << "E\t" << id << "\t0\tF\n";
    out_ << "S\t" << id << "\t0\tX\n";
    out_ << "C=\t" << s.xEnd << "\n";
    out_ << "E\t" << id << "\t0\tX\n";
    if (s.hasMem) {
        out_ << "S\t" << id << "\t0\tM\n";
        out_ << "C=\t" << s.memEnd << "\n";
        out_ << "E\t" << id << "\t0\tM\n";
    }
    out_ << "R\t" << id << "\t" << id << "\t0\n";
}

void
KonataTraceSink::finish()
{
    if (finished_)
        return;
    finished_ = true;
    out_.flush();
}

// ---------------------------------------------------------------------------
// ChromeTraceSink

ChromeTraceSink::ChromeTraceSink(std::ostream &out) : out_(out)
{
    out_ << "{\"traceEvents\":[";
}

void
ChromeTraceSink::event(const char *stage, uint64_t ts, uint64_t dur,
                       const InstTraceRecord &rec)
{
    if (!first_)
        out_ << ",";
    first_ = false;
    // JSON-escape the disassembly conservatively: the text is generated
    // by disasm() and contains no quotes/backslashes, but a stray
    // control byte must not produce invalid JSON.
    std::string text;
    for (char c : rec.text) {
        if (c == '"' || c == '\\') {
            text += '\\';
            text += c;
        } else if (static_cast<unsigned char>(c) < 0x20)
            text += strprintf("\\u%04x", c);
        else
            text += c;
    }
    out_ << strprintf(
        "\n{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%llu,\"dur\":%llu,"
        "\"pid\":0,\"tid\":%llu,\"args\":{\"seq\":%llu,"
        "\"pc\":\"0x%08x\",\"inst\":\"%s\",\"fac\":\"%s\","
        "\"level\":\"%s\"}}",
        stage, static_cast<unsigned long long>(ts),
        static_cast<unsigned long long>(dur),
        static_cast<unsigned long long>(rec.seq % 16),
        static_cast<unsigned long long>(rec.seq), rec.pc, text.c_str(),
        facOutcome(rec), memLevelName(rec.memLevel));
}

void
ChromeTraceSink::instruction(const InstTraceRecord &rec)
{
    Stages s = stagesOf(rec);
    event("F", s.fetch, s.issue - s.fetch, rec);
    event("X", s.issue, s.xEnd - s.issue, rec);
    if (s.hasMem)
        event("M", s.xEnd, s.memEnd - s.xEnd, rec);
}

void
ChromeTraceSink::finish()
{
    if (finished_)
        return;
    finished_ = true;
    out_ << "\n]}\n";
    out_.flush();
}

// ---------------------------------------------------------------------------
// Construction helpers

bool
parseTraceFormat(const std::string &s, TraceFormat &out)
{
    if (s == "konata") {
        out = TraceFormat::Konata;
        return true;
    }
    if (s == "chrome") {
        out = TraceFormat::Chrome;
        return true;
    }
    return false;
}

std::unique_ptr<TraceSink>
makeTraceSink(TraceFormat format, std::ostream &out)
{
    if (format == TraceFormat::Chrome)
        return std::make_unique<ChromeTraceSink>(out);
    return std::make_unique<KonataTraceSink>(out);
}

std::unique_ptr<OpenTrace>
openTrace(const TraceOptions &opts)
{
    if (!opts.enabled())
        return nullptr;
    auto t = std::make_unique<OpenTrace>();
    t->file.open(opts.path, std::ios::out | std::ios::trunc);
    if (!t->file)
        fatal("cannot open trace file '%s'", opts.path.c_str());
    t->sink = makeTraceSink(opts.format, t->file);
    return t;
}

// ---------------------------------------------------------------------------
// SpanTracer

SpanTracer::SpanTracer(std::ostream &out)
    : out_(out), epoch_(Clock::now())
{
    out_ << "{\"traceEvents\":[";
}

double
SpanTracer::usSince(Clock::time_point t) const
{
    return std::chrono::duration<double, std::micro>(t - epoch_).count();
}

void
SpanTracer::emitLocked(const std::string &json)
{
    if (finished_)
        return;
    if (!first_)
        out_ << ",";
    first_ = false;
    out_ << "\n" << json;
}

uint64_t
SpanTracer::tidLocked(const char *role)
{
    auto it = tids_.find(std::this_thread::get_id());
    if (it != tids_.end())
        return it->second;
    uint64_t tid = tids_.size();
    tids_.emplace(std::this_thread::get_id(), tid);
    emitLocked(strprintf(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%llu,"
        "\"args\":{\"name\":\"%s-%llu\"}}",
        static_cast<unsigned long long>(tid), role ? role : "t",
        static_cast<unsigned long long>(tid)));
    return tid;
}

void
SpanTracer::instant(const char *name, uint64_t req_id)
{
    double ts = usSince(Clock::now());
    std::lock_guard<std::mutex> lk(mu_);
    uint64_t tid = tidLocked(nullptr);
    emitLocked(strprintf(
        "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,"
        "\"pid\":0,\"tid\":%llu,\"args\":{\"req\":%llu}}",
        name, ts, static_cast<unsigned long long>(tid),
        static_cast<unsigned long long>(req_id)));
}

void
SpanTracer::complete(const char *name, uint64_t req_id,
                     Clock::time_point t0, Clock::time_point t1)
{
    double ts = usSince(t0);
    double dur = std::chrono::duration<double, std::micro>(t1 - t0).count();
    if (dur < 0.0)
        dur = 0.0;
    std::lock_guard<std::mutex> lk(mu_);
    uint64_t tid = tidLocked(nullptr);
    emitLocked(strprintf(
        "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
        "\"pid\":0,\"tid\":%llu,\"args\":{\"req\":%llu}}",
        name, ts, dur, static_cast<unsigned long long>(tid),
        static_cast<unsigned long long>(req_id)));
}

void
SpanTracer::nameThisThread(const char *role)
{
    std::lock_guard<std::mutex> lk(mu_);
    tidLocked(role);
}

void
SpanTracer::finish()
{
    std::lock_guard<std::mutex> lk(mu_);
    if (finished_)
        return;
    finished_ = true;
    out_ << "\n]}\n";
    out_.flush();
}

// ---------------------------------------------------------------------------
// Global span-tracer hook (consulted by obs/prof.hh scopes)

namespace
{
std::atomic<SpanTracer *> g_spanTracer{nullptr};
thread_local uint64_t t_spanReqId = 0;
} // namespace

void
setSpanTracer(SpanTracer *t)
{
    g_spanTracer.store(t, std::memory_order_release);
}

SpanTracer *
spanTracer()
{
    return g_spanTracer.load(std::memory_order_acquire);
}

uint64_t
currentSpanReqId()
{
    return t_spanReqId;
}

SpanReqScope::SpanReqScope(uint64_t req_id) : prev_(t_spanReqId)
{
    t_spanReqId = req_id;
}

SpanReqScope::~SpanReqScope()
{
    t_spanReqId = prev_;
}

} // namespace facsim::obs
