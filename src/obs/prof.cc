#include "obs/prof.hh"

#include <algorithm>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/stats.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace facsim::obs
{

const char *
profPhaseName(ProfPhase p)
{
    switch (p) {
      case ProfPhase::BlockTranslate: return "translate";
      case ProfPhase::Warmup: return "warmup";
      case ProfPhase::DetailedWindow: return "detail";
      case ProfPhase::Drain: return "drain";
      case ProfPhase::CacheSave: return "cache_save";
      case ProfPhase::CacheLoad: return "cache_load";
      case ProfPhase::Encode: return "encode";
      case ProfPhase::NumPhases: break;
    }
    panic("profPhaseName: bad phase %u", static_cast<unsigned>(p));
}

bool
profCompiledIn()
{
    return FACSIM_PROF_ON != 0;
}

namespace
{

struct Accum
{
    uint64_t count = 0;
    double sumUs = 0.0;
    double sumSqUs = 0.0;
    double minUs = std::numeric_limits<double>::infinity();
    double maxUs = -std::numeric_limits<double>::infinity();

    void
    add(double us)
    {
        ++count;
        sumUs += us;
        sumSqUs += us * us;
        minUs = std::min(minUs, us);
        maxUs = std::max(maxUs, us);
    }

    void
    merge(const Accum &o)
    {
        if (!o.count)
            return;
        count += o.count;
        sumUs += o.sumUs;
        sumSqUs += o.sumSqUs;
        minUs = std::min(minUs, o.minUs);
        maxUs = std::max(maxUs, o.maxUs);
    }
};

/** One thread's accumulators; its own mutex keeps snapshots coherent
 *  against the (uncontended) owner without a global lock per scope. */
struct Block
{
    std::mutex mu;
    Accum acc[numProfPhases];
};

/** Registration list + the tally of exited threads. Lock order:
 *  g_mu before any Block::mu. */
std::mutex g_mu;
std::vector<std::shared_ptr<Block>> g_blocks;
Accum g_retired[numProfPhases];

/** Merges the thread's block into g_retired when the thread exits, so
 *  a long-lived daemon does not accumulate one Block per ephemeral
 *  Runner worker forever. */
struct TlsHolder
{
    std::shared_ptr<Block> block;

    ~TlsHolder()
    {
        if (!block)
            return;
        std::lock_guard<std::mutex> lk(g_mu);
        {
            std::lock_guard<std::mutex> blk(block->mu);
            for (unsigned i = 0; i < numProfPhases; ++i)
                g_retired[i].merge(block->acc[i]);
        }
        g_blocks.erase(
            std::remove(g_blocks.begin(), g_blocks.end(), block),
            g_blocks.end());
    }
};

Block &
myBlock()
{
    thread_local TlsHolder holder;
    if (!holder.block) {
        holder.block = std::make_shared<Block>();
        std::lock_guard<std::mutex> lk(g_mu);
        g_blocks.push_back(holder.block);
    }
    return *holder.block;
}

} // namespace

void
profScopeEnd(ProfPhase p, std::chrono::steady_clock::time_point t0,
             std::chrono::steady_clock::time_point t1)
{
    double us = std::chrono::duration<double, std::micro>(t1 - t0).count();
    Block &b = myBlock();
    {
        std::lock_guard<std::mutex> lk(b.mu);
        b.acc[static_cast<unsigned>(p)].add(us);
    }
    if (SpanTracer *tr = spanTracer())
        tr->complete(profPhaseName(p), currentSpanReqId(), t0, t1);
}

ProfTally
profSnapshot(ProfPhase p)
{
    unsigned i = static_cast<unsigned>(p);
    Accum merged;
    {
        std::lock_guard<std::mutex> lk(g_mu);
        merged = g_retired[i];
        for (const auto &b : g_blocks) {
            std::lock_guard<std::mutex> blk(b->mu);
            merged.merge(b->acc[i]);
        }
    }
    ProfTally t;
    t.count = merged.count;
    t.sumUs = merged.sumUs;
    t.sumSqUs = merged.sumSqUs;
    t.minUs = merged.count ? merged.minUs : 0.0;
    t.maxUs = merged.count ? merged.maxUs : 0.0;
    return t;
}

void
profReset()
{
    std::lock_guard<std::mutex> lk(g_mu);
    for (auto &a : g_retired)
        a = Accum{};
    for (const auto &b : g_blocks) {
        std::lock_guard<std::mutex> blk(b->mu);
        for (auto &a : b->acc)
            a = Accum{};
    }
}

void
registerProfStats(Group &g)
{
    for (unsigned i = 0; i < numProfPhases; ++i) {
        auto p = static_cast<ProfPhase>(i);
        g.distributionView(
            profPhaseName(p),
            std::string("host us per ") + profPhaseName(p) + " scope",
            [p] {
                ProfTally t = profSnapshot(p);
                DistData d;
                d.count = t.count;
                d.sum = t.sumUs;
                d.sumSq = t.sumSqUs;
                d.min = t.minUs;
                d.max = t.maxUs;
                return d;
            });
    }
}

} // namespace facsim::obs
