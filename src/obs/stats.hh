/**
 * @file
 * Hierarchical statistics registry in the gem5 idiom: named stat nodes
 * (Counter / Scalar / Histogram / Distribution / Formula) registered
 * under dotted component paths ("pipeline.fac.mispredicts",
 * "hier.l1d.mshr.full_stalls", ...) and dumped as aligned text or as a
 * flat, stable-schema JSON object.
 *
 * Hot-path cost model: a stat is a plain member object the owning
 * component increments directly (`++ctr`, `dist.sample(v)`) — no map
 * lookups, no virtual calls, no locks on the fast path. The tree is
 * only walked when dumping. Components that already keep raw counters
 * (PipeStats, HierarchyStats, ProfileResult) are published through
 * *view* nodes that bind the existing fields by pointer, so the legacy
 * structs remain the storage, the simulation loop is untouched, and
 * every figure/table byte stays identical (see sim/obs_views.hh).
 *
 * Naming rules (enforced with panic(), death-tested): a component name
 * is non-empty, contains no '.', and is unique among its siblings —
 * registering the same path twice is a simulator bug.
 */

#ifndef FACSIM_OBS_STATS_HH
#define FACSIM_OBS_STATS_HH

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace facsim::obs
{

/** What a stat node is; fixed at registration, drives the JSON shape. */
enum class StatKind : uint8_t
{
    Counter,       ///< monotonically increasing integer
    Scalar,        ///< arbitrary settable double
    Histogram,     ///< linear-bucket value histogram
    Distribution,  ///< running count/mean/stddev/min/max
    Formula,       ///< value computed from other stats at dump time
};

/** Base of every registered node. */
class Stat
{
  public:
    Stat(StatKind kind, std::string name, std::string desc);
    virtual ~Stat() = default;

    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;

    StatKind kind() const { return kind_; }
    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Append this node's JSON value (number or object) to @p out. */
    virtual void jsonValue(std::string &out) const = 0;

    /** One-line text rendering for the aligned dump. */
    virtual std::string textValue() const = 0;

  private:
    StatKind kind_;
    std::string name_;
    std::string desc_;
};

/** Monotonic event counter. Plain increments; safe to copy-from never. */
class Counter final : public Stat
{
  public:
    Counter(std::string name, std::string desc)
        : Stat(StatKind::Counter, std::move(name), std::move(desc))
    {
    }

    Counter &operator++()
    {
        ++v_;
        return *this;
    }
    Counter &operator+=(uint64_t d)
    {
        v_ += d;
        return *this;
    }

    uint64_t value() const { return v_; }

    void jsonValue(std::string &out) const override;
    std::string textValue() const override;

  private:
    uint64_t v_ = 0;
};

/** Settable floating-point value (sizes, rates computed by the owner). */
class Scalar final : public Stat
{
  public:
    Scalar(std::string name, std::string desc)
        : Stat(StatKind::Scalar, std::move(name), std::move(desc))
    {
    }

    void set(double v) { v_ = v; }
    double value() const { return v_; }

    void jsonValue(std::string &out) const override;
    std::string textValue() const override;

  private:
    double v_ = 0.0;
};

/**
 * Linear-bucket histogram over [lo, hi): @p nbuckets equal buckets plus
 * underflow/overflow counters. Bucket boundaries are fixed at
 * registration so the dumped schema is stable.
 */
class Histogram final : public Stat
{
  public:
    Histogram(std::string name, std::string desc, double lo, double hi,
              unsigned nbuckets);

    void sample(double v, uint64_t weight = 1);

    uint64_t count() const { return count_; }
    uint64_t underflow() const { return underflow_; }
    uint64_t overflow() const { return overflow_; }
    uint64_t bucket(unsigned i) const { return buckets_[i]; }
    unsigned numBuckets() const
    {
        return static_cast<unsigned>(buckets_.size());
    }
    double bucketWidth() const { return width_; }
    double lo() const { return lo_; }
    double hi() const { return hi_; }
    double sum() const { return sum_; }

    /**
     * Estimate the @p p percentile (0.0 .. 1.0, clamped) from the
     * bucket counts, interpolating linearly inside the bucket that
     * crosses the target rank. Mass in the underflow bucket reads as
     * lo, overflow as hi (the estimate saturates at the range edges).
     * Returns 0.0 on an empty histogram.
     */
    double percentile(double p) const;

    void jsonValue(std::string &out) const override;
    std::string textValue() const override;

  private:
    double lo_, hi_, width_;
    std::vector<uint64_t> buckets_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t count_ = 0;
    double sum_ = 0.0;
};

/** Running distribution: count, sum, min, max, mean, stddev. */
class Distribution final : public Stat
{
  public:
    Distribution(std::string name, std::string desc)
        : Stat(StatKind::Distribution, std::move(name), std::move(desc))
    {
    }

    void
    sample(double v)
    {
        ++count_;
        sum_ += v;
        sumSq_ += v * v;
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }

    uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double stddev() const;
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    void jsonValue(std::string &out) const override;
    std::string textValue() const override;

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Point-in-time summary of an externally accumulated distribution. */
struct DistData
{
    uint64_t count = 0;
    double sum = 0.0;
    double sumSq = 0.0;
    double min = 0.0;  ///< 0 when count == 0
    double max = 0.0;  ///< 0 when count == 0

    double mean() const { return count ? sum / count : 0.0; }
    double stddev() const;
};

/**
 * Distribution-shaped view over data owned elsewhere (e.g. the
 * process-global phase profiler, obs/prof.hh): the callback is invoked
 * at dump time and the node renders exactly like a Distribution, so
 * the JSON schema cannot tell them apart.
 */
class DistributionView final : public Stat
{
  public:
    DistributionView(std::string name, std::string desc,
                     std::function<DistData()> fn)
        : Stat(StatKind::Distribution, std::move(name), std::move(desc)),
          fn_(std::move(fn))
    {
    }

    DistData value() const { return fn_(); }

    void jsonValue(std::string &out) const override;
    std::string textValue() const override;

  private:
    std::function<DistData()> fn_;
};

/** Value derived from other stats, evaluated lazily at dump time. */
class Formula final : public Stat
{
  public:
    Formula(std::string name, std::string desc,
            std::function<double()> fn)
        : Stat(StatKind::Formula, std::move(name), std::move(desc)),
          fn_(std::move(fn))
    {
    }

    double value() const { return fn_(); }

    void jsonValue(std::string &out) const override;
    std::string textValue() const override;

  private:
    std::function<double()> fn_;
};

/**
 * One node of the registry tree. Components obtain a subgroup under
 * their parent and register their stats into it; nodes are owned by the
 * group and live until the group is destroyed.
 */
class Group
{
  public:
    Group() : name_() {}

    /** Get-or-create the child group @p name. */
    Group &group(const std::string &name);

    /** @{ @name Node registration (panics on duplicate path). */
    Counter &counter(const std::string &name, const std::string &desc);
    Scalar &scalar(const std::string &name, const std::string &desc);
    Histogram &histogram(const std::string &name, const std::string &desc,
                         double lo, double hi, unsigned nbuckets);
    Distribution &distribution(const std::string &name,
                               const std::string &desc);
    Formula &formula(const std::string &name, const std::string &desc,
                     std::function<double()> fn);
    DistributionView &distributionView(const std::string &name,
                                       const std::string &desc,
                                       std::function<DistData()> fn);
    /**
     * Read-only integer view bound to an externally owned counter (the
     * legacy-struct migration path; @p v must outlive every dump).
     */
    Formula &counterView(const std::string &name, const std::string &desc,
                         const uint64_t *v);
    /** @} */

    /** Node at dotted @p path below this group, or nullptr. */
    const Stat *find(const std::string &path) const;
    /** Child group @p name, or nullptr. */
    const Group *findGroup(const std::string &name) const;

    /**
     * Aligned text dump, one `path  value  # desc` line per node in
     * registration order, prefixed by this group's dotted @p prefix.
     */
    void dumpText(std::ostream &out, const std::string &prefix = "") const;

    /**
     * Flat JSON object body: `"dotted.path":value` pairs in
     * registration order (no surrounding braces so callers can embed).
     */
    void dumpJson(std::string &out, const std::string &prefix = "") const;

    /**
     * Prometheus text-exposition lines for every node under this
     * group (see Registry::promDump for the naming/typing rules).
     */
    void dumpProm(std::string &out, const std::string &prefix = "") const;

  private:
    explicit Group(std::string name) : name_(std::move(name)) {}

    void checkNewName(const std::string &name) const;
    template <typename T, typename... Args>
    T &add(const std::string &name, Args &&...args);

    std::string name_;
    std::vector<std::unique_ptr<Group>> children_;
    std::vector<std::unique_ptr<Stat>> stats_;
};

/**
 * A registry is a root group plus the two canonical dump formats. The
 * JSON form is versioned so downstream diffing tools can detect schema
 * changes: `{"schema_version":1,"stats":{...}}`.
 */
class Registry
{
  public:
    /** Version of the dumped JSON schema. */
    static constexpr unsigned schemaVersion = 1;

    Group &root() { return root_; }
    const Group &root() const { return root_; }

    /** Full JSON document (one object, stable key order). */
    std::string jsonDump() const;

    /** Aligned text dump of every registered node. */
    std::string textDump() const;

    /**
     * Prometheus text exposition of every registered node. Metric
     * names are `facsim_` + the dotted path with every character
     * outside [a-zA-Z0-9_] replaced by '_'; each metric gets a
     * `# HELP` line (the registered description) and a `# TYPE` line.
     * Counters expose as `counter`, scalars/formulas as `gauge`,
     * histograms as a native Prometheus `histogram` (cumulative
     * `_bucket{le="..."}` series plus `_sum`/`_count`), distributions
     * as a `summary` (`_sum`/`_count`) with companion `_min`/`_max`
     * gauges.
     */
    std::string promDump() const;

    /** Write jsonDump() or textDump() to @p path by suffix (".json"). */
    void writeFile(const std::string &path) const;

  private:
    Group root_;
};

/** Format a double as a JSON-safe number (finite, shortest round). */
std::string jsonNumber(double v);

/** Sanitize a dotted stat path into a Prometheus metric name. */
std::string promName(const std::string &path);

} // namespace facsim::obs

#endif // FACSIM_OBS_STATS_HH
