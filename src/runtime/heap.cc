#include "runtime/heap.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace facsim
{

Heap::Heap(uint32_t base, HeapPolicy policy)
    : base_(base), cur(base), pol(policy)
{
    FACSIM_ASSERT(isPow2(pol.minAlign), "heap alignment must be pow2");
}

uint32_t
Heap::alloc(uint32_t size, uint32_t natural_align)
{
    uint32_t align = pol.minAlign;
    if (natural_align > align)
        align = nextPow2(natural_align);
    if (pol.alignToSize && size > pol.minAlign) {
        uint32_t want = nextPow2(size);
        if (want > pol.largeAlignCap)
            want = pol.largeAlignCap;
        if (want > align)
            align = want;
    }
    cur = static_cast<uint32_t>(roundUp(cur, align));
    uint32_t addr = cur;
    uint32_t sz = size ? size : 1;
    if (pol.roundSizes)
        sz = static_cast<uint32_t>(roundUp(sz, pol.minAlign));
    cur += sz;
    return addr;
}

uint32_t
Heap::allocPacked(uint32_t size)
{
    cur = static_cast<uint32_t>(roundUp(cur, 4));
    uint32_t addr = cur;
    cur += size ? size : 1;
    return addr;
}

} // namespace facsim
