#include "runtime/stack.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace facsim
{

uint32_t
StackPolicy::frameSize(uint32_t raw_size) const
{
    return static_cast<uint32_t>(roundUp(raw_size ? raw_size : spAlign,
                                         spAlign));
}

uint32_t
StackPolicy::frameAlign(uint32_t rounded_size) const
{
    if (!explicitAlignBigFrames || rounded_size <= spAlign)
        return spAlign;
    uint32_t a = nextPow2(rounded_size);
    if (a > maxFrameAlign)
        a = maxFrameAlign;
    return a;
}

uint32_t
StackPolicy::initialSp() const
{
    FACSIM_ASSERT(isPow2(spAlign), "sp alignment must be a power of two");
    // The startup code aligns sp to the program-wide alignment. The
    // unsupported 8-byte-aligned value mimics the paper's example stack
    // addresses (sp = 0x7fff5b84-style, i.e. not 64-byte aligned).
    if (spAlign <= 8)
        return stackTopRegion - 0x2a78;  // 8-aligned, not 16-aligned
    return static_cast<uint32_t>(roundDown(stackTopRegion - 0x2a78,
                                           spAlign));
}

} // namespace facsim
