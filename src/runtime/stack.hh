/**
 * @file
 * Stack conventions and the paper's *compiler* half of the stack software
 * support (Section 4, "Stack Pointer Accesses"):
 *
 *  - all frame sizes are rounded to a multiple of a program-wide stack
 *    pointer alignment (8 bytes normally, 64 with support), so the
 *    alignment established by the startup code is maintained forever;
 *  - frames larger than the program-wide alignment explicitly align the
 *    stack pointer in the prologue (AND with the negated power-of-two
 *    frame size, capped at 256 bytes), which requires a frame pointer and
 *    save/restore of the old sp;
 *  - scalars are placed closest to the stack pointer so their offsets stay
 *    below the alignment.
 */

#ifndef FACSIM_RUNTIME_STACK_HH
#define FACSIM_RUNTIME_STACK_HH

#include <cstdint>

namespace facsim
{

/** Stack layout behaviour knobs. */
struct StackPolicy
{
    /** Program-wide stack-pointer alignment (8 default, 64 with support). */
    uint32_t spAlign = 8;
    /**
     * Upper bound for the explicit alignment applied to frames larger
     * than spAlign (paper: 256; only used when explicitAlignBigFrames).
     */
    uint32_t maxFrameAlign = 256;
    /** Enable the explicit big-frame alignment technique. */
    bool explicitAlignBigFrames = false;

    /** Round a raw frame size per the policy. */
    uint32_t frameSize(uint32_t raw_size) const;

    /**
     * Alignment a frame of @p rounded_size enforces in its prologue:
     * spAlign for small frames, the capped power-of-two frame size for
     * big ones when explicit alignment is enabled.
     */
    uint32_t frameAlign(uint32_t rounded_size) const;

    /** Initial stack pointer handed to the startup code. */
    uint32_t initialSp() const;
};

/** Top-of-stack virtual address region. */
constexpr uint32_t stackTopRegion = 0x7fff8000;

} // namespace facsim

#endif // FACSIM_RUNTIME_STACK_HH
