/**
 * @file
 * Simulated dynamic storage allocator. Models the paper's malloc()/
 * alloca() behaviour: a type-less allocator that hands out addresses with
 * a configurable minimum alignment — 8 bytes normally, raised to 32 bytes
 * (the cache block size) by the software support of Section 4, since the
 * allocator lacks type information and must assume the maximum.
 *
 * Workload kernels use this host-side allocator to lay out their heap
 * data structures; the resulting pointer values (and hence their
 * alignment, which is what fast address calculation cares about) are
 * stored into simulated memory for the simulated code to chase.
 */

#ifndef FACSIM_RUNTIME_HEAP_HH
#define FACSIM_RUNTIME_HEAP_HH

#include <cstdint>

namespace facsim
{

/** Allocator behaviour knobs. */
struct HeapPolicy
{
    /** Minimum allocation alignment (8 default, 32 with support). */
    uint32_t minAlign = 8;
    /**
     * When true, requested sizes are additionally rounded so consecutive
     * allocations keep the alignment (mirrors real malloc chunk rounding).
     */
    bool roundSizes = true;
    /**
     * The paper's future-work large-alignment placement, applied to the
     * allocator: objects bigger than minAlign are aligned to their full
     * power-of-two size (capped at largeAlignCap), so array indexing
     * within them stays carry-free.
     */
    bool alignToSize = false;
    /** Cap for alignToSize (one cache's worth by default). */
    uint32_t largeAlignCap = 16 * 1024;
};

/** Bump allocator over the simulated heap segment. */
class Heap
{
  public:
    /**
     * @param base first heap address (from LinkedImage::heapBase).
     * @param policy alignment behaviour.
     */
    Heap(uint32_t base, HeapPolicy policy);

    /**
     * Allocate @p size bytes.
     *
     * @param size object size in bytes.
     * @param natural_align minimum alignment the object's type needs;
     *        the effective alignment is max(minAlign, natural_align).
     * @return the simulated address of the new object.
     */
    uint32_t alloc(uint32_t size, uint32_t natural_align = 1);

    /**
     * Allocate with a deliberately poor, allocator-bypassing layout —
     * models the "domain-specific storage allocators" (obstacks) the
     * paper blames for GCC's residual mispredictions: objects are packed
     * end-to-end with only 4-byte alignment regardless of policy.
     */
    uint32_t allocPacked(uint32_t size);

    /** Current top of the heap. */
    uint32_t top() const { return cur; }

    /** High-water heap usage in bytes (memory-usage statistic). */
    uint64_t usedBytes() const { return cur - base_; }

    /** Heap base address. */
    uint32_t base() const { return base_; }

  private:
    uint32_t base_;
    uint32_t cur;
    HeapPolicy pol;
};

} // namespace facsim

#endif // FACSIM_RUNTIME_HEAP_HH
