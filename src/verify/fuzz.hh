/**
 * @file
 * Seeded random-program fuzzer over the differential co-simulation
 * (verify/cosim.hh).
 *
 * Generation is two-phase to make shrinking well-defined:
 *
 *  1. a seeded Rng produces a vector of abstract FuzzItem descriptors,
 *     with *all* randomness resolved into descriptor fields;
 *  2. materialize() turns a descriptor vector into assembly through
 *     AsmBuilder, with no randomness of its own.
 *
 * Any subsequence of a valid descriptor vector therefore materializes
 * into a valid program (forward skips bind their labels at descriptor
 * boundaries), so delta-debugging can drop descriptors freely. A
 * diverging case is minimized with ddmin: remove chunks of descriptors
 * at shrinking granularity while the divergence (same configuration)
 * reproduces, then try single-descriptor removals until a fixpoint.
 *
 * The offset/alignment distributions are deliberately FAC-adversarial:
 * base registers parked at block edges and power-of-two boundaries,
 * constant offsets clustered around 0, +/-2^B and +/-2^S, negative
 * register indices, post-increment walks, store bursts that overflow
 * the 16-entry store buffer, and store->load pairs to the same address.
 * Every effective address stays inside one 128 KB buffer and aligned to
 * the access size (the emulator treats unaligned access as a fatal
 * program-generation bug, not a divergence).
 *
 * Reproducibility: case i of a batch is generated from
 * splitmix64(seed, i) alone, so a given --seed produces byte-identical
 * programs at any --jobs value; runFuzzBatch() proves it by folding
 * per-case program digests in index order into FuzzBatchResult::digest.
 */

#ifndef FACSIM_VERIFY_FUZZ_HH
#define FACSIM_VERIFY_FUZZ_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "asm/builder.hh"
#include "util/rng.hh"
#include "verify/cosim.hh"

namespace facsim::verify
{

/** One abstract program element; fields are interpreted per kind. */
struct FuzzItem
{
    enum class Kind : uint8_t
    {
        AluReg,       ///< 3-register ALU op (a=op, b/c/d=reg slots)
        AluImm,       ///< immediate ALU op (a=op, b/c=reg slots, x=imm)
        LiConst,      ///< li of an interesting constant (b=dst, x=value)
        LoadConst,    ///< reg+const load (a=size, b=dst, c=base, x=offset)
        StoreConst,   ///< reg+const store (a=size, b=src, c=base, x=offset)
        MemRR,        ///< reg+reg access (a=op, b=data, c=base, x=index)
        MemRRMasked,  ///< index masked from a temp, optionally negated
        PostInc,      ///< post-inc/dec walk step (a=op, b=data, x=stride)
        CursorReset,  ///< reset the post-increment cursor
        FpArith,      ///< FP arithmetic (a=op, b/c/d=FP reg slots)
        FpMove,       ///< mtc1/mfc1/cvt (a=op, b=FP slot, c=temp slot)
        FpCmp,        ///< FP compare, sets the condition code
        FpMemConst,   ///< FP load/store (a=op, b=FP slot, c=base, x=offset)
        Skip,         ///< conditional forward skip of x items (a=cond)
        StoreBurst,   ///< burst of x stores (overflows the store buffer)
        StoreThenLoad ///< store + load of the same address (c=base, x=off)
    };

    Kind kind = Kind::AluReg;
    uint8_t a = 0, b = 0, c = 0, d = 0;
    int32_t x = 0, y = 0;

    bool operator==(const FuzzItem &o) const = default;
};

/** SplitMix64: the per-case seed derivation (jobs-invariant). */
uint64_t splitmix64(uint64_t seed, uint64_t index);

/** Phase 1: generate @p count descriptors from @p rng. */
std::vector<FuzzItem> generateItems(Rng &rng, unsigned count);

/** Phase 2: deterministically emit the program for @p items. */
void materialize(AsmBuilder &as, const std::vector<FuzzItem> &items);

/** FNV-1a digest of the program @p items materialize into. */
uint64_t programDigest(const std::vector<FuzzItem> &items);

/** One pipeline configuration of the fuzz matrix. */
struct FuzzConfig
{
    std::string name;     ///< "off", "hw", "hw+sw", "r+r", "hw+disamb"
    PipelineConfig pipe;
    LinkPolicy link;
};

/**
 * The configurations every case runs under, keyed by predictor mode
 * (a kPredictorChoices spelling). "fac" is the legacy five-entry
 * matrix, byte-identical to the historical one so its batch digest is
 * stable; other modes pair the baseline with the predictor switched
 * on, a conservative-disambiguation variant, an R+R-speculation
 * variant when FAC is in play, and a 2-way L1 variant when way
 * memoization is (set conflicts make memo entries go stale).
 */
std::vector<FuzzConfig>
fuzzConfigMatrix(const std::string &predictor = "fac");

/** Options for one fuzz batch. */
struct FuzzOptions
{
    uint64_t seed = 2026;
    uint64_t count = 100;
    /** Host threads (0 = all hardware threads). */
    unsigned jobs = 1;
    /** Shrink diverging cases to a minimal descriptor vector. */
    bool shrink = false;
    /** Descriptors per case are drawn from [minItems, maxItems]. */
    unsigned minItems = 40;
    unsigned maxItems = 160;
    /** Cap on co-sim runs spent shrinking one case. */
    unsigned shrinkBudget = 400;
    /**
     * Predictor mode selecting the config matrix (kPredictorChoices).
     * "fac" keeps the historical program-only batch digest; every
     * other mode folds the matrix configFingerprints into the digest,
     * so each predictor pins a distinct, config-sensitive value.
     */
    std::string predictor = "fac";
};

/** Outcome of one fuzz case (diverging cases carry diagnostics). */
struct FuzzCaseOutcome
{
    uint64_t index = 0;
    uint64_t caseSeed = 0;
    uint64_t digest = 0;      ///< program digest (jobs-invariance proof)
    uint64_t simInsts = 0;    ///< both sides, all configs (accounting)
    bool diverged = false;
    std::string configName;   ///< first diverging configuration
    std::string report;       ///< cosim report for that configuration
    std::vector<FuzzItem> items;        ///< the generated descriptors
    std::vector<FuzzItem> shrunkItems;  ///< minimal repro (if shrunk)
    std::string shrunkListing;          ///< disassembly of the repro
};

/** Aggregate result of a fuzz batch. */
struct FuzzBatchResult
{
    uint64_t casesRun = 0;
    uint64_t divergingCases = 0;
    /** Per-case digests folded in index order (jobs-invariant). */
    uint64_t digest = 0;
    uint64_t simInsts = 0;
    double wallSeconds = 0.0;
    /** Outcomes of the diverging cases only, in index order. */
    std::vector<FuzzCaseOutcome> failures;
};

/** Run one case (all matrix configurations) from its derived seed. */
FuzzCaseOutcome runFuzzCase(uint64_t case_seed, uint64_t index,
                            const FuzzOptions &opt);

/**
 * Run a whole batch, fanned across opt.jobs host threads with the
 * parallel Runner (per-index result slots keep results deterministic).
 */
FuzzBatchResult runFuzzBatch(const FuzzOptions &opt);

/**
 * Generic ddmin over @p items: returns a (locally) minimal subsequence
 * for which @p still_fails returns true, spending at most @p budget
 * predicate evaluations. Exposed for unit testing; the fuzzer calls it
 * with "co-sim still diverges under this configuration" as predicate.
 */
std::vector<FuzzItem>
ddminItems(const std::vector<FuzzItem> &items,
           const std::function<bool(const std::vector<FuzzItem> &)>
               &still_fails,
           unsigned budget);

} // namespace facsim::verify

#endif // FACSIM_VERIFY_FUZZ_HH
