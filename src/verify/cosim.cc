#include "verify/cosim.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>

#include "core/fast_addr_calc.hh"
#include "cpu/load_predictor.hh"
#include "isa/disasm.hh"
#include "mem/memory.hh"
#include "obs/debug.hh"
#include "util/logging.hh"

namespace facsim::verify
{
namespace
{

/**
 * RefModel: the reference half of the differential pair — a from-scratch
 * interpreter for the ISA, deliberately written with a different
 * structure from cpu/emulator.cc (64-bit intermediate arithmetic,
 * category dispatch, its own sign-extension helpers) so that a semantic
 * slip in either implementation shows up as a divergence rather than
 * being shared. Semantics follow the simulator definitions documented in
 * the emulator: division by zero yields 0, INT_MIN/-1 yields INT_MIN
 * (remainder 0), CVT.W.D saturates, MTC1/MFC1 move raw bits.
 */
class RefModel
{
  public:
    /** What one reference step exposes for cross-checking. */
    struct Step
    {
        uint32_t pc = 0;
        Inst inst;
        uint32_t effAddr = 0;
        uint32_t baseVal = 0;
        int32_t offsetVal = 0;
        bool offsetFromReg = false;
        bool taken = false;
        uint32_t nextPc = 0;
        bool fetchFault = false;
    };

    RefModel(const Program &prog, Memory &mem, const LinkedImage &img,
             uint32_t sp)
        : prog_(prog), mem_(mem)
    {
        pc_ = img.entryPc;
        x_[reg::gp] = img.gpValue;
        x_[reg::sp] = sp;
    }

    bool halted() const { return halted_; }
    uint64_t count() const { return count_; }
    uint32_t reg(unsigned r) const { return x_[r]; }
    bool cc() const { return cc_; }

    uint64_t
    fpBits(unsigned r) const
    {
        uint64_t b;
        std::memcpy(&b, &f_[r], 8);
        return b;
    }

    /** Fault injection (test hook): flip bits in an integer register. */
    void
    corrupt(unsigned r, uint32_t xor_mask)
    {
        if (r != reg::zero)
            x_[r] ^= xor_mask;
    }

    Step step();

  private:
    static int64_t sgn(uint32_t v) { return static_cast<int32_t>(v); }

    void
    put(unsigned r, uint32_t v)
    {
        if (r != reg::zero)
            x_[r] = v;
    }

    uint32_t aluReg(const Inst &in) const;
    uint32_t aluImm(const Inst &in) const;
    void doMem(const Inst &in, uint32_t ea);
    void doFp(const Inst &in);
    bool branchCond(const Inst &in) const;

    const Program &prog_;
    Memory &mem_;
    uint32_t x_[numIntRegs] = {};
    double f_[numFpRegs] = {};
    bool cc_ = false;
    uint32_t pc_ = 0;
    bool halted_ = false;
    uint64_t count_ = 0;
};

uint32_t
RefModel::aluReg(const Inst &in) const
{
    const uint32_t a = x_[in.rs], b = x_[in.rt];
    switch (in.op) {
      case Op::ADD: return static_cast<uint32_t>(
          (static_cast<uint64_t>(a) + b) & 0xffffffffu);
      case Op::SUB: return static_cast<uint32_t>(
          (static_cast<uint64_t>(a) - b) & 0xffffffffu);
      case Op::AND: return a & b;
      case Op::OR: return a | b;
      case Op::XOR: return a ^ b;
      case Op::NOR: return ~(a | b);
      case Op::SLT: return sgn(a) < sgn(b) ? 1u : 0u;
      case Op::SLTU: return a < b ? 1u : 0u;
      case Op::MUL: return static_cast<uint32_t>(
          (static_cast<uint64_t>(a) * static_cast<uint64_t>(b))
          & 0xffffffffu);
      case Op::DIV:
        if (b == 0)
            return 0;
        if (a == 0x80000000u && b == 0xffffffffu)
            return 0x80000000u;
        return static_cast<uint32_t>(sgn(a) / sgn(b));
      case Op::REM:
        if (b == 0 || (a == 0x80000000u && b == 0xffffffffu))
            return 0;
        return static_cast<uint32_t>(sgn(a) % sgn(b));
      case Op::SLL: return a << (in.imm & 31);
      case Op::SRL: return a >> (in.imm & 31);
      case Op::SRA: return static_cast<uint32_t>(
          sgn(a) >> (in.imm & 31));
      case Op::SLLV: return a << (b & 31);
      case Op::SRLV: return a >> (b & 31);
      case Op::SRAV: return static_cast<uint32_t>(sgn(a) >> (b & 31));
      default: panic("refmodel: not an ALU reg op");
    }
}

uint32_t
RefModel::aluImm(const Inst &in) const
{
    const uint32_t a = x_[in.rs];
    const uint32_t imm = static_cast<uint32_t>(in.imm);
    switch (in.op) {
      case Op::ADDI: return static_cast<uint32_t>(
          (static_cast<uint64_t>(a) + imm) & 0xffffffffu);
      case Op::ANDI: return a & imm;
      case Op::ORI: return a | imm;
      case Op::XORI: return a ^ imm;
      case Op::SLTI: return sgn(a) < in.imm ? 1u : 0u;
      case Op::SLTIU: return a < imm ? 1u : 0u;
      case Op::LUI: return imm << 16;
      default: panic("refmodel: not an ALU imm op");
    }
}

void
RefModel::doMem(const Inst &in, uint32_t ea)
{
    const unsigned bytes = memAccessSize(in.op);
    FACSIM_ASSERT((ea & (bytes - 1)) == 0,
                  "refmodel: unaligned %s at 0x%08x", opName(in.op), ea);
    switch (in.op) {
      case Op::LB:
        put(in.rt, static_cast<uint32_t>(static_cast<int64_t>(
            static_cast<int8_t>(mem_.read8(ea)))));
        break;
      case Op::LBU: put(in.rt, mem_.read8(ea)); break;
      case Op::LH:
        put(in.rt, static_cast<uint32_t>(static_cast<int64_t>(
            static_cast<int16_t>(mem_.read16(ea)))));
        break;
      case Op::LHU: put(in.rt, mem_.read16(ea)); break;
      case Op::LW: put(in.rt, mem_.read32(ea)); break;
      case Op::SB: mem_.write8(ea, static_cast<uint8_t>(x_[in.rt])); break;
      case Op::SH: mem_.write16(ea, static_cast<uint16_t>(x_[in.rt])); break;
      case Op::SW: mem_.write32(ea, x_[in.rt]); break;
      case Op::LWC1: {
        const uint32_t raw = mem_.read32(ea);
        float s;
        std::memcpy(&s, &raw, 4);
        f_[in.rt] = s;
        break;
      }
      case Op::SWC1: {
        const float s = static_cast<float>(f_[in.rt]);
        uint32_t raw;
        std::memcpy(&raw, &s, 4);
        mem_.write32(ea, raw);
        break;
      }
      case Op::LDC1: {
        const uint64_t raw = mem_.read64(ea);
        std::memcpy(&f_[in.rt], &raw, 8);
        break;
      }
      case Op::SDC1: {
        uint64_t raw;
        std::memcpy(&raw, &f_[in.rt], 8);
        mem_.write64(ea, raw);
        break;
      }
      default: panic("refmodel: not a memory op");
    }
}

void
RefModel::doFp(const Inst &in)
{
    switch (in.op) {
      case Op::ADD_D: f_[in.rd] = f_[in.rs] + f_[in.rt]; break;
      case Op::SUB_D: f_[in.rd] = f_[in.rs] - f_[in.rt]; break;
      case Op::MUL_D: f_[in.rd] = f_[in.rs] * f_[in.rt]; break;
      case Op::DIV_D: f_[in.rd] = f_[in.rs] / f_[in.rt]; break;
      case Op::SQRT_D: f_[in.rd] = std::sqrt(f_[in.rs]); break;
      case Op::ABS_D: f_[in.rd] = std::fabs(f_[in.rs]); break;
      case Op::NEG_D: f_[in.rd] = -f_[in.rs]; break;
      case Op::MOV_D: f_[in.rd] = f_[in.rs]; break;
      case Op::CVT_D_W: {
        uint64_t raw;
        std::memcpy(&raw, &f_[in.rs], 8);
        f_[in.rd] = static_cast<double>(
            static_cast<int32_t>(static_cast<uint32_t>(raw)));
        break;
      }
      case Op::CVT_W_D: {
        const double v = f_[in.rs];
        int32_t w;
        if (!(v >= -2147483648.0))
            w = INT32_MIN;       // includes NaN
        else if (v >= 2147483647.0)
            w = INT32_MAX;
        else
            w = static_cast<int32_t>(v);
        const uint64_t raw = static_cast<uint32_t>(w);
        std::memcpy(&f_[in.rd], &raw, 8);
        break;
      }
      case Op::C_EQ_D: cc_ = f_[in.rs] == f_[in.rt]; break;
      case Op::C_LT_D: cc_ = f_[in.rs] < f_[in.rt]; break;
      case Op::C_LE_D: cc_ = f_[in.rs] <= f_[in.rt]; break;
      case Op::MTC1: {
        const uint64_t raw = x_[in.rt];
        std::memcpy(&f_[in.rd], &raw, 8);
        break;
      }
      case Op::MFC1: {
        uint64_t raw;
        std::memcpy(&raw, &f_[in.rs], 8);
        put(in.rd, static_cast<uint32_t>(raw));
        break;
      }
      default: panic("refmodel: not an FP op");
    }
}

bool
RefModel::branchCond(const Inst &in) const
{
    switch (in.op) {
      case Op::BEQ: return x_[in.rs] == x_[in.rt];
      case Op::BNE: return x_[in.rs] != x_[in.rt];
      case Op::BLEZ: return sgn(x_[in.rs]) <= 0;
      case Op::BGTZ: return sgn(x_[in.rs]) > 0;
      case Op::BLTZ: return sgn(x_[in.rs]) < 0;
      case Op::BGEZ: return sgn(x_[in.rs]) >= 0;
      case Op::BC1T: return cc_;
      case Op::BC1F: return !cc_;
      default: panic("refmodel: not a branch");
    }
}

RefModel::Step
RefModel::step()
{
    Step st;
    if (halted_) {
        st.fetchFault = true;
        return st;
    }
    if ((pc_ & 3) != 0 || pc_ < Program::textBase ||
        (pc_ - Program::textBase) / 4 >= prog_.numInsts()) {
        st.fetchFault = true;
        return st;
    }
    const Inst in = prog_.inst((pc_ - Program::textBase) / 4);
    st.pc = pc_;
    st.inst = in;
    uint32_t next = pc_ + 4;

    if (in.op == Op::HALT) {
        halted_ = true;
    } else if (isMem(in.op)) {
        st.baseVal = x_[in.rs];
        if (in.amode == AMode::RegConst) {
            st.offsetVal = in.imm;
        } else if (in.amode == AMode::RegReg) {
            st.offsetVal = static_cast<int32_t>(x_[in.rd]);
            st.offsetFromReg = true;
        }
        st.effAddr = static_cast<uint32_t>(
            (static_cast<int64_t>(st.baseVal) + st.offsetVal)
            & 0xffffffff);
        doMem(in, st.effAddr);
        // Post-increment updates the base *after* the access, reading the
        // base register again: for a load whose destination *is* the base
        // register, the stride is applied to the freshly loaded value.
        if (in.amode == AMode::PostInc)
            put(in.rs, static_cast<uint32_t>(
                (static_cast<int64_t>(x_[in.rs]) + in.imm) & 0xffffffff));
    } else if (isBranch(in.op)) {
        if (branchCond(in)) {
            st.taken = true;
            next = pc_ + 4 + (static_cast<uint32_t>(in.imm) << 2);
        }
    } else if (isJump(in.op)) {
        st.taken = true;
        switch (in.op) {
          case Op::J:
            next = static_cast<uint32_t>(in.imm) << 2;
            break;
          case Op::JAL:
            put(reg::ra, pc_ + 4);
            next = static_cast<uint32_t>(in.imm) << 2;
            break;
          case Op::JR:
            next = x_[in.rs];
            break;
          case Op::JALR:
            put(in.rd, pc_ + 4);
            next = x_[in.rs];
            break;
          default: panic("refmodel: not a jump");
        }
    } else if (isFpOp(in.op) || in.op == Op::MTC1 || in.op == Op::MFC1) {
        doFp(in);
    } else if (in.op != Op::NOP) {
        switch (in.op) {
          case Op::ADDI: case Op::ANDI: case Op::ORI: case Op::XORI:
          case Op::SLTI: case Op::SLTIU: case Op::LUI:
            put(in.rt, aluImm(in));
            break;
          default:
            put(in.rd, aluReg(in));
            break;
        }
    }

    pc_ = next;
    st.nextPc = next;
    ++count_;
    return st;
}

/** One fully built side of the diff. */
struct Side
{
    Program prog;
    Memory mem;
    LinkedImage img;
};

void
buildSide(const std::function<void(AsmBuilder &)> &gen,
          const LinkPolicy &link, Side &side)
{
    AsmBuilder as(side.prog);
    gen(as);
    side.img = Linker(link).link(side.prog, side.mem);
}

std::string
hex32(uint32_t v)
{
    return strprintf("0x%08x", v);
}

/** Lockstep checker driven by the pipeline's observer hooks. */
class Verifier
{
  public:
    Verifier(const CosimOptions &opt, const Side &pipeSide,
             const PipelineConfig &cfg, RefModel &ref)
        : opt_(opt), side_(pipeSide), cfg_(cfg), ref_(ref)
    {
        if (cfg.facEnabled)
            fac_ = std::make_unique<FastAddrCalc>(cfg.fac);
        if (cfg.pred.stride)
            stride_ = std::make_unique<StridePredictor>(cfg.pred);
    }

    std::vector<Divergence> &&takeDivergences()
    {
        return std::move(divs_);
    }
    const Divergence *first() const
    {
        return divs_.empty() ? nullptr : &divs_[0];
    }
    /** Pipeline-side context captured when the first divergence fired. */
    const std::string &context() const { return context_; }

    void onIssue(const Pipeline &pipe, const Pipeline::IssueEvent &ev);
    void onStoreRetire(uint64_t seq, uint32_t addr);
    void finish(const Pipeline &pipe, const Emulator &emu,
                const PipeStats &stats, const Side &refSide);

  private:
    void
    report(uint64_t index, uint32_t pc, std::string what,
           std::string expected, std::string actual)
    {
        if (divs_.size() >= opt_.maxDivergences)
            return;
        FACSIM_DPRINTF(Cosim,
                       "divergence #%llu pc=%08x %s: expected %s, got %s",
                       static_cast<unsigned long long>(index), pc,
                       what.c_str(), expected.c_str(), actual.c_str());
        divs_.push_back(Divergence{index, pc, std::move(what),
                                   std::move(expected), std::move(actual)});
    }

    void captureContext(const Pipeline &pipe, const Pipeline::IssueEvent &ev);

    const CosimOptions &opt_;
    const Side &side_;
    const PipelineConfig &cfg_;
    RefModel &ref_;
    std::unique_ptr<FastAddrCalc> fac_;
    // Shadow stride table, trained from the retire stream exactly like
    // the pipeline trains its own (once per memory op, program order).
    std::unique_ptr<StridePredictor> stride_;

    std::vector<Divergence> divs_;
    std::string context_;

    uint64_t index_ = 0;            ///< dynamic instruction index
    std::vector<uint32_t> storeAddrs_; ///< architectural store stream
    uint64_t storesRetired_ = 0;
    // Section 5.5 issue-policy shadow state.
    uint64_t mispredCycle_ = UINT64_MAX - 8;
    bool mispredWasLoad_ = false;
};

void
Verifier::captureContext(const Pipeline &pipe, const Pipeline::IssueEvent &ev)
{
    const ExecRecord &rec = ev.rec;
    std::string out;

    // Static code window around the diverging instruction.
    const uint32_t idx = (rec.pc - Program::textBase) / 4;
    const uint32_t lo =
        idx > opt_.contextWindow ? idx - opt_.contextWindow : 0;
    const uint32_t hi = std::min<uint32_t>(side_.prog.numInsts(),
                                           idx + opt_.contextWindow + 1);
    out += "-- code --\n";
    for (uint32_t i = lo; i < hi; ++i) {
        const uint32_t pc = side_.prog.instAddr(i);
        out += strprintf(" %c %08x  %s\n", i == idx ? '>' : ' ', pc,
                         disasm(side_.prog.inst(i), pc).c_str());
    }

    // FAC predict/verify breakdown for the access.
    if (fac_ && isMem(rec.inst.op)) {
        FacResult fr = fac_->predict(rec.baseVal, rec.offsetVal,
                                     rec.offsetFromReg);
        out += strprintf(
            "-- fac --\n predict(base=%s, offset=%d, from_reg=%d): "
            "attempted=%d success=%d pred=%s fail=%s\n"
            " event: cycle=%llu speculated=%d mispredicted=%d\n",
            hex32(rec.baseVal).c_str(), rec.offsetVal, rec.offsetFromReg,
            fr.attempted, fr.success, hex32(fr.predictedAddr).c_str(),
            FastAddrCalc::failMaskName(fr.failMask).c_str(),
            static_cast<unsigned long long>(ev.cycle), ev.speculated,
            ev.mispredicted);
    }

    // Store-buffer contents at the diverging issue.
    const StoreBuffer &sb = pipe.storeBuffer();
    out += strprintf("-- store buffer (%zu/%u) --\n", sb.size(),
                     sb.capacity());
    size_t slot = 0;
    for (const StoreBuffer::Entry &e : sb.contents()) {
        out += strprintf("  [%zu] seq=%llu addr=%s %s\n", slot++,
                         static_cast<unsigned long long>(e.seq),
                         hex32(e.addr).c_str(),
                         e.addrValid ? "valid" : "addr-pending");
    }

    // Last issued instructions from the crash-dump ring (the diverging
    // instruction is recorded before the issue hook fires, so it is the
    // newest entry).
    if (const obs::RetireRing *ring = pipe.historyRing())
        out += ring->dump();

    context_ = std::move(out);
}

void
Verifier::onIssue(const Pipeline &pipe, const Pipeline::IssueEvent &ev)
{
    if (divs_.size() >= opt_.maxDivergences)
        return;
    const ExecRecord &rec = ev.rec;
    const uint64_t i = index_++;
    const bool firstBefore = divs_.empty();

    RefModel::Step ref = ref_.step();
    if (ref.fetchFault) {
        report(i, rec.pc, "retire-after-ref-halt",
               "reference model halted/faulted",
               strprintf("pipeline retired pc %s (%s)",
                         hex32(rec.pc).c_str(),
                         disasm(rec.inst, rec.pc).c_str()));
        if (firstBefore)
            captureContext(pipe, ev);
        return;
    }
    if (opt_.corruptAfterInst && ref_.count() == opt_.corruptAfterInst)
        ref_.corrupt(opt_.corruptReg, opt_.corruptXor);

    // Retirement order: same instruction, same PC.
    if (ref.pc != rec.pc) {
        report(i, rec.pc, "retire-pc", hex32(ref.pc), hex32(rec.pc));
    } else if (!(ref.inst == rec.inst)) {
        report(i, rec.pc, "retire-inst", disasm(ref.inst, ref.pc),
               disasm(rec.inst, rec.pc));
    } else {
        // Operand/effective-address cross-check for memory operations.
        if (isMem(rec.inst.op)) {
            if (rec.baseVal != ref.baseVal)
                report(i, rec.pc,
                       strprintf("baseVal($%s)", regName(rec.inst.rs)),
                       hex32(ref.baseVal), hex32(rec.baseVal));
            if (rec.offsetVal != ref.offsetVal)
                report(i, rec.pc,
                       rec.offsetFromReg
                           ? strprintf("offsetVal($%s)",
                                       regName(rec.inst.rd))
                           : std::string("offsetVal"),
                       strprintf("%d", ref.offsetVal),
                       strprintf("%d", rec.offsetVal));
            if (rec.offsetFromReg != ref.offsetFromReg)
                report(i, rec.pc, "offsetFromReg",
                       strprintf("%d", ref.offsetFromReg),
                       strprintf("%d", rec.offsetFromReg));
            if (rec.effAddr != ref.effAddr)
                report(i, rec.pc, "effAddr", hex32(ref.effAddr),
                       hex32(rec.effAddr));
            // Conservative-disambiguation policy: when configured, a
            // load must never issue while an outstanding store's block
            // overlaps its own — including stores whose address is
            // still pending in the buffer (they are conflicts too: the
            // architectural address is simply not known yet).
            if (cfg_.loadsStallOnStoreConflict && isLoad(rec.inst.op)) {
                const uint32_t bb = cfg_.dcache.blockBytes;
                for (uint64_t s = storesRetired_;
                     s < storeAddrs_.size(); ++s) {
                    if (storeAddrs_[s] / bb != ref.effAddr / bb)
                        continue;
                    report(i, rec.pc, "disambiguation-policy",
                           strprintf(
                               "load stalls until store seq %llu "
                               "(addr %s) drains",
                               static_cast<unsigned long long>(s),
                               hex32(storeAddrs_[s]).c_str()),
                           "load issued with a conflicting store "
                           "buffered");
                    break;
                }
            }
            if (isStore(rec.inst.op))
                storeAddrs_.push_back(ref.effAddr);
        }
        // Control-flow cross-check.
        if (rec.taken != ref.taken)
            report(i, rec.pc, "taken", strprintf("%d", ref.taken),
                   strprintf("%d", rec.taken));
        if (rec.nextPc != ref.nextPc && rec.inst.op != Op::HALT)
            report(i, rec.pc, "nextPc", hex32(ref.nextPc),
                   hex32(rec.nextPc));
    }

    // Predictor signal consistency (pipeline-internal invariants). The
    // verifier recomputes every predictor's predict/verify signals from
    // the retire stream: FAC from the recorded operands, the stride
    // predictor from a shadow table trained exactly like the
    // pipeline's, way memoization from its implication set (its table
    // depends on cache state the verifier does not model, but a used
    // memo must still obey the contract visible at retire).
    if (isMem(rec.inst.op)) {
        constexpr uint8_t srcNone =
            static_cast<uint8_t>(PredSource::None);
        constexpr uint8_t srcFac = static_cast<uint8_t>(PredSource::Fac);
        constexpr uint8_t srcStride =
            static_cast<uint8_t>(PredSource::Stride);

        // Shadow lookup before the shadow train, mirroring the
        // pipeline's predict-then-train order within one issue.
        StridePredictor::Lookup sl;
        if (stride_)
            sl = stride_->predict(rec.pc);

        if (!cfg_.facEnabled && !cfg_.pred.stride && ev.speculated)
            report(i, rec.pc, "pred-speculated-while-disabled", "0", "1");
        if (ev.mispredicted && !ev.speculated)
            report(i, rec.pc, "pred-mispredict-without-speculation",
                   "speculated=1", "speculated=0");
        if (ev.speculated && ev.predSource == srcNone)
            report(i, rec.pc, "pred-source-missing",
                   "speculated access carries its source", "source=none");
        if (!ev.speculated && ev.predSource != srcNone)
            report(i, rec.pc, "pred-source-without-speculation",
                   "source=none", strprintf("source=%u", ev.predSource));

        if (ev.speculated && ev.predSource == srcStride) {
            if (!stride_) {
                report(i, rec.pc, "stride-speculated-while-disabled",
                       "0", "1");
            } else if (!sl.confident) {
                report(i, rec.pc, "stride-speculated-unconfident",
                       "confident=1 (shadow table)", "confident=0");
            } else if (ev.mispredicted !=
                       (sl.predictedAddr != rec.effAddr)) {
                report(i, rec.pc, "stride-mispredict-flag",
                       strprintf("mispredicted=%d (shadow verify)",
                                 sl.predictedAddr != rec.effAddr),
                       strprintf("mispredicted=%d (issue event)",
                                 ev.mispredicted));
            }
        }

        if (ev.speculated && ev.predSource == srcFac) {
            if (!fac_) {
                report(i, rec.pc, "fac-speculated-while-disabled",
                       "0", "1");
            } else {
                FacResult fr = fac_->predict(rec.baseVal, rec.offsetVal,
                                             rec.offsetFromReg);
                if (!fr.attempted)
                    report(i, rec.pc, "fac-speculated-unattemptable",
                           "attempted=1", "attempted=0");
                else if (ev.mispredicted != !fr.success)
                    report(i, rec.pc, "fac-mispredict-flag",
                           strprintf("mispredicted=%d (verify circuit)",
                                     !fr.success),
                           strprintf("mispredicted=%d (issue event)",
                                     ev.mispredicted));
                if (rec.offsetFromReg && !cfg_.fac.speculateRegReg)
                    report(i, rec.pc, "fac-regreg-policy",
                           "no speculation (speculateRegReg=0)",
                           "speculated=1");
                // Stride-first arbitration: a confident stride entry
                // must win over FAC for the same access.
                if (stride_ && sl.confident)
                    report(i, rec.pc, "pred-arbitration",
                           "source=stride (shadow table confident)",
                           "source=fac");
            }
        }

        // Way-memoization implications: only a verified FAC load hit
        // may consult the memo, and a stale outcome requires a use.
        if (ev.wayMemoUsed) {
            if (!cfg_.pred.wayMemo)
                report(i, rec.pc, "waymemo-used-while-disabled",
                       "0", "1");
            if (!ev.speculated || ev.predSource != srcFac ||
                !isLoad(rec.inst.op))
                report(i, rec.pc, "waymemo-used-outside-fac-load",
                       "memo consulted only on speculated FAC loads",
                       strprintf("speculated=%d source=%u",
                                 ev.speculated, ev.predSource));
            if (ev.mispredicted)
                report(i, rec.pc, "waymemo-used-on-mispredict",
                       "memo consulted only when the address verified",
                       "mispredicted=1");
        }
        if (ev.wayMemoStale && !ev.wayMemoUsed)
            report(i, rec.pc, "waymemo-stale-without-use",
                   "used=1", "used=0");

        // Section 5.5 issue rule: no speculation in the cycle after a
        // misprediction (any source, including a stale memoized way),
        // except a load right after a misspeculated load.
        if (ev.speculated && ev.cycle == mispredCycle_ + 1 &&
            !(isLoad(rec.inst.op) && mispredWasLoad_))
            report(i, rec.pc, "pred-issue-policy",
                   "MEM-deferred access after misprediction",
                   "speculated=1");

        // Track the policy shadow only for *recomputed* mispredictions
        // so a wrong flag doesn't cascade into spurious policy reports.
        // A stale way memo is trusted as-reported: its truth depends on
        // cache state, but it recovers through the same replay path.
        bool true_mispredict = false;
        if (ev.speculated && ev.mispredicted) {
            if (ev.predSource == srcFac && fac_) {
                FacResult fr = fac_->predict(rec.baseVal, rec.offsetVal,
                                             rec.offsetFromReg);
                true_mispredict = fr.attempted && !fr.success;
            } else if (ev.predSource == srcStride && stride_) {
                true_mispredict =
                    sl.confident && sl.predictedAddr != rec.effAddr;
            }
        }
        if (true_mispredict || (ev.wayMemoUsed && ev.wayMemoStale)) {
            mispredCycle_ = ev.cycle;
            mispredWasLoad_ = isLoad(rec.inst.op);
        }

        // Train the shadow table in lockstep with the pipeline's own
        // (unconditional, loads and stores alike).
        if (stride_)
            stride_->train(rec.pc, rec.effAddr);
    }

    if (firstBefore && !divs_.empty())
        captureContext(pipe, ev);
}

void
Verifier::onStoreRetire(uint64_t seq, uint32_t addr)
{
    if (divs_.size() >= opt_.maxDivergences)
        return;
    // Stores retire strictly in FIFO (issue) order...
    if (seq != storesRetired_) {
        report(index_, 0, "store-retire-order",
               strprintf("seq %llu",
                         static_cast<unsigned long long>(storesRetired_)),
               strprintf("seq %llu", static_cast<unsigned long long>(seq)));
        return;
    }
    ++storesRetired_;
    // ...and with the architectural address, even when the entry was
    // pushed with a mispredicted address and patched in MEM.
    if (seq < storeAddrs_.size() && addr != storeAddrs_[seq])
        report(index_, 0,
               strprintf("store-retire-addr(seq %llu)",
                         static_cast<unsigned long long>(seq)),
               hex32(storeAddrs_[seq]), hex32(addr));
}

void
Verifier::finish(const Pipeline &pipe, const Emulator &emu,
                 const PipeStats &stats, const Side &refSide)
{
    // Retirement count: pipeline vs reference (pipeline counts NOP/HALT
    // the same way the reference does — one record each).
    if (stats.insts != ref_.count())
        report(index_, 0, "retired-inst-count",
               strprintf("%llu",
                         static_cast<unsigned long long>(ref_.count())),
               strprintf("%llu",
                         static_cast<unsigned long long>(stats.insts)));

    // Stores still buffered at halt must be the tail of the
    // architectural store stream, in order.
    uint64_t seq = storesRetired_;
    for (const StoreBuffer::Entry &e : pipe.storeBuffer().contents()) {
        if (e.seq != seq)
            report(index_, 0, "store-buffer-tail-order",
                   strprintf("seq %llu",
                             static_cast<unsigned long long>(seq)),
                   strprintf("seq %llu",
                             static_cast<unsigned long long>(e.seq)));
        else if (e.addrValid && seq < storeAddrs_.size() &&
                 e.addr != storeAddrs_[seq])
            report(index_, 0,
                   strprintf("store-buffer-tail-addr(seq %llu)",
                             static_cast<unsigned long long>(seq)),
                   hex32(storeAddrs_[seq]), hex32(e.addr));
        ++seq;
    }
    if (seq != storeAddrs_.size())
        report(index_, 0, "store-count",
               strprintf("%zu stores", storeAddrs_.size()),
               strprintf("%llu retired+buffered",
                         static_cast<unsigned long long>(seq)));

    if (!ref_.halted())
        report(index_, 0, "halt", "reference ran to HALT",
               "reference still running when pipeline halted");

    // Final architectural state: integer and FP register files, the FP
    // condition code, and the complete memory images.
    for (unsigned r = 0; r < numIntRegs; ++r) {
        if (emu.intReg(r) != ref_.reg(r))
            report(index_, 0, strprintf("final-reg($%s)", regName(r)),
                   hex32(ref_.reg(r)), hex32(emu.intReg(r)));
    }
    for (unsigned r = 0; r < numFpRegs; ++r) {
        double v = emu.fpReg(r);
        uint64_t bits;
        std::memcpy(&bits, &v, 8);
        if (bits != ref_.fpBits(r))
            report(index_, 0, strprintf("final-fpreg($f%u)", r),
                   strprintf("0x%016llx",
                             static_cast<unsigned long long>(
                                 ref_.fpBits(r))),
                   strprintf("0x%016llx",
                             static_cast<unsigned long long>(bits)));
    }
    if (emu.fpccFlag() != ref_.cc())
        report(index_, 0, "final-fpcc", strprintf("%d", ref_.cc()),
               strprintf("%d", emu.fpccFlag()));

    uint32_t diffAddr = 0;
    if (side_.mem.firstDifferenceWith(refSide.mem, &diffAddr)) {
        // Re-read through the (non-const) memories for the report.
        Memory &a = const_cast<Memory &>(side_.mem);
        Memory &b = const_cast<Memory &>(refSide.mem);
        report(index_, 0, strprintf("final-mem[%s]",
                                    hex32(diffAddr).c_str()),
               strprintf("0x%02x", b.read8(diffAddr)),
               strprintf("0x%02x", a.read8(diffAddr)));
    }
}

} // anonymous namespace

CosimResult
runCosim(const std::function<void(AsmBuilder &)> &gen,
         const PipelineConfig &pipeCfg, const CosimOptions &opt)
{
    // Two fully independent sides: separate Program, Memory, link.
    Side pipeSide, refSide;
    buildSide(gen, opt.link, pipeSide);
    buildSide(gen, opt.link, refSide);

    Emulator emu(pipeSide.prog, pipeSide.mem, pipeSide.img, opt.initialSp);
    Pipeline pipe(pipeCfg, emu);
    // Keep recent issue history so a divergence report (or a panic in
    // the middle of a case) shows how the pipeline got there.
    pipe.enableHistoryRing(32);
    RefModel ref(refSide.prog, refSide.mem, refSide.img, opt.initialSp);

    Verifier v(opt, pipeSide, pipeCfg, ref);
    pipe.onIssue([&](const Pipeline::IssueEvent &ev) {
        v.onIssue(pipe, ev);
    });
    pipe.onStoreRetire([&](uint64_t seq, uint32_t addr) {
        v.onStoreRetire(seq, addr);
    });

    CosimResult res;
    res.stats = pipe.run(opt.maxInsts);
    res.refInsts = ref.count();
    res.ranToHalt = emu.halted() && opt.maxInsts == 0;
    if (res.ranToHalt)
        v.finish(pipe, emu, res.stats, refSide);

    std::string context = v.context();
    res.divergences = v.takeDivergences();
    if (!res.divergences.empty()) {
        const Divergence &d = res.divergences[0];
        std::string rep;
        rep += "=== cosim divergence "
               "=============================================\n";
        rep += strprintf("instruction #%llu  pc %s\n",
                         static_cast<unsigned long long>(d.index),
                         hex32(d.pc).c_str());
        rep += strprintf("field:     %s\n", d.what.c_str());
        rep += strprintf("reference: %s\n", d.expected.c_str());
        rep += strprintf("pipeline:  %s\n", d.actual.c_str());
        rep += context;
        if (res.divergences.size() > 1)
            rep += strprintf("(%zu further divergence(s) recorded)\n",
                             res.divergences.size() - 1);
        rep += "==========================================================="
               "====\n";
        res.report = std::move(rep);
    }
    return res;
}

} // namespace facsim::verify
