/**
 * @file
 * Differential co-simulation: runs the timing Pipeline and an
 * independently written reference interpreter on the same program and
 * cross-checks architectural state at every retirement.
 *
 * The Pipeline is trace-driven from the functional Emulator, so the two
 * sides of the diff are:
 *
 *  - the *pipeline side*: Emulator + Pipeline, sharing one Memory — the
 *    production stack whose numbers appear in Tables 3/4/6 and Figure 6;
 *  - the *reference side*: RefModel (cosim.cc), a second, deliberately
 *    independent implementation of the ISA semantics with its own
 *    register file and its own Memory.
 *
 * Checked at every instruction issue (in-order issue makes the issue
 * stream the retirement stream):
 *
 *  - retirement order: the retired PC/instruction sequence equals the
 *    reference execution exactly (no dropped, duplicated or reordered
 *    instructions);
 *  - operand values: a memory operation's base register value, offset
 *    (constant or index register) and effective address match the
 *    reference register file;
 *  - control flow: taken/next-PC outcomes match the reference;
 *  - FAC signals: a speculative access's `mispredicted` flag must equal
 *    the recomputed verification-circuit outcome, and the Section 5.5
 *    post-misprediction issue policy must hold;
 *  - store retirement: stores leave the store buffer in FIFO order with
 *    the architecturally correct (possibly patched) address.
 *
 * At halt the integer/FP register files, the FP condition code and the
 * full memory images (heap, stack, statics) are compared byte for byte.
 *
 * On divergence a rich report is produced: the disassembled static code
 * window around the diverging instruction, the FAC predict/verify
 * breakdown for the access, and the live store-buffer contents.
 */

#ifndef FACSIM_VERIFY_COSIM_HH
#define FACSIM_VERIFY_COSIM_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "asm/builder.hh"
#include "cpu/pipeline.hh"
#include "link/linker.hh"

namespace facsim::verify
{

/** Options controlling one co-simulation run. */
struct CosimOptions
{
    /** Link policy for both sides (software support toggles live here). */
    LinkPolicy link;
    /** Startup stack pointer. */
    uint32_t initialSp = 0x7fff5b88;
    /** Stop after this many retired instructions (0 = run to halt).
     *  Final-state comparison is skipped for truncated runs. */
    uint64_t maxInsts = 0;
    /** Static instructions shown either side of a divergence. */
    unsigned contextWindow = 4;
    /** Divergences recorded before checking goes quiet. */
    unsigned maxDivergences = 8;

    /**
     * Test-only fault injection: after the reference model executes its
     * Nth instruction (1-based dynamic count), XOR integer register
     * @p corruptReg with @p corruptXor. Simulates a semantic bug on one
     * side of the diff so the reporting machinery itself can be tested.
     * 0 disables.
     */
    uint64_t corruptAfterInst = 0;
    uint8_t corruptReg = 0;
    uint32_t corruptXor = 0;
};

/** One observed disagreement between the two sides. */
struct Divergence
{
    uint64_t index = 0;   ///< dynamic instruction index (retire order)
    uint32_t pc = 0;      ///< PC of the diverging instruction
    /** What disagreed, e.g. "baseVal($t3)", "retire-pc", "final-mem". */
    std::string what;
    std::string expected; ///< reference-side value
    std::string actual;   ///< pipeline-side value
};

/** Outcome of one co-simulation run. */
struct CosimResult
{
    /** All recorded divergences, first (root cause) first. */
    std::vector<Divergence> divergences;
    /** Rich human-readable report for the first divergence ("" if clean). */
    std::string report;
    /** Pipeline statistics of the run. */
    PipeStats stats;
    /** Instructions executed by the reference model. */
    uint64_t refInsts = 0;
    /** True when both sides ran to HALT (final state was compared). */
    bool ranToHalt = false;

    bool diverged() const { return !divergences.empty(); }
};

/**
 * Run the pipeline and the reference model in lockstep.
 *
 * @param gen emits the program under test; called twice, once per side,
 *        so the two sides share no Program or Memory state. Must be
 *        deterministic — a mismatch between the two emissions is itself
 *        reported as a divergence.
 * @param pipeCfg timing-pipeline configuration (any FAC variant).
 * @param opt co-simulation options.
 */
CosimResult runCosim(const std::function<void(AsmBuilder &)> &gen,
                     const PipelineConfig &pipeCfg,
                     const CosimOptions &opt = {});

} // namespace facsim::verify

#endif // FACSIM_VERIFY_COSIM_HH
