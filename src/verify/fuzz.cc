#include "verify/fuzz.hh"

#include <algorithm>

#include "isa/disasm.hh"
#include "mem/memory.hh"
#include "sim/config.hh"
#include "sim/runner.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace facsim::verify
{
namespace
{

/** The one data buffer every access lands in. */
constexpr uint32_t bufBytes = 0x20000;  // 128 KB, 64-byte aligned

/** Base registers parked at FAC-adversarial positions in the buffer. */
struct BasePark
{
    uint8_t reg;
    uint32_t off;
};
constexpr BasePark kBases[] = {
    {reg::s0, 0x00000},  // aligned buffer start
    {reg::s4, 0x02000},  // power-of-two interior boundary
    {reg::s5, 0x08000},  // half-buffer (negative offsets reach far)
    {reg::s6, 0x04000},  // exactly the 16 KB set-index span
    {reg::s7, 0x01ffc},  // word-aligned, one word below a boundary
    {reg::s3, 61},       // block-edge, byte-aligned only
};
constexpr unsigned kNumBases = 6;

constexpr uint8_t kTemps[6] = {reg::t0, reg::t1, reg::t2,
                               reg::t3, reg::t4, reg::t5};
/** Scratch for materialized register+register indices. */
constexpr uint8_t kIdxReg = reg::t6;

uint8_t tempOf(uint8_t slot) { return kTemps[slot % 6]; }
uint8_t fpOf(uint8_t slot) { return static_cast<uint8_t>(2 + 2 * (slot % 4)); }

/**
 * Pick an effective-address offset for an access of @p sz bytes from
 * the base parked at @p base_off, biased toward the FAC failure
 * boundaries: near-zero offsets, +/- powers of two, the exact set-index
 * span, and block edges. The result keeps the access inside the buffer,
 * aligned to @p sz, and within the signed 16-bit displacement field.
 */
int32_t
genOffset(Rng &rng, uint32_t base_off, unsigned sz)
{
    int64_t ea;
    switch (rng.range(6)) {
      case 0:
        ea = static_cast<int64_t>(rng.range(bufBytes - 8));
        break;
      case 1:
        ea = static_cast<int64_t>(base_off) + rng.between(-64, 64);
        break;
      case 2: {
        unsigned k = 5 + static_cast<unsigned>(rng.range(10));
        int64_t s = rng.chance(0.5) ? 1 : -1;
        ea = static_cast<int64_t>(base_off) + s * (int64_t{1} << k) +
             rng.between(-4, 4);
        break;
      }
      case 3: {
        static const int32_t spans[] = {0x3ffc, 0x4000, 0x4004, 0x7ff8,
                                        0x1c, 0x20, 0x24};
        int32_t sp = spans[rng.range(7)];
        ea = static_cast<int64_t>(base_off) + (rng.chance(0.5) ? sp : -sp);
        break;
      }
      case 4:
        // Block-edge cluster: a 32-byte boundary plus a small residue.
        ea = static_cast<int64_t>(rng.range(bufBytes / 32) * 32) +
             static_cast<int64_t>(rng.range(4)) * sz;
        break;
      default:
        ea = rng.between(0, 96);  // start-of-buffer cluster
        break;
    }
    const int64_t lo = base_off > 0x7ff8 ? base_off - 0x7ff8 : 0;
    const int64_t hi = std::min<int64_t>(bufBytes - 8,
                                         static_cast<int64_t>(base_off) +
                                             0x7ff8);
    ea = std::clamp(ea, lo, hi);
    ea &= ~static_cast<int64_t>(sz - 1);
    return static_cast<int32_t>(ea - base_off);
}

/** Like genOffset but for an index-register value (no imm16 limit). */
int32_t
genIndex(Rng &rng, uint32_t base_off, unsigned sz)
{
    int64_t ea;
    switch (rng.range(4)) {
      case 0:
        ea = static_cast<int64_t>(rng.range(bufBytes - 8));
        break;
      case 1:
        ea = static_cast<int64_t>(base_off) + rng.between(-96, 96);
        break;
      case 2: {
        unsigned k = 5 + static_cast<unsigned>(rng.range(12));
        int64_t s = rng.chance(0.5) ? 1 : -1;
        ea = static_cast<int64_t>(base_off) + s * (int64_t{1} << k);
        break;
      }
      default:
        ea = rng.between(0, 128);
        break;
    }
    ea = std::clamp<int64_t>(ea, 0, bufBytes - 8);
    ea &= ~static_cast<int64_t>(sz - 1);
    return static_cast<int32_t>(ea - base_off);
}

/** Access sizes for the LoadConst/StoreConst selectors. */
unsigned
loadSize(uint8_t sel)
{
    switch (sel % 5) {
      case 0: case 1: return 1;  // lbu / lb
      case 2: case 3: return 2;  // lhu / lh
      default: return 4;         // lw
    }
}

unsigned
storeSize(uint8_t sel)
{
    switch (sel % 3) {
      case 0: return 1;
      case 1: return 2;
      default: return 4;
    }
}

unsigned
rrSize(uint8_t sel)
{
    switch (sel % 7) {
      case 0: case 1: return 1;  // lbu / lb
      case 2: return 4;          // lw
      case 3: return 1;          // sb
      case 4: return 4;          // sw
      case 5: return 8;          // ldc1
      default: return 8;         // sdc1
    }
}

unsigned
fpMemSize(uint8_t sel)
{
    return (sel % 4) < 2 ? 4 : 8;  // lwc1/swc1 : ldc1/sdc1
}

uint64_t
fnv1a(uint64_t h, const void *data, size_t len)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

} // anonymous namespace

uint64_t
splitmix64(uint64_t seed, uint64_t index)
{
    uint64_t z = seed + 0x9e3779b97f4a7c15ull * (index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::vector<FuzzItem>
generateItems(Rng &rng, unsigned count)
{
    std::vector<FuzzItem> items;
    items.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
        FuzzItem it;
        it.a = static_cast<uint8_t>(rng.range(251));
        it.b = static_cast<uint8_t>(rng.range(251));
        it.c = static_cast<uint8_t>(rng.range(kNumBases));
        it.d = static_cast<uint8_t>(rng.range(251));
        const uint32_t base_off = kBases[it.c].off;

        const uint64_t w = rng.range(100);
        if (w < 10) {
            it.kind = FuzzItem::Kind::AluReg;
        } else if (w < 16) {
            it.kind = FuzzItem::Kind::AluImm;
            it.x = static_cast<int32_t>(rng.range(0x8000));
        } else if (w < 22) {
            it.kind = FuzzItem::Kind::LiConst;
            static const int32_t consts[] = {
                0, 1, -1, 2, 0x7fffffff, INT32_MIN, 0x8000, 0x7ff8,
                0xff, 0x10000, -0x4000, 0x3ffc, 0x4000, -0x7ff8,
            };
            it.x = rng.chance(0.25)
                       ? static_cast<int32_t>(rng.next())
                       : consts[rng.range(14)];
        } else if (w < 38) {
            it.kind = FuzzItem::Kind::LoadConst;
            it.x = genOffset(rng, base_off, loadSize(it.a));
        } else if (w < 50) {
            it.kind = FuzzItem::Kind::StoreConst;
            it.x = genOffset(rng, base_off, storeSize(it.a));
        } else if (w < 58) {
            it.kind = FuzzItem::Kind::MemRR;
            it.x = genIndex(rng, base_off, rrSize(it.a));
        } else if (w < 63) {
            it.kind = FuzzItem::Kind::MemRRMasked;
            // Word-aligned masks; c selects s0 (positive index) or s5
            // (negated index stays in bounds).
            static const int32_t masks[] = {0x0ffc, 0x1ffc, 0x3ffc,
                                            0x3fe0, 0x07fc};
            it.x = masks[rng.range(5)];
            it.c = (it.b & 1) ? 2 : 0;  // negated -> s5, else s0
        } else if (w < 70) {
            it.kind = FuzzItem::Kind::PostInc;
            it.x = 8 * static_cast<int32_t>(1 + rng.range(4)) *
                   (rng.chance(0.5) ? 1 : -1);
        } else if (w < 72) {
            it.kind = FuzzItem::Kind::CursorReset;
        } else if (w < 78) {
            it.kind = FuzzItem::Kind::FpArith;
        } else if (w < 82) {
            it.kind = FuzzItem::Kind::FpMove;
        } else if (w < 84) {
            it.kind = FuzzItem::Kind::FpCmp;
        } else if (w < 89) {
            it.kind = FuzzItem::Kind::FpMemConst;
            it.x = genOffset(rng, base_off, fpMemSize(it.a));
        } else if (w < 95) {
            it.kind = FuzzItem::Kind::Skip;
            it.x = 1 + static_cast<int32_t>(rng.range(4));
        } else if (w < 97) {
            it.kind = FuzzItem::Kind::StoreBurst;
            it.x = static_cast<int32_t>(rng.range(0x6000)) & 0x7ffc;
        } else {
            it.kind = FuzzItem::Kind::StoreThenLoad;
            it.x = genOffset(rng, base_off, 4);
        }
        items.push_back(it);
    }
    return items;
}

void
materialize(AsmBuilder &as, const std::vector<FuzzItem> &items)
{
    SymId buf = as.global("fuzzbuf", bufBytes, 64, false);
    for (const BasePark &bp : kBases)
        as.la(bp.reg, buf, static_cast<int32_t>(bp.off));
    as.la(reg::s2, buf, 0x10000);  // roving post-increment cursor

    // Deterministic temp seeds; LiConst items re-randomize them.
    static const int32_t seeds[6] = {0x12345, -7, 0x7ffc,
                                     0x0badf00d, 3, 0x8000};
    for (unsigned i = 0; i < 6; ++i)
        as.li(kTemps[i], seeds[i]);
    for (uint8_t slot = 0; slot < 4; ++slot) {
        as.mtc1(fpOf(slot), kTemps[slot]);
        as.cvtDW(fpOf(slot), fpOf(slot));
    }

    bool skip_active = false;
    int skip_left = 0;
    LabelId skip_label = 0;

    for (const FuzzItem &it : items) {
        const uint8_t base = kBases[it.c % kNumBases].reg;
        switch (it.kind) {
          case FuzzItem::Kind::AluReg: {
            const uint8_t rd = tempOf(it.b), r1 = tempOf(it.c),
                          r2 = tempOf(it.d);
            switch (it.a % 12) {
              case 0: as.add(rd, r1, r2); break;
              case 1: as.sub(rd, r1, r2); break;
              case 2: as.and_(rd, r1, r2); break;
              case 3: as.or_(rd, r1, r2); break;
              case 4: as.xor_(rd, r1, r2); break;
              case 5: as.nor(rd, r1, r2); break;
              case 6: as.slt(rd, r1, r2); break;
              case 7: as.sltu(rd, r1, r2); break;
              case 8: as.mul(rd, r1, r2); break;
              case 9: as.div(rd, r1, r2); break;
              case 10: as.rem(rd, r1, r2); break;
              default: as.srav(rd, r1, r2); break;
            }
            break;
          }
          case FuzzItem::Kind::AluImm: {
            const uint8_t rt = tempOf(it.b), rs = tempOf(it.d);
            switch (it.a % 5) {
              case 0: as.andi(rt, rs, it.x & 0x7fff); break;
              case 1: as.ori(rt, rs, it.x & 0x7fff); break;
              case 2: as.xori(rt, rs, it.x & 0x7fff); break;
              case 3: as.addi(rt, rs, (it.x & 0x1ff) - 256); break;
              default: as.sll(rt, rs, it.x & 31); break;
            }
            break;
          }
          case FuzzItem::Kind::LiConst:
            as.li(tempOf(it.b), it.x);
            break;
          case FuzzItem::Kind::LoadConst: {
            const uint8_t rt = tempOf(it.b);
            switch (it.a % 5) {
              case 0: as.lbu(rt, it.x, base); break;
              case 1: as.lb(rt, it.x, base); break;
              case 2: as.lhu(rt, it.x, base); break;
              case 3: as.lh(rt, it.x, base); break;
              default: as.lw(rt, it.x, base); break;
            }
            break;
          }
          case FuzzItem::Kind::StoreConst: {
            const uint8_t rt = tempOf(it.b);
            switch (it.a % 3) {
              case 0: as.sb(rt, it.x, base); break;
              case 1: as.sh_(rt, it.x, base); break;
              default: as.sw(rt, it.x, base); break;
            }
            break;
          }
          case FuzzItem::Kind::MemRR:
            as.li(kIdxReg, it.x);
            switch (it.a % 7) {
              case 0: as.lbuRR(tempOf(it.b), base, kIdxReg); break;
              case 1: as.lbRR(tempOf(it.b), base, kIdxReg); break;
              case 2: as.lwRR(tempOf(it.b), base, kIdxReg); break;
              case 3: as.sbRR(tempOf(it.b), base, kIdxReg); break;
              case 4: as.swRR(tempOf(it.b), base, kIdxReg); break;
              case 5: as.ldc1RR(fpOf(it.b), base, kIdxReg); break;
              default: as.sdc1RR(fpOf(it.b), base, kIdxReg); break;
            }
            break;
          case FuzzItem::Kind::MemRRMasked: {
            // Index computed from live temp data: aligned mask, and for
            // the negated variant a base parked high enough that the
            // negative index stays inside the buffer.
            as.andi(kIdxReg, tempOf(it.d), it.x);
            if (it.b & 1)
                as.sub(kIdxReg, reg::zero, kIdxReg);
            if (it.a & 1)
                as.lwRR(tempOf(it.b >> 1), base, kIdxReg);
            else
                as.swRR(tempOf(it.b >> 1), base, kIdxReg);
            break;
          }
          case FuzzItem::Kind::PostInc:
            switch (it.a % 4) {
              case 0: as.lwPost(tempOf(it.b), reg::s2, it.x); break;
              case 1: as.swPost(tempOf(it.b), reg::s2, it.x); break;
              case 2: as.ldc1Post(fpOf(it.b), reg::s2, it.x); break;
              default: as.sdc1Post(fpOf(it.b), reg::s2, it.x); break;
            }
            break;
          case FuzzItem::Kind::CursorReset:
            as.la(reg::s2, buf, 0x10000);
            break;
          case FuzzItem::Kind::FpArith: {
            const uint8_t fd = fpOf(it.b), f1 = fpOf(it.c),
                          f2 = fpOf(it.d);
            switch (it.a % 8) {
              case 0: as.addD(fd, f1, f2); break;
              case 1: as.subD(fd, f1, f2); break;
              case 2: as.mulD(fd, f1, f2); break;
              case 3: as.divD(fd, f1, f2); break;
              case 4: as.sqrtD(fd, f1); break;
              case 5: as.absD(fd, f1); break;
              case 6: as.negD(fd, f1); break;
              default: as.movD(fd, f1); break;
            }
            break;
          }
          case FuzzItem::Kind::FpMove:
            switch (it.a % 4) {
              case 0: as.mtc1(fpOf(it.b), tempOf(it.d)); break;
              case 1: as.mfc1(tempOf(it.d), fpOf(it.b)); break;
              case 2: as.cvtDW(fpOf(it.b), fpOf(it.d)); break;
              default: as.cvtWD(fpOf(it.b), fpOf(it.d)); break;
            }
            break;
          case FuzzItem::Kind::FpCmp:
            switch (it.a % 3) {
              case 0: as.cEqD(fpOf(it.b), fpOf(it.d)); break;
              case 1: as.cLtD(fpOf(it.b), fpOf(it.d)); break;
              default: as.cLeD(fpOf(it.b), fpOf(it.d)); break;
            }
            break;
          case FuzzItem::Kind::FpMemConst:
            switch (it.a % 4) {
              case 0: as.lwc1(fpOf(it.b), it.x, base); break;
              case 1: as.swc1(fpOf(it.b), it.x, base); break;
              case 2: as.ldc1(fpOf(it.b), it.x, base); break;
              default: as.sdc1(fpOf(it.b), it.x, base); break;
            }
            break;
          case FuzzItem::Kind::Skip:
            // One pending skip at a time keeps every subsequence of the
            // descriptor vector well-formed for the shrinker.
            if (!skip_active) {
                skip_label = as.newLabel();
                switch (it.a % 6) {
                  case 0: as.beq(tempOf(it.b), tempOf(it.d), skip_label);
                    break;
                  case 1: as.bne(tempOf(it.b), tempOf(it.d), skip_label);
                    break;
                  case 2: as.blez(tempOf(it.b), skip_label); break;
                  case 3: as.bgez(tempOf(it.b), skip_label); break;
                  case 4: as.bc1t(skip_label); break;
                  default: as.bc1f(skip_label); break;
                }
                skip_active = true;
                skip_left = it.x + 1;  // decremented below, this item too
            }
            break;
          case FuzzItem::Kind::StoreBurst: {
            // More stores back-to-back than the buffer holds: forces
            // full-buffer stalls and forced retirement cycles.
            const unsigned n = 18 + (it.a % 8);
            for (unsigned i = 0; i < n; ++i)
                as.sw(tempOf(static_cast<uint8_t>(it.b + i)),
                      (it.x + 4 * static_cast<int32_t>(i)) & 0x7ffc,
                      reg::s0);
            break;
          }
          case FuzzItem::Kind::StoreThenLoad:
            as.sw(tempOf(it.b), it.x, base);
            as.lw(tempOf(it.d), it.x, base);
            break;
        }

        if (skip_active && --skip_left == 0) {
            as.bind(skip_label);
            skip_active = false;
        }
    }
    if (skip_active)
        as.bind(skip_label);
    as.halt();
}

uint64_t
programDigest(const std::vector<FuzzItem> &items)
{
    Program p;
    AsmBuilder as(p);
    materialize(as, items);
    uint64_t h = 1469598103934665603ull;
    for (uint32_t i = 0; i < p.numInsts(); ++i) {
        const Inst &in = p.inst(i);
        const uint8_t head[5] = {static_cast<uint8_t>(in.op),
                                 static_cast<uint8_t>(in.amode),
                                 in.rd, in.rs, in.rt};
        h = fnv1a(h, head, sizeof(head));
        h = fnv1a(h, &in.imm, sizeof(in.imm));
    }
    return h;
}

std::vector<FuzzConfig>
fuzzConfigMatrix(const std::string &predictor)
{
    std::vector<FuzzConfig> m;
    if (predictor == "fac") {
        // The historical matrix, unchanged so the pinned batch digest
        // for --predictor=fac stays stable.
        m.push_back({"off", baselineConfig(), LinkPolicy{}});
        m.push_back({"hw", facPipelineConfig(32, false, true),
                     LinkPolicy{}});
        LinkPolicy sw;
        sw.alignGlobalPointer = true;
        sw.alignStatics = true;
        m.push_back({"hw+sw", facPipelineConfig(32, false, true), sw});
        m.push_back({"r+r", facPipelineConfig(32, true, true),
                     LinkPolicy{}});
        PipelineConfig disamb = facPipelineConfig(32, true, true);
        disamb.loadsStallOnStoreConflict = true;
        m.push_back({"hw+disamb", disamb, LinkPolicy{}});
        return m;
    }

    m.push_back({"off", baselineConfig(), LinkPolicy{}});
    if (predictor == "none")
        return m;

    PipelineConfig base = predictorPipelineConfig(predictor, 32, false);
    m.push_back({predictor, base, LinkPolicy{}});

    PipelineConfig disamb = base;
    disamb.loadsStallOnStoreConflict = true;
    m.push_back({predictor + "+disamb", disamb, LinkPolicy{}});

    if (base.facEnabled)
        m.push_back({predictor + "+rr",
                     predictorPipelineConfig(predictor, 32, true),
                     LinkPolicy{}});

    if (base.pred.wayMemo) {
        // A 2-way L1 makes distinct blocks collide within a set, so
        // memoized ways go stale under eviction — the adversarial case
        // for the mandatory late verify.
        PipelineConfig assoc2 = base;
        assoc2.dcache.assoc = 2;
        assoc2.fac = facConfigFor(assoc2.dcache, false, true);
        m.push_back({predictor + "+assoc2", assoc2, LinkPolicy{}});
    }
    return m;
}

std::vector<FuzzItem>
ddminItems(const std::vector<FuzzItem> &items,
           const std::function<bool(const std::vector<FuzzItem> &)>
               &still_fails,
           unsigned budget)
{
    std::vector<FuzzItem> cur = items;
    unsigned evals = 0;
    auto fails = [&](const std::vector<FuzzItem> &v) {
        if (v.empty() || evals >= budget)
            return false;
        ++evals;
        return still_fails(v);
    };

    // Phase 1: classic ddmin chunk removal with granularity doubling.
    size_t n = 2;
    while (cur.size() >= 2 && evals < budget) {
        const size_t chunk = (cur.size() + n - 1) / n;
        bool reduced = false;
        for (size_t start = 0; start < cur.size(); start += chunk) {
            std::vector<FuzzItem> cand;
            cand.reserve(cur.size());
            cand.insert(cand.end(), cur.begin(),
                        cur.begin() + static_cast<long>(start));
            const size_t end = std::min(cur.size(), start + chunk);
            cand.insert(cand.end(),
                        cur.begin() + static_cast<long>(end), cur.end());
            if (fails(cand)) {
                cur = std::move(cand);
                n = std::max<size_t>(2, n - 1);
                reduced = true;
                break;
            }
        }
        if (!reduced) {
            if (n >= cur.size())
                break;
            n = std::min(cur.size(), n * 2);
        }
    }

    // Phase 2: single-removal fixpoint.
    bool changed = true;
    while (changed && evals < budget) {
        changed = false;
        for (size_t i = 0; i < cur.size() && evals < budget; ++i) {
            std::vector<FuzzItem> cand = cur;
            cand.erase(cand.begin() + static_cast<long>(i));
            if (fails(cand)) {
                cur = std::move(cand);
                changed = true;
                break;
            }
        }
    }
    return cur;
}

FuzzCaseOutcome
runFuzzCase(uint64_t case_seed, uint64_t index, const FuzzOptions &opt)
{
    FuzzCaseOutcome out;
    out.index = index;
    out.caseSeed = case_seed;

    Rng rng(case_seed ? case_seed : 1);
    const unsigned span = opt.maxItems >= opt.minItems
                              ? opt.maxItems - opt.minItems + 1 : 1;
    const unsigned count =
        opt.minItems + static_cast<unsigned>(rng.range(span));
    out.items = generateItems(rng, count);
    out.digest = programDigest(out.items);

    for (const FuzzConfig &fc : fuzzConfigMatrix(opt.predictor)) {
        CosimOptions co;
        co.link = fc.link;
        CosimResult res = runCosim(
            [&](AsmBuilder &as) { materialize(as, out.items); }, fc.pipe,
            co);
        out.simInsts += res.stats.insts + res.refInsts;
        if (!res.diverged())
            continue;

        out.diverged = true;
        out.configName = fc.name;
        out.report = res.report;

        if (opt.shrink) {
            out.shrunkItems = ddminItems(
                out.items,
                [&](const std::vector<FuzzItem> &cand) {
                    CosimResult r = runCosim(
                        [&](AsmBuilder &as) { materialize(as, cand); },
                        fc.pipe, co);
                    out.simInsts += r.stats.insts + r.refInsts;
                    return r.diverged();
                },
                opt.shrinkBudget);
            // Re-run the minimal case so the report matches it.
            CosimResult min = runCosim(
                [&](AsmBuilder &as) { materialize(as, out.shrunkItems); },
                fc.pipe, co);
            if (min.diverged())
                out.report = min.report;
            Program p;
            AsmBuilder as(p);
            materialize(as, out.shrunkItems);
            Memory mem;
            Linker(fc.link).link(p, mem);
            std::string listing;
            for (uint32_t i = 0; i < p.numInsts(); ++i)
                listing += strprintf(
                    "  %08x  %s\n", p.instAddr(i),
                    disasm(p.inst(i), p.instAddr(i)).c_str());
            out.shrunkListing = std::move(listing);
        }
        break;  // first diverging configuration is enough per case
    }
    return out;
}

FuzzBatchResult
runFuzzBatch(const FuzzOptions &opt)
{
    FuzzBatchResult batch;
    batch.casesRun = opt.count;

    std::vector<FuzzCaseOutcome> slots(opt.count);
    Runner runner(opt.jobs);
    RunnerReport rep = runner.forEachIndex(
        opt.count, [&](size_t i) -> uint64_t {
            slots[i] =
                runFuzzCase(splitmix64(opt.seed, i), i, opt);
            return slots[i].simInsts;
        });
    batch.wallSeconds = rep.wallSeconds;

    // Fold per-case digests in index order: identical for any --jobs.
    uint64_t h = 1469598103934665603ull;
    for (const FuzzCaseOutcome &o : slots) {
        h = fnv1a(h, &o.digest, sizeof(o.digest));
        batch.simInsts += o.simInsts;
        if (o.diverged) {
            ++batch.divergingCases;
            batch.failures.push_back(o);
        }
    }
    // Non-legacy modes also fold the matrix configFingerprints, so a
    // silent change to any evaluated configuration moves the pinned
    // digest ("fac" keeps the historical program-only digest).
    if (opt.predictor != "fac") {
        for (const FuzzConfig &fc : fuzzConfigMatrix(opt.predictor)) {
            const uint64_t fp = configFingerprint(fc.pipe);
            h = fnv1a(h, &fp, sizeof(fp));
        }
    }
    batch.digest = h;
    return batch;
}

} // namespace facsim::verify
