#include "isa/encoding.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace facsim
{

namespace
{

// Primary opcodes.
enum : uint32_t
{
    opSpecial = 0x00,
    opRegimm = 0x01,
    opJ = 0x02,
    opJal = 0x03,
    opBeq = 0x04,
    opBne = 0x05,
    opBlez = 0x06,
    opBgtz = 0x07,
    opAddi = 0x08,
    opSlti = 0x0a,
    opSltiu = 0x0b,
    opAndi = 0x0c,
    opOri = 0x0d,
    opXori = 0x0e,
    opLui = 0x0f,
    opCop1 = 0x11,
    opBc1f = 0x12,
    opBc1t = 0x13,
    opLbp = 0x16,
    opLbup = 0x17,
    opMemx = 0x1c,
    opLb = 0x20,
    opLh = 0x21,
    opLw = 0x23,
    opLbu = 0x24,
    opLhu = 0x25,
    opLwp = 0x26,
    opSbp = 0x27,
    opSb = 0x28,
    opSh = 0x29,
    opSw = 0x2b,
    opSwp = 0x2e,
    opLwc1 = 0x31,
    opLwc1p = 0x32,
    opLdc1 = 0x35,
    opLdc1p = 0x36,
    opSwc1 = 0x39,
    opSwc1p = 0x3a,
    opSdc1 = 0x3d,
    opSdc1p = 0x3e,
};

// SPECIAL functs.
enum : uint32_t
{
    fnSll = 0x00, fnSrl = 0x02, fnSra = 0x03,
    fnSllv = 0x04, fnSrlv = 0x06, fnSrav = 0x07,
    fnJr = 0x08, fnJalr = 0x09,
    fnMul = 0x18, fnDiv = 0x1a, fnRem = 0x1b,
    fnAdd = 0x20, fnSub = 0x22,
    fnAnd = 0x24, fnOr = 0x25, fnXor = 0x26, fnNor = 0x27,
    fnSlt = 0x2a, fnSltu = 0x2b,
    fnHalt = 0x3f,
};

// COP1 functs.
enum : uint32_t
{
    f1AddD = 0x00, f1SubD = 0x01, f1MulD = 0x02, f1DivD = 0x03,
    f1SqrtD = 0x04, f1AbsD = 0x05, f1MovD = 0x06, f1NegD = 0x07,
    f1CvtDW = 0x20, f1CvtWD = 0x24,
    f1CEq = 0x32, f1Mtc1 = 0x38, f1Mfc1 = 0x39,
    f1CLt = 0x3c, f1CLe = 0x3e,
};

// MEMX (register+register addressing) funct codes.
enum : uint32_t
{
    xLb = 0, xLbu = 1, xLh = 2, xLhu = 3, xLw = 4,
    xSb = 5, xSh = 6, xSw = 7,
    xLwc1 = 8, xLdc1 = 9, xSwc1 = 10, xSdc1 = 11,
};

uint32_t
packR(uint32_t rs, uint32_t rt, uint32_t rd, uint32_t shamt, uint32_t fn)
{
    return (opSpecial << 26) | (rs << 21) | (rt << 16) | (rd << 11) |
        (shamt << 6) | fn;
}

uint32_t
packI(uint32_t op, uint32_t rs, uint32_t rt, int32_t imm)
{
    FACSIM_ASSERT(imm >= -32768 && imm <= 65535,
                  "immediate %d does not fit 16 bits", imm);
    return (op << 26) | (rs << 21) | (rt << 16) |
        (static_cast<uint32_t>(imm) & 0xffffu);
}

uint32_t
packF(uint32_t fs, uint32_t ft, uint32_t fd, uint32_t fn)
{
    return (opCop1 << 26) | (fs << 21) | (ft << 16) | (fd << 11) | fn;
}

int32_t
immS16(uint32_t word)
{
    return sext(word & 0xffffu, 16);
}

int32_t
immU16(uint32_t word)
{
    return static_cast<int32_t>(word & 0xffffu);
}

} // anonymous namespace

uint32_t
encode(const Inst &in)
{
    const uint32_t rd = in.rd, rs = in.rs, rt = in.rt;
    switch (in.op) {
      case Op::NOP:
        return 0;
      case Op::HALT:
        return packR(0, 0, 0, 0, fnHalt);

      case Op::SLL: return packR(0, rs, rd, in.imm & 31, fnSll);
      case Op::SRL: return packR(0, rs, rd, in.imm & 31, fnSrl);
      case Op::SRA: return packR(0, rs, rd, in.imm & 31, fnSra);
      case Op::SLLV: return packR(rs, rt, rd, 0, fnSllv);
      case Op::SRLV: return packR(rs, rt, rd, 0, fnSrlv);
      case Op::SRAV: return packR(rs, rt, rd, 0, fnSrav);
      case Op::ADD: return packR(rs, rt, rd, 0, fnAdd);
      case Op::SUB: return packR(rs, rt, rd, 0, fnSub);
      case Op::AND: return packR(rs, rt, rd, 0, fnAnd);
      case Op::OR: return packR(rs, rt, rd, 0, fnOr);
      case Op::XOR: return packR(rs, rt, rd, 0, fnXor);
      case Op::NOR: return packR(rs, rt, rd, 0, fnNor);
      case Op::SLT: return packR(rs, rt, rd, 0, fnSlt);
      case Op::SLTU: return packR(rs, rt, rd, 0, fnSltu);
      case Op::MUL: return packR(rs, rt, rd, 0, fnMul);
      case Op::DIV: return packR(rs, rt, rd, 0, fnDiv);
      case Op::REM: return packR(rs, rt, rd, 0, fnRem);
      case Op::JR: return packR(rs, 0, 0, 0, fnJr);
      case Op::JALR: return packR(rs, 0, rd, 0, fnJalr);

      case Op::ADDI: return packI(opAddi, rs, rt, in.imm);
      case Op::SLTI: return packI(opSlti, rs, rt, in.imm);
      case Op::SLTIU: return packI(opSltiu, rs, rt, in.imm);
      case Op::ANDI: return packI(opAndi, rs, rt, in.imm);
      case Op::ORI: return packI(opOri, rs, rt, in.imm);
      case Op::XORI: return packI(opXori, rs, rt, in.imm);
      case Op::LUI: return packI(opLui, 0, rt, in.imm);

      case Op::BEQ: return packI(opBeq, rs, rt, in.imm);
      case Op::BNE: return packI(opBne, rs, rt, in.imm);
      case Op::BLEZ: return packI(opBlez, rs, 0, in.imm);
      case Op::BGTZ: return packI(opBgtz, rs, 0, in.imm);
      case Op::BLTZ: return packI(opRegimm, rs, 0, in.imm);
      case Op::BGEZ: return packI(opRegimm, rs, 1, in.imm);
      case Op::BC1T: return packI(opBc1t, 0, 0, in.imm);
      case Op::BC1F: return packI(opBc1f, 0, 0, in.imm);

      case Op::J:
      case Op::JAL: {
        uint32_t target = static_cast<uint32_t>(in.imm);
        FACSIM_ASSERT(target < (1u << 26),
                      "jump target word address does not fit 26 bits");
        return ((in.op == Op::J ? opJ : opJal) << 26) | target;
      }

      case Op::ADD_D: return packF(rs, rt, rd, f1AddD);
      case Op::SUB_D: return packF(rs, rt, rd, f1SubD);
      case Op::MUL_D: return packF(rs, rt, rd, f1MulD);
      case Op::DIV_D: return packF(rs, rt, rd, f1DivD);
      case Op::SQRT_D: return packF(rs, 0, rd, f1SqrtD);
      case Op::ABS_D: return packF(rs, 0, rd, f1AbsD);
      case Op::MOV_D: return packF(rs, 0, rd, f1MovD);
      case Op::NEG_D: return packF(rs, 0, rd, f1NegD);
      case Op::CVT_D_W: return packF(rs, 0, rd, f1CvtDW);
      case Op::CVT_W_D: return packF(rs, 0, rd, f1CvtWD);
      case Op::C_EQ_D: return packF(rs, rt, 0, f1CEq);
      case Op::C_LT_D: return packF(rs, rt, 0, f1CLt);
      case Op::C_LE_D: return packF(rs, rt, 0, f1CLe);
      case Op::MTC1: return packF(0, rt, rd, f1Mtc1);
      case Op::MFC1: return packF(rs, 0, rd, f1Mfc1);

      case Op::LB: case Op::LBU: case Op::LH: case Op::LHU: case Op::LW:
      case Op::SB: case Op::SH: case Op::SW:
      case Op::LWC1: case Op::LDC1: case Op::SWC1: case Op::SDC1:
        switch (in.amode) {
          case AMode::RegConst: {
            uint32_t op;
            switch (in.op) {
              case Op::LB: op = opLb; break;
              case Op::LBU: op = opLbu; break;
              case Op::LH: op = opLh; break;
              case Op::LHU: op = opLhu; break;
              case Op::LW: op = opLw; break;
              case Op::SB: op = opSb; break;
              case Op::SH: op = opSh; break;
              case Op::SW: op = opSw; break;
              case Op::LWC1: op = opLwc1; break;
              case Op::LDC1: op = opLdc1; break;
              case Op::SWC1: op = opSwc1; break;
              default: op = opSdc1; break;
            }
            return packI(op, rs, rt, in.imm);
          }
          case AMode::RegReg: {
            uint32_t fn;
            switch (in.op) {
              case Op::LB: fn = xLb; break;
              case Op::LBU: fn = xLbu; break;
              case Op::LH: fn = xLh; break;
              case Op::LHU: fn = xLhu; break;
              case Op::LW: fn = xLw; break;
              case Op::SB: fn = xSb; break;
              case Op::SH: fn = xSh; break;
              case Op::SW: fn = xSw; break;
              case Op::LWC1: fn = xLwc1; break;
              case Op::LDC1: fn = xLdc1; break;
              case Op::SWC1: fn = xSwc1; break;
              default: fn = xSdc1; break;
            }
            // X format: base in rs slot, index in rt slot, data in rd slot.
            return (opMemx << 26) | (rs << 21) | (rd << 16) | (rt << 11) |
                fn;
          }
          case AMode::PostInc: {
            uint32_t op;
            switch (in.op) {
              case Op::LB: op = opLbp; break;
              case Op::LBU: op = opLbup; break;
              case Op::LW: op = opLwp; break;
              case Op::SB: op = opSbp; break;
              case Op::SW: op = opSwp; break;
              case Op::LWC1: op = opLwc1p; break;
              case Op::LDC1: op = opLdc1p; break;
              case Op::SWC1: op = opSwc1p; break;
              case Op::SDC1: op = opSdc1p; break;
              default:
                panic("post-increment not encodable for %s",
                      opName(in.op));
            }
            return packI(op, rs, rt, in.imm);
          }
        }
        panic("unreachable");

      default:
        panic("cannot encode op %s", opName(in.op));
    }
}

bool
decode(uint32_t word, Inst &in)
{
    in = Inst{};
    if (word == 0) {
        in.op = Op::NOP;
        return true;
    }

    const uint32_t op = bits(word, 31, 26);
    const uint8_t rs = bits(word, 25, 21);
    const uint8_t rt = bits(word, 20, 16);
    const uint8_t rd = bits(word, 15, 11);
    const uint32_t shamt = bits(word, 10, 6);
    const uint32_t fn = bits(word, 5, 0);

    auto aluR = [&](Op o) {
        in.op = o; in.rs = rs; in.rt = rt; in.rd = rd;
        return true;
    };
    auto shiftI = [&](Op o) {
        in.op = o; in.rs = rt; in.rd = rd;
        in.imm = static_cast<int32_t>(shamt);
        return true;
    };
    auto aluI = [&](Op o, bool sign = true) {
        in.op = o; in.rs = rs; in.rt = rt;
        in.imm = sign ? immS16(word) : immU16(word);
        return true;
    };
    auto memC = [&](Op o) {
        in.op = o; in.amode = AMode::RegConst;
        in.rs = rs; in.rt = rt; in.imm = immS16(word);
        return true;
    };
    auto memP = [&](Op o) {
        in.op = o; in.amode = AMode::PostInc;
        in.rs = rs; in.rt = rt; in.imm = immS16(word);
        return true;
    };
    auto branch = [&](Op o) {
        in.op = o; in.rs = rs; in.rt = rt; in.imm = immS16(word);
        return true;
    };
    auto fpR = [&](Op o) {
        in.op = o; in.rs = rs; in.rt = rt; in.rd = rd;
        return true;
    };

    switch (op) {
      case opSpecial:
        switch (fn) {
          case fnSll:
            // Note: shifts put their source in the rt slot.
            return shiftI(Op::SLL);
          case fnSrl: return shiftI(Op::SRL);
          case fnSra: return shiftI(Op::SRA);
          case fnSllv: return aluR(Op::SLLV);
          case fnSrlv: return aluR(Op::SRLV);
          case fnSrav: return aluR(Op::SRAV);
          case fnJr: in.op = Op::JR; in.rs = rs; return true;
          case fnJalr:
            in.op = Op::JALR; in.rs = rs; in.rd = rd;
            return true;
          case fnMul: return aluR(Op::MUL);
          case fnDiv: return aluR(Op::DIV);
          case fnRem: return aluR(Op::REM);
          case fnAdd: return aluR(Op::ADD);
          case fnSub: return aluR(Op::SUB);
          case fnAnd: return aluR(Op::AND);
          case fnOr: return aluR(Op::OR);
          case fnXor: return aluR(Op::XOR);
          case fnNor: return aluR(Op::NOR);
          case fnSlt: return aluR(Op::SLT);
          case fnSltu: return aluR(Op::SLTU);
          case fnHalt: in.op = Op::HALT; return true;
          default: return false;
        }
      case opRegimm:
        if (rt > 1)
            return false;
        // The rt field is an opcode extension here, not a register.
        branch(rt == 0 ? Op::BLTZ : Op::BGEZ);
        in.rt = 0;
        return true;
      case opJ:
      case opJal:
        in.op = op == opJ ? Op::J : Op::JAL;
        in.imm = static_cast<int32_t>(bits(word, 25, 0));
        return true;
      case opBeq: return branch(Op::BEQ);
      case opBne: return branch(Op::BNE);
      case opBlez: return branch(Op::BLEZ);
      case opBgtz: return branch(Op::BGTZ);
      case opAddi: return aluI(Op::ADDI);
      case opSlti: return aluI(Op::SLTI);
      case opSltiu: return aluI(Op::SLTIU);
      case opAndi: return aluI(Op::ANDI, false);
      case opOri: return aluI(Op::ORI, false);
      case opXori: return aluI(Op::XORI, false);
      case opLui:
        in.op = Op::LUI; in.rt = rt;
        in.imm = immU16(word);
        return true;
      case opBc1f: return branch(Op::BC1F);
      case opBc1t: return branch(Op::BC1T);
      case opCop1:
        switch (fn) {
          case f1AddD: return fpR(Op::ADD_D);
          case f1SubD: return fpR(Op::SUB_D);
          case f1MulD: return fpR(Op::MUL_D);
          case f1DivD: return fpR(Op::DIV_D);
          case f1SqrtD: return fpR(Op::SQRT_D);
          case f1AbsD: return fpR(Op::ABS_D);
          case f1MovD: return fpR(Op::MOV_D);
          case f1NegD: return fpR(Op::NEG_D);
          case f1CvtDW: return fpR(Op::CVT_D_W);
          case f1CvtWD: return fpR(Op::CVT_W_D);
          case f1CEq: return fpR(Op::C_EQ_D);
          case f1CLt: return fpR(Op::C_LT_D);
          case f1CLe: return fpR(Op::C_LE_D);
          case f1Mtc1: return fpR(Op::MTC1);
          case f1Mfc1: return fpR(Op::MFC1);
          default: return false;
        }
      case opMemx: {
        static const Op table[12] = {
            Op::LB, Op::LBU, Op::LH, Op::LHU, Op::LW,
            Op::SB, Op::SH, Op::SW,
            Op::LWC1, Op::LDC1, Op::SWC1, Op::SDC1,
        };
        if (fn >= 12)
            return false;
        in.op = table[fn];
        in.amode = AMode::RegReg;
        in.rs = rs;   // base
        in.rd = rt;   // index register travels in the rt slot
        in.rt = rd;   // data register travels in the rd slot
        return true;
      }
      case opLb: return memC(Op::LB);
      case opLh: return memC(Op::LH);
      case opLw: return memC(Op::LW);
      case opLbu: return memC(Op::LBU);
      case opLhu: return memC(Op::LHU);
      case opSb: return memC(Op::SB);
      case opSh: return memC(Op::SH);
      case opSw: return memC(Op::SW);
      case opLwc1: return memC(Op::LWC1);
      case opLdc1: return memC(Op::LDC1);
      case opSwc1: return memC(Op::SWC1);
      case opSdc1: return memC(Op::SDC1);
      case opLbp: return memP(Op::LB);
      case opLbup: return memP(Op::LBU);
      case opLwp: return memP(Op::LW);
      case opSbp: return memP(Op::SB);
      case opSwp: return memP(Op::SW);
      case opLwc1p: return memP(Op::LWC1);
      case opLdc1p: return memP(Op::LDC1);
      case opSwc1p: return memP(Op::SWC1);
      case opSdc1p: return memP(Op::SDC1);
      default:
        return false;
    }
}

Inst
decodeOrPanic(uint32_t word)
{
    Inst in;
    if (!decode(word, in))
        panic("invalid instruction word 0x%08x", word);
    return in;
}

} // namespace facsim
