/**
 * @file
 * Instruction set definition for the extended MIPS-like target used in the
 * paper's evaluation (Section 5.1): functionally MIPS-I plus
 * register+register and post-increment/decrement addressing modes, and no
 * architected delay slots.
 *
 * Instructions are represented in two forms: a packed 32-bit machine word
 * (see encoding.hh) and this decoded struct, which the emulator and the
 * timing pipeline operate on.
 */

#ifndef FACSIM_ISA_INST_HH
#define FACSIM_ISA_INST_HH

#include <array>
#include <cstdint>
#include <string>

namespace facsim
{

/** Number of architected integer registers. */
constexpr unsigned numIntRegs = 32;
/** Number of architected floating-point registers. */
constexpr unsigned numFpRegs = 32;

/**
 * Conventional MIPS register assignments. The global pointer, stack
 * pointer and frame pointer conventions are load-bearing for this paper:
 * the reference-behaviour profiler classifies accesses as global / stack /
 * general by their base register (Section 2.1).
 */
namespace reg
{
constexpr uint8_t zero = 0;  ///< hardwired zero
constexpr uint8_t at = 1;    ///< assembler temporary
constexpr uint8_t v0 = 2, v1 = 3;
constexpr uint8_t a0 = 4, a1 = 5, a2 = 6, a3 = 7;
constexpr uint8_t t0 = 8, t1 = 9, t2 = 10, t3 = 11;
constexpr uint8_t t4 = 12, t5 = 13, t6 = 14, t7 = 15;
constexpr uint8_t s0 = 16, s1 = 17, s2 = 18, s3 = 19;
constexpr uint8_t s4 = 20, s5 = 21, s6 = 22, s7 = 23;
constexpr uint8_t t8 = 24, t9 = 25;
constexpr uint8_t k0 = 26, k1 = 27;
constexpr uint8_t gp = 28;   ///< global pointer
constexpr uint8_t sp = 29;   ///< stack pointer
constexpr uint8_t fp = 30;   ///< frame pointer
constexpr uint8_t ra = 31;   ///< return address
} // namespace reg

/** Operation codes for the decoded instruction form. */
enum class Op : uint8_t
{
    NOP,
    HALT,

    // Integer ALU, register form.
    ADD, SUB, AND, OR, XOR, NOR,
    SLL, SRL, SRA, SLLV, SRLV, SRAV,
    SLT, SLTU,
    MUL, DIV, REM,

    // Integer ALU, immediate form.
    ADDI, ANDI, ORI, XORI, SLTI, SLTIU, LUI,

    // Memory operations (amode selects the addressing mode).
    LB, LBU, LH, LHU, LW,
    SB, SH, SW,
    LWC1, LDC1, SWC1, SDC1,

    // Control.
    BEQ, BNE, BLEZ, BGTZ, BLTZ, BGEZ,
    J, JAL, JR, JALR,
    BC1T, BC1F,

    // Floating point (operands name FP registers; all arithmetic is
    // double precision internally, .s ops exist only at the memory
    // interface).
    ADD_D, SUB_D, MUL_D, DIV_D, SQRT_D, ABS_D, NEG_D, MOV_D,
    CVT_D_W, CVT_W_D,
    C_EQ_D, C_LT_D, C_LE_D,
    MTC1, MFC1,

    NumOps
};

/**
 * Addressing modes for memory operations. RegConst is classic MIPS
 * base+displacement; RegReg and PostInc are the paper's ISA extensions.
 * Post-decrement is PostInc with a negative stride.
 */
enum class AMode : uint8_t
{
    RegConst,  ///< effective address = base + sext(imm16)
    RegReg,    ///< effective address = base + index register
    PostInc,   ///< effective address = base; base += sext(imm16) afterwards
};

/**
 * A decoded instruction. Field meanings depend on the operation:
 *
 *  - ALU reg:    rd = dest, rs/rt = sources, imm = shamt for SLL/SRL/SRA
 *  - ALU imm:    rt = dest, rs = source, imm = immediate
 *  - memory:     rs = base, rt = data (dest of load / source of store),
 *                rd = index register (RegReg only), imm = offset or stride
 *  - branches:   rs/rt = comparands, imm = word displacement from PC+4
 *  - J/JAL:      imm = absolute word address of the target
 *  - JR/JALR:    rs = target register, rd = link register (JALR)
 *  - FP:         rd = fd, rs = fs, rt = ft (FP register namespace);
 *                MTC1: rt = int source, rd = FP dest;
 *                MFC1: rd = int dest, rs = FP source
 */
struct Inst
{
    Op op = Op::NOP;
    AMode amode = AMode::RegConst;
    uint8_t rd = 0;
    uint8_t rs = 0;
    uint8_t rt = 0;
    int32_t imm = 0;

    bool operator==(const Inst &o) const = default;
};

/**
 * Operation-class bit flags, one byte per opcode. The predicates below
 * sit on the per-instruction hot paths of both the emulator and the
 * timing pipeline (and the sampled-simulation fast-forward loop runs
 * several of them per instruction), so they compile down to a single
 * table load instead of an out-of-line switch.
 */
namespace opclass
{
enum : uint8_t
{
    load = 1 << 0,
    store = 1 << 1,
    branch = 1 << 2,
    jump = 1 << 3,
    fp = 1 << 4,
    fpMem = 1 << 5,

    mem = load | store,
    control = branch | jump,
};

constexpr auto table = [] {
    std::array<uint8_t, static_cast<size_t>(Op::NumOps)> t{};
    auto set = [&](std::initializer_list<Op> ops, uint8_t f) {
        for (Op op : ops)
            t[static_cast<size_t>(op)] |= f;
    };
    set({Op::LB, Op::LBU, Op::LH, Op::LHU, Op::LW, Op::LWC1, Op::LDC1},
        load);
    set({Op::SB, Op::SH, Op::SW, Op::SWC1, Op::SDC1}, store);
    set({Op::BEQ, Op::BNE, Op::BLEZ, Op::BGTZ, Op::BLTZ, Op::BGEZ,
         Op::BC1T, Op::BC1F},
        branch);
    set({Op::J, Op::JAL, Op::JR, Op::JALR}, jump);
    set({Op::ADD_D, Op::SUB_D, Op::MUL_D, Op::DIV_D, Op::SQRT_D,
         Op::ABS_D, Op::NEG_D, Op::MOV_D, Op::CVT_D_W, Op::CVT_W_D,
         Op::C_EQ_D, Op::C_LT_D, Op::C_LE_D},
        fp);
    set({Op::LWC1, Op::LDC1, Op::SWC1, Op::SDC1}, fpMem);
    return t;
}();
} // namespace opclass

/** Class flags (opclass::*) of @p op. */
inline constexpr uint8_t opFlags(Op op)
{
    return opclass::table[static_cast<size_t>(op)];
}

/** True for all load operations (integer and FP). */
inline constexpr bool isLoad(Op op)
{
    return opFlags(op) & opclass::load;
}
/** True for all store operations (integer and FP). */
inline constexpr bool isStore(Op op)
{
    return opFlags(op) & opclass::store;
}
/** True for loads and stores. */
inline constexpr bool isMem(Op op)
{
    return opFlags(op) & opclass::mem;
}
/** True for conditional branches (not jumps). */
inline constexpr bool isBranch(Op op)
{
    return opFlags(op) & opclass::branch;
}
/** True for unconditional jumps (J/JAL/JR/JALR). */
inline constexpr bool isJump(Op op)
{
    return opFlags(op) & opclass::jump;
}
/** True for any control-transfer instruction. */
inline constexpr bool isControl(Op op)
{
    return opFlags(op) & opclass::control;
}
/** True for FP-pipeline operations (arith + compares + converts). */
inline constexpr bool isFpOp(Op op)
{
    return opFlags(op) & opclass::fp;
}
/** True if the memory op's data register names the FP register file. */
inline constexpr bool isFpMem(Op op)
{
    return opFlags(op) & opclass::fpMem;
}
/** Number of bytes accessed by a memory operation. */
unsigned memAccessSize(Op op);

/** Integer register written by @p inst, or -1 if none. */
int intDest(const Inst &inst);
/** FP register written by @p inst, or -1 if none. */
int fpDest(const Inst &inst);

/** Mnemonic for an operation code. */
const char *opName(Op op);
/** Conventional name ("sp", "t3", ...) of integer register @p r. */
const char *regName(unsigned r);

} // namespace facsim

#endif // FACSIM_ISA_INST_HH
