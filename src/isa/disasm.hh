/**
 * @file
 * Textual disassembly of decoded instructions, for traces and debugging.
 */

#ifndef FACSIM_ISA_DISASM_HH
#define FACSIM_ISA_DISASM_HH

#include <string>

#include "isa/inst.hh"

namespace facsim
{

/**
 * Render @p inst as assembly text. Branch/jump displacements are shown
 * numerically; pass @p pc to also show the resolved absolute target.
 */
std::string disasm(const Inst &inst, uint32_t pc = 0);

} // namespace facsim

#endif // FACSIM_ISA_DISASM_HH
