#include "isa/disasm.hh"

#include "util/logging.hh"

namespace facsim
{

std::string
disasm(const Inst &in, uint32_t pc)
{
    const char *n = opName(in.op);
    switch (in.op) {
      case Op::NOP:
      case Op::HALT:
        return n;

      case Op::SLL: case Op::SRL: case Op::SRA:
        return strprintf("%s %s,%s,%d", n, regName(in.rd), regName(in.rs),
                         in.imm);

      case Op::ADD: case Op::SUB: case Op::AND: case Op::OR: case Op::XOR:
      case Op::NOR: case Op::SLLV: case Op::SRLV: case Op::SRAV:
      case Op::SLT: case Op::SLTU: case Op::MUL: case Op::DIV:
      case Op::REM:
        return strprintf("%s %s,%s,%s", n, regName(in.rd), regName(in.rs),
                         regName(in.rt));

      case Op::ADDI: case Op::ANDI: case Op::ORI: case Op::XORI:
      case Op::SLTI: case Op::SLTIU:
        return strprintf("%s %s,%s,%d", n, regName(in.rt), regName(in.rs),
                         in.imm);

      case Op::LUI:
        return strprintf("%s %s,0x%x", n, regName(in.rt), in.imm);

      case Op::LB: case Op::LBU: case Op::LH: case Op::LHU: case Op::LW:
      case Op::SB: case Op::SH: case Op::SW:
      case Op::LWC1: case Op::LDC1: case Op::SWC1: case Op::SDC1: {
        std::string data = isFpMem(in.op) ? strprintf("f%d", in.rt)
                                          : std::string(regName(in.rt));
        switch (in.amode) {
          case AMode::RegConst:
            return strprintf("%s %s,%d(%s)", n, data.c_str(), in.imm,
                             regName(in.rs));
          case AMode::RegReg:
            return strprintf("%s %s,(%s+%s)", n, data.c_str(),
                             regName(in.rs), regName(in.rd));
          case AMode::PostInc:
            return strprintf("%s %s,(%s)%+d", n, data.c_str(),
                             regName(in.rs), in.imm);
        }
        return n;
      }

      case Op::BEQ: case Op::BNE:
        return strprintf("%s %s,%s,%d  # -> 0x%08x", n, regName(in.rs),
                         regName(in.rt), in.imm,
                         pc + 4 + (static_cast<uint32_t>(in.imm) << 2));
      case Op::BLEZ: case Op::BGTZ: case Op::BLTZ: case Op::BGEZ:
        return strprintf("%s %s,%d  # -> 0x%08x", n, regName(in.rs),
                         in.imm,
                         pc + 4 + (static_cast<uint32_t>(in.imm) << 2));
      case Op::BC1T: case Op::BC1F:
        return strprintf("%s %d  # -> 0x%08x", n, in.imm,
                         pc + 4 + (static_cast<uint32_t>(in.imm) << 2));

      case Op::J: case Op::JAL:
        return strprintf("%s 0x%08x", n,
                         static_cast<uint32_t>(in.imm) << 2);
      case Op::JR:
        return strprintf("%s %s", n, regName(in.rs));
      case Op::JALR:
        return strprintf("%s %s,%s", n, regName(in.rd), regName(in.rs));

      case Op::ADD_D: case Op::SUB_D: case Op::MUL_D: case Op::DIV_D:
        return strprintf("%s f%d,f%d,f%d", n, in.rd, in.rs, in.rt);
      case Op::SQRT_D: case Op::ABS_D: case Op::MOV_D: case Op::NEG_D:
      case Op::CVT_D_W: case Op::CVT_W_D:
        return strprintf("%s f%d,f%d", n, in.rd, in.rs);
      case Op::C_EQ_D: case Op::C_LT_D: case Op::C_LE_D:
        return strprintf("%s f%d,f%d", n, in.rs, in.rt);
      case Op::MTC1:
        return strprintf("%s %s,f%d", n, regName(in.rt), in.rd);
      case Op::MFC1:
        return strprintf("%s %s,f%d", n, regName(in.rd), in.rs);

      default:
        return strprintf("%s ???", n);
    }
}

} // namespace facsim
