/**
 * @file
 * Binary encoding of the extended MIPS-like ISA.
 *
 * Formats (bit fields):
 *  - R: op[31:26]=0x00  rs[25:21] rt[20:16] rd[15:11] shamt[10:6] funct[5:0]
 *  - I: op[31:26]       rs[25:21] rt[20:16] imm16[15:0]
 *  - J: op[31:26]       target26[25:0]  (absolute word address)
 *  - F: op[31:26]=0x11  fs[25:21] ft[20:16] fd[15:11] 0[10:6]     funct[5:0]
 *  - X: op[31:26]=0x1c  base[25:21] index[20:16] data[15:11] 0    funct[5:0]
 *       (register+register addressing; funct selects the memory op)
 *
 * Post-increment/decrement loads and stores get their own primary opcodes
 * in I format, with imm16 as the signed stride applied to the base register
 * after the access (post-decrement is simply a negative stride).
 */

#ifndef FACSIM_ISA_ENCODING_HH
#define FACSIM_ISA_ENCODING_HH

#include <cstdint>

#include "isa/inst.hh"

namespace facsim
{

/**
 * Encode a decoded instruction to its 32-bit machine word.
 *
 * @param inst the instruction; immediates must fit their fields
 *        (panics otherwise — the assembler guarantees this).
 * @return the machine word.
 */
uint32_t encode(const Inst &inst);

/**
 * Decode a 32-bit machine word.
 *
 * @param word the machine word.
 * @param inst output instruction, valid only when true is returned.
 * @retval true if the word is a valid encoding, false otherwise.
 */
bool decode(uint32_t word, Inst &inst);

/** Decode, panicking on an invalid word (use for trusted images). */
Inst decodeOrPanic(uint32_t word);

} // namespace facsim

#endif // FACSIM_ISA_ENCODING_HH
