#include "isa/inst.hh"

#include "util/logging.hh"

namespace facsim
{

unsigned
memAccessSize(Op op)
{
    switch (op) {
      case Op::LB: case Op::LBU: case Op::SB:
        return 1;
      case Op::LH: case Op::LHU: case Op::SH:
        return 2;
      case Op::LW: case Op::SW: case Op::LWC1: case Op::SWC1:
        return 4;
      case Op::LDC1: case Op::SDC1:
        return 8;
      default:
        panic("memAccessSize on non-memory op %s", opName(op));
    }
}

int
intDest(const Inst &inst)
{
    int d = -1;
    switch (inst.op) {
      case Op::ADD: case Op::SUB: case Op::AND: case Op::OR: case Op::XOR:
      case Op::NOR: case Op::SLL: case Op::SRL: case Op::SRA:
      case Op::SLLV: case Op::SRLV: case Op::SRAV: case Op::SLT:
      case Op::SLTU: case Op::MUL: case Op::DIV: case Op::REM:
      case Op::JALR: case Op::MFC1:
        d = inst.rd;
        break;
      case Op::ADDI: case Op::ANDI: case Op::ORI: case Op::XORI:
      case Op::SLTI: case Op::SLTIU: case Op::LUI:
      case Op::LB: case Op::LBU: case Op::LH: case Op::LHU: case Op::LW:
        d = inst.rt;
        break;
      case Op::JAL:
        d = reg::ra;
        break;
      default:
        return -1;
    }
    // A post-increment memory op additionally writes its base register;
    // that extra destination is handled separately by the pipeline via
    // AMode inspection, so here we report only the primary destination.
    return d == reg::zero ? -1 : d;
}

int
fpDest(const Inst &inst)
{
    switch (inst.op) {
      case Op::ADD_D: case Op::SUB_D: case Op::MUL_D: case Op::DIV_D:
      case Op::SQRT_D: case Op::ABS_D: case Op::NEG_D: case Op::MOV_D:
      case Op::CVT_D_W: case Op::CVT_W_D: case Op::MTC1:
        return inst.rd;
      case Op::LWC1: case Op::LDC1:
        return inst.rt;
      default:
        return -1;
    }
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::NOP: return "nop";
      case Op::HALT: return "halt";
      case Op::ADD: return "add";
      case Op::SUB: return "sub";
      case Op::AND: return "and";
      case Op::OR: return "or";
      case Op::XOR: return "xor";
      case Op::NOR: return "nor";
      case Op::SLL: return "sll";
      case Op::SRL: return "srl";
      case Op::SRA: return "sra";
      case Op::SLLV: return "sllv";
      case Op::SRLV: return "srlv";
      case Op::SRAV: return "srav";
      case Op::SLT: return "slt";
      case Op::SLTU: return "sltu";
      case Op::MUL: return "mul";
      case Op::DIV: return "div";
      case Op::REM: return "rem";
      case Op::ADDI: return "addi";
      case Op::ANDI: return "andi";
      case Op::ORI: return "ori";
      case Op::XORI: return "xori";
      case Op::SLTI: return "slti";
      case Op::SLTIU: return "sltiu";
      case Op::LUI: return "lui";
      case Op::LB: return "lb";
      case Op::LBU: return "lbu";
      case Op::LH: return "lh";
      case Op::LHU: return "lhu";
      case Op::LW: return "lw";
      case Op::SB: return "sb";
      case Op::SH: return "sh";
      case Op::SW: return "sw";
      case Op::LWC1: return "lwc1";
      case Op::LDC1: return "ldc1";
      case Op::SWC1: return "swc1";
      case Op::SDC1: return "sdc1";
      case Op::BEQ: return "beq";
      case Op::BNE: return "bne";
      case Op::BLEZ: return "blez";
      case Op::BGTZ: return "bgtz";
      case Op::BLTZ: return "bltz";
      case Op::BGEZ: return "bgez";
      case Op::J: return "j";
      case Op::JAL: return "jal";
      case Op::JR: return "jr";
      case Op::JALR: return "jalr";
      case Op::BC1T: return "bc1t";
      case Op::BC1F: return "bc1f";
      case Op::ADD_D: return "add.d";
      case Op::SUB_D: return "sub.d";
      case Op::MUL_D: return "mul.d";
      case Op::DIV_D: return "div.d";
      case Op::SQRT_D: return "sqrt.d";
      case Op::ABS_D: return "abs.d";
      case Op::NEG_D: return "neg.d";
      case Op::MOV_D: return "mov.d";
      case Op::CVT_D_W: return "cvt.d.w";
      case Op::CVT_W_D: return "cvt.w.d";
      case Op::C_EQ_D: return "c.eq.d";
      case Op::C_LT_D: return "c.lt.d";
      case Op::C_LE_D: return "c.le.d";
      case Op::MTC1: return "mtc1";
      case Op::MFC1: return "mfc1";
      default: return "???";
    }
}

const char *
regName(unsigned r)
{
    static const char *names[32] = {
        "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
        "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
        "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
        "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
    };
    FACSIM_ASSERT(r < 32, "register index out of range");
    return names[r];
}

} // namespace facsim
