#include "util/percentile.hh"

#include <cmath>
#include <cstddef>

namespace facsim
{

double
percentile(std::span<const double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    if (p <= 0.0)
        return sorted.front();
    if (p >= 1.0)
        return sorted.back();
    double rank = p * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= sorted.size())
        return sorted.back();
    return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

} // namespace facsim
