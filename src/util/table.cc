#include "util/table.hh"

#include <algorithm>
#include <cctype>

#include "util/logging.hh"

namespace facsim
{

void
Table::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
Table::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
Table::separator()
{
    sepAfter_.push_back(rows_.size());
}

namespace
{

bool
looksNumeric(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
            c != '-' && c != '+' && c != '%' && c != 'M' && c != 'k' &&
            c != 'x')
            return false;
    }
    return true;
}

} // anonymous namespace

void
Table::print(std::ostream &os) const
{
    size_t ncol = header_.size();
    for (const auto &r : rows_)
        ncol = std::max(ncol, r.size());

    std::vector<size_t> width(ncol, 0);
    auto measure = [&](const std::vector<std::string> &r) {
        for (size_t i = 0; i < r.size(); ++i)
            width[i] = std::max(width[i], r[i].size());
    };
    if (!header_.empty())
        measure(header_);
    for (const auto &r : rows_)
        measure(r);

    auto emit = [&](const std::vector<std::string> &r) {
        for (size_t i = 0; i < ncol; ++i) {
            std::string cell = i < r.size() ? r[i] : "";
            size_t pad = width[i] - cell.size();
            if (looksNumeric(cell)) {
                os << std::string(pad, ' ') << cell;
            } else {
                os << cell << std::string(pad, ' ');
            }
            os << (i + 1 < ncol ? "  " : "");
        }
        os << '\n';
    };

    size_t total = 0;
    for (size_t w : width)
        total += w;
    total += 2 * (ncol > 0 ? ncol - 1 : 0);
    std::string hline(total, '-');

    if (!header_.empty()) {
        emit(header_);
        os << hline << '\n';
    }
    for (size_t i = 0; i < rows_.size(); ++i) {
        for (size_t s : sepAfter_)
            if (s == i)
                os << hline << '\n';
        emit(rows_[i]);
    }
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &r) {
        for (size_t i = 0; i < r.size(); ++i)
            os << r[i] << (i + 1 < r.size() ? "," : "");
        os << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &r : rows_)
        emit(r);
}

std::string
fmtF(double v, int prec)
{
    return strprintf("%.*f", prec, v);
}

std::string
fmtCount(uint64_t v)
{
    if (v >= 10'000'000)
        return strprintf("%.1fM", static_cast<double>(v) / 1e6);
    if (v >= 10'000)
        return strprintf("%.1fk", static_cast<double>(v) / 1e3);
    return strprintf("%llu", static_cast<unsigned long long>(v));
}

std::string
fmtPct(double ratio, int prec)
{
    return strprintf("%.*f", prec, ratio * 100.0);
}

} // namespace facsim
