/**
 * @file
 * Deterministic pseudo-random number generator. Experiments must be
 * reproducible run-to-run, so all randomness in workload generation and in
 * the TLB's random replacement goes through this xorshift64* generator with
 * an explicit seed (never std::rand or random_device).
 */

#ifndef FACSIM_UTIL_RNG_HH
#define FACSIM_UTIL_RNG_HH

#include <cstdint>

namespace facsim
{

/** Small, fast, seedable xorshift64* generator. */
class Rng
{
  public:
    /** Construct with a non-zero seed (0 is remapped internally). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform value in [0, bound) (bound > 0). */
    uint64_t range(uint64_t bound);

    /** Uniform value in [lo, hi] inclusive. */
    int64_t between(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double real();

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p);

    /** Raw generator state, for checkpointing. Never zero. */
    uint64_t rawState() const { return state; }

    /** Restore state captured by rawState (must be non-zero). */
    void setRawState(uint64_t s);

  private:
    uint64_t state;
};

} // namespace facsim

#endif // FACSIM_UTIL_RNG_HH
