/**
 * @file
 * Error-reporting helpers in the gem5 idiom: panic() for internal simulator
 * bugs, fatal() for user/configuration errors, warn()/inform() for status.
 */

#ifndef FACSIM_UTIL_LOGGING_HH
#define FACSIM_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace facsim
{

/**
 * Abort the process because the simulator itself is broken. Use for
 * conditions that should never happen regardless of user input.
 *
 * @param fmt printf-style format string followed by its arguments.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Exit with an error because the simulation cannot continue due to a user
 * error (bad configuration, invalid arguments).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning about possibly-incorrect behaviour and keep running. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string vstrprintf(const char *fmt, va_list ap);

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * panic() if @p cond is false. Kept as an always-on check (independent of
 * NDEBUG) because simulator invariants guard experiment validity.
 */
#define FACSIM_ASSERT(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::facsim::warn("assertion '%s' failed", #cond);                 \
            ::facsim::panic(__VA_ARGS__);                                   \
        }                                                                   \
    } while (0)

} // namespace facsim

#endif // FACSIM_UTIL_LOGGING_HH
