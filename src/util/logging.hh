/**
 * @file
 * Error-reporting helpers in the gem5 idiom: panic() for internal simulator
 * bugs, fatal() for user/configuration errors, warn()/inform() for status.
 *
 * Status output (warn/inform and the obs-layer DPRINTFs) routes through a
 * swappable LogSink so tests can capture and assert on diagnostics;
 * panic()/fatal() always write to stderr and keep their abort/exit
 * semantics regardless of the installed sink. A thread-local
 * panic-context hook lets the component owning the crash history (the
 * pipeline's ring buffer) append its dump to panic output without the
 * logging layer depending on it.
 */

#ifndef FACSIM_UTIL_LOGGING_HH
#define FACSIM_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>
#include <vector>

namespace facsim
{

/**
 * Abort the process because the simulator itself is broken. Use for
 * conditions that should never happen regardless of user input. If this
 * thread has a panic-context hook installed, its text (e.g. the
 * pipeline-history ring dump) is printed before aborting.
 *
 * @param fmt printf-style format string followed by its arguments.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Exit with an error because the simulation cannot continue due to a user
 * error (bad configuration, invalid arguments).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning about possibly-incorrect behaviour and keep running. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string vstrprintf(const char *fmt, va_list ap);

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Destination of status lines (warn/inform/DPRINTF). The default sink
 * writes "tag: msg" to stderr.
 */
class LogSink
{
  public:
    virtual ~LogSink() = default;
    virtual void line(const char *tag, const std::string &msg) = 0;
};

/**
 * Install @p sink as the status-line destination and return the
 * previous one (nullptr = the stderr default). Intended for tests and
 * single-threaded setup: the pointer itself is unsynchronized, so swap
 * it only while no Runner worker threads are live.
 */
LogSink *setLogSink(LogSink *sink);

/** Emit one status line through the current sink. */
void logLine(const char *tag, const std::string &msg);

/** Sink that retains every line; for asserting on diagnostics in tests. */
class CaptureLogSink final : public LogSink
{
  public:
    void
    line(const char *tag, const std::string &msg) override
    {
        lines_.push_back(std::string(tag) + ": " + msg);
    }

    const std::vector<std::string> &lines() const { return lines_; }
    void clear() { lines_.clear(); }

  private:
    std::vector<std::string> lines_;
};

/** Producer of extra context for panic messages (ring-buffer dumps). */
using PanicContextFn = std::string (*)(void *ctx);

/**
 * Install a panic-context hook for the calling thread. The hook runs
 * inside panic() before the abort; keep it allocation-light and
 * reentrancy-safe (it must not panic). Thread-local so each Runner
 * worker's pipeline reports its own history.
 */
void setPanicContextHook(PanicContextFn fn, void *ctx);

/**
 * Remove the calling thread's panic-context hook, but only if @p ctx
 * still owns it (a pipeline being destroyed must not clobber a hook a
 * newer pipeline installed after it).
 */
void clearPanicContextHook(void *ctx);

/**
 * panic() if @p cond is false. Kept as an always-on check (independent of
 * NDEBUG) because simulator invariants guard experiment validity.
 */
#define FACSIM_ASSERT(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::facsim::warn("assertion '%s' failed", #cond);                 \
            ::facsim::panic(__VA_ARGS__);                                   \
        }                                                                   \
    } while (0)

} // namespace facsim

#endif // FACSIM_UTIL_LOGGING_HH
