#include "util/rng.hh"

#include "util/logging.hh"

namespace facsim
{

Rng::Rng(uint64_t seed)
    : state(seed ? seed : 0x9e3779b97f4a7c15ull)
{
}

void
Rng::setRawState(uint64_t s)
{
    FACSIM_ASSERT(s != 0, "Rng state must be non-zero");
    state = s;
}

uint64_t
Rng::next()
{
    // xorshift64* (Vigna 2014).
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1dull;
}

uint64_t
Rng::range(uint64_t bound)
{
    FACSIM_ASSERT(bound > 0, "range() bound must be positive");
    return next() % bound;
}

int64_t
Rng::between(int64_t lo, int64_t hi)
{
    FACSIM_ASSERT(lo <= hi, "between() needs lo <= hi");
    return lo + static_cast<int64_t>(
        range(static_cast<uint64_t>(hi - lo) + 1));
}

double
Rng::real()
{
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

bool
Rng::chance(double p)
{
    return real() < p;
}

} // namespace facsim
