#include "util/parse.hh"

#include <cstdlib>
#include <limits>

#include "util/logging.hh"

namespace facsim::parse
{

bool
tryU64(const std::string &s, uint64_t *out)
{
    size_t i = 0;
    int base = 10;
    if (s.size() >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
        base = 16;
        i = 2;
    }
    if (i >= s.size())
        return false;

    uint64_t v = 0;
    for (; i < s.size(); ++i) {
        char c = s[i];
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (base == 16 && c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else if (base == 16 && c >= 'A' && c <= 'F')
            digit = c - 'A' + 10;
        else
            return false;
        uint64_t next = v * base + digit;
        if (next / base != v || (next % base) != static_cast<uint64_t>(digit))
            return false; // overflow
        v = next;
    }
    *out = v;
    return true;
}

uint64_t
u64Flag(const char *flag, const std::string &value)
{
    uint64_t v;
    if (!tryU64(value, &v)) {
        fatal("usage: %s expects a non-negative integer "
              "(decimal or 0x-hex), got '%s'", flag, value.c_str());
    }
    return v;
}

uint64_t
u64FlagPositive(const char *flag, const std::string &value)
{
    uint64_t v = u64Flag(flag, value);
    if (v == 0)
        fatal("usage: %s expects a positive integer, got '%s'",
              flag, value.c_str());
    return v;
}

uint32_t
u32Flag(const char *flag, const std::string &value)
{
    uint64_t v = u64Flag(flag, value);
    if (v > std::numeric_limits<uint32_t>::max())
        fatal("usage: %s value '%s' is out of range", flag, value.c_str());
    return static_cast<uint32_t>(v);
}

uint32_t
u32FlagPositive(const char *flag, const std::string &value)
{
    uint32_t v = u32Flag(flag, value);
    if (v == 0)
        fatal("usage: %s expects a positive integer, got '%s'",
              flag, value.c_str());
    return v;
}

double
doubleFlag(const char *flag, const std::string &value)
{
    char *end = nullptr;
    double v = std::strtod(value.c_str(), &end);
    if (value.empty() || end != value.c_str() + value.size())
        fatal("usage: %s expects a number, got '%s'", flag,
              value.c_str());
    return v;
}

unsigned
oneOfFlag(const char *flag, const std::string &value,
          const char *const *choices)
{
    for (unsigned i = 0; choices[i]; ++i) {
        if (value == choices[i])
            return i;
    }
    std::string accepted;
    for (unsigned i = 0; choices[i]; ++i) {
        if (i)
            accepted += "|";
        accepted += choices[i];
    }
    fatal("usage: %s expects one of %s, got '%s'",
          flag, accepted.c_str(), value.c_str());
}

} // namespace facsim::parse
