/**
 * @file
 * Percentile over an ascending-sorted sample, shared by the loadgen
 * report, the serve-side latency estimators and any future summary
 * code. Takes a span so callers never copy their sample vector per
 * call (the original loadgen helper took the vector by value — one
 * full copy per percentile).
 */

#ifndef FACSIM_UTIL_PERCENTILE_HH
#define FACSIM_UTIL_PERCENTILE_HH

#include <span>

namespace facsim
{

/**
 * The @p p percentile (0.0 .. 1.0, clamped) of @p sorted, which must
 * be in ascending order. Uses linear interpolation between the two
 * nearest ranks (the "exclusive" definition degenerates on tiny
 * samples; this one returns sorted.front() at p=0 and sorted.back()
 * at p=1 for every size). Returns 0.0 on an empty sample.
 */
double percentile(std::span<const double> sorted, double p);

} // namespace facsim

#endif // FACSIM_UTIL_PERCENTILE_HH
