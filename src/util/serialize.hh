/**
 * @file
 * Header-only binary serialization used by the checkpoint subsystem
 * (sim/checkpoint.hh). Kept in util/ and fully inline so that low-level
 * structures (Cache, Btb, Tlb, MshrFile, ...) can implement
 * saveState()/loadState() without linking against the sim layer.
 *
 * The encoding is fixed-width little-endian with no alignment; strings
 * and byte blocks are length-prefixed. Readers are bounds-checked: any
 * read past the end of the buffer dies through fatal() with a message
 * naming the checkpoint as truncated, which is how corrupt files are
 * rejected (see tests/test_checkpoint.cc).
 */

#ifndef FACSIM_UTIL_SERIALIZE_HH
#define FACSIM_UTIL_SERIALIZE_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/logging.hh"

namespace facsim::ser
{

/** FNV-1a 64-bit hash — the checkpoint trailer checksum. */
inline uint64_t
fnv1a(const void *data, size_t len, uint64_t h = 0xcbf29ce484222325ull)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Accumulates an encoded byte stream. */
class Writer
{
  public:
    void
    u8(uint8_t v)
    {
        buf_.push_back(static_cast<char>(v));
    }

    void
    u32(uint32_t v)
    {
        raw(&v, 4);
    }

    void
    u64(uint64_t v)
    {
        raw(&v, 8);
    }

    void
    f64(double v)
    {
        raw(&v, 8);
    }

    void
    b(bool v)
    {
        u8(v ? 1 : 0);
    }

    /** Length-prefixed string. */
    void
    str(const std::string &s)
    {
        u64(s.size());
        buf_.append(s);
    }

    /** Raw bytes, no length prefix (caller encodes the length). */
    void
    bytes(const void *data, size_t len)
    {
        raw(data, len);
    }

    const std::string &data() const { return buf_; }

  private:
    void
    raw(const void *p, size_t n)
    {
        // Encode little-endian regardless of host order. All supported
        // hosts are little-endian; memcpy keeps this alignment-safe.
        buf_.append(static_cast<const char *>(p), n);
    }

    std::string buf_;
};

/** Bounds-checked decoder over a byte buffer (not owned). */
class Reader
{
  public:
    /**
     * @param data encoded stream (must outlive the Reader).
     * @param len stream length in bytes.
     * @param what label for error messages ("checkpoint", ...).
     */
    Reader(const void *data, size_t len, const char *what = "checkpoint")
        : p_(static_cast<const uint8_t *>(data)), len_(len), what_(what)
    {
    }

    uint8_t
    u8()
    {
        need(1);
        return p_[off_++];
    }

    uint32_t
    u32()
    {
        uint32_t v;
        need(4);
        std::memcpy(&v, p_ + off_, 4);
        off_ += 4;
        return v;
    }

    uint64_t
    u64()
    {
        uint64_t v;
        need(8);
        std::memcpy(&v, p_ + off_, 8);
        off_ += 8;
        return v;
    }

    double
    f64()
    {
        double v;
        need(8);
        std::memcpy(&v, p_ + off_, 8);
        off_ += 8;
        return v;
    }

    bool b() { return u8() != 0; }

    std::string
    str()
    {
        uint64_t n = u64();
        // Strings in checkpoints are identifiers; a huge length means
        // the stream is corrupt, not that someone saved a 16 MB name.
        FACSIM_ASSERT(n <= (1u << 24),
                      "%s corrupt: unreasonable string length %llu",
                      what_, static_cast<unsigned long long>(n));
        need(n);
        std::string s(reinterpret_cast<const char *>(p_ + off_),
                      static_cast<size_t>(n));
        off_ += static_cast<size_t>(n);
        return s;
    }

    void
    bytes(void *out, size_t n)
    {
        need(n);
        std::memcpy(out, p_ + off_, n);
        off_ += n;
    }

    size_t offset() const { return off_; }
    size_t remaining() const { return len_ - off_; }

    /** Die unless the whole stream was consumed (trailing-junk check). */
    void
    expectEnd() const
    {
        if (off_ != len_) {
            fatal("%s corrupt: %zu trailing byte(s) after the last "
                  "section", what_, len_ - off_);
        }
    }

  private:
    void
    need(size_t n) const
    {
        if (off_ + n > len_) {
            fatal("%s truncated: needed %zu byte(s) at offset %zu but "
                  "only %zu remain", what_, n, off_, len_ - off_);
        }
    }

    const uint8_t *p_;
    size_t len_;
    const char *what_;
    size_t off_ = 0;
};

/**
 * Non-fatal variant of Reader for *untrusted* input (the experiment
 * service's wire frames and cache files): instead of dying through
 * fatal(), the first out-of-bounds read latches a failure flag and an
 * error message, and every subsequent read returns zero without
 * touching the buffer. Callers check ok() once after decoding a whole
 * structure; a daemon must reject a malformed frame with a protocol
 * error, never abort.
 */
class TryReader
{
  public:
    TryReader(const void *data, size_t len)
        : p_(static_cast<const uint8_t *>(data)), len_(len)
    {
    }

    uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return p_[off_++];
    }

    uint32_t
    u32()
    {
        uint32_t v;
        if (!need(4))
            return 0;
        std::memcpy(&v, p_ + off_, 4);
        off_ += 4;
        return v;
    }

    uint64_t
    u64()
    {
        uint64_t v;
        if (!need(8))
            return 0;
        std::memcpy(&v, p_ + off_, 8);
        off_ += 8;
        return v;
    }

    double
    f64()
    {
        double v;
        if (!need(8))
            return 0.0;
        std::memcpy(&v, p_ + off_, 8);
        off_ += 8;
        return v;
    }

    bool b() { return u8() != 0; }

    std::string
    str()
    {
        uint64_t n = u64();
        // Same sanity cap as Reader: a huge length means a corrupt or
        // hostile stream, not a real identifier.
        if (ok_ && n > (1u << 24)) {
            fail("unreasonable string length");
            return std::string();
        }
        if (!need(static_cast<size_t>(n)))
            return std::string();
        std::string s(reinterpret_cast<const char *>(p_ + off_),
                      static_cast<size_t>(n));
        off_ += static_cast<size_t>(n);
        return s;
    }

    bool
    bytes(void *out, size_t n)
    {
        if (!need(n))
            return false;
        std::memcpy(out, p_ + off_, n);
        off_ += n;
        return true;
    }

    /** Record a semantic (not framing) failure; reads stop succeeding. */
    void
    fail(const std::string &why)
    {
        if (ok_) {
            ok_ = false;
            error_ = why;
        }
    }

    bool ok() const { return ok_; }
    const std::string &error() const { return error_; }
    size_t offset() const { return off_; }
    size_t remaining() const { return len_ - off_; }
    bool atEnd() const { return off_ == len_; }

  private:
    bool
    need(size_t n)
    {
        if (!ok_)
            return false;
        if (off_ + n > len_) {
            fail("truncated stream");
            return false;
        }
        return true;
    }

    const uint8_t *p_;
    size_t len_;
    size_t off_ = 0;
    bool ok_ = true;
    std::string error_;
};

} // namespace facsim::ser

#endif // FACSIM_UTIL_SERIALIZE_HH
