/**
 * @file
 * Bit-manipulation helpers used throughout the simulator, most importantly
 * by the fast-address-calculation predictor which reasons about the block
 * offset / set index / tag fields of 32-bit addresses.
 */

#ifndef FACSIM_UTIL_BITS_HH
#define FACSIM_UTIL_BITS_HH

#include <cstdint>

namespace facsim
{

/** A mask with the low @p n bits set (n may be 0..32). */
constexpr uint32_t
maskLow(unsigned n)
{
    return n >= 32 ? 0xffffffffu : ((1u << n) - 1u);
}

/** Extract bits [hi:lo] of @p v (inclusive, hi < 32). */
constexpr uint32_t
bits(uint32_t v, unsigned hi, unsigned lo)
{
    return (v >> lo) & maskLow(hi - lo + 1);
}

/** Extract the single bit @p b of @p v. */
constexpr uint32_t
bit(uint32_t v, unsigned b)
{
    return (v >> b) & 1u;
}

/** Sign-extend the low @p n bits of @p v to a signed 32-bit value. */
constexpr int32_t
sext(uint32_t v, unsigned n)
{
    uint32_t m = 1u << (n - 1);
    uint32_t x = v & maskLow(n);
    return static_cast<int32_t>((x ^ m) - m);
}

/** True iff @p v is a power of two (and non-zero). */
constexpr bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Round @p v up to a multiple of @p align (align must be a power of two). */
constexpr uint64_t
roundUp(uint64_t v, uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Round @p v down to a multiple of @p align (power of two). */
constexpr uint64_t
roundDown(uint64_t v, uint64_t align)
{
    return v & ~(align - 1);
}

/** Smallest power of two >= @p v (v <= 2^31). */
constexpr uint32_t
nextPow2(uint32_t v)
{
    uint32_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

/** log2 of a power of two. */
constexpr unsigned
log2i(uint64_t v)
{
    unsigned n = 0;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

} // namespace facsim

#endif // FACSIM_UTIL_BITS_HH
