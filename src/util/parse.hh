/**
 * @file
 * Strict command-line value parsing. The CLI historically used bare
 * strtoul(), which silently accepts garbage ("--mshrs=banana" parsed as
 * 0) and negative values (wrapped to huge unsigneds). These helpers
 * parse the *whole* token or die with a usage message, so a mistyped
 * flag can never silently misconfigure an experiment.
 */

#ifndef FACSIM_UTIL_PARSE_HH
#define FACSIM_UTIL_PARSE_HH

#include <cstdint>
#include <string>

namespace facsim::parse
{

/**
 * Parse a full string as an unsigned integer (decimal, or hex with a
 * 0x/0X prefix). Rejects empty strings, signs, trailing junk, and
 * values that overflow uint64_t.
 *
 * @return true and *out on success; false otherwise (*out untouched).
 */
bool tryU64(const std::string &s, uint64_t *out);

/**
 * Parse @p value for flag @p flag or die with a usage message.
 * Accepts zero; use u64FlagPositive when zero is also invalid.
 */
uint64_t u64Flag(const char *flag, const std::string &value);

/** Like u64Flag, but additionally rejects zero. */
uint64_t u64FlagPositive(const char *flag, const std::string &value);

/** u64Flag narrowed to uint32_t (dies if the value doesn't fit). */
uint32_t u32Flag(const char *flag, const std::string &value);

/** u32Flag that additionally rejects zero. */
uint32_t u32FlagPositive(const char *flag, const std::string &value);

/**
 * Parse @p value as a floating-point number (whole token, strtod
 * syntax) or die with a usage message. Range/sign checks stay with
 * the caller — "0.5" and "-1" are both numbers.
 */
double doubleFlag(const char *flag, const std::string &value);

/**
 * Match @p value against the nullptr-terminated choice list @p choices
 * or die with a usage message listing every accepted spelling.
 *
 * @return the index of the matching choice.
 */
unsigned oneOfFlag(const char *flag, const std::string &value,
                   const char *const *choices);

} // namespace facsim::parse

#endif // FACSIM_UTIL_PARSE_HH
