#include "util/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace facsim
{

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    return s;
}

namespace
{

// Status-line sink; nullptr selects the stderr default. Swapped only by
// single-threaded test code (see setLogSink); atomic so a racing reader
// at least loads a coherent pointer.
std::atomic<LogSink *> logSink{nullptr};

// Per-thread panic-context producer (the crash-history ring's owner).
thread_local PanicContextFn panicCtxFn = nullptr;
thread_local void *panicCtxArg = nullptr;

void
emit(const char *tag, const char *fmt, va_list ap)
{
    logLine(tag, vstrprintf(fmt, ap));
}

} // anonymous namespace

LogSink *
setLogSink(LogSink *sink)
{
    return logSink.exchange(sink);
}

void
logLine(const char *tag, const std::string &msg)
{
    if (LogSink *s = logSink.load())
        s->line(tag, msg);
    else
        std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

void
setPanicContextHook(PanicContextFn fn, void *ctx)
{
    panicCtxFn = fn;
    panicCtxArg = ctx;
}

void
clearPanicContextHook(void *ctx)
{
    if (panicCtxArg == ctx) {
        panicCtxFn = nullptr;
        panicCtxArg = nullptr;
    }
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    // Always stderr, never the swappable sink: a captured panic must
    // still be visible in the crashing process's output.
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    if (panicCtxFn) {
        // Disarm before calling out so a hook that itself panics cannot
        // recurse.
        PanicContextFn fn = panicCtxFn;
        void *ctx = panicCtxArg;
        panicCtxFn = nullptr;
        panicCtxArg = nullptr;
        std::string extra = fn(ctx);
        std::fwrite(extra.data(), 1, extra.size(), stderr);
        if (!extra.empty() && extra.back() != '\n')
            std::fputc('\n', stderr);
    }
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("info", fmt, ap);
    va_end(ap);
}

} // namespace facsim
