/**
 * @file
 * ASCII table formatter used by the bench harnesses to print rows in the
 * style of the paper's tables, plus a tiny CSV emitter for post-processing.
 */

#ifndef FACSIM_UTIL_TABLE_HH
#define FACSIM_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace facsim
{

/**
 * Accumulates rows of string cells and prints them with aligned columns.
 * Numeric-looking cells are right-aligned, text cells left-aligned.
 */
class Table
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append one data row. */
    void row(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void separator();

    /** Render with aligned columns to @p os. */
    void print(std::ostream &os) const;

    /** Render as CSV (no alignment, separators skipped) to @p os. */
    void printCsv(std::ostream &os) const;

    /** Number of data rows added so far. */
    size_t numRows() const { return rows_.size(); }

    /** Header cells (empty until header() is called). */
    const std::vector<std::string> &headerCells() const { return header_; }

    /** All data rows, in insertion order (separators not included). */
    const std::vector<std::vector<std::string>> &dataRows() const
    {
        return rows_;
    }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<size_t> sepAfter_;
};

/** Format a double with @p prec digits after the decimal point. */
std::string fmtF(double v, int prec = 2);

/** Format an integer count, scaled to millions when large ("12.3M"). */
std::string fmtCount(uint64_t v);

/** Format a ratio as a percentage string with @p prec digits. */
std::string fmtPct(double ratio, int prec = 2);

} // namespace facsim

#endif // FACSIM_UTIL_TABLE_HH
