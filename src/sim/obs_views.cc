#include "sim/obs_views.hh"

#include <algorithm>
#include <cctype>

#include "util/logging.hh"

namespace facsim
{

namespace
{

std::string
lowered(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return out;
}

void
registerMshrStats(obs::Group &g, const MshrStats &m)
{
    g.counterView("allocations", "primary misses that took an entry",
                  &m.allocations);
    g.counterView("merges", "secondary misses folded into one fill",
                  &m.merges);
    g.counterView("full_stalls", "cycles waited for a free entry",
                  &m.fullStallCycles);
    g.formula("max_occupancy", "peak in-flight fills",
              [&m] { return static_cast<double>(m.maxOccupancy); });
    g.formula("avg_occupancy", "mean occupancy at allocation",
              [&m] { return m.avgOccupancy(); });
}

} // anonymous namespace

void
registerPipeStats(obs::Group &g, const PipeStats &st)
{
    g.counterView("cycles", "simulated cycles", &st.cycles);
    g.counterView("insts", "instructions issued", &st.insts);
    g.counterView("loads", "load instructions", &st.loads);
    g.counterView("stores", "store instructions", &st.stores);
    g.formula("ipc", "instructions per cycle", [&st] { return st.ipc(); });

    obs::Group &ic = g.group("icache");
    ic.counterView("accesses", "I-cache block accesses",
                   &st.icacheAccesses);
    ic.counterView("misses", "I-cache misses", &st.icacheMisses);

    obs::Group &dc = g.group("dcache");
    dc.counterView("accesses", "D-cache accesses (ports consumed)",
                   &st.dcacheAccesses);
    dc.counterView("misses", "D-cache (L1) misses", &st.dcacheMisses);
    dc.formula("miss_ratio", "L1 data miss ratio",
               [&st] { return st.dcacheMissRatio(); });

    obs::Group &btb = g.group("btb");
    btb.counterView("lookups", "BTB predictions made", &st.btbLookups);
    btb.counterView("mispredicts", "control mispredictions",
                    &st.btbMispredicts);

    obs::Group &fac = g.group("fac");
    fac.counterView("loads_speculated",
                    "loads that accessed the cache speculatively in EX",
                    &st.loadsSpeculated);
    fac.counterView("load_spec_failures",
                    "speculative loads whose FAC verify failed",
                    &st.loadSpecFailures);
    fac.counterView("stores_speculated",
                    "stores entered speculatively into the buffer",
                    &st.storesSpeculated);
    fac.counterView("store_spec_failures",
                    "speculative stores whose FAC verify failed",
                    &st.storeSpecFailures);
    fac.counterView("extra_accesses",
                    "wasted cache accesses from mispredictions (Table 6)",
                    &st.extraAccesses);
    fac.formula("mispredicts", "all FAC verification failures", [&st] {
        return static_cast<double>(st.loadSpecFailures +
                                   st.storeSpecFailures);
    });

    obs::Group &pred = g.group("pred");
    pred.formula("attempts", "speculative accesses from any source", [&st] {
        return static_cast<double>(st.loadsSpeculated +
                                   st.storesSpeculated);
    });
    pred.formula("failures", "verify failures from any source", [&st] {
        return static_cast<double>(st.loadSpecFailures +
                                   st.storeSpecFailures);
    });
    pred.formula("fail_rate", "failures / attempts (0 when no attempts)",
                 [&st] { return st.predFailRate(); });
    pred.counterView("stride_speculated",
                     "accesses speculated from the stride table",
                     &st.strideSpeculated);
    pred.counterView("stride_spec_failures",
                     "stride-sourced speculations whose verify failed",
                     &st.strideSpecFailures);
    pred.formula("stride_fail_rate",
                 "stride failures / attempts (0 when no attempts)",
                 [&st] { return st.strideFailRate(); });
    pred.counterView("recovery_cycles",
                     "MEM-replay cycles spent recovering mispredictions",
                     &st.predRecoveryCycles);
    pred.counterView("waymemo_tag_reads_saved",
                     "L1 tag reads skipped via a fresh memoized way",
                     &st.wayMemoTagReadsSaved);
    pred.counterView("waymemo_stale",
                     "memoized ways caught stale by the late verify",
                     &st.wayMemoStale);

    obs::Group &stall = g.group("stall");
    stall.counterView("fetch", "cycles stalled with no fetched inst ready",
                      &st.stallFetch);
    stall.counterView("data", "cycles stalled on operands / WAW",
                      &st.stallData);
    stall.counterView("structural",
                      "cycles stalled on a unit or cache port",
                      &st.stallStructural);
    stall.counterView("store_buffer", "cycles stalled on the store buffer",
                      &st.stallStoreBuffer);

    g.group("store_buffer")
        .counterView("full_stalls", "issue stalls with the buffer full",
                     &st.storeBufferFullStalls);
}

void
registerHierarchyStats(obs::Group &g, const HierarchyStats &hs)
{
    for (const LevelStats &lvl : hs.levels) {
        obs::Group &lg = g.group(lowered(lvl.name));
        lg.counterView("accesses", "demand accesses at this level",
                       &lvl.accesses);
        lg.counterView("misses", "misses at this level", &lvl.misses);
        lg.counterView("writebacks", "dirty victims written below",
                       &lvl.writebacks);
        lg.formula("miss_ratio", "per-level miss ratio", [&lvl] {
            return lvl.accesses
                ? static_cast<double>(lvl.misses) / lvl.accesses : 0.0;
        });
        lg.counterView("wb_full_stall_cycles",
                       "cycles stalled on a full writeback buffer",
                       &lvl.wbFullStallCycles);
        registerMshrStats(lg.group("mshr"), lvl.mshr);
    }
    if (hs.hasDram) {
        obs::Group &dg = g.group("dram");
        dg.counterView("reads", "line fills from memory", &hs.dram.reads);
        dg.counterView("writes", "writebacks to memory", &hs.dram.writes);
        dg.counterView("queued_cycles", "FCFS wait before channel start",
                       &hs.dram.queuedCycles);
        dg.counterView("busy_cycles", "channel occupancy",
                       &hs.dram.busyCycles);
    }
    obs::Group &tg = g.group("tlb");
    tg.counterView("accesses", "data-TLB probes", &hs.tlbAccesses);
    tg.counterView("misses", "data-TLB misses", &hs.tlbMisses);
    tg.formula("miss_ratio", "data-TLB miss ratio",
               [&hs] { return hs.tlbMissRatio(); });
}

void
registerProfileStats(obs::Group &g, const ProfileResult &pr)
{
    g.counterView("insts", "instructions profiled", &pr.insts);
    g.counterView("loads", "load references", &pr.loads);
    g.counterView("stores", "store references", &pr.stores);
    g.formula("frac_global", "loads off the global pointer",
              [&pr] { return pr.fracGlobal; });
    g.formula("frac_stack", "loads off the stack/frame pointer",
              [&pr] { return pr.fracStack; });
    g.formula("frac_general", "loads off general pointers",
              [&pr] { return pr.fracGeneral; });
    for (size_t i = 0; i < pr.fac.size(); ++i) {
        const FacProfile &fp = pr.fac[i];
        obs::Group &fg = g.group(strprintf("fac%zu", i));
        fg.counterView("load_attempts", "loads the predictor attempted",
                      &fp.loadAttempts);
        fg.counterView("load_failures", "attempted loads mispredicted",
                      &fp.loadFailures);
        fg.counterView("store_attempts", "stores the predictor attempted",
                      &fp.storeAttempts);
        fg.counterView("store_failures", "attempted stores mispredicted",
                      &fp.storeFailures);
        fg.formula("load_fail_rate", "Table 3 load failure rate",
                   [&fp] { return fp.loadFailRate(); });
        fg.formula("store_fail_rate", "Table 3 store failure rate",
                   [&fp] { return fp.storeFailRate(); });
    }
    obs::Group &tg = g.group("tlb");
    tg.counterView("accesses", "data-TLB probes", &pr.tlbAccesses);
    tg.counterView("misses", "data-TLB misses", &pr.tlbMisses);
}

void
registerEmulatorStats(obs::Group &g, const EmuTranslationStats &ts,
                      EmuEngine engine)
{
    g.counterView("blocks_translated",
                  "basic blocks decoded into handler records",
                  &ts.blocksTranslated);
    g.counterView("block_cache_hits", "dispatches served from the cache",
                  &ts.blockCacheHits);
    g.counterView("block_cache_misses",
                  "dispatches that forced a translation",
                  &ts.blockCacheMisses);
    g.counterView("superblock_chains",
                  "block-to-block links bound for direct transfer",
                  &ts.superblockChains);
    g.scalar("dispatch_engine", "active engine (0=switch, 1=threaded)")
        .set(engine == EmuEngine::Threaded ? 1.0 : 0.0);
}

void
registerTimingStats(obs::Group &root, const TimingResult &tr)
{
    registerPipeStats(root.group("pipeline"), tr.stats);
    registerHierarchyStats(root.group("hier"), tr.hier);
    registerEmulatorStats(root.group("emu"), tr.emu, tr.emuEngine);
    root.group("sim").counterView("mem_usage_bytes",
                                  "peak simulated-memory footprint",
                                  &tr.memUsageBytes);
}

// ---------------------------------------------------------------------------
// StatsAccum

void
StatsAccum::add(const TimingResult &r)
{
    hasTiming_ = true;
    ++runs_;
    memUsageBytes_ = std::max(memUsageBytes_, r.memUsageBytes);

    const PipeStats &s = r.stats;
    pipe_.cycles += s.cycles;
    pipe_.insts += s.insts;
    pipe_.loads += s.loads;
    pipe_.stores += s.stores;
    pipe_.icacheAccesses += s.icacheAccesses;
    pipe_.icacheMisses += s.icacheMisses;
    pipe_.dcacheAccesses += s.dcacheAccesses;
    pipe_.dcacheMisses += s.dcacheMisses;
    pipe_.btbLookups += s.btbLookups;
    pipe_.btbMispredicts += s.btbMispredicts;
    pipe_.loadsSpeculated += s.loadsSpeculated;
    pipe_.loadSpecFailures += s.loadSpecFailures;
    pipe_.storesSpeculated += s.storesSpeculated;
    pipe_.storeSpecFailures += s.storeSpecFailures;
    pipe_.extraAccesses += s.extraAccesses;
    pipe_.storeBufferFullStalls += s.storeBufferFullStalls;
    pipe_.stallFetch += s.stallFetch;
    pipe_.stallData += s.stallData;
    pipe_.stallStructural += s.stallStructural;
    pipe_.stallStoreBuffer += s.stallStoreBuffer;
    pipe_.strideSpeculated += s.strideSpeculated;
    pipe_.strideSpecFailures += s.strideSpecFailures;
    pipe_.predRecoveryCycles += s.predRecoveryCycles;
    pipe_.wayMemoTagReadsSaved += s.wayMemoTagReadsSaved;
    pipe_.wayMemoStale += s.wayMemoStale;

    for (const LevelStats &lvl : r.hier.levels) {
        LevelStats *dst = nullptr;
        for (LevelStats &have : hier_.levels)
            if (have.name == lvl.name)
                dst = &have;
        if (!dst) {
            hier_.levels.push_back(lvl);
            continue;
        }
        dst->accesses += lvl.accesses;
        dst->misses += lvl.misses;
        dst->writebacks += lvl.writebacks;
        dst->wbFullStallCycles += lvl.wbFullStallCycles;
        dst->mshr.allocations += lvl.mshr.allocations;
        dst->mshr.merges += lvl.mshr.merges;
        dst->mshr.fullStallCycles += lvl.mshr.fullStallCycles;
        dst->mshr.maxOccupancy =
            std::max(dst->mshr.maxOccupancy, lvl.mshr.maxOccupancy);
        dst->mshr.occupancySum += lvl.mshr.occupancySum;
    }
    hier_.hasDram = hier_.hasDram || r.hier.hasDram;
    hier_.dram.reads += r.hier.dram.reads;
    hier_.dram.writes += r.hier.dram.writes;
    hier_.dram.queuedCycles += r.hier.dram.queuedCycles;
    hier_.dram.busyCycles += r.hier.dram.busyCycles;
    hier_.tlbAccesses += r.hier.tlbAccesses;
    hier_.tlbMisses += r.hier.tlbMisses;
}

void
StatsAccum::add(const ProfileResult &r)
{
    hasProfile_ = true;
    ++runs_;
    memUsageBytes_ = std::max(memUsageBytes_, r.memUsageBytes);

    prof_.insts += r.insts;
    prof_.loads += r.loads;
    prof_.stores += r.stores;
    prof_.tlbAccesses += r.tlbAccesses;
    prof_.tlbMisses += r.tlbMisses;
    // Per-run FAC configurations differ in meaning across benches;
    // merge attempt/failure counters index-wise (all runAll batches use
    // one config list).
    for (size_t i = 0; i < r.fac.size(); ++i) {
        if (i >= prof_.fac.size())
            prof_.fac.push_back(r.fac[i]);
        else {
            prof_.fac[i].loadAttempts += r.fac[i].loadAttempts;
            prof_.fac[i].loadFailures += r.fac[i].loadFailures;
            prof_.fac[i].storeAttempts += r.fac[i].storeAttempts;
            prof_.fac[i].storeFailures += r.fac[i].storeFailures;
        }
    }
    // Class fractions re-derive from the merged totals at dump time;
    // they are stored per run, so recompute a loads-weighted blend.
    double w_old = prof_.loads ? static_cast<double>(prof_.loads -
                                                     r.loads) : 0.0;
    double w_new = static_cast<double>(r.loads);
    double w_tot = w_old + w_new;
    if (w_tot > 0.0) {
        prof_.fracGlobal =
            (prof_.fracGlobal * w_old + r.fracGlobal * w_new) / w_tot;
        prof_.fracStack =
            (prof_.fracStack * w_old + r.fracStack * w_new) / w_tot;
        prof_.fracGeneral =
            (prof_.fracGeneral * w_old + r.fracGeneral * w_new) / w_tot;
    }
}

void
registerLvptStats(obs::Group &g, const LvptLibrary &lib)
{
    // By-value captures: the registry may be dumped after the library
    // object is gone (one-shot CLI dumps build the registry late).
    auto scalar = [&g](const char *name, const char *desc, double v) {
        g.formula(name, desc, [v] { return v; });
    };
    scalar("entries", "live-points in the library",
           static_cast<double>(lib.numEntries()));
    scalar("bytes", "library file size",
           static_cast<double>(lib.sizeBytes()));
    scalar("total_insts", "retired instructions the pass covered",
           static_cast<double>(lib.totalInsts()));
    scalar("period", "sampling period between live-points",
           static_cast<double>(lib.sampling().period));
    scalar("detail", "measured instructions per window",
           static_cast<double>(lib.sampling().detail));
    scalar("warmup", "detailed warmup instructions per window",
           static_cast<double>(lib.sampling().warmup));
    scalar("build_fingerprint",
           "configFingerprint() of the creation pass's pipeline config",
           static_cast<double>(lib.identity().buildFingerprint));
}

void
registerFarmStats(obs::Group &g, const FarmResult &fr)
{
    auto scalar = [&g](const char *name, const char *desc, double v) {
        g.formula(name, desc, [v] { return v; });
    };
    scalar("windows", "measured windows completed",
           static_cast<double>(fr.windows));
    scalar("measured_insts", "instructions inside measured windows",
           static_cast<double>(fr.measuredInsts));
    scalar("measured_cycles", "cycles inside measured windows",
           static_cast<double>(fr.measuredCycles));
    scalar("warmup_insts", "unmeasured detailed warmup instructions",
           static_cast<double>(fr.warmupInsts));
    scalar("cpi", "ratio-estimated CPI", fr.cpi.mean);
    scalar("cpi_ci", "95% CI half-width of the CPI estimate",
           fr.cpi.halfWidth);
    scalar("ipc", "ratio-estimated IPC", fr.ipc.mean);
    scalar("est_cycles", "whole-program cycle estimate", fr.estCycles());
    if (fr.pairedSpeedup.n) {
        scalar("paired_speedup", "matched-pair partner/measured speedup",
               fr.pairedSpeedup.mean);
        scalar("paired_speedup_ci", "95% CI half-width, matched pairs",
               fr.pairedSpeedup.halfWidth);
        scalar("independent_speedup_ci",
               "95% CI half-width had the estimates been independent",
               fr.independentSpeedup.halfWidth);
    }
    scalar("jobs", "worker threads",
           static_cast<double>(fr.report.jobs));
    scalar("wall_seconds", "farm wall time", fr.report.wallSeconds);
    scalar("jobs_per_sec", "live-point jobs per host second",
           fr.jobsPerSecond());
}

void
StatsAccum::registerStats(obs::Group &root) const
{
    if (hasTiming_) {
        registerPipeStats(root.group("pipeline"), pipe_);
        registerHierarchyStats(root.group("hier"), hier_);
    }
    if (hasProfile_)
        registerProfileStats(root.group("profile"), prof_);
    obs::Group &sg = root.group("sim");
    sg.counterView("runs", "result structs merged into this dump",
                   &runs_);
    sg.counterView("mem_usage_bytes",
                   "peak simulated-memory footprint across runs",
                   &memUsageBytes_);
}

std::string
StatsAccum::statsJsonObject() const
{
    obs::Registry reg;
    registerStats(reg.root());
    std::string body;
    reg.root().dumpJson(body);
    return "{" + body + "}";
}

} // namespace facsim
