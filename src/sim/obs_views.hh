/**
 * @file
 * View registration: publishes the legacy result structs (PipeStats,
 * HierarchyStats, ProfileResult, TimingResult) through the hierarchical
 * stats registry (obs/stats.hh) as *bound views* — registry nodes that
 * read the existing struct fields by pointer at dump time. The structs
 * remain the storage and the hot loop, so every figure/table byte stays
 * identical; the registry adds the dotted-path naming, text/JSON dumps
 * and derived formulas on top.
 *
 * Lifetime rule: a bound struct must outlive every dump of the registry
 * it was registered into, and vectors inside it (hierarchy levels) must
 * not reallocate after registration.
 */

#ifndef FACSIM_SIM_OBS_VIEWS_HH
#define FACSIM_SIM_OBS_VIEWS_HH

#include <string>

#include "cpu/pipeline.hh"
#include "obs/stats.hh"
#include "sim/experiment.hh"
#include "sim/lvpt.hh"

namespace facsim
{

/**
 * Register "cycles", "insts", ..., "fac.*", "stall.*" views over @p st
 * into @p g (conventionally the root's "pipeline" group).
 */
void registerPipeStats(obs::Group &g, const PipeStats &st);

/**
 * Register per-level views over @p hs into @p g (conventionally
 * "hier"): one lowercased subgroup per level ("l1d", "l2") with
 * accesses/misses/writebacks/mshr.*, plus "dram.*" and "tlb.*" when
 * modelled.
 */
void registerHierarchyStats(obs::Group &g, const HierarchyStats &hs);

/**
 * Register profile counters over @p pr into @p g (conventionally
 * "profile"): reference mix, addressing-class fractions, per-config
 * FAC attempt/failure counters and TLB counters.
 */
void registerProfileStats(obs::Group &g, const ProfileResult &pr);

/**
 * Register emulator translation-layer views over @p ts into @p g
 * (conventionally "emu"): block-cache counters plus a
 * "dispatch_engine" scalar (0 = switch, 1 = threaded).
 */
void registerEmulatorStats(obs::Group &g, const EmuTranslationStats &ts,
                           EmuEngine engine);

/**
 * Register the full timing-run schema over @p tr into @p root:
 * "pipeline.*", "hier.*", "emu.*" and "sim.mem_usage_bytes".
 */
void registerTimingStats(obs::Group &root, const TimingResult &tr);

/**
 * Register live-point library identity/shape counters over @p lib into
 * @p g (conventionally "lvpt"): entries, bytes, covered instructions
 * and the sampling parameters the creation pass used. Values are
 * captured at registration time, so @p lib need not outlive the dump.
 */
void registerLvptStats(obs::Group &g, const LvptLibrary &lib);

/**
 * Register farm-sweep counters over @p fr into @p g (conventionally
 * "farm"): window/instruction totals, the CPI/IPC estimates with CI
 * half-widths, matched-pair speedups and host throughput (jobs/sec).
 * Values are captured at registration time.
 */
void registerFarmStats(obs::Group &g, const FarmResult &fr);

/**
 * Accumulator merging many run results into one stats dump — the bench
 * harness path (`--json` emits the merged registry under a "stats"
 * key). Timing runs sum counter-wise; hierarchy levels merge by name;
 * memory usage keeps the maximum.
 */
class StatsAccum
{
  public:
    void add(const TimingResult &r);
    void add(const ProfileResult &r);

    bool empty() const { return !hasTiming_ && !hasProfile_; }
    uint64_t runs() const { return runs_; }

    /** Register everything accumulated so far into @p root. */
    void registerStats(obs::Group &root) const;

    /**
     * Flat stats dump as one JSON object (with braces), the value of a
     * bench line's "stats" key.
     */
    std::string statsJsonObject() const;

  private:
    PipeStats pipe_;
    HierarchyStats hier_;
    ProfileResult prof_;
    uint64_t memUsageBytes_ = 0;
    uint64_t runs_ = 0;
    bool hasTiming_ = false;
    bool hasProfile_ = false;
};

} // namespace facsim

#endif // FACSIM_SIM_OBS_VIEWS_HH
