#include "sim/config.hh"

#include "util/logging.hh"
#include "util/parse.hh"
#include "util/serialize.hh"

namespace facsim
{

PipelineConfig
baselineConfig(uint32_t dcache_block_bytes)
{
    PipelineConfig c;
    c.dcache.blockBytes = dcache_block_bytes;
    return c;
}

FacConfig
facConfigFor(const CacheConfig &dcache, bool speculate_rr,
             bool full_tag_add)
{
    FacConfig f;
    f.blockBits = dcache.blockBits();
    f.setBits = dcache.setBits();
    f.speculateRegReg = speculate_rr;
    f.fullTagAdd = full_tag_add;
    return f;
}

PipelineConfig
facPipelineConfig(uint32_t dcache_block_bytes, bool speculate_rr,
                  bool full_tag_add)
{
    PipelineConfig c = baselineConfig(dcache_block_bytes);
    c.facEnabled = true;
    c.fac = facConfigFor(c.dcache, speculate_rr, full_tag_add);
    return c;
}

HierarchyConfig
paperHierarchy()
{
    return HierarchyConfig{};  // Flat, untracked, free writebacks
}

HierarchyConfig
modernHierarchy()
{
    HierarchyConfig h;
    h.depth = HierarchyDepth::L2;
    h.l1Mshr = MshrConfig{8, true};
    h.l1WbEntries = 4;
    h.l2 = CacheConfig{256 * 1024, 64, 8, 0};
    h.l2HitLatency = 12;
    h.l2Mshr = MshrConfig{16, true};
    h.l2WbEntries = 8;
    h.dram = DramConfig{80, 8};
    return h;
}

HierarchyConfig
hierarchyPreset(const std::string &name)
{
    if (name == "paper")
        return paperHierarchy();
    if (name == "modern")
        return modernHierarchy();
    fatal("unknown hierarchy preset '%s' (expected 'paper' or 'modern')",
          name.c_str());
}

const char *const kPredictorChoices[] = {
    "none", "fac", "stride", "fac+stride", "fac+waymemo",
    "fac+stride+waymemo", nullptr,
};

PipelineConfig
predictorPipelineConfig(const std::string &mode,
                        uint32_t dcache_block_bytes, bool speculate_rr)
{
    unsigned idx = parse::oneOfFlag("--predictor", mode,
                                    kPredictorChoices);
    bool fac = idx == 1 || idx >= 3;
    PipelineConfig c = fac
        ? facPipelineConfig(dcache_block_bytes, speculate_rr)
        : baselineConfig(dcache_block_bytes);
    c.pred.stride = idx == 2 || idx == 3 || idx == 5;
    c.pred.wayMemo = idx == 4 || idx == 5;
    c.pred.validate();
    return c;
}

PipelineConfig
agiConfig(uint32_t dcache_block_bytes)
{
    PipelineConfig c = baselineConfig(dcache_block_bytes);
    c.agiOrganization = true;
    return c;
}

PipelineConfig
oneCycleLoadConfig(uint32_t dcache_block_bytes)
{
    PipelineConfig c = baselineConfig(dcache_block_bytes);
    c.oneCycleLoads = true;
    return c;
}

PipelineConfig
perfectCacheConfig(uint32_t dcache_block_bytes)
{
    PipelineConfig c = baselineConfig(dcache_block_bytes);
    c.perfectDCache = true;
    return c;
}

PipelineConfig
oneCyclePerfectConfig(uint32_t dcache_block_bytes)
{
    PipelineConfig c = baselineConfig(dcache_block_bytes);
    c.oneCycleLoads = true;
    c.perfectDCache = true;
    return c;
}

std::string
describeConfig(const PipelineConfig &c)
{
    std::string s;
    s += strprintf("Fetch:        %u insts/cycle, any contiguous group\n",
                   c.fetchWidth);
    s += strprintf("I-cache:      %uk direct-mapped, %uB blocks, "
                   "%u-cycle miss%s\n",
                   c.icache.sizeBytes / 1024, c.icache.blockBytes,
                   c.icache.missLatency,
                   c.perfectICache ? " (PERFECT)" : "");
    s += strprintf("Branch pred:  %u-entry direct-mapped BTB, 2-bit "
                   "counters, %u-cycle penalty\n",
                   c.btbEntries, c.branchPenalty);
    s += strprintf("Issue:        in-order, %u ops/cycle, out-of-order "
                   "completion, <=%u loads or %u store\n",
                   c.issueWidth, c.maxLoadsPerCycle, c.maxStoresPerCycle);
    s += strprintf("FUs:          %u int ALU, %u ld/st, %u FP add, 1 int "
                   "MUL/DIV, 1 FP MUL/DIV\n",
                   c.numIntAlus, c.numMemUnits, c.numFpAdders);
    s += strprintf("Latency:      ALU %u/1, iMUL %u/1, iDIV %u/%u, "
                   "fADD %u/1, fMUL %u/1, fDIV %u/%u\n",
                   c.intAluLat, c.intMulLat, c.intDivLat, c.intDivLat,
                   c.fpAddLat, c.fpMulLat, c.fpDivLat, c.fpDivLat);
    s += strprintf("D-cache:      %uk direct-mapped, write-back, "
                   "write-alloc, %uB blocks, %u-cycle miss, 2r/1w "
                   "ports%s\n",
                   c.dcache.sizeBytes / 1024, c.dcache.blockBytes,
                   c.dcache.missLatency,
                   c.perfectDCache ? " (PERFECT)" : "");
    if (c.hierarchy.depth == HierarchyDepth::L2) {
        const HierarchyConfig &h = c.hierarchy;
        s += strprintf("L1 MSHRs:     %u entries, secondary misses %s, "
                       "%u writeback slots\n",
                       h.l1Mshr.entries,
                       h.l1Mshr.mergeSecondary ? "merge" : "re-request",
                       h.l1WbEntries);
        s += strprintf("L2:           %uk %u-way unified, %uB blocks, "
                       "%u-cycle hit, %u MSHRs, %u writeback slots\n",
                       h.l2.sizeBytes / 1024, h.l2.assoc, h.l2.blockBytes,
                       h.l2HitLatency, h.l2Mshr.entries, h.l2WbEntries);
        s += strprintf("DRAM:         %u-cycle latency, 1 request / %u "
                       "cycles\n",
                       h.dram.latency, h.dram.issueInterval);
    } else {
        s += "Hierarchy:    flat (L1 miss = fixed latency; paper preset)\n";
    }
    if (c.hierarchy.tlbEnabled) {
        s += strprintf("D-TLB:        %u entries, %uB pages, %u-cycle "
                       "miss penalty\n",
                       c.hierarchy.tlbEntries, c.hierarchy.tlbPageBytes,
                       c.hierarchy.tlbMissPenalty);
    }
    s += strprintf("Store buffer: %u entries, non-merging\n",
                   c.storeBufferEntries);
    s += strprintf("Loads:        %s\n",
                   c.oneCycleLoads ? "1-cycle (idealised)"
                                   : "2-cycle (EX addr calc + MEM access)");
    if (c.agiOrganization)
        s += "Pipeline:     AGI organisation (address-generation stage; "
             "ALU in the cache stage)\n";
    if (c.facEnabled) {
        s += strprintf("FAC:          enabled, B=%u S=%u, %s tag, R+R "
                       "speculation %s, stores %s\n",
                       c.fac.blockBits, c.fac.setBits,
                       c.fac.fullTagAdd ? "full-add" : "OR",
                       c.fac.speculateRegReg ? "on" : "off",
                       c.speculateStores ? "speculated" : "not speculated");
    } else {
        s += "FAC:          disabled\n";
    }
    if (c.pred.stride) {
        s += strprintf("Stride pred:  %u-entry PC-indexed table, "
                       "confidence %u/%u\n",
                       c.pred.strideEntries, c.pred.strideConfThreshold,
                       c.pred.strideConfMax);
    }
    if (c.pred.wayMemo) {
        s += strprintf("Way memo:     %u-entry PC-indexed table, "
                       "mandatory late verify\n",
                       c.pred.wayMemoEntries);
    }
    return s;
}

// Tripwire: configFingerprint() below must hash every timing-relevant
// field of PipelineConfig. If the struct grows (or shrinks), this
// assertion fails and forces whoever changed it to extend the
// fingerprint — silently un-fingerprinted fields would let a checkpoint
// restore into, or a cached result answer for, a *different* machine.
// The byte count is for the one supported ABI (LP64 x86-64/AArch64
// Linux, which is what CI builds); other ABIs skip the check rather
// than pin a second number.
#if defined(__linux__) && defined(__LP64__)
static_assert(sizeof(PipelineConfig) == 220,
              "PipelineConfig changed size: update configFingerprint() "
              "in sim/config.cc (and this tripwire) to cover the new "
              "field set");
#endif

uint64_t
configFingerprint(const PipelineConfig &c)
{
    ser::Writer w;
    w.u32(c.fetchWidth);
    w.u32(c.issueWidth);
    w.u32(c.fetchBufferSize);

    auto cacheCfg = [&](const CacheConfig &cc) {
        w.u32(cc.sizeBytes);
        w.u32(cc.blockBytes);
        w.u32(cc.assoc);
        w.u32(cc.missLatency);
    };
    cacheCfg(c.icache);
    cacheCfg(c.dcache);

    const HierarchyConfig &h = c.hierarchy;
    w.u8(static_cast<uint8_t>(h.depth));
    w.u32(h.l1Mshr.entries);
    w.b(h.l1Mshr.mergeSecondary);
    w.u32(h.l1WbEntries);
    cacheCfg(h.l2);
    w.u32(h.l2HitLatency);
    w.u32(h.l2Mshr.entries);
    w.b(h.l2Mshr.mergeSecondary);
    w.u32(h.l2WbEntries);
    w.u32(h.dram.latency);
    w.u32(h.dram.issueInterval);
    w.b(h.tlbEnabled);
    w.u32(h.tlbEntries);
    w.u32(h.tlbPageBytes);
    w.u32(h.tlbMissPenalty);

    w.u32(c.btbEntries);
    w.u32(c.branchPenalty);
    w.u32(c.storeBufferEntries);
    w.u32(c.maxLoadsPerCycle);
    w.u32(c.maxStoresPerCycle);
    w.u32(c.numIntAlus);
    w.u32(c.numMemUnits);
    w.u32(c.numFpAdders);
    w.u32(c.intAluLat);
    w.u32(c.intMulLat);
    w.u32(c.intDivLat);
    w.u32(c.fpAddLat);
    w.u32(c.fpMulLat);
    w.u32(c.fpDivLat);
    w.u32(c.fpSqrtLat);

    w.b(c.facEnabled);
    w.u32(c.fac.blockBits);
    w.u32(c.fac.setBits);
    w.b(c.fac.fullTagAdd);
    w.b(c.fac.speculateRegReg);
    w.b(c.speculateStores);
    w.b(c.loadsStallOnStoreConflict);
    w.b(c.oneCycleLoads);
    w.b(c.perfectDCache);
    w.b(c.perfectICache);
    w.b(c.agiOrganization);

    w.b(c.pred.stride);
    w.b(c.pred.wayMemo);
    w.u32(c.pred.strideEntries);
    w.u32(c.pred.strideConfMax);
    w.u32(c.pred.strideConfThreshold);
    w.u32(c.pred.wayMemoEntries);

    return ser::fnv1a(w.data().data(), w.data().size());
}

} // namespace facsim
