/**
 * @file
 * Machine: wires one workload build into a runnable simulated system —
 * program assembly, linking (with the policy's software support), heap
 * initialisation and the functional CPU. One Machine corresponds to one
 * program execution; construct a fresh one per simulation run.
 *
 * Thread-safety contract (relied on by sim/runner.hh): constructing and
 * running any number of Machine instances on concurrent threads is
 * safe. Every piece of mutable state — Program, Memory, Rng, Heap,
 * Emulator, and the Pipeline/Profiler driven on top — is owned by one
 * Machine or one experiment: the workload registry and ISA lookup
 * tables are `static const` with thread-safe (C++11 magic-static)
 * initialisation, all randomness flows through the per-Machine Rng
 * seeded from BuildOptions::seed, and logging writes to stderr with no
 * shared buffers. The only mutable globals in the library are the
 * observability controls — the debug-flag set (obs/debug.hh) and the
 * swappable log sink (util/logging.hh) — which must be set before
 * concurrent Machines start running and not changed underneath them.
 * A single Machine must stay confined to one thread at a time.
 */

#ifndef FACSIM_SIM_MACHINE_HH
#define FACSIM_SIM_MACHINE_HH

#include <memory>
#include <string>

#include "cpu/emulator.hh"
#include "runtime/heap.hh"
#include "workloads/registry.hh"

namespace facsim
{

/** How to build a Machine. */
struct BuildOptions
{
    CodeGenPolicy policy = CodeGenPolicy::baseline();
    /** Workload size multiplier (tests use small values). */
    uint64_t scale = 1;
    /** Seed for workload data generation (deterministic runs). */
    uint64_t seed = 0x5eed;
};

/** A fully built, ready-to-run simulated system. */
class Machine
{
  public:
    Machine(const WorkloadInfo &info, const BuildOptions &options);

    /** The functional CPU positioned at the entry point. */
    Emulator &emulator() { return *emu; }
    const Emulator &emulator() const { return *emu; }

    /** Simulated memory (text+data+heap initialised). */
    Memory &memory() { return mem; }
    const Memory &memory() const { return mem; }

    /** The linked program. */
    const Program &program() const { return prog; }

    /** Link results. */
    const LinkedImage &image() const { return img; }

    /** Heap after initialisation. */
    const Heap &heap() const { return *heap_; }

    /**
     * Memory-usage statistic (Tables 3/4): pages touched so far,
     * covering text, static data, heap and stack.
     */
    uint64_t memUsageBytes() const { return mem.memUsageBytes(); }

    /** Workload name this machine was built from (checkpoint identity). */
    const std::string &workloadName() const { return wlName; }

    /** Build options this machine was built with (checkpoint identity). */
    const BuildOptions &buildOptions() const { return opts; }

  private:
    std::string wlName;
    BuildOptions opts;
    Memory mem;
    Program prog;
    Rng rng;
    LinkedImage img;
    std::unique_ptr<Heap> heap_;
    std::unique_ptr<Emulator> emu;
};

} // namespace facsim

#endif // FACSIM_SIM_MACHINE_HH
