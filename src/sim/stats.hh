/**
 * @file
 * Small statistics helpers shared by the bench harnesses: run-time
 * weighted averages (the paper weights its Int-Avg / FP-Avg bars by
 * program run time in cycles) and speedup arithmetic.
 */

#ifndef FACSIM_SIM_STATS_HH
#define FACSIM_SIM_STATS_HH

#include <cstdint>
#include <vector>

namespace facsim
{

/**
 * Weighted arithmetic mean of @p values with @p weights (the paper's
 * run-time weighting). Returns 0 when the weight sum is 0.
 */
double weightedMean(const std::vector<double> &values,
                    const std::vector<double> &weights);

/** Speedup of @p new_cycles relative to @p base_cycles (e.g. 1.19). */
double speedup(uint64_t base_cycles, uint64_t new_cycles);

/** Percent change from @p before to @p after (+/-). */
double pctChange(double before, double after);

/**
 * @p num / @p den with a zero guard — the per-level hit/miss/occupancy
 * ratios the hierarchy benches report. Returns 0 when @p den is 0.
 */
double ratio(uint64_t num, uint64_t den);

/**
 * True iff @p values never increase (within @p tol) along the vector —
 * the monotonicity check the hierarchy ablation applies to FAC speedup
 * as DRAM latency grows.
 */
bool isNonIncreasing(const std::vector<double> &values, double tol = 0.0);

/**
 * Geometric mean of @p values — the conventional average for speedup
 * ratios. Returns 0 when the vector is empty or any value is <= 0 (a
 * zero/negative speedup means a degenerate run; propagating it as 0
 * beats returning NaN from log()).
 */
double geoMean(const std::vector<double> &values);

/**
 * Harmonic mean of @p values — the correct average for rates such as
 * IPC over equal instruction counts. Returns 0 when the vector is
 * empty or any value is <= 0.
 */
double harmonicMean(const std::vector<double> &values);

} // namespace facsim

#endif // FACSIM_SIM_STATS_HH
