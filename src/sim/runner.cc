#include "sim/runner.hh"

namespace facsim
{

void
RunnerReport::merge(const RunnerReport &other)
{
    if (other.jobs > jobs)
        jobs = other.jobs;
    numJobs += other.numJobs;
    wallSeconds += other.wallSeconds;
    simInsts += other.simInsts;
    perJob.insert(perJob.end(), other.perJob.begin(), other.perJob.end());
}

unsigned
resolveJobs(unsigned requested)
{
    if (requested)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

std::vector<ProfileResult>
Runner::runProfiles(const std::vector<ProfileRequest> &reqs,
                    RunnerReport *report)
{
    std::vector<ProfileResult> out(reqs.size());
    RunnerReport rep = forEachIndex(reqs.size(), [&](size_t i) {
        out[i] = runProfile(reqs[i]);
        return out[i].insts;
    });
    if (report)
        *report = std::move(rep);
    return out;
}

std::vector<TimingResult>
Runner::runTimings(const std::vector<TimingRequest> &reqs,
                   RunnerReport *report)
{
    std::vector<TimingResult> out(reqs.size());
    RunnerReport rep = forEachIndex(reqs.size(), [&](size_t i) {
        out[i] = runTiming(reqs[i]);
        // Sampled runs retire most instructions functionally; count
        // them all so throughput reflects program coverage.
        return out[i].sample.enabled ? out[i].sample.totalInsts
                                     : out[i].stats.insts;
    });
    if (report)
        *report = std::move(rep);
    return out;
}

} // namespace facsim
