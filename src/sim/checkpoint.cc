#include "sim/checkpoint.hh"

#include <cstdio>

#include "sim/config.hh"
#include "util/logging.hh"
#include "util/serialize.hh"

namespace facsim
{

namespace
{

const char magic[8] = {'F', 'A', 'C', 'S', 'I', 'M', 'C', 'K'};

void
writeIdentity(ser::Writer &w, const Machine &m, uint64_t pipe_fp)
{
    const BuildOptions &o = m.buildOptions();
    w.str(m.workloadName());
    w.u64(o.scale);
    w.u64(o.seed);
    w.u8(o.policy.softwareSupport ? 1 : 0);
    w.u64(pipe_fp);
}

void
checkIdentity(ser::Reader &r, const Machine &m, uint64_t pipe_fp)
{
    const BuildOptions &o = m.buildOptions();
    std::string wl = r.str();
    uint64_t scale = r.u64();
    uint64_t seed = r.u64();
    uint8_t support = r.u8();
    uint64_t fp = r.u64();

    FACSIM_ASSERT(wl == m.workloadName(),
                  "checkpoint was taken from workload '%s' but this "
                  "machine runs '%s'",
                  wl.c_str(), m.workloadName().c_str());
    FACSIM_ASSERT(scale == o.scale,
                  "checkpoint scale %llu does not match this build's %llu",
                  static_cast<unsigned long long>(scale),
                  static_cast<unsigned long long>(o.scale));
    FACSIM_ASSERT(seed == o.seed,
                  "checkpoint seed 0x%llx does not match this build's 0x%llx",
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(o.seed));
    FACSIM_ASSERT((support != 0) == o.policy.softwareSupport,
                  "checkpoint codegen policy (%s software support) does "
                  "not match this build",
                  support ? "with" : "without");
    FACSIM_ASSERT(fp == pipe_fp,
                  "checkpoint pipeline-config fingerprint %016llx does "
                  "not match this run's %016llx",
                  static_cast<unsigned long long>(fp),
                  static_cast<unsigned long long>(pipe_fp));
}

void
writeFile(const std::string &path, const ser::Writer &w)
{
    // Checksum covers everything before it.
    uint64_t sum = ser::fnv1a(w.data().data(), w.data().size());
    ser::Writer tail;
    tail.u64(sum);

    std::FILE *f = std::fopen(path.c_str(), "wb");
    FACSIM_ASSERT(f, "cannot open checkpoint file '%s' for writing",
                  path.c_str());
    bool ok =
        std::fwrite(w.data().data(), 1, w.data().size(), f) ==
            w.data().size() &&
        std::fwrite(tail.data().data(), 1, tail.data().size(), f) ==
            tail.data().size();
    ok = std::fclose(f) == 0 && ok;
    FACSIM_ASSERT(ok, "short write to checkpoint file '%s'", path.c_str());
}

std::string
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    FACSIM_ASSERT(f, "cannot open checkpoint file '%s'", path.c_str());
    std::string data;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        data.append(buf, n);
    FACSIM_ASSERT(!std::ferror(f), "read error on checkpoint file '%s'",
                  path.c_str());
    std::fclose(f);
    return data;
}

/**
 * Validate container framing (size, magic, version, checksum) and
 * return a Reader positioned just past the magic+version, with the
 * trailing checksum stripped. @p kind_out receives the stored kind.
 */
ser::Reader
openContainer(const std::string &path, const std::string &data,
              CheckpointKind *kind_out)
{
    FACSIM_ASSERT(data.size() >= sizeof(magic) + 4 + 1 + 8,
                  "'%s' is not a facsim checkpoint (only %zu bytes)",
                  path.c_str(), data.size());
    FACSIM_ASSERT(std::memcmp(data.data(), magic, sizeof(magic)) == 0,
                  "'%s' is not a facsim checkpoint (bad magic)",
                  path.c_str());

    size_t body = data.size() - 8;
    uint64_t stored;
    std::memcpy(&stored, data.data() + body, 8);
    uint64_t actual = ser::fnv1a(data.data(), body);
    FACSIM_ASSERT(stored == actual,
                  "checkpoint '%s' is corrupted: checksum %016llx does "
                  "not match stored %016llx",
                  path.c_str(), static_cast<unsigned long long>(actual),
                  static_cast<unsigned long long>(stored));

    ser::Reader r(data.data(), body, "checkpoint");
    char skip[sizeof(magic)];
    r.bytes(skip, sizeof(skip));  // magic, already verified
    uint32_t version = r.u32();
    FACSIM_ASSERT(version == checkpointVersion,
                  "checkpoint '%s' has format version %u; this build "
                  "reads version %u",
                  path.c_str(), version, checkpointVersion);
    uint8_t kind = r.u8();
    FACSIM_ASSERT(kind <= static_cast<uint8_t>(CheckpointKind::Timing),
                  "checkpoint '%s' has unknown kind %u", path.c_str(), kind);
    *kind_out = static_cast<CheckpointKind>(kind);
    return r;
}

void
expectKind(const std::string &path, CheckpointKind got, CheckpointKind want)
{
    FACSIM_ASSERT(got == want,
                  "checkpoint '%s' is a %s checkpoint but a %s restore "
                  "was requested",
                  path.c_str(),
                  got == CheckpointKind::Timing ? "timing" : "functional",
                  want == CheckpointKind::Timing ? "timing" : "functional");
}

} // namespace

CheckpointKind
checkpointKindOf(const std::string &path)
{
    std::string data = readFile(path);
    CheckpointKind kind;
    openContainer(path, data, &kind);
    return kind;
}

void
saveFunctionalCheckpoint(const std::string &path, const Machine &m)
{
    ser::Writer w;
    w.bytes(magic, sizeof(magic));
    w.u32(checkpointVersion);
    w.u8(static_cast<uint8_t>(CheckpointKind::Functional));
    writeIdentity(w, m, 0);
    m.emulator().saveState(w);
    m.memory().saveState(w);
    writeFile(path, w);
}

void
restoreFunctionalCheckpoint(const std::string &path, Machine &m)
{
    std::string data = readFile(path);
    CheckpointKind kind;
    ser::Reader r = openContainer(path, data, &kind);
    expectKind(path, kind, CheckpointKind::Functional);
    checkIdentity(r, m, 0);
    m.emulator().loadState(r);
    m.memory().loadState(r);
    r.expectEnd();
}

void
saveTimingCheckpoint(const std::string &path, const Machine &m,
                     const Pipeline &pipe)
{
    ser::Writer w;
    w.bytes(magic, sizeof(magic));
    w.u32(checkpointVersion);
    w.u8(static_cast<uint8_t>(CheckpointKind::Timing));
    writeIdentity(w, m, configFingerprint(pipe.config()));
    m.emulator().saveState(w);
    m.memory().saveState(w);
    pipe.saveState(w);
    writeFile(path, w);
}

void
restoreTimingCheckpoint(const std::string &path, Machine &m, Pipeline &pipe)
{
    std::string data = readFile(path);
    CheckpointKind kind;
    ser::Reader r = openContainer(path, data, &kind);
    expectKind(path, kind, CheckpointKind::Timing);
    checkIdentity(r, m, configFingerprint(pipe.config()));
    m.emulator().loadState(r);
    m.memory().loadState(r);
    pipe.loadState(r);
    r.expectEnd();
}

} // namespace facsim
