#include "sim/sampling.hh"

#include <cmath>

#include "obs/prof.hh"
#include "util/logging.hh"

namespace facsim
{

void
SamplingConfig::validate() const
{
    if (!enabled())
        return;
    FACSIM_ASSERT(detail >= 1,
                  "sampling: detail window must be at least 1 instruction");
    FACSIM_ASSERT(warmup + detail <= period,
                  "sampling: warmup (%llu) + detail (%llu) must fit in the "
                  "period (%llu)",
                  static_cast<unsigned long long>(warmup),
                  static_cast<unsigned long long>(detail),
                  static_cast<unsigned long long>(period));
}

namespace
{

/**
 * Two-sided 95% Student-t critical values by degrees of freedom
 * (1..29); beyond that the normal approximation is within half a
 * percent.
 */
double
tCrit95(uint64_t dof)
{
    static const double table[] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
        2.228,  2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
        2.093,  2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
        2.048,  2.045,
    };
    if (dof == 0)
        return 0.0;
    if (dof <= sizeof(table) / sizeof(table[0]))
        return table[dof - 1];
    return 1.96;
}

} // namespace

MetricEstimate
estimateMean(const std::vector<double> &samples)
{
    MetricEstimate est;
    est.n = samples.size();
    if (samples.empty())
        return est;

    double sum = 0.0;
    for (double s : samples)
        sum += s;
    est.mean = sum / samples.size();

    if (samples.size() < 2)
        return est;

    double ssq = 0.0;
    for (double s : samples) {
        double d = s - est.mean;
        ssq += d * d;
    }
    double var = ssq / (samples.size() - 1);
    double sem = std::sqrt(var / samples.size());
    est.halfWidth = tCrit95(samples.size() - 1) * sem;
    est.insufficient = false;
    return est;
}

MetricEstimate
ratioEstimate(const std::vector<double> &num, const std::vector<double> &den)
{
    FACSIM_ASSERT(num.size() == den.size(),
                  "ratioEstimate: %zu numerators vs %zu denominators",
                  num.size(), den.size());
    MetricEstimate est;
    est.n = num.size();
    if (num.empty())
        return est;

    double nsum = 0.0, dsum = 0.0;
    for (size_t i = 0; i < num.size(); ++i) {
        nsum += num[i];
        dsum += den[i];
    }
    if (dsum == 0.0)
        return est;
    est.mean = nsum / dsum;

    if (num.size() < 2)
        return est;

    // Ratio-estimator variance: the spread of the per-window residuals
    // num_i - R * den_i, scaled by the mean denominator.
    double dbar = dsum / den.size();
    double ssq = 0.0;
    for (size_t i = 0; i < num.size(); ++i) {
        double resid = num[i] - est.mean * den[i];
        ssq += resid * resid;
    }
    double var = ssq / (num.size() - 1);
    double sem = std::sqrt(var / num.size()) / dbar;
    est.halfWidth = tCrit95(num.size() - 1) * sem;
    est.insufficient = false;
    return est;
}

SampleEstimate
runSampled(Pipeline &pipe, const SamplingConfig &cfg, uint64_t max_insts)
{
    cfg.validate();
    FACSIM_ASSERT(cfg.enabled(), "runSampled called with sampling disabled");
    FACSIM_ASSERT(pipe.currentCycle() == 0 && pipe.stats().insts == 0,
                  "runSampled requires a freshly constructed pipeline");

    SampleEstimate est;
    est.enabled = true;

    std::vector<double> winCycles;
    std::vector<double> winInsts;

    // Total retired instructions = detailed (stats().insts) +
    // fast-forwarded.
    auto total = [&]() {
        return pipe.stats().insts + pipe.fastForwardedInsts();
    };

    while (!pipe.done() && (max_insts == 0 || total() < max_insts)) {
        const uint64_t periodStart = total();

        // Detailed warmup: re-establish the in-flight state, unmeasured.
        // (The run()s below are measured in *detailed* instructions, so
        // targets are expressed against stats().insts.)
        if (cfg.warmup) {
            // Detailed warmup counts toward DetailedWindow host time:
            // it runs the full timing model; only *measurement* is off.
            FACSIM_PROF_SCOPE(DetailedWindow);
            uint64_t i0 = pipe.stats().insts;
            pipe.run(i0 + cfg.warmup);
            est.warmupInsts += pipe.stats().insts - i0;
        }
        if (pipe.done())
            break;

        // Measured window.
        uint64_t i0 = pipe.stats().insts;
        uint64_t c0 = pipe.currentCycle();
        uint64_t di, dc;
        {
            FACSIM_PROF_SCOPE(DetailedWindow);
            pipe.run(i0 + cfg.detail);
            di = pipe.stats().insts - i0;
            dc = pipe.currentCycle() - c0;
        }
        if (di) {
            ++est.windows;
            est.measuredInsts += di;
            est.measuredCycles += dc;
            winCycles.push_back(static_cast<double>(dc));
            winInsts.push_back(static_cast<double>(di));
        }

        // Drain in-flight work (counts as detailed, unmeasured insts).
        {
            FACSIM_PROF_SCOPE(Drain);
            uint64_t preDrain = pipe.stats().insts;
            pipe.drain();
            est.drainInsts += pipe.stats().insts - preDrain;
        }
        if (pipe.done())
            break;

        // Fast-forward the rest of the period with functional warming.
        uint64_t consumed = total() - periodStart;
        if (consumed < cfg.period) {
            FACSIM_PROF_SCOPE(Warmup);
            uint64_t want = cfg.period - consumed;
            if (max_insts && total() + want > max_insts)
                want = max_insts - total();
            est.fastForwardInsts += pipe.fastForward(want);
        }
    }

    est.totalInsts = total();
    est.cpi = ratioEstimate(winCycles, winInsts);
    est.ipc = ratioEstimate(winInsts, winCycles);
    return est;
}

} // namespace facsim
