#include "sim/lvpt.hh"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "sim/config.hh"
#include "util/logging.hh"
#include "util/serialize.hh"

namespace facsim
{

namespace
{

const char magic[8] = {'F', 'A', 'C', 'S', 'I', 'M', 'L', 'V'};

/** Bytes per index record: startInst, offset, size. */
constexpr size_t indexRecordBytes = 24;

std::string
readWholeFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    FACSIM_ASSERT(f, "cannot open live-point library '%s'", path.c_str());
    std::string data;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        data.append(buf, n);
    FACSIM_ASSERT(!std::ferror(f), "read error on live-point library '%s'",
                  path.c_str());
    std::fclose(f);
    return data;
}

} // namespace

uint64_t
warmStateFingerprint(const PipelineConfig &c)
{
    ser::Writer w;
    // Geometry only: everything that shapes the contents of the warmed
    // structures, nothing that merely times them. Miss/hit latencies,
    // MSHR/writeback/DRAM parameters, FAC and issue-width fields are
    // deliberately absent so a baseline and a FAC config (or two
    // latency variants) consume the same library.
    auto cacheGeom = [&](const CacheConfig &cc) {
        w.u32(cc.sizeBytes);
        w.u32(cc.blockBytes);
        w.u32(cc.assoc);
    };
    cacheGeom(c.icache);
    cacheGeom(c.dcache);

    const HierarchyConfig &h = c.hierarchy;
    w.u8(static_cast<uint8_t>(h.depth));
    cacheGeom(h.l2);
    w.b(h.tlbEnabled);
    w.u32(h.tlbEntries);
    w.u32(h.tlbPageBytes);

    w.u32(c.btbEntries);
    // Perfect structures skip warming entirely, so their state differs.
    w.b(c.perfectICache);
    w.b(c.perfectDCache);

    return ser::fnv1a(w.data().data(), w.data().size());
}

BuildOptions
LvptIdentity::buildOptions() const
{
    BuildOptions b;
    b.policy = softwareSupport ? CodeGenPolicy::withSupport()
                               : CodeGenPolicy::baseline();
    b.scale = scale;
    b.seed = seed;
    return b;
}

LvptBuildResult
buildLvptLibrary(const std::string &path, const LvptBuildRequest &req)
{
    FACSIM_ASSERT(req.sampling.enabled(),
                  "live-point library needs a sampling period "
                  "(--sample-period)");
    req.sampling.validate();

    Machine m(workload(req.workload), req.build);
    Pipeline pipe(req.pipe, m.emulator());

    // One blob per sample unit: architectural state plus the warmed
    // structures, taken where the unit's detailed warmup begins. The
    // pipeline only ever fast-forwards here, so it is quiescent at
    // every snapshot (the saveWarmState precondition).
    std::vector<std::pair<uint64_t, std::string>> blobs;
    auto total = [&]() { return pipe.fastForwardedInsts(); };
    while (!pipe.done() && (req.maxInsts == 0 || total() < req.maxInsts)) {
        ser::Writer ew;
        m.emulator().saveState(ew);
        m.memory().saveState(ew);
        pipe.saveWarmState(ew);
        blobs.emplace_back(total(), ew.data());

        uint64_t want = req.sampling.period;
        if (req.maxInsts && total() + want > req.maxInsts)
            want = req.maxInsts - total();
        if (pipe.fastForward(want) == 0)
            break;
    }

    // Compose the container: header, index, blobs, checksum trailer.
    ser::Writer w;
    w.bytes(magic, sizeof(magic));
    w.u32(lvptLibraryVersion);
    w.str(m.workloadName());
    w.u64(req.build.scale);
    w.u64(req.build.seed);
    w.u8(req.build.policy.softwareSupport ? 1 : 0);
    w.u64(warmStateFingerprint(req.pipe));
    w.u64(configFingerprint(req.pipe));
    w.u64(req.sampling.period);
    w.u64(req.sampling.detail);
    w.u64(req.sampling.warmup);
    w.u64(total());
    w.u64(blobs.size());

    uint64_t offset = w.data().size() + indexRecordBytes * blobs.size();
    for (const auto &b : blobs) {
        w.u64(b.first);
        w.u64(offset);
        w.u64(b.second.size());
        offset += b.second.size();
    }
    for (const auto &b : blobs)
        w.bytes(b.second.data(), b.second.size());

    uint64_t sum = ser::fnv1a(w.data().data(), w.data().size());
    ser::Writer tail;
    tail.u64(sum);

    std::FILE *f = std::fopen(path.c_str(), "wb");
    FACSIM_ASSERT(f, "cannot open live-point library '%s' for writing",
                  path.c_str());
    bool ok =
        std::fwrite(w.data().data(), 1, w.data().size(), f) ==
            w.data().size() &&
        std::fwrite(tail.data().data(), 1, tail.data().size(), f) ==
            tail.data().size();
    ok = std::fclose(f) == 0 && ok;
    FACSIM_ASSERT(ok, "short write to live-point library '%s'",
                  path.c_str());

    LvptBuildResult res;
    res.entries = blobs.size();
    res.totalInsts = total();
    res.libraryBytes = w.data().size() + tail.data().size();
    return res;
}

LvptLibrary::LvptLibrary(const std::string &path)
    : path_(path), data_(readWholeFile(path))
{
    FACSIM_ASSERT(data_.size() >= sizeof(magic) + 4 + 8,
                  "'%s' is not a facsim live-point library (only %zu "
                  "bytes)", path_.c_str(), data_.size());
    FACSIM_ASSERT(std::memcmp(data_.data(), magic, sizeof(magic)) == 0,
                  "'%s' is not a facsim live-point library (bad magic)",
                  path_.c_str());

    size_t body = data_.size() - 8;
    uint64_t stored;
    std::memcpy(&stored, data_.data() + body, 8);
    uint64_t actual = ser::fnv1a(data_.data(), body);
    FACSIM_ASSERT(stored == actual,
                  "live-point library '%s' is corrupted: checksum %016llx "
                  "does not match stored %016llx",
                  path_.c_str(), static_cast<unsigned long long>(actual),
                  static_cast<unsigned long long>(stored));

    ser::Reader r(data_.data(), body, "live-point library");
    char skip[sizeof(magic)];
    r.bytes(skip, sizeof(skip));
    uint32_t version = r.u32();
    FACSIM_ASSERT(version == lvptLibraryVersion,
                  "live-point library '%s' has stale format version %u; "
                  "this build reads version %u — rebuild it with mklib",
                  path_.c_str(), version, lvptLibraryVersion);

    id_.workload = r.str();
    id_.scale = r.u64();
    id_.seed = r.u64();
    id_.softwareSupport = r.u8() != 0;
    id_.warmFingerprint = r.u64();
    id_.buildFingerprint = r.u64();
    sampling_.period = r.u64();
    sampling_.detail = r.u64();
    sampling_.warmup = r.u64();
    totalInsts_ = r.u64();

    uint64_t count = r.u64();
    FACSIM_ASSERT(count * indexRecordBytes <= data_.size(),
                  "live-point library '%s' has a truncated index: %llu "
                  "entries indexed but the file holds %zu bytes",
                  path_.c_str(), static_cast<unsigned long long>(count),
                  data_.size());
    entries_.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        Entry e;
        e.startInst = r.u64();
        e.offset = r.u64();
        e.size = r.u64();
        entries_.push_back(e);
    }
}

uint64_t
LvptLibrary::entryStartInst(size_t i) const
{
    FACSIM_ASSERT(i < entries_.size(),
                  "live-point %zu requested but '%s' has %zu entries", i,
                  path_.c_str(), entries_.size());
    return entries_[i].startInst;
}

void
LvptLibrary::restoreEntry(size_t i, Machine &m, Pipeline &pipe) const
{
    FACSIM_ASSERT(i < entries_.size(),
                  "live-point %zu requested but '%s' has %zu entries", i,
                  path_.c_str(), entries_.size());

    const BuildOptions &o = m.buildOptions();
    FACSIM_ASSERT(id_.workload == m.workloadName(),
                  "live-point library '%s' was cut from workload '%s' "
                  "but this machine runs '%s'",
                  path_.c_str(), id_.workload.c_str(),
                  m.workloadName().c_str());
    FACSIM_ASSERT(id_.scale == o.scale && id_.seed == o.seed &&
                      id_.softwareSupport == o.policy.softwareSupport,
                  "live-point library '%s' build identity (scale %llu, "
                  "seed 0x%llx, %s software support) does not match this "
                  "machine",
                  path_.c_str(),
                  static_cast<unsigned long long>(id_.scale),
                  static_cast<unsigned long long>(id_.seed),
                  id_.softwareSupport ? "with" : "without");
    uint64_t fp = warmStateFingerprint(pipe.config());
    FACSIM_ASSERT(fp == id_.warmFingerprint,
                  "live-point library '%s' warm-structure fingerprint "
                  "%016llx does not match this pipeline's %016llx "
                  "(cache/TLB/BTB geometry must match the mklib run)",
                  path_.c_str(),
                  static_cast<unsigned long long>(id_.warmFingerprint),
                  static_cast<unsigned long long>(fp));

    const Entry &e = entries_[i];
    // The 8-byte trailer is not addressable payload.
    FACSIM_ASSERT(e.size > 0 && e.offset + e.size <= data_.size() - 8,
                  "live-point entry %zu of '%s' is missing or out of "
                  "bounds (offset %llu + %llu bytes vs %zu-byte file)",
                  i, path_.c_str(),
                  static_cast<unsigned long long>(e.offset),
                  static_cast<unsigned long long>(e.size), data_.size());

    ser::Reader r(data_.data() + e.offset, e.size, "live-point entry");
    m.emulator().loadState(r);
    m.memory().loadState(r);
    pipe.loadWarmState(r);
    r.expectEnd();
}

FarmResult
runFarm(const LvptLibrary &lib, const FarmRequest &req)
{
    size_t n = lib.numEntries();
    if (req.maxEntries && req.maxEntries < n)
        n = req.maxEntries;

    // Per-entry measurement slots, written by the workers and folded in
    // entry order afterwards — the jobs=N determinism guarantee.
    struct Win
    {
        uint64_t cyc = 0, ins = 0;
        uint64_t pcyc = 0, pins = 0;
        uint64_t warm = 0;
    };
    std::vector<Win> wins(n);

    const LvptIdentity &id = lib.identity();
    const SamplingConfig &s = lib.sampling();
    const WorkloadInfo &wl = workload(id.workload);

    FarmResult out;
    Runner runner(req.jobs);
    out.report = runner.forEachIndex(n, [&](size_t i) -> uint64_t {
        // One Machine per job; both configs of a matched pair restore
        // the same live-point into it, so they measure the same window
        // from the same warm state.
        Machine m(wl, id.buildOptions());
        uint64_t detailed = 0;
        auto measure = [&](const PipelineConfig &cfg, uint64_t *cyc,
                           uint64_t *ins, bool primary) {
            Pipeline pipe(cfg, m.emulator());
            lib.restoreEntry(i, m, pipe);
            if (s.warmup)
                pipe.run(s.warmup);
            if (primary)
                wins[i].warm = pipe.stats().insts;
            uint64_t i0 = pipe.stats().insts;
            uint64_t c0 = pipe.currentCycle();
            if (!pipe.done())
                pipe.run(i0 + s.detail);
            *ins = pipe.stats().insts - i0;
            *cyc = pipe.currentCycle() - c0;
            detailed += pipe.stats().insts;
        };
        measure(req.pipe, &wins[i].cyc, &wins[i].ins, true);
        if (req.matchedPair)
            measure(req.partner, &wins[i].pcyc, &wins[i].pins, false);
        return detailed;
    });

    std::vector<double> cyc, ins, pcyc, pins, pairBase, pairMine;
    for (const Win &w : wins) {
        if (w.ins) {
            ++out.windows;
            out.measuredInsts += w.ins;
            out.measuredCycles += w.cyc;
            out.warmupInsts += w.warm;
            cyc.push_back(static_cast<double>(w.cyc));
            ins.push_back(static_cast<double>(w.ins));
        }
        if (req.matchedPair && w.pins) {
            pcyc.push_back(static_cast<double>(w.pcyc));
            pins.push_back(static_cast<double>(w.pins));
        }
        if (req.matchedPair && w.ins && w.pins) {
            pairBase.push_back(static_cast<double>(w.pcyc));
            pairMine.push_back(static_cast<double>(w.cyc));
        }
    }
    out.cpi = ratioEstimate(cyc, ins);
    out.ipc = ratioEstimate(ins, cyc);
    out.totalInsts = lib.totalInsts();

    if (req.matchedPair) {
        out.partnerCpi = ratioEstimate(pcyc, pins);
        // Paired: per-window partner/measured cycle ratio through the
        // ratio estimator — correlated window difficulty cancels.
        out.pairedSpeedup = ratioEstimate(pairBase, pairMine);
        // Independent: the two CPI estimates ratioed, relative CI
        // half-widths added in quadrature (what two unrelated sampled
        // runs of the same budget would report).
        MetricEstimate &ind = out.independentSpeedup;
        if (out.cpi.mean > 0.0) {
            ind.mean = out.partnerCpi.mean / out.cpi.mean;
            ind.n = std::min(out.cpi.n, out.partnerCpi.n);
            ind.insufficient =
                out.cpi.insufficient || out.partnerCpi.insufficient;
            if (!ind.insufficient) {
                double rel = std::sqrt(
                    out.cpi.relHalfWidth() * out.cpi.relHalfWidth() +
                    out.partnerCpi.relHalfWidth() *
                        out.partnerCpi.relHalfWidth());
                ind.halfWidth = ind.mean * rel;
            }
        }
    }
    return out;
}

} // namespace facsim
