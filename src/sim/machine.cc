#include "sim/machine.hh"

#include "link/linker.hh"

namespace facsim
{

Machine::Machine(const WorkloadInfo &info, const BuildOptions &options)
    : wlName(info.name), opts(options), rng(options.seed)
{
    AsmBuilder as(prog);
    WorkloadContext ctx(as, options.policy, rng, options.scale);
    info.build(ctx);

    Linker linker(options.policy.link);
    img = linker.link(prog, mem);

    heap_ = std::make_unique<Heap>(img.heapBase, options.policy.heap);
    InitContext ictx{mem, *heap_, prog, img, rng};
    ctx.runInits(ictx);

    emu = std::make_unique<Emulator>(prog, mem, img,
                                     options.policy.stack.initialSp());
}

} // namespace facsim
