/**
 * @file
 * Canonical simulator configurations: the Table 5 baseline machine and
 * the fast-address-calculation variants evaluated in Section 5.
 */

#ifndef FACSIM_SIM_CONFIG_HH
#define FACSIM_SIM_CONFIG_HH

#include <string>

#include "cpu/pipeline.hh"

namespace facsim
{

/** The Table 5 baseline 4-way superscalar (no fast address calculation). */
PipelineConfig baselineConfig(uint32_t dcache_block_bytes = 32);

/**
 * Baseline plus fast address calculation.
 *
 * @param dcache_block_bytes 16 or 32 (the two block sizes of Figure 6).
 * @param speculate_rr enable register+register mode speculation.
 * @param full_tag_add full addition in the tag field (Section 3.1).
 */
PipelineConfig facPipelineConfig(uint32_t dcache_block_bytes = 32,
                                 bool speculate_rr = true,
                                 bool full_tag_add = true);

/** Section 6 comparison: the AGI pipeline organisation. */
PipelineConfig agiConfig(uint32_t dcache_block_bytes = 32);

/** Figure 2 idealisation: loads complete in one cycle. */
PipelineConfig oneCycleLoadConfig(uint32_t dcache_block_bytes = 32);
/** Figure 2 idealisation: no data-cache miss penalty. */
PipelineConfig perfectCacheConfig(uint32_t dcache_block_bytes = 32);
/** Figure 2 idealisation: both of the above. */
PipelineConfig oneCyclePerfectConfig(uint32_t dcache_block_bytes = 32);

/** FacConfig matching a data-cache geometry. */
FacConfig facConfigFor(const CacheConfig &dcache, bool speculate_rr = true,
                       bool full_tag_add = true);

/** Render the Table 5 parameter listing for a configuration. */
std::string describeConfig(const PipelineConfig &config);

} // namespace facsim

#endif // FACSIM_SIM_CONFIG_HH
