/**
 * @file
 * Canonical simulator configurations: the Table 5 baseline machine and
 * the fast-address-calculation variants evaluated in Section 5.
 */

#ifndef FACSIM_SIM_CONFIG_HH
#define FACSIM_SIM_CONFIG_HH

#include <string>

#include "cpu/pipeline.hh"

namespace facsim
{

/** The Table 5 baseline 4-way superscalar (no fast address calculation). */
PipelineConfig baselineConfig(uint32_t dcache_block_bytes = 32);

/**
 * Baseline plus fast address calculation.
 *
 * @param dcache_block_bytes 16 or 32 (the two block sizes of Figure 6).
 * @param speculate_rr enable register+register mode speculation.
 * @param full_tag_add full addition in the tag field (Section 3.1).
 */
PipelineConfig facPipelineConfig(uint32_t dcache_block_bytes = 32,
                                 bool speculate_rr = true,
                                 bool full_tag_add = true);

/** Section 6 comparison: the AGI pipeline organisation. */
PipelineConfig agiConfig(uint32_t dcache_block_bytes = 32);

/** Figure 2 idealisation: loads complete in one cycle. */
PipelineConfig oneCycleLoadConfig(uint32_t dcache_block_bytes = 32);
/** Figure 2 idealisation: no data-cache miss penalty. */
PipelineConfig perfectCacheConfig(uint32_t dcache_block_bytes = 32);
/** Figure 2 idealisation: both of the above. */
PipelineConfig oneCyclePerfectConfig(uint32_t dcache_block_bytes = 32);

/** FacConfig matching a data-cache geometry. */
FacConfig facConfigFor(const CacheConfig &dcache, bool speculate_rr = true,
                       bool full_tag_add = true);

/**
 * Accepted `--predictor=` spellings, nullptr-terminated for
 * parse::oneOfFlag: none, fac, stride, fac+stride, fac+waymemo,
 * fac+stride+waymemo.
 */
extern const char *const kPredictorChoices[];

/**
 * Pipeline configuration for one predictor-zoo mode (see
 * cpu/load_predictor.hh). "none" is the baseline machine, "fac" is
 * facPipelineConfig() exactly, the other modes layer the PC-indexed
 * stride predictor and/or way memoization on top. Dies with a usage
 * message for any spelling not in kPredictorChoices.
 */
PipelineConfig predictorPipelineConfig(const std::string &mode,
                                       uint32_t dcache_block_bytes = 32,
                                       bool speculate_rr = true);

/**
 * Flat single-level memory hierarchy — the paper's machine (Table 5):
 * every L1 miss costs `dcache.missLatency` cycles, misses are unbounded
 * and untracked, writebacks are free. This is the default in
 * `PipelineConfig`; results are bit-identical to the pre-hierarchy
 * simulator.
 */
HierarchyConfig paperHierarchy();

/**
 * A deeper, contemporary hierarchy under the same 16 KB L1: 256 KB
 * 8-way unified L2 (64 B blocks, 12-cycle L1-miss-to-data), 8 L1 MSHRs
 * with secondary-miss merging, 4 L1 writeback-buffer slots, 16 L2
 * MSHRs, 8 L2 writeback slots, and an 80-cycle DRAM that can start one
 * request every 8 cycles.
 */
HierarchyConfig modernHierarchy();

/** Look up a hierarchy preset by name ("paper" or "modern"). */
HierarchyConfig hierarchyPreset(const std::string &name);

/** Render the Table 5 parameter listing for a configuration. */
std::string describeConfig(const PipelineConfig &config);

/**
 * Fingerprint of every timing-relevant PipelineConfig field. One hash
 * identifies one experiment configuration across the whole system:
 * timing checkpoints embed it so a restore into a differently
 * configured pipeline fails loudly (sim/checkpoint.hh), live-point
 * libraries record the configuration that cut them (sim/lvpt.hh), and
 * the experiment-serving result cache keys on it (serve/cache.hh).
 *
 * Covering every field is enforced by a sizeof tripwire in
 * sim/config.cc: growing PipelineConfig without extending this
 * function is a compile error.
 */
uint64_t configFingerprint(const PipelineConfig &cfg);

} // namespace facsim

#endif // FACSIM_SIM_CONFIG_HH
