#include "sim/stats.hh"

#include <cmath>

#include "util/logging.hh"

namespace facsim
{

double
weightedMean(const std::vector<double> &values,
             const std::vector<double> &weights)
{
    FACSIM_ASSERT(values.size() == weights.size(),
                  "weightedMean size mismatch");
    double num = 0.0, den = 0.0;
    for (size_t i = 0; i < values.size(); ++i) {
        num += values[i] * weights[i];
        den += weights[i];
    }
    return den != 0.0 ? num / den : 0.0;
}

double
speedup(uint64_t base_cycles, uint64_t new_cycles)
{
    return new_cycles
        ? static_cast<double>(base_cycles) / static_cast<double>(new_cycles)
        : 0.0;
}

double
pctChange(double before, double after)
{
    return before != 0.0 ? (after - before) / before * 100.0 : 0.0;
}

double
ratio(uint64_t num, uint64_t den)
{
    return den ? static_cast<double>(num) / static_cast<double>(den) : 0.0;
}

double
geoMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            return 0.0;
        logSum += std::log(v);
    }
    return std::exp(logSum / static_cast<double>(values.size()));
}

double
harmonicMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double invSum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            return 0.0;
        invSum += 1.0 / v;
    }
    return static_cast<double>(values.size()) / invSum;
}

bool
isNonIncreasing(const std::vector<double> &values, double tol)
{
    for (size_t i = 1; i < values.size(); ++i) {
        if (values[i] > values[i - 1] + tol)
            return false;
    }
    return true;
}

} // namespace facsim
