#include "sim/request_codec.hh"

namespace facsim
{

namespace
{

// Sanity cap for every decoded vector: a frame or cache file claiming
// more elements than this is corrupt or hostile, not a real sweep.
constexpr uint64_t maxVectorLen = 4096;

bool
vectorLen(ser::TryReader &r, uint64_t *n, const char *what)
{
    *n = r.u64();
    if (r.ok() && *n > maxVectorLen)
        r.fail(std::string("unreasonable ") + what + " count");
    return r.ok();
}

// --- shared nested structures ---------------------------------------

void
encodeCodeGenPolicy(ser::Writer &w, const CodeGenPolicy &p)
{
    w.b(p.softwareSupport);
    w.b(p.link.alignGlobalPointer);
    w.b(p.link.alignStatics);
    w.u32(p.link.maxStaticAlign);
    w.b(p.link.alignArraysToSize);
    w.u32(p.link.largeAlignCap);
    w.u32(p.stack.spAlign);
    w.u32(p.stack.maxFrameAlign);
    w.b(p.stack.explicitAlignBigFrames);
    w.u32(p.heap.minAlign);
    w.b(p.heap.roundSizes);
    w.b(p.heap.alignToSize);
    w.u32(p.heap.largeAlignCap);
    w.b(p.roundStructs);
    w.u32(p.structPadCap);
    w.b(p.sortFrameScalars);
}

void
decodeCodeGenPolicy(ser::TryReader &r, CodeGenPolicy *p)
{
    p->softwareSupport = r.b();
    p->link.alignGlobalPointer = r.b();
    p->link.alignStatics = r.b();
    p->link.maxStaticAlign = r.u32();
    p->link.alignArraysToSize = r.b();
    p->link.largeAlignCap = r.u32();
    p->stack.spAlign = r.u32();
    p->stack.maxFrameAlign = r.u32();
    p->stack.explicitAlignBigFrames = r.b();
    p->heap.minAlign = r.u32();
    p->heap.roundSizes = r.b();
    p->heap.alignToSize = r.b();
    p->heap.largeAlignCap = r.u32();
    p->roundStructs = r.b();
    p->structPadCap = r.u32();
    p->sortFrameScalars = r.b();
}

void
encodeBuildOptions(ser::Writer &w, const BuildOptions &b)
{
    encodeCodeGenPolicy(w, b.policy);
    w.u64(b.scale);
    w.u64(b.seed);
}

void
decodeBuildOptions(ser::TryReader &r, BuildOptions *b)
{
    decodeCodeGenPolicy(r, &b->policy);
    b->scale = r.u64();
    b->seed = r.u64();
}

void
encodeFacConfig(ser::Writer &w, const FacConfig &f)
{
    w.u32(f.blockBits);
    w.u32(f.setBits);
    w.b(f.fullTagAdd);
    w.b(f.speculateRegReg);
}

void
decodeFacConfig(ser::TryReader &r, FacConfig *f)
{
    f->blockBits = r.u32();
    f->setBits = r.u32();
    f->fullTagAdd = r.b();
    f->speculateRegReg = r.b();
}

void
encodeCacheConfig(ser::Writer &w, const CacheConfig &c)
{
    w.u32(c.sizeBytes);
    w.u32(c.blockBytes);
    w.u32(c.assoc);
    w.u32(c.missLatency);
}

void
decodeCacheConfig(ser::TryReader &r, CacheConfig *c)
{
    c->sizeBytes = r.u32();
    c->blockBytes = r.u32();
    c->assoc = r.u32();
    c->missLatency = r.u32();
}

void
encodePipelineConfig(ser::Writer &w, const PipelineConfig &c)
{
    w.u32(c.fetchWidth);
    w.u32(c.issueWidth);
    w.u32(c.fetchBufferSize);
    encodeCacheConfig(w, c.icache);
    encodeCacheConfig(w, c.dcache);

    const HierarchyConfig &h = c.hierarchy;
    w.u8(static_cast<uint8_t>(h.depth));
    w.u32(h.l1Mshr.entries);
    w.b(h.l1Mshr.mergeSecondary);
    w.u32(h.l1WbEntries);
    encodeCacheConfig(w, h.l2);
    w.u32(h.l2HitLatency);
    w.u32(h.l2Mshr.entries);
    w.b(h.l2Mshr.mergeSecondary);
    w.u32(h.l2WbEntries);
    w.u32(h.dram.latency);
    w.u32(h.dram.issueInterval);
    w.b(h.tlbEnabled);
    w.u32(h.tlbEntries);
    w.u32(h.tlbPageBytes);
    w.u32(h.tlbMissPenalty);

    w.u32(c.btbEntries);
    w.u32(c.branchPenalty);
    w.u32(c.storeBufferEntries);
    w.u32(c.maxLoadsPerCycle);
    w.u32(c.maxStoresPerCycle);
    w.u32(c.numIntAlus);
    w.u32(c.numMemUnits);
    w.u32(c.numFpAdders);
    w.u32(c.intAluLat);
    w.u32(c.intMulLat);
    w.u32(c.intDivLat);
    w.u32(c.fpAddLat);
    w.u32(c.fpMulLat);
    w.u32(c.fpDivLat);
    w.u32(c.fpSqrtLat);

    w.b(c.facEnabled);
    encodeFacConfig(w, c.fac);
    w.b(c.speculateStores);
    w.b(c.loadsStallOnStoreConflict);
    w.b(c.oneCycleLoads);
    w.b(c.perfectDCache);
    w.b(c.perfectICache);
    w.b(c.agiOrganization);

    w.b(c.pred.stride);
    w.b(c.pred.wayMemo);
    w.u32(c.pred.strideEntries);
    w.u32(c.pred.strideConfMax);
    w.u32(c.pred.strideConfThreshold);
    w.u32(c.pred.wayMemoEntries);
}

void
decodePipelineConfig(ser::TryReader &r, PipelineConfig *c)
{
    c->fetchWidth = r.u32();
    c->issueWidth = r.u32();
    c->fetchBufferSize = r.u32();
    decodeCacheConfig(r, &c->icache);
    decodeCacheConfig(r, &c->dcache);

    HierarchyConfig &h = c->hierarchy;
    uint8_t depth = r.u8();
    if (r.ok() && depth > static_cast<uint8_t>(HierarchyDepth::L2)) {
        r.fail("unknown hierarchy depth");
        return;
    }
    h.depth = static_cast<HierarchyDepth>(depth);
    h.l1Mshr.entries = r.u32();
    h.l1Mshr.mergeSecondary = r.b();
    h.l1WbEntries = r.u32();
    decodeCacheConfig(r, &h.l2);
    h.l2HitLatency = r.u32();
    h.l2Mshr.entries = r.u32();
    h.l2Mshr.mergeSecondary = r.b();
    h.l2WbEntries = r.u32();
    h.dram.latency = r.u32();
    h.dram.issueInterval = r.u32();
    h.tlbEnabled = r.b();
    h.tlbEntries = r.u32();
    h.tlbPageBytes = r.u32();
    h.tlbMissPenalty = r.u32();

    c->btbEntries = r.u32();
    c->branchPenalty = r.u32();
    c->storeBufferEntries = r.u32();
    c->maxLoadsPerCycle = r.u32();
    c->maxStoresPerCycle = r.u32();
    c->numIntAlus = r.u32();
    c->numMemUnits = r.u32();
    c->numFpAdders = r.u32();
    c->intAluLat = r.u32();
    c->intMulLat = r.u32();
    c->intDivLat = r.u32();
    c->fpAddLat = r.u32();
    c->fpMulLat = r.u32();
    c->fpDivLat = r.u32();
    c->fpSqrtLat = r.u32();

    c->facEnabled = r.b();
    decodeFacConfig(r, &c->fac);
    c->speculateStores = r.b();
    c->loadsStallOnStoreConflict = r.b();
    c->oneCycleLoads = r.b();
    c->perfectDCache = r.b();
    c->perfectICache = r.b();
    c->agiOrganization = r.b();

    c->pred.stride = r.b();
    c->pred.wayMemo = r.b();
    c->pred.strideEntries = r.u32();
    c->pred.strideConfMax = r.u32();
    c->pred.strideConfThreshold = r.u32();
    c->pred.wayMemoEntries = r.u32();
}

void
encodeMetricEstimate(ser::Writer &w, const MetricEstimate &m)
{
    w.f64(m.mean);
    w.f64(m.halfWidth);
    w.u64(m.n);
    w.b(m.insufficient);
}

void
decodeMetricEstimate(ser::TryReader &r, MetricEstimate *m)
{
    m->mean = r.f64();
    m->halfWidth = r.f64();
    m->n = r.u64();
    m->insufficient = r.b();
}

void
encodeOffsetHistogram(ser::Writer &w, const OffsetHistogram &h)
{
    for (uint64_t b : h.buckets)
        w.u64(b);
    w.u64(h.total);
}

void
decodeOffsetHistogram(ser::TryReader &r, OffsetHistogram *h)
{
    for (uint64_t &b : h->buckets)
        b = r.u64();
    h->total = r.u64();
}

void
encodeMshrStats(ser::Writer &w, const MshrStats &m)
{
    w.u64(m.allocations);
    w.u64(m.merges);
    w.u64(m.fullStallCycles);
    w.u32(m.maxOccupancy);
    w.u64(m.occupancySum);
}

void
decodeMshrStats(ser::TryReader &r, MshrStats *m)
{
    m->allocations = r.u64();
    m->merges = r.u64();
    m->fullStallCycles = r.u64();
    m->maxOccupancy = r.u32();
    m->occupancySum = r.u64();
}

} // namespace

// --- requests -------------------------------------------------------

void
encodeProfileRequest(ser::Writer &w, const ProfileRequest &req)
{
    w.str(req.workload);
    encodeBuildOptions(w, req.build);
    w.u64(req.facConfigs.size());
    for (const FacConfig &f : req.facConfigs)
        encodeFacConfig(w, f);
    w.u64(req.ltbConfigs.size());
    for (const LtbRequest &l : req.ltbConfigs) {
        w.u32(l.entries);
        w.u8(static_cast<uint8_t>(l.policy));
    }
    w.b(req.withTlb);
    w.u64(req.maxInsts);
}

bool
decodeProfileRequest(ser::TryReader &r, ProfileRequest *req)
{
    req->workload = r.str();
    decodeBuildOptions(r, &req->build);
    uint64_t n;
    if (!vectorLen(r, &n, "FAC config"))
        return false;
    req->facConfigs.resize(n);
    for (FacConfig &f : req->facConfigs)
        decodeFacConfig(r, &f);
    if (!vectorLen(r, &n, "LTB config"))
        return false;
    req->ltbConfigs.resize(n);
    for (LtbRequest &l : req->ltbConfigs) {
        l.entries = r.u32();
        uint8_t pol = r.u8();
        if (r.ok() && pol > static_cast<uint8_t>(LtbPolicy::Stride)) {
            r.fail("unknown LTB policy");
            return false;
        }
        l.policy = static_cast<LtbPolicy>(pol);
    }
    req->withTlb = r.b();
    req->maxInsts = r.u64();
    return r.ok();
}

void
encodeTimingRequest(ser::Writer &w, const TimingRequest &req)
{
    w.str(req.workload);
    encodeBuildOptions(w, req.build);
    encodePipelineConfig(w, req.pipe);
    w.u64(req.maxInsts);
    w.u64(req.sampling.period);
    w.u64(req.sampling.detail);
    w.u64(req.sampling.warmup);
    // trace / historyRing deliberately absent (see request_codec.hh).
}

bool
decodeTimingRequest(ser::TryReader &r, TimingRequest *req)
{
    req->workload = r.str();
    decodeBuildOptions(r, &req->build);
    decodePipelineConfig(r, &req->pipe);
    req->maxInsts = r.u64();
    req->sampling.period = r.u64();
    req->sampling.detail = r.u64();
    req->sampling.warmup = r.u64();
    return r.ok();
}

// --- results --------------------------------------------------------

void
encodeProfileResult(ser::Writer &w, const ProfileResult &res)
{
    w.u64(res.insts);
    w.u64(res.loads);
    w.u64(res.stores);
    w.f64(res.fracGlobal);
    w.f64(res.fracStack);
    w.f64(res.fracGeneral);
    for (const OffsetHistogram &h : res.offsets)
        encodeOffsetHistogram(w, h);
    w.u64(res.fac.size());
    for (const FacProfile &f : res.fac) {
        encodeFacConfig(w, f.config);
        w.u64(f.loadAttempts);
        w.u64(f.loadFailures);
        w.u64(f.storeAttempts);
        w.u64(f.storeFailures);
        w.u64(f.loadFailuresNoRR);
        w.u64(f.storeFailuresNoRR);
        w.u64(f.loadsNoRR);
        w.u64(f.storesNoRR);
        for (uint64_t c : f.causeCounts)
            w.u64(c);
    }
    w.u64(res.ltb.size());
    for (const LtbProfile &l : res.ltb) {
        w.u32(l.entries);
        w.u8(static_cast<uint8_t>(l.policy));
        w.u64(l.attempts);
        w.u64(l.correct);
    }
    w.f64(res.tlbMissRatio);
    w.u64(res.tlbAccesses);
    w.u64(res.tlbMisses);
    w.u64(res.memUsageBytes);
}

bool
decodeProfileResult(ser::TryReader &r, ProfileResult *res)
{
    res->insts = r.u64();
    res->loads = r.u64();
    res->stores = r.u64();
    res->fracGlobal = r.f64();
    res->fracStack = r.f64();
    res->fracGeneral = r.f64();
    for (OffsetHistogram &h : res->offsets)
        decodeOffsetHistogram(r, &h);
    uint64_t n;
    if (!vectorLen(r, &n, "FAC profile"))
        return false;
    res->fac.resize(n);
    for (FacProfile &f : res->fac) {
        decodeFacConfig(r, &f.config);
        f.loadAttempts = r.u64();
        f.loadFailures = r.u64();
        f.storeAttempts = r.u64();
        f.storeFailures = r.u64();
        f.loadFailuresNoRR = r.u64();
        f.storeFailuresNoRR = r.u64();
        f.loadsNoRR = r.u64();
        f.storesNoRR = r.u64();
        for (uint64_t &c : f.causeCounts)
            c = r.u64();
    }
    if (!vectorLen(r, &n, "LTB profile"))
        return false;
    res->ltb.resize(n);
    for (LtbProfile &l : res->ltb) {
        l.entries = r.u32();
        uint8_t pol = r.u8();
        if (r.ok() && pol > static_cast<uint8_t>(LtbPolicy::Stride)) {
            r.fail("unknown LTB policy");
            return false;
        }
        l.policy = static_cast<LtbPolicy>(pol);
        l.attempts = r.u64();
        l.correct = r.u64();
    }
    res->tlbMissRatio = r.f64();
    res->tlbAccesses = r.u64();
    res->tlbMisses = r.u64();
    res->memUsageBytes = r.u64();
    return r.ok();
}

void
encodeTimingResult(ser::Writer &w, const TimingResult &res)
{
    const PipeStats &s = res.stats;
    w.u64(s.cycles);
    w.u64(s.insts);
    w.u64(s.loads);
    w.u64(s.stores);
    w.u64(s.icacheAccesses);
    w.u64(s.icacheMisses);
    w.u64(s.dcacheAccesses);
    w.u64(s.dcacheMisses);
    w.u64(s.btbLookups);
    w.u64(s.btbMispredicts);
    w.u64(s.loadsSpeculated);
    w.u64(s.loadSpecFailures);
    w.u64(s.storesSpeculated);
    w.u64(s.storeSpecFailures);
    w.u64(s.extraAccesses);
    w.u64(s.storeBufferFullStalls);
    w.u64(s.stallFetch);
    w.u64(s.stallData);
    w.u64(s.stallStructural);
    w.u64(s.stallStoreBuffer);
    w.u64(s.strideSpeculated);
    w.u64(s.strideSpecFailures);
    w.u64(s.predRecoveryCycles);
    w.u64(s.wayMemoTagReadsSaved);
    w.u64(s.wayMemoStale);

    const HierarchyStats &h = res.hier;
    w.u64(h.levels.size());
    for (const LevelStats &lv : h.levels) {
        w.str(lv.name);
        w.u64(lv.accesses);
        w.u64(lv.misses);
        w.u64(lv.writebacks);
        w.f64(lv.missRatio);
        encodeMshrStats(w, lv.mshr);
        w.u64(lv.wbFullStallCycles);
    }
    w.b(h.hasDram);
    w.u64(h.dram.reads);
    w.u64(h.dram.writes);
    w.u64(h.dram.queuedCycles);
    w.u64(h.dram.busyCycles);
    w.u64(h.tlbAccesses);
    w.u64(h.tlbMisses);

    w.u64(res.memUsageBytes);

    const SampleEstimate &e = res.sample;
    w.b(e.enabled);
    w.u64(e.windows);
    w.u64(e.measuredInsts);
    w.u64(e.measuredCycles);
    w.u64(e.warmupInsts);
    w.u64(e.drainInsts);
    w.u64(e.fastForwardInsts);
    w.u64(e.totalInsts);
    encodeMetricEstimate(w, e.cpi);
    encodeMetricEstimate(w, e.ipc);

    w.u64(res.emu.blocksTranslated);
    w.u64(res.emu.blockCacheHits);
    w.u64(res.emu.blockCacheMisses);
    w.u64(res.emu.superblockChains);
    w.u8(static_cast<uint8_t>(res.emuEngine));
}

bool
decodeTimingResult(ser::TryReader &r, TimingResult *res)
{
    PipeStats &s = res->stats;
    s.cycles = r.u64();
    s.insts = r.u64();
    s.loads = r.u64();
    s.stores = r.u64();
    s.icacheAccesses = r.u64();
    s.icacheMisses = r.u64();
    s.dcacheAccesses = r.u64();
    s.dcacheMisses = r.u64();
    s.btbLookups = r.u64();
    s.btbMispredicts = r.u64();
    s.loadsSpeculated = r.u64();
    s.loadSpecFailures = r.u64();
    s.storesSpeculated = r.u64();
    s.storeSpecFailures = r.u64();
    s.extraAccesses = r.u64();
    s.storeBufferFullStalls = r.u64();
    s.stallFetch = r.u64();
    s.stallData = r.u64();
    s.stallStructural = r.u64();
    s.stallStoreBuffer = r.u64();
    s.strideSpeculated = r.u64();
    s.strideSpecFailures = r.u64();
    s.predRecoveryCycles = r.u64();
    s.wayMemoTagReadsSaved = r.u64();
    s.wayMemoStale = r.u64();

    HierarchyStats &h = res->hier;
    uint64_t n;
    if (!vectorLen(r, &n, "hierarchy level"))
        return false;
    h.levels.resize(n);
    for (LevelStats &lv : h.levels) {
        lv.name = r.str();
        lv.accesses = r.u64();
        lv.misses = r.u64();
        lv.writebacks = r.u64();
        lv.missRatio = r.f64();
        decodeMshrStats(r, &lv.mshr);
        lv.wbFullStallCycles = r.u64();
    }
    h.hasDram = r.b();
    h.dram.reads = r.u64();
    h.dram.writes = r.u64();
    h.dram.queuedCycles = r.u64();
    h.dram.busyCycles = r.u64();
    h.tlbAccesses = r.u64();
    h.tlbMisses = r.u64();

    res->memUsageBytes = r.u64();

    SampleEstimate &e = res->sample;
    e.enabled = r.b();
    e.windows = r.u64();
    e.measuredInsts = r.u64();
    e.measuredCycles = r.u64();
    e.warmupInsts = r.u64();
    e.drainInsts = r.u64();
    e.fastForwardInsts = r.u64();
    e.totalInsts = r.u64();
    decodeMetricEstimate(r, &e.cpi);
    decodeMetricEstimate(r, &e.ipc);

    res->emu.blocksTranslated = r.u64();
    res->emu.blockCacheHits = r.u64();
    res->emu.blockCacheMisses = r.u64();
    res->emu.superblockChains = r.u64();
    uint8_t eng = r.u8();
    if (r.ok() && eng > static_cast<uint8_t>(EmuEngine::Threaded)) {
        r.fail("unknown emulator engine");
        return false;
    }
    res->emuEngine = static_cast<EmuEngine>(eng);
    return r.ok();
}

uint64_t
workloadFingerprint(const std::string &workload, const BuildOptions &build)
{
    ser::Writer w;
    w.str(workload);
    encodeBuildOptions(w, build);
    return ser::fnv1a(w.data().data(), w.data().size());
}

} // namespace facsim
