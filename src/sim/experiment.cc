#include "sim/experiment.hh"

#include "obs/prof.hh"

namespace facsim
{

ProfileResult
runProfile(const ProfileRequest &req)
{
    Machine machine(workload(req.workload), req.build);

    Profiler prof;
    for (const FacConfig &fc : req.facConfigs)
        prof.addFacConfig(fc);
    for (const LtbRequest &lr : req.ltbConfigs)
        prof.addLtbConfig(lr.entries, lr.policy);
    if (req.withTlb)
        prof.enableTlb();

    Emulator &emu = machine.emulator();
    ExecRecord rec;
    while (emu.step(&rec)) {
        prof.observe(rec);
        if (req.maxInsts && prof.insts() >= req.maxInsts)
            break;
    }

    ProfileResult res;
    res.insts = prof.insts();
    res.loads = prof.loads();
    res.stores = prof.stores();
    res.fracGlobal = prof.loadFrac(RefClass::Global);
    res.fracStack = prof.loadFrac(RefClass::Stack);
    res.fracGeneral = prof.loadFrac(RefClass::General);
    res.offsets[0] = prof.offsets(RefClass::Global);
    res.offsets[1] = prof.offsets(RefClass::Stack);
    res.offsets[2] = prof.offsets(RefClass::General);
    for (size_t i = 0; i < prof.numFacConfigs(); ++i)
        res.fac.push_back(prof.fac(i));
    for (size_t i = 0; i < prof.numLtbConfigs(); ++i)
        res.ltb.push_back(prof.ltb(i));
    res.tlbMissRatio = prof.tlbMissRatio();
    res.tlbAccesses = prof.tlbAccesses();
    res.tlbMisses = prof.tlbMisses();
    res.memUsageBytes = machine.memUsageBytes();
    return res;
}

TimingResult
runTiming(const TimingRequest &req)
{
    Machine machine(workload(req.workload), req.build);
    Pipeline pipe(req.pipe, machine.emulator());

    std::unique_ptr<obs::OpenTrace> trace = obs::openTrace(req.trace);
    if (trace)
        pipe.setTrace(trace->sink.get(), req.trace.start, req.trace.count);
    if (req.historyRing)
        pipe.enableHistoryRing(req.historyRing);

    TimingResult res;
    if (req.sampling.enabled()) {
        res.sample = runSampled(pipe, req.sampling, req.maxInsts);
        res.stats = pipe.stats();
    } else {
        FACSIM_PROF_SCOPE(DetailedWindow);
        res.stats = pipe.run(req.maxInsts);
    }
    res.hier = pipe.hierarchyStats();
    res.memUsageBytes = machine.memUsageBytes();
    res.emu = machine.emulator().translationStats();
    res.emuEngine = machine.emulator().engine();
    return res;
}

} // namespace facsim
