/**
 * @file
 * Architectural checkpoints: save a running simulation to a file and
 * resume it later, bit-identically.
 *
 * Two checkpoint kinds share one container format:
 *
 *  - *functional*: the Emulator's architectural state (registers, FP
 *    registers, condition code, PC, instruction count) plus the touched
 *    pages of simulated Memory. Restoring positions a freshly built
 *    Machine exactly where the saved one was.
 *  - *timing*: the functional state plus the complete Pipeline timing
 *    state — statistics, clocks, the fetch buffer and in-flight store
 *    patches, scoreboards, functional units, I-cache/BTB/store-buffer
 *    and the whole data hierarchy (tags, MSHRs, writeback buffers,
 *    DRAM channel, TLB). In-flight MSHR/writeback/DRAM state is stored
 *    as absolute completion cycles and the cycle counter itself is
 *    saved, so no drain or quiescence point is required: a save is
 *    legal at any cycle boundary and the resumed run replays the
 *    remaining cycles bit-identically.
 *
 * Container: magic "FACSIMCK", a format version, the checkpoint kind,
 * an identity header (workload name, scale, seed, codegen-policy
 * marker, and for timing checkpoints a fingerprint of the
 * PipelineConfig), the state sections, and a trailing FNV-1a 64
 * checksum over everything before it. The loader rejects — with a
 * clear fatal message — files that are not checkpoints, truncated or
 * corrupted files, unknown versions, kind mismatches, and checkpoints
 * taken from a different workload/build/pipeline configuration.
 */

#ifndef FACSIM_SIM_CHECKPOINT_HH
#define FACSIM_SIM_CHECKPOINT_HH

#include <cstdint>
#include <string>

#include "cpu/pipeline.hh"
#include "sim/machine.hh"

namespace facsim
{

/**
 * Container format version written by this build. v2: FetchedInst
 * serializes its fetch cycle and the pipeline its dynamic-sequence
 * counter (observability-layer per-instruction records).
 */
constexpr uint32_t checkpointVersion = 2;

/** What a checkpoint file contains. */
enum class CheckpointKind : uint8_t
{
    Functional = 0,  ///< Emulator + Memory
    Timing = 1,      ///< Functional plus the full Pipeline state
};

// Timing checkpoints embed configFingerprint(cfg) (sim/config.hh) so a
// restore into a differently configured pipeline fails loudly instead
// of silently desynchronising. The fingerprint lives in sim/config
// because the live-point library and the experiment-serving result
// cache key on the same hash.

/** Save the machine's functional state to @p path (fatal on I/O error). */
void saveFunctionalCheckpoint(const std::string &path, const Machine &m);

/**
 * Restore a functional checkpoint into @p m, which must have been built
 * from the same workload/scale/seed/policy (fatal otherwise).
 */
void restoreFunctionalCheckpoint(const std::string &path, Machine &m);

/** Save functional + timing state (fatal on I/O error). */
void saveTimingCheckpoint(const std::string &path, const Machine &m,
                          const Pipeline &pipe);

/**
 * Restore a timing checkpoint into @p m / @p pipe. The machine must
 * match the checkpoint identity and the pipeline must be configured
 * identically to the one that saved it (fatal otherwise).
 */
void restoreTimingCheckpoint(const std::string &path, Machine &m,
                             Pipeline &pipe);

/** Kind recorded in a checkpoint file (validates container + checksum). */
CheckpointKind checkpointKindOf(const std::string &path);

} // namespace facsim

#endif // FACSIM_SIM_CHECKPOINT_HH
