/**
 * @file
 * Live-point library: TurboSMARTSim-style materialized sample units.
 *
 * A SMARTS sampled run (sim/sampling.hh) spends almost all of its wall
 * clock fast-forwarding between measurement windows, and that cost is
 * inherently serial — window k+1's warm state depends on everything
 * before it. A *live-point library* pays that cost exactly once per
 * workload: a single functional-warming pass over the program writes
 * one checkpoint per sample unit ("live-point"), each carrying the
 * architectural state (Emulator registers + touched Memory pages) plus
 * the warmed large structures (I-cache, data hierarchy, BTB) at the
 * point where that unit's detailed warmup would begin. Afterwards,
 * every sample unit is an independent millisecond-scale job: restore,
 * run `warmup` unmeasured detailed instructions, measure `detail`
 * instructions, record the (cycles, insts) pair. A multi-config sweep
 * becomes an embarrassingly parallel farm over library entries —
 * out-of-order across entries and configs — with results aggregated by
 * the same ratio estimator the serial sampler uses.
 *
 * Identity and versioning: a library is keyed on the workload identity
 * (name, scale, seed, codegen-policy marker — the same fields as
 * sim/checkpoint.hh) plus a *warm-structure fingerprint* over only the
 * geometry that shapes the warmed state (cache/TLB/BTB organisation).
 * Timing-only knobs — FAC speculation, latencies, issue widths — are
 * deliberately excluded, so one library serves every config of a
 * fig6-style sweep that shares the structure geometry. In particular
 * the baseline and the FAC machine consume the *same* entries, which
 * enables *matched-pair* comparison: both configs measure the same
 * program windows from the same warm state, so per-window cost
 * differences cancel the window-to-window workload variation and the
 * speedup CI comes out far narrower than two independent estimates.
 *
 * Container: magic "FACSIMLV", a library format version, the identity
 * header, the sampling parameters the pass used, the entry index
 * (start instruction, offset, size per entry), the entry blobs, and a
 * trailing FNV-1a 64 checksum. The loader rejects non-libraries,
 * corrupted or truncated files and stale versions up front; per-entry
 * framing is validated when the entry is restored, so a damaged entry
 * fails loudly mid-farm with its index in the message.
 */

#ifndef FACSIM_SIM_LVPT_HH
#define FACSIM_SIM_LVPT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/pipeline.hh"
#include "sim/machine.hh"
#include "sim/runner.hh"
#include "sim/sampling.hh"

namespace facsim
{

/**
 * Library format version written by this build. v2: the identity header
 * additionally records configFingerprint() of the full PipelineConfig
 * that ran the creation pass, so tooling can tell *which* timing config
 * cut a library even though any geometry-compatible config may consume
 * it.
 */
constexpr uint32_t lvptLibraryVersion = 2;

/**
 * Fingerprint of the PipelineConfig fields that shape the functionally
 * warmed structures: cache/hierarchy/TLB geometry, BTB size and the
 * perfect-structure idealisations. Timing-only fields (FAC, latencies,
 * widths) are excluded so differently-timed configs share a library.
 */
uint64_t warmStateFingerprint(const PipelineConfig &cfg);

/** Who a library belongs to (mirrors the checkpoint identity header). */
struct LvptIdentity
{
    std::string workload;
    uint64_t scale = 1;
    uint64_t seed = 0;
    bool softwareSupport = false;
    uint64_t warmFingerprint = 0;
    /**
     * configFingerprint() of the full PipelineConfig the creation pass
     * ran with. Informational: restores match on warmFingerprint (any
     * geometry-compatible timing config may consume the library), but
     * the full fingerprint identifies the originating configuration in
     * stats dumps and provenance checks.
     */
    uint64_t buildFingerprint = 0;

    /** BuildOptions reproducing the machine the library was cut from. */
    BuildOptions buildOptions() const;
};

/** Inputs for the one-time library-creation pass. */
struct LvptBuildRequest
{
    std::string workload;
    BuildOptions build;
    /** Supplies the warm-structure geometry (timing fields ignored). */
    PipelineConfig pipe;
    /** Sample-unit spacing and per-window parameters (period >= 1). */
    SamplingConfig sampling;
    /** Stop after this many retired instructions (0 = whole program). */
    uint64_t maxInsts = 0;
};

/** Outputs of the creation pass (host accounting for the snapshot). */
struct LvptBuildResult
{
    uint64_t entries = 0;
    uint64_t totalInsts = 0;
    uint64_t libraryBytes = 0;
};

/**
 * Fast-forward @p req.workload with functional warming and write one
 * live-point per sampling period to @p path. Fatal on I/O errors and
 * incoherent parameters.
 */
LvptBuildResult buildLvptLibrary(const std::string &path,
                                 const LvptBuildRequest &req);

/** A validated, memory-resident live-point library. */
class LvptLibrary
{
  public:
    /**
     * Read and validate @p path: container framing, checksum, format
     * version and index bounds. Fatal with a clear diagnostic on any
     * mismatch. Entry payloads are validated on restore.
     */
    explicit LvptLibrary(const std::string &path);

    const std::string &path() const { return path_; }
    const LvptIdentity &identity() const { return id_; }
    /** Sampling parameters the creation pass used. */
    const SamplingConfig &sampling() const { return sampling_; }
    /** Retired instructions the creation pass covered. */
    uint64_t totalInsts() const { return totalInsts_; }
    size_t numEntries() const { return entries_.size(); }
    /** Retired-instruction position of entry @p i's window start. */
    uint64_t entryStartInst(size_t i) const;
    /** On-disk size of the library file. */
    uint64_t sizeBytes() const { return data_.size(); }

    /**
     * Restore entry @p i into @p m (architectural state) and @p pipe
     * (warm structures). @p m must have been built from identity(); @p
     * pipe must be freshly constructed with a config whose
     * warmStateFingerprint matches. Fatal — naming the entry — when the
     * entry's framing is damaged or its payload does not parse.
     */
    void restoreEntry(size_t i, Machine &m, Pipeline &pipe) const;

  private:
    struct Entry
    {
        uint64_t startInst;
        uint64_t offset;  ///< absolute file offset of the payload
        uint64_t size;    ///< payload bytes
    };

    std::string path_;
    std::string data_;  ///< whole file (entries are page-sized)
    LvptIdentity id_;
    SamplingConfig sampling_;
    uint64_t totalInsts_ = 0;
    std::vector<Entry> entries_;
};

/** Inputs for a farm sweep over one library. */
struct FarmRequest
{
    /** The measured configuration (fingerprint must match the library). */
    PipelineConfig pipe;
    /**
     * Matched-pair mode: also measure this partner config from every
     * live-point and estimate the paired speedup partner/measured.
     */
    PipelineConfig partner;
    bool matchedPair = false;
    /** Worker threads (0 = all hardware threads). */
    unsigned jobs = 1;
    /** Restore only the first N entries (0 = all; smoke/test hook). */
    size_t maxEntries = 0;
};

/** Aggregated outputs of one farm sweep. */
struct FarmResult
{
    /** Windows that measured at least one instruction. */
    uint64_t windows = 0;
    uint64_t measuredInsts = 0;
    uint64_t measuredCycles = 0;
    uint64_t warmupInsts = 0;

    /** Ratio estimates over the measured windows. */
    MetricEstimate cpi;
    MetricEstimate ipc;

    /** Matched-pair partner estimates (matchedPair only). */
    MetricEstimate partnerCpi;
    /**
     * Paired speedup partner/measured: the per-window cycle ratio fed
     * through the ratio estimator, so correlated window difficulty
     * cancels out of the CI.
     */
    MetricEstimate pairedSpeedup;
    /**
     * The same speedup from the two *independent* CPI estimates, CI
     * propagated in quadrature — what two unrelated sampled runs would
     * report. Kept for the matched-pair-narrowing comparison.
     */
    MetricEstimate independentSpeedup;

    /** Whole-program extrapolation base (library totalInsts). */
    uint64_t totalInsts = 0;
    /** Host accounting (jobs, wall seconds, per-job times). */
    RunnerReport report;

    double estCycles() const { return cpi.mean * totalInsts; }
    /** Farm throughput: live-point jobs per host second. */
    double
    jobsPerSecond() const
    {
        return report.wallSeconds > 0.0
            ? static_cast<double>(report.numJobs) / report.wallSeconds
            : 0.0;
    }
};

/**
 * Measure every library entry under @p req (out-of-order across the
 * worker pool; aggregation is in entry order, so results are bitwise
 * identical for any job count).
 */
FarmResult runFarm(const LvptLibrary &lib, const FarmRequest &req);

} // namespace facsim

#endif // FACSIM_SIM_LVPT_HH
