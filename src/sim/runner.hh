/**
 * @file
 * Parallel experiment runner: fans a batch of independent simulation
 * jobs (ProfileRequest / TimingRequest, or any indexed callable) across
 * a fixed-size pool of host threads.
 *
 * Guarantees:
 *  - *Determinism*: results are returned in submission order, and every
 *    job builds its own Machine from an explicit seed, so a batch run
 *    with N threads is bitwise-identical to the same batch run with 1
 *    (verified by tests/test_runner.cc).
 *  - *Exception propagation*: a throwing job does not take down the
 *    pool; after all jobs finish, the exception of the earliest failed
 *    job (in submission order) is rethrown on the calling thread.
 *  - *Accounting*: per-job host wall time and simulated-instruction
 *    counts are collected into a RunnerReport, along with the batch
 *    wall time and the aggregate simulated-instructions-per-host-second
 *    rate (the fleet-level throughput metric the bench harnesses emit).
 *
 * Thread-safety contract: jobs must not share mutable state. Machine
 * and everything below it (Emulator, Pipeline, Profiler, Memory, Rng)
 * are instance-local, so one Machine per job is safe. The library's
 * mutable globals are the observability controls only — the debug-flag
 * set (obs/debug.hh) and the diagnostic log sink (util/logging.hh) —
 * both of which must be configured before worker threads start and
 * left alone while a batch runs; the panic-context hook is
 * thread-local, so per-job Pipelines enabling the history ring on
 * different workers never race. Everything else is `static const`
 * lookup tables with thread-safe initialisation. Note that
 * fatal()/panic() terminate the whole process regardless of which
 * thread calls them — configuration errors are not recoverable
 * per-job.
 */

#ifndef FACSIM_SIM_RUNNER_HH
#define FACSIM_SIM_RUNNER_HH

#include <atomic>
#include <chrono>
#include <exception>
#include <thread>
#include <vector>

#include "sim/experiment.hh"

namespace facsim
{

/** Host-side measurements for one job. */
struct JobStats
{
    double wallSeconds = 0.0;
    uint64_t simInsts = 0;
};

/** Host-side measurements for one batch (or several merged batches). */
struct RunnerReport
{
    /** Worker threads used. */
    unsigned jobs = 1;
    /** Jobs executed. */
    size_t numJobs = 0;
    /** Batch wall time (max over merged batches' serial sum). */
    double wallSeconds = 0.0;
    /** Total simulated instructions across all jobs. */
    uint64_t simInsts = 0;
    /** Per-job stats, in submission order. */
    std::vector<JobStats> perJob;

    /** Aggregate simulated instructions per host second. */
    double
    simInstsPerHostSecond() const
    {
        return wallSeconds > 0.0
            ? static_cast<double>(simInsts) / wallSeconds : 0.0;
    }

    /** Fold another batch into this report (batches ran back-to-back). */
    void merge(const RunnerReport &other);
};

/** Resolve a --jobs style value: 0 means "all hardware threads". */
unsigned resolveJobs(unsigned requested);

/** Fixed-size thread-pool runner for independent simulation jobs. */
class Runner
{
  public:
    /** @param jobs worker threads; 0 = all hardware threads. */
    explicit Runner(unsigned jobs = 0) : jobs_(resolveJobs(jobs)) {}

    unsigned jobs() const { return jobs_; }

    /**
     * Run @p fn(i) for every i in [0, n) on the pool. @p fn returns the
     * job's simulated instruction count (uint64_t). Results must be
     * written by the callable into per-index slots; the runner itself
     * only orders and accounts.
     */
    template <class Fn>
    RunnerReport
    forEachIndex(size_t n, Fn &&fn)
    {
        using clock = std::chrono::steady_clock;
        RunnerReport rep;
        rep.numJobs = n;
        rep.perJob.resize(n);
        unsigned workers = jobs_;
        if (n < workers)
            workers = n ? static_cast<unsigned>(n) : 1;
        rep.jobs = workers;

        std::vector<std::exception_ptr> errors(n);
        std::atomic<size_t> next{0};
        auto t0 = clock::now();
        auto worker = [&]() {
            for (;;) {
                size_t i = next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                auto js = clock::now();
                try {
                    rep.perJob[i].simInsts = fn(i);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
                rep.perJob[i].wallSeconds =
                    std::chrono::duration<double>(clock::now() - js)
                        .count();
            }
        };

        if (workers <= 1) {
            worker();
        } else {
            std::vector<std::thread> pool;
            pool.reserve(workers);
            for (unsigned t = 0; t < workers; ++t)
                pool.emplace_back(worker);
            for (std::thread &t : pool)
                t.join();
        }

        rep.wallSeconds =
            std::chrono::duration<double>(clock::now() - t0).count();
        for (const JobStats &j : rep.perJob)
            rep.simInsts += j.simInsts;
        // Earliest failure in submission order wins, deterministically.
        for (size_t i = 0; i < n; ++i) {
            if (errors[i])
                std::rethrow_exception(errors[i]);
        }
        return rep;
    }

    /** Run a batch of profile experiments; results in request order. */
    std::vector<ProfileResult>
    runProfiles(const std::vector<ProfileRequest> &reqs,
                RunnerReport *report = nullptr);

    /** Run a batch of timing experiments; results in request order. */
    std::vector<TimingResult>
    runTimings(const std::vector<TimingRequest> &reqs,
               RunnerReport *report = nullptr);

  private:
    unsigned jobs_;
};

} // namespace facsim

#endif // FACSIM_SIM_RUNNER_HH
