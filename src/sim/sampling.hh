/**
 * @file
 * SMARTS-style systematic sampling for the timing pipeline.
 *
 * A sampled run alternates *fast-forward* intervals — the functional
 * Emulator executes alone while the large structures (I-cache, BTB,
 * D-cache tags, L2, TLB) are kept warm through their counter-free warm()
 * interfaces — with short *detailed windows* measured by the full
 * cycle-level Pipeline. Each period of `period` instructions contributes
 * one window: `warmup` instructions of unmeasured detailed simulation to
 * re-establish the small in-flight state (fetch buffer, scoreboards,
 * store buffer), then `detail` measured instructions, then an explicit
 * drain so no timing state leaks into the next gap.
 *
 * Per-window CPI samples feed a CLT estimate: the reported mean carries a
 * 95% confidence half-width that shrinks as 1/sqrt(n) with the window
 * count, which is what tests/test_sampling.cc verifies statistically.
 */

#ifndef FACSIM_SIM_SAMPLING_HH
#define FACSIM_SIM_SAMPLING_HH

#include <cstdint>
#include <vector>

#include "cpu/pipeline.hh"

namespace facsim
{

/** Systematic-sampling parameters (instruction counts). */
struct SamplingConfig
{
    /** Sampling period U; 0 disables sampling entirely. */
    uint64_t period = 0;
    /** Measured (detailed) instructions per period. */
    uint64_t detail = 1000;
    /** Unmeasured detailed warmup instructions before each window. */
    uint64_t warmup = 2000;

    bool enabled() const { return period != 0; }

    /**
     * Die with a usage message unless the parameters are coherent:
     * detail >= 1 and warmup + detail <= period.
     */
    void validate() const;
};

/** A sample-mean estimate with its 95% confidence interval. */
struct MetricEstimate
{
    double mean = 0.0;
    /** Half-width of the 95% CI (0 when n < 2). */
    double halfWidth = 0.0;
    /** Number of samples behind the estimate. */
    uint64_t n = 0;
    /**
     * True when no CI could be computed: fewer than 2 samples leave the
     * Student-t variance with 0 degrees of freedom (and an all-zero
     * denominator leaves the ratio undefined). The mean is still the
     * best point estimate, but halfWidth = 0 must not be read as "the
     * estimate is exact" — consumers report the CI as unavailable.
     */
    bool insufficient = true;

    /** True when @p value lies inside the confidence interval. */
    bool
    covers(double value) const
    {
        return value >= mean - halfWidth && value <= mean + halfWidth;
    }
    /** Relative CI half-width (0 when the mean is 0). */
    double
    relHalfWidth() const
    {
        return mean != 0.0 ? halfWidth / mean : 0.0;
    }
};

/**
 * Mean and 95% CI of @p samples: Student-t critical values for n <= 30,
 * the normal z = 1.96 beyond (CLT).
 */
MetricEstimate estimateMean(const std::vector<double> &samples);

/**
 * Estimate for the ratio sum(num)/sum(den) of paired per-window samples,
 * with the CI propagated from the per-window ratio spread.
 */
MetricEstimate ratioEstimate(const std::vector<double> &num,
                             const std::vector<double> &den);

/** Outputs of one sampled run. */
struct SampleEstimate
{
    bool enabled = false;
    /** Measurement windows completed. */
    uint64_t windows = 0;

    /** Instructions/cycles inside measured windows only. */
    uint64_t measuredInsts = 0;
    uint64_t measuredCycles = 0;
    /** Unmeasured detailed instructions (warmup + drain tails). */
    uint64_t warmupInsts = 0;
    uint64_t drainInsts = 0;
    /** Instructions executed functionally between windows. */
    uint64_t fastForwardInsts = 0;
    /** Every instruction the program retired, measured or not. */
    uint64_t totalInsts = 0;

    /** Per-window cycles-per-instruction estimate (the primary metric). */
    MetricEstimate cpi;
    /** Per-window instructions-per-cycle estimate. */
    MetricEstimate ipc;

    /** Whole-program cycle estimate: mean CPI scaled to every inst. */
    double estCycles() const { return cpi.mean * totalInsts; }
    /** Fraction of retired instructions simulated in detail. */
    double
    detailFraction() const
    {
        uint64_t det = measuredInsts + warmupInsts + drainInsts;
        return totalInsts ? static_cast<double>(det) / totalInsts : 0.0;
    }
};

/**
 * Run @p pipe to completion (or @p max_insts total retired instructions,
 * fast-forwarded ones included) under systematic sampling @p cfg. The
 * pipeline must be freshly constructed (cycle 0). The pipeline's own
 * stats() afterwards cover only the detailed (warmup+measured+drain)
 * instructions; the estimate extrapolates to the whole program.
 */
SampleEstimate runSampled(Pipeline &pipe, const SamplingConfig &cfg,
                          uint64_t max_insts = 0);

} // namespace facsim

#endif // FACSIM_SIM_SAMPLING_HH
