/**
 * @file
 * Experiment runners: the two measurement modes every bench is built
 * from. A *profile* run drives the functional CPU through the Profiler
 * (reference behaviour, prediction failure rates, TLB — Tables 1/3/4 and
 * Figure 3); a *timing* run drives the cycle-level Pipeline (IPC,
 * speedups, bandwidth — Figures 2/6, Tables 3/4/6).
 */

#ifndef FACSIM_SIM_EXPERIMENT_HH
#define FACSIM_SIM_EXPERIMENT_HH

#include <string>
#include <vector>

#include "cpu/pipeline.hh"
#include "cpu/profiler.hh"
#include "obs/trace.hh"
#include "sim/machine.hh"
#include "sim/sampling.hh"

namespace facsim
{

/** One load-target-buffer configuration to evaluate during a profile. */
struct LtbRequest
{
    unsigned entries = 1024;
    LtbPolicy policy = LtbPolicy::LastAddress;
};

/** Inputs for a profile run. */
struct ProfileRequest
{
    std::string workload;
    BuildOptions build;
    /** Predictor configurations to evaluate simultaneously. */
    std::vector<FacConfig> facConfigs;
    /** Load-target-buffer configurations (Section 6 comparison). */
    std::vector<LtbRequest> ltbConfigs;
    /** Model the 64-entry data TLB of Section 5.4. */
    bool withTlb = false;
    /** Stop after this many instructions (0 = run to completion). */
    uint64_t maxInsts = 0;
};

/** Outputs of a profile run. */
struct ProfileResult
{
    uint64_t insts = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    /** Dynamic load fractions by addressing class. */
    double fracGlobal = 0.0, fracStack = 0.0, fracGeneral = 0.0;
    /** Offset histograms (Figure 3), indexed by RefClass. */
    std::array<OffsetHistogram, 3> offsets;
    /** One entry per requested FacConfig. */
    std::vector<FacProfile> fac;
    /** One entry per requested LtbRequest. */
    std::vector<LtbProfile> ltb;
    double tlbMissRatio = 0.0;
    /** Raw TLB counters (0 unless withTlb; exported to bench JSON). */
    uint64_t tlbAccesses = 0;
    uint64_t tlbMisses = 0;
    uint64_t memUsageBytes = 0;
};

/** Run a functional profile of one workload. */
ProfileResult runProfile(const ProfileRequest &req);

/** Inputs for a timing run. */
struct TimingRequest
{
    std::string workload;
    BuildOptions build;
    PipelineConfig pipe;
    /**
     * Stop after this many instructions. For a full-detail run this
     * bounds the instructions the pipeline issues; for a sampled run it
     * bounds *total* retired instructions, fast-forwarded ones
     * included, so full and sampled runs cover the same program slice.
     */
    uint64_t maxInsts = 0;
    /** Systematic sampling; period 0 (default) = full detail. */
    SamplingConfig sampling;
    /**
     * Per-instruction pipeline trace (Konata / Chrome trace-event).
     * Disabled unless trace.path is set; zero overhead when disabled.
     */
    obs::TraceOptions trace;
    /**
     * Keep the last N issued instructions in a crash-dump ring that
     * panic() and cosim divergence reports print. 0 = off.
     */
    size_t historyRing = 0;
};

/** Outputs of a timing run. */
struct TimingResult
{
    PipeStats stats;
    /** Per-level hierarchy counters (L1D [, L2, DRAM], TLB). */
    HierarchyStats hier;
    uint64_t memUsageBytes = 0;
    /**
     * Sampling estimate (sample.enabled iff the request sampled). When
     * sampling, `stats` covers only the detailed instructions; use
     * sample.cpi/ipc (with confidence intervals) and estCycles() for
     * whole-program metrics.
     */
    SampleEstimate sample;
    /**
     * Emulator translation-layer counters (nonzero only when the run
     * used bulk emulation, e.g. sampled fast-forward) and the dispatch
     * engine that produced them — host-side observability, not
     * simulated-architecture state.
     */
    EmuTranslationStats emu;
    EmuEngine emuEngine = EmuEngine::Switch;

    /** Whole-program cycles: measured, or the sampling estimate. */
    double
    estimatedCycles() const
    {
        return sample.enabled ? sample.estCycles()
                              : static_cast<double>(stats.cycles);
    }
    /** Whole-program IPC: measured, or the sampling estimate. */
    double
    estimatedIpc() const
    {
        return sample.enabled ? sample.ipc.mean : stats.ipc();
    }
};

/** Run one workload through the timing pipeline. */
TimingResult runTiming(const TimingRequest &req);

} // namespace facsim

#endif // FACSIM_SIM_EXPERIMENT_HH
