/**
 * @file
 * Versioned binary codec for experiment requests and results
 * (sim/experiment.hh). One encoding serves two consumers: the
 * experiment service's wire protocol (serve/wire.hh) and its
 * disk-backed result cache (serve/cache.hh), so a response replayed
 * from the cache is byte-for-byte the response the cold run produced.
 *
 * Encoders write onto a ser::Writer. Decoders read from a
 * ser::TryReader — the *non-fatal* reader — because both consumers
 * decode untrusted bytes (a client frame, a cache file from an older
 * run): a malformed stream must surface as `!r.ok()` with an error
 * message, never abort the daemon. Decoders validate enum ranges and
 * cap vector lengths for the same reason.
 *
 * Deliberately excluded from TimingRequest: the trace options and the
 * crash-dump history ring. Both are host-side observability attached to
 * the *serving* process, not part of the experiment's identity — two
 * requests differing only in trace settings must hit the same cache
 * entry.
 */

#ifndef FACSIM_SIM_REQUEST_CODEC_HH
#define FACSIM_SIM_REQUEST_CODEC_HH

#include <cstdint>

#include "sim/experiment.hh"
#include "util/serialize.hh"

namespace facsim
{

/**
 * Codec format version. Bump whenever any encoded layout below
 * changes; the wire protocol and the cache container both embed it and
 * reject (protocol error / cold start) streams from another version.
 */
constexpr uint32_t requestCodecVersion = 2;

/** @{ @name Request encoding (canonical bytes; also the cache key input) */
void encodeProfileRequest(ser::Writer &w, const ProfileRequest &req);
void encodeTimingRequest(ser::Writer &w, const TimingRequest &req);
bool decodeProfileRequest(ser::TryReader &r, ProfileRequest *req);
bool decodeTimingRequest(ser::TryReader &r, TimingRequest *req);
/** @} */

/** @{ @name Result encoding */
void encodeProfileResult(ser::Writer &w, const ProfileResult &res);
void encodeTimingResult(ser::Writer &w, const TimingResult &res);
bool decodeProfileResult(ser::TryReader &r, ProfileResult *res);
bool decodeTimingResult(ser::TryReader &r, TimingResult *res);
/** @} */

/**
 * Fingerprint of the workload identity a request builds: name, scale,
 * seed and the full codegen policy. With configFingerprint() and the
 * request-body hash this completes the result-cache key.
 */
uint64_t workloadFingerprint(const std::string &workload,
                             const BuildOptions &build);

} // namespace facsim

#endif // FACSIM_SIM_REQUEST_CODEC_HH
