/**
 * @file
 * Load target buffer (LTB) — the related-work baseline of Section 6
 * (Golden & Mudge 1993). Where fast address calculation predicts from
 * the *operands* of the address computation, an LTB predicts a load's
 * effective address from the *instruction's PC*, the way a branch
 * target buffer predicts branch targets: a direct-mapped table holds the
 * last effective address per load (optionally plus the last stride).
 *
 * Implemented so the two approaches can be compared head-to-head on the
 * same reference stream (bench/related_predictors): the paper argues
 * FAC "is more accurate at predicting effective addresses because we
 * predict using the operands of the effective address calculation,
 * rather than the address of the load".
 */

#ifndef FACSIM_CORE_LTB_HH
#define FACSIM_CORE_LTB_HH

#include <cstdint>
#include <vector>

#include "util/serialize.hh"

namespace facsim
{

/** Prediction policy for the table. */
enum class LtbPolicy : uint8_t
{
    LastAddress,  ///< predict the previously observed address
    Stride,       ///< predict last address + last observed stride
};

/** Result of one LTB lookup. */
struct LtbResult
{
    bool hit = false;           ///< table had an entry for this PC
    uint32_t predictedAddr = 0; ///< valid when hit
};

/** Direct-mapped, PC-indexed effective-address predictor. */
class Ltb
{
  public:
    /**
     * @param entries table size (power of two).
     * @param policy last-address or stride prediction.
     */
    explicit Ltb(unsigned entries = 1024,
                 LtbPolicy policy = LtbPolicy::LastAddress);

    /** Look up the memory instruction at @p pc. */
    LtbResult predict(uint32_t pc) const;

    /**
     * Train with the resolved effective address (call for every
     * executed load/store after predict()).
     */
    void update(uint32_t pc, uint32_t eff_addr);

    /**
     * Functional-warming train (alias of update(), which keeps no
     * counters; kept for interface symmetry with the other warmable
     * structures).
     */
    void warm(uint32_t pc, uint32_t eff_addr) { update(pc, eff_addr); }

    /** Invalidate all entries. */
    void reset();

    /** Serialize table contents. */
    void saveState(ser::Writer &w) const;
    /** Restore state saved by saveState (table size must match). */
    void loadState(ser::Reader &r);

    /** The active policy. */
    LtbPolicy policy() const { return pol; }

  private:
    struct Entry
    {
        uint32_t tag = 0;
        uint32_t lastAddr = 0;
        int32_t stride = 0;
        bool valid = false;
    };

    uint32_t indexOf(uint32_t pc) const { return (pc >> 2) & (size - 1); }

    unsigned size;
    LtbPolicy pol;
    std::vector<Entry> table;
};

} // namespace facsim

#endif // FACSIM_CORE_LTB_HH
