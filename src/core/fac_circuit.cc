#include "core/fac_circuit.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace facsim
{

FacCircuit::FacCircuit(const FacConfig &config)
    : cfg(config)
{
    FACSIM_ASSERT(cfg.blockBits >= 1 && cfg.blockBits < cfg.setBits &&
                  cfg.setBits < 32,
                  "circuit geometry out of range");
}

namespace
{

/** One-bit full adder: returns sum, updates carry. */
inline bool
fullAdder(bool a, bool b, bool &carry)
{
    bool sum = a ^ b ^ carry;
    carry = (a && b) || (a && carry) || (b && carry);
    return sum;
}

inline bool
bitOf(uint32_t v, unsigned i)
{
    return (v >> i) & 1u;
}

} // anonymous namespace

FacCircuitSignals
FacCircuit::evaluate(uint32_t base, int32_t offset,
                     bool offset_from_reg) const
{
    FacCircuitSignals s;
    const unsigned B = cfg.blockBits;
    const unsigned S = cfg.setBits;
    const uint32_t uofs = static_cast<uint32_t>(offset);

    // Sign logic: constant offsets have their sign known at decode; a
    // negative one engages the set-index/tag inverter. Register offsets
    // arrive too late, so their sign bit raises NegFail instead.
    const bool ofs_negative = bitOf(uofs, 31);
    const bool invert_upper = ofs_negative && !offset_from_reg;
    s.negIndexReg = ofs_negative && offset_from_reg;

    // --- block-offset ripple adder, bits [B-1:0] --------------------
    bool carry = false;
    for (unsigned i = 0; i < B; ++i) {
        if (fullAdder(bitOf(base, i), bitOf(uofs, i), carry))
            s.blockOfs |= 1u << i;
    }
    const bool carry_out_block = carry;

    if (invert_upper) {
        // The inverter turns the sign-extension ones into zeros, so the
        // OR stages pass the base's upper bits through unchanged; the
        // missing block-offset carry is the borrow detector.
        bool upper_all_ones = true;
        for (unsigned i = B; i < 32; ++i)
            upper_all_ones = upper_all_ones && bitOf(uofs, i);
        s.largeNegConst = !upper_all_ones || !carry_out_block;

        for (unsigned i = B; i < S; ++i) {
            if (bitOf(base, i))
                s.predIndex |= 1u << (i - B);
        }
        for (unsigned i = S; i < 32; ++i) {
            if (bitOf(base, i))
                s.predTag |= 1u << (i - S);
        }
        s.aPredSucceeded = !s.largeNegConst;
    } else {
        s.overflow = carry_out_block;

        // --- set index: replicated OR (prediction) and AND (verify) --
        bool any_gen = false;
        for (unsigned i = B; i < S; ++i) {
            bool a = bitOf(base, i);
            bool b = bitOf(uofs, i);
            if (a || b)
                s.predIndex |= 1u << (i - B);
            any_gen = any_gen || (a && b);
        }
        s.genCarry = any_gen;

        // --- tag: full adder (no carry-in) or OR-only ----------------
        if (cfg.fullTagAdd) {
            bool tcarry = false;
            for (unsigned i = S; i < 32; ++i) {
                if (fullAdder(bitOf(base, i), bitOf(uofs, i), tcarry))
                    s.predTag |= 1u << (i - S);
            }
        } else {
            bool any_tag_gen = false;
            for (unsigned i = S; i < 32; ++i) {
                bool a = bitOf(base, i);
                bool b = bitOf(uofs, i);
                if (a || b)
                    s.predTag |= 1u << (i - S);
                any_tag_gen = any_tag_gen || (a && b);
            }
            s.genCarryTag = any_tag_gen;
        }

        s.aPredSucceeded = !s.overflow && !s.genCarry &&
            !s.genCarryTag && !s.negIndexReg;
    }

    s.predictedAddr = (s.predTag << S) |
        (s.predIndex << B) | s.blockOfs;
    return s;
}

} // namespace facsim
