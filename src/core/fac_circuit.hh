/**
 * @file
 * Gate-level model of the Figure 4 fast-address-generation circuit.
 *
 * Where FastAddrCalc computes with word arithmetic, this model follows
 * the hardware structure signal by signal: a ripple full adder for the
 * block offset, a replicated OR stage for the set index, the replicated
 * AND stage feeding the GenCarry detector, the sign-extension inverter
 * for negative constant offsets, the tag adder (or its OR-only
 * substitute) and the final verification gate producing APredSucceeded.
 *
 * Its purpose is cross-validation: the property suite proves this
 * structural model and the behavioural FastAddrCalc agree on every
 * signal for every input, which is the kind of RTL-vs-model check a
 * real implementation of the paper would need.
 */

#ifndef FACSIM_CORE_FAC_CIRCUIT_HH
#define FACSIM_CORE_FAC_CIRCUIT_HH

#include <cstdint>

#include "core/fast_addr_calc.hh"

namespace facsim
{

/** Every named wire of the Figure 4 schematic. */
struct FacCircuitSignals
{
    // Datapath.
    uint32_t blockOfs = 0;     ///< BlockOFS<B-1:0>: block-offset adder out
    uint32_t predIndex = 0;    ///< PredIndex<S-1:B>: carry-free OR
    uint32_t predTag = 0;      ///< PredTag<31:S>
    uint32_t predictedAddr = 0;

    // Verification signals.
    bool overflow = false;       ///< carry out of the block-offset adder
    bool genCarry = false;       ///< OR-reduce of AND stage in the index
    bool genCarryTag = false;    ///< (OR-tag variant only)
    bool largeNegConst = false;  ///< negative constant leaves the block
    bool negIndexReg = false;    ///< IndexReg<31> with register offsets
    bool aPredSucceeded = false; ///< final verification output
};

/** Structural (per-bit) evaluation of the prediction circuit. */
class FacCircuit
{
  public:
    explicit FacCircuit(const FacConfig &config);

    /**
     * Evaluate the combinational network for one access.
     *
     * @param base base register value.
     * @param offset constant or index-register operand (sign-extended).
     * @param offset_from_reg register+register addressing.
     */
    FacCircuitSignals evaluate(uint32_t base, int32_t offset,
                               bool offset_from_reg) const;

    const FacConfig &config() const { return cfg; }

  private:
    FacConfig cfg;
};

} // namespace facsim

#endif // FACSIM_CORE_FAC_CIRCUIT_HH
