#include "core/fast_addr_calc.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace facsim
{

FastAddrCalc::FastAddrCalc(const FacConfig &config)
    : cfg(config)
{
    FACSIM_ASSERT(cfg.blockBits >= 1 && cfg.blockBits < cfg.setBits,
                  "block-offset field must sit below the set field");
    FACSIM_ASSERT(cfg.setBits < 32, "set field must leave room for a tag");
    maskB = maskLow(cfg.blockBits);
    maskIdx = maskLow(cfg.setBits - cfg.blockBits);
    tagShift = cfg.setBits;
}

FacResult
FastAddrCalc::predict(uint32_t base, int32_t offset,
                      bool offset_from_reg) const
{
    FacResult r;

    if (offset_from_reg && !cfg.speculateRegReg)
        return r;  // not attempted: normal 2-cycle access
    r.attempted = true;

    const uint32_t uofs = static_cast<uint32_t>(offset);
    const unsigned B = cfg.blockBits;

    if (offset < 0 && !offset_from_reg) {
        // Small negative constant: the decoder inverts the sign-extended
        // set-index/tag bits (all ones for offsets > -2^B), so the upper
        // bits of the prediction are just the base's. The block-offset
        // adder still computes the low bits; a missing carry-out is a
        // borrow, i.e. the access left the base's cache block.
        uint32_t blk_sum = (base & maskB) + (uofs & maskB);
        r.predictedAddr = (base & ~maskB) | (blk_sum & maskB);

        bool upper_all_ones = (uofs | maskB) == 0xffffffffu;
        bool no_borrow = (blk_sum >> B) != 0;
        if (!upper_all_ones || !no_borrow)
            r.failMask |= facFailLargeNegConst;
        r.success = r.failMask == facFailNone;
        return r;
    }

    // Positive constant or register offset (negative register offsets run
    // through the same datapath but are failed by the verifier below).
    const uint32_t blk_sum = (base & maskB) + (uofs & maskB);
    const uint32_t base_idx = (base >> B) & maskIdx;
    const uint32_t ofs_idx = (uofs >> B) & maskIdx;
    const uint32_t base_tag = base >> tagShift;
    const uint32_t ofs_tag = uofs >> tagShift;

    const uint32_t pred_idx = base_idx | ofs_idx;
    const uint32_t pred_tag =
        cfg.fullTagAdd ? (base_tag + ofs_tag) : (base_tag | ofs_tag);

    r.predictedAddr = (pred_tag << tagShift) | (pred_idx << B) |
        (blk_sum & maskB);

    if ((blk_sum >> B) != 0)
        r.failMask |= facFailOverflow;
    if ((base_idx & ofs_idx) != 0)
        r.failMask |= facFailGenCarry;
    if (!cfg.fullTagAdd && (base_tag & ofs_tag) != 0)
        r.failMask |= facFailGenCarryTag;
    if (offset_from_reg && offset < 0)
        r.failMask |= facFailNegIndexReg;

    r.success = r.failMask == facFailNone;
    return r;
}

std::string
FastAddrCalc::failMaskName(uint8_t mask)
{
    if (mask == facFailNone)
        return "None";
    std::string s;
    auto app = [&](const char *name) {
        if (!s.empty())
            s += "|";
        s += name;
    };
    if (mask & facFailOverflow)
        app("Overflow");
    if (mask & facFailGenCarry)
        app("GenCarry");
    if (mask & facFailLargeNegConst)
        app("LargeNegConst");
    if (mask & facFailNegIndexReg)
        app("NegIndexReg");
    if (mask & facFailGenCarryTag)
        app("GenCarryTag");
    return s;
}

} // namespace facsim
