#include "core/ltb.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace facsim
{

Ltb::Ltb(unsigned entries, LtbPolicy policy)
    : size(entries), pol(policy), table(entries)
{
    FACSIM_ASSERT(isPow2(entries), "LTB size must be a power of two");
}

LtbResult
Ltb::predict(uint32_t pc) const
{
    const Entry &e = table[indexOf(pc)];
    if (!e.valid || e.tag != pc)
        return {false, 0};
    uint32_t addr = e.lastAddr;
    if (pol == LtbPolicy::Stride)
        addr += static_cast<uint32_t>(e.stride);
    return {true, addr};
}

void
Ltb::update(uint32_t pc, uint32_t eff_addr)
{
    Entry &e = table[indexOf(pc)];
    if (!e.valid || e.tag != pc) {
        e.valid = true;
        e.tag = pc;
        e.lastAddr = eff_addr;
        e.stride = 0;
        return;
    }
    e.stride = static_cast<int32_t>(eff_addr - e.lastAddr);
    e.lastAddr = eff_addr;
}

void
Ltb::reset()
{
    for (Entry &e : table)
        e = Entry{};
}

} // namespace facsim
