#include "core/ltb.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace facsim
{

Ltb::Ltb(unsigned entries, LtbPolicy policy)
    : size(entries), pol(policy), table(entries)
{
    FACSIM_ASSERT(isPow2(entries), "LTB size must be a power of two");
}

LtbResult
Ltb::predict(uint32_t pc) const
{
    const Entry &e = table[indexOf(pc)];
    if (!e.valid || e.tag != pc)
        return {false, 0};
    uint32_t addr = e.lastAddr;
    if (pol == LtbPolicy::Stride)
        addr += static_cast<uint32_t>(e.stride);
    return {true, addr};
}

void
Ltb::update(uint32_t pc, uint32_t eff_addr)
{
    Entry &e = table[indexOf(pc)];
    if (!e.valid || e.tag != pc) {
        e.valid = true;
        e.tag = pc;
        e.lastAddr = eff_addr;
        e.stride = 0;
        return;
    }
    e.stride = static_cast<int32_t>(eff_addr - e.lastAddr);
    e.lastAddr = eff_addr;
}

void
Ltb::reset()
{
    for (Entry &e : table)
        e = Entry{};
}

void
Ltb::saveState(ser::Writer &w) const
{
    w.u64(table.size());
    for (const Entry &e : table) {
        w.u32(e.tag);
        w.u32(e.lastAddr);
        w.u32(static_cast<uint32_t>(e.stride));
        w.b(e.valid);
    }
}

void
Ltb::loadState(ser::Reader &r)
{
    uint64_t n = r.u64();
    FACSIM_ASSERT(n == table.size(),
                  "checkpoint LTB has %llu entries, this config has %zu",
                  static_cast<unsigned long long>(n), table.size());
    for (Entry &e : table) {
        e.tag = r.u32();
        e.lastAddr = r.u32();
        e.stride = static_cast<int32_t>(r.u32());
        e.valid = r.b();
    }
}

} // namespace facsim
