/**
 * @file
 * Fast address calculation (the paper's contribution, Section 3).
 *
 * The predictor produces the effective address of a load/store early in the
 * cycle by exploiting the on-chip cache organisation: the set-index field
 * is needed at the start of the access, the block offset and tag only late.
 * It therefore computes
 *
 *   predicted[B-1:0]  = (base + offset)[B-1:0]     (small full adder)
 *   predicted[S-1:B]  = base[S-1:B] | offset[S-1:B] (carry-free "addition")
 *   predicted[31:S]   = base[31:S] + offset[31:S]   (full add; an OR-only
 *                                                    variant is also modelled)
 *
 * where 2^B is the cache block size and 2^S the bytes spanned by the
 * index+offset fields (cache size / associativity).
 *
 * A verification circuit, decoupled from the cache access path, raises a
 * misprediction on any of the failure conditions of Figure 4:
 *   1. Overflow      — carry out of the block-offset adder,
 *   2. GenCarry      — carry generated inside the set-index field,
 *   3. LargeNegConst — negative constant offset whose target leaves the
 *                      base register's cache block (small negative constants
 *                      succeed: the sign-extended upper bits are inverted),
 *   4. NegIndexReg   — any negative register (R+R) offset: register values
 *                      arrive too late for set-index inversion,
 *   5. GenCarryTag   — (OR-tag variant only) carry generated in the tag.
 *
 * The invariant verified by the property tests: detection fires exactly
 * when the predicted address differs from base+offset — except for
 * NegIndexReg, which is deliberately conservative (prediction may be
 * discarded even if it happened to be right).
 */

#ifndef FACSIM_CORE_FAST_ADDR_CALC_HH
#define FACSIM_CORE_FAST_ADDR_CALC_HH

#include <cstdint>
#include <string>

namespace facsim
{

/** Configuration of the prediction circuit. */
struct FacConfig
{
    /** Block-offset field width B (16-byte blocks: 4, 32-byte: 5). */
    unsigned blockBits = 5;
    /** Total index+offset field width S (16 KB direct-mapped: 14). */
    unsigned setBits = 14;
    /**
     * Full addition capability in the tag portion. The paper evaluates
     * both and finds full tag addition "of limited value" (Section 3.1);
     * the default models the Figure 4 circuit, which has the tag adder.
     */
    bool fullTagAdd = true;
    /**
     * Speculate register+register mode accesses. Section 5.5 evaluates
     * both settings: R+R speculation helps only a few programs and costs
     * cache bandwidth.
     */
    bool speculateRegReg = true;
};

/** Failure-condition bit positions (for statistics/diagnostics). */
enum FacFail : uint8_t
{
    facFailNone = 0,
    facFailOverflow = 1 << 0,      ///< carry out of the block offset
    facFailGenCarry = 1 << 1,      ///< carry generated in the set index
    facFailLargeNegConst = 1 << 2, ///< negative const leaves the block
    facFailNegIndexReg = 1 << 3,   ///< negative register offset
    facFailGenCarryTag = 1 << 4,   ///< carry generated in the tag (OR tag)
};

/** Outcome of one prediction. */
struct FacResult
{
    /**
     * False when the circuit does not attempt a prediction at all (R+R
     * access with speculateRegReg disabled); the pipeline then performs a
     * normal 2-cycle access with no speculative bandwidth cost.
     */
    bool attempted = false;
    /** True when verification raises no failure condition. */
    bool success = false;
    /** Address the speculative cache access used. */
    uint32_t predictedAddr = 0;
    /** OR-combination of FacFail flags that fired. */
    uint8_t failMask = facFailNone;
};

/** Combinational model of the fast address generation circuit. */
class FastAddrCalc
{
  public:
    explicit FastAddrCalc(const FacConfig &config);

    /**
     * Predict the effective address of one access.
     *
     * @param base value of the base register.
     * @param offset constant displacement or index-register value
     *        (already sign-extended).
     * @param offset_from_reg true for register+register addressing.
     */
    FacResult predict(uint32_t base, int32_t offset,
                      bool offset_from_reg) const;

    /** The configuration in force. */
    const FacConfig &config() const { return cfg; }

    /** Human-readable failure-mask description, e.g. "Overflow|GenCarry". */
    static std::string failMaskName(uint8_t mask);

  private:
    FacConfig cfg;
    uint32_t maskB;      ///< low block-offset bits
    uint32_t maskIdx;    ///< set-index bits, shifted down by B
    unsigned tagShift;   ///< == setBits
};

} // namespace facsim

#endif // FACSIM_CORE_FAST_ADDR_CALC_HH
