/**
 * @file
 * su2cor: quark-gluon lattice sweeps. Each lattice site holds a 2x2
 * complex SU(2) matrix (64 bytes); a sweep multiplies every site's link
 * by its neighbour's in a higher dimension, whose displacement becomes a
 * large constant byte offset — the "index constants in the higher
 * dimension of a multidimensional array can become large" case of
 * Section 2.2.
 */

#include "workloads/registry.hh"

namespace facsim
{

void
buildSu2cor(WorkloadContext &ctx)
{
    AsmBuilder &as = ctx.as;
    CommonGlobals g = declareCommonGlobals(ctx);

    const uint32_t dim = 32;                    // sites per dimension
    const uint32_t nsites = dim * dim;          // 1024 sites
    const uint32_t site_bytes = 64;             // 8 doubles (2x2 complex)
    const uint32_t ydisp = dim * site_bytes;    // 2 KB constant offset
    const uint32_t sweeps = ctx.scaled(7);

    SymId u_ptr = as.global("links_ptr", 4, 4, true);
    SymId tr_acc = as.global("trace_acc", 8, 8, true);

    Frame fr(ctx, false);
    fr.seal();
    fr.prologue(as);

    as.lwGp(reg::s0, u_ptr);
    as.li(reg::s5, static_cast<int32_t>(sweeps));

    LabelId sweep = as.newLabel();
    LabelId site = as.newLabel();

    as.bind(sweep);
    as.move(reg::t0, reg::s0);                   // site cursor
    as.li(reg::t1, static_cast<int32_t>(nsites - dim));
    emitLoadConstD(as, 20, reg::t2, 0);          // sweep trace acc
    as.bind(site);
    // A = site matrix (a,b,c,d complex: re/im interleaved);
    // B = neighbour one row up, at the large constant displacement.
    as.ldc1(4, 0, reg::t0);                      // a.re
    as.ldc1(5, 8, reg::t0);                      // a.im
    as.ldc1(6, 16, reg::t0);                     // b.re
    as.ldc1(7, 24, reg::t0);                     // b.im
    as.ldc1(8, static_cast<int32_t>(ydisp) + 0, reg::t0);   // B a.re
    as.ldc1(9, static_cast<int32_t>(ydisp) + 8, reg::t0);   // B a.im
    as.ldc1(10, static_cast<int32_t>(ydisp) + 32, reg::t0); // B c.re
    as.ldc1(11, static_cast<int32_t>(ydisp) + 40, reg::t0); // B c.im
    // (A*B)[0][0] = a*Ba + b*Bc (complex multiply-adds)
    as.mulD(12, 4, 8);
    as.mulD(13, 5, 9);
    as.subD(12, 12, 13);                         // re(a*Ba)
    as.mulD(14, 6, 10);
    as.mulD(15, 7, 11);
    as.subD(14, 14, 15);                         // re(b*Bc)
    as.addD(12, 12, 14);
    as.mulD(16, 4, 9);
    as.mulD(17, 5, 8);
    as.addD(16, 16, 17);                         // im(a*Ba)
    as.mulD(18, 6, 11);
    as.mulD(19, 7, 10);
    as.addD(18, 18, 19);
    as.addD(16, 16, 18);
    // Write the product's first element back; accumulate the trace.
    as.sdc1(12, 48, reg::t0);                    // d.re <- result re
    as.sdc1(16, 56, reg::t0);                    // d.im <- result im
    as.addD(20, 20, 12);
    as.addi(reg::t0, reg::t0, static_cast<int32_t>(site_bytes));
    as.addi(reg::t1, reg::t1, -1);
    as.bgtz(reg::t1, site);
    // Normalise the sweep trace into the accumulator: acc += tr / nsites.
    emitLoadConstD(as, 21, reg::t3, static_cast<int32_t>(nsites));
    as.divD(20, 20, 21);
    as.ldc1Gp(22, tr_acc);
    as.addD(22, 22, 20);
    as.sdc1Gp(22, tr_acc);
    as.addi(reg::s5, reg::s5, -1);
    as.bgtz(reg::s5, sweep);

    as.ldc1Gp(23, tr_acc);
    emitLoadConstD(as, 24, reg::t4, 1000);
    as.mulD(23, 23, 24);
    as.cvtWD(23, 23);
    as.mfc1(reg::t5, 23);
    as.swGp(reg::t5, g.result);
    as.halt();

    ctx.atInit([=](InitContext &ic) {
        uint32_t links = ic.heap.alloc(nsites * site_bytes, 8);
        fillRandomDoubles(ic.mem, links, nsites * site_bytes / 8, ic.rng);
        ic.mem.write32(ic.symAddr(u_ptr), links);
    });
}

} // namespace facsim
