/**
 * @file
 * Workload construction toolkit: the contexts kernels build against, and
 * the Frame helper that reproduces the compiler's stack-frame behaviour
 * (with and without the paper's software support).
 *
 * Each workload kernel plays the role of one benchmark binary from
 * Table 2: it emits code through AsmBuilder (so every load/store the
 * simulated program performs is explicit), declares its globals, and
 * registers post-link initialisers that build its heap data structures.
 */

#ifndef FACSIM_WORKLOADS_KERNEL_LIB_HH
#define FACSIM_WORKLOADS_KERNEL_LIB_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "asm/builder.hh"
#include "link/linker.hh"
#include "mem/memory.hh"
#include "runtime/heap.hh"
#include "util/rng.hh"
#include "workloads/codegen_policy.hh"

namespace facsim
{

/** Environment for post-link data initialisation. */
struct InitContext
{
    Memory &mem;
    Heap &heap;
    const Program &prog;
    const LinkedImage &img;
    Rng &rng;

    /** Linked address of a data symbol. */
    uint32_t symAddr(SymId sym) const { return prog.syms().at(sym).addr; }
};

/** Environment a kernel builds in. */
class WorkloadContext
{
  public:
    WorkloadContext(AsmBuilder &as, const CodeGenPolicy &pol, Rng &rng,
                    uint64_t scale)
        : as(as), pol(pol), rng(rng), scale_(scale)
    {
    }

    AsmBuilder &as;
    const CodeGenPolicy &pol;
    Rng &rng;

    /** Workload size multiplier (1 = the standard bench input). */
    uint64_t scale() const { return scale_; }
    /** @p base iterations scaled, with a floor of 1. */
    uint32_t scaled(uint32_t base) const
    {
        uint64_t v = base * scale_;
        return static_cast<uint32_t>(v ? v : 1);
    }

    /** Register a post-link initialiser (runs in registration order). */
    void atInit(std::function<void(InitContext &)> fn)
    {
        inits.push_back(std::move(fn));
    }

    /** Run all registered initialisers (Machine calls this). */
    void runInits(InitContext &ictx)
    {
        for (auto &fn : inits)
            fn(ictx);
    }

  private:
    uint64_t scale_;
    std::vector<std::function<void(InitContext &)>> inits;
};

/**
 * A function stack frame under the active CodeGenPolicy.
 *
 * Usage: declare slots, then seal(), then emit prologue/epilogue around
 * the body. Offsets are relative to the post-prologue stack pointer.
 * With software support, scalars sort closest to sp and the frame size is
 * rounded to the program-wide alignment; frames bigger than that
 * alignment explicitly align sp in the prologue (saving the caller's sp
 * in the frame), per Section 4.
 */
class Frame
{
  public:
    /**
     * @param ctx build context (supplies the policy).
     * @param saves_ra reserve a save slot for ra (function makes calls).
     */
    Frame(WorkloadContext &ctx, bool saves_ra);

    /** Declare a scalar slot; returns a slot id. */
    unsigned addScalar(uint32_t bytes = 4, uint32_t align = 4);
    /** Declare a double-precision scalar slot. */
    unsigned addDouble() { return addScalar(8, 8); }
    /** Declare an aggregate (array/struct) slot. */
    unsigned addArray(uint32_t bytes, uint32_t align = 4);

    /** Finalise the layout; no more slots after this. */
    void seal();

    /** sp-relative offset of a slot (frame must be sealed). */
    int32_t off(unsigned slot) const;

    /** Rounded frame size in bytes (sealed). */
    uint32_t size() const;

    /** Emit the function prologue (adjusts and possibly aligns sp). */
    void prologue(AsmBuilder &as) const;
    /** Emit the function epilogue ending in jr ra. */
    void epilogueAndRet(AsmBuilder &as) const;

  private:
    struct Slot
    {
        uint32_t bytes;
        uint32_t align;
        bool scalar;
        int32_t offset = -1;
    };

    const CodeGenPolicy &pol;
    bool savesRa;
    bool sealed = false;
    std::vector<Slot> slots;
    uint32_t frameBytes = 0;   ///< rounded size
    uint32_t frameAlign_ = 0;
    int32_t raOffset = -1;
    int32_t oldSpOffset = -1;  ///< only for explicitly aligned frames
    bool bigAligned = false;
};

/**
 * Convenience: emit a counted loop.
 *
 * @param as builder.
 * @param counter register pre-loaded with the trip count (decremented).
 * @param body emits the loop body.
 */
void emitCountedLoop(AsmBuilder &as, uint8_t counter,
                     const std::function<void()> &body);

/** Fill a memory range with deterministic pseudo-random words. */
void fillRandomWords(Memory &mem, uint32_t addr, uint32_t count, Rng &rng,
                     uint32_t mask = 0xffffffffu);

/** Fill a memory range with deterministic random doubles in [0,1). */
void fillRandomDoubles(Memory &mem, uint32_t addr, uint32_t count,
                       Rng &rng);

/** Fill a memory range with printable pseudo-random text. */
void fillRandomText(Memory &mem, uint32_t addr, uint32_t count, Rng &rng);

/**
 * The small-data globals every kernel declares. The layout mirrors real
 * programs: a couple of rarely-touched scalars land below the unaligned
 * baseline gp (negative offsets), a pad block models the rest of the
 * program's named globals, and the kernel's own globals follow at large
 * positive offsets — reproducing the Figure 3 global-offset shape.
 */
struct CommonGlobals
{
    SymId lowScalarA;  ///< below gp without support (negative offset)
    SymId lowScalarB;  ///< below gp without support (negative offset)
    SymId result;      ///< final checksum every kernel stores
};

/**
 * Declare the common small-data globals (call before any other symbol).
 *
 * @param pad_bytes size of the surrogate "rest of the globals" block.
 */
CommonGlobals declareCommonGlobals(WorkloadContext &ctx,
                                   uint32_t pad_bytes = 4096);

/**
 * Load an integral-valued double constant into FP register @p fd using
 * li + mtc1 + cvt.d.w (@p tmp is clobbered).
 */
void emitLoadConstD(AsmBuilder &as, uint8_t fd, uint8_t tmp, int32_t value);

} // namespace facsim

#endif // FACSIM_WORKLOADS_KERNEL_LIB_HH
