/**
 * @file
 * mdljsp2: single-precision molecular dynamics over an array-of-structs
 * particle layout. The 24-byte raw particle record is rounded to 32
 * bytes under the structure-size policy, which both aligns the records
 * to cache blocks and lets the compiler use a shift instead of a
 * multiply for indexing — the paper's structure-rounding trade-off.
 */

#include "workloads/registry.hh"

namespace facsim
{

void
buildMdljsp2(WorkloadContext &ctx)
{
    AsmBuilder &as = ctx.as;
    CommonGlobals g = declareCommonGlobals(ctx);

    const uint32_t nparticles = 600;
    const uint32_t npairs = 4000;
    const uint32_t steps = ctx.scaled(7);
    // Particle record: x @0, y @4, z @8, fx @12, fy @16, fz @20 (floats).
    const uint32_t part_raw = 24;
    const uint32_t part_bytes = ctx.pol.structSize(part_raw);

    SymId part_ptr = as.global("particles_ptr", 4, 4, true);
    SymId pair_ptr = as.global("pairs_ptr", 4, 4, true);

    Frame fr(ctx, false);
    fr.seal();
    fr.prologue(as);

    as.lwGp(reg::s0, part_ptr);
    as.li(reg::s5, static_cast<int32_t>(steps));
    emitLoadConstD(as, 1, reg::t0, 1);
    emitLoadConstD(as, 2, reg::t0, 50);
    as.divD(2, 1, 2);                           // softening

    LabelId step = as.newLabel();
    LabelId pair = as.newLabel();

    as.bind(step);
    as.lwGp(reg::s3, pair_ptr);
    as.li(reg::s4, static_cast<int32_t>(npairs));
    as.bind(pair);
    as.lwPost(reg::t0, reg::s3, 4);             // i
    as.lwPost(reg::t1, reg::s3, 4);             // j
    // &particle[k] = base + k * part_bytes
    if (part_bytes == 32) {
        as.sll(reg::t0, reg::t0, 5);
        as.sll(reg::t1, reg::t1, 5);
    } else {
        as.li(reg::t2, static_cast<int32_t>(part_bytes));
        as.mul(reg::t0, reg::t0, reg::t2);
        as.mul(reg::t1, reg::t1, reg::t2);
    }
    as.add(reg::t0, reg::s0, reg::t0);
    as.add(reg::t1, reg::s0, reg::t1);
    as.lwc1(4, 0, reg::t0);                     // x_i
    as.lwc1(5, 0, reg::t1);                     // x_j
    as.subD(4, 4, 5);
    as.lwc1(6, 4, reg::t0);                     // y_i
    as.lwc1(7, 4, reg::t1);                     // y_j
    as.subD(6, 6, 7);
    as.lwc1(8, 8, reg::t0);                     // z_i
    as.lwc1(9, 8, reg::t1);                     // z_j
    as.subD(8, 8, 9);
    as.mulD(10, 4, 4);
    as.mulD(11, 6, 6);
    as.addD(10, 10, 11);
    as.mulD(12, 8, 8);
    as.addD(10, 10, 12);
    as.addD(10, 10, 2);                         // r2 + eps
    as.divD(13, 1, 10);                         // 1/r2
    as.mulD(14, 13, 4);                         // fx pair
    // fx_i += ; fx_j -=
    as.lwc1(15, 12, reg::t0);
    as.addD(15, 15, 14);
    as.swc1(15, 12, reg::t0);
    as.lwc1(16, 12, reg::t1);
    as.subD(16, 16, 14);
    as.swc1(16, 12, reg::t1);
    // fy updates
    as.mulD(17, 13, 6);
    as.lwc1(18, 16, reg::t0);
    as.addD(18, 18, 17);
    as.swc1(18, 16, reg::t0);
    as.lwc1(19, 16, reg::t1);
    as.subD(19, 19, 17);
    as.swc1(19, 16, reg::t1);
    as.addi(reg::s4, reg::s4, -1);
    as.bgtz(reg::s4, pair);
    as.addi(reg::s5, reg::s5, -1);
    as.bgtz(reg::s5, step);

    // Result checksum from particle 0's fx.
    as.lwc1(20, 12, reg::s0);
    emitLoadConstD(as, 21, reg::t3, 100);
    as.mulD(20, 20, 21);
    as.cvtWD(20, 20);
    as.mfc1(reg::t4, 20);
    as.swGp(reg::t4, g.result);
    as.halt();

    ctx.atInit([=](InitContext &ic) {
        uint32_t parts = ic.heap.alloc(nparticles * part_bytes, 8);
        for (uint32_t i = 0; i < nparticles; ++i) {
            uint32_t rec = parts + i * part_bytes;
            for (uint32_t k = 0; k < 3; ++k) {
                float v = static_cast<float>(ic.rng.real());
                uint32_t bits32;
                __builtin_memcpy(&bits32, &v, 4);
                ic.mem.write32(rec + 4 * k, bits32);
            }
            ic.mem.write32(rec + 12, 0);
            ic.mem.write32(rec + 16, 0);
            ic.mem.write32(rec + 20, 0);
        }
        uint32_t pairs = ic.heap.alloc(npairs * 8, 4);
        for (uint32_t p = 0; p < npairs; ++p) {
            uint32_t i = static_cast<uint32_t>(ic.rng.range(nparticles));
            uint32_t j = static_cast<uint32_t>(ic.rng.range(nparticles));
            if (i == j)
                j = (j + 1) % nparticles;
            ic.mem.write32(pairs + 8 * p, i);
            ic.mem.write32(pairs + 8 * p + 4, j);
        }
        ic.mem.write32(ic.symAddr(part_ptr), parts);
        ic.mem.write32(ic.symAddr(pair_ptr), pairs);
    });
}

} // namespace facsim
