/**
 * @file
 * doduc: Monte-Carlo reactor physics, the scalar-heavy FORTRAN code with
 * large, variable-size stack frames — the benchmark class the paper's
 * explicit big-frame stack alignment targets. Each step() call owns a
 * frame full of double scalars plus a table slot array; with support the
 * scalars sort next to sp and the frame is explicitly aligned (<= 256 B).
 */

#include "workloads/registry.hh"

namespace facsim
{

void
buildDoduc(WorkloadContext &ctx)
{
    AsmBuilder &as = ctx.as;
    CommonGlobals g = declareCommonGlobals(ctx);

    const uint32_t steps = ctx.scaled(3000);

    SymId seed_g = as.global("lcg_seed", 4, 4, true);
    SymId acc_g = as.global("flux_acc", 8, 8, true);
    SymId table_g = as.global("xsect_table", 64 * 8, 8, false);

    LabelId step = as.newLabel();

    // ---- main ----
    Frame fr(ctx, true);
    fr.seal();
    fr.prologue(as);
    as.li(reg::s5, static_cast<int32_t>(steps));
    LabelId loop = as.newLabel();
    as.bind(loop);
    as.jal(step);
    as.addi(reg::s5, reg::s5, -1);
    as.bgtz(reg::s5, loop);
    as.lwGp(reg::t0, seed_g);
    as.swGp(reg::t0, g.result);
    as.halt();

    // ---- step(): one particle history ----
    as.bind(step);
    Frame sf(ctx, false);
    // A FORTRAN-style frame: an interleaved mix of scalars and a local
    // work array, so the baseline layout pushes scalar offsets high.
    unsigned d_e = sf.addDouble();
    unsigned work = sf.addArray(24 * 8, 8);
    unsigned d_mu = sf.addDouble();
    unsigned d_path = sf.addDouble();
    unsigned d_sig = sf.addDouble();
    unsigned d_w = sf.addDouble();
    unsigned i_zone = sf.addScalar();
    sf.seal();
    sf.prologue(as);

    // LCG random draw (kept in the gp region, as FORTRAN commons are).
    as.lwGp(reg::t0, seed_g);
    as.li(reg::t1, 1103515245);
    as.mul(reg::t0, reg::t0, reg::t1);
    as.addi(reg::t0, reg::t0, 12345);
    as.swGp(reg::t0, seed_g);
    as.srl(reg::t2, reg::t0, 20);               // 12-bit draw
    as.andi(reg::t2, reg::t2, 0xfff);

    // energy = draw / 4096 + 1 ; store/reload through the frame, which
    // is how a register-starved FORTRAN compiler treats these scalars.
    as.mtc1(4, reg::t2);
    as.cvtDW(4, 4);
    emitLoadConstD(as, 5, reg::t3, 4096);
    as.divD(4, 4, 5);
    emitLoadConstD(as, 6, reg::t3, 1);
    as.addD(4, 4, 6);
    as.sdc1(4, sf.off(d_e), reg::sp);

    // mu = 2*energy/(1+energy); path = -mu/sig, iterate a short series.
    as.ldc1(7, sf.off(d_e), reg::sp);
    as.addD(8, 7, 7);
    as.addD(9, 7, 6);
    as.divD(10, 8, 9);
    as.sdc1(10, sf.off(d_mu), reg::sp);

    // zone = draw & 63; sig = table[zone] (indexed static table).
    as.andi(reg::t4, reg::t2, 63);
    as.sw(reg::t4, sf.off(i_zone), reg::sp);
    as.sll(reg::t5, reg::t4, 3);
    as.la(reg::t6, table_g);
    as.ldc1RR(11, reg::t6, reg::t5);
    as.sdc1(11, sf.off(d_sig), reg::sp);

    // path = sqrt(mu*mu + sig); w = mu / path.
    as.ldc1(12, sf.off(d_mu), reg::sp);
    as.mulD(13, 12, 12);
    as.ldc1(14, sf.off(d_sig), reg::sp);
    as.addD(13, 13, 14);
    as.sqrtD(13, 13);
    as.sdc1(13, sf.off(d_path), reg::sp);
    as.divD(15, 12, 13);
    as.sdc1(15, sf.off(d_w), reg::sp);

    // Short scattering series through the work array.
    as.addi(reg::t7, reg::sp, sf.off(work));
    as.li(reg::t8, 8);
    LabelId series = as.newLabel();
    as.bind(series);
    as.ldc1(16, sf.off(d_w), reg::sp);
    as.mulD(16, 16, 10);
    as.sdc1(16, sf.off(d_w), reg::sp);
    as.sdc1Post(16, reg::t7, 8);
    as.addi(reg::t8, reg::t8, -1);
    as.bgtz(reg::t8, series);

    // flux_acc += w (global double in the gp region).
    as.ldc1Gp(17, acc_g);
    as.ldc1(18, sf.off(d_w), reg::sp);
    as.addD(17, 17, 18);
    as.sdc1Gp(17, acc_g);

    sf.epilogueAndRet(as);

    ctx.atInit([=](InitContext &ic) {
        ic.mem.write32(ic.symAddr(seed_g), 20220105);
        fillRandomDoubles(ic.mem, ic.symAddr(table_g), 64, ic.rng);
    });
}

} // namespace facsim
