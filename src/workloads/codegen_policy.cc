#include "workloads/codegen_policy.hh"

#include "util/bits.hh"

namespace facsim
{

CodeGenPolicy
CodeGenPolicy::baseline()
{
    CodeGenPolicy p;
    p.softwareSupport = false;
    p.link = LinkPolicy{.alignGlobalPointer = false, .alignStatics = false};
    p.stack = StackPolicy{.spAlign = 8, .maxFrameAlign = 256,
                          .explicitAlignBigFrames = false};
    p.heap = HeapPolicy{.minAlign = 8};
    p.roundStructs = false;
    p.sortFrameScalars = false;
    return p;
}

CodeGenPolicy
CodeGenPolicy::withSupport()
{
    CodeGenPolicy p;
    p.softwareSupport = true;
    p.link = LinkPolicy{.alignGlobalPointer = true, .alignStatics = true,
                        .maxStaticAlign = 32};
    p.stack = StackPolicy{.spAlign = 64, .maxFrameAlign = 256,
                          .explicitAlignBigFrames = true};
    p.heap = HeapPolicy{.minAlign = 32};
    p.roundStructs = true;
    p.structPadCap = 16;
    p.sortFrameScalars = true;
    return p;
}

CodeGenPolicy
CodeGenPolicy::withLargeAlignment()
{
    CodeGenPolicy p = withSupport();
    p.link.alignArraysToSize = true;
    p.heap.alignToSize = true;
    return p;
}

uint32_t
CodeGenPolicy::structSize(uint32_t raw) const
{
    if (!roundStructs || raw == 0)
        return raw;
    uint32_t rounded = nextPow2(raw);
    if (rounded - raw > structPadCap)
        return raw;
    return rounded;
}

} // namespace facsim
