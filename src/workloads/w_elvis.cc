/**
 * @file
 * elvis: batch text substitution (%s/for/forever/g). A byte-granularity
 * scan of a large buffer with zero-offset post-increment loads — the
 * paper observes elvis has one of the lowest misprediction rates because
 * effectively no address computation is needed.
 */

#include "workloads/registry.hh"

namespace facsim
{

void
buildElvis(WorkloadContext &ctx)
{
    AsmBuilder &as = ctx.as;
    CommonGlobals g = declareCommonGlobals(ctx);

    const uint32_t src_bytes = 49152;
    const uint32_t passes = ctx.scaled(3);

    SymId src_ptr = as.global("src_ptr", 4, 4, true);
    SymId dst_ptr = as.global("dst_ptr", 4, 4, true);
    SymId match_ct = as.global("match_ct", 4, 4, true);
    SymId line_ct = as.global("line_ct", 4, 4, true);

    Frame fr(ctx, false);
    fr.seal();
    fr.prologue(as);

    as.li(reg::s5, static_cast<int32_t>(passes));

    LabelId pass = as.newLabel();
    LabelId loop = as.newLabel();
    LabelId plain = as.newLabel();
    LabelId not_nl = as.newLabel();
    LabelId next = as.newLabel();
    LabelId passend = as.newLabel();

    as.bind(pass);
    as.lwGp(reg::s0, src_ptr);                  // source cursor
    as.li(reg::t0, static_cast<int32_t>(src_bytes));
    as.add(reg::s1, reg::s0, reg::t0);          // source end
    as.lwGp(reg::s2, dst_ptr);                  // destination cursor

    as.bind(loop);
    as.lbuPost(reg::t0, reg::s0, 1);
    as.li(reg::t1, 'f');
    as.bne(reg::t0, reg::t1, plain);
    // Candidate match: peek at the next two bytes.
    as.lbu(reg::t2, 0, reg::s0);
    as.li(reg::t3, 'o');
    as.bne(reg::t2, reg::t3, plain);
    as.lbu(reg::t2, 1, reg::s0);
    as.li(reg::t3, 'r');
    as.bne(reg::t2, reg::t3, plain);
    // Matched "for": emit "forever" and skip the source tail.
    as.addi(reg::s0, reg::s0, 2);
    as.li(reg::t4, 'f');
    as.sbPost(reg::t4, reg::s2, 1);
    as.li(reg::t4, 'o');
    as.sbPost(reg::t4, reg::s2, 1);
    as.li(reg::t4, 'r');
    as.sbPost(reg::t4, reg::s2, 1);
    as.li(reg::t4, 'e');
    as.sbPost(reg::t4, reg::s2, 1);
    as.li(reg::t4, 'v');
    as.sbPost(reg::t4, reg::s2, 1);
    as.li(reg::t4, 'e');
    as.sbPost(reg::t4, reg::s2, 1);
    as.li(reg::t4, 'r');
    as.sbPost(reg::t4, reg::s2, 1);
    as.lwGp(reg::t5, match_ct);
    as.addi(reg::t5, reg::t5, 1);
    as.swGp(reg::t5, match_ct);
    as.j(next);

    as.bind(plain);
    as.sbPost(reg::t0, reg::s2, 1);
    as.li(reg::t6, '\n');
    as.bne(reg::t0, reg::t6, not_nl);
    as.lwGp(reg::t7, line_ct);
    as.addi(reg::t7, reg::t7, 1);
    as.swGp(reg::t7, line_ct);
    as.bind(not_nl);

    as.bind(next);
    as.sltu(reg::t8, reg::s0, reg::s1);
    as.bne(reg::t8, reg::zero, loop);
    as.bind(passend);
    as.addi(reg::s5, reg::s5, -1);
    as.bgtz(reg::s5, pass);

    as.lwGp(reg::t0, match_ct);
    as.lwGp(reg::t1, line_ct);
    as.add(reg::t0, reg::t0, reg::t1);
    as.swGp(reg::t0, g.result);
    as.halt();

    ctx.atInit([=](InitContext &ic) {
        uint32_t src = ic.heap.alloc(src_bytes + 8, 1);
        fillRandomText(ic.mem, src, src_bytes, ic.rng);
        // The source size is a multiple of the cache size: offset the
        // destination so the two equal-rate streams do not share cache
        // sets for the whole run.
        ic.heap.alloc(1040, 1);
        // Destination big enough for worst-case expansion (7/3 ratio).
        uint32_t dst = ic.heap.alloc(src_bytes * 3, 1);
        ic.mem.write32(ic.symAddr(src_ptr), src);
        ic.mem.write32(ic.symAddr(dst_ptr), dst);
    });
}

} // namespace facsim
