/**
 * @file
 * spice: sparse-matrix circuit solution. Compressed-sparse-row sweeps
 * gather the unknown vector through register+register addressing whose
 * index-register offsets (column * 8) are far larger than any feasible
 * alignment — the paper names spice as the benchmark where strength
 * reduction fails and array index misprediction dominates, with the
 * highest speculative bandwidth overhead in Table 6.
 */

#include "workloads/registry.hh"

namespace facsim
{

void
buildSpice(WorkloadContext &ctx)
{
    AsmBuilder &as = ctx.as;
    CommonGlobals g = declareCommonGlobals(ctx);

    const uint32_t nrows = 300;
    const uint32_t nnz_per_row = 10;
    const uint32_t nnz = nrows * nnz_per_row;
    const uint32_t sweeps = ctx.scaled(36);

    SymId rowptr_g = as.global("rowptr", (nrows + 1) * 4, 4, false);
    SymId colidx_g = as.global("colidx_ptr", 4, 4, true);
    SymId vals_g = as.global("vals_ptr", 4, 4, true);
    SymId xvec_g = as.global("xvec_ptr", 4, 4, true);
    SymId yvec_g = as.global("yvec_ptr", 4, 4, true);

    Frame fr(ctx, false);
    fr.seal();
    fr.prologue(as);

    as.la(reg::s0, rowptr_g);
    as.lwGp(reg::s1, colidx_g);
    as.lwGp(reg::s2, vals_g);
    as.lwGp(reg::s3, xvec_g);
    as.lwGp(reg::s4, yvec_g);
    as.li(reg::s5, static_cast<int32_t>(sweeps));

    LabelId sweep = as.newLabel();
    LabelId row = as.newLabel();
    LabelId nzloop = as.newLabel();
    LabelId rowdone = as.newLabel();

    as.bind(sweep);
    as.li(reg::s6, 0);                           // row index
    as.move(reg::t0, reg::s1);                   // colidx cursor
    as.move(reg::t1, reg::s2);                   // vals cursor
    as.move(reg::t2, reg::s4);                   // y cursor
    as.bind(row);
    // nnz count for this row from rowptr[r+1]-rowptr[r]
    as.sll(reg::t3, reg::s6, 2);
    as.add(reg::t3, reg::s0, reg::t3);
    as.lw(reg::t4, 0, reg::t3);
    as.lw(reg::t5, 4, reg::t3);
    as.sub(reg::t4, reg::t5, reg::t4);
    emitLoadConstD(as, 4, reg::t6, 0);           // row accumulator
    as.blez(reg::t4, rowdone);
    as.bind(nzloop);
    as.lwPost(reg::t6, reg::t0, 4);              // column index
    as.sll(reg::t6, reg::t6, 3);
    as.ldc1RR(5, reg::s3, reg::t6);              // x[col] — big R+R offset
    as.ldc1Post(6, reg::t1, 8);                  // matrix value
    as.mulD(5, 5, 6);
    as.addD(4, 4, 5);
    as.addi(reg::t4, reg::t4, -1);
    as.bgtz(reg::t4, nzloop);
    as.bind(rowdone);
    as.sdc1Post(4, reg::t2, 8);                  // y[r]
    as.addi(reg::s6, reg::s6, 1);
    as.li(reg::t7, static_cast<int32_t>(nrows));
    as.bne(reg::s6, reg::t7, row);
    // Gauss-Seidel-ish feedback: swap x and y for the next sweep.
    as.move(reg::t8, reg::s3);
    as.move(reg::s3, reg::s4);
    as.move(reg::s4, reg::t8);
    as.addi(reg::s5, reg::s5, -1);
    as.bgtz(reg::s5, sweep);

    // Result checksum from y[0].
    as.ldc1(7, 0, reg::s4);
    emitLoadConstD(as, 8, reg::t9, 1000);
    as.mulD(7, 7, 8);
    as.cvtWD(7, 7);
    as.mfc1(reg::t9, 7);
    as.swGp(reg::t9, g.result);
    as.halt();

    ctx.atInit([=](InitContext &ic) {
        uint32_t rp = ic.symAddr(rowptr_g);
        for (uint32_t r = 0; r <= nrows; ++r)
            ic.mem.write32(rp + 4 * r, r * nnz_per_row);
        uint32_t ci = ic.heap.alloc(nnz * 4, 4);
        for (uint32_t k = 0; k < nnz; ++k)
            ic.mem.write32(ci + 4 * k,
                           static_cast<uint32_t>(ic.rng.range(nrows)));
        uint32_t vals = ic.heap.alloc(nnz * 8, 8);
        // Scale values down so repeated sweeps stay bounded.
        for (uint32_t k = 0; k < nnz; ++k) {
            double v = (ic.rng.real() - 0.5) * 0.18;
            uint64_t bits64;
            __builtin_memcpy(&bits64, &v, 8);
            ic.mem.write64(vals + 8 * k, bits64);
        }
        uint32_t x = ic.heap.alloc(nrows * 8, 8);
        fillRandomDoubles(ic.mem, x, nrows, ic.rng);
        uint32_t y = ic.heap.alloc(nrows * 8, 8);
        ic.mem.write32(ic.symAddr(colidx_g), ci);
        ic.mem.write32(ic.symAddr(vals_g), vals);
        ic.mem.write32(ic.symAddr(xvec_g), x);
        ic.mem.write32(ic.symAddr(yvec_g), y);
    });
}

} // namespace facsim
