/**
 * @file
 * tomcatv: vectorised 2-D mesh generation. Interior-point sweeps over
 * N x N coordinate arrays reference the four neighbours: the same-row
 * neighbours are small +/-8 byte constants, the cross-row neighbours are
 * computed row displacements applied through register+register
 * addressing — the paper explains tomcatv's large offsets as failed
 * strength reduction forcing index-register array accesses.
 */

#include "workloads/registry.hh"

namespace facsim
{

void
buildTomcatv(WorkloadContext &ctx)
{
    AsmBuilder &as = ctx.as;
    CommonGlobals g = declareCommonGlobals(ctx);

    const uint32_t n = 96;                       // mesh dimension
    const uint32_t row_bytes = n * 8;
    const uint32_t iters = ctx.scaled(3);

    SymId x_ptr = as.global("xmesh_ptr", 4, 4, true);
    SymId rx_ptr = as.global("rxmesh_ptr", 4, 4, true);
    SymId err_g = as.global("residual", 8, 8, true);

    Frame fr(ctx, false);
    fr.seal();
    fr.prologue(as);

    as.lwGp(reg::s0, x_ptr);
    as.lwGp(reg::s1, rx_ptr);
    as.li(reg::s5, static_cast<int32_t>(iters));
    emitLoadConstD(as, 1, reg::t0, 4);

    LabelId iter = as.newLabel();
    LabelId iloop = as.newLabel();
    LabelId jloop = as.newLabel();
    LabelId addback = as.newLabel();

    as.bind(iter);
    // --- residual sweep: rx[i][j] = (neighbour avg) - x[i][j] ---
    as.li(reg::s2, 1);                           // i
    as.bind(iloop);
    // Row displacement computed at run time (strength reduction fails
    // across the outer loop in the original FORTRAN).
    as.li(reg::t1, static_cast<int32_t>(row_bytes));
    as.mul(reg::s3, reg::s2, reg::t1);           // i * row_bytes
    as.addi(reg::s4, reg::s3, 8);                // + first interior col
    as.li(reg::s6, static_cast<int32_t>(n - 2)); // columns
    as.bind(jloop);
    // x[i][j +/- 1]: small constant offsets off the computed element.
    as.add(reg::t2, reg::s0, reg::s4);           // &x[i][j]
    as.ldc1(4, -8, reg::t2);
    as.ldc1(5, 8, reg::t2);
    as.addD(4, 4, 5);
    // x[i +/- 1][j]: row-displaced accesses via reg+reg indexing.
    as.addi(reg::t3, reg::s4, static_cast<int32_t>(row_bytes));
    as.ldc1RR(6, reg::s0, reg::t3);
    as.addi(reg::t4, reg::s4, -static_cast<int32_t>(row_bytes));
    as.ldc1RR(7, reg::s0, reg::t4);
    as.addD(6, 6, 7);
    as.addD(4, 4, 6);
    as.divD(4, 4, 1);                            // neighbour average
    as.ldc1(8, 0, reg::t2);                      // x[i][j]
    as.subD(4, 4, 8);
    as.sdc1RR(4, reg::s1, reg::s4);              // rx[i][j]
    as.addi(reg::s4, reg::s4, 8);
    as.addi(reg::s6, reg::s6, -1);
    as.bgtz(reg::s6, jloop);
    as.addi(reg::s2, reg::s2, 1);
    as.li(reg::t5, static_cast<int32_t>(n - 1));
    as.bne(reg::s2, reg::t5, iloop);

    // --- add-back sweep: x += 0.5 * rx over the interior ---
    emitLoadConstD(as, 9, reg::t6, 2);
    as.li(reg::s2, 1);
    LabelId ai = as.newLabel();
    LabelId aj = as.newLabel();
    as.bind(ai);
    as.li(reg::t1, static_cast<int32_t>(row_bytes));
    as.mul(reg::s3, reg::s2, reg::t1);
    as.addi(reg::s4, reg::s3, 8);
    as.li(reg::s6, static_cast<int32_t>(n - 2));
    as.bind(aj);
    as.ldc1RR(10, reg::s1, reg::s4);             // rx
    as.divD(10, 10, 9);
    as.ldc1RR(11, reg::s0, reg::s4);             // x
    as.addD(11, 11, 10);
    as.sdc1RR(11, reg::s0, reg::s4);
    as.addi(reg::s4, reg::s4, 8);
    as.addi(reg::s6, reg::s6, -1);
    as.bgtz(reg::s6, aj);
    as.addi(reg::s2, reg::s2, 1);
    as.li(reg::t5, static_cast<int32_t>(n - 1));
    as.bne(reg::s2, reg::t5, ai);
    as.bind(addback);

    as.addi(reg::s5, reg::s5, -1);
    as.bgtz(reg::s5, iter);

    // Residual checksum from the mesh centre.
    as.li(reg::t7, static_cast<int32_t>((n / 2) * row_bytes + (n / 2) * 8));
    as.ldc1RR(12, reg::s0, reg::t7);
    emitLoadConstD(as, 13, reg::t8, 100000);
    as.mulD(12, 12, 13);
    as.cvtWD(12, 12);
    as.mfc1(reg::t9, 12);
    as.swGp(reg::t9, g.result);
    as.sdc1Gp(12, err_g);
    as.halt();

    ctx.atInit([=](InitContext &ic) {
        uint32_t x = ic.heap.alloc(n * n * 8, 8);
        fillRandomDoubles(ic.mem, x, n * n, ic.rng);
        uint32_t rx = ic.heap.alloc(n * n * 8, 8);
        ic.mem.write32(ic.symAddr(x_ptr), x);
        ic.mem.write32(ic.symAddr(rx_ptr), rx);
    });
}

} // namespace facsim
