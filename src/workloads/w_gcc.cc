/**
 * @file
 * gcc: recursive IR-tree constant folding over obstack-allocated nodes.
 * The nodes come from a domain-specific packed allocator that defeats the
 * malloc alignment optimization — the paper singles out GCC's own storage
 * allocators as a leading cause of its residual mispredictions. The
 * recursive walk produces deep call chains with ra saves and spills
 * (stack traffic) and small-constant structure-field offsets (general
 * traffic).
 */

#include "workloads/registry.hh"

namespace facsim
{

void
buildGcc(WorkloadContext &ctx)
{
    AsmBuilder &as = ctx.as;
    CommonGlobals g = declareCommonGlobals(ctx);

    const uint32_t ntrees = 24;
    const uint32_t nodes_per_tree = 401;   // odd → complete-ish binary tree
    const uint32_t reps = ctx.scaled(3);
    // Node layout: code @0, flags @4, val @8, left @12, right @16.
    const uint32_t node_bytes = 20;

    SymId roots = as.global("tree_roots", ntrees * 4, 4, false);
    SymId fold_calls = as.global("fold_calls", 4, 4, true);

    LabelId fold = as.newLabel();

    // ---- main ----
    Frame fr(ctx, true);
    fr.seal();
    fr.prologue(as);
    as.la(reg::s0, roots);
    as.li(reg::s5, static_cast<int32_t>(reps));
    as.li(reg::s6, 0);                        // checksum

    LabelId rep = as.newLabel();
    LabelId treeloop = as.newLabel();
    as.bind(rep);
    as.li(reg::s1, 0);
    as.bind(treeloop);
    as.sll(reg::t0, reg::s1, 2);
    as.lwRR(reg::a0, reg::s0, reg::t0);       // root pointer
    as.jal(fold);
    as.add(reg::s6, reg::s6, reg::v0);
    as.addi(reg::s1, reg::s1, 1);
    as.li(reg::t1, static_cast<int32_t>(ntrees));
    as.bne(reg::s1, reg::t1, treeloop);
    as.addi(reg::s5, reg::s5, -1);
    as.bgtz(reg::s5, rep);

    as.lwGp(reg::t0, fold_calls);
    as.add(reg::t0, reg::t0, reg::s6);
    as.swGp(reg::t0, g.result);
    as.halt();

    // ---- fold(a0 = node) -> v0 = folded value ----
    as.bind(fold);
    LabelId retzero = as.newLabel();
    as.beq(reg::a0, reg::zero, retzero);
    Frame ff(ctx, true);
    unsigned node_slot = ff.addScalar();
    unsigned part_slot = ff.addScalar();
    ff.seal();
    ff.prologue(as);
    as.sw(reg::a0, ff.off(node_slot), reg::sp);
    as.lwGp(reg::t5, fold_calls);
    as.addi(reg::t5, reg::t5, 1);
    as.swGp(reg::t5, fold_calls);
    as.lw(reg::a0, 12, reg::a0);              // left child
    as.jal(fold);
    as.sw(reg::v0, ff.off(part_slot), reg::sp);
    as.lw(reg::t0, ff.off(node_slot), reg::sp);
    as.lw(reg::a0, 16, reg::t0);              // right child
    as.jal(fold);
    as.lw(reg::t0, ff.off(node_slot), reg::sp);
    as.lw(reg::t1, ff.off(part_slot), reg::sp);
    as.add(reg::v0, reg::v0, reg::t1);
    as.lw(reg::t2, 8, reg::t0);               // val
    as.add(reg::v0, reg::v0, reg::t2);
    as.lw(reg::t3, 0, reg::t0);               // code
    as.andi(reg::t3, reg::t3, 1);
    LabelId nostore = as.newLabel();
    as.beq(reg::t3, reg::zero, nostore);
    as.sw(reg::v0, 8, reg::t0);               // fold in place
    as.bind(nostore);
    ff.epilogueAndRet(as);
    as.bind(retzero);
    as.li(reg::v0, 0);
    as.jr(reg::ra);

    ctx.atInit([=](InitContext &ic) {
        uint32_t tab = ic.symAddr(roots);
        for (uint32_t t = 0; t < ntrees; ++t) {
            // Obstack-style packed allocation (poorly aligned on purpose).
            std::vector<uint32_t> node(nodes_per_tree);
            for (uint32_t i = 0; i < nodes_per_tree; ++i)
                node[i] = ic.heap.allocPacked(node_bytes);
            // Random permutation shapes the tree: perm[i]'s children are
            // perm[2i+1], perm[2i+2].
            std::vector<uint32_t> perm(nodes_per_tree);
            for (uint32_t i = 0; i < nodes_per_tree; ++i)
                perm[i] = i;
            for (uint32_t i = nodes_per_tree - 1; i > 0; --i) {
                uint32_t j = static_cast<uint32_t>(ic.rng.range(i + 1));
                std::swap(perm[i], perm[j]);
            }
            for (uint32_t i = 0; i < nodes_per_tree; ++i) {
                uint32_t n = node[perm[i]];
                uint32_t l = 2 * i + 1 < nodes_per_tree
                    ? node[perm[2 * i + 1]] : 0;
                uint32_t r = 2 * i + 2 < nodes_per_tree
                    ? node[perm[2 * i + 2]] : 0;
                ic.mem.write32(n + 0,
                               static_cast<uint32_t>(ic.rng.range(4)));
                ic.mem.write32(n + 4, 0);
                ic.mem.write32(n + 8,
                               static_cast<uint32_t>(ic.rng.range(100)));
                ic.mem.write32(n + 12, l);
                ic.mem.write32(n + 16, r);
            }
            ic.mem.write32(tab + 4 * t, node[perm[0]]);
        }
    });
}

} // namespace facsim
