/**
 * @file
 * alvinn: back-propagation neural network training. Forward and weight-
 * update passes stream the weight matrix and input vector with
 * zero-offset post-increment double loads — the strength-reduced access
 * pattern behind alvinn's near-perfect prediction rate in Table 3.
 */

#include "workloads/registry.hh"

namespace facsim
{

void
buildAlvinn(WorkloadContext &ctx)
{
    AsmBuilder &as = ctx.as;
    CommonGlobals g = declareCommonGlobals(ctx);

    const uint32_t nin = 200;
    const uint32_t nhid = 40;
    const uint32_t epochs = ctx.scaled(6);

    SymId in_ptr = as.global("input_ptr", 4, 4, true);
    SymId w_ptr = as.global("weights_ptr", 4, 4, true);
    SymId h_ptr = as.global("hidden_ptr", 4, 4, true);
    SymId err_acc = as.global("err_acc", 8, 8, true);

    Frame fr(ctx, false);
    fr.seal();
    fr.prologue(as);

    as.lwGp(reg::s0, in_ptr);
    as.lwGp(reg::s1, w_ptr);
    as.lwGp(reg::s2, h_ptr);
    as.li(reg::s5, static_cast<int32_t>(epochs));
    emitLoadConstD(as, 1, reg::t0, 1);          // f1 = 1.0
    emitLoadConstD(as, 2, reg::t0, 0);          // f2 = 0.0 (error acc)
    // Small learning-rate: 1/64.
    emitLoadConstD(as, 3, reg::t0, 64);
    as.divD(3, 1, 3);                           // f3 = 1/64

    LabelId epoch = as.newLabel();
    LabelId fwd_h = as.newLabel();
    LabelId fwd_i = as.newLabel();
    LabelId bwd_h = as.newLabel();
    LabelId bwd_i = as.newLabel();

    as.bind(epoch);
    // --- forward: hidden[h] = squash(sum_i w[h][i] * in[i]) ---
    as.move(reg::t0, reg::s1);                  // weight cursor
    as.move(reg::t1, reg::s2);                  // hidden cursor
    as.li(reg::t2, static_cast<int32_t>(nhid));
    as.bind(fwd_h);
    as.move(reg::t3, reg::s0);                  // input cursor
    as.li(reg::t4, static_cast<int32_t>(nin));
    as.movD(4, 2);                              // acc = 0 (f2 stays 0)
    as.bind(fwd_i);
    as.ldc1Post(5, reg::t0, 8);                 // w
    as.ldc1Post(6, reg::t3, 8);                 // in
    as.mulD(5, 5, 6);
    as.addD(4, 4, 5);
    as.addi(reg::t4, reg::t4, -1);
    as.bgtz(reg::t4, fwd_i);
    // squash(x) = x / (1 + |x|)
    as.absD(7, 4);
    as.addD(7, 7, 1);
    as.divD(4, 4, 7);
    as.sdc1Post(4, reg::t1, 8);                 // hidden[h]
    as.addi(reg::t2, reg::t2, -1);
    as.bgtz(reg::t2, fwd_h);

    // --- backward: w[h][i] += lr * hidden[h] * in[i] ---
    as.move(reg::t0, reg::s1);
    as.move(reg::t1, reg::s2);
    as.li(reg::t2, static_cast<int32_t>(nhid));
    as.bind(bwd_h);
    as.ldc1Post(8, reg::t1, 8);                 // delta_h = hidden[h]
    as.mulD(8, 8, 3);                           // * lr
    as.move(reg::t3, reg::s0);
    as.li(reg::t4, static_cast<int32_t>(nin));
    as.bind(bwd_i);
    as.ldc1(9, 0, reg::t0);                     // w
    as.ldc1Post(10, reg::t3, 8);                // in
    as.mulD(10, 10, 8);
    as.addD(9, 9, 10);
    as.sdc1Post(9, reg::t0, 8);                 // w updated
    as.addi(reg::t4, reg::t4, -1);
    as.bgtz(reg::t4, bwd_i);
    as.addi(reg::t2, reg::t2, -1);
    as.bgtz(reg::t2, bwd_h);

    as.addi(reg::s5, reg::s5, -1);
    as.bgtz(reg::s5, epoch);

    // Publish a scalar result: the last hidden value, scaled to int.
    as.ldc1(11, -8, reg::t1);
    emitLoadConstD(as, 12, reg::t6, 10000);
    as.mulD(11, 11, 12);
    as.cvtWD(11, 11);
    as.mfc1(reg::t7, 11);
    as.sdc1Gp(4, err_acc);
    as.swGp(reg::t7, g.result);
    as.halt();

    ctx.atInit([=](InitContext &ic) {
        uint32_t in_buf = ic.heap.alloc(nin * 8, 8);
        fillRandomDoubles(ic.mem, in_buf, nin, ic.rng);
        uint32_t w_buf = ic.heap.alloc(nin * nhid * 8, 8);
        fillRandomDoubles(ic.mem, w_buf, nin * nhid, ic.rng);
        uint32_t h_buf = ic.heap.alloc(nhid * 8, 8);
        ic.mem.write32(ic.symAddr(in_ptr), in_buf);
        ic.mem.write32(ic.symAddr(w_ptr), w_buf);
        ic.mem.write32(ic.symAddr(h_ptr), h_buf);
    });
}

} // namespace facsim
