#include "workloads/kernel_lib.hh"

#include <algorithm>

#include "util/bits.hh"
#include "util/logging.hh"

namespace facsim
{

Frame::Frame(WorkloadContext &ctx, bool saves_ra)
    : pol(ctx.pol), savesRa(saves_ra)
{
}

unsigned
Frame::addScalar(uint32_t bytes, uint32_t align)
{
    FACSIM_ASSERT(!sealed, "frame already sealed");
    slots.push_back(Slot{bytes, align, true});
    return static_cast<unsigned>(slots.size() - 1);
}

unsigned
Frame::addArray(uint32_t bytes, uint32_t align)
{
    FACSIM_ASSERT(!sealed, "frame already sealed");
    slots.push_back(Slot{bytes, align, false});
    return static_cast<unsigned>(slots.size() - 1);
}

void
Frame::seal()
{
    FACSIM_ASSERT(!sealed, "frame sealed twice");
    sealed = true;

    // Layout order: with the software support, scalars go closest to the
    // stack pointer so their offsets stay below the sp alignment; without
    // it, slots land in declaration order (arrays interleaved with
    // scalars, pushing scalar offsets up — normal GCC behaviour).
    std::vector<unsigned> order(slots.size());
    for (unsigned i = 0; i < slots.size(); ++i)
        order[i] = i;
    if (pol.sortFrameScalars) {
        std::stable_sort(order.begin(), order.end(),
                         [&](unsigned a, unsigned b) {
                             return slots[a].scalar && !slots[b].scalar;
                         });
    }

    uint32_t cursor = 0;
    for (unsigned idx : order) {
        Slot &s = slots[idx];
        cursor = static_cast<uint32_t>(roundUp(cursor, s.align));
        s.offset = static_cast<int32_t>(cursor);
        cursor += s.bytes;
    }

    // Save area at the top of the frame (register save overhead the
    // paper notes as invisible to high-level programmers).
    if (savesRa) {
        cursor = static_cast<uint32_t>(roundUp(cursor, 4));
        raOffset = static_cast<int32_t>(cursor);
        cursor += 4;
    }

    cursor = static_cast<uint32_t>(roundUp(cursor, 4));
    uint32_t rounded = pol.stack.frameSize(cursor);
    bigAligned = pol.stack.explicitAlignBigFrames &&
        rounded > pol.stack.spAlign;
    if (bigAligned) {
        // Room to save the caller's sp in an explicitly aligned frame.
        oldSpOffset = static_cast<int32_t>(cursor);
        cursor += 4;
        frameBytes = pol.stack.frameSize(cursor);
    } else {
        frameBytes = rounded;
    }
    frameAlign_ = pol.stack.frameAlign(frameBytes);
}

int32_t
Frame::off(unsigned slot) const
{
    FACSIM_ASSERT(sealed, "frame not sealed");
    return slots.at(slot).offset;
}

uint32_t
Frame::size() const
{
    FACSIM_ASSERT(sealed, "frame not sealed");
    return frameBytes;
}

void
Frame::prologue(AsmBuilder &as) const
{
    FACSIM_ASSERT(sealed, "frame not sealed");
    if (bigAligned) {
        // Paper Section 4: sp = (sp - frame) & -align; the caller's sp
        // is saved in the frame and restored on return.
        as.move(reg::k0, reg::sp);
        as.addi(reg::sp, reg::sp, -static_cast<int32_t>(frameBytes));
        as.li(reg::k1, -static_cast<int32_t>(frameAlign_));
        as.and_(reg::sp, reg::sp, reg::k1);
        as.sw(reg::k0, oldSpOffset, reg::sp);
    } else {
        as.addi(reg::sp, reg::sp, -static_cast<int32_t>(frameBytes));
    }
    if (savesRa)
        as.sw(reg::ra, raOffset, reg::sp);
}

void
Frame::epilogueAndRet(AsmBuilder &as) const
{
    FACSIM_ASSERT(sealed, "frame not sealed");
    if (savesRa)
        as.lw(reg::ra, raOffset, reg::sp);
    if (bigAligned)
        as.lw(reg::sp, oldSpOffset, reg::sp);
    else
        as.addi(reg::sp, reg::sp, static_cast<int32_t>(frameBytes));
    as.jr(reg::ra);
}

void
emitCountedLoop(AsmBuilder &as, uint8_t counter,
                const std::function<void()> &body)
{
    LabelId top = as.newLabel();
    as.bind(top);
    body();
    as.addi(counter, counter, -1);
    as.bgtz(counter, top);
}

void
fillRandomWords(Memory &mem, uint32_t addr, uint32_t count, Rng &rng,
                uint32_t mask)
{
    for (uint32_t i = 0; i < count; ++i)
        mem.write32(addr + 4 * i, static_cast<uint32_t>(rng.next()) & mask);
}

void
fillRandomDoubles(Memory &mem, uint32_t addr, uint32_t count, Rng &rng)
{
    for (uint32_t i = 0; i < count; ++i) {
        double d = rng.real();
        uint64_t bits64;
        __builtin_memcpy(&bits64, &d, 8);
        mem.write64(addr + 8 * i, bits64);
    }
}

CommonGlobals
declareCommonGlobals(WorkloadContext &ctx, uint32_t pad_bytes)
{
    CommonGlobals g;
    g.lowScalarA = ctx.as.global("low_scalar_a", 4, 4, true);
    g.lowScalarB = ctx.as.global("low_scalar_b", 4, 4, true);
    ctx.as.global("sdata_pad", pad_bytes, 8, true);
    g.result = ctx.as.global("result", 4, 4, true);
    return g;
}

void
emitLoadConstD(AsmBuilder &as, uint8_t fd, uint8_t tmp, int32_t value)
{
    as.li(tmp, value);
    as.mtc1(fd, tmp);
    as.cvtDW(fd, fd);
}

void
fillRandomText(Memory &mem, uint32_t addr, uint32_t count, Rng &rng)
{
    static const char alphabet[] =
        "abcdefghijklmnopqrstuvwxyz     for the and to in of a ";
    for (uint32_t i = 0; i < count; ++i) {
        char c = alphabet[rng.range(sizeof(alphabet) - 1)];
        mem.write8(addr + i, static_cast<uint8_t>(c));
    }
}

} // namespace facsim
