/**
 * @file
 * yacr2: VLSI channel routing. Builds the vertical constraint graph for a
 * 230-terminal channel — an O(N^2) pairwise sweep over the top/bottom
 * terminal arrays with computed indexing into a byte matrix larger than
 * the data cache, plus a column-density scan.
 */

#include "workloads/registry.hh"

namespace facsim
{

void
buildYacr2(WorkloadContext &ctx)
{
    AsmBuilder &as = ctx.as;
    CommonGlobals g = declareCommonGlobals(ctx);

    const uint32_t nterm = 230;
    const uint32_t nnets = 64;
    const uint32_t passes = ctx.scaled(8);

    SymId top_tab = as.global("top_terms", nterm * 4, 4, false);
    SymId bot_tab = as.global("bot_terms", nterm * 4, 4, false);
    SymId vcg_ptr = as.global("vcg_ptr", 4, 4, true);
    SymId edge_ct = as.global("edge_ct", 4, 4, true);
    SymId max_density = as.global("max_density", 4, 4, true);

    Frame fr(ctx, false);
    fr.seal();
    fr.prologue(as);

    as.la(reg::s0, top_tab);
    as.la(reg::s1, bot_tab);
    as.lwGp(reg::s2, vcg_ptr);
    as.li(reg::s5, static_cast<int32_t>(passes));

    LabelId pass = as.newLabel();
    LabelId iloop = as.newLabel();
    LabelId jloop = as.newLabel();
    LabelId noedge = as.newLabel();
    LabelId jdone = as.newLabel();
    LabelId dloop = as.newLabel();
    LabelId nomax = as.newLabel();

    as.bind(pass);
    // --- vertical constraint sweep: vcg[i*N+j] = (top[i] == bot[j]) ---
    as.li(reg::s3, 0);                          // i
    as.li(reg::s6, 0);                          // edges this pass
    as.bind(iloop);
    as.sll(reg::t0, reg::s3, 2);
    as.lwRR(reg::t1, reg::s0, reg::t0);         // top[i]
    as.li(reg::t2, static_cast<int32_t>(nterm));
    as.mul(reg::t3, reg::s3, reg::t2);
    as.add(reg::t3, reg::s2, reg::t3);          // &vcg[i*N]
    as.move(reg::t4, reg::s1);                  // bottom cursor
    as.li(reg::t5, static_cast<int32_t>(nterm));
    as.bind(jloop);
    as.lwPost(reg::t6, reg::t4, 4);             // bot[j]
    as.li(reg::t7, 0);
    as.bne(reg::t6, reg::t1, noedge);
    as.li(reg::t7, 1);
    as.addi(reg::s6, reg::s6, 1);
    as.bind(noedge);
    as.sbPost(reg::t7, reg::t3, 1);             // vcg byte
    as.addi(reg::t5, reg::t5, -1);
    as.bgtz(reg::t5, jloop);
    as.bind(jdone);
    as.addi(reg::s3, reg::s3, 1);
    as.li(reg::t8, static_cast<int32_t>(nterm));
    as.bne(reg::s3, reg::t8, iloop);

    as.lwGp(reg::t9, edge_ct);
    as.add(reg::t9, reg::t9, reg::s6);
    as.swGp(reg::t9, edge_ct);

    // --- channel density scan over columns ---
    as.move(reg::t0, reg::s0);
    as.move(reg::t1, reg::s1);
    as.li(reg::t2, static_cast<int32_t>(nterm));
    as.li(reg::t3, 0);                          // running density proxy
    as.bind(dloop);
    as.lwPost(reg::t4, reg::t0, 4);
    as.lwPost(reg::t5, reg::t1, 4);
    as.add(reg::t6, reg::t4, reg::t5);
    as.slt(reg::t7, reg::t3, reg::t6);
    as.beq(reg::t7, reg::zero, nomax);
    as.move(reg::t3, reg::t6);
    as.bind(nomax);
    as.addi(reg::t2, reg::t2, -1);
    as.bgtz(reg::t2, dloop);
    as.swGp(reg::t3, max_density);

    as.addi(reg::s5, reg::s5, -1);
    as.bgtz(reg::s5, pass);

    as.lwGp(reg::t0, edge_ct);
    as.lwGp(reg::t1, max_density);
    as.add(reg::t0, reg::t0, reg::t1);
    as.swGp(reg::t0, g.result);
    as.halt();

    ctx.atInit([=](InitContext &ic) {
        uint32_t top = ic.symAddr(top_tab);
        uint32_t bot = ic.symAddr(bot_tab);
        for (uint32_t i = 0; i < nterm; ++i) {
            ic.mem.write32(top + 4 * i,
                           static_cast<uint32_t>(ic.rng.range(nnets)));
            ic.mem.write32(bot + 4 * i,
                           static_cast<uint32_t>(ic.rng.range(nnets)));
        }
        uint32_t vcg = ic.heap.alloc(nterm * nterm, 8);
        ic.mem.write32(ic.symAddr(vcg_ptr), vcg);
    });
}

} // namespace facsim
