/**
 * @file
 * grep: table-driven DFA scan over a large text buffer (-E -f regex.in).
 * The hot loop performs register+register loads into two *small* arrays
 * (a 256-byte character-class map and a 128-byte transition table) — the
 * access pattern behind the paper's observation that grep gains from
 * speculating R+R accesses, whose small indices often survive the
 * block-offset full add.
 */

#include "workloads/registry.hh"

namespace facsim
{

void
buildGrep(WorkloadContext &ctx)
{
    AsmBuilder &as = ctx.as;
    CommonGlobals g = declareCommonGlobals(ctx);

    const uint32_t text_bytes = 49152;
    const uint32_t passes = ctx.scaled(2);
    const uint32_t nstates = 16;
    const uint32_t nclasses = 8;
    const uint32_t accept_state = nstates - 1;

    SymId text_ptr = as.global("text_ptr", 4, 4, true);
    // The character-class map is aligned to its size, as lex-generated
    // scanners commonly arrange; together with the small row index this
    // makes grep's R+R accesses predict well (Section 5.5).
    SymId class_tab = as.global("class_tab", 256, 256, true);
    SymId dfa_tab = as.global("dfa_tab", nstates * nclasses, 8, true);
    SymId match_ct = as.global("match_ct", 4, 4, true);
    SymId hits_ptr = as.global("hits_ptr", 4, 4, true);

    Frame fr(ctx, false);
    fr.seal();
    fr.prologue(as);

    as.li(reg::s5, static_cast<int32_t>(passes));
    as.laGp(reg::s2, class_tab);               // small-array bases
    as.laGp(reg::s3, dfa_tab);

    LabelId pass = as.newLabel();
    LabelId loop = as.newLabel();
    LabelId noacc = as.newLabel();

    as.bind(pass);
    as.lwGp(reg::s0, text_ptr);
    as.li(reg::t0, static_cast<int32_t>(text_bytes));
    as.add(reg::s1, reg::s0, reg::t0);
    as.lwGp(reg::s7, hits_ptr);                // match-position cursor
    as.li(reg::s4, 0);                         // DFA state
    as.li(reg::s6, 0);                         // match count this pass

    as.bind(loop);
    as.lbuPost(reg::t0, reg::s0, 1);
    as.lbuRR(reg::t1, reg::s2, reg::t0);       // class = class_tab[c]
    as.sll(reg::t2, reg::s4, 3);               // state * nclasses
    as.add(reg::t2, reg::s3, reg::t2);         // &dfa[state][0]
    // R+R access into a *small* row: the index is < 8 bytes, so the
    // block-offset full adder absorbs it — the accesses behind grep's
    // "stellar improvement" from R+R speculation (Section 5.5).
    as.lbuRR(reg::s4, reg::t2, reg::t1);       // next state
    as.li(reg::t3, static_cast<int32_t>(accept_state));
    as.bne(reg::s4, reg::t3, noacc);
    as.addi(reg::s6, reg::s6, 1);
    as.swPost(reg::s0, reg::s7, 4);            // record match position
    as.li(reg::s4, 0);
    as.bind(noacc);
    as.bne(reg::s0, reg::s1, loop);

    as.lwGp(reg::t4, match_ct);
    as.add(reg::t4, reg::t4, reg::s6);
    as.swGp(reg::t4, match_ct);
    as.addi(reg::s5, reg::s5, -1);
    as.bgtz(reg::s5, pass);

    as.lwGp(reg::t0, match_ct);
    as.swGp(reg::t0, g.result);
    as.halt();

    ctx.atInit([=](InitContext &ic) {
        uint32_t text = ic.heap.alloc(text_bytes, 1);
        fillRandomText(ic.mem, text, text_bytes, ic.rng);
        ic.mem.write32(ic.symAddr(text_ptr), text);
        // Worst case every byte matches; one slot per input byte.
        uint32_t hits = ic.heap.alloc(text_bytes * 4, 4);
        ic.mem.write32(ic.symAddr(hits_ptr), hits);
        // Character classes: map the alphabet onto nclasses buckets.
        uint32_t cls = ic.symAddr(class_tab);
        for (uint32_t c = 0; c < 256; ++c)
            ic.mem.write8(cls + c, static_cast<uint8_t>(c % nclasses));
        // Random DFA biased toward state 0, with enough edges into the
        // accept state that matches occur at a few percent of bytes.
        uint32_t dfa = ic.symAddr(dfa_tab);
        for (uint32_t s = 0; s < nstates; ++s) {
            for (uint32_t k = 0; k < nclasses; ++k) {
                uint8_t nxt;
                if (ic.rng.chance(0.5))
                    nxt = 0;
                else if (ic.rng.chance(0.1))
                    nxt = static_cast<uint8_t>(accept_state);
                else
                    nxt = static_cast<uint8_t>(ic.rng.range(nstates));
                ic.mem.write8(dfa + s * nclasses + k, nxt);
            }
        }
    });
}

} // namespace facsim
