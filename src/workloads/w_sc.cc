/**
 * @file
 * sc: spreadsheet grid recalculation. A heap matrix of 16-byte cell
 * records is re-evaluated pass after pass: formula cells pull the values
 * of their two dependencies (indexed pointer arithmetic with small
 * constant field offsets), and a column-sum sweep strides the grid with
 * post-increment accesses. Grid size exceeds the 16 KB data cache.
 */

#include "workloads/registry.hh"

namespace facsim
{

void
buildSc(WorkloadContext &ctx)
{
    AsmBuilder &as = ctx.as;
    CommonGlobals g = declareCommonGlobals(ctx);

    const uint32_t rows = 48;
    const uint32_t cols = 48;
    const uint32_t ncells = rows * cols;       // 2304 cells, 36 KB
    const uint32_t passes = ctx.scaled(9);
    // Cell layout: type @0, val @4, depA @8, depB @12.

    SymId grid_ptr = as.global("grid_ptr", 4, 4, true);
    SymId recalc_ct = as.global("recalc_ct", 4, 4, true);

    LabelId eval_cell = as.newLabel();

    Frame fr(ctx, true);
    fr.seal();
    fr.prologue(as);

    as.lwGp(reg::s0, grid_ptr);
    as.li(reg::s5, static_cast<int32_t>(passes));

    LabelId pass = as.newLabel();
    LabelId cellloop = as.newLabel();
    LabelId plain = as.newLabel();
    LabelId colloop = as.newLabel();
    LabelId rowloop = as.newLabel();

    as.bind(pass);
    // --- formula evaluation sweep: formula cells call eval_cell() ---
    as.li(reg::s1, 0);                          // cell index
    as.move(reg::s7, reg::s0);                  // cell cursor
    as.bind(cellloop);
    as.lw(reg::t0, 0, reg::s7);                 // type
    as.beq(reg::t0, reg::zero, plain);
    as.move(reg::a0, reg::s7);
    as.jal(eval_cell);
    as.bind(plain);
    as.addi(reg::s7, reg::s7, 16);
    as.addi(reg::s1, reg::s1, 1);
    as.li(reg::t6, static_cast<int32_t>(ncells));
    as.bne(reg::s1, reg::t6, cellloop);

    // --- column-sum sweep: stride = one row of cells ---
    as.li(reg::s2, 0);                          // column
    as.li(reg::s6, 0);                          // grand total
    as.bind(colloop);
    as.sll(reg::t0, reg::s2, 4);
    as.add(reg::t0, reg::s0, reg::t0);          // &grid[0][col]
    as.addi(reg::t0, reg::t0, 4);               // -> val field
    as.li(reg::t1, static_cast<int32_t>(rows));
    as.bind(rowloop);
    as.lwPost(reg::t2, reg::t0,
              static_cast<int32_t>(cols * 16));
    as.add(reg::s6, reg::s6, reg::t2);
    as.addi(reg::t1, reg::t1, -1);
    as.bgtz(reg::t1, rowloop);
    as.addi(reg::s2, reg::s2, 1);
    as.li(reg::t3, static_cast<int32_t>(cols));
    as.bne(reg::s2, reg::t3, colloop);

    as.addi(reg::s5, reg::s5, -1);
    as.bgtz(reg::s5, pass);

    as.swGp(reg::s6, g.result);
    as.halt();

    // ---- eval_cell(a0 = &cell): val = dep(A).val + dep(B).val ----
    // The cell pointer is spilled and reloaded around the dependency
    // loads, the register-starved pattern sc's interpreter shows.
    as.bind(eval_cell);
    Frame ef(ctx, false);
    unsigned cell_slot = ef.addScalar();
    unsigned acc_slot = ef.addScalar();
    ef.seal();
    ef.prologue(as);
    as.sw(reg::a0, ef.off(cell_slot), reg::sp);
    as.lw(reg::t1, 8, reg::a0);                 // depA index
    as.sll(reg::t1, reg::t1, 4);
    as.add(reg::t1, reg::s0, reg::t1);
    as.lw(reg::t3, 4, reg::t1);                 // depA value
    as.sw(reg::t3, ef.off(acc_slot), reg::sp);
    as.lw(reg::t0, ef.off(cell_slot), reg::sp);
    as.lw(reg::t2, 12, reg::t0);                // depB index
    as.sll(reg::t2, reg::t2, 4);
    as.add(reg::t2, reg::s0, reg::t2);
    as.lw(reg::t4, 4, reg::t2);                 // depB value
    as.lw(reg::t3, ef.off(acc_slot), reg::sp);
    as.add(reg::t3, reg::t3, reg::t4);
    as.sw(reg::t3, 4, reg::t0);                 // cell value
    as.lwGp(reg::t5, recalc_ct);
    as.addi(reg::t5, reg::t5, 1);
    as.swGp(reg::t5, recalc_ct);
    ef.epilogueAndRet(as);

    ctx.atInit([=](InitContext &ic) {
        uint32_t grid = ic.heap.alloc(ncells * 16, 8);
        for (uint32_t i = 0; i < ncells; ++i) {
            uint32_t cell = grid + 16 * i;
            bool formula = ic.rng.chance(0.4);
            ic.mem.write32(cell + 0, formula ? 1 : 0);
            ic.mem.write32(cell + 4,
                           static_cast<uint32_t>(ic.rng.range(1000)));
            ic.mem.write32(cell + 8,
                           static_cast<uint32_t>(ic.rng.range(ncells)));
            ic.mem.write32(cell + 12,
                           static_cast<uint32_t>(ic.rng.range(ncells)));
        }
        ic.mem.write32(ic.symAddr(grid_ptr), grid);
    });
}

} // namespace facsim
