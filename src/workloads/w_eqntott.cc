/**
 * @file
 * eqntott: truth-table comparison sort. The dominant loop is the cmppt-
 * style vector compare invoked from an insertion sort over an array of
 * bit-vector pointers — call-heavy code with argument spills (stack
 * traffic), a global compare counter (gp traffic), and word-stream
 * compares through post-increment loads.
 */

#include "workloads/registry.hh"

namespace facsim
{

void
buildEqntott(WorkloadContext &ctx)
{
    AsmBuilder &as = ctx.as;
    CommonGlobals g = declareCommonGlobals(ctx);

    const uint32_t nvec = 128;
    const uint32_t words = 16;
    const uint32_t reps = ctx.scaled(4);

    SymId vec_ptrs = as.global("vec_ptrs", 4, 4, true);
    SymId cmp_count = as.global("cmp_count", 4, 4, true);

    LabelId cmp = as.newLabel();

    // ---- main ----
    Frame fr(ctx, true);
    fr.seal();
    fr.prologue(as);

    as.lwGp(reg::s0, vec_ptrs);
    as.li(reg::s5, static_cast<int32_t>(reps));

    LabelId rep = as.newLabel();
    LabelId outer = as.newLabel();
    LabelId inner = as.newLabel();
    LabelId insert_done = as.newLabel();
    LabelId revloop = as.newLabel();
    LabelId revdone = as.newLabel();

    as.bind(rep);
    as.li(reg::s1, 1);                       // i
    as.bind(outer);
    as.sll(reg::t0, reg::s1, 2);
    as.add(reg::t1, reg::s0, reg::t0);       // &ptr[i]
    as.lw(reg::s3, 0, reg::t1);              // key
    as.addi(reg::s2, reg::s1, -1);           // j
    as.addi(reg::t2, reg::t1, -4);           // p = &ptr[j]
    as.bind(inner);
    as.bltz(reg::s2, insert_done);
    as.lw(reg::a0, 0, reg::t2);              // ptr[j]
    as.move(reg::a1, reg::s3);
    as.jal(cmp);
    as.blez(reg::v0, insert_done);
    as.lw(reg::t3, 0, reg::t2);
    as.sw(reg::t3, 4, reg::t2);              // ptr[j+1] = ptr[j]
    as.addi(reg::s2, reg::s2, -1);
    as.addi(reg::t2, reg::t2, -4);
    as.j(inner);
    as.bind(insert_done);
    as.sw(reg::s3, 4, reg::t2);              // ptr[j+1] = key
    as.addi(reg::s1, reg::s1, 1);
    as.li(reg::t4, static_cast<int32_t>(nvec));
    as.bne(reg::s1, reg::t4, outer);

    // Reverse the pointer array so the next pass resorts worst-case.
    as.move(reg::t0, reg::s0);
    as.li(reg::t1, static_cast<int32_t>((nvec - 1) * 4));
    as.add(reg::t1, reg::s0, reg::t1);
    as.bind(revloop);
    as.sltu(reg::t2, reg::t0, reg::t1);
    as.beq(reg::t2, reg::zero, revdone);
    as.lw(reg::t3, 0, reg::t0);
    as.lw(reg::t4, 0, reg::t1);
    as.sw(reg::t4, 0, reg::t0);
    as.sw(reg::t3, 0, reg::t1);
    as.addi(reg::t0, reg::t0, 4);
    as.addi(reg::t1, reg::t1, -4);
    as.j(revloop);
    as.bind(revdone);
    as.addi(reg::s5, reg::s5, -1);
    as.bgtz(reg::s5, rep);

    as.lwGp(reg::t0, cmp_count);
    as.swGp(reg::t0, g.result);
    as.halt();

    // ---- cmp(a0, a1): lexicographic word compare, returns -1/0/1 ----
    as.bind(cmp);
    Frame cf(ctx, false);
    unsigned spill_a = cf.addScalar();
    unsigned spill_b = cf.addScalar();
    cf.seal();
    cf.prologue(as);
    as.sw(reg::a0, cf.off(spill_a), reg::sp);
    as.sw(reg::a1, cf.off(spill_b), reg::sp);
    as.lwGp(reg::t5, cmp_count);
    as.addi(reg::t5, reg::t5, 1);
    as.swGp(reg::t5, cmp_count);
    as.li(reg::t6, static_cast<int32_t>(words));
    LabelId cmploop = as.newLabel();
    LabelId diff = as.newLabel();
    LabelId gt = as.newLabel();
    LabelId cmpret = as.newLabel();
    as.bind(cmploop);
    as.lwPost(reg::t0, reg::a0, 4);
    as.lwPost(reg::t1, reg::a1, 4);
    as.bne(reg::t0, reg::t1, diff);
    as.addi(reg::t6, reg::t6, -1);
    as.bgtz(reg::t6, cmploop);
    as.li(reg::v0, 0);
    as.j(cmpret);
    as.bind(diff);
    as.sltu(reg::v0, reg::t0, reg::t1);
    as.beq(reg::v0, reg::zero, gt);
    as.li(reg::v0, -1);
    as.j(cmpret);
    as.bind(gt);
    as.li(reg::v0, 1);
    as.bind(cmpret);
    as.lw(reg::a0, cf.off(spill_a), reg::sp);
    as.lw(reg::a1, cf.off(spill_b), reg::sp);
    cf.epilogueAndRet(as);

    ctx.atInit([=](InitContext &ic) {
        // Bit vectors share long common prefixes so compares scan deep.
        std::vector<uint32_t> common(words);
        for (uint32_t w = 0; w < words; ++w)
            common[w] = static_cast<uint32_t>(ic.rng.next());
        uint32_t ptrs = ic.heap.alloc(nvec * 4, 4);
        for (uint32_t i = 0; i < nvec; ++i) {
            uint32_t vec = ic.heap.alloc(words * 4, 4);
            uint32_t split = static_cast<uint32_t>(ic.rng.range(words));
            for (uint32_t w = 0; w < words; ++w) {
                uint32_t v = w < split
                    ? common[w] : static_cast<uint32_t>(ic.rng.next());
                ic.mem.write32(vec + 4 * w, v);
            }
            ic.mem.write32(ptrs + 4 * i, vec);
        }
        ic.mem.write32(ic.symAddr(vec_ptrs), ptrs);
    });
}

} // namespace facsim
