/**
 * @file
 * perl: the interpreter's hash-table workout. String keys are hashed
 * byte by byte, chains of heap-allocated entries are walked with strcmp
 * calls (stack spills + byte streams), and hits bump the stored value.
 * Entries and key strings come from malloc, so the allocation-alignment
 * policy matters; the paper notes perl's memory growth under support.
 */

#include "workloads/registry.hh"

namespace facsim
{

void
buildPerl(WorkloadContext &ctx)
{
    AsmBuilder &as = ctx.as;
    CommonGlobals g = declareCommonGlobals(ctx);

    const uint32_t nkeys = 256;
    const uint32_t nbuckets = 128;
    const uint32_t rounds = ctx.scaled(16);
    const uint32_t entry_bytes = ctx.pol.structSize(12);  // next,key,val

    SymId buckets = as.global("buckets", nbuckets * 4, 4, false);
    SymId key_ptrs = as.global("key_ptrs", 4, 4, true);
    SymId entry_pool = as.global("entry_pool", 4, 4, true);
    SymId hit_ct = as.global("hit_ct", 4, 4, true);

    LabelId streq = as.newLabel();

    // ---- main ----
    Frame fr(ctx, true);
    fr.seal();
    fr.prologue(as);

    as.la(reg::s0, buckets);
    as.lwGp(reg::s1, key_ptrs);
    as.lwGp(reg::s2, entry_pool);              // bump allocator cursor
    as.li(reg::s5, static_cast<int32_t>(rounds));

    LabelId round = as.newLabel();
    LabelId keyloop = as.newLabel();
    LabelId hashloop = as.newLabel();
    LabelId hashdone = as.newLabel();
    LabelId chain = as.newLabel();
    LabelId chainnext = as.newLabel();
    LabelId found = as.newLabel();
    LabelId insert = as.newLabel();
    LabelId keynext = as.newLabel();

    as.bind(round);
    as.li(reg::s3, 0);                         // key index
    as.bind(keyloop);
    as.sll(reg::t0, reg::s3, 2);
    as.lwRR(reg::s4, reg::s1, reg::t0);        // key string pointer

    // hash = sum of bytes * 31 (byte-stream loads)
    as.li(reg::t1, 0);
    as.move(reg::t2, reg::s4);
    as.bind(hashloop);
    as.lbuPost(reg::t3, reg::t2, 1);
    as.beq(reg::t3, reg::zero, hashdone);
    as.sll(reg::t4, reg::t1, 5);
    as.sub(reg::t1, reg::t4, reg::t1);
    as.add(reg::t1, reg::t1, reg::t3);
    as.j(hashloop);
    as.bind(hashdone);
    as.andi(reg::t1, reg::t1, nbuckets - 1);
    as.sll(reg::t1, reg::t1, 2);
    as.add(reg::s6, reg::s0, reg::t1);         // &buckets[h]
    as.lw(reg::s7, 0, reg::s6);                // chain head

    as.bind(chain);
    as.beq(reg::s7, reg::zero, insert);
    as.lw(reg::a0, 4, reg::s7);                // entry->key
    as.move(reg::a1, reg::s4);
    as.jal(streq);
    as.bne(reg::v0, reg::zero, chainnext);
    as.j(found);
    as.bind(chainnext);
    as.lw(reg::s7, 0, reg::s7);                // entry->next
    as.j(chain);

    as.bind(found);
    as.lw(reg::t5, 8, reg::s7);                // entry->val++
    as.addi(reg::t5, reg::t5, 1);
    as.sw(reg::t5, 8, reg::s7);
    as.lwGp(reg::t6, hit_ct);
    as.addi(reg::t6, reg::t6, 1);
    as.swGp(reg::t6, hit_ct);
    as.j(keynext);

    as.bind(insert);
    as.move(reg::t5, reg::s2);                 // new entry
    as.addi(reg::s2, reg::s2, static_cast<int32_t>(entry_bytes));
    as.lw(reg::t6, 0, reg::s6);                // old head
    as.sw(reg::t6, 0, reg::t5);
    as.sw(reg::s4, 4, reg::t5);
    as.sw(reg::zero, 8, reg::t5);
    as.sw(reg::t5, 0, reg::s6);

    as.bind(keynext);
    as.addi(reg::s3, reg::s3, 1);
    as.li(reg::t7, static_cast<int32_t>(nkeys));
    as.bne(reg::s3, reg::t7, keyloop);
    as.addi(reg::s5, reg::s5, -1);
    as.bgtz(reg::s5, round);

    as.lwGp(reg::t0, hit_ct);
    as.swGp(reg::t0, g.result);
    as.halt();

    // ---- streq(a0, a1) -> v0 = 0 if equal, 1 otherwise ----
    as.bind(streq);
    Frame sf(ctx, false);
    unsigned sa = sf.addScalar();
    sf.seal();
    sf.prologue(as);
    as.sw(reg::a0, sf.off(sa), reg::sp);
    LabelId sloop = as.newLabel();
    LabelId sdiff = as.newLabel();
    LabelId sdone = as.newLabel();
    as.bind(sloop);
    as.lbuPost(reg::t8, reg::a0, 1);
    as.lbuPost(reg::t9, reg::a1, 1);
    as.bne(reg::t8, reg::t9, sdiff);
    as.bne(reg::t8, reg::zero, sloop);
    as.li(reg::v0, 0);
    as.j(sdone);
    as.bind(sdiff);
    as.li(reg::v0, 1);
    as.bind(sdone);
    as.lw(reg::a0, sf.off(sa), reg::sp);
    sf.epilogueAndRet(as);

    ctx.atInit([=](InitContext &ic) {
        // Key strings (7 chars + NUL) from the allocator.
        uint32_t ptrs = ic.heap.alloc(nkeys * 4, 4);
        for (uint32_t i = 0; i < nkeys; ++i) {
            uint32_t s = ic.heap.alloc(8, 1);
            for (uint32_t b = 0; b < 7; ++b) {
                ic.mem.write8(s + b, static_cast<uint8_t>(
                    'a' + ic.rng.range(26)));
            }
            ic.mem.write8(s + 7, 0);
            ic.mem.write32(ptrs + 4 * i, s);
        }
        ic.mem.write32(ic.symAddr(key_ptrs), ptrs);
        uint32_t pool = ic.heap.alloc(nkeys * entry_bytes, 8);
        ic.mem.write32(ic.symAddr(entry_pool), pool);
    });
}

} // namespace facsim
