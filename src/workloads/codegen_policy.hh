/**
 * @file
 * CodeGenPolicy bundles the five software-support knobs of Section 4/5.1
 * into the two named configurations every experiment uses:
 *
 *  - baseline():    normal code generation — 8-byte stack alignment,
 *                   unaligned global pointer, natural static alignment,
 *                   8-byte malloc alignment, exact structure sizes;
 *  - withSupport(): fast-address-calculation-specific optimization —
 *                   64-byte program-wide stack alignment with explicit
 *                   alignment (<= 256 B) for big frames, aligned global
 *                   pointer with positive offsets, statics aligned to the
 *                   next power of two (<= 32 B), 32-byte malloc/alloca
 *                   alignment, structure sizes rounded to the next power
 *                   of two with overhead capped at 16 bytes.
 */

#ifndef FACSIM_WORKLOADS_CODEGEN_POLICY_HH
#define FACSIM_WORKLOADS_CODEGEN_POLICY_HH

#include <cstdint>

#include "link/linker.hh"
#include "runtime/heap.hh"
#include "runtime/stack.hh"

namespace facsim
{

/** The full set of code-generation behaviour knobs. */
struct CodeGenPolicy
{
    /** Convenience marker: true when built by withSupport(). */
    bool softwareSupport = false;

    LinkPolicy link;
    StackPolicy stack;
    HeapPolicy heap;

    /** Round structure sizes to the next power of two. */
    bool roundStructs = false;
    /** Maximum bytes of padding roundStructs may add (paper: 16). */
    uint32_t structPadCap = 16;
    /**
     * Sort stack-frame scalars closest to the stack pointer (the paper's
     * frame-layout optimization).
     */
    bool sortFrameScalars = false;

    /** Normal compilation (no fast-address-calculation optimization). */
    static CodeGenPolicy baseline();
    /** Full Section 5.1 software support. */
    static CodeGenPolicy withSupport();
    /**
     * Section 5.1 support plus the paper's future-work extension:
     * large statics and heap objects aligned to their full power-of-two
     * size, targeting the residual register+register index failures.
     */
    static CodeGenPolicy withLargeAlignment();

    /** Structure size after the rounding policy. */
    uint32_t structSize(uint32_t raw) const;
};

} // namespace facsim

#endif // FACSIM_WORKLOADS_CODEGEN_POLICY_HH
