#include "workloads/registry.hh"

#include "util/logging.hh"

namespace facsim
{

const std::vector<WorkloadInfo> &
allWorkloads()
{
    static const std::vector<WorkloadInfo> table = {
        {"compress", "LZW-style compression of a 64 KB buffer", false,
         buildCompress},
        {"eqntott", "truth-table bit-vector comparison sort", false,
         buildEqntott},
        {"espresso", "cube-cover set operations (cps.in-like)", false,
         buildEspresso},
        {"gcc", "IR tree walk with obstack allocation (stmt.i-like)",
         false, buildGcc},
        {"sc", "spreadsheet grid recalculation (loada1-like)", false,
         buildSc},
        {"xlisp", "cons-cell interpreter, 8-queens style list churn",
         false, buildXlisp},
        {"elvis", "text editor batch substitutions", false, buildElvis},
        {"grep", "regex DFA scan of a large text buffer", false,
         buildGrep},
        {"perl", "hash-table + string test-suite interpreter", false,
         buildPerl},
        {"yacr2", "VLSI channel router, 230-terminal channel", false,
         buildYacr2},
        {"alvinn", "neural-net forward/backward passes", true,
         buildAlvinn},
        {"doduc", "Monte-Carlo reactor kernel, scalar-heavy", true,
         buildDoduc},
        {"ear", "cochlea filter-bank convolution", true, buildEar},
        {"mdljdp2", "molecular dynamics, double precision pairs", true,
         buildMdljdp2},
        {"mdljsp2", "molecular dynamics, single precision pairs", true,
         buildMdljsp2},
        {"ora", "ray tracing through optical surfaces", true, buildOra},
        {"spice", "sparse-matrix circuit solve (greycode-like)", true,
         buildSpice},
        {"su2cor", "quark-gluon lattice sweeps", true, buildSu2cor},
        {"tomcatv", "vectorised 2-D mesh generation, N=129", true,
         buildTomcatv},
    };
    return table;
}

const WorkloadInfo &
workload(const std::string &name)
{
    for (const WorkloadInfo &w : allWorkloads()) {
        if (name == w.name)
            return w;
    }
    fatal("unknown workload '%s'", name.c_str());
}

} // namespace facsim
