/**
 * @file
 * ear: cochlea model — a bank of second-order filters run over an input
 * signal. Each filter owns a state/coefficient record; the per-sample
 * loop walks the filter array with constant structure-field offsets and
 * accumulates into an output buffer.
 */

#include "workloads/registry.hh"

namespace facsim
{

void
buildEar(WorkloadContext &ctx)
{
    AsmBuilder &as = ctx.as;
    CommonGlobals g = declareCommonGlobals(ctx);

    const uint32_t nfilters = 32;
    const uint32_t nsamples = ctx.scaled(1800);
    // Filter record: b0 @0, b1 @8, b2 @16, s1 @24, s2 @32, gain @40.
    const uint32_t filt_raw = 48;
    const uint32_t filt_bytes = ctx.pol.structSize(filt_raw);

    SymId sig_ptr = as.global("signal_ptr", 4, 4, true);
    SymId filt_ptr = as.global("filters_ptr", 4, 4, true);
    SymId out_ptr = as.global("output_ptr", 4, 4, true);

    LabelId process = as.newLabel();

    Frame fr(ctx, true);
    fr.seal();
    fr.prologue(as);

    as.lwGp(reg::s0, sig_ptr);
    as.lwGp(reg::s1, filt_ptr);
    as.lwGp(reg::s2, out_ptr);
    as.li(reg::s5, static_cast<int32_t>(nsamples));

    LabelId sample = as.newLabel();

    as.bind(sample);
    as.ldc1Post(4, reg::s0, 8);                 // x = *signal++
    as.move(reg::a0, reg::s1);
    as.jal(process);                            // f5 = filter bank(x)
    as.sdc1Post(5, reg::s2, 8);                 // *out++ = acc
    as.addi(reg::s5, reg::s5, -1);
    as.bgtz(reg::s5, sample);

    // Result: last output sample, scaled.
    as.ldc1(12, -8, reg::s2);
    emitLoadConstD(as, 13, reg::t3, 1000);
    as.mulD(12, 12, 13);
    as.cvtWD(12, 12);
    as.mfc1(reg::t4, 12);
    as.swGp(reg::t4, g.result);
    as.halt();

    // ---- process(a0 = filter array, f4 = x) -> f5 accumulated out ----
    // A FORTRAN-ish routine with a double spill slot for the sample.
    as.bind(process);
    Frame pf(ctx, false);
    unsigned x_slot = pf.addDouble();
    pf.seal();
    pf.prologue(as);
    as.sdc1(4, pf.off(x_slot), reg::sp);        // spill the sample
    emitLoadConstD(as, 5, reg::t0, 0);          // out accumulator
    as.move(reg::t1, reg::a0);                  // filter cursor
    as.li(reg::t2, static_cast<int32_t>(nfilters));
    LabelId filt = as.newLabel();
    as.bind(filt);
    as.ldc1(4, pf.off(x_slot), reg::sp);        // reload x (stack load)
    // y = b0*x + b1*s1 + b2*s2 ; s2 = s1 ; s1 = y ; out += gain*y
    as.ldc1(6, 0, reg::t1);                     // b0
    as.mulD(6, 6, 4);
    as.ldc1(7, 8, reg::t1);                     // b1
    as.ldc1(8, 24, reg::t1);                    // s1
    as.mulD(7, 7, 8);
    as.addD(6, 6, 7);
    as.ldc1(9, 16, reg::t1);                    // b2
    as.ldc1(10, 32, reg::t1);                   // s2
    as.mulD(9, 9, 10);
    as.addD(6, 6, 9);
    as.sdc1(8, 32, reg::t1);                    // s2 = s1
    as.sdc1(6, 24, reg::t1);                    // s1 = y
    as.ldc1(11, 40, reg::t1);                   // gain
    as.mulD(11, 11, 6);
    as.addD(5, 5, 11);
    as.addi(reg::t1, reg::t1, static_cast<int32_t>(filt_bytes));
    as.addi(reg::t2, reg::t2, -1);
    as.bgtz(reg::t2, filt);
    pf.epilogueAndRet(as);

    ctx.atInit([=](InitContext &ic) {
        uint32_t sig = ic.heap.alloc(nsamples * 8, 8);
        fillRandomDoubles(ic.mem, sig, nsamples, ic.rng);
        uint32_t filters = ic.heap.alloc(nfilters * filt_bytes, 8);
        for (uint32_t f = 0; f < nfilters; ++f) {
            uint32_t rec = filters + f * filt_bytes;
            // Stable coefficients: |b1|,|b2| < 0.5, unity-ish gain.
            for (uint32_t k = 0; k < 3; ++k) {
                double c = (ic.rng.real() - 0.5) * 0.9;
                uint64_t bits64;
                __builtin_memcpy(&bits64, &c, 8);
                ic.mem.write64(rec + 8 * k, bits64);
            }
            ic.mem.write64(rec + 24, 0);
            ic.mem.write64(rec + 32, 0);
            double gain = ic.rng.real();
            uint64_t bits64;
            __builtin_memcpy(&bits64, &gain, 8);
            ic.mem.write64(rec + 40, bits64);
        }
        uint32_t out = ic.heap.alloc(nsamples * 8, 8);
        ic.mem.write32(ic.symAddr(sig_ptr), sig);
        ic.mem.write32(ic.symAddr(filt_ptr), filters);
        ic.mem.write32(ic.symAddr(out_ptr), out);
    });
}

} // namespace facsim
