/**
 * @file
 * Registry of the 19 workload kernels — the Table 2 benchmark suite.
 * Each kernel is a synthetic miniature of one SPEC92 / Unix benchmark,
 * built to exercise the same reference-behaviour class (addressing-mode
 * mix, offset distribution, int vs FP balance) as the original.
 */

#ifndef FACSIM_WORKLOADS_REGISTRY_HH
#define FACSIM_WORKLOADS_REGISTRY_HH

#include <string>
#include <vector>

#include "workloads/kernel_lib.hh"

namespace facsim
{

/** One registered workload. */
struct WorkloadInfo
{
    const char *name;
    /** Table 2 style description of the modelled input. */
    const char *input;
    /** True for the floating-point group of Figures 2 and 6. */
    bool floatingPoint;
    /** Kernel generator. */
    void (*build)(WorkloadContext &);
};

/** All 19 workloads, in the paper's table order (integer first). */
const std::vector<WorkloadInfo> &allWorkloads();

/** Find a workload by name (fatal on unknown names). */
const WorkloadInfo &workload(const std::string &name);

// Kernel generators (one translation unit each).
void buildCompress(WorkloadContext &ctx);
void buildEqntott(WorkloadContext &ctx);
void buildEspresso(WorkloadContext &ctx);
void buildGcc(WorkloadContext &ctx);
void buildSc(WorkloadContext &ctx);
void buildXlisp(WorkloadContext &ctx);
void buildElvis(WorkloadContext &ctx);
void buildGrep(WorkloadContext &ctx);
void buildPerl(WorkloadContext &ctx);
void buildYacr2(WorkloadContext &ctx);
void buildAlvinn(WorkloadContext &ctx);
void buildDoduc(WorkloadContext &ctx);
void buildEar(WorkloadContext &ctx);
void buildMdljdp2(WorkloadContext &ctx);
void buildMdljsp2(WorkloadContext &ctx);
void buildOra(WorkloadContext &ctx);
void buildSpice(WorkloadContext &ctx);
void buildSu2cor(WorkloadContext &ctx);
void buildTomcatv(WorkloadContext &ctx);

} // namespace facsim

#endif // FACSIM_WORKLOADS_REGISTRY_HH
