/**
 * @file
 * espresso: cube-cover set operations. Heap-allocated cube records (a
 * small header plus a bit-vector body, with the structure size subject
 * to the power-of-two rounding policy) are intersected pairwise by a
 * called helper — argument spills and the return-address save give the
 * kernel espresso's call-heavy stack traffic. The pointer array lives
 * in a large static (la-addressed) and the inner loops are strength-
 * reduced to zero-offset post-increment accesses — espresso's many
 * zero offsets are called out in Section 2.2.
 */

#include "workloads/registry.hh"

namespace facsim
{

void
buildEspresso(WorkloadContext &ctx)
{
    AsmBuilder &as = ctx.as;
    CommonGlobals g = declareCommonGlobals(ctx);

    const uint32_t ncubes = 64;
    const uint32_t words = 8;                  // bit-vector words per cube
    const uint32_t hdr = 8;                    // {count, flags}
    const uint32_t passes = ctx.scaled(100);

    // The pointer table is a named static array (general data segment).
    SymId cube_tab = as.global("cube_tab", ncubes * 4, 4, false);
    SymId scratch_ptr = as.global("scratch_ptr", 4, 4, true);
    SymId nonzero_ct = as.global("nonzero_ct", 4, 4, true);

    LabelId intersect = as.newLabel();

    // ---- main ----
    Frame fr(ctx, true);
    fr.seal();
    fr.prologue(as);

    as.la(reg::s0, cube_tab);                  // pointer table
    as.lwGp(reg::s1, scratch_ptr);             // result cube
    as.li(reg::s5, static_cast<int32_t>(passes));

    LabelId pass = as.newLabel();
    LabelId pairs = as.newLabel();

    as.bind(pass);
    as.li(reg::s2, 0);                         // pair index i
    as.bind(pairs);
    // intersect(tab[i], tab[i+1], scratch)
    as.sll(reg::t0, reg::s2, 2);
    as.add(reg::t0, reg::s0, reg::t0);
    as.lw(reg::a0, 0, reg::t0);
    as.lw(reg::a1, 4, reg::t0);
    as.move(reg::a2, reg::s1);
    as.jal(intersect);
    // accumulate the nonzero-word count into a gp global
    as.lwGp(reg::t9, nonzero_ct);
    as.add(reg::t9, reg::t9, reg::v0);
    as.swGp(reg::t9, nonzero_ct);
    as.addi(reg::s2, reg::s2, 1);
    as.li(reg::t0, static_cast<int32_t>(ncubes - 1));
    as.bne(reg::s2, reg::t0, pairs);
    as.addi(reg::s5, reg::s5, -1);
    as.bgtz(reg::s5, pass);

    as.lwGp(reg::t0, nonzero_ct);
    as.swGp(reg::t0, g.result);
    as.halt();

    // ---- intersect(a0 = A, a1 = B, a2 = dest) -> v0 nonzero words ----
    // A leaf with register pressure: the arguments are spilled to and
    // reloaded from the frame, as compiled espresso's set routines do.
    as.bind(intersect);
    Frame cf(ctx, false);
    unsigned sa = cf.addScalar();
    unsigned sb = cf.addScalar();
    unsigned sd = cf.addScalar();
    cf.seal();
    cf.prologue(as);
    as.sw(reg::a0, cf.off(sa), reg::sp);
    as.sw(reg::a1, cf.off(sb), reg::sp);
    as.sw(reg::a2, cf.off(sd), reg::sp);
    as.addi(reg::t1, reg::a0, static_cast<int32_t>(hdr));
    as.addi(reg::t2, reg::a1, static_cast<int32_t>(hdr));
    as.addi(reg::t3, reg::a2, static_cast<int32_t>(hdr));
    as.li(reg::t4, static_cast<int32_t>(words));
    as.li(reg::v0, 0);
    LabelId wloop = as.newLabel();
    LabelId notz = as.newLabel();
    as.bind(wloop);
    as.lwPost(reg::t5, reg::t1, 4);
    as.lwPost(reg::t6, reg::t2, 4);
    as.and_(reg::t7, reg::t5, reg::t6);
    as.swPost(reg::t7, reg::t3, 4);
    as.beq(reg::t7, reg::zero, notz);
    as.addi(reg::v0, reg::v0, 1);
    as.bind(notz);
    as.addi(reg::t4, reg::t4, -1);
    as.bgtz(reg::t4, wloop);
    // store the count into the destination cube's header
    as.lw(reg::t8, cf.off(sd), reg::sp);
    as.sw(reg::v0, 0, reg::t8);
    cf.epilogueAndRet(as);

    const uint32_t raw_size = hdr + words * 4;
    ctx.atInit([=](InitContext &ic) {
        // Cube records come from the type-less allocator; their size is
        // subject to the structure-rounding policy.
        uint32_t sz = ctx.pol.structSize(raw_size);
        uint32_t tab = ic.symAddr(cube_tab);
        for (uint32_t i = 0; i < ncubes; ++i) {
            uint32_t cube = ic.heap.alloc(sz, 4);
            ic.mem.write32(cube + 0, 0);
            ic.mem.write32(cube + 4, static_cast<uint32_t>(i));
            fillRandomWords(ic.mem, cube + hdr, words, ic.rng);
            ic.mem.write32(tab + 4 * i, cube);
        }
        uint32_t scratch = ic.heap.alloc(sz, 4);
        ic.mem.write32(ic.symAddr(scratch_ptr), scratch);
    });
}

} // namespace facsim
