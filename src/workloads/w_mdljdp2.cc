/**
 * @file
 * mdljdp2: double-precision molecular dynamics. Pairwise forces are
 * computed over a neighbour list; particle coordinates live in separate
 * coordinate arrays indexed through register+register addressing with
 * large index-register offsets — the access class with the highest
 * misprediction rates in Tables 3/4.
 */

#include "workloads/registry.hh"

namespace facsim
{

void
buildMdljdp2(WorkloadContext &ctx)
{
    AsmBuilder &as = ctx.as;
    CommonGlobals g = declareCommonGlobals(ctx);

    const uint32_t nparticles = 500;
    const uint32_t npairs = 4000;
    const uint32_t steps = ctx.scaled(6);

    SymId x_ptr = as.global("x_ptr", 4, 4, true);
    SymId y_ptr = as.global("y_ptr", 4, 4, true);
    SymId f_ptr = as.global("f_ptr", 4, 4, true);
    SymId pair_ptr = as.global("pair_ptr", 4, 4, true);

    Frame fr(ctx, false);
    fr.seal();
    fr.prologue(as);

    as.lwGp(reg::s0, x_ptr);
    as.lwGp(reg::s1, y_ptr);
    as.lwGp(reg::s2, f_ptr);
    as.li(reg::s5, static_cast<int32_t>(steps));
    emitLoadConstD(as, 1, reg::t0, 1);          // 1.0
    emitLoadConstD(as, 2, reg::t0, 100);
    as.divD(2, 1, 2);                           // softening 0.01

    LabelId step = as.newLabel();
    LabelId pair = as.newLabel();

    as.bind(step);
    as.lwGp(reg::s3, pair_ptr);
    as.li(reg::s4, static_cast<int32_t>(npairs));
    as.bind(pair);
    as.lwPost(reg::t0, reg::s3, 4);             // i
    as.lwPost(reg::t1, reg::s3, 4);             // j
    as.sll(reg::t0, reg::t0, 3);                // byte offsets
    as.sll(reg::t1, reg::t1, 3);
    // Coordinate gathers keep register+register addressing (the array-
    // index class whose large offsets defeat prediction)...
    as.ldc1RR(4, reg::s0, reg::t0);             // x[i]
    as.ldc1RR(5, reg::s0, reg::t1);             // x[j]
    as.subD(4, 4, 5);                           // dx
    // ...while the y gathers and force updates use compiler-synthesised
    // addressing (addu + zero-offset access), as MIPS GCC emits when it
    // judges reg+reg unprofitable.
    as.add(reg::t2, reg::s1, reg::t0);
    as.add(reg::t3, reg::s1, reg::t1);
    as.ldc1(6, 0, reg::t2);                     // y[i]
    as.ldc1(7, 0, reg::t3);                     // y[j]
    as.subD(6, 6, 7);                           // dy
    as.mulD(8, 4, 4);
    as.mulD(9, 6, 6);
    as.addD(8, 8, 9);                           // r2
    as.addD(8, 8, 2);                           // + eps
    as.divD(10, 1, 8);                          // 1/r2
    as.mulD(11, 10, 4);                         // fx
    as.mulD(12, 10, 6);                         // fy
    // f[i] += fx ; f[j] -= fy, via synthesised addresses.
    as.add(reg::t4, reg::s2, reg::t0);
    as.add(reg::t5, reg::s2, reg::t1);
    as.ldc1(13, 0, reg::t4);
    as.addD(13, 13, 11);
    as.sdc1(13, 0, reg::t4);
    as.ldc1(14, 0, reg::t5);
    as.subD(14, 14, 12);
    as.sdc1(14, 0, reg::t5);
    as.addi(reg::s4, reg::s4, -1);
    as.bgtz(reg::s4, pair);
    as.addi(reg::s5, reg::s5, -1);
    as.bgtz(reg::s5, step);

    // Result: f[0] scaled to an integer checksum.
    as.ldc1(15, 0, reg::s2);
    emitLoadConstD(as, 16, reg::t2, 100);
    as.mulD(15, 15, 16);
    as.cvtWD(15, 15);
    as.mfc1(reg::t3, 15);
    as.swGp(reg::t3, g.result);
    as.halt();

    ctx.atInit([=](InitContext &ic) {
        // The coordinate arrays do not land on a lucky power-of-two
        // boundary (the heap base is page aligned; real mdljdp2's
        // arrays sit behind other COMMON blocks).
        ic.heap.alloc(808, 8);
        uint32_t x = ic.heap.alloc(nparticles * 8, 8);
        uint32_t y = ic.heap.alloc(nparticles * 8, 8);
        uint32_t f = ic.heap.alloc(nparticles * 8, 8);
        fillRandomDoubles(ic.mem, x, nparticles, ic.rng);
        fillRandomDoubles(ic.mem, y, nparticles, ic.rng);
        uint32_t pairs = ic.heap.alloc(npairs * 8, 4);
        for (uint32_t p = 0; p < npairs; ++p) {
            uint32_t i = static_cast<uint32_t>(ic.rng.range(nparticles));
            uint32_t j = static_cast<uint32_t>(ic.rng.range(nparticles));
            if (i == j)
                j = (j + 1) % nparticles;
            ic.mem.write32(pairs + 8 * p, i);
            ic.mem.write32(pairs + 8 * p + 4, j);
        }
        ic.mem.write32(ic.symAddr(x_ptr), x);
        ic.mem.write32(ic.symAddr(y_ptr), y);
        ic.mem.write32(ic.symAddr(f_ptr), f);
        ic.mem.write32(ic.symAddr(pair_ptr), pairs);
    });
}

} // namespace facsim
