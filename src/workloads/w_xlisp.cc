/**
 * @file
 * xlisp: cons-cell churn in the style of the 8-queens Lisp interpreter
 * run. Each round bump-allocates a fresh list from the cell pool (the
 * cell size goes through the structure-rounding policy: 12 bytes raw, 16
 * with support), then traverses, destructively reverses, and marks it —
 * pure pointer chasing with 0/4/8 field offsets.
 */

#include "workloads/registry.hh"

namespace facsim
{

void
buildXlisp(WorkloadContext &ctx)
{
    AsmBuilder &as = ctx.as;
    CommonGlobals g = declareCommonGlobals(ctx);

    const uint32_t list_len = 600;
    const uint32_t rounds = ctx.scaled(80);
    const uint32_t cell_bytes = ctx.pol.structSize(12);

    SymId pool_ptr = as.global("pool_ptr", 4, 4, true);
    SymId head_ptr = as.global("head_ptr", 4, 4, true);

    Frame fr(ctx, false);
    fr.seal();
    fr.prologue(as);

    as.lwGp(reg::s0, pool_ptr);
    as.li(reg::s5, static_cast<int32_t>(rounds));
    as.li(reg::s6, 0);                          // checksum

    LabelId round = as.newLabel();
    LabelId build = as.newLabel();
    LabelId trav = as.newLabel();
    LabelId travdone = as.newLabel();
    LabelId rev = as.newLabel();
    LabelId revdone = as.newLabel();
    LabelId mark = as.newLabel();
    LabelId markdone = as.newLabel();

    as.bind(round);
    as.move(reg::s1, reg::s0);                  // bump pointer
    as.li(reg::s2, 0);                          // head = nil
    as.li(reg::t0, static_cast<int32_t>(list_len));
    as.bind(build);
    as.move(reg::t1, reg::s1);                  // cons()
    as.addi(reg::s1, reg::s1, static_cast<int32_t>(cell_bytes));
    as.sw(reg::t0, 0, reg::t1);                 // car
    as.sw(reg::s2, 4, reg::t1);                 // cdr
    as.sw(reg::zero, 8, reg::t1);               // tag
    as.move(reg::s2, reg::t1);
    as.addi(reg::t0, reg::t0, -1);
    as.bgtz(reg::t0, build);
    as.swGp(reg::s2, head_ptr);

    // Traverse: sum the cars.
    as.li(reg::t2, 0);
    as.move(reg::t3, reg::s2);
    as.bind(trav);
    as.beq(reg::t3, reg::zero, travdone);
    as.lw(reg::t4, 0, reg::t3);
    as.add(reg::t2, reg::t2, reg::t4);
    as.lw(reg::t3, 4, reg::t3);
    as.j(trav);
    as.bind(travdone);
    as.add(reg::s6, reg::s6, reg::t2);

    // Destructive reverse.
    as.li(reg::t5, 0);                          // prev
    as.move(reg::t3, reg::s2);
    as.bind(rev);
    as.beq(reg::t3, reg::zero, revdone);
    as.lw(reg::t6, 4, reg::t3);
    as.sw(reg::t5, 4, reg::t3);
    as.move(reg::t5, reg::t3);
    as.move(reg::t3, reg::t6);
    as.j(rev);
    as.bind(revdone);
    as.move(reg::s2, reg::t5);

    // GC-style mark pass.
    as.li(reg::t7, 1);
    as.move(reg::t3, reg::s2);
    as.bind(mark);
    as.beq(reg::t3, reg::zero, markdone);
    as.sw(reg::t7, 8, reg::t3);
    as.lw(reg::t3, 4, reg::t3);
    as.j(mark);
    as.bind(markdone);

    as.addi(reg::s5, reg::s5, -1);
    as.bgtz(reg::s5, round);

    as.swGp(reg::s6, g.result);
    as.halt();

    ctx.atInit([=](InitContext &ic) {
        uint32_t pool = ic.heap.alloc(list_len * cell_bytes, 8);
        ic.mem.write32(ic.symAddr(pool_ptr), pool);
    });
}

} // namespace facsim
