/**
 * @file
 * compress: LZW-style compression of a pseudo-text buffer. Models the
 * SPEC92 compress reference behaviour: a byte-stream scan (zero-offset
 * post-increment loads), hash-table probes and inserts through
 * register+register addressing (the paper notes compress is one of the
 * few programs R+R speculation helps), and global counters kept in the
 * gp-addressed small-data region.
 */

#include "workloads/registry.hh"

namespace facsim
{

void
buildCompress(WorkloadContext &ctx)
{
    AsmBuilder &as = ctx.as;
    CommonGlobals g = declareCommonGlobals(ctx);

    const uint32_t input_bytes = ctx.scaled(49152);
    const uint32_t hbits = 11;
    const uint32_t hsize = 1u << hbits;

    SymId in_ptr = as.global("in_ptr", 4, 4, true);
    SymId htab_ptr = as.global("htab_ptr", 4, 4, true);
    SymId codetab_ptr = as.global("codetab_ptr", 4, 4, true);
    SymId free_ent = as.global("free_ent", 4, 4, true);
    SymId out_count = as.global("out_count", 4, 4, true);

    // Register plan: s0 input cursor, s1 input end, s2 htab base,
    // s3 codetab base, s4 prefix code, s5 next free code, s7 hash mask.
    Frame fr(ctx, false);
    unsigned last_emit = fr.addScalar();
    fr.seal();
    fr.prologue(as);

    as.lwGp(reg::s0, in_ptr);
    as.li(reg::t0, static_cast<int32_t>(input_bytes));
    as.add(reg::s1, reg::s0, reg::t0);
    as.lwGp(reg::s2, htab_ptr);
    as.lwGp(reg::s3, codetab_ptr);
    as.li(reg::s4, 0);
    as.li(reg::s5, 257);
    as.li(reg::s7, static_cast<int32_t>(hsize - 1));
    as.sw(reg::zero, fr.off(last_emit), reg::sp);

    LabelId loop = as.newLabel();
    LabelId miss = as.newLabel();
    LabelId no_reset = as.newLabel();
    LabelId cont = as.newLabel();

    as.bind(loop);
    // c = *cursor++
    as.lbuPost(reg::t0, reg::s0, 1);
    // h = ((c << 6) ^ prefix) & mask;  key = (prefix << 8) | c
    as.sll(reg::t1, reg::t0, 6);
    as.xor_(reg::t1, reg::t1, reg::s4);
    as.and_(reg::t1, reg::t1, reg::s7);
    as.sll(reg::t2, reg::s4, 8);
    as.or_(reg::t2, reg::t2, reg::t0);
    as.sll(reg::t3, reg::t1, 2);
    // probe: htab[h] == key ?
    as.lwRR(reg::t4, reg::s2, reg::t3);
    as.bne(reg::t4, reg::t2, miss);
    // hit: prefix = codetab[h]
    as.lwRR(reg::s4, reg::s3, reg::t3);
    as.j(cont);

    as.bind(miss);
    // emit the previous prefix: bump the global output counter and
    // remember the code in a frame slot (stack traffic).
    as.lwGp(reg::t5, out_count);
    as.addi(reg::t5, reg::t5, 1);
    as.swGp(reg::t5, out_count);
    as.sw(reg::s4, fr.off(last_emit), reg::sp);
    // insert the new (key, code) pair
    as.swRR(reg::t2, reg::s2, reg::t3);
    as.swRR(reg::s5, reg::s3, reg::t3);
    as.addi(reg::s5, reg::s5, 1);
    as.move(reg::s4, reg::t0);
    // table-full reset, as compress clears its dictionary
    as.li(reg::t6, static_cast<int32_t>(4 * hsize + 256));
    as.slt(reg::t7, reg::t6, reg::s5);
    as.beq(reg::t7, reg::zero, no_reset);
    as.li(reg::s5, 257);
    as.bind(no_reset);

    as.bind(cont);
    as.bne(reg::s0, reg::s1, loop);

    as.swGp(reg::s5, free_ent);
    as.lwGp(reg::t0, out_count);
    as.lwGp(reg::t1, g.lowScalarA);
    as.add(reg::t0, reg::t0, reg::t1);
    as.swGp(reg::t0, g.result);
    as.halt();

    ctx.atInit([=](InitContext &ic) {
        uint32_t in_buf = ic.heap.alloc(input_bytes, 1);
        fillRandomText(ic.mem, in_buf, input_bytes, ic.rng);
        // Keep the tables out of the sets the input stream sweeps (the
        // input size is a multiple of the cache size, so back-to-back
        // allocation would alias pathologically in a direct-mapped
        // cache).
        ic.heap.alloc(1040, 1);
        uint32_t htab = ic.heap.alloc(hsize * 4, 4);
        uint32_t codetab = ic.heap.alloc(hsize * 4, 4);
        for (uint32_t i = 0; i < hsize; ++i)
            ic.mem.write32(htab + 4 * i, 0xffffffffu);
        ic.mem.write32(ic.symAddr(in_ptr), in_buf);
        ic.mem.write32(ic.symAddr(htab_ptr), htab);
        ic.mem.write32(ic.symAddr(codetab_ptr), codetab);
        ic.mem.write32(ic.symAddr(g.lowScalarA), 7);
    });
}

} // namespace facsim
