/**
 * @file
 * ora: optical ray tracing. Almost pure scalar floating point — sphere
 * intersection tests with divides and square roots, very few memory
 * references (just gp-resident accumulators), tiny cache footprint. The
 * paper's ora shows the smallest memory-system sensitivity of the suite.
 */

#include "workloads/registry.hh"

namespace facsim
{

void
buildOra(WorkloadContext &ctx)
{
    AsmBuilder &as = ctx.as;
    CommonGlobals g = declareCommonGlobals(ctx);

    const uint32_t rays = ctx.scaled(16000);

    SymId seed_g = as.global("ray_seed", 4, 4, true);
    SymId hits_g = as.global("hit_count", 4, 4, true);
    SymId path_g = as.global("path_len", 8, 8, true);

    Frame fr(ctx, false);
    fr.seal();
    fr.prologue(as);

    as.li(reg::s5, static_cast<int32_t>(rays));
    emitLoadConstD(as, 1, reg::t0, 1);           // 1.0
    emitLoadConstD(as, 2, reg::t0, 4096);        // draw scale
    emitLoadConstD(as, 3, reg::t0, 4);           // 4.0
    as.lwGp(reg::s0, seed_g);
    as.li(reg::s1, 0);                           // hits

    LabelId ray = as.newLabel();
    LabelId miss = as.newLabel();
    LabelId next = as.newLabel();

    as.bind(ray);
    // Two LCG draws -> direction components in [0, 1).
    as.li(reg::t1, 1103515245);
    as.mul(reg::s0, reg::s0, reg::t1);
    as.addi(reg::s0, reg::s0, 12345);
    as.srl(reg::t2, reg::s0, 16);
    as.andi(reg::t2, reg::t2, 0xfff);
    as.mtc1(4, reg::t2);
    as.cvtDW(4, 4);
    as.divD(4, 4, 2);                            // b in [0,1)
    as.mul(reg::s0, reg::s0, reg::t1);
    as.addi(reg::s0, reg::s0, 24321);
    as.srl(reg::t3, reg::s0, 16);
    as.andi(reg::t3, reg::t3, 0xfff);
    as.mtc1(5, reg::t3);
    as.cvtDW(5, 5);
    as.divD(5, 5, 2);                            // c in [0,1)

    // Discriminant: disc = b*b*4 - 4*c + 1
    as.mulD(6, 4, 4);
    as.mulD(6, 6, 3);
    as.mulD(7, 5, 3);
    as.subD(6, 6, 7);
    as.addD(6, 6, 1);
    emitLoadConstD(as, 8, reg::t4, 0);
    as.cLeD(6, 8);                               // disc <= 0 ?
    as.bc1t(miss);
    // t = (b + sqrt(disc)) / (2 + c): accumulate the path length.
    as.sqrtD(9, 6);
    as.addD(9, 9, 4);
    as.addD(10, 5, 1);
    as.addD(10, 10, 1);
    as.divD(9, 9, 10);
    as.ldc1Gp(11, path_g);
    as.addD(11, 11, 9);
    as.sdc1Gp(11, path_g);
    as.addi(reg::s1, reg::s1, 1);
    as.bind(miss);
    as.bind(next);
    as.addi(reg::s5, reg::s5, -1);
    as.bgtz(reg::s5, ray);

    as.swGp(reg::s0, seed_g);
    as.swGp(reg::s1, hits_g);
    as.swGp(reg::s1, g.result);
    as.halt();

    ctx.atInit([=](InitContext &ic) {
        ic.mem.write32(ic.symAddr(seed_g), 987654321);
    });
}

} // namespace facsim
