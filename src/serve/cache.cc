#include "serve/cache.hh"

#include <cstdio>
#include <cstring>

#include "obs/prof.hh"
#include "sim/request_codec.hh"
#include "util/logging.hh"
#include "util/serialize.hh"

namespace facsim::serve
{

namespace
{

const char cacheMagic[8] = {'F', 'A', 'C', 'S', 'I', 'M', 'R', 'C'};
constexpr uint32_t cacheFileVersion = 1;

} // namespace

size_t
CacheKeyHash::operator()(const CacheKey &k) const
{
    // The components are already FNV hashes; fold them together.
    uint64_t h = 0xcbf29ce484222325ull ^ k.kind;
    for (uint64_t v : {k.configFp, k.workloadFp, k.requestFp}) {
        h ^= v;
        h *= 0x100000001b3ull;
    }
    return static_cast<size_t>(h);
}

bool
ResultCache::lookup(const CacheKey &key, std::string *payload)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
        ++misses_;
        return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    *payload = it->second->payload;
    return true;
}

void
ResultCache::insert(const CacheKey &key, const std::string &payload)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
        // Refresh (two racing cold runs of the same request): keep the
        // existing payload — it is what earlier hits already replayed.
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    if (budget_ && payload.size() > budget_)
        return;
    lru_.push_front(Entry{key, payload});
    index_[key] = lru_.begin();
    bytes_ += payload.size();
    evictLocked();
}

void
ResultCache::evictLocked()
{
    while (budget_ && bytes_ > budget_ && !lru_.empty()) {
        const Entry &victim = lru_.back();
        bytes_ -= victim.payload.size();
        index_.erase(victim.key);
        lru_.pop_back();
        ++evictions_;
    }
}

uint64_t
ResultCache::hits() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return hits_;
}

uint64_t
ResultCache::misses() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return misses_;
}

uint64_t
ResultCache::evictions() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return evictions_;
}

uint64_t
ResultCache::bytes() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return bytes_;
}

uint64_t
ResultCache::entries() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return lru_.size();
}

bool
ResultCache::save(const std::string &path) const
{
    FACSIM_PROF_SCOPE(CacheSave);
    ser::Writer w;
    w.bytes(cacheMagic, sizeof(cacheMagic));
    w.u32(cacheFileVersion);
    w.u32(requestCodecVersion);
    {
        std::lock_guard<std::mutex> lk(mu_);
        w.u64(lru_.size());
        // Oldest first, so reloading re-inserts in age order and the
        // restored LRU order matches the saved one.
        for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
            w.u8(it->key.kind);
            w.u64(it->key.configFp);
            w.u64(it->key.workloadFp);
            w.u64(it->key.requestFp);
            w.str(it->payload);
        }
    }
    uint64_t sum = ser::fnv1a(w.data().data(), w.data().size());
    ser::Writer tail;
    tail.u64(sum);

    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        warn("cannot open result cache '%s' for writing", path.c_str());
        return false;
    }
    bool ok =
        std::fwrite(w.data().data(), 1, w.data().size(), f) ==
            w.data().size() &&
        std::fwrite(tail.data().data(), 1, tail.data().size(), f) ==
            tail.data().size();
    ok = std::fclose(f) == 0 && ok;
    if (!ok)
        warn("short write to result cache '%s'", path.c_str());
    return ok;
}

bool
ResultCache::load(const std::string &path)
{
    FACSIM_PROF_SCOPE(CacheLoad);
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;  // first run; nothing to warm from
    std::string data;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        data.append(buf, n);
    bool read_ok = !std::ferror(f);
    std::fclose(f);

    auto reject = [&](const char *why) {
        warn("ignoring result cache '%s': %s", path.c_str(), why);
        std::lock_guard<std::mutex> lk(mu_);
        lru_.clear();
        index_.clear();
        bytes_ = 0;
        return false;
    };

    if (!read_ok)
        return reject("read error");
    if (data.size() < sizeof(cacheMagic) + 4 + 4 + 8 + 8 ||
        std::memcmp(data.data(), cacheMagic, sizeof(cacheMagic)) != 0)
        return reject("not a facsim result cache");

    size_t body = data.size() - 8;
    uint64_t stored;
    std::memcpy(&stored, data.data() + body, 8);
    if (stored != ser::fnv1a(data.data(), body))
        return reject("checksum mismatch (corrupt file)");

    ser::TryReader r(data.data(), body);
    char skip[sizeof(cacheMagic)];
    r.bytes(skip, sizeof(skip));
    uint32_t file_version = r.u32();
    uint32_t codec_version = r.u32();
    if (!r.ok() || file_version != cacheFileVersion)
        return reject("unknown cache file version");
    if (codec_version != requestCodecVersion)
        return reject("stale result-codec version (starting cold)");

    uint64_t count = r.u64();
    for (uint64_t i = 0; i < count; ++i) {
        CacheKey key;
        key.kind = r.u8();
        key.configFp = r.u64();
        key.workloadFp = r.u64();
        key.requestFp = r.u64();
        std::string payload = r.str();
        if (!r.ok())
            return reject("truncated entry list");
        insert(key, payload);
    }
    if (!r.atEnd())
        return reject("trailing bytes after the last entry");
    return true;
}

void
ResultCache::registerStats(obs::Group &g)
{
    g.formula("hits", "requests answered from the cache",
              [this] { return static_cast<double>(hits()); });
    g.formula("misses", "requests that had to run",
              [this] { return static_cast<double>(misses()); });
    g.formula("evictions", "entries evicted under the byte budget",
              [this] { return static_cast<double>(evictions()); });
    g.formula("bytes", "resident payload bytes",
              [this] { return static_cast<double>(bytes()); });
    g.formula("entries", "resident entries",
              [this] { return static_cast<double>(entries()); });
}

} // namespace facsim::serve
