/**
 * @file
 * Load generator for the experiment service (`facsim_cli loadgen`):
 * drives a daemon with a deterministic, seed-derived request schedule
 * at configurable concurrency and reports latency percentiles, QPS and
 * a response-set digest.
 *
 * The whole schedule is precomputed from the seed before any request
 * is sent: a pool of unique experiment requests (a seeded mix of
 * profile and timing requests over several workloads and
 * configurations) plus repeat entries referencing pool members, in a
 * fixed order. Threads take schedule slots round-robin (thread t sends
 * slots t, t+C, t+2C, ...), and the digest folds the responses in
 * *schedule* order — so the digest is identical for any --concurrency,
 * which is how the tests pin "parallel load returns the same response
 * set as serial load".
 *
 * Repeats exercise the result cache: with --concurrency=1 every repeat
 * is answered from the cache (its first occurrence strictly precedes
 * it), giving clean warm-vs-cold latency separation; at higher
 * concurrency the cached flag reported by the daemon classifies each
 * response observationally.
 */

#ifndef FACSIM_SERVE_LOADGEN_HH
#define FACSIM_SERVE_LOADGEN_HH

#include <cstdint>
#include <string>

namespace facsim::serve
{

/** The `facsim_cli loadgen` flag set. */
struct LoadgenOptions
{
    std::string socketPath;
    /** Client threads, each with its own connection. */
    unsigned concurrency = 1;
    /** Total requests to send. */
    uint64_t requests = 100;
    /** Percent of requests that repeat an earlier unique request. */
    unsigned repeatPct = 50;
    /** Percent of unique requests that are timing (rest profile). */
    unsigned timingPct = 50;
    /** Schedule seed: same seed = same requests = same digest. */
    uint64_t seed = 1;
    /** Workload scale for every generated request. */
    uint64_t scale = 1;
    /** Instruction bound per request (keeps cold runs short). */
    uint64_t maxInsts = 20000;
    /** Distinct workloads to draw from (capped at the registry size). */
    unsigned workloadPool = 4;
};

/** Aggregate outcome of one loadgen run. */
struct LoadgenReport
{
    uint64_t sent = 0;
    uint64_t ok = 0;
    uint64_t errors = 0;
    /** Responses the daemon marked cached / not cached. */
    uint64_t cachedResponses = 0;
    uint64_t uncachedResponses = 0;
    /** Unique requests in the schedule (expected cold ceiling). */
    uint64_t uniqueRequests = 0;

    double wallSeconds = 0.0;
    double qps = 0.0;

    /** Latency percentiles over all OK responses, microseconds. */
    double p50Us = 0.0, p90Us = 0.0, p99Us = 0.0, maxUs = 0.0;
    /** Split by the daemon's cached flag (0 when the class is empty). */
    double coldP50Us = 0.0, warmP50Us = 0.0;

    /** FNV-1a over (slot, status, cached-stripped body) in slot order. */
    uint64_t responseDigest = 0;

    /** Render as a single JSON object (schema_version 1). */
    std::string json() const;
    /** Render as a human-readable text block. */
    std::string text() const;
};

/**
 * Run the schedule against the daemon at @p opts.socketPath. False
 * with *err when the daemon is unreachable; per-request errors are
 * counted in the report instead.
 */
bool runLoadgen(const LoadgenOptions &opts, LoadgenReport *report,
                std::string *err);

} // namespace facsim::serve

#endif // FACSIM_SERVE_LOADGEN_HH
