#include "serve/wire.hh"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <unistd.h>

#include "util/serialize.hh"

namespace facsim::serve
{

namespace
{

/** Parse the common magic+version prefix; false with *err on mismatch. */
bool
checkHeader(ser::TryReader &r, std::string *err)
{
    uint32_t magic = r.u32();
    uint32_t version = r.u32();
    if (!r.ok()) {
        *err = "truncated header";
        return false;
    }
    if (magic != wireMagic) {
        *err = "bad magic (not a facsim serve frame)";
        return false;
    }
    if (version != wireVersion) {
        *err = "unsupported protocol version " + std::to_string(version);
        return false;
    }
    return true;
}

} // namespace

std::string
encodeRequest(WireKind kind, uint64_t req_id, const std::string &body)
{
    ser::Writer w;
    w.u32(wireMagic);
    w.u32(wireVersion);
    w.u8(static_cast<uint8_t>(kind));
    w.u8(0);  // reserved
    w.u64(req_id);
    w.bytes(body.data(), body.size());
    return w.data();
}

bool
decodeRequest(const std::string &payload, RequestEnvelope *env,
              std::string *err)
{
    ser::TryReader r(payload.data(), payload.size());
    if (!checkHeader(r, err))
        return false;
    env->kind = r.u8();
    r.u8();  // reserved
    env->reqId = r.u64();
    if (!r.ok()) {
        *err = "truncated header";
        return false;
    }
    env->body.assign(payload, r.offset(), std::string::npos);
    return true;
}

std::string
encodeResponse(const ResponseEnvelope &env)
{
    ser::Writer w;
    w.u32(wireMagic);
    w.u32(wireVersion);
    w.u8(static_cast<uint8_t>(env.status));
    w.u8(env.cached ? 1 : 0);
    w.u64(env.reqId);
    w.bytes(env.body.data(), env.body.size());
    return w.data();
}

bool
decodeResponse(const std::string &payload, ResponseEnvelope *env,
               std::string *err)
{
    ser::TryReader r(payload.data(), payload.size());
    if (!checkHeader(r, err))
        return false;
    uint8_t status = r.u8();
    env->cached = r.u8() != 0;
    env->reqId = r.u64();
    if (!r.ok()) {
        *err = "truncated header";
        return false;
    }
    if (status > static_cast<uint8_t>(WireStatus::Error)) {
        *err = "unknown response status";
        return false;
    }
    env->status = static_cast<WireStatus>(status);
    env->body.assign(payload, r.offset(), std::string::npos);
    return true;
}

namespace
{

/**
 * Read exactly @p n bytes into @p out, polling so @p stop interrupts
 * an idle wait. @p sawAny reports whether any byte arrived (EOF before
 * the first byte of a length prefix is orderly; after it, truncation).
 */
FrameRead
readExact(int fd, char *out, size_t n, bool *saw_any,
          const std::atomic<bool> *stop, std::string *err)
{
    size_t got = 0;
    while (got < n) {
        struct pollfd p = {fd, POLLIN, 0};
        int pr = ::poll(&p, 1, 100);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            *err = std::string("poll: ") + std::strerror(errno);
            return FrameRead::Error;
        }
        if (pr == 0) {
            if (stop && stop->load(std::memory_order_relaxed))
                return FrameRead::Stop;
            continue;
        }
        ssize_t r = ::read(fd, out + got, n - got);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            *err = std::string("read: ") + std::strerror(errno);
            return FrameRead::Error;
        }
        if (r == 0) {
            if (got == 0 && !*saw_any)
                return FrameRead::Eof;
            *err = "connection closed mid-frame";
            return FrameRead::Error;
        }
        got += static_cast<size_t>(r);
        *saw_any = true;
    }
    return FrameRead::Frame;
}

} // namespace

FrameRead
readFrame(int fd, std::string *payload, std::string *err,
          const std::atomic<bool> *stop)
{
    char lenbuf[4];
    bool saw_any = false;
    FrameRead fr = readExact(fd, lenbuf, 4, &saw_any, stop, err);
    if (fr != FrameRead::Frame)
        return fr;

    uint32_t len;
    std::memcpy(&len, lenbuf, 4);
    if (len > maxFrameBytes) {
        *err = "oversized frame (" + std::to_string(len) + " bytes)";
        return FrameRead::Error;
    }
    payload->resize(len);
    if (len == 0)
        return FrameRead::Frame;
    return readExact(fd, payload->data(), len, &saw_any, stop, err);
}

bool
writeFrame(int fd, const std::string &payload)
{
    uint32_t len = static_cast<uint32_t>(payload.size());
    char lenbuf[4];
    std::memcpy(lenbuf, &len, 4);

    auto writeAll = [fd](const char *p, size_t n) {
        size_t done = 0;
        while (done < n) {
            ssize_t w = ::write(fd, p + done, n - done);
            if (w < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            done += static_cast<size_t>(w);
        }
        return true;
    };
    return writeAll(lenbuf, 4) && writeAll(payload.data(), payload.size());
}

} // namespace facsim::serve
