#include "serve/server.hh"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/prof.hh"
#include "obs/trace.hh"
#include "serve/cache.hh"
#include "serve/wire.hh"
#include "sim/config.hh"
#include "sim/experiment.hh"
#include "sim/request_codec.hh"
#include "sim/runner.hh"
#include "util/logging.hh"
#include "workloads/registry.hh"

namespace facsim::serve
{

namespace
{

/**
 * Set by the SIGINT/SIGTERM handler. Every wait in the daemon is a
 * bounded poll that re-checks this flag, so a plain lock-free atomic
 * store is all the handler needs — no self-pipe required.
 */
std::atomic<bool> g_signalDrain{false};

void
drainSignalHandler(int)
{
    g_signalDrain.store(true, std::memory_order_relaxed);
}

bool
workloadExists(const std::string &name)
{
    for (const WorkloadInfo &w : allWorkloads()) {
        if (name == w.name)
            return true;
    }
    return false;
}

/** One client connection. Writes are serialized by wmu: the reader
 *  thread answers hits/errors inline while the scheduler thread posts
 *  miss results. */
struct Connection
{
    int rfd = -1;
    int wfd = -1;
    bool ownsFd = false;
    std::mutex wmu;

    ~Connection()
    {
        if (ownsFd && rfd >= 0)
            ::close(rfd);
    }
};

using ConnPtr = std::shared_ptr<Connection>;
using Clock = std::chrono::steady_clock;

/** A decoded cache miss waiting for the Runner. */
struct PendingJob
{
    ConnPtr conn;
    uint64_t reqId = 0;
    WireKind kind = WireKind::Ping;
    ProfileRequest preq;
    TimingRequest treq;
    CacheKey key;
    Clock::time_point received;
};

class Server
{
  public:
    explicit Server(const ServerOptions &opts)
        : opts_(opts), cache_(opts.cacheBytes)
    {
        obs::Group &sg = registry_.root().group("serve");
        requests_ = &sg.counter("requests", "request frames handled");
        pings_ = &sg.counter("pings", "ping requests");
        profileReqs_ = &sg.counter("profile_requests", "profile requests");
        timingReqs_ = &sg.counter("timing_requests", "timing requests");
        shutdowns_ = &sg.counter("shutdowns", "shutdown requests");
        protoErrors_ = &sg.counter("protocol_errors",
                                   "malformed frames rejected");
        reqErrors_ = &sg.counter("request_errors",
                                 "well-framed requests answered with an "
                                 "error");
        connections_ = &sg.counter("connections", "connections accepted");
        queueDepth_ = &sg.distribution("queue_depth",
                                       "miss-queue depth at each enqueue");
        latencyUs_ = &sg.distribution("latency_us",
                                      "request latency, receipt to "
                                      "response written");
        hitLatencyUs_ = &sg.distribution("hit_latency_us",
                                         "latency of cache hits");
        missLatencyUs_ = &sg.distribution("miss_latency_us",
                                          "latency of executed requests");
        latencyLog2_ = &sg.histogram("latency_log2_us",
                                     "log2(request latency in us)", 0.0,
                                     30.0, 30);
        statsReqs_ = &sg.counter("stats_requests",
                                 "live stats snapshot requests");
        // Server-side latency percentiles, estimated from the log2
        // histogram so no client cooperation is needed (the estimate
        // interpolates in log space, hence exp2 back to microseconds).
        sg.formula("latency_p50_us",
                   "p50 request latency (log2-histogram estimate)",
                   [this] {
                       return latencyLog2_->count()
                           ? std::exp2(latencyLog2_->percentile(0.5))
                           : 0.0;
                   });
        sg.formula("latency_p99_us",
                   "p99 request latency (log2-histogram estimate)",
                   [this] {
                       return latencyLog2_->count()
                           ? std::exp2(latencyLog2_->percentile(0.99))
                           : 0.0;
                   });
        // Instantaneous miss-queue depth; the dump path takes statsMu_
        // then queueMu_, so no enqueue path may nest them the other
        // way around.
        sg.formula("queue_now", "miss-queue depth right now", [this] {
            std::lock_guard<std::mutex> lk(queueMu_);
            return static_cast<double>(queue_.size());
        });
        cache_.registerStats(registry_.root().group("cache"));
        obs::registerProfStats(registry_.root().group("prof"));
    }

    int run();

  private:
    bool draining() const
    {
        return drain_.load(std::memory_order_relaxed) ||
               g_signalDrain.load(std::memory_order_relaxed);
    }

    void
    requestDrain()
    {
        drain_.store(true, std::memory_order_relaxed);
        queueCv_.notify_all();
    }

    void reply(Connection &conn, const ResponseEnvelope &env);
    void recordLatency(Clock::time_point received, bool hit);
    void connectionLoop(const ConnPtr &conn);
    /** False when the connection must close (protocol error). */
    bool handleFrame(const ConnPtr &conn, const std::string &payload);
    void schedulerLoop();
    void runBatch(std::vector<PendingJob> &batch);
    int listenUnix(const std::string &path);
    void statsFlushLoop();
    void writeStatsSnapshot();
    /** Close out one request's trace span (received -> replied). */
    void endRequestSpan(uint64_t req_id, Clock::time_point received);

    ServerOptions opts_;
    ResultCache cache_;
    std::atomic<bool> drain_{false};

    std::mutex queueMu_;
    std::condition_variable queueCv_;
    std::deque<PendingJob> queue_;
    bool readersDone_ = false;

    obs::Registry registry_;
    std::mutex statsMu_;
    obs::Counter *requests_, *pings_, *profileReqs_, *timingReqs_,
        *shutdowns_, *protoErrors_, *reqErrors_, *connections_,
        *statsReqs_;
    obs::Distribution *queueDepth_, *latencyUs_, *hitLatencyUs_,
        *missLatencyUs_;
    obs::Histogram *latencyLog2_;
};

void
Server::reply(Connection &conn, const ResponseEnvelope &env)
{
    std::string payload = encodeResponse(env);
    std::lock_guard<std::mutex> lk(conn.wmu);
    // A failed write means the client went away; its request already
    // ran (and was cached), so there is nothing else to unwind.
    writeFrame(conn.wfd, payload);
}

void
Server::endRequestSpan(uint64_t req_id, Clock::time_point received)
{
    if (obs::SpanTracer *tr = obs::spanTracer()) {
        tr->instant("replied", req_id);
        tr->complete("request", req_id, received, Clock::now());
    }
}

void
Server::recordLatency(Clock::time_point received, bool hit)
{
    double us = std::chrono::duration<double, std::micro>(Clock::now() -
                                                          received)
                    .count();
    std::lock_guard<std::mutex> lk(statsMu_);
    latencyUs_->sample(us);
    (hit ? hitLatencyUs_ : missLatencyUs_)->sample(us);
    latencyLog2_->sample(us > 1.0 ? std::log2(us) : 0.0);
}

bool
Server::handleFrame(const ConnPtr &conn, const std::string &payload)
{
    Clock::time_point received = Clock::now();
    RequestEnvelope env;
    std::string err;
    if (!decodeRequest(payload, &env, &err)) {
        {
            std::lock_guard<std::mutex> lk(statsMu_);
            ++*protoErrors_;
        }
        reply(*conn, {WireStatus::Error, false, env.reqId,
                      "protocol error: " + err});
        return false;  // framing is unreliable now; drop the connection
    }

    {
        std::lock_guard<std::mutex> lk(statsMu_);
        ++*requests_;
    }

    // Tag every span this thread emits while handling the frame
    // (including prof-scope spans fired inside inline work) with the
    // request id.
    obs::SpanReqScope reqSpan(env.reqId);
    obs::SpanTracer *tr = obs::spanTracer();
    if (tr) {
        tr->nameThisThread("conn");
        tr->instant("received", env.reqId);
    }

    auto replyError = [&](const std::string &msg) {
        {
            std::lock_guard<std::mutex> lk(statsMu_);
            ++*reqErrors_;
        }
        reply(*conn, {WireStatus::Error, false, env.reqId, msg});
        endRequestSpan(env.reqId, received);
    };

    switch (env.kind) {
      case static_cast<uint8_t>(WireKind::Ping): {
        {
            std::lock_guard<std::mutex> lk(statsMu_);
            ++*pings_;
        }
        reply(*conn, {WireStatus::Ok, false, env.reqId, ""});
        endRequestSpan(env.reqId, received);
        return true;
      }
      case static_cast<uint8_t>(WireKind::Shutdown): {
        {
            std::lock_guard<std::mutex> lk(statsMu_);
            ++*shutdowns_;
        }
        reply(*conn, {WireStatus::Ok, false, env.reqId, ""});
        endRequestSpan(env.reqId, received);
        requestDrain();
        return true;
      }
      case static_cast<uint8_t>(WireKind::Stats): {
        if (!env.body.empty()) {
            replyError("stats request body must be empty");
            return true;
        }
        // Snapshot under statsMu_ so the counters the reader threads
        // bump mid-dump cannot tear; the cache/prof formulas take
        // their own (leaf) locks.
        ser::Writer w;
        {
            std::lock_guard<std::mutex> lk(statsMu_);
            ++*statsReqs_;
            w.str(registry_.jsonDump());
            w.str(registry_.promDump());
        }
        reply(*conn, {WireStatus::Ok, false, env.reqId, w.data()});
        endRequestSpan(env.reqId, received);
        return true;
      }
      case static_cast<uint8_t>(WireKind::Profile):
      case static_cast<uint8_t>(WireKind::Timing):
        break;
      default:
        replyError("unknown request kind " + std::to_string(env.kind));
        return true;  // the frame itself was well-formed; keep going
    }

    PendingJob job;
    job.conn = conn;
    job.reqId = env.reqId;
    job.kind = static_cast<WireKind>(env.kind);
    job.received = received;
    job.key.kind = env.kind;
    job.key.requestFp = ser::fnv1a(env.body.data(), env.body.size());

    std::string workload_name;
    if (job.kind == WireKind::Profile) {
        {
            std::lock_guard<std::mutex> lk(statsMu_);
            ++*profileReqs_;
        }
        ser::TryReader r(env.body.data(), env.body.size());
        if (!decodeProfileRequest(r, &job.preq) || !r.atEnd()) {
            replyError("malformed profile request: " +
                       (r.ok() ? std::string("trailing bytes")
                               : r.error()));
            return true;
        }
        workload_name = job.preq.workload;
        job.key.workloadFp =
            workloadFingerprint(job.preq.workload, job.preq.build);
    } else {
        {
            std::lock_guard<std::mutex> lk(statsMu_);
            ++*timingReqs_;
        }
        ser::TryReader r(env.body.data(), env.body.size());
        if (!decodeTimingRequest(r, &job.treq) || !r.atEnd()) {
            replyError("malformed timing request: " +
                       (r.ok() ? std::string("trailing bytes")
                               : r.error()));
            return true;
        }
        workload_name = job.treq.workload;
        job.key.workloadFp =
            workloadFingerprint(job.treq.workload, job.treq.build);
        job.key.configFp = configFingerprint(job.treq.pipe);
        const SamplingConfig &s = job.treq.sampling;
        if (s.enabled() && (s.detail < 1 || s.warmup + s.detail > s.period)) {
            replyError("incoherent sampling parameters");
            return true;
        }
    }
    if (!workloadExists(workload_name)) {
        replyError("unknown workload '" + workload_name + "'");
        return true;
    }
    if ((job.kind == WireKind::Profile ? job.preq.build.scale
                                       : job.treq.build.scale) == 0) {
        replyError("workload scale must be >= 1");
        return true;
    }

    std::string cached;
    if (cache_.lookup(job.key, &cached)) {
        if (tr)
            tr->instant("cache_hit", env.reqId);
        reply(*conn, {WireStatus::Ok, true, env.reqId, cached});
        recordLatency(received, true);
        endRequestSpan(env.reqId, received);
        return true;
    }
    if (tr)
        tr->instant("cache_miss", env.reqId);

    size_t depth;
    {
        std::lock_guard<std::mutex> lk(queueMu_);
        queue_.push_back(std::move(job));
        depth = queue_.size();
    }
    // Sampled outside queueMu_: the stats dump path nests statsMu_ ->
    // queueMu_ (the queue_now formula), so nesting them the other way
    // here would deadlock a stats request against an enqueue.
    {
        std::lock_guard<std::mutex> lk(statsMu_);
        queueDepth_->sample(static_cast<double>(depth));
    }
    if (tr)
        tr->instant("enqueued", env.reqId);
    queueCv_.notify_one();
    return true;
}

void
Server::connectionLoop(const ConnPtr &conn)
{
    {
        std::lock_guard<std::mutex> lk(statsMu_);
        ++*connections_;
    }
    for (;;) {
        std::string payload, err;
        FrameRead fr = readFrame(conn->rfd, &payload, &err, &drain_);
        if (fr == FrameRead::Stop || draining())
            return;
        if (fr == FrameRead::Eof)
            return;
        if (fr == FrameRead::Error) {
            {
                std::lock_guard<std::mutex> lk(statsMu_);
                ++*protoErrors_;
            }
            reply(*conn,
                  {WireStatus::Error, false, 0, "protocol error: " + err});
            return;
        }
        if (!handleFrame(conn, payload))
            return;
    }
}

void
Server::runBatch(std::vector<PendingJob> &batch)
{
    std::vector<std::string> payloads(batch.size());
    Runner runner(opts_.jobs);
    try {
        runner.forEachIndex(batch.size(), [&](size_t i) -> uint64_t {
            PendingJob &j = batch[i];
            // The request id rides into the experiment through this
            // thread-local scope: prof scopes fired inside
            // runProfile/runTiming (translate, warmup, detail, drain)
            // emit spans tagged with it on this worker's track.
            obs::SpanTracer *tr = obs::spanTracer();
            if (tr)
                tr->nameThisThread("worker");
            obs::SpanReqScope reqSpan(j.reqId);
            Clock::time_point t0 = Clock::now();
            ser::Writer w;
            uint64_t insts;
            if (j.kind == WireKind::Profile) {
                ProfileResult res = runProfile(j.preq);
                FACSIM_PROF_SCOPE(Encode);
                encodeProfileResult(w, res);
                insts = res.insts;
            } else {
                TimingResult res = runTiming(j.treq);
                FACSIM_PROF_SCOPE(Encode);
                encodeTimingResult(w, res);
                insts = res.sample.enabled ? res.sample.totalInsts
                                           : res.stats.insts;
            }
            payloads[i] = w.data();
            if (tr) {
                tr->complete("run", j.reqId, t0, Clock::now());
                tr->instant("encoded", j.reqId);
            }
            return insts;
        });
    } catch (const std::exception &e) {
        warn("experiment batch failed: %s", e.what());
    }

    for (size_t i = 0; i < batch.size(); ++i) {
        PendingJob &j = batch[i];
        if (payloads[i].empty()) {
            {
                std::lock_guard<std::mutex> lk(statsMu_);
                ++*reqErrors_;
            }
            reply(*j.conn, {WireStatus::Error, false, j.reqId,
                            "experiment failed to run"});
            endRequestSpan(j.reqId, j.received);
            continue;
        }
        cache_.insert(j.key, payloads[i]);
        reply(*j.conn, {WireStatus::Ok, false, j.reqId, payloads[i]});
        recordLatency(j.received, false);
        endRequestSpan(j.reqId, j.received);
    }
}

void
Server::schedulerLoop()
{
    for (;;) {
        std::vector<PendingJob> batch;
        {
            std::unique_lock<std::mutex> lk(queueMu_);
            queueCv_.wait_for(lk, std::chrono::milliseconds(100), [&] {
                return !queue_.empty() || readersDone_;
            });
            if (queue_.empty()) {
                if (readersDone_)
                    return;
                continue;
            }
            batch.assign(std::make_move_iterator(queue_.begin()),
                         std::make_move_iterator(queue_.end()));
            queue_.clear();
        }
        if (obs::SpanTracer *tr = obs::spanTracer()) {
            tr->nameThisThread("sched");
            for (const PendingJob &j : batch)
                tr->instant("scheduled", j.reqId);
        }
        runBatch(batch);
    }
}

void
Server::writeStatsSnapshot()
{
    // Snapshot first (under statsMu_, same as a Stats request), then
    // write to a temp file and rename() it into place so a concurrent
    // reader of --stats-out never sees a torn dump.
    bool json = opts_.statsOut.size() >= 5 &&
        opts_.statsOut.compare(opts_.statsOut.size() - 5, 5, ".json") == 0;
    std::string text;
    {
        std::lock_guard<std::mutex> lk(statsMu_);
        text = json ? registry_.jsonDump() : registry_.textDump();
    }
    std::string tmp = opts_.statsOut + ".tmp";
    {
        std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
        if (!f) {
            warn("cannot write stats snapshot '%s'", tmp.c_str());
            return;
        }
        f.write(text.data(), static_cast<std::streamsize>(text.size()));
    }
    if (::rename(tmp.c_str(), opts_.statsOut.c_str()) != 0)
        warn("rename '%s': %s", tmp.c_str(), std::strerror(errno));
}

void
Server::statsFlushLoop()
{
    // 100 ms polls so a drain is noticed promptly even with a long
    // interval; the final authoritative dump happens after drain.
    auto interval = std::chrono::seconds(opts_.statsInterval);
    Clock::time_point next = Clock::now() + interval;
    while (!draining()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        if (Clock::now() < next)
            continue;
        writeStatsSnapshot();
        next = Clock::now() + interval;
    }
}

int
Server::listenUnix(const std::string &path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        warn("socket: %s", std::strerror(errno));
        return -1;
    }
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        warn("socket path '%s' is too long", path.c_str());
        ::close(fd);
        return -1;
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(path.c_str());  // a stale socket from a dead daemon
    if (::bind(fd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
        warn("cannot listen on '%s': %s", path.c_str(),
             std::strerror(errno));
        ::close(fd);
        return -1;
    }
    return fd;
}

int
Server::run()
{
    if (!opts_.cacheFile.empty() && cache_.load(opts_.cacheFile)) {
        inform("result cache: %llu entries (%llu bytes) restored from "
               "'%s'",
               static_cast<unsigned long long>(cache_.entries()),
               static_cast<unsigned long long>(cache_.bytes()),
               opts_.cacheFile.c_str());
    }

    // Span tracing: a single process-wide tracer shared by every
    // daemon thread; detached (and only then finished) after all of
    // them have joined.
    std::ofstream trace_out;
    std::unique_ptr<obs::SpanTracer> tracer;
    if (!opts_.tracePath.empty()) {
        trace_out.open(opts_.tracePath,
                       std::ios::binary | std::ios::trunc);
        if (!trace_out) {
            warn("cannot write trace '%s'", opts_.tracePath.c_str());
        } else {
            tracer = std::make_unique<obs::SpanTracer>(trace_out);
            obs::setSpanTracer(tracer.get());
        }
    }

    std::thread scheduler([this] { schedulerLoop(); });
    std::thread flusher;
    if (opts_.statsInterval > 0 && !opts_.statsOut.empty())
        flusher = std::thread([this] { statsFlushLoop(); });
    // Relay a signal-initiated drain onto drain_, which is what the
    // reader poll loops actually watch; exits as soon as any drain
    // source fires.
    std::thread sig_relay([this] {
        while (!drain_.load(std::memory_order_relaxed)) {
            if (g_signalDrain.load(std::memory_order_relaxed)) {
                requestDrain();
                return;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
    });
    std::vector<std::thread> readers;
    std::vector<ConnPtr> conns;

    if (opts_.stdio) {
        auto conn = std::make_shared<Connection>();
        conn->rfd = STDIN_FILENO;
        conn->wfd = STDOUT_FILENO;
        conn->ownsFd = false;
        conns.push_back(conn);
        connectionLoop(conn);
        requestDrain();
    } else {
        int listen_fd = listenUnix(opts_.socketPath);
        if (listen_fd < 0) {
            requestDrain();
            {
                std::lock_guard<std::mutex> lk(queueMu_);
                readersDone_ = true;
            }
            queueCv_.notify_all();
            scheduler.join();
            sig_relay.join();
            if (flusher.joinable())
                flusher.join();
            if (tracer) {
                obs::setSpanTracer(nullptr);
                tracer->finish();
            }
            return 1;
        }
        inform("serving on '%s' (%u jobs, %llu MB cache)",
               opts_.socketPath.c_str(), resolveJobs(opts_.jobs),
               static_cast<unsigned long long>(opts_.cacheBytes >> 20));
        while (!draining()) {
            struct pollfd p = {listen_fd, POLLIN, 0};
            int pr = ::poll(&p, 1, 100);
            if (pr < 0 && errno != EINTR) {
                warn("poll: %s", std::strerror(errno));
                break;
            }
            if (pr <= 0)
                continue;
            int cfd = ::accept(listen_fd, nullptr, nullptr);
            if (cfd < 0)
                continue;
            auto conn = std::make_shared<Connection>();
            conn->rfd = conn->wfd = cfd;
            conn->ownsFd = true;
            conns.push_back(conn);
            readers.emplace_back(
                [this, conn] { connectionLoop(conn); });
        }
        ::close(listen_fd);
        ::unlink(opts_.socketPath.c_str());
        requestDrain();
    }

    // Drain: readers notice the flag within one poll round; queued and
    // in-flight jobs finish and their responses flush (jobs keep their
    // Connection alive through the shared_ptr) before the scheduler is
    // allowed to exit.
    for (std::thread &t : readers)
        t.join();
    {
        std::lock_guard<std::mutex> lk(queueMu_);
        readersDone_ = true;
    }
    queueCv_.notify_all();
    scheduler.join();
    sig_relay.join();
    if (flusher.joinable())
        flusher.join();
    conns.clear();

    if (!opts_.cacheFile.empty())
        cache_.save(opts_.cacheFile);
    if (tracer) {
        // Every span-emitting thread has joined; detach before finish
        // so no late emitter can race the closing bracket.
        obs::setSpanTracer(nullptr);
        tracer->finish();
    }
    if (!opts_.statsOut.empty())
        writeStatsSnapshot();
    inform("drained: %llu requests, %llu cache hits",
           static_cast<unsigned long long>(requests_->value()),
           static_cast<unsigned long long>(cache_.hits()));
    return 0;
}

} // namespace

int
serveMain(const ServerOptions &opts)
{
    FACSIM_ASSERT(opts.stdio || !opts.socketPath.empty(),
                  "serve needs --socket=PATH or --stdio");

    g_signalDrain.store(false, std::memory_order_relaxed);
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = drainSignalHandler;
    struct sigaction old_int, old_term;
    ::sigaction(SIGINT, &sa, &old_int);
    ::sigaction(SIGTERM, &sa, &old_term);

    int rc = Server(opts).run();

    ::sigaction(SIGINT, &old_int, nullptr);
    ::sigaction(SIGTERM, &old_term, nullptr);
    return rc;
}

} // namespace facsim::serve
