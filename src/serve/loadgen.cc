#include "serve/loadgen.hh"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "obs/stats.hh"
#include "serve/client.hh"
#include "sim/config.hh"
#include "sim/request_codec.hh"
#include "util/logging.hh"
#include "util/percentile.hh"
#include "verify/fuzz.hh"
#include "workloads/registry.hh"

namespace facsim::serve
{

namespace
{

/** One precomputed schedule slot. */
struct Slot
{
    WireKind kind = WireKind::Profile;
    const std::string *body = nullptr;  ///< into the unique pool
    size_t uniqueId = 0;
};

/** One slot's outcome, written only by the thread owning the slot. */
struct Outcome
{
    bool ok = false;
    bool cached = false;
    double latencyUs = 0.0;
    uint64_t bodyHash = 0;
    uint8_t status = 0;
};

struct UniqueRequest
{
    WireKind kind;
    std::string body;
};

/** Build the seed-derived unique-request pool. */
std::vector<UniqueRequest>
buildPool(const LoadgenOptions &o, size_t n_unique)
{
    const std::vector<WorkloadInfo> &wls = allWorkloads();
    size_t pool = std::min<size_t>(std::max(1u, o.workloadPool),
                                   wls.size());
    std::vector<UniqueRequest> uniq(n_unique);
    for (size_t i = 0; i < n_unique; ++i) {
        uint64_t r = verify::splitmix64(o.seed, i);
        const char *wl = wls[r % pool].name;
        bool timing = (r >> 8) % 100 < o.timingPct;
        bool fac = (r >> 16) & 1;
        uint32_t block = ((r >> 17) & 1) ? 16 : 32;
        // Fold the pool index into the instruction bound so every pool
        // member is a distinct experiment by construction — the flag
        // space alone (workload x kind x block x fac) is small enough
        // to collide, and a colliding "unique" would be served from the
        // cache, breaking the serial cold-count invariant.
        uint64_t max_insts = o.maxInsts + i;
        ser::Writer w;
        if (timing) {
            TimingRequest t;
            t.workload = wl;
            t.build.scale = o.scale;
            t.pipe = fac ? facPipelineConfig(block) : baselineConfig(block);
            t.maxInsts = max_insts;
            encodeTimingRequest(w, t);
            uniq[i] = {WireKind::Timing, w.data()};
        } else {
            ProfileRequest p;
            p.workload = wl;
            p.build.scale = o.scale;
            p.facConfigs = {facConfigFor(CacheConfig{16 * 1024, block, 1, 6})};
            p.withTlb = (r >> 18) & 1;
            p.maxInsts = max_insts;
            encodeProfileRequest(w, p);
            uniq[i] = {WireKind::Profile, w.data()};
        }
    }
    return uniq;
}

} // namespace

bool
runLoadgen(const LoadgenOptions &opts, LoadgenReport *report,
           std::string *err)
{
    uint64_t n = opts.requests;
    FACSIM_ASSERT(n > 0, "loadgen needs --requests >= 1");
    unsigned repeat_pct = std::min(opts.repeatPct, 99u);
    size_t n_unique = std::max<uint64_t>(
        1, n - n * repeat_pct / 100);
    if (n_unique > n)
        n_unique = n;

    std::vector<UniqueRequest> uniq = buildPool(opts, n_unique);

    // Schedule: every unique first (its slot is its first occurrence),
    // then seeded repeats. Fixed before any I/O, so the request set is
    // a pure function of the options.
    std::vector<Slot> slots(n);
    for (size_t i = 0; i < n; ++i) {
        size_t id = i < n_unique
                        ? i
                        : verify::splitmix64(
                              opts.seed ^ 0x9e3779b97f4a7c15ull, i) %
                              n_unique;
        slots[i] = {uniq[id].kind, &uniq[id].body, id};
    }

    // Probe the daemon once before spawning threads.
    {
        int fd = connectUnix(opts.socketPath, err);
        if (fd < 0)
            return false;
        ServeClient probe(fd);
        if (!probe.ping(err))
            return false;
    }

    unsigned conc = std::max(1u, opts.concurrency);
    if (conc > n)
        conc = static_cast<unsigned>(n);
    std::vector<Outcome> outcomes(n);
    std::vector<std::string> thread_errs(conc);

    using Clock = std::chrono::steady_clock;
    auto t0 = Clock::now();
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < conc; ++t) {
        threads.emplace_back([&, t] {
            std::string cerr2;
            int fd = connectUnix(opts.socketPath, &cerr2);
            if (fd < 0) {
                thread_errs[t] = cerr2;
                return;
            }
            ServeClient client(fd);
            for (uint64_t i = t; i < n; i += conc) {
                const Slot &s = slots[i];
                ResponseEnvelope resp;
                std::string rerr;
                auto rs = Clock::now();
                bool ok = client.exchange(s.kind, *s.body, &resp, &rerr);
                Outcome &out = outcomes[i];
                out.latencyUs =
                    std::chrono::duration<double, std::micro>(Clock::now() -
                                                              rs)
                        .count();
                if (!ok) {
                    thread_errs[t] = rerr;
                    return;  // transport broken; stop this thread
                }
                out.ok = resp.status == WireStatus::Ok;
                out.status = static_cast<uint8_t>(resp.status);
                out.cached = resp.cached;
                out.bodyHash =
                    ser::fnv1a(resp.body.data(), resp.body.size());
            }
        });
    }
    for (std::thread &th : threads)
        th.join();
    double wall = std::chrono::duration<double>(Clock::now() - t0).count();

    LoadgenReport rep;
    rep.uniqueRequests = n_unique;
    rep.wallSeconds = wall;
    std::vector<double> all, cold, warm;
    for (uint64_t i = 0; i < n; ++i) {
        const Outcome &o = outcomes[i];
        if (o.latencyUs == 0.0 && !o.ok)
            continue;  // never sent (thread died earlier)
        ++rep.sent;
        if (!o.ok) {
            ++rep.errors;
            continue;
        }
        ++rep.ok;
        all.push_back(o.latencyUs);
        if (o.cached) {
            ++rep.cachedResponses;
            warm.push_back(o.latencyUs);
        } else {
            ++rep.uncachedResponses;
            cold.push_back(o.latencyUs);
        }
        // Digest in slot order: status + cached-independent body hash.
        ser::Writer w;
        w.u64(i);
        w.u8(o.status);
        w.u64(o.bodyHash);
        rep.responseDigest = ser::fnv1a(w.data().data(), w.data().size(),
                                        rep.responseDigest
                                            ? rep.responseDigest
                                            : 0xcbf29ce484222325ull);
    }
    rep.qps = wall > 0.0 ? rep.ok / wall : 0.0;

    std::sort(all.begin(), all.end());
    std::sort(cold.begin(), cold.end());
    std::sort(warm.begin(), warm.end());
    rep.p50Us = percentile(all, 0.50);
    rep.p90Us = percentile(all, 0.90);
    rep.p99Us = percentile(all, 0.99);
    rep.maxUs = all.empty() ? 0.0 : all.back();
    rep.coldP50Us = percentile(cold, 0.50);
    rep.warmP50Us = percentile(warm, 0.50);

    for (const std::string &e : thread_errs) {
        if (!e.empty()) {
            *err = e;
            *report = rep;
            return false;
        }
    }
    *report = rep;
    return true;
}

std::string
LoadgenReport::json() const
{
    std::string s = "{\"schema_version\":1";
    auto num = [&](const char *k, double v) {
        s += ",\"";
        s += k;
        s += "\":";
        s += obs::jsonNumber(v);
    };
    num("sent", sent);
    num("ok", ok);
    num("errors", errors);
    num("unique_requests", uniqueRequests);
    num("cached_responses", cachedResponses);
    num("uncached_responses", uncachedResponses);
    num("wall_seconds", wallSeconds);
    num("qps", qps);
    num("p50_us", p50Us);
    num("p90_us", p90Us);
    num("p99_us", p99Us);
    num("max_us", maxUs);
    num("cold_p50_us", coldP50Us);
    num("warm_p50_us", warmP50Us);
    s += strprintf(",\"response_digest\":\"%016llx\"}",
                   static_cast<unsigned long long>(responseDigest));
    return s;
}

std::string
LoadgenReport::text() const
{
    std::string s;
    s += strprintf("requests:     %llu sent, %llu ok, %llu errors "
                   "(%llu unique)\n",
                   static_cast<unsigned long long>(sent),
                   static_cast<unsigned long long>(ok),
                   static_cast<unsigned long long>(errors),
                   static_cast<unsigned long long>(uniqueRequests));
    s += strprintf("cache:        %llu cached, %llu executed\n",
                   static_cast<unsigned long long>(cachedResponses),
                   static_cast<unsigned long long>(uncachedResponses));
    s += strprintf("throughput:   %.1f req/s over %.3f s\n", qps,
                   wallSeconds);
    s += strprintf("latency (us): p50 %.1f  p90 %.1f  p99 %.1f  "
                   "max %.1f\n",
                   p50Us, p90Us, p99Us, maxUs);
    s += strprintf("              cold p50 %.1f, warm p50 %.1f\n",
                   coldP50Us, warmP50Us);
    s += strprintf("digest:       %016llx\n",
                   static_cast<unsigned long long>(responseDigest));
    return s;
}

} // namespace facsim::serve
